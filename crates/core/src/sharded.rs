//! The sharded serving layer: N independent index instances behind one
//! keyspace router.
//!
//! Up to PR 8 every design ran as a single instance over one [`Disk`]: one
//! buffer pool, one write front, one drain pipeline. That per-instance
//! stack is finished — [`ShardedIndex`] composes N of them into a serving
//! tier (`DESIGN.md` §3.8):
//!
//! * the keyspace is range-partitioned at sampled quantiles (the same
//!   [`sampled_boundaries`] machinery the staging front uses), so each
//!   shard holds a comparable slice of a skewed key population;
//! * each shard owns its **own** [`Disk`] (its own pool partition, stats,
//!   drain counters) and its own [`ShardedWriteBuffer`] front, so drains
//!   and pool pressure in one key range never stall readers of another;
//! * the router exposes the full [`IndexRead`]/[`IndexWrite`] surface:
//!   lookups route point-wise, batches fan out per shard and re-merge in
//!   caller order, scans stitch across shard boundaries, and
//!   `insert_batch` routes each entry to its owning shard;
//! * shards can be **split and merged online** — while readers and writers
//!   race — via a per-shard write gate plus an atomically swapped route
//!   table (see below).
//!
//! # Rebalance protocol
//!
//! The route table is an immutable snapshot behind `RwLock<Arc<..>>`:
//! every operation clones the `Arc` once and works against a consistent
//! boundary set. A rebalance (split or merge) never mutates a live shard;
//! it replaces table entries:
//!
//! 1. **freeze writes** — take the victim shard's `write_gate`
//!    exclusively. Writers acquire the gate shared around each stage, so
//!    the gate drains in-flight stagers and blocks new ones; readers are
//!    *not* gated and keep answering from the (now write-quiescent) shard.
//! 2. **snapshot** — scan the frozen shard (staged overlay + stored index,
//!    newest-wins — the same snapshot-reconcile rule the drain path uses),
//!    yielding every live entry of the range.
//! 3. **rebuild** — bulk-load the snapshot into fresh shard(s) on fresh
//!    disks (two for a split at the chosen pivot, one for a merge of two
//!    neighbours).
//! 4. **swap** — publish a new route table with the new boundary set, mark
//!    the old handle(s) retired, release the gate. A writer that was
//!    blocked on the gate observes the retired flag and re-routes through
//!    the new table, so no write ever lands in an unrouted shard. A reader
//!    still holding the old snapshot finishes against the retired shard —
//!    its content equals the new shards' content at swap time, so
//!    newest-wins visibility never regresses; later operations re-route.
//!
//! Lock order is *rebalance gate → write gate(s, ascending) → shard
//! internals*; writers only ever hold one shared gate, so the protocol is
//! deadlock-free, and route-table or gate contention is recorded in the
//! router disk's [`IoStats`] stall counters like every other lock in the
//! workspace.
//!
//! [`IoStats`]: lidx_storage::IoStats

use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;

use lidx_storage::{Disk, DiskConfig, OpClass, OpStats};
use parking_lot::{Mutex, RwLock};

use crate::concurrent::{sampled_boundaries, ShardedWriteBuffer, ShardedWriteBufferConfig};
use crate::error::{IndexError, IndexResult};
use crate::index::{validate_bulk_load, DiskIndex, IndexKind, IndexRead, IndexStats, IndexWrite};
use crate::metrics::InsertBreakdown;
use crate::{Entry, Key, Value};

/// Configuration of a [`ShardedIndex`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ShardedIndexConfig {
    /// Initial number of keyspace shards. Online splits and merges move
    /// the live count away from this.
    pub shards: usize,
    /// The staging-front configuration applied to every shard (each shard
    /// gets its own [`ShardedWriteBuffer`] with this config).
    pub buffer: ShardedWriteBufferConfig,
}

impl Default for ShardedIndexConfig {
    fn default() -> Self {
        ShardedIndexConfig { shards: 4, buffer: ShardedWriteBufferConfig::default() }
    }
}

/// One live shard: a buffered index plus the rebalance handshake state.
struct ShardHandle<I> {
    front: ShardedWriteBuffer<I>,
    /// Writers hold this shared around each stage; a rebalance holds it
    /// exclusively while it snapshots and replaces the shard.
    write_gate: RwLock<()>,
    /// Set (under the exclusive gate) once the shard has been replaced in
    /// the route table; a writer that sees it re-routes.
    retired: AtomicBool,
}

/// An immutable routing snapshot: `boundaries[s]` is the first key *not*
/// in shard `s` (so it has `shards.len() - 1` elements), mirroring the
/// staging front's boundary convention.
struct RouteTable<I> {
    boundaries: Vec<Key>,
    shards: Vec<Arc<ShardHandle<I>>>,
}

impl<I> RouteTable<I> {
    fn route(&self, key: Key) -> usize {
        self.boundaries.partition_point(|&b| b <= key)
    }

    /// The first key of shard `s` (0 for the leftmost shard).
    fn range_lo(&self, s: usize) -> Key {
        if s == 0 {
            0
        } else {
            self.boundaries[s - 1]
        }
    }
}

/// The factory a [`ShardedIndex`] uses to build one empty shard instance
/// over a fresh [`Disk`]; called once per initial shard and once per shard
/// created by an online split or merge.
pub type ShardFactory<I> = dyn Fn() -> IndexResult<I> + Send + Sync;

/// A keyspace-partitioning router over N independent shard instances, each
/// with its own [`Disk`] and write front, supporting online split/merge.
///
/// See the [module docs](self) for the routing and rebalance protocol.
///
/// # Example
///
/// ```
/// use lidx_core::sharded::{ShardedIndex, ShardedIndexConfig};
/// use lidx_core::index::{IndexRead, IndexWrite};
/// use lidx_core::write_buffer::WriteBuffer;
/// # use lidx_core::index::{IndexKind, IndexStats};
/// # use lidx_core::{Entry, IndexResult, InsertBreakdown, Key, Value};
/// # use lidx_storage::{Disk, DiskConfig};
/// # use std::sync::Arc;
/// # struct VecIndex { disk: Arc<Disk>, entries: Vec<Entry> }
/// # impl IndexRead for VecIndex {
/// #     fn kind(&self) -> IndexKind { IndexKind::BTree }
/// #     fn disk(&self) -> &Arc<Disk> { &self.disk }
/// #     fn lookup(&self, key: Key) -> IndexResult<Option<Value>> {
/// #         Ok(self.entries.binary_search_by_key(&key, |e| e.0).ok().map(|i| self.entries[i].1))
/// #     }
/// #     fn scan(&self, start: Key, count: usize, out: &mut Vec<Entry>) -> IndexResult<usize> {
/// #         out.clear();
/// #         let from = self.entries.partition_point(|e| e.0 < start);
/// #         out.extend(self.entries[from..].iter().take(count));
/// #         Ok(out.len())
/// #     }
/// #     fn len(&self) -> u64 { self.entries.len() as u64 }
/// #     fn stats(&self) -> IndexStats { IndexStats::default() }
/// # }
/// # impl IndexWrite for VecIndex {
/// #     fn bulk_load(&mut self, entries: &[Entry]) -> IndexResult<()> {
/// #         self.entries = entries.to_vec();
/// #         Ok(())
/// #     }
/// #     fn insert(&mut self, key: Key, value: Value) -> IndexResult<()> {
/// #         match self.entries.binary_search_by_key(&key, |e| e.0) {
/// #             Ok(i) => self.entries[i].1 = value,
/// #             Err(i) => self.entries.insert(i, (key, value)),
/// #         }
/// #         Ok(())
/// #     }
/// #     fn insert_breakdown(&self) -> InsertBreakdown { InsertBreakdown::new() }
/// # }
/// let entries: Vec<Entry> = (0..1000u64).map(|k| (k * 7, k)).collect();
/// let keys: Vec<Key> = entries.iter().map(|e| e.0).collect();
/// let factory = || Ok(VecIndex { disk: Disk::in_memory(DiskConfig::default()), entries: Vec::new() });
/// let mut sharded = ShardedIndex::with_sampled_boundaries(
///     Box::new(factory),
///     ShardedIndexConfig::default(),
///     &keys,
/// )?;
/// sharded.bulk_load(&entries)?;
/// assert_eq!(sharded.lookup(7)?, Some(1));
/// sharded.stage(7, 99)?;
/// assert_eq!(sharded.lookup(7)?, Some(99));
/// let pivot = sharded.split_shard(0, None)?;
/// assert!(pivot > 0);
/// assert_eq!(sharded.lookup(7)?, Some(99));
/// # Ok::<(), lidx_core::IndexError>(())
/// ```
pub struct ShardedIndex<I> {
    table: RwLock<Arc<RouteTable<I>>>,
    factory: Box<ShardFactory<I>>,
    config: ShardedIndexConfig,
    /// Serialises rebalances; a split/merge never races another, so it may
    /// take two write gates (ascending) without a lock-order cycle.
    rebalance_gate: Mutex<()>,
    /// A blockless disk that carries router-level accounting: route-table
    /// and gate stalls, plus the stall counters [`IndexRead::disk`] needs
    /// somewhere to live (the per-shard disks are behind
    /// [`shard_disks`](Self::shard_disks)).
    router_disk: Arc<Disk>,
    splits: AtomicU64,
    merges: AtomicU64,
    kind: IndexKind,
    inner_name: String,
}

impl<I: DiskIndex> ShardedIndex<I> {
    /// Builds a router with `config.shards` shards at uniform boundaries
    /// over the full `u64` keyspace.
    pub fn new(factory: Box<ShardFactory<I>>, config: ShardedIndexConfig) -> IndexResult<Self> {
        let shards = config.shards.max(1);
        let step = Key::MAX / shards as Key;
        let boundaries = (1..shards).map(|s| step.saturating_mul(s as Key)).collect();
        Self::with_boundaries(factory, config, boundaries)
    }

    /// Builds a router with boundaries at the quantiles of `sample` (e.g.
    /// the bulk-load keys), so each shard holds a comparable slice of a
    /// skewed key population. Falls back to uniform boundaries when the
    /// sample is empty.
    pub fn with_sampled_boundaries(
        factory: Box<ShardFactory<I>>,
        config: ShardedIndexConfig,
        sample: &[Key],
    ) -> IndexResult<Self> {
        let boundaries = sampled_boundaries(sample, config.shards.max(1));
        if boundaries.is_empty() && config.shards > 1 {
            return Self::new(factory, config);
        }
        Self::with_boundaries(factory, config, boundaries)
    }

    /// Builds a router with explicit boundaries (`boundaries[s]` is the
    /// first key of shard `s + 1`; must be strictly increasing).
    pub fn with_boundaries(
        factory: Box<ShardFactory<I>>,
        config: ShardedIndexConfig,
        boundaries: Vec<Key>,
    ) -> IndexResult<Self> {
        assert!(
            boundaries.windows(2).all(|w| w[0] < w[1]),
            "shard boundaries must be strictly increasing"
        );
        let mut shards = Vec::with_capacity(boundaries.len() + 1);
        for _ in 0..=boundaries.len() {
            let inner = factory()?;
            let front = ShardedWriteBuffer::new(inner, config.buffer);
            shards.push(Arc::new(ShardHandle {
                front,
                write_gate: RwLock::new(()),
                retired: AtomicBool::new(false),
            }));
        }
        let kind = shards[0].front.kind();
        let inner_name = shards[0].front.name();
        Ok(ShardedIndex {
            table: RwLock::new(Arc::new(RouteTable { boundaries, shards })),
            factory,
            config,
            rebalance_gate: Mutex::new(()),
            router_disk: Disk::in_memory(DiskConfig::default()),
            splits: AtomicU64::new(0),
            merges: AtomicU64::new(0),
            kind,
            inner_name,
        })
    }

    /// The configuration in use (the *initial* shard count; see
    /// [`shard_count`](Self::shard_count) for the live one).
    pub fn config(&self) -> ShardedIndexConfig {
        self.config
    }

    /// Clones the current routing snapshot, counting a router read stall
    /// if a rebalance is swapping the table.
    fn snapshot(&self) -> Arc<RouteTable<I>> {
        if let Some(table) = self.table.try_read() {
            return Arc::clone(&table);
        }
        self.router_disk.stats().record_read_stall();
        Arc::clone(&self.table.read())
    }

    /// Number of live shards.
    pub fn shard_count(&self) -> usize {
        self.snapshot().shards.len()
    }

    /// The current shard boundaries (`boundaries[s]` is the first key of
    /// shard `s + 1`; empty for a single shard).
    pub fn boundaries(&self) -> Vec<Key> {
        self.snapshot().boundaries.clone()
    }

    /// The shard whose key range currently contains `key`.
    pub fn shard_of(&self, key: Key) -> usize {
        self.snapshot().route(key)
    }

    /// Per-shard visible entry counts (staged overlay included), in shard
    /// order.
    pub fn shard_lens(&self) -> Vec<u64> {
        self.snapshot().shards.iter().map(|h| h.front.len()).collect()
    }

    /// The per-shard disks, in shard order — one per shard, each with its
    /// own buffer pool and [`lidx_storage::IoStats`].
    pub fn shard_disks(&self) -> Vec<Arc<Disk>> {
        self.snapshot().shards.iter().map(|h| Arc::clone(h.front.disk())).collect()
    }

    /// One [`OpStats`] window aggregated across every live shard disk plus
    /// the router disk: counters sum, `max_inflight` takes the deepest
    /// single queue (see [`OpStats::merge`]).
    pub fn aggregate_stats(&self) -> OpStats {
        let table = self.snapshot();
        let mut total = self.router_disk.snapshot();
        for handle in &table.shards {
            total = total.merge(&handle.front.disk().snapshot());
        }
        total
    }

    /// One [`TelemetryRegistry`] aggregated (exact histogram merge) across
    /// the router disk — which carries the rebalance spans and router-level
    /// lock stalls — and every live shard disk. Like [`aggregate_stats`],
    /// shards retired by a split/merge leave the table and stop
    /// contributing.
    ///
    /// [`aggregate_stats`]: Self::aggregate_stats
    /// [`TelemetryRegistry`]: lidx_storage::TelemetryRegistry
    pub fn aggregate_telemetry(&self) -> lidx_storage::TelemetryRegistry {
        let table = self.snapshot();
        let total = lidx_storage::TelemetryRegistry::new();
        total.merge_from(self.router_disk.telemetry());
        for handle in &table.shards {
            total.merge_from(handle.front.disk().telemetry());
        }
        total
    }

    /// Number of online splits performed so far.
    pub fn splits(&self) -> u64 {
        self.splits.load(Ordering::Relaxed)
    }

    /// Number of online merges performed so far.
    pub fn merges(&self) -> u64 {
        self.merges.load(Ordering::Relaxed)
    }

    /// Stages one entry into its owning shard (upsert, immediately visible
    /// through that shard's overlay). Safe from any number of threads, and
    /// safe against a concurrent split/merge: a writer that routed to a
    /// shard being replaced blocks on its gate, observes the retired flag,
    /// and re-routes through the new table.
    pub fn stage(&self, key: Key, value: Value) -> IndexResult<()> {
        loop {
            let handle = {
                let table = self.snapshot();
                Arc::clone(&table.shards[table.route(key)])
            };
            let gate = match handle.write_gate.try_read() {
                Some(gate) => gate,
                None => {
                    self.router_disk.stats().record_write_stall();
                    handle.write_gate.read()
                }
            };
            if handle.retired.load(Ordering::Acquire) {
                continue;
            }
            handle.front.stage(key, value)?;
            drop(gate);
            return Ok(());
        }
    }

    /// Stages a batch, routing each entry to its owning shard (later
    /// duplicates win within a shard, matching [`IndexWrite::insert_batch`]
    /// semantics because duplicate keys always route identically).
    pub fn stage_batch(&self, entries: &[Entry]) -> IndexResult<()> {
        let mut pending: Vec<Entry> = entries.to_vec();
        while !pending.is_empty() {
            let table = self.snapshot();
            let mut groups: Vec<Vec<Entry>> = vec![Vec::new(); table.shards.len()];
            for &(key, value) in &pending {
                groups[table.route(key)].push((key, value));
            }
            pending.clear();
            for (s, group) in groups.into_iter().enumerate() {
                if group.is_empty() {
                    continue;
                }
                let handle = &table.shards[s];
                let gate = match handle.write_gate.try_read() {
                    Some(gate) => gate,
                    None => {
                        self.router_disk.stats().record_write_stall();
                        handle.write_gate.read()
                    }
                };
                if handle.retired.load(Ordering::Acquire) {
                    // This shard was replaced while we were routing; the
                    // group re-routes through the fresh table next round.
                    pending.extend(group);
                    continue;
                }
                handle.front.stage_batch(&group)?;
                drop(gate);
            }
        }
        Ok(())
    }

    /// Drains every shard's staging front into its index.
    pub fn flush(&self) -> IndexResult<()> {
        let table = self.snapshot();
        for handle in &table.shards {
            handle.front.flush()?;
        }
        Ok(())
    }

    /// Builds one fresh shard (fresh disk via the factory) bulk-loaded
    /// with `entries`.
    fn build_shard(&self, entries: &[Entry]) -> IndexResult<Arc<ShardHandle<I>>> {
        let mut inner = (self.factory)()?;
        inner.bulk_load(entries)?;
        Ok(Arc::new(ShardHandle {
            front: ShardedWriteBuffer::new(inner, self.config.buffer),
            write_gate: RwLock::new(()),
            retired: AtomicBool::new(false),
        }))
    }

    /// Snapshots every live entry of one write-frozen shard (staged
    /// overlay merged newest-wins over the stored index).
    fn snapshot_shard(table: &RouteTable<I>, s: usize) -> IndexResult<Vec<Entry>> {
        let handle = &table.shards[s];
        let mut all = Vec::new();
        let want = handle.front.len() as usize + 1;
        handle.front.scan(table.range_lo(s), want, &mut all)?;
        Ok(all)
    }

    /// Splits shard `shard` online at `pivot` (or at its median key when
    /// `None`), returning the boundary that now separates the two halves.
    /// Readers and writers may race the split freely; see the
    /// [module docs](self) for the protocol.
    pub fn split_shard(&self, shard: usize, pivot: Option<Key>) -> IndexResult<Key> {
        let _rebalance = self.lock_rebalance();
        // Gate wait excluded (that is lock contention, recorded by
        // `lock_rebalance`); the span is the split itself — snapshot, two
        // rebuilds, route-table swap — which is the pause racing writers
        // feel through the shard's write gate.
        let _span = self.router_disk.telemetry().span(OpClass::Rebalance);
        let table = self.snapshot();
        if shard >= table.shards.len() {
            return Err(IndexError::Internal(format!(
                "split of shard {shard} but only {} shards exist",
                table.shards.len()
            )));
        }
        let handle = Arc::clone(&table.shards[shard]);
        let gate = handle.write_gate.write();

        let all = Self::snapshot_shard(&table, shard)?;
        let lo = table.range_lo(shard);
        let pivot = match pivot {
            Some(p) => {
                let hi_ok = shard == table.boundaries.len() || p < table.boundaries[shard];
                if p <= lo || !hi_ok {
                    return Err(IndexError::Internal(format!(
                        "split pivot {p} outside shard {shard}'s open range"
                    )));
                }
                p
            }
            None => {
                // Median key, nudged up until it is a legal boundary
                // (strictly above the shard's first possible key).
                let median = all.get(all.len() / 2).map(|e| e.0).unwrap_or(lo);
                match if median > lo {
                    Some(median)
                } else {
                    all.iter().map(|e| e.0).find(|&k| k > lo)
                } {
                    Some(k) => k,
                    None => {
                        return Err(IndexError::Internal(format!(
                            "shard {shard} has no key to split at"
                        )))
                    }
                }
            }
        };

        let at = all.partition_point(|e| e.0 < pivot);
        let left = self.build_shard(&all[..at])?;
        let right = self.build_shard(&all[at..])?;

        let mut boundaries = table.boundaries.clone();
        boundaries.insert(shard, pivot);
        let mut shards = table.shards.clone();
        shards.splice(shard..=shard, [left, right]);
        *self.table.write() = Arc::new(RouteTable { boundaries, shards });
        handle.retired.store(true, Ordering::Release);
        drop(gate);
        self.splits.fetch_add(1, Ordering::Relaxed);
        self.router_disk.telemetry().add(OpClass::Rebalance, 1);
        Ok(pivot)
    }

    /// Merges shard `left` with its right neighbour online, removing the
    /// boundary between them. Readers and writers may race the merge
    /// freely.
    pub fn merge_shards(&self, left: usize) -> IndexResult<()> {
        let _rebalance = self.lock_rebalance();
        let _span = self.router_disk.telemetry().span(OpClass::Rebalance);
        let table = self.snapshot();
        if left + 1 >= table.shards.len() {
            return Err(IndexError::Internal(format!(
                "merge of shards {left},{} but only {} shards exist",
                left + 1,
                table.shards.len()
            )));
        }
        let left_handle = Arc::clone(&table.shards[left]);
        let right_handle = Arc::clone(&table.shards[left + 1]);
        // Ascending gate order; the rebalance mutex guarantees no other
        // thread ever holds two gates, so this cannot deadlock.
        let left_gate = left_handle.write_gate.write();
        let right_gate = right_handle.write_gate.write();

        // Left entries all sort below the removed boundary, right entries
        // at or above it, so concatenation is already bulk-load order.
        let mut all = Self::snapshot_shard(&table, left)?;
        all.extend(Self::snapshot_shard(&table, left + 1)?);
        let merged = self.build_shard(&all)?;

        let mut boundaries = table.boundaries.clone();
        boundaries.remove(left);
        let mut shards = table.shards.clone();
        shards.splice(left..=left + 1, [merged]);
        *self.table.write() = Arc::new(RouteTable { boundaries, shards });
        left_handle.retired.store(true, Ordering::Release);
        right_handle.retired.store(true, Ordering::Release);
        drop(right_gate);
        drop(left_gate);
        self.merges.fetch_add(1, Ordering::Relaxed);
        self.router_disk.telemetry().add(OpClass::Rebalance, 1);
        Ok(())
    }

    /// Takes the rebalance mutex, counting a router write stall when
    /// another split/merge is in flight.
    fn lock_rebalance(&self) -> parking_lot::MutexGuard<'_, ()> {
        if let Some(guard) = self.rebalance_gate.try_lock() {
            return guard;
        }
        self.router_disk.stats().record_write_stall();
        let _span = self.router_disk.telemetry().span(OpClass::LockWrite);
        self.rebalance_gate.lock()
    }
}

impl<I: DiskIndex> IndexRead for ShardedIndex<I> {
    fn kind(&self) -> IndexKind {
        self.kind
    }

    fn name(&self) -> String {
        format!("{}+sharded{}", self.inner_name, self.shard_count())
    }

    /// The router's accounting disk (no data blocks live here); the
    /// per-shard disks are behind [`ShardedIndex::shard_disks`] and the
    /// combined window behind [`ShardedIndex::aggregate_stats`].
    fn disk(&self) -> &Arc<Disk> {
        &self.router_disk
    }

    fn lookup(&self, key: Key) -> IndexResult<Option<Value>> {
        let table = self.snapshot();
        table.shards[table.route(key)].front.lookup(key)
    }

    /// Fans the batch out per shard (one batched probe each) and re-merges
    /// the answers in caller order, all under one routing snapshot.
    fn lookup_batch(&self, keys: &[Key], out: &mut Vec<Option<Value>>) -> IndexResult<()> {
        out.clear();
        out.resize(keys.len(), None);
        if keys.is_empty() {
            return Ok(());
        }
        let table = self.snapshot();
        let mut shard_keys: Vec<Vec<Key>> = vec![Vec::new(); table.shards.len()];
        let mut shard_slots: Vec<Vec<usize>> = vec![Vec::new(); table.shards.len()];
        for (i, &key) in keys.iter().enumerate() {
            let s = table.route(key);
            shard_keys[s].push(key);
            shard_slots[s].push(i);
        }
        let mut answers = Vec::new();
        for s in 0..table.shards.len() {
            if shard_keys[s].is_empty() {
                continue;
            }
            table.shards[s].front.lookup_batch(&shard_keys[s], &mut answers)?;
            for (&slot, answer) in shard_slots[s].iter().zip(answers.drain(..)) {
                out[slot] = answer;
            }
        }
        Ok(())
    }

    /// Stitches one ascending result across shard boundaries: the scan
    /// starts in the owning shard and spills into successive shards until
    /// `count` entries are collected, all under one routing snapshot.
    fn scan(&self, start: Key, count: usize, out: &mut Vec<Entry>) -> IndexResult<usize> {
        out.clear();
        if count == 0 {
            return Ok(0);
        }
        let table = self.snapshot();
        let mut piece = Vec::new();
        for s in table.route(start)..table.shards.len() {
            table.shards[s].front.scan(start, count - out.len(), &mut piece)?;
            out.append(&mut piece);
            if out.len() >= count {
                break;
            }
        }
        Ok(out.len())
    }

    fn scan_batch(&self, ranges: &[(Key, usize)], out: &mut Vec<Vec<Entry>>) -> IndexResult<()> {
        out.clear();
        out.resize_with(ranges.len(), Vec::new);
        for (i, &(start, count)) in ranges.iter().enumerate() {
            self.scan(start, count, &mut out[i])?;
        }
        Ok(())
    }

    fn len(&self) -> u64 {
        self.snapshot().shards.iter().map(|h| h.front.len()).sum()
    }

    /// Structural stats summed across shards; `height` is the deepest
    /// single shard (levels do not stack across independent instances).
    fn stats(&self) -> IndexStats {
        let table = self.snapshot();
        let mut total = IndexStats::default();
        for handle in &table.shards {
            let s = handle.front.stats();
            total.keys += s.keys;
            total.height = total.height.max(s.height);
            total.inner_nodes += s.inner_nodes;
            total.leaf_nodes += s.leaf_nodes;
            total.smo_count += s.smo_count;
        }
        total
    }

    fn storage_blocks(&self) -> u64 {
        self.snapshot().shards.iter().map(|h| h.front.storage_blocks()).sum()
    }
}

impl<I: DiskIndex> IndexWrite for ShardedIndex<I> {
    /// Routes each slice of the (sorted) load to its owning shard.
    /// Exclusive by construction (`&mut self`, before the router is
    /// shared).
    fn bulk_load(&mut self, entries: &[Entry]) -> IndexResult<()> {
        validate_bulk_load(entries)?;
        let table = self.table.get_mut();
        let table = Arc::get_mut(table)
            .ok_or_else(|| IndexError::Internal("bulk_load on a shared router".into()))?;
        let mut start = 0usize;
        for s in 0..table.shards.len() {
            let end = match table.boundaries.get(s) {
                Some(&b) => entries.partition_point(|e| e.0 < b),
                None => entries.len(),
            };
            let handle = Arc::get_mut(&mut table.shards[s])
                .ok_or_else(|| IndexError::Internal("bulk_load on a shared router".into()))?;
            handle.front.bulk_load(&entries[start..end])?;
            start = end;
        }
        Ok(())
    }

    /// The `&mut self` insert is just [`stage`](ShardedIndex::stage) —
    /// provided so the router remains a drop-in [`DiskIndex`].
    fn insert(&mut self, key: Key, value: Value) -> IndexResult<()> {
        self.stage(key, value)
    }

    fn insert_batch(&mut self, entries: &[Entry]) -> IndexResult<()> {
        self.stage_batch(entries)
    }

    fn insert_breakdown(&self) -> InsertBreakdown {
        let table = self.snapshot();
        let mut total = InsertBreakdown::new();
        for handle in &table.shards {
            total.merge(&handle.front.insert_breakdown());
        }
        total
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::payload_for;
    use std::collections::BTreeMap;

    /// The concurrent-module test double, reused: an in-memory map index.
    struct MapIndex {
        disk: Arc<Disk>,
        entries: BTreeMap<Key, Value>,
        loaded: bool,
    }

    impl MapIndex {
        fn new() -> Self {
            MapIndex {
                disk: Disk::in_memory(DiskConfig::default()),
                entries: BTreeMap::new(),
                loaded: false,
            }
        }
    }

    impl IndexRead for MapIndex {
        fn kind(&self) -> IndexKind {
            IndexKind::BTree
        }

        fn disk(&self) -> &Arc<Disk> {
            &self.disk
        }

        fn lookup(&self, key: Key) -> IndexResult<Option<Value>> {
            Ok(self.entries.get(&key).copied())
        }

        fn scan(&self, start: Key, count: usize, out: &mut Vec<Entry>) -> IndexResult<usize> {
            out.clear();
            out.extend(self.entries.range(start..).take(count).map(|(&k, &v)| (k, v)));
            Ok(out.len())
        }

        fn len(&self) -> u64 {
            self.entries.len() as u64
        }

        fn stats(&self) -> IndexStats {
            IndexStats { keys: self.entries.len() as u64, height: 1, ..IndexStats::default() }
        }
    }

    impl IndexWrite for MapIndex {
        fn bulk_load(&mut self, entries: &[Entry]) -> IndexResult<()> {
            if self.loaded {
                return Err(IndexError::AlreadyLoaded);
            }
            validate_bulk_load(entries)?;
            self.entries = entries.iter().copied().collect();
            self.loaded = true;
            Ok(())
        }

        fn insert(&mut self, key: Key, value: Value) -> IndexResult<()> {
            self.entries.insert(key, value);
            Ok(())
        }

        fn insert_breakdown(&self) -> InsertBreakdown {
            InsertBreakdown::new()
        }
    }

    fn loaded_router(shards: usize, keys: u64) -> ShardedIndex<MapIndex> {
        let entries: Vec<Entry> = (0..keys).map(|k| (k * 3, payload_for(k * 3))).collect();
        let sample: Vec<Key> = entries.iter().map(|e| e.0).collect();
        let config = ShardedIndexConfig {
            shards,
            buffer: ShardedWriteBufferConfig { capacity: 16, drain: 8, shards: 2 },
        };
        let mut router = ShardedIndex::with_sampled_boundaries(
            Box::new(|| Ok(MapIndex::new())),
            config,
            &sample,
        )
        .expect("build");
        router.bulk_load(&entries).expect("bulk");
        router
    }

    #[test]
    fn routes_lookups_and_batches_in_caller_order() {
        let router = loaded_router(4, 1_000);
        assert_eq!(router.shard_count(), 4);
        assert_eq!(router.lookup(30).unwrap(), Some(payload_for(30)));
        assert_eq!(router.lookup(31).unwrap(), None);
        // A batch deliberately out of shard order must come back in caller
        // order.
        let keys = [2997, 0, 1500, 7, 2001];
        let mut out = Vec::new();
        router.lookup_batch(&keys, &mut out).unwrap();
        for (i, &k) in keys.iter().enumerate() {
            let expect = if k % 3 == 0 { Some(payload_for(k)) } else { None };
            assert_eq!(out[i], expect, "key {k}");
        }
    }

    #[test]
    fn scan_stitches_across_all_boundaries() {
        let router = loaded_router(4, 1_000);
        let mut out = Vec::new();
        // Start in shard 0 and ask for everything: the result must cross
        // all three boundaries in one ascending run.
        let got = router.scan(0, 1_000, &mut out).unwrap();
        assert_eq!(got, 1_000);
        let expect: Vec<Entry> = (0..1_000u64).map(|k| (k * 3, payload_for(k * 3))).collect();
        assert_eq!(out, expect);
        // Start mid-shard with a count that lands mid-next-shard.
        for &b in &router.boundaries() {
            let start = b.saturating_sub(30);
            router.scan(start, 25, &mut out).unwrap();
            let mut expect = Vec::new();
            let mut k = start.div_ceil(3) * 3;
            while expect.len() < 25 && k < 3_000 {
                expect.push((k, payload_for(k)));
                k += 3;
            }
            assert_eq!(out, expect, "scan across boundary {b}");
        }
    }

    #[test]
    fn staged_writes_are_visible_and_flush_reaches_shards() {
        let router = loaded_router(4, 100);
        router.stage(1, 11).unwrap();
        router.stage(299, 12).unwrap();
        assert_eq!(router.lookup(1).unwrap(), Some(11));
        assert_eq!(router.lookup(299).unwrap(), Some(12));
        router.flush().unwrap();
        assert_eq!(router.lookup(1).unwrap(), Some(11));
        assert_eq!(router.len(), 102);
    }

    #[test]
    fn split_preserves_content_and_routes_new_writes() {
        let router = loaded_router(2, 400);
        let before: Vec<Entry> = {
            let mut v = Vec::new();
            router.scan(0, 400, &mut v).unwrap();
            v
        };
        let pivot = router.split_shard(0, None).unwrap();
        assert_eq!(router.shard_count(), 3);
        assert!(router.boundaries().contains(&pivot));
        let mut after = Vec::new();
        router.scan(0, 400, &mut after).unwrap();
        assert_eq!(before, after, "split must not change visible content");
        router.stage(pivot, 77).unwrap();
        assert_eq!(router.shard_of(pivot), 1, "pivot key routes to the right half");
        assert_eq!(router.lookup(pivot).unwrap(), Some(77));
        assert_eq!(router.splits(), 1);
    }

    #[test]
    fn merge_preserves_content_and_removes_boundary() {
        let router = loaded_router(4, 400);
        let mut before = Vec::new();
        router.scan(0, 400, &mut before).unwrap();
        router.merge_shards(1).unwrap();
        assert_eq!(router.shard_count(), 3);
        let mut after = Vec::new();
        router.scan(0, 400, &mut after).unwrap();
        assert_eq!(before, after, "merge must not change visible content");
        assert_eq!(router.merges(), 1);
    }

    #[test]
    fn split_rejects_out_of_range_pivots() {
        let router = loaded_router(2, 100);
        let b = router.boundaries()[0];
        assert!(router.split_shard(0, Some(0)).is_err(), "pivot at range_lo");
        assert!(router.split_shard(0, Some(b)).is_err(), "pivot at range_hi");
        assert!(router.split_shard(5, None).is_err(), "shard out of range");
        assert!(router.merge_shards(1).is_err(), "merge right neighbour missing");
    }

    #[test]
    fn empty_and_single_key_shards_serve_all_paths() {
        // Explicit boundaries carving out an empty shard [10, 20) and a
        // single-key shard [20, 30) around a population of 0..10 and 25.
        let config = ShardedIndexConfig {
            shards: 3,
            buffer: ShardedWriteBufferConfig { capacity: 8, drain: 4, shards: 1 },
        };
        let mut router = ShardedIndex::with_boundaries(
            Box::new(|| Ok(MapIndex::new())),
            config,
            vec![10, 20, 30],
        )
        .expect("build");
        let entries: Vec<Entry> =
            (0..10u64).map(|k| (k, payload_for(k))).chain([(25, 26)]).collect();
        router.bulk_load(&entries).unwrap();
        assert_eq!(router.shard_count(), 4);
        assert_eq!(router.lookup(15).unwrap(), None);
        assert_eq!(router.lookup(25).unwrap(), Some(26));
        let mut out = Vec::new();
        // A scan starting inside the empty shard must spill into the
        // single-key shard and beyond.
        let got = router.scan(12, 10, &mut out).unwrap();
        assert_eq!(got, 1);
        assert_eq!(out, vec![(25, 26)]);
        // Splitting the empty shard is impossible (no key), merging it
        // away works.
        assert!(router.split_shard(1, None).is_err());
        router.merge_shards(1).unwrap();
        assert_eq!(router.shard_count(), 3);
        assert_eq!(router.lookup(25).unwrap(), Some(26));
    }

    #[test]
    fn racing_writers_and_readers_survive_split_and_merge() {
        let router = loaded_router(2, 2_000);
        let stop = AtomicBool::new(false);
        std::thread::scope(|scope| {
            let router = &router;
            let stop = &stop;
            for t in 0..2u64 {
                scope.spawn(move || {
                    let mut i = 0u64;
                    while !stop.load(Ordering::Relaxed) {
                        let key = (i * 2 + t) % 6_000;
                        router.stage(key, key ^ 0xABCD).expect("stage");
                        i += 1;
                    }
                });
            }
            scope.spawn(move || {
                let mut out = Vec::new();
                while !stop.load(Ordering::Relaxed) {
                    router.lookup(1_234).expect("lookup");
                    router.scan(5_900, 64, &mut out).expect("scan");
                }
            });
            for _ in 0..4 {
                let s = router.shard_count() - 1;
                router.split_shard(s, None).expect("split");
                router.merge_shards(router.shard_count() - 2).expect("merge");
            }
            stop.store(true, Ordering::Relaxed);
        });
        // Every write that was staged must still be visible: flush and
        // spot-check a full scan against the inner maps.
        router.flush().unwrap();
        let mut all = Vec::new();
        router.scan(0, 100_000, &mut all).unwrap();
        assert_eq!(all.len() as u64, router.len());
        assert!(all.windows(2).all(|w| w[0].0 < w[1].0), "scan stays sorted");
    }

    #[test]
    fn aggregate_stats_cover_every_shard_disk() {
        let router = loaded_router(4, 200);
        for disk in router.shard_disks() {
            disk.stats().record_buffer_hit();
        }
        let total = router.aggregate_stats();
        assert_eq!(total.buffer_hits, 4, "one hit per shard disk must sum");
    }

    #[test]
    fn bulk_load_routes_slices_by_boundary() {
        let router = loaded_router(4, 1_000);
        let lens = router.shard_lens();
        assert_eq!(lens.iter().sum::<u64>(), 1_000);
        assert!(
            lens.iter().all(|&l| l > 150),
            "sampled quantiles must balance the load, got {lens:?}"
        );
    }
}
