//! A group-commit write front for any [`DiskIndex`].
//!
//! PGM is the only studied design whose insert path is inherently batched:
//! its LSM insert run absorbs writes in memory-cheap sorted blocks and pays
//! the structural cost once per flush — which is why the paper's Fig. 5/6
//! show it dominating Write-Only workloads. [`WriteBuffer`] gives every
//! other design the same shape *outside* the index: inserts are staged in a
//! sorted in-memory buffer, reads are served through a newest-wins overlay
//! over the wrapped index, and when the buffer reaches its configured
//! capacity the staged entries are drained — sorted — through
//! [`IndexWrite::insert_batch`], where the per-design overrides amortise
//! block fetches, pin lifetimes and SMO work across the run.
//!
//! The lifecycle is *stage → overlay-read → drain* (`DESIGN.md` §3.4):
//!
//! * **stage** — [`WriteBuffer::insert`] upserts into a [`BTreeMap`]; no
//!   I/O is performed and duplicate keys collapse in the buffer.
//! * **overlay-read** — every [`IndexRead`] method answers from the buffer
//!   first: a staged key wins over whatever the wrapped index stores
//!   (newest-wins), scans merge the staged range into the index's entries,
//!   and [`lookup_batch`] forwards only unresolved keys to the wrapped
//!   index's (possibly overridden) batched path.
//! * **drain** — at `capacity` staged entries the buffer empties itself
//!   through `insert_batch` in chunks of `drain` entries; [`flush`] and
//!   [`into_inner`] drain on demand.
//!
//! [`lookup_batch`]: IndexRead::lookup_batch
//! [`flush`]: WriteBuffer::flush
//! [`into_inner`]: WriteBuffer::into_inner

use std::collections::BTreeMap;
use std::sync::Arc;

use lidx_storage::{Disk, FileId, OpClass, WalSegment};

use crate::error::IndexResult;
use crate::index::{DiskIndex, IndexKind, IndexRead, IndexStats, IndexWrite};
use crate::metrics::InsertBreakdown;
use crate::persist::{decode_wal_entries, encode_wal_entry, Manifest};
use crate::{Entry, Key, Value};

/// Configuration of a [`WriteBuffer`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct WriteBufferConfig {
    /// Number of staged entries that triggers an automatic drain. Larger
    /// capacities amortise more structural work per drain at the cost of a
    /// larger in-memory overlay (the PGM default run of 585 entries is a
    /// reasonable reference point).
    pub capacity: usize,
    /// Maximum entries handed to one [`IndexWrite::insert_batch`] call
    /// while draining; a drain always empties the buffer, issuing
    /// `ceil(staged / drain)` batch calls. Bounding this keeps the wrapped
    /// index's per-batch working state (pinned leaves, merged buffers)
    /// small without giving up the group commit.
    pub drain: usize,
}

impl Default for WriteBufferConfig {
    fn default() -> Self {
        WriteBufferConfig { capacity: 1024, drain: 1024 }
    }
}

/// A group-commit staging layer in front of a [`DiskIndex`].
///
/// `WriteBuffer` implements both halves of the index API itself, so it is a
/// drop-in `DiskIndex`: reads observe staged entries immediately
/// (newest-wins overlay), writes stage until the configured threshold and
/// then drain through the wrapped index's batched insert path.
///
/// # Length caveat
///
/// Like PGM's insert run, the buffer does not probe the wrapped index at
/// stage time, so [`len`](IndexRead::len) counts a staged key that also
/// exists on disk twice until a drain reconciles it. Workloads inserting
/// fresh keys (the paper's write workloads) are exact.
///
/// # Example
///
/// ```
/// use lidx_core::index::{IndexKind, IndexRead, IndexStats, IndexWrite};
/// use lidx_core::write_buffer::{WriteBuffer, WriteBufferConfig};
/// use lidx_core::{Entry, IndexResult, InsertBreakdown, Key, Value};
/// use lidx_storage::{Disk, DiskConfig};
/// use std::sync::Arc;
///
/// struct VecIndex {
///     disk: Arc<Disk>,
///     entries: Vec<Entry>, // sorted by key
/// }
///
/// impl IndexRead for VecIndex {
///     fn kind(&self) -> IndexKind { IndexKind::BTree }
///     fn disk(&self) -> &Arc<Disk> { &self.disk }
///     fn lookup(&self, key: Key) -> IndexResult<Option<Value>> {
///         Ok(self.entries.binary_search_by_key(&key, |e| e.0).ok().map(|i| self.entries[i].1))
///     }
///     fn scan(&self, start: Key, count: usize, out: &mut Vec<Entry>) -> IndexResult<usize> {
///         out.clear();
///         let from = self.entries.partition_point(|e| e.0 < start);
///         out.extend(self.entries[from..].iter().take(count));
///         Ok(out.len())
///     }
///     fn len(&self) -> u64 { self.entries.len() as u64 }
///     fn stats(&self) -> IndexStats { IndexStats::default() }
/// }
///
/// impl IndexWrite for VecIndex {
///     fn bulk_load(&mut self, entries: &[Entry]) -> IndexResult<()> {
///         self.entries = entries.to_vec();
///         Ok(())
///     }
///     fn insert(&mut self, key: Key, value: Value) -> IndexResult<()> {
///         match self.entries.binary_search_by_key(&key, |e| e.0) {
///             Ok(i) => self.entries[i].1 = value,
///             Err(i) => self.entries.insert(i, (key, value)),
///         }
///         Ok(())
///     }
///     fn insert_breakdown(&self) -> InsertBreakdown { InsertBreakdown::new() }
/// }
///
/// let index = VecIndex { disk: Disk::in_memory(DiskConfig::default()), entries: Vec::new() };
/// let mut buffered = WriteBuffer::new(index, WriteBufferConfig { capacity: 4, drain: 4 });
/// buffered.bulk_load(&[(10, 1), (30, 3)])?;
///
/// // Staged inserts are visible immediately (newest-wins overlay) ...
/// buffered.insert(20, 2)?;
/// buffered.insert(10, 9)?;
/// assert_eq!(buffered.lookup(20)?, Some(2));
/// assert_eq!(buffered.lookup(10)?, Some(9), "a staged key shadows the stored payload");
/// let mut rows = Vec::new();
/// buffered.scan(0, 10, &mut rows)?;
/// assert_eq!(rows, vec![(10, 9), (20, 2), (30, 3)]);
///
/// // ... and reach the wrapped index in one sorted batch on drain.
/// assert_eq!(buffered.staged_len(), 2);
/// buffered.flush()?;
/// assert_eq!(buffered.staged_len(), 0);
/// assert_eq!(buffered.insert_breakdown().drains, 1);
/// let index = buffered.into_inner()?;
/// assert_eq!(index.entries, vec![(10, 9), (20, 2), (30, 3)]);
/// # Ok::<(), lidx_core::IndexError>(())
/// ```
pub struct WriteBuffer<I> {
    inner: I,
    config: WriteBufferConfig,
    staged: BTreeMap<Key, Value>,
    drains: u64,
    drained_entries: u64,
    /// When attached, every staged entry is appended here before it enters
    /// the overlay, and drains run the checkpoint protocol (sync → drain →
    /// save_meta → superblock persist → truncate).
    wal: Option<WalSegment>,
    /// The design tag written into the manifest (only used with a WAL).
    tag: String,
}

impl<I: DiskIndex> WriteBuffer<I> {
    /// Wraps `inner` behind a staging buffer with the given configuration.
    pub fn new(inner: I, config: WriteBufferConfig) -> Self {
        assert!(config.capacity >= 1, "write buffer capacity must hold at least one entry");
        assert!(config.drain >= 1, "drain chunks must carry at least one entry");
        WriteBuffer {
            inner,
            config,
            staged: BTreeMap::new(),
            drains: 0,
            drained_entries: 0,
            wal: None,
            tag: String::new(),
        }
    }

    /// Wraps `inner` with a freshly created write-ahead log on its disk.
    ///
    /// Every staged entry is logged (group-committed) before it becomes
    /// visible, and every drain ends in a full checkpoint: WAL sync, drain,
    /// [`IndexWrite::save_meta`], superblock persist of the [`Manifest`]
    /// (carrying `tag`), WAL truncate. A process killed at any point resumes
    /// from the last checkpoint plus the WAL's replayable suffix.
    pub fn with_wal(inner: I, config: WriteBufferConfig, tag: &str) -> IndexResult<Self> {
        let wal = WalSegment::create(inner.disk())?;
        let mut wb = Self::new(inner, config);
        wb.wal = Some(wal);
        wb.tag = tag.to_string();
        Ok(wb)
    }

    /// Reopens a WAL-backed buffer after a restart: replays the log segment
    /// stored in `wal_file` into the staging overlay (newest-wins, so
    /// re-staging entries an interrupted drain already applied is harmless)
    /// and returns the buffer plus the number of replayed entries.
    ///
    /// `inner` must already be the design's `load`-ed handle over the same
    /// disk. The disk's caches are invalidated so every post-recovery read
    /// observes device state, not frames cached while replaying.
    pub fn with_wal_replayed(
        inner: I,
        config: WriteBufferConfig,
        tag: &str,
        wal_file: FileId,
    ) -> IndexResult<(Self, u64)> {
        let disk = Arc::clone(inner.disk());
        let _span = disk.telemetry().span(OpClass::Recovery);
        let (wal, payloads) = WalSegment::open(&disk, wal_file)?;
        let mut wb = Self::new(inner, config);
        wb.wal = Some(wal);
        wb.tag = tag.to_string();
        let mut replayed = 0u64;
        for payload in payloads {
            for (key, value) in decode_wal_entries(&payload)? {
                wb.staged.insert(key, value);
                replayed += 1;
            }
        }
        disk.invalidate_caches();
        disk.telemetry().add(OpClass::Recovery, replayed);
        Ok((wb, replayed))
    }

    /// Wraps `inner` with the default configuration.
    pub fn with_default_config(inner: I) -> Self {
        Self::new(inner, WriteBufferConfig::default())
    }

    /// The configuration in use.
    pub fn config(&self) -> WriteBufferConfig {
        self.config
    }

    /// Number of entries currently staged (not yet drained).
    pub fn staged_len(&self) -> usize {
        self.staged.len()
    }

    /// Number of drains performed so far.
    pub fn drains(&self) -> u64 {
        self.drains
    }

    /// Shared access to the wrapped index.
    pub fn inner(&self) -> &I {
        &self.inner
    }

    /// Drains every staged entry into the wrapped index through its
    /// [`IndexWrite::insert_batch`] path, in ascending key order, in chunks
    /// of at most [`WriteBufferConfig::drain`] entries.
    ///
    /// A chunk leaves the staging buffer only once its `insert_batch` call
    /// succeeded, so a mid-drain error keeps every not-yet-applied entry
    /// staged (and still served by the overlay); retrying `flush` resumes
    /// where the failure happened. The drain counters likewise only cover
    /// entries actually handed over.
    pub fn flush(&mut self) -> IndexResult<()> {
        if self.staged.is_empty() {
            return Ok(());
        }
        // Fsync-point: with a WAL attached, every staged entry must be
        // durable *before* the drain starts mutating index blocks — a kill
        // mid-drain then replays the full staged set over the last
        // checkpoint's structure.
        if let Some(wal) = &mut self.wal {
            wal.sync()?;
        }
        self.drains += 1;
        {
            // The drain is the group-commit pause every overlapping reader
            // and writer feels; the span is scoped to the batch loop so the
            // checkpoint tail reports under its own class.
            let disk = Arc::clone(self.inner.disk());
            let _span = disk.telemetry().span(OpClass::Drain);
            while !self.staged.is_empty() {
                let chunk: Vec<Entry> =
                    self.staged.iter().take(self.config.drain).map(|(&k, &v)| (k, v)).collect();
                self.inner.insert_batch(&chunk)?;
                self.drained_entries += chunk.len() as u64;
                disk.telemetry().add(OpClass::Drain, chunk.len() as u64);
                for &(key, _) in &chunk {
                    self.staged.remove(&key);
                }
            }
        }
        self.write_checkpoint(false)?;
        Ok(())
    }

    /// Forces buffered WAL bytes to the device without draining, bounding
    /// what a crash right now could lose to nothing. No-op without a WAL.
    pub fn sync_wal(&mut self) -> IndexResult<()> {
        match &mut self.wal {
            Some(wal) => Ok(wal.sync()?),
            None => Ok(()),
        }
    }

    /// Drains everything and writes a durable checkpoint with the given
    /// clean-shutdown flag. `checkpoint(true)` is the orderly-shutdown path;
    /// crash-recovery tests call `checkpoint(false)` to leave the directory
    /// in the same shape a kill would. No-op without a WAL beyond the drain.
    pub fn checkpoint(&mut self, clean: bool) -> IndexResult<()> {
        self.flush()?;
        self.write_checkpoint(clean)
    }

    /// The checkpoint tail: capture `save_meta`, persist the manifest in the
    /// superblock, then retire the WAL. Ordering is load-bearing — the WAL
    /// may only be truncated once the superblock owning the drained state is
    /// durable, so a kill between the two steps merely replays entries the
    /// drain already applied (idempotent under newest-wins).
    fn write_checkpoint(&mut self, clean: bool) -> IndexResult<()> {
        let Some(wal) = &mut self.wal else {
            return Ok(());
        };
        let disk = Arc::clone(self.inner.disk());
        let _span = disk.telemetry().span(OpClass::Checkpoint);
        disk.stats().record_checkpoint();
        let index_meta = self.inner.save_meta()?;
        let manifest =
            Manifest { index_kind: self.tag.clone(), index_meta, wal_files: vec![wal.file()] };
        self.inner.disk().persist(&manifest.encode(), clean)?;
        wal.truncate()?;
        Ok(())
    }

    /// Flushes any staged entries and returns the wrapped index.
    pub fn into_inner(mut self) -> IndexResult<I> {
        self.flush()?;
        Ok(self.inner)
    }
}

impl<I: DiskIndex> IndexRead for WriteBuffer<I> {
    fn kind(&self) -> IndexKind {
        self.inner.kind()
    }

    fn name(&self) -> String {
        format!("{}+wb", self.inner.name())
    }

    fn disk(&self) -> &Arc<Disk> {
        self.inner.disk()
    }

    fn lookup(&self, key: Key) -> IndexResult<Option<Value>> {
        if let Some(&v) = self.staged.get(&key) {
            return Ok(Some(v));
        }
        self.inner.lookup(key)
    }

    /// Answers staged keys from the overlay and forwards only the unresolved
    /// remainder to the wrapped index's `lookup_batch`, so a buffered index
    /// keeps whatever batched-probe amortisation the design implements.
    fn lookup_batch(&self, keys: &[Key], out: &mut Vec<Option<Value>>) -> IndexResult<()> {
        out.clear();
        out.resize(keys.len(), None);
        if keys.is_empty() {
            return Ok(());
        }
        let mut forward_keys = Vec::new();
        let mut forward_idx = Vec::new();
        for (i, &key) in keys.iter().enumerate() {
            match self.staged.get(&key) {
                Some(&v) => out[i] = Some(v),
                None => {
                    forward_keys.push(key);
                    forward_idx.push(i);
                }
            }
        }
        if forward_keys.is_empty() {
            return Ok(());
        }
        let mut answers = Vec::new();
        self.inner.lookup_batch(&forward_keys, &mut answers)?;
        for (slot, answer) in forward_idx.into_iter().zip(answers) {
            out[slot] = answer;
        }
        Ok(())
    }

    /// Merges the staged range `[start, ..)` into the wrapped index's scan
    /// result, newest-wins on duplicate keys, preserving the [`scan`]
    /// contract (ascending keys, no duplicates, up to `count` entries).
    ///
    /// [`scan`]: IndexRead::scan
    fn scan(&self, start: Key, count: usize, out: &mut Vec<Entry>) -> IndexResult<usize> {
        if self.staged.is_empty() {
            return self.inner.scan(start, count, out);
        }
        // `stored` holds the `count` smallest stored keys >= start, so the
        // merged result's first `count` entries can only draw from `stored`
        // and the staged range — no further index I/O is needed. (No
        // count-sized preallocation: full-table scans legitimately pass
        // huge sentinel counts.)
        let mut stored = Vec::new();
        self.inner.scan(start, count, &mut stored)?;
        out.clear();
        if count == 0 {
            return Ok(0);
        }
        let staged = self.staged.range(start..).map(|(&k, &v)| (k, v));
        crate::merge_newest_wins(staged, stored, count, out);
        Ok(out.len())
    }

    /// Total keys visible through the overlay. Staged keys that also exist
    /// in the wrapped index are counted twice until a drain reconciles them
    /// (the same lazy reconciliation PGM applies to its insert run).
    fn len(&self) -> u64 {
        self.inner.len() + self.staged.len() as u64
    }

    fn stats(&self) -> IndexStats {
        self.inner.stats()
    }

    fn storage_blocks(&self) -> u64 {
        self.inner.storage_blocks()
    }
}

impl<I: DiskIndex> IndexWrite for WriteBuffer<I> {
    /// Bulk load goes straight to the wrapped index (the buffer only stages
    /// post-load inserts). With a WAL attached, the load ends in a durable
    /// checkpoint so a directory is reopenable right after building.
    fn bulk_load(&mut self, entries: &[Entry]) -> IndexResult<()> {
        self.inner.bulk_load(entries)?;
        self.write_checkpoint(false)
    }

    /// Stages the entry; drains automatically once `capacity` entries are
    /// buffered. With a WAL attached the entry is logged (group-committed)
    /// first — a stage that cannot be logged does not happen. No index I/O
    /// happens on the non-draining path.
    fn insert(&mut self, key: Key, value: Value) -> IndexResult<()> {
        if let Some(wal) = &mut self.wal {
            wal.append(&encode_wal_entry(key, value))?;
        }
        self.staged.insert(key, value);
        if self.staged.len() >= self.config.capacity {
            self.flush()?;
        }
        Ok(())
    }

    /// Stages the whole batch (later duplicates win, as the contract
    /// requires), draining whenever the staging threshold is crossed.
    fn insert_batch(&mut self, entries: &[Entry]) -> IndexResult<()> {
        for &(key, value) in entries {
            self.insert(key, value)?;
        }
        Ok(())
    }

    /// The wrapped index's breakdown (which already carries the drained
    /// batches' search/insert/SMO cost) plus this buffer's drain counters.
    fn insert_breakdown(&self) -> InsertBreakdown {
        let mut breakdown = self.inner.insert_breakdown();
        breakdown.drains += self.drains;
        breakdown.drained_entries += self.drained_entries;
        breakdown
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::error::IndexError;

    /// A minimal in-memory index that counts how writes arrive, so the tests
    /// can observe the group-commit behaviour without a real index crate.
    struct MapIndex {
        disk: Arc<Disk>,
        entries: BTreeMap<Key, Value>,
        batches: Vec<usize>,
        singles: u64,
        loaded: bool,
        /// A batch containing this key fails before applying anything.
        poison: Option<Key>,
    }

    impl MapIndex {
        fn new() -> Self {
            MapIndex {
                disk: Disk::in_memory(lidx_storage::DiskConfig::default()),
                entries: BTreeMap::new(),
                batches: Vec::new(),
                singles: 0,
                loaded: false,
                poison: None,
            }
        }
    }

    impl IndexRead for MapIndex {
        fn kind(&self) -> IndexKind {
            IndexKind::BTree
        }

        fn disk(&self) -> &Arc<Disk> {
            &self.disk
        }

        fn lookup(&self, key: Key) -> IndexResult<Option<Value>> {
            Ok(self.entries.get(&key).copied())
        }

        fn scan(&self, start: Key, count: usize, out: &mut Vec<Entry>) -> IndexResult<usize> {
            out.clear();
            out.extend(self.entries.range(start..).take(count).map(|(&k, &v)| (k, v)));
            Ok(out.len())
        }

        fn len(&self) -> u64 {
            self.entries.len() as u64
        }

        fn stats(&self) -> IndexStats {
            IndexStats { keys: self.entries.len() as u64, ..Default::default() }
        }
    }

    impl IndexWrite for MapIndex {
        fn bulk_load(&mut self, entries: &[Entry]) -> IndexResult<()> {
            if self.loaded {
                return Err(IndexError::AlreadyLoaded);
            }
            self.entries = entries.iter().copied().collect();
            self.loaded = true;
            Ok(())
        }

        fn insert(&mut self, key: Key, value: Value) -> IndexResult<()> {
            self.singles += 1;
            self.entries.insert(key, value);
            Ok(())
        }

        fn insert_batch(&mut self, entries: &[Entry]) -> IndexResult<()> {
            if let Some(poison) = self.poison {
                if entries.iter().any(|&(k, _)| k == poison) {
                    self.poison = None; // fail exactly once, so a retry works
                    return Err(IndexError::Internal("poisoned batch".into()));
                }
            }
            self.batches.push(entries.len());
            assert!(
                entries.windows(2).all(|w| w[0].0 < w[1].0),
                "drains must arrive sorted and de-duplicated"
            );
            for &(k, v) in entries {
                self.entries.insert(k, v);
            }
            Ok(())
        }

        fn insert_breakdown(&self) -> InsertBreakdown {
            InsertBreakdown::new()
        }
    }

    #[test]
    fn stages_then_drains_in_sorted_chunks() {
        let mut wb = WriteBuffer::new(MapIndex::new(), WriteBufferConfig { capacity: 6, drain: 4 });
        wb.bulk_load(&[(1, 1)]).unwrap();
        for key in [9u64, 3, 7, 5, 11] {
            wb.insert(key, key * 10).unwrap();
        }
        assert_eq!(wb.staged_len(), 5, "below capacity: nothing drained yet");
        assert!(wb.inner().batches.is_empty());
        wb.insert(13, 130).unwrap();
        assert_eq!(wb.staged_len(), 0, "hitting capacity drains everything");
        assert_eq!(wb.inner().batches, vec![4, 2], "6 entries drain as ceil(6/4) chunks");
        assert_eq!(wb.inner().singles, 0, "drains go through insert_batch, never insert");
        let b = wb.insert_breakdown();
        assert_eq!(b.drains, 1);
        assert_eq!(b.drained_entries, 6);
    }

    #[test]
    fn overlay_reads_are_newest_wins() {
        let mut wb = WriteBuffer::new(MapIndex::new(), WriteBufferConfig::default());
        wb.bulk_load(&[(10, 1), (20, 2), (30, 3)]).unwrap();
        wb.insert(20, 99).unwrap();
        wb.insert(25, 50).unwrap();
        assert_eq!(wb.lookup(20).unwrap(), Some(99), "staged overwrite shadows the stored value");
        assert_eq!(wb.lookup(25).unwrap(), Some(50));
        assert_eq!(wb.lookup(10).unwrap(), Some(1), "unstaged keys read through");
        assert_eq!(wb.lookup(11).unwrap(), None);

        let mut out = Vec::new();
        assert_eq!(wb.scan(0, 10, &mut out).unwrap(), 4);
        assert_eq!(out, vec![(10, 1), (20, 99), (25, 50), (30, 3)]);
        // Truncation still respects the merged order.
        assert_eq!(wb.scan(15, 2, &mut out).unwrap(), 2);
        assert_eq!(out, vec![(20, 99), (25, 50)]);
        assert_eq!(wb.scan(0, 0, &mut out).unwrap(), 0);

        let mut answers = Vec::new();
        wb.lookup_batch(&[20, 11, 25, 10, 20], &mut answers).unwrap();
        assert_eq!(answers, vec![Some(99), None, Some(50), Some(1), Some(99)]);
    }

    #[test]
    fn flush_and_into_inner_reconcile_the_overlay() {
        let mut wb = WriteBuffer::new(MapIndex::new(), WriteBufferConfig::default());
        wb.bulk_load(&[(10, 1)]).unwrap();
        wb.insert(10, 7).unwrap();
        wb.insert(20, 2).unwrap();
        assert_eq!(wb.len(), 3, "a staged overwrite double-counts until the drain");
        wb.flush().unwrap();
        assert_eq!(wb.len(), 2, "drained: the wrapped index reconciles the overwrite");
        assert_eq!(wb.lookup(10).unwrap(), Some(7));
        let inner = wb.into_inner().unwrap();
        assert_eq!(inner.entries.get(&20), Some(&2));
    }

    #[test]
    fn scan_accepts_full_table_sentinel_counts() {
        // The repo's full-scan idiom passes huge counts; a count-sized
        // preallocation would abort with a capacity overflow.
        let mut wb = WriteBuffer::new(MapIndex::new(), WriteBufferConfig::default());
        wb.bulk_load(&[(10, 1), (20, 2)]).unwrap();
        wb.insert(15, 5).unwrap();
        let mut out = Vec::new();
        assert_eq!(wb.scan(0, usize::MAX / 2, &mut out).unwrap(), 3);
        assert_eq!(out, vec![(10, 1), (15, 5), (20, 2)]);
    }

    #[test]
    fn failed_drain_chunks_keep_their_entries_staged() {
        let mut inner = MapIndex::new();
        inner.poison = Some(7); // the second drain chunk will fail once
        let mut wb = WriteBuffer::new(inner, WriteBufferConfig { capacity: 64, drain: 2 });
        wb.bulk_load(&[]).unwrap();
        for key in [1u64, 3, 7, 9, 11, 13] {
            wb.insert(key, key * 10).unwrap();
        }
        assert!(wb.flush().is_err(), "the poisoned chunk must surface its error");
        // Chunk 1 ((1, 3)) was applied and unstaged; the rest stayed staged
        // and the overlay keeps serving them.
        assert_eq!(wb.inner().entries.len(), 2);
        assert_eq!(wb.staged_len(), 4);
        for key in [1u64, 3, 7, 9, 11, 13] {
            assert_eq!(wb.lookup(key).unwrap(), Some(key * 10), "key {key} lost by failed drain");
        }
        assert_eq!(wb.insert_breakdown().drained_entries, 2, "only applied entries count");
        // A retry resumes exactly where the failure happened.
        wb.flush().unwrap();
        assert_eq!(wb.staged_len(), 0);
        assert_eq!(wb.inner().entries.len(), 6);
        let b = wb.insert_breakdown();
        assert_eq!(b.drained_entries, 6);
        assert_eq!(b.drains, 2);
    }

    #[test]
    fn duplicate_staged_keys_collapse_latest_wins() {
        let mut wb = WriteBuffer::new(MapIndex::new(), WriteBufferConfig { capacity: 8, drain: 8 });
        wb.bulk_load(&[]).unwrap();
        wb.insert_batch(&[(5, 1), (5, 2), (5, 3)]).unwrap();
        assert_eq!(wb.staged_len(), 1);
        assert_eq!(wb.lookup(5).unwrap(), Some(3));
        wb.flush().unwrap();
        assert_eq!(wb.inner().entries.get(&5), Some(&3));
        assert_eq!(wb.insert_breakdown().drained_entries, 1);
    }
}
