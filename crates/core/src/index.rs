//! The [`DiskIndex`] trait implemented by every evaluated index.

use std::sync::Arc;

use lidx_storage::Disk;

use crate::error::IndexResult;
use crate::metrics::InsertBreakdown;
use crate::{Entry, Key, Value};

/// Which index family an implementation belongs to.
///
/// The variants mirror Table 1 of the paper, plus the hybrid designs of
/// §6.1.2 ("learned inner structure + B+-tree-styled leaf nodes").
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum IndexKind {
    /// The traditional on-disk B+-tree baseline.
    BTree,
    /// FITing-tree (Galakatos et al., SIGMOD 2019) with the Delta insert
    /// strategy, extended for disk as in §4.2.
    FitingTree,
    /// PGM-index (Ferragina & Vinciguerra, VLDB 2020) with LSM-style
    /// arbitrary inserts.
    Pgm,
    /// ALEX (Ding et al., SIGMOD 2020) extended for disk as in §4.1.
    Alex,
    /// LIPP (Wu et al., VLDB 2021) extended for disk as in §4.2.
    Lipp,
    /// A hybrid design: learned inner structure over dense, linked leaf
    /// blocks (§6.1.2 / Table 5).
    Hybrid,
}

impl IndexKind {
    /// Short lowercase name used in experiment output.
    pub fn name(self) -> &'static str {
        match self {
            IndexKind::BTree => "btree",
            IndexKind::FitingTree => "fiting",
            IndexKind::Pgm => "pgm",
            IndexKind::Alex => "alex",
            IndexKind::Lipp => "lipp",
            IndexKind::Hybrid => "hybrid",
        }
    }

    /// All concrete (non-hybrid) index kinds evaluated by the paper, in the
    /// order the figures list them.
    pub const EVALUATED: [IndexKind; 5] =
        [IndexKind::BTree, IndexKind::FitingTree, IndexKind::Pgm, IndexKind::Alex, IndexKind::Lipp];
}

impl std::fmt::Display for IndexKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// Structural statistics an index can report about itself.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct IndexStats {
    /// Number of keys currently stored.
    pub keys: u64,
    /// Height of the structure (levels from root to the deepest leaf,
    /// counting both ends). For PGM's LSM variant this is the height of the
    /// largest level.
    pub height: u32,
    /// Number of inner (routing) nodes.
    pub inner_nodes: u64,
    /// Number of leaf / data nodes (segments, data nodes, ...).
    pub leaf_nodes: u64,
    /// Number of structural modification operations performed so far.
    pub smo_count: u64,
}

/// The shared-lookup (read) side of a disk-resident index.
///
/// Every method takes `&self`, so a bulk-loaded ("frozen") index can serve
/// N reader threads concurrently: share the index behind a plain reference
/// (e.g. via [`std::thread::scope`]) or an `Arc` and call [`lookup`] /
/// [`scan`] from as many threads as you like. The `Send + Sync` supertraits
/// make that contract part of the type: implementations must confine any
/// interior mutability to thread-safe state (in this workspace that is the
/// [`Disk`] layer — atomic statistics plus a lock-striped buffer pool — and
/// nothing in the index structures themselves).
///
/// **Frozen-index contract.** A bare index has no internal versioning or
/// latching beyond the storage layer: concurrent reads are only
/// *meaningful* against an index that is not being mutated, and Rust's
/// borrow rules enforce that for free — [`IndexWrite::insert`] and
/// [`IndexWrite::bulk_load`] take `&mut self`, so a writer cannot coexist
/// with shared readers. To race readers against a mutating index, wrap it
/// in [`crate::concurrent::ConcurrentIndex`] (an explicit reader/writer
/// lock whose drains take exclusive access per chunk) or the full
/// [`crate::concurrent::ShardedWriteBuffer`] staging front.
///
/// # Example
///
/// The batched entry points are plain contracts over [`lookup`] / [`scan`],
/// shown here with a minimal in-memory implementation:
///
/// ```
/// use std::sync::Arc;
/// use lidx_core::index::{IndexKind, IndexRead, IndexStats};
/// use lidx_core::{Entry, IndexResult, Key, Value};
/// use lidx_storage::{Disk, DiskConfig};
///
/// struct VecIndex {
///     disk: Arc<Disk>,
///     entries: Vec<Entry>, // sorted by key
/// }
///
/// impl IndexRead for VecIndex {
///     fn kind(&self) -> IndexKind { IndexKind::BTree }
///     fn disk(&self) -> &Arc<Disk> { &self.disk }
///     fn lookup(&self, key: Key) -> IndexResult<Option<Value>> {
///         Ok(self.entries.binary_search_by_key(&key, |e| e.0).ok().map(|i| self.entries[i].1))
///     }
///     fn scan(&self, start: Key, count: usize, out: &mut Vec<Entry>) -> IndexResult<usize> {
///         out.clear();
///         let from = self.entries.partition_point(|e| e.0 < start);
///         out.extend(self.entries[from..].iter().take(count));
///         Ok(out.len())
///     }
///     fn len(&self) -> u64 { self.entries.len() as u64 }
///     fn stats(&self) -> IndexStats { IndexStats::default() }
/// }
///
/// let index = VecIndex {
///     disk: Disk::in_memory(DiskConfig::default()),
///     entries: vec![(10, 1), (20, 2), (30, 3)],
/// };
/// // lookup_batch answers positionally; duplicates and misses are fine.
/// let mut answers = Vec::new();
/// index.lookup_batch(&[20, 99, 20], &mut answers)?;
/// assert_eq!(answers, vec![Some(2), None, Some(2)]);
/// // scan_batch runs one scan per (start, count) range.
/// let mut rows = Vec::new();
/// index.scan_batch(&[(15, 2), (0, 1)], &mut rows)?;
/// assert_eq!(rows, vec![vec![(20, 2), (30, 3)], vec![(10, 1)]]);
/// # Ok::<(), lidx_core::IndexError>(())
/// ```
///
/// [`lookup`]: IndexRead::lookup
/// [`scan`]: IndexRead::scan
pub trait IndexRead: Send + Sync {
    /// Which family this index belongs to.
    fn kind(&self) -> IndexKind;

    /// A human-readable name (defaults to the family name; hybrid variants
    /// override this with e.g. `"hybrid-pla"`).
    fn name(&self) -> String {
        self.kind().name().to_string()
    }

    /// The disk this index performs its I/O against.
    fn disk(&self) -> &Arc<Disk>;

    /// Returns the payload stored for `key`, or `None` if absent.
    fn lookup(&self, key: Key) -> IndexResult<Option<Value>>;

    /// Looks up every key of `keys`, writing the answer for `keys[i]` to
    /// `out[i]`.
    ///
    /// # Contract
    ///
    /// * `out` is **cleared and resized** to `keys.len()` first — previous
    ///   contents are discarded, never appended to.
    /// * Answers are positional: `out[i]` is exactly what
    ///   [`lookup`]`(keys[i])` would return. Input order is preserved even
    ///   when an implementation internally reorders the probe.
    /// * Duplicate keys, absent keys (`None` answers) and unsorted input are
    ///   all fine; a batch is semantically identical to a per-key loop.
    ///
    /// The default implementation is exactly that loop; indexes whose
    /// structure lets a sorted probe share work (the B+-tree descends once
    /// per leaf run, PGM reads its insert run once per batch and reuses data
    /// blocks across keys that land together) override it to amortise block
    /// fetches and decoding across the batch.
    ///
    /// [`lookup`]: IndexRead::lookup
    fn lookup_batch(&self, keys: &[Key], out: &mut Vec<Option<Value>>) -> IndexResult<()> {
        out.clear();
        out.reserve(keys.len());
        for &key in keys {
            out.push(self.lookup(key)?);
        }
        Ok(())
    }

    /// Collects up to `count` entries with keys `>= start` into `out`,
    /// returning how many were produced.
    ///
    /// # Contract
    ///
    /// * `out` is **cleared first**; on return it holds the result entries
    ///   in strictly ascending key order (no duplicates — an overwritten key
    ///   appears once, with its newest payload).
    /// * Fewer than `count` entries are returned only when the index stores
    ///   fewer than `count` keys `>= start`; `count == 0` returns 0 without
    ///   performing I/O beyond locating the start.
    /// * Implementations stream their data blocks with scan-class reads
    ///   (`Disk::read_ref_scan`), so a buffer pool configured with a
    ///   scan-resistant policy can keep the point-lookup working set
    ///   resident while the scan passes through (`DESIGN.md` §3.3).
    fn scan(&self, start: Key, count: usize, out: &mut Vec<Entry>) -> IndexResult<usize>;

    /// Runs one [`scan`] per `(start, count)` range of `ranges`, writing the
    /// result rows for `ranges[i]` to `out[i]`.
    ///
    /// # Contract
    ///
    /// * `out` is **cleared and resized** to `ranges.len()` first; each
    ///   inner vector then follows the [`scan`] contract for its range.
    /// * Results are positional: overlapping, duplicate and unsorted ranges
    ///   are all fine, and each produces exactly what a standalone [`scan`]
    ///   would.
    ///
    /// The default implementation is the per-range loop. Indexes whose scan
    /// is a leaf-chain walk (the B+-tree) override it to execute the ranges
    /// in sorted start-key order, which turns the block accesses of adjacent
    /// ranges into one mostly-sequential, prefetch-friendly stream — the
    /// scan-side mirror of [`lookup_batch`]'s sorted probe.
    ///
    /// [`scan`]: IndexRead::scan
    /// [`lookup_batch`]: IndexRead::lookup_batch
    fn scan_batch(&self, ranges: &[(Key, usize)], out: &mut Vec<Vec<Entry>>) -> IndexResult<()> {
        out.clear();
        out.resize_with(ranges.len(), Vec::new);
        for (i, &(start, count)) in ranges.iter().enumerate() {
            self.scan(start, count, &mut out[i])?;
        }
        Ok(())
    }

    /// Number of keys stored.
    fn len(&self) -> u64;

    /// True if no keys are stored.
    fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Structural statistics (height, node counts, SMO count).
    fn stats(&self) -> IndexStats;

    /// Total blocks this index occupies on disk (including space lost to
    /// invalidated nodes, matching the paper's §6.3 storage accounting).
    fn storage_blocks(&self) -> u64 {
        self.disk().total_blocks()
    }
}

/// The exclusive (write) side of a disk-resident index.
///
/// Every method takes `&mut self`: Rust's borrow rules make the writer
/// mutually exclusive with the shared [`IndexRead`] readers, which *is* the
/// frozen-index contract of `DESIGN.md` §3.1. The read side and the write
/// side compose into [`DiskIndex`].
///
/// # Example
///
/// `insert_batch` is a plain contract over [`insert`], shown here with a
/// minimal in-memory implementation:
///
/// ```
/// use lidx_core::index::IndexWrite;
/// use lidx_core::{Entry, IndexResult, InsertBreakdown, Key, Value};
///
/// #[derive(Default)]
/// struct VecIndex {
///     entries: Vec<Entry>, // sorted by key
/// }
///
/// impl IndexWrite for VecIndex {
///     fn bulk_load(&mut self, entries: &[Entry]) -> IndexResult<()> {
///         self.entries = entries.to_vec();
///         Ok(())
///     }
///     fn insert(&mut self, key: Key, value: Value) -> IndexResult<()> {
///         match self.entries.binary_search_by_key(&key, |e| e.0) {
///             Ok(i) => self.entries[i].1 = value,
///             Err(i) => self.entries.insert(i, (key, value)),
///         }
///         Ok(())
///     }
///     fn insert_breakdown(&self) -> InsertBreakdown {
///         InsertBreakdown::new()
///     }
/// }
///
/// let mut index = VecIndex::default();
/// index.bulk_load(&[(10, 1), (30, 3)])?;
/// // A batch behaves exactly like the per-key loop: later entries win on
/// // duplicate keys, existing keys are overwritten.
/// index.insert_batch(&[(20, 2), (10, 9), (20, 4)])?;
/// assert_eq!(index.entries, vec![(10, 9), (20, 4), (30, 3)]);
/// # Ok::<(), lidx_core::IndexError>(())
/// ```
///
/// [`insert`]: IndexWrite::insert
pub trait IndexWrite {
    /// Builds the index from strictly-increasing `(key, payload)` pairs.
    ///
    /// Must be called exactly once, before any other operation, and fails
    /// with [`crate::IndexError::UnsortedBulkLoad`] if the input is not
    /// strictly increasing.
    fn bulk_load(&mut self, entries: &[Entry]) -> IndexResult<()>;

    /// Inserts a new key-payload pair (upsert: an existing key is
    /// overwritten and the key count does not grow).
    fn insert(&mut self, key: Key, value: Value) -> IndexResult<()>;

    /// Inserts every entry of `entries`, in order.
    ///
    /// # Contract
    ///
    /// * A batch is semantically identical to the per-entry [`insert`] loop:
    ///   after it returns, every lookup, scan and length query answers
    ///   exactly as if the entries had been inserted one by one, in slice
    ///   order. In particular, **later entries win** when the batch contains
    ///   duplicate keys, and entries whose keys already exist overwrite the
    ///   stored payload without growing the index.
    /// * The *physical* structure may legally differ from the sequential
    ///   outcome (e.g. one large SMO instead of several small ones) — only
    ///   the logical content is pinned.
    /// * An error leaves previously applied entries of the batch in place
    ///   (same as stopping a sequential loop at the failing entry).
    ///
    /// The default implementation is exactly that loop; indexes whose write
    /// path can share work across a sorted pass override it to amortise
    /// block fetches, pin lifetimes and SMO work across the batch: the
    /// B+-tree descends once per *run* of keys landing in the same leaf and
    /// writes each touched leaf once, the FITing-tree fills each segment's
    /// delta buffer with one read-modify-write per segment, PGM merges the
    /// batch into its insert run in memory (one run read and one rewrite
    /// per batch, flushing exactly when the sequential loop would), and the
    /// hybrid appends each run to its dense leaf and defers the
    /// learned-directory rebuild to one retrain per batch.
    ///
    /// [`insert`]: IndexWrite::insert
    fn insert_batch(&mut self, entries: &[Entry]) -> IndexResult<()> {
        for &(key, value) in entries {
            self.insert(key, value)?;
        }
        Ok(())
    }

    /// The accumulated insert-step breakdown (search / insert / SMO /
    /// maintenance, plus group-commit drain counters) since the index was
    /// created. Used for Fig. 6 and `BENCH_write.json`.
    ///
    /// Required — a design that tracks nothing must still say so explicitly
    /// by returning [`InsertBreakdown::new`], so a zeroed breakdown can no
    /// longer silently shadow real measurements.
    fn insert_breakdown(&self) -> InsertBreakdown;

    /// Serialises the index's root metadata — everything needed to rebuild
    /// the in-memory handle over the blocks already on disk — into an opaque
    /// byte string. The bytes end up in the superblock's manifest payload
    /// (checksummed by the storage layer), and each design's inherent
    /// `load(disk, config, meta)` constructor inverts them after a restart.
    ///
    /// Takes `&mut self` so implementations may flush deferred state (e.g.
    /// an in-memory insert run) before capturing the snapshot. The default
    /// reports the capability as unsupported; every persistent design in
    /// this workspace overrides it.
    fn save_meta(&mut self) -> IndexResult<Vec<u8>> {
        Err(crate::IndexError::Unsupported("save_meta"))
    }
}

/// A disk-resident, updatable ordered index over `u64` keys.
///
/// All five operations the paper's workloads exercise are represented: bulk
/// load (used to build the index before each workload), point lookup,
/// insert, and range scan — the read side lives in the [`IndexRead`]
/// supertrait so a frozen index can be shared across reader threads, while
/// the write side ([`IndexWrite`]) takes `&mut self`.
///
/// The trait itself is empty: it is implemented automatically for every
/// type providing both halves, and exists so harness code can hold one
/// `Box<dyn DiskIndex>` per index design.
///
/// Implementations route every block access through the [`Disk`] returned by
/// [`IndexRead::disk`], which is how the harness observes fetched-block
/// counts and simulated device time.
pub trait DiskIndex: IndexRead + IndexWrite {}

impl<T: IndexRead + IndexWrite> DiskIndex for T {}

impl<T: IndexRead + ?Sized> IndexRead for Box<T> {
    fn kind(&self) -> IndexKind {
        (**self).kind()
    }

    fn name(&self) -> String {
        (**self).name()
    }

    fn disk(&self) -> &Arc<Disk> {
        (**self).disk()
    }

    fn lookup(&self, key: Key) -> IndexResult<Option<Value>> {
        (**self).lookup(key)
    }

    fn lookup_batch(&self, keys: &[Key], out: &mut Vec<Option<Value>>) -> IndexResult<()> {
        (**self).lookup_batch(keys, out)
    }

    fn scan(&self, start: Key, count: usize, out: &mut Vec<Entry>) -> IndexResult<usize> {
        (**self).scan(start, count, out)
    }

    fn scan_batch(&self, ranges: &[(Key, usize)], out: &mut Vec<Vec<Entry>>) -> IndexResult<()> {
        (**self).scan_batch(ranges, out)
    }

    fn len(&self) -> u64 {
        (**self).len()
    }

    fn is_empty(&self) -> bool {
        (**self).is_empty()
    }

    fn stats(&self) -> IndexStats {
        (**self).stats()
    }

    fn storage_blocks(&self) -> u64 {
        (**self).storage_blocks()
    }
}

impl<T: IndexWrite + ?Sized> IndexWrite for Box<T> {
    fn bulk_load(&mut self, entries: &[Entry]) -> IndexResult<()> {
        (**self).bulk_load(entries)
    }

    fn insert(&mut self, key: Key, value: Value) -> IndexResult<()> {
        (**self).insert(key, value)
    }

    fn insert_batch(&mut self, entries: &[Entry]) -> IndexResult<()> {
        (**self).insert_batch(entries)
    }

    fn insert_breakdown(&self) -> InsertBreakdown {
        (**self).insert_breakdown()
    }

    fn save_meta(&mut self) -> IndexResult<Vec<u8>> {
        (**self).save_meta()
    }
}

/// Verifies that bulk-load input is strictly increasing; shared by all index
/// implementations.
pub fn validate_bulk_load(entries: &[Entry]) -> IndexResult<()> {
    for (i, pair) in entries.windows(2).enumerate() {
        if pair[0].0 >= pair[1].0 {
            return Err(crate::IndexError::UnsortedBulkLoad { position: i + 1 });
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn kind_names_are_stable_and_unique() {
        let names: std::collections::HashSet<_> =
            IndexKind::EVALUATED.iter().map(|k| k.name()).collect();
        assert_eq!(names.len(), IndexKind::EVALUATED.len());
        assert_eq!(IndexKind::BTree.to_string(), "btree");
        assert_eq!(IndexKind::Lipp.name(), "lipp");
        assert_eq!(IndexKind::Hybrid.name(), "hybrid");
    }

    #[test]
    fn bulk_load_validation_rejects_disorder_and_duplicates() {
        assert!(validate_bulk_load(&[(1, 2), (2, 3), (3, 4)]).is_ok());
        assert!(validate_bulk_load(&[]).is_ok());
        assert!(validate_bulk_load(&[(5, 0)]).is_ok());
        let err = validate_bulk_load(&[(1, 0), (3, 0), (3, 0)]).unwrap_err();
        assert!(matches!(err, crate::IndexError::UnsortedBulkLoad { position: 2 }));
        assert!(validate_bulk_load(&[(9, 0), (1, 0)]).is_err());
    }
}
