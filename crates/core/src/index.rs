//! The [`DiskIndex`] trait implemented by every evaluated index.

use std::sync::Arc;

use lidx_storage::Disk;

use crate::error::IndexResult;
use crate::metrics::InsertBreakdown;
use crate::{Entry, Key, Value};

/// Which index family an implementation belongs to.
///
/// The variants mirror Table 1 of the paper, plus the hybrid designs of
/// §6.1.2 ("learned inner structure + B+-tree-styled leaf nodes").
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum IndexKind {
    /// The traditional on-disk B+-tree baseline.
    BTree,
    /// FITing-tree (Galakatos et al., SIGMOD 2019) with the Delta insert
    /// strategy, extended for disk as in §4.2.
    FitingTree,
    /// PGM-index (Ferragina & Vinciguerra, VLDB 2020) with LSM-style
    /// arbitrary inserts.
    Pgm,
    /// ALEX (Ding et al., SIGMOD 2020) extended for disk as in §4.1.
    Alex,
    /// LIPP (Wu et al., VLDB 2021) extended for disk as in §4.2.
    Lipp,
    /// A hybrid design: learned inner structure over dense, linked leaf
    /// blocks (§6.1.2 / Table 5).
    Hybrid,
}

impl IndexKind {
    /// Short lowercase name used in experiment output.
    pub fn name(self) -> &'static str {
        match self {
            IndexKind::BTree => "btree",
            IndexKind::FitingTree => "fiting",
            IndexKind::Pgm => "pgm",
            IndexKind::Alex => "alex",
            IndexKind::Lipp => "lipp",
            IndexKind::Hybrid => "hybrid",
        }
    }

    /// All concrete (non-hybrid) index kinds evaluated by the paper, in the
    /// order the figures list them.
    pub const EVALUATED: [IndexKind; 5] =
        [IndexKind::BTree, IndexKind::FitingTree, IndexKind::Pgm, IndexKind::Alex, IndexKind::Lipp];
}

impl std::fmt::Display for IndexKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// Structural statistics an index can report about itself.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct IndexStats {
    /// Number of keys currently stored.
    pub keys: u64,
    /// Height of the structure (levels from root to the deepest leaf,
    /// counting both ends). For PGM's LSM variant this is the height of the
    /// largest level.
    pub height: u32,
    /// Number of inner (routing) nodes.
    pub inner_nodes: u64,
    /// Number of leaf / data nodes (segments, data nodes, ...).
    pub leaf_nodes: u64,
    /// Number of structural modification operations performed so far.
    pub smo_count: u64,
}

/// The shared-lookup (read) side of a disk-resident index.
///
/// Every method takes `&self`, so a bulk-loaded ("frozen") index can serve
/// N reader threads concurrently: share the index behind a plain reference
/// (e.g. via [`std::thread::scope`]) or an `Arc` and call [`lookup`] /
/// [`scan`] from as many threads as you like. The `Send + Sync` supertraits
/// make that contract part of the type: implementations must confine any
/// interior mutability to thread-safe state (in this workspace that is the
/// [`Disk`] layer — atomic statistics plus a lock-striped buffer pool — and
/// nothing in the index structures themselves).
///
/// **Frozen-index contract.** Concurrent reads are only *meaningful* against
/// an index that is not being mutated. Rust's borrow rules enforce this for
/// free: [`DiskIndex::insert`] and [`DiskIndex::bulk_load`] take `&mut self`,
/// so a writer cannot coexist with shared readers. There is no internal
/// versioning or latching beyond the storage layer — per-index concurrency
/// control (latch crabbing, epochs) is future work tracked in ROADMAP.md.
///
/// [`lookup`]: IndexRead::lookup
/// [`scan`]: IndexRead::scan
pub trait IndexRead: Send + Sync {
    /// Which family this index belongs to.
    fn kind(&self) -> IndexKind;

    /// A human-readable name (defaults to the family name; hybrid variants
    /// override this with e.g. `"hybrid-pla"`).
    fn name(&self) -> String {
        self.kind().name().to_string()
    }

    /// The disk this index performs its I/O against.
    fn disk(&self) -> &Arc<Disk>;

    /// Returns the payload stored for `key`, or `None` if absent.
    fn lookup(&self, key: Key) -> IndexResult<Option<Value>>;

    /// Looks up every key of `keys`, writing the answer for `keys[i]` to
    /// `out[i]` (`out` is cleared and resized first).
    ///
    /// Semantically identical to calling [`lookup`] once per key, in any
    /// order — duplicates, misses and unsorted input are all fine. The
    /// default implementation is exactly that loop; indexes whose structure
    /// lets a sorted probe share work (the B+-tree descends once per leaf
    /// run, PGM reads its insert run once per batch and reuses data blocks
    /// across keys that land together) override it to amortise block
    /// fetches and decoding across the batch.
    ///
    /// [`lookup`]: IndexRead::lookup
    fn lookup_batch(&self, keys: &[Key], out: &mut Vec<Option<Value>>) -> IndexResult<()> {
        out.clear();
        out.reserve(keys.len());
        for &key in keys {
            out.push(self.lookup(key)?);
        }
        Ok(())
    }

    /// Collects up to `count` entries with keys `>= start` in ascending key
    /// order into `out` (which is cleared first), returning how many were
    /// produced.
    fn scan(&self, start: Key, count: usize, out: &mut Vec<Entry>) -> IndexResult<usize>;

    /// Number of keys stored.
    fn len(&self) -> u64;

    /// True if no keys are stored.
    fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Structural statistics (height, node counts, SMO count).
    fn stats(&self) -> IndexStats;

    /// Total blocks this index occupies on disk (including space lost to
    /// invalidated nodes, matching the paper's §6.3 storage accounting).
    fn storage_blocks(&self) -> u64 {
        self.disk().total_blocks()
    }
}

/// A disk-resident, updatable ordered index over `u64` keys.
///
/// All five operations the paper's workloads exercise are represented: bulk
/// load (used to build the index before each workload), point lookup,
/// insert, and range scan — the read side lives in the [`IndexRead`]
/// supertrait so a frozen index can be shared across reader threads, while
/// the write side here takes `&mut self`.
///
/// Implementations route every block access through the [`Disk`] returned by
/// [`IndexRead::disk`], which is how the harness observes fetched-block
/// counts and simulated device time.
pub trait DiskIndex: IndexRead {
    /// Builds the index from strictly-increasing `(key, payload)` pairs.
    ///
    /// Must be called exactly once, before any other operation, and fails
    /// with [`crate::IndexError::UnsortedBulkLoad`] if the input is not
    /// strictly increasing.
    fn bulk_load(&mut self, entries: &[Entry]) -> IndexResult<()>;

    /// Inserts a new key-payload pair.
    fn insert(&mut self, key: Key, value: Value) -> IndexResult<()>;

    /// The accumulated insert-step breakdown (search / insert / SMO /
    /// maintenance) since the index was created. Used for Fig. 6.
    fn insert_breakdown(&self) -> InsertBreakdown {
        InsertBreakdown::default()
    }
}

/// Verifies that bulk-load input is strictly increasing; shared by all index
/// implementations.
pub fn validate_bulk_load(entries: &[Entry]) -> IndexResult<()> {
    for (i, pair) in entries.windows(2).enumerate() {
        if pair[0].0 >= pair[1].0 {
            return Err(crate::IndexError::UnsortedBulkLoad { position: i + 1 });
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn kind_names_are_stable_and_unique() {
        let names: std::collections::HashSet<_> =
            IndexKind::EVALUATED.iter().map(|k| k.name()).collect();
        assert_eq!(names.len(), IndexKind::EVALUATED.len());
        assert_eq!(IndexKind::BTree.to_string(), "btree");
        assert_eq!(IndexKind::Lipp.name(), "lipp");
        assert_eq!(IndexKind::Hybrid.name(), "hybrid");
    }

    #[test]
    fn bulk_load_validation_rejects_disorder_and_duplicates() {
        assert!(validate_bulk_load(&[(1, 2), (2, 3), (3, 4)]).is_ok());
        assert!(validate_bulk_load(&[]).is_ok());
        assert!(validate_bulk_load(&[(5, 0)]).is_ok());
        let err = validate_bulk_load(&[(1, 0), (3, 0), (3, 0)]).unwrap_err();
        assert!(matches!(err, crate::IndexError::UnsortedBulkLoad { position: 2 }));
        assert!(validate_bulk_load(&[(9, 0), (1, 0)]).is_err());
    }
}
