//! Latency, throughput and insert-breakdown metrics.
//!
//! The paper reports three metric families (§5.3): average throughput per
//! workload, tail latency (p99 and standard deviation, Fig. 12), and the
//! average fetched block count per query. Fetched blocks come from
//! [`lidx_storage::IoStats`]; this module supplies the other two, plus the
//! four-step insert breakdown of Fig. 6.

use serde::Serialize;

/// Records one latency sample (in nanoseconds) per operation and produces
/// summary statistics.
#[derive(Debug, Default, Clone)]
pub struct LatencyRecorder {
    samples: Vec<u64>,
}

impl LatencyRecorder {
    /// Creates an empty recorder.
    pub fn new() -> Self {
        Self::default()
    }

    /// Creates a recorder with capacity for `n` samples.
    pub fn with_capacity(n: usize) -> Self {
        LatencyRecorder { samples: Vec::with_capacity(n) }
    }

    /// Records one sample in nanoseconds.
    pub fn record(&mut self, ns: u64) {
        self.samples.push(ns);
    }

    /// Number of samples recorded.
    pub fn len(&self) -> usize {
        self.samples.len()
    }

    /// True if no samples were recorded.
    pub fn is_empty(&self) -> bool {
        self.samples.is_empty()
    }

    /// The raw samples.
    pub fn samples(&self) -> &[u64] {
        &self.samples
    }

    /// Computes the summary statistics over all recorded samples.
    pub fn summary(&self) -> LatencySummary {
        if self.samples.is_empty() {
            return LatencySummary::default();
        }
        let mut sorted = self.samples.clone();
        sorted.sort_unstable();
        let count = sorted.len();
        let total: u128 = sorted.iter().map(|&v| u128::from(v)).sum();
        let mean = (total / count as u128) as f64 + (total % count as u128) as f64 / count as f64;
        let variance = sorted
            .iter()
            .map(|&v| {
                let d = v as f64 - mean;
                d * d
            })
            .sum::<f64>()
            / count as f64;
        LatencySummary {
            count: count as u64,
            mean_ns: mean,
            p50_ns: percentile(&sorted, 0.50),
            p95_ns: percentile(&sorted, 0.95),
            p99_ns: percentile(&sorted, 0.99),
            p999_ns: percentile(&sorted, 0.999),
            max_ns: *sorted.last().unwrap(),
            stddev_ns: variance.sqrt(),
        }
    }
}

/// Nearest-rank percentile over a sorted slice: the smallest sample such
/// that at least `q` of the set is ≤ it. Total on its inputs — an empty
/// slice reports 0 (there is no sample to name), a single sample is every
/// percentile of itself, and `q = 1.0` is exactly the maximum (the rank
/// computation cannot step past the end even when `q * len` rounds up).
fn percentile(sorted: &[u64], q: f64) -> u64 {
    if sorted.is_empty() {
        return 0;
    }
    let rank = ((q * sorted.len() as f64).ceil() as usize).clamp(1, sorted.len());
    sorted[rank - 1]
}

/// Summary statistics over a set of latency samples.
#[derive(Debug, Default, Clone, Copy, PartialEq, Serialize)]
pub struct LatencySummary {
    /// Number of samples.
    pub count: u64,
    /// Arithmetic mean, nanoseconds.
    pub mean_ns: f64,
    /// Median, nanoseconds.
    pub p50_ns: u64,
    /// 95th percentile, nanoseconds.
    pub p95_ns: u64,
    /// 99th percentile, nanoseconds (the paper's tail-latency metric).
    pub p99_ns: u64,
    /// 99.9th percentile, nanoseconds — one SMO or drain pause per thousand
    /// operations lands here, which is why the bench snapshots carry it.
    pub p999_ns: u64,
    /// Maximum observed, nanoseconds.
    pub max_ns: u64,
    /// Population standard deviation, nanoseconds.
    pub stddev_ns: f64,
}

/// Throughput derived from an operation count and elapsed (simulated) time.
#[derive(Debug, Clone, Copy, PartialEq, Serialize)]
pub struct Throughput {
    /// Operations executed.
    pub ops: u64,
    /// Elapsed time in seconds (simulated device time plus any measured CPU
    /// time the harness chooses to add).
    pub seconds: f64,
}

impl Throughput {
    /// Creates a throughput record.
    pub fn new(ops: u64, seconds: f64) -> Self {
        Throughput { ops, seconds }
    }

    /// Operations per second; infinite if no time elapsed.
    pub fn ops_per_sec(&self) -> f64 {
        if self.seconds <= 0.0 {
            f64::INFINITY
        } else {
            self.ops as f64 / self.seconds
        }
    }
}

/// The four steps of an insert operation, as broken down in Fig. 6.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum InsertStep {
    /// Initial search: find the position where the key belongs.
    Search,
    /// Insertion proper: write the key-payload pair (shifting if needed).
    Insert,
    /// Structural modification operation: splits, resegmentation, subtree
    /// rebuilds, LSM merges.
    Smo,
    /// Maintenance: statistics updates along the access path (ALEX / LIPP).
    Maintenance,
}

impl InsertStep {
    /// All steps in reporting order.
    pub const ALL: [InsertStep; 4] =
        [InsertStep::Search, InsertStep::Insert, InsertStep::Smo, InsertStep::Maintenance];

    fn idx(self) -> usize {
        match self {
            InsertStep::Search => 0,
            InsertStep::Insert => 1,
            InsertStep::Smo => 2,
            InsertStep::Maintenance => 3,
        }
    }

    /// Label used in experiment output.
    pub fn label(self) -> &'static str {
        match self {
            InsertStep::Search => "search",
            InsertStep::Insert => "insert",
            InsertStep::Smo => "smo",
            InsertStep::Maintenance => "maintenance",
        }
    }
}

/// Accumulated per-step cost of insert operations (device time and block
/// counts), reproducing the write-performance breakdown of Fig. 6, plus the
/// group-commit drain counters a [`WriteBuffer`] front contributes.
///
/// [`WriteBuffer`]: crate::write_buffer::WriteBuffer
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
pub struct InsertBreakdown {
    device_ns: [u64; 4],
    reads: [u64; 4],
    writes: [u64; 4],
    /// Number of insert operations folded into this breakdown.
    pub inserts: u64,
    /// Number of group-commit drains (buffered batches handed to
    /// `insert_batch`) folded into this breakdown. Zero for a bare index;
    /// a `WriteBuffer` front adds its flush count so `BENCH_write.json` can
    /// attribute drain cost.
    pub drains: u64,
    /// Total entries those drains carried (so `drained_entries / drains` is
    /// the realised group-commit batch size).
    pub drained_entries: u64,
}

impl InsertBreakdown {
    /// Creates an empty breakdown.
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds the I/O delta of one step of one insert.
    pub fn add(&mut self, step: InsertStep, delta: &lidx_storage::OpStats) {
        let i = step.idx();
        self.device_ns[i] += delta.device_ns;
        self.reads[i] += delta.reads();
        self.writes[i] += delta.writes();
    }

    /// Notes that one complete insert finished.
    pub fn finish_insert(&mut self) {
        self.inserts += 1;
    }

    /// The per-field difference `self - before` (saturating), for isolating
    /// the cost of one measured phase from an accumulated breakdown.
    #[must_use]
    pub fn since(&self, before: &InsertBreakdown) -> InsertBreakdown {
        let mut delta = InsertBreakdown::new();
        for i in 0..4 {
            delta.device_ns[i] = self.device_ns[i].saturating_sub(before.device_ns[i]);
            delta.reads[i] = self.reads[i].saturating_sub(before.reads[i]);
            delta.writes[i] = self.writes[i].saturating_sub(before.writes[i]);
        }
        delta.inserts = self.inserts.saturating_sub(before.inserts);
        delta.drains = self.drains.saturating_sub(before.drains);
        delta.drained_entries = self.drained_entries.saturating_sub(before.drained_entries);
        delta
    }

    /// Merges another breakdown into this one.
    pub fn merge(&mut self, other: &InsertBreakdown) {
        for i in 0..4 {
            self.device_ns[i] += other.device_ns[i];
            self.reads[i] += other.reads[i];
            self.writes[i] += other.writes[i];
        }
        self.inserts += other.inserts;
        self.drains += other.drains;
        self.drained_entries += other.drained_entries;
    }

    /// Total simulated device time spent in `step`, nanoseconds.
    pub fn device_ns(&self, step: InsertStep) -> u64 {
        self.device_ns[step.idx()]
    }

    /// Total block reads attributed to `step`.
    pub fn reads(&self, step: InsertStep) -> u64 {
        self.reads[step.idx()]
    }

    /// Total block writes attributed to `step`.
    pub fn writes(&self, step: InsertStep) -> u64 {
        self.writes[step.idx()]
    }

    /// Average device time per insert spent in `step`, nanoseconds.
    pub fn avg_ns(&self, step: InsertStep) -> f64 {
        if self.inserts == 0 {
            0.0
        } else {
            self.device_ns(step) as f64 / self.inserts as f64
        }
    }

    /// Total device time across all steps, nanoseconds.
    pub fn total_ns(&self) -> u64 {
        self.device_ns.iter().sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn latency_summary_basic_statistics() {
        let mut r = LatencyRecorder::new();
        for v in [10u64, 20, 30, 40, 50, 60, 70, 80, 90, 100] {
            r.record(v);
        }
        let s = r.summary();
        assert_eq!(s.count, 10);
        assert!((s.mean_ns - 55.0).abs() < 1e-9);
        assert_eq!(s.p50_ns, 50);
        assert_eq!(s.p99_ns, 100);
        assert_eq!(s.p999_ns, 100);
        assert_eq!(s.max_ns, 100);
        assert!(s.stddev_ns > 28.0 && s.stddev_ns < 29.0);
    }

    #[test]
    fn empty_recorder_yields_zeroes() {
        let r = LatencyRecorder::new();
        assert!(r.is_empty());
        assert_eq!(r.summary(), LatencySummary::default());
    }

    #[test]
    fn percentile_is_nearest_rank() {
        let sorted = [1u64, 2, 3, 4];
        assert_eq!(percentile(&sorted, 0.5), 2);
        assert_eq!(percentile(&sorted, 0.75), 3);
        assert_eq!(percentile(&sorted, 0.99), 4);
        assert_eq!(percentile(&sorted, 0.01), 1);
    }

    #[test]
    fn percentile_edge_cases_are_total() {
        // Empty: no sample to name — 0, never a panic (the old clamp(1, 0)
        // panicked in release builds).
        assert_eq!(percentile(&[], 0.5), 0);
        assert_eq!(percentile(&[], 1.0), 0);
        // Single sample: every percentile of itself.
        for q in [0.0, 0.001, 0.5, 0.999, 1.0] {
            assert_eq!(percentile(&[42], q), 42);
        }
        // q = 1.0 is exactly the maximum, even when q * len rounds up, and
        // q = 0.0 still names the first sample (rank is clamped to 1).
        let sorted: Vec<u64> = (1..=1000).collect();
        assert_eq!(percentile(&sorted, 1.0), 1000);
        assert_eq!(percentile(&sorted, 0.0), 1);
        assert_eq!(percentile(&sorted, 0.999), 999);
    }

    #[test]
    fn p99_reflects_tail() {
        let mut r = LatencyRecorder::with_capacity(1000);
        for _ in 0..980 {
            r.record(100);
        }
        for _ in 0..20 {
            r.record(10_000);
        }
        let s = r.summary();
        assert_eq!(s.p50_ns, 100);
        assert_eq!(s.p99_ns, 10_000);
        assert_eq!(s.p999_ns, 10_000);
        assert!(s.p50_ns <= s.p95_ns && s.p95_ns <= s.p99_ns);
        assert!(s.p99_ns <= s.p999_ns && s.p999_ns <= s.max_ns);
        assert!(s.stddev_ns > 500.0, "tail must inflate the standard deviation");
    }

    #[test]
    fn throughput_division() {
        let t = Throughput::new(1000, 2.0);
        assert!((t.ops_per_sec() - 500.0).abs() < 1e-9);
        assert!(Throughput::new(10, 0.0).ops_per_sec().is_infinite());
    }

    #[test]
    fn insert_breakdown_accumulates_and_averages() {
        use lidx_storage::{BlockKind, IoStats};
        let stats = IoStats::new();
        let mut b = InsertBreakdown::new();

        let before = stats.snapshot();
        stats.record_device_ns(100);
        // (record_* are crate-private; simulate deltas through public snapshot API)
        let after = stats.snapshot();
        b.add(InsertStep::Search, &after.since(&before));
        b.finish_insert();
        assert_eq!(b.inserts, 1);
        assert_eq!(b.device_ns(InsertStep::Search), 100);
        assert_eq!(b.device_ns(InsertStep::Smo), 0);
        assert!((b.avg_ns(InsertStep::Search) - 100.0).abs() < 1e-9);

        let mut b2 = InsertBreakdown::new();
        let s2 = IoStats::new();
        let before = s2.snapshot();
        s2.record_device_ns(50);
        let _ = BlockKind::ALL; // kinds are exercised in the storage crate tests
        b2.add(InsertStep::Smo, &s2.snapshot().since(&before));
        b2.finish_insert();
        b.merge(&b2);
        assert_eq!(b.inserts, 2);
        assert_eq!(b.total_ns(), 150);
    }

    #[test]
    fn step_labels_cover_fig6_categories() {
        let labels: Vec<_> = InsertStep::ALL.iter().map(|s| s.label()).collect();
        assert_eq!(labels, vec!["search", "insert", "smo", "maintenance"]);
    }
}
