//! Shared types for the disk-resident learned-index evaluation.
//!
//! This crate defines the vocabulary every index crate and the experiment
//! harness agree on:
//!
//! * [`Key`] / [`Value`] — the paper indexes 64-bit unsigned keys and uses
//!   `key + 1` as the payload.
//! * [`index::IndexRead`] / [`index::DiskIndex`] — the operations every
//!   evaluated index must support, split into a shared (`&self`) read side —
//!   lookup, range scan, statistics — that N threads may call concurrently
//!   against a bulk-loaded index, and an exclusive (`&mut self`) write side:
//!   bulk load and insert, plus introspection hooks (storage footprint,
//!   per-operation I/O, insert-step breakdown).
//! * [`metrics`] — latency recording (mean / p50 / p99 / standard deviation),
//!   throughput derivation from the simulated device time, and the
//!   search / insert / SMO / maintenance breakdown of Fig. 6.
//! * [`error::IndexError`] — the error type shared by the index crates.

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod error;
pub mod index;
pub mod metrics;

pub use error::{IndexError, IndexResult};
pub use index::{DiskIndex, IndexKind, IndexRead, IndexStats};
pub use metrics::{InsertBreakdown, InsertStep, LatencyRecorder, LatencySummary, Throughput};

/// The key type indexed throughout the evaluation (the paper uses `uint64`).
pub type Key = u64;

/// The payload type; the paper sets `payload = key + 1`.
pub type Value = u64;

/// The payload the paper associates with a key.
#[inline]
pub fn payload_for(key: Key) -> Value {
    key.wrapping_add(1)
}

/// A key-payload pair as stored in leaf nodes.
pub type Entry = (Key, Value);
