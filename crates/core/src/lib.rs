//! Shared types for the disk-resident learned-index evaluation.
//!
//! This crate defines the vocabulary every index crate and the experiment
//! harness agree on:
//!
//! * [`Key`] / [`Value`] — the paper indexes 64-bit unsigned keys and uses
//!   `key + 1` as the payload.
//! * [`index::IndexRead`] / [`index::IndexWrite`] — the operations every
//!   evaluated index must support, split into a shared (`&self`) read side —
//!   lookup, range scan (each with a batched contract), statistics — that N
//!   threads may call concurrently against a bulk-loaded index, and an
//!   exclusive (`&mut self`) write side: bulk load, insert and the batched
//!   [`index::IndexWrite::insert_batch`], plus introspection hooks (storage
//!   footprint, per-operation I/O, insert-step breakdown). The two halves
//!   compose into [`index::DiskIndex`].
//! * [`write_buffer::WriteBuffer`] — a group-commit staging front that gives
//!   any `DiskIndex` PGM-style batched writes: sorted in-memory staging,
//!   newest-wins overlay reads, threshold-driven drains through
//!   `insert_batch`.
//! * [`concurrent::ConcurrentIndex`] / [`concurrent::ShardedWriteBuffer`] —
//!   the concurrent write front: a reader/writer lock that keeps `IndexRead`
//!   `&self` while drains take exclusive access one chunk at a time, and a
//!   key-range-sharded staging map so writer threads race safely against
//!   overlay readers.
//! * [`persist::Manifest`] — the restart manifest stored in the storage
//!   layer's checksummed superblock at every checkpoint: the design tag, its
//!   [`index::IndexWrite::save_meta`] bytes, and the WAL segment files to
//!   replay. Both write fronts can attach a WAL (`with_wal` /
//!   `with_wal_replayed`) so staged entries survive a kill mid-drain.
//! * [`metrics`] — latency recording (mean / p50 / p99 / standard deviation),
//!   throughput derivation from the simulated device time, and the
//!   search / insert / SMO / maintenance breakdown of Fig. 6.
//! * [`error::IndexError`] — the error type shared by the index crates.

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod concurrent;
pub mod error;
pub mod index;
pub mod metrics;
pub mod persist;
pub mod sharded;
pub mod write_buffer;

pub use concurrent::{
    sampled_boundaries, ConcurrentIndex, ShardedWriteBuffer, ShardedWriteBufferConfig,
};
pub use error::{IndexError, IndexResult};
pub use index::{DiskIndex, IndexKind, IndexRead, IndexStats, IndexWrite};
pub use metrics::{InsertBreakdown, InsertStep, LatencyRecorder, LatencySummary, Throughput};
pub use persist::{Manifest, MetaReader, MetaWriter};
pub use sharded::{ShardFactory, ShardedIndex, ShardedIndexConfig};
pub use write_buffer::{WriteBuffer, WriteBufferConfig};

/// The key type indexed throughout the evaluation (the paper uses `uint64`).
pub type Key = u64;

/// The payload type; the paper sets `payload = key + 1`.
pub type Value = u64;

/// The payload the paper associates with a key.
#[inline]
pub fn payload_for(key: Key) -> Value {
    key.wrapping_add(1)
}

/// A key-payload pair as stored in leaf nodes.
pub type Entry = (Key, Value);

/// Merges two ascending-key entry streams into `out` (appended), with
/// `newer` shadowing `stored` on equal keys, stopping once `limit` entries
/// have been produced. This is the newest-wins merge every layered read
/// path needs — the [`WriteBuffer`] overlay scan and the FITing-tree's
/// resegmentation both route through it.
///
/// Both inputs must be strictly ascending in key; the output then is too.
///
/// ```
/// let mut out = Vec::new();
/// lidx_core::merge_newest_wins(
///     [(2, 20), (3, 30)],            // newer
///     [(1, 1), (2, 2), (4, 4)],      // stored
///     3,
///     &mut out,
/// );
/// assert_eq!(out, vec![(1, 1), (2, 20), (3, 30)], "newer shadows key 2; limit stops at 3");
/// ```
pub fn merge_newest_wins(
    newer: impl IntoIterator<Item = Entry>,
    stored: impl IntoIterator<Item = Entry>,
    limit: usize,
    out: &mut Vec<Entry>,
) {
    let mut newer = newer.into_iter().peekable();
    let mut stored = stored.into_iter().peekable();
    let mut produced = 0usize;
    while produced < limit {
        match (newer.peek(), stored.peek()) {
            (Some(&(nk, nv)), Some(&(sk, _))) => {
                if nk <= sk {
                    if nk == sk {
                        stored.next(); // the newer entry shadows the stored one
                    }
                    out.push((nk, nv));
                    newer.next();
                } else {
                    out.push(stored.next().expect("peeked"));
                }
            }
            (Some(_), None) => out.push(newer.next().expect("peeked")),
            (None, Some(_)) => out.push(stored.next().expect("peeked")),
            (None, None) => break,
        }
        produced += 1;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn merged(
        newer: impl IntoIterator<Item = Entry>,
        stored: impl IntoIterator<Item = Entry>,
        limit: usize,
    ) -> Vec<Entry> {
        let mut out = Vec::new();
        merge_newest_wins(newer, stored, limit, &mut out);
        out
    }

    #[test]
    fn zero_limit_produces_nothing_and_consumes_nothing() {
        assert_eq!(merged([(1, 10), (2, 20)], [(1, 1), (3, 3)], 0), vec![]);
        assert_eq!(merged([], [], 0), vec![]);
        // Appending semantics: a zero limit must not clear what's there.
        let mut out = vec![(9, 9)];
        merge_newest_wins([(1, 10)], [(2, 2)], 0, &mut out);
        assert_eq!(out, vec![(9, 9)]);
    }

    #[test]
    fn a_sentinel_limit_drains_both_sides_without_overflowing() {
        // `usize::MAX` is the conventional "no limit" sentinel: the merge
        // must terminate when both inputs are exhausted, not chase the
        // limit.
        let out = merged([(2, 20), (5, 50)], [(1, 1), (2, 2), (9, 9)], usize::MAX);
        assert_eq!(out, vec![(1, 1), (2, 20), (5, 50), (9, 9)]);
    }

    #[test]
    fn a_fully_shadowed_stored_side_yields_only_newer_values() {
        let newer = [(1, 10), (2, 20), (3, 30)];
        let stored = [(1, 1), (2, 2), (3, 3)];
        assert_eq!(merged(newer, stored, usize::MAX), vec![(1, 10), (2, 20), (3, 30)]);
        // And the limit still counts shadowed keys exactly once.
        assert_eq!(merged(newer, stored, 2), vec![(1, 10), (2, 20)]);
    }

    #[test]
    fn one_sided_inputs_pass_through() {
        assert_eq!(merged([(4, 40), (6, 60)], [], usize::MAX), vec![(4, 40), (6, 60)]);
        assert_eq!(merged([], [(4, 4), (6, 6)], usize::MAX), vec![(4, 4), (6, 6)]);
        assert_eq!(merged([], [(4, 4), (6, 6)], 1), vec![(4, 4)]);
    }

    #[test]
    fn the_limit_cuts_mid_merge_preserving_order() {
        let out = merged([(3, 30)], [(1, 1), (2, 2), (4, 4)], 3);
        assert_eq!(out, vec![(1, 1), (2, 2), (3, 30)]);
    }
}
