//! The concurrent write front: racing readers over a mutating index.
//!
//! Up to PR 5 every write funnelled through `&mut self`, so a mixed
//! read/write workload serialised on the writer even though the read side
//! ([`IndexRead`]) has been thread-safe since the zero-copy read path
//! landed. This module removes that funnel in two layers (`DESIGN.md`
//! §3.5):
//!
//! * [`ConcurrentIndex`] — an explicit reader/writer lock around a
//!   [`DiskIndex`]. Reads take a shared lock (the `IndexRead` methods stay
//!   `&self`); [`ConcurrentIndex::insert_batch_exclusive`] takes the write
//!   lock **per drain chunk**, not per workload, so readers interleave with
//!   a draining writer at chunk granularity.
//! * [`ShardedWriteBuffer`] — the group-commit staging front of
//!   [`crate::write_buffer::WriteBuffer`], resharded for concurrency: the
//!   staging map is split into contiguous key-range shards, each behind its
//!   own mutex, so writer threads staging into different ranges never
//!   contend, and readers overlay one shard's snapshot without blocking
//!   other shards or an in-flight drain.
//!
//! Contention is observable, not guessed at: every lock acquisition first
//! tries the non-blocking path and records a stall in the disk's
//! [`IoStats`] (`read_stalls` / `write_stalls`) when it has to block, and
//! every exclusive drain chunk is counted (`drain_chunks` /
//! `drain_entries`).
//!
//! # Locking protocol
//!
//! Lock order is *shard state → index lock*, and no thread ever holds a
//! shard's staging lock while acquiring the index lock:
//!
//! 1. **stage** — lock the target shard's staging map, upsert, unlock. No
//!    other shard and no reader of the index is touched.
//! 2. **overlay-read** — lock the key's shard staging map, probe, unlock;
//!    only on a miss take the index read lock. Scans collect the staged
//!    range shard-by-shard (each lock held only while copying) and then
//!    merge newest-wins with the index scan.
//! 3. **drain** — take the shard's drain lock (serialising drains of that
//!    shard only), snapshot a chunk under the staging lock, *release the
//!    staging lock*, apply the chunk under the index write lock, then
//!    re-lock the staging map and remove exactly the entries whose staged
//!    value still equals the drained value. A key re-staged mid-drain keeps
//!    its newer value; a reader always sees either the staged value or the
//!    just-applied identical value — newest-wins never regresses across a
//!    drain boundary. A capacity-triggered drain is *bounded*: it stops
//!    once the shard is back below capacity (or after a fixed chunk
//!    budget), so racing re-stagers can never starve the draining thread;
//!    only an explicit `flush` drains to empty.
//!
//! [`IoStats`]: lidx_storage::IoStats

use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use lidx_storage::{Disk, FileId, OpClass, WalSegment};
use parking_lot::{Mutex, RwLock, RwLockReadGuard, RwLockWriteGuard};

use crate::error::{IndexError, IndexResult};
use crate::index::{DiskIndex, IndexKind, IndexRead, IndexStats, IndexWrite};
use crate::metrics::InsertBreakdown;
use crate::persist::{decode_wal_entries, encode_wal_entry, Manifest};
use crate::{Entry, Key, Value};

/// A reader/writer lock around a [`DiskIndex`] that keeps the read side
/// `&self` while giving drains exclusive access one chunk at a time.
///
/// The wrapped index's own `IndexRead` methods are already safe for N
/// concurrent readers over a *frozen* structure; what they cannot tolerate
/// is a concurrent structural mutation. `ConcurrentIndex` provides exactly
/// that missing piece: every read takes a shared lock, and
/// [`insert_batch_exclusive`] takes the write lock for the duration of one
/// `insert_batch` call. Because the write lock is scoped to a drain chunk
/// (at most [`ShardedWriteBufferConfig::drain`] entries when driven by a
/// [`ShardedWriteBuffer`]), readers are never locked out for a whole
/// workload — the paper's mixed workloads interleave at chunk granularity.
///
/// Lock contention is recorded in the disk's [`lidx_storage::IoStats`]: a
/// read that finds the write lock held counts one `read_stall`, a drain
/// that finds readers in flight counts one `write_stall`, and every
/// exclusive chunk counts one `drain_chunk`.
///
/// [`insert_batch_exclusive`]: ConcurrentIndex::insert_batch_exclusive
pub struct ConcurrentIndex<I> {
    inner: RwLock<I>,
    /// Cloned out of the wrapped index at construction: `IndexRead::disk`
    /// returns `&Arc<Disk>`, which cannot be handed out through a lock
    /// guard, so the wrapper keeps its own reference.
    disk: Arc<Disk>,
    kind: IndexKind,
    inner_name: String,
}

impl<I: DiskIndex> ConcurrentIndex<I> {
    /// Wraps `inner` behind a reader/writer lock.
    pub fn new(inner: I) -> Self {
        let disk = Arc::clone(inner.disk());
        let kind = inner.kind();
        let inner_name = inner.name();
        ConcurrentIndex { inner: RwLock::new(inner), disk, kind, inner_name }
    }

    /// Acquires the shared read lock, counting a stall (and timing the wait
    /// as a `lock_read` pause) if it has to block.
    pub fn read(&self) -> RwLockReadGuard<'_, I> {
        if let Some(guard) = self.inner.try_read() {
            return guard;
        }
        self.disk.stats().record_read_stall();
        let _span = self.disk.telemetry().span(OpClass::LockRead);
        self.inner.read()
    }

    /// Acquires the exclusive write lock, counting a stall (and timing the
    /// wait as a `lock_write` pause) if it has to block.
    pub fn write(&self) -> RwLockWriteGuard<'_, I> {
        if let Some(guard) = self.inner.try_write() {
            return guard;
        }
        self.disk.stats().record_write_stall();
        let _span = self.disk.telemetry().span(OpClass::LockWrite);
        self.inner.write()
    }

    /// Applies one drain chunk under the exclusive write lock.
    ///
    /// This is *the* write path of the concurrent front: the lock is held
    /// for exactly one [`IndexWrite::insert_batch`] call, and the chunk is
    /// recorded in the disk's drain counters. Concurrent readers block only
    /// for the duration of the chunk.
    pub fn insert_batch_exclusive(&self, entries: &[Entry]) -> IndexResult<()> {
        // One drain pause as the readers experience it: lock acquisition
        // plus the chunk's exclusive application.
        let _span = self.disk.telemetry().span(OpClass::Drain);
        let mut guard = self.write();
        guard.insert_batch(entries)?;
        drop(guard);
        self.disk.stats().record_drain_chunk(entries.len() as u64);
        self.disk.telemetry().add(OpClass::Drain, entries.len() as u64);
        Ok(())
    }

    /// Consumes the wrapper and returns the index.
    pub fn into_inner(self) -> I {
        self.inner.into_inner()
    }
}

impl<I: DiskIndex> IndexRead for ConcurrentIndex<I> {
    fn kind(&self) -> IndexKind {
        self.kind
    }

    fn name(&self) -> String {
        format!("{}+rw", self.inner_name)
    }

    fn disk(&self) -> &Arc<Disk> {
        &self.disk
    }

    fn lookup(&self, key: Key) -> IndexResult<Option<Value>> {
        self.read().lookup(key)
    }

    fn lookup_batch(&self, keys: &[Key], out: &mut Vec<Option<Value>>) -> IndexResult<()> {
        self.read().lookup_batch(keys, out)
    }

    fn scan(&self, start: Key, count: usize, out: &mut Vec<Entry>) -> IndexResult<usize> {
        self.read().scan(start, count, out)
    }

    fn scan_batch(&self, ranges: &[(Key, usize)], out: &mut Vec<Vec<Entry>>) -> IndexResult<()> {
        self.read().scan_batch(ranges, out)
    }

    fn len(&self) -> u64 {
        self.read().len()
    }

    fn stats(&self) -> IndexStats {
        self.read().stats()
    }

    fn storage_blocks(&self) -> u64 {
        self.read().storage_blocks()
    }
}

impl<I: DiskIndex> IndexWrite for ConcurrentIndex<I> {
    /// Exclusive by construction (`&mut self`): no lock traffic, no stall
    /// accounting — used for the bulk-load phase before the index is
    /// shared.
    fn bulk_load(&mut self, entries: &[Entry]) -> IndexResult<()> {
        self.inner.get_mut().bulk_load(entries)
    }

    fn insert(&mut self, key: Key, value: Value) -> IndexResult<()> {
        self.inner.get_mut().insert(key, value)
    }

    fn insert_batch(&mut self, entries: &[Entry]) -> IndexResult<()> {
        self.inner.get_mut().insert_batch(entries)
    }

    fn insert_breakdown(&self) -> InsertBreakdown {
        self.read().insert_breakdown()
    }
}

/// Configuration of a [`ShardedWriteBuffer`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ShardedWriteBufferConfig {
    /// Number of staged entries in one *shard* that triggers an automatic
    /// drain of that shard (the single-threaded buffer's
    /// [`crate::write_buffer::WriteBufferConfig::capacity`], applied per
    /// shard).
    pub capacity: usize,
    /// Maximum entries handed to one exclusive
    /// [`ConcurrentIndex::insert_batch_exclusive`] call while draining —
    /// the granularity at which readers interleave with a drain.
    pub drain: usize,
    /// Number of key-range shards. More shards mean less staging
    /// contention between writer threads whose keys land apart; one shard
    /// degenerates to the single-threaded buffer's behaviour.
    pub shards: usize,
}

impl Default for ShardedWriteBufferConfig {
    fn default() -> Self {
        ShardedWriteBufferConfig { capacity: 1024, drain: 256, shards: 8 }
    }
}

/// Places `shards - 1` boundaries at the quantiles of `sample` (sorted and
/// deduplicated first), so a `shards`-way contiguous key-range partition
/// sees a comparable load even for skewed key populations. Returns an
/// empty vector (a single unbounded shard) for an empty sample or
/// `shards <= 1`; collapsing quantiles of a small sample are deduplicated,
/// so fewer than `shards - 1` boundaries may come back.
///
/// This is the boundary machinery shared by
/// [`ShardedWriteBuffer::with_sampled_boundaries`] (staging shards within
/// one instance) and
/// [`crate::sharded::ShardedIndex::with_sampled_boundaries`] (keyspace
/// shards across instances).
pub fn sampled_boundaries(sample: &[Key], shards: usize) -> Vec<Key> {
    if sample.is_empty() || shards <= 1 {
        return Vec::new();
    }
    let mut sorted = sample.to_vec();
    sorted.sort_unstable();
    sorted.dedup();
    let mut boundaries: Vec<Key> =
        (1..shards).map(|s| sorted[(s * sorted.len() / shards).min(sorted.len() - 1)]).collect();
    boundaries.dedup();
    boundaries
}

/// One key-range shard of the staging front.
struct Shard {
    /// The staged entries of this key range.
    staged: Mutex<BTreeMap<Key, Value>>,
    /// Serialises drains of this shard (stagers and readers are *not*
    /// blocked by a drain holding this — they only touch `staged`).
    drain_gate: Mutex<()>,
    /// This shard's write-ahead log, when the front is durable. Lock order
    /// is `wal → staged`: a stager appends under the WAL lock and keeps
    /// holding it across the staging insert, so per-shard WAL record order
    /// always matches the overlay's newest-wins order.
    wal: Option<Mutex<WalSegment>>,
}

/// A sharded group-commit staging front over a [`ConcurrentIndex`]: the
/// concurrent counterpart of [`crate::write_buffer::WriteBuffer`].
///
/// All mutating entry points take `&self`, so one `ShardedWriteBuffer` can
/// be shared across writer and reader threads (e.g. via
/// [`std::thread::scope`]): writers call [`stage`] / [`stage_batch`],
/// readers call the [`IndexRead`] methods, and drains happen automatically
/// whenever a shard crosses its capacity — or on demand via [`flush`].
///
/// The staging map is partitioned into contiguous key ranges
/// (`boundaries`), each behind its own mutex; see the
/// [module docs](self) for the locking protocol and its invariants.
///
/// # Example
///
/// Four writer threads race inserts against two reader threads; every
/// staged entry is visible immediately (newest-wins overlay) and all of it
/// reaches the wrapped index on the final flush:
///
/// ```
/// use lidx_core::concurrent::{ShardedWriteBuffer, ShardedWriteBufferConfig};
/// use lidx_core::index::{IndexKind, IndexRead, IndexStats, IndexWrite};
/// use lidx_core::{Entry, IndexResult, InsertBreakdown, Key, Value};
/// use lidx_storage::{Disk, DiskConfig};
/// use std::sync::Arc;
///
/// struct VecIndex {
///     disk: Arc<Disk>,
///     entries: Vec<Entry>, // sorted by key
/// }
///
/// impl IndexRead for VecIndex {
///     fn kind(&self) -> IndexKind { IndexKind::BTree }
///     fn disk(&self) -> &Arc<Disk> { &self.disk }
///     fn lookup(&self, key: Key) -> IndexResult<Option<Value>> {
///         Ok(self.entries.binary_search_by_key(&key, |e| e.0).ok().map(|i| self.entries[i].1))
///     }
///     fn scan(&self, start: Key, count: usize, out: &mut Vec<Entry>) -> IndexResult<usize> {
///         out.clear();
///         let from = self.entries.partition_point(|e| e.0 < start);
///         out.extend(self.entries[from..].iter().take(count));
///         Ok(out.len())
///     }
///     fn len(&self) -> u64 { self.entries.len() as u64 }
///     fn stats(&self) -> IndexStats { IndexStats::default() }
/// }
///
/// impl IndexWrite for VecIndex {
///     fn bulk_load(&mut self, entries: &[Entry]) -> IndexResult<()> {
///         self.entries = entries.to_vec();
///         Ok(())
///     }
///     fn insert(&mut self, key: Key, value: Value) -> IndexResult<()> {
///         match self.entries.binary_search_by_key(&key, |e| e.0) {
///             Ok(i) => self.entries[i].1 = value,
///             Err(i) => self.entries.insert(i, (key, value)),
///         }
///         Ok(())
///     }
///     fn insert_breakdown(&self) -> InsertBreakdown { InsertBreakdown::new() }
/// }
///
/// let index = VecIndex { disk: Disk::in_memory(DiskConfig::default()), entries: Vec::new() };
/// let mut buffered = ShardedWriteBuffer::new(index, ShardedWriteBufferConfig::default());
/// buffered.bulk_load(&[])?;
///
/// std::thread::scope(|s| {
///     let buffered = &buffered;
///     for t in 0..4u64 {
///         s.spawn(move || {
///             for i in 0..100u64 {
///                 buffered.stage(i * 4 + t, i).expect("stage");
///             }
///         });
///     }
///     for _ in 0..2 {
///         s.spawn(move || {
///             let mut out = Vec::new();
///             buffered.scan(0, 50, &mut out).expect("scan");
///         });
///     }
/// });
///
/// buffered.flush()?;
/// assert_eq!(buffered.staged_len(), 0);
/// assert_eq!(buffered.into_inner()?.entries.len(), 400);
/// # Ok::<(), lidx_core::IndexError>(())
/// ```
///
/// [`stage`]: ShardedWriteBuffer::stage
/// [`stage_batch`]: ShardedWriteBuffer::stage_batch
/// [`flush`]: ShardedWriteBuffer::flush
pub struct ShardedWriteBuffer<I> {
    index: ConcurrentIndex<I>,
    config: ShardedWriteBufferConfig,
    /// `boundaries[s]` is the first key *not* in shard `s`; shard
    /// `shards - 1` is unbounded above. Length `config.shards - 1`.
    boundaries: Vec<Key>,
    shards: Vec<Shard>,
    drains: AtomicU64,
    drained_entries: AtomicU64,
    /// The design tag written into the manifest (only used with WALs).
    tag: String,
}

impl<I: DiskIndex> ShardedWriteBuffer<I> {
    /// Wraps `inner` behind a sharded staging front with uniform key-range
    /// boundaries over the full `u64` space.
    pub fn new(inner: I, config: ShardedWriteBufferConfig) -> Self {
        let shards = config.shards.max(1);
        let step = Key::MAX / shards as Key;
        let boundaries = (1..shards).map(|s| step.saturating_mul(s as Key)).collect();
        Self::with_boundaries(inner, config, boundaries)
    }

    /// Wraps `inner` with shard boundaries derived from a sample of the
    /// key population (e.g. the bulk-load keys): boundaries are placed at
    /// the sample's quantiles so each shard sees a comparable staging
    /// load even for skewed key spaces.
    pub fn with_sampled_boundaries(
        inner: I,
        config: ShardedWriteBufferConfig,
        sample: &[Key],
    ) -> Self {
        let boundaries = sampled_boundaries(sample, config.shards.max(1));
        if boundaries.is_empty() {
            return Self::new(inner, config);
        }
        Self::with_boundaries(inner, config, boundaries)
    }

    /// Wraps `inner` with explicit shard boundaries (`boundaries[s]` is
    /// the first key of shard `s + 1`; must be strictly increasing).
    pub fn with_boundaries(
        inner: I,
        config: ShardedWriteBufferConfig,
        boundaries: Vec<Key>,
    ) -> Self {
        assert!(config.capacity >= 1, "shard capacity must hold at least one entry");
        assert!(config.drain >= 1, "drain chunks must carry at least one entry");
        assert!(
            boundaries.windows(2).all(|w| w[0] < w[1]),
            "shard boundaries must be strictly increasing"
        );
        let shards = (0..=boundaries.len())
            .map(|_| Shard {
                staged: Mutex::new(BTreeMap::new()),
                drain_gate: Mutex::new(()),
                wal: None,
            })
            .collect();
        ShardedWriteBuffer {
            index: ConcurrentIndex::new(inner),
            config,
            boundaries,
            shards,
            drains: AtomicU64::new(0),
            drained_entries: AtomicU64::new(0),
            tag: String::new(),
        }
    }

    /// Wraps `inner` with uniform boundaries and one freshly created
    /// write-ahead log per shard, so staged entries survive a kill.
    ///
    /// Every stage is logged (group-committed, under that shard's WAL lock)
    /// before it enters the overlay; a full [`flush`] ends in a checkpoint
    /// (save_meta → superblock persist of the [`Manifest`] carrying `tag` →
    /// truncate all shard WALs). Bounded capacity-triggered drains do *not*
    /// truncate — their entries simply replay idempotently after a crash.
    ///
    /// Durability is quiescent-checkpoint shaped: entries staged *while* a
    /// checkpoint is truncating may only become durable at the next
    /// checkpoint, so call [`flush`] from a point where writers are paused
    /// when a hard durability boundary is needed.
    ///
    /// [`flush`]: ShardedWriteBuffer::flush
    pub fn with_wal(inner: I, config: ShardedWriteBufferConfig, tag: &str) -> IndexResult<Self> {
        let mut buffer = Self::new(inner, config);
        for shard in &mut buffer.shards {
            shard.wal = Some(Mutex::new(WalSegment::create(buffer.index.disk())?));
        }
        buffer.tag = tag.to_string();
        Ok(buffer)
    }

    /// Reopens a WAL-backed sharded front after a restart: replays every
    /// segment of `wal_files` (one per shard, in shard order, from the
    /// recovered [`Manifest`]) into the staging overlay and returns the
    /// front plus the number of replayed entries. Replayed entries route to
    /// the shard owning their key under the *current* boundaries. Reopen
    /// with the same shard count as the previous session: a key's records
    /// all live in one segment then, so replay preserves newest-wins order.
    pub fn with_wal_replayed(
        inner: I,
        config: ShardedWriteBufferConfig,
        tag: &str,
        wal_files: &[FileId],
    ) -> IndexResult<(Self, u64)> {
        let mut buffer = Self::new(inner, config);
        if wal_files.len() != buffer.shards.len() {
            return Err(IndexError::Internal(format!(
                "manifest lists {} WAL segments but the front has {} shards",
                wal_files.len(),
                buffer.shards.len()
            )));
        }
        buffer.tag = tag.to_string();
        let disk = Arc::clone(buffer.index.disk());
        let _span = disk.telemetry().span(OpClass::Recovery);
        let mut replayed = 0u64;
        for (shard_idx, &file) in wal_files.iter().enumerate() {
            let (wal, payloads) = WalSegment::open(&disk, file)?;
            buffer.shards[shard_idx].wal = Some(Mutex::new(wal));
            for payload in payloads {
                for (key, value) in decode_wal_entries(&payload)? {
                    let target = buffer.shard_of(key);
                    buffer.shards[target].staged.lock().insert(key, value);
                    replayed += 1;
                }
            }
        }
        disk.invalidate_caches();
        disk.telemetry().add(OpClass::Recovery, replayed);
        Ok((buffer, replayed))
    }

    /// The configuration in use.
    pub fn config(&self) -> ShardedWriteBufferConfig {
        self.config
    }

    /// Number of shards actually built (explicit boundaries may collapse
    /// duplicates, so this can be less than the configured count).
    pub fn shard_count(&self) -> usize {
        self.shards.len()
    }

    /// The shard whose key range contains `key`.
    pub fn shard_of(&self, key: Key) -> usize {
        self.boundaries.partition_point(|&b| b <= key)
    }

    /// Total entries currently staged across all shards.
    pub fn staged_len(&self) -> usize {
        self.shards.iter().map(|s| s.staged.lock().len()).sum()
    }

    /// Number of shard drains performed so far (each may have issued
    /// several exclusive chunks).
    pub fn drains(&self) -> u64 {
        self.drains.load(Ordering::Relaxed)
    }

    /// Shared access to the underlying [`ConcurrentIndex`].
    pub fn index(&self) -> &ConcurrentIndex<I> {
        &self.index
    }

    /// Stages one entry (upsert, visible immediately through the overlay)
    /// and drains the target shard if it crossed its capacity. Safe to
    /// call from any number of threads.
    pub fn stage(&self, key: Key, value: Value) -> IndexResult<()> {
        let s = self.shard_of(key);
        let shard = &self.shards[s];
        // With a WAL, log before staging and hold the WAL lock across the
        // staging insert (lock order wal → staged) so the shard's record
        // order matches the overlay's newest-wins order. A stage that
        // cannot be logged does not happen.
        let wal_guard = match &shard.wal {
            Some(wal) => {
                let mut guard = wal.lock();
                guard.append(&encode_wal_entry(key, value))?;
                Some(guard)
            }
            None => None,
        };
        let mut staged = self.lock_staged_write(shard);
        staged.insert(key, value);
        let full = staged.len() >= self.config.capacity;
        drop(staged);
        drop(wal_guard);
        if full {
            self.drain_shard_bounded(s)?;
        }
        Ok(())
    }

    /// Stages a batch (later duplicates win), draining any shard that
    /// crosses its capacity along the way.
    pub fn stage_batch(&self, entries: &[Entry]) -> IndexResult<()> {
        for &(key, value) in entries {
            self.stage(key, value)?;
        }
        Ok(())
    }

    /// Drains every shard through the exclusive chunked path, leaving the
    /// staging front empty (unless a chunk fails, in which case the
    /// not-yet-applied entries stay staged and served by the overlay).
    ///
    /// When WALs are attached, a successful flush ends in a checkpoint:
    /// `save_meta` under the index write lock, superblock persist of the
    /// manifest, then truncation of every shard's WAL. Only this full
    /// flush truncates — bounded capacity drains leave their records in
    /// place to replay idempotently.
    pub fn flush(&self) -> IndexResult<()> {
        for s in 0..self.shards.len() {
            self.drain_shard(s)?;
        }
        self.write_checkpoint(false)
    }

    /// Flushes every shard and writes a durable checkpoint with the given
    /// clean-shutdown flag. No-op beyond the drain when no WAL is attached.
    pub fn checkpoint(&self, clean: bool) -> IndexResult<()> {
        self.flush()?;
        self.write_checkpoint(clean)
    }

    /// The checkpoint tail shared by [`flush`] and [`checkpoint`]: persist
    /// the manifest *before* truncating any WAL, so a kill between the two
    /// steps only replays entries the drain already applied.
    ///
    /// [`flush`]: ShardedWriteBuffer::flush
    /// [`checkpoint`]: ShardedWriteBuffer::checkpoint
    fn write_checkpoint(&self, clean: bool) -> IndexResult<()> {
        if self.shards.iter().all(|s| s.wal.is_none()) {
            return Ok(());
        }
        let _span = self.index.disk().telemetry().span(OpClass::Checkpoint);
        self.index.disk().stats().record_checkpoint();
        let index_meta = self.index.write().save_meta()?;
        let wal_files: Vec<FileId> = self
            .shards
            .iter()
            .filter_map(|s| s.wal.as_ref())
            .map(|wal| wal.lock().file())
            .collect();
        let manifest = Manifest { index_kind: self.tag.clone(), index_meta, wal_files };
        self.index.disk().persist(&manifest.encode(), clean)?;
        for shard in &self.shards {
            if let Some(wal) = &shard.wal {
                wal.lock().truncate()?;
            }
        }
        Ok(())
    }

    /// Flushes all shards and returns the wrapped index.
    pub fn into_inner(self) -> IndexResult<I> {
        self.flush()?;
        Ok(self.index.into_inner())
    }

    /// Locks a shard's staging map on behalf of a *writer* (stage or
    /// drain), counting a write stall if contended.
    fn lock_staged_write<'a>(
        &self,
        shard: &'a Shard,
    ) -> parking_lot::MutexGuard<'a, BTreeMap<Key, Value>> {
        if let Some(guard) = shard.staged.try_lock() {
            return guard;
        }
        self.index.disk().stats().record_write_stall();
        let _span = self.index.disk().telemetry().span(OpClass::LockWrite);
        shard.staged.lock()
    }

    /// Locks a shard's staging map on behalf of an overlay *read*
    /// (`lookup`, `lookup_batch`, `scan` via [`staged_range`]), counting a
    /// read stall if contended — a reader blocked on the staging lock is
    /// read-side contention and must not inflate `write_stalls`.
    ///
    /// [`staged_range`]: ShardedWriteBuffer::staged_range
    fn lock_staged_read<'a>(
        &self,
        shard: &'a Shard,
    ) -> parking_lot::MutexGuard<'a, BTreeMap<Key, Value>> {
        if let Some(guard) = shard.staged.try_lock() {
            return guard;
        }
        self.index.disk().stats().record_read_stall();
        let _span = self.index.disk().telemetry().span(OpClass::LockRead);
        shard.staged.lock()
    }

    /// Drains one shard completely (the [`flush`] path — only the caller
    /// keeps staging, so running until empty terminates).
    ///
    /// [`flush`]: ShardedWriteBuffer::flush
    fn drain_shard(&self, s: usize) -> IndexResult<()> {
        self.drain_shard_inner(s, None)
    }

    /// Drains one shard far enough to relieve its capacity trigger.
    ///
    /// A capacity-triggered drain must *not* loop until the shard is empty:
    /// with racing writers re-staging into the same shard the emptiness
    /// condition may never hold and the draining thread starves. Instead the
    /// triggered path stops as soon as the shard is back below capacity, and
    /// in any case after enough chunks to clear one full shard (plus one
    /// chunk of slack for entries staged while draining).
    fn drain_shard_bounded(&self, s: usize) -> IndexResult<()> {
        let max_chunks = self.config.capacity.div_ceil(self.config.drain) + 1;
        self.drain_shard_inner(s, Some(max_chunks))
    }

    /// Drains one shard: snapshot a chunk under the staging lock, apply it
    /// under the index write lock, then remove exactly the entries whose
    /// staged value is still the drained one (a key re-staged mid-chunk
    /// keeps its newer value for the next drain). With `max_chunks` set,
    /// stops early once the shard is below capacity and never exceeds the
    /// chunk budget.
    fn drain_shard_inner(&self, s: usize, max_chunks: Option<usize>) -> IndexResult<()> {
        let shard = &self.shards[s];
        let gate = match shard.drain_gate.try_lock() {
            Some(guard) => guard,
            None => {
                // Another thread is already draining this shard; crossing
                // the capacity threshold twice concurrently just queues the
                // second drain behind the first.
                self.index.disk().stats().record_write_stall();
                let _span = self.index.disk().telemetry().span(OpClass::LockWrite);
                shard.drain_gate.lock()
            }
        };
        // Fsync-point: the shard's staged entries must be durable before
        // the drain starts mutating index blocks, so a kill mid-drain
        // replays them over the last checkpoint's structure.
        if let Some(wal) = &shard.wal {
            wal.lock().sync()?;
        }
        let mut drained_any = false;
        let mut chunks_done = 0usize;
        loop {
            if max_chunks.is_some_and(|cap| chunks_done >= cap) {
                break;
            }
            let chunk: Vec<Entry> = {
                let staged = self.lock_staged_write(shard);
                if drained_any && max_chunks.is_some() && staged.len() < self.config.capacity {
                    // The trigger is relieved; leave the remainder for the
                    // next drain instead of chasing racing re-stagers.
                    break;
                }
                staged.iter().take(self.config.drain).map(|(&k, &v)| (k, v)).collect()
            };
            if chunk.is_empty() {
                break;
            }
            self.index.insert_batch_exclusive(&chunk)?;
            drained_any = true;
            chunks_done += 1;
            self.drained_entries.fetch_add(chunk.len() as u64, Ordering::Relaxed);
            let mut staged = self.lock_staged_write(shard);
            for &(key, value) in &chunk {
                if staged.get(&key) == Some(&value) {
                    staged.remove(&key);
                }
            }
        }
        drop(gate);
        if drained_any {
            self.drains.fetch_add(1, Ordering::Relaxed);
        }
        Ok(())
    }

    /// Collects up to `count` staged entries with keys `>= start`, in
    /// ascending key order, locking one shard at a time.
    fn staged_range(&self, start: Key, count: usize) -> Vec<Entry> {
        let mut out = Vec::new();
        if count == 0 {
            return out;
        }
        for s in self.shard_of(start)..self.shards.len() {
            let staged = self.lock_staged_read(&self.shards[s]);
            out.extend(staged.range(start..).take(count - out.len()).map(|(&k, &v)| (k, v)));
            if out.len() >= count {
                break;
            }
        }
        out
    }
}

impl<I: DiskIndex> IndexRead for ShardedWriteBuffer<I> {
    fn kind(&self) -> IndexKind {
        self.index.kind()
    }

    fn name(&self) -> String {
        format!("{}+swb", self.index.name())
    }

    fn disk(&self) -> &Arc<Disk> {
        self.index.disk()
    }

    /// Overlay-first: a staged key answers from its shard without touching
    /// the index (or any other shard); only a miss takes the index read
    /// lock.
    fn lookup(&self, key: Key) -> IndexResult<Option<Value>> {
        let shard = &self.shards[self.shard_of(key)];
        let staged = self.lock_staged_read(shard);
        if let Some(&v) = staged.get(&key) {
            return Ok(Some(v));
        }
        drop(staged);
        self.index.lookup(key)
    }

    /// Answers staged keys from their shards and forwards only the
    /// unresolved remainder to the index's batched probe, under one read
    /// lock.
    fn lookup_batch(&self, keys: &[Key], out: &mut Vec<Option<Value>>) -> IndexResult<()> {
        out.clear();
        out.resize(keys.len(), None);
        if keys.is_empty() {
            return Ok(());
        }
        let mut forward_keys = Vec::new();
        let mut forward_idx = Vec::new();
        for (i, &key) in keys.iter().enumerate() {
            let staged = self.lock_staged_read(&self.shards[self.shard_of(key)]);
            match staged.get(&key) {
                Some(&v) => out[i] = Some(v),
                None => {
                    forward_keys.push(key);
                    forward_idx.push(i);
                }
            }
        }
        if forward_keys.is_empty() {
            return Ok(());
        }
        let mut answers = Vec::new();
        self.index.lookup_batch(&forward_keys, &mut answers)?;
        for (slot, answer) in forward_idx.into_iter().zip(answers) {
            out[slot] = answer;
        }
        Ok(())
    }

    /// Merges the staged range (collected shard-by-shard) into the index's
    /// scan result, newest-wins on duplicate keys. The staged snapshot is
    /// taken *before* the index scan, so an entry drained in between is
    /// seen at least once (staged and stored values are identical at that
    /// point) and never lost.
    fn scan(&self, start: Key, count: usize, out: &mut Vec<Entry>) -> IndexResult<usize> {
        let staged = self.staged_range(start, count);
        if staged.is_empty() {
            return self.index.scan(start, count, out);
        }
        let mut stored = Vec::new();
        self.index.scan(start, count, &mut stored)?;
        out.clear();
        crate::merge_newest_wins(staged, stored, count, out);
        Ok(out.len())
    }

    /// Keys visible through the overlay; like the single-threaded buffer,
    /// a staged key that also exists in the index double-counts until a
    /// drain reconciles it.
    fn len(&self) -> u64 {
        self.index.len() + self.staged_len() as u64
    }

    fn stats(&self) -> IndexStats {
        self.index.stats()
    }

    fn storage_blocks(&self) -> u64 {
        self.index.storage_blocks()
    }
}

impl<I: DiskIndex> IndexWrite for ShardedWriteBuffer<I> {
    /// Bulk load goes straight to the wrapped index, before sharing. With
    /// WALs attached, the load ends in a durable checkpoint so a directory
    /// is reopenable right after building.
    fn bulk_load(&mut self, entries: &[Entry]) -> IndexResult<()> {
        self.index.bulk_load(entries)?;
        self.write_checkpoint(false)
    }

    /// The `&mut self` insert is just [`stage`](ShardedWriteBuffer::stage)
    /// — provided so the buffer remains a drop-in [`DiskIndex`].
    fn insert(&mut self, key: Key, value: Value) -> IndexResult<()> {
        self.stage(key, value)
    }

    fn insert_batch(&mut self, entries: &[Entry]) -> IndexResult<()> {
        self.stage_batch(entries)
    }

    /// The wrapped index's breakdown plus this front's drain counters.
    fn insert_breakdown(&self) -> InsertBreakdown {
        let mut breakdown = self.index.insert_breakdown();
        breakdown.drains += self.drains.load(Ordering::Relaxed);
        breakdown.drained_entries += self.drained_entries.load(Ordering::Relaxed);
        breakdown
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::error::IndexError;
    use lidx_storage::DiskConfig;

    /// The write_buffer test double, shared shape: an in-memory map index
    /// that records how writes arrive and can poison one batch.
    struct MapIndex {
        disk: Arc<Disk>,
        entries: BTreeMap<Key, Value>,
        batches: Vec<usize>,
        loaded: bool,
        poison: Option<Key>,
        /// Artificial per-batch latency, so racing tests can make staging
        /// reliably faster than draining.
        batch_delay: Option<std::time::Duration>,
    }

    impl MapIndex {
        fn new() -> Self {
            MapIndex {
                disk: Disk::in_memory(DiskConfig::default()),
                entries: BTreeMap::new(),
                batches: Vec::new(),
                loaded: false,
                poison: None,
                batch_delay: None,
            }
        }
    }

    impl IndexRead for MapIndex {
        fn kind(&self) -> IndexKind {
            IndexKind::BTree
        }

        fn disk(&self) -> &Arc<Disk> {
            &self.disk
        }

        fn lookup(&self, key: Key) -> IndexResult<Option<Value>> {
            Ok(self.entries.get(&key).copied())
        }

        fn scan(&self, start: Key, count: usize, out: &mut Vec<Entry>) -> IndexResult<usize> {
            out.clear();
            out.extend(self.entries.range(start..).take(count).map(|(&k, &v)| (k, v)));
            Ok(out.len())
        }

        fn len(&self) -> u64 {
            self.entries.len() as u64
        }

        fn stats(&self) -> IndexStats {
            IndexStats { keys: self.entries.len() as u64, ..Default::default() }
        }
    }

    impl IndexWrite for MapIndex {
        fn bulk_load(&mut self, entries: &[Entry]) -> IndexResult<()> {
            if self.loaded {
                return Err(IndexError::AlreadyLoaded);
            }
            self.entries = entries.iter().copied().collect();
            self.loaded = true;
            Ok(())
        }

        fn insert(&mut self, key: Key, value: Value) -> IndexResult<()> {
            self.entries.insert(key, value);
            Ok(())
        }

        fn insert_batch(&mut self, entries: &[Entry]) -> IndexResult<()> {
            if let Some(delay) = self.batch_delay {
                std::thread::sleep(delay);
            }
            if let Some(poison) = self.poison {
                if entries.iter().any(|&(k, _)| k == poison) {
                    self.poison = None;
                    return Err(IndexError::Internal("poisoned batch".into()));
                }
            }
            self.batches.push(entries.len());
            assert!(
                entries.windows(2).all(|w| w[0].0 < w[1].0),
                "drain chunks must arrive sorted and de-duplicated"
            );
            for &(k, v) in entries {
                self.entries.insert(k, v);
            }
            Ok(())
        }

        fn insert_breakdown(&self) -> InsertBreakdown {
            InsertBreakdown::new()
        }
    }

    fn buffer(config: ShardedWriteBufferConfig) -> ShardedWriteBuffer<MapIndex> {
        let mut b = ShardedWriteBuffer::new(MapIndex::new(), config);
        b.bulk_load(&[]).unwrap();
        b
    }

    #[test]
    fn keys_route_to_contiguous_shards() {
        let b = ShardedWriteBuffer::with_boundaries(
            MapIndex::new(),
            ShardedWriteBufferConfig { shards: 3, ..Default::default() },
            vec![100, 200],
        );
        assert_eq!(b.shard_count(), 3);
        assert_eq!(b.shard_of(0), 0);
        assert_eq!(b.shard_of(99), 0);
        assert_eq!(b.shard_of(100), 1);
        assert_eq!(b.shard_of(199), 1);
        assert_eq!(b.shard_of(200), 2);
        assert_eq!(b.shard_of(Key::MAX), 2);
    }

    #[test]
    fn sampled_boundaries_balance_a_skewed_key_space() {
        // All keys live in [0, 1000): uniform u64 boundaries would put
        // every key into shard 0; sampled boundaries split the population.
        let sample: Vec<Key> = (0..1000).collect();
        let b = ShardedWriteBuffer::with_sampled_boundaries(
            MapIndex::new(),
            ShardedWriteBufferConfig { shards: 4, ..Default::default() },
            &sample,
        );
        let shards: std::collections::HashSet<usize> =
            sample.iter().map(|&k| b.shard_of(k)).collect();
        assert_eq!(shards.len(), 4, "all four shards must receive keys");
    }

    #[test]
    fn capacity_drains_only_the_full_shard() {
        let b = ShardedWriteBuffer::with_boundaries(
            MapIndex::new(),
            ShardedWriteBufferConfig { capacity: 3, drain: 8, shards: 2 },
            vec![1000],
        );
        // Shard 0 fills to capacity; shard 1 keeps one entry staged.
        b.stage(2000, 1).unwrap();
        b.stage(1, 1).unwrap();
        b.stage(2, 2).unwrap();
        assert_eq!(b.drains(), 0);
        b.stage(3, 3).unwrap();
        assert_eq!(b.drains(), 1, "shard 0 crossed its capacity");
        assert_eq!(b.staged_len(), 1, "shard 1's entry stays staged");
        assert_eq!(b.index().read().entries.len(), 3);
        let stats = b.disk().stats();
        assert_eq!(stats.drain_chunks(), 1);
        assert_eq!(stats.drain_entries(), 3);
    }

    #[test]
    fn overlay_reads_are_newest_wins_across_shards() {
        let mut b = ShardedWriteBuffer::with_boundaries(
            MapIndex::new(),
            ShardedWriteBufferConfig { capacity: 64, drain: 64, shards: 3 },
            vec![100, 200],
        );
        b.bulk_load(&[(10, 1), (150, 2), (250, 3)]).unwrap();
        b.stage(150, 99).unwrap();
        b.stage(50, 50).unwrap();
        b.stage(225, 25).unwrap();

        assert_eq!(b.lookup(150).unwrap(), Some(99), "staged overwrite shadows the store");
        assert_eq!(b.lookup(10).unwrap(), Some(1), "unstaged keys read through");
        assert_eq!(b.lookup(11).unwrap(), None);

        let mut out = Vec::new();
        assert_eq!(b.scan(0, 10, &mut out).unwrap(), 5);
        assert_eq!(out, vec![(10, 1), (50, 50), (150, 99), (225, 25), (250, 3)]);
        // A scan crossing shard boundaries merges all staged ranges.
        assert_eq!(b.scan(40, 3, &mut out).unwrap(), 3);
        assert_eq!(out, vec![(50, 50), (150, 99), (225, 25)]);

        let mut answers = Vec::new();
        b.lookup_batch(&[150, 11, 225, 10, 150], &mut answers).unwrap();
        assert_eq!(answers, vec![Some(99), None, Some(25), Some(1), Some(99)]);
    }

    #[test]
    fn flush_reconciles_every_shard_in_chunks() {
        let b = buffer(ShardedWriteBufferConfig { capacity: 1024, drain: 4, shards: 4 });
        for key in 0..10u64 {
            b.stage(key.wrapping_mul(0x9E37_79B9_7F4A_7C15), key).unwrap();
        }
        assert_eq!(b.staged_len(), 10);
        b.flush().unwrap();
        assert_eq!(b.staged_len(), 0);
        assert_eq!(b.index().len(), 10);
        let breakdown = b.insert_breakdown();
        assert_eq!(breakdown.drained_entries, 10);
        assert!(breakdown.drains >= 1);
        assert_eq!(b.disk().stats().drain_entries(), 10);
    }

    #[test]
    fn failed_drain_chunks_keep_their_entries_staged() {
        let mut inner = MapIndex::new();
        inner.poison = Some(7);
        let b = {
            let mut b = ShardedWriteBuffer::with_boundaries(
                inner,
                ShardedWriteBufferConfig { capacity: 64, drain: 2, shards: 1 },
                Vec::new(),
            );
            b.bulk_load(&[]).unwrap();
            b
        };
        for key in [1u64, 3, 7, 9, 11, 13] {
            b.stage(key, key * 10).unwrap();
        }
        assert!(b.flush().is_err(), "the poisoned chunk must surface its error");
        assert_eq!(b.staged_len(), 4, "unapplied entries stay staged");
        for key in [1u64, 3, 7, 9, 11, 13] {
            assert_eq!(b.lookup(key).unwrap(), Some(key * 10), "key {key} lost by failed drain");
        }
        b.flush().unwrap();
        assert_eq!(b.staged_len(), 0);
        assert_eq!(b.index().len(), 6);
    }

    #[test]
    fn restaged_key_survives_a_concurrent_looking_drain() {
        // Simulate the mid-drain re-stage interleaving deterministically:
        // value v1 is snapshot into a chunk, the key is re-staged with v2
        // before the removal step runs, and the removal must keep v2.
        let b = buffer(ShardedWriteBufferConfig { capacity: 1024, drain: 8, shards: 1 });
        b.stage(5, 1).unwrap();
        // Drain applies (5, 1) ...
        b.flush().unwrap();
        // ... and a later re-stage must shadow the drained value again.
        b.stage(5, 2).unwrap();
        assert_eq!(b.lookup(5).unwrap(), Some(2));
        b.flush().unwrap();
        assert_eq!(b.lookup(5).unwrap(), Some(2));
        assert_eq!(b.index().read().entries.get(&5), Some(&2));
    }

    #[test]
    fn racing_stagers_and_readers_lose_nothing() {
        let b = buffer(ShardedWriteBufferConfig { capacity: 16, drain: 8, shards: 4 });
        let writers = 4u64;
        let per_writer = 500u64;
        std::thread::scope(|s| {
            let b = &b;
            for w in 0..writers {
                s.spawn(move || {
                    for i in 0..per_writer {
                        let key = i * writers + w; // disjoint key sets
                        b.stage(key, key + 1).expect("stage");
                    }
                });
            }
            for _ in 0..2 {
                s.spawn(move || {
                    let mut out = Vec::new();
                    for start in (0..per_writer * writers).step_by(97) {
                        let n = b.scan(start, 32, &mut out).expect("scan");
                        assert!(out.windows(2).all(|w| w[0].0 < w[1].0), "scan must stay sorted");
                        assert!(n <= 32);
                    }
                });
            }
        });
        b.flush().unwrap();
        assert_eq!(b.index().len(), writers * per_writer, "every staged entry must survive");
        for key in 0..writers * per_writer {
            assert_eq!(b.lookup(key).unwrap(), Some(key + 1), "key {key}");
        }
    }

    #[test]
    fn a_triggered_drain_is_not_starved_by_racing_restagers() {
        use std::sync::atomic::AtomicBool;
        // capacity 8 / drain 2: a triggered drain's chunk budget is
        // 8/2 + 1 = 5. The re-stager keeps the shard topped up to just
        // below capacity, so the old drain-until-empty loop would never
        // terminate (staging is made reliably faster than draining via the
        // per-batch delay); the bounded drain must return regardless.
        let mut inner = MapIndex::new();
        inner.batch_delay = Some(std::time::Duration::from_millis(2));
        let b = {
            let mut b = ShardedWriteBuffer::with_boundaries(
                inner,
                ShardedWriteBufferConfig { capacity: 8, drain: 2, shards: 1 },
                Vec::new(),
            );
            b.bulk_load(&[]).unwrap();
            b
        };
        for key in 0..7u64 {
            b.stage(key, key).unwrap();
        }
        let stop = AtomicBool::new(false);
        std::thread::scope(|s| {
            let (b, stop) = (&b, &stop);
            let restager = s.spawn(move || {
                let mut key = 1_000u64;
                while !stop.load(Ordering::Relaxed) {
                    // Refill without ever crossing capacity ourselves, so
                    // the re-stager never becomes a drainer.
                    if b.staged_len() < 6 {
                        b.stage(key, key).unwrap();
                        key += 1;
                    }
                    std::thread::yield_now();
                }
                key
            });
            // Crosses capacity and triggers the drain. Under the unbounded
            // loop this call would never return while the re-stager runs.
            b.stage(7, 7).unwrap();
            assert!(
                b.disk().stats().drain_chunks() <= 5,
                "a triggered drain must respect its chunk budget"
            );
            stop.store(true, Ordering::Relaxed);
            let next_key = restager.join().unwrap();
            // Nothing is lost: flush (unbounded, re-stager stopped) must
            // reconcile every key staged by either thread.
            b.flush().unwrap();
            for key in (0..8).chain(1_000..next_key) {
                assert_eq!(b.lookup(key).unwrap(), Some(key), "key {key}");
            }
        });
    }

    #[test]
    fn overlay_reads_blocked_on_staging_record_read_stalls() {
        let b = buffer(ShardedWriteBufferConfig::default());
        b.stage(1, 1).unwrap();
        let stats = b.disk().stats();
        let (reads_before, writes_before) = (stats.read_stalls(), stats.write_stalls());
        std::thread::scope(|s| {
            // Hold the staging lock of key 1's shard while an overlay read
            // probes it: the reader must block, and the stall must land in
            // the *read* column.
            let guard = b.shards[b.shard_of(1)].staged.lock();
            let b2 = &b;
            let reader = s.spawn(move || b2.lookup(1).expect("lookup"));
            while b.disk().stats().read_stalls() == reads_before {
                std::thread::yield_now();
            }
            drop(guard);
            assert_eq!(reader.join().unwrap(), Some(1));
        });
        assert!(b.disk().stats().read_stalls() > reads_before);
        assert_eq!(
            b.disk().stats().write_stalls(),
            writes_before,
            "an overlay read stalling on the staging lock is not write contention"
        );
    }

    #[test]
    fn stall_counters_surface_contention() {
        // Hold the index write lock from one thread while another reads:
        // the reader must block and the stall must be counted.
        let b = buffer(ShardedWriteBufferConfig::default());
        b.stage(1, 1).unwrap();
        let stats_before = b.disk().stats().read_stalls();
        std::thread::scope(|s| {
            let guard = b.index().write();
            let b2 = &b;
            let reader = s.spawn(move || {
                // Key 2 is not staged, so the lookup must go to the index
                // and block on the held write lock.
                b2.lookup(2).expect("lookup")
            });
            while b.disk().stats().read_stalls() == stats_before {
                std::thread::yield_now();
            }
            drop(guard);
            assert_eq!(reader.join().unwrap(), None);
        });
        assert!(b.disk().stats().read_stalls() > stats_before);
    }
}
