//! The restart manifest: what a durable index directory remembers.
//!
//! A [`Manifest`] is the opaque payload stored inside the storage layer's
//! [`Superblock`](lidx_storage::Superblock) at every checkpoint. It carries
//! three things:
//!
//! * which index design the directory holds (`index_kind`, the design's
//!   stable tag, e.g. `"btree"` or `"hybrid-pla"`),
//! * that design's serialised root metadata (`index_meta`, produced by
//!   [`IndexWrite::save_meta`](crate::index::IndexWrite::save_meta)), and
//! * the file ids of the write-ahead-log segments
//!   (`wal_files`, one per staging shard; a single-threaded
//!   [`WriteBuffer`](crate::write_buffer::WriteBuffer) has exactly one).
//!
//! Integrity is the superblock's job (the whole payload sits under its
//! CRC32), so the manifest encoding only needs to be self-describing:
//! length-prefixed fields with typed decode errors for truncation.

use lidx_storage::FileId;

use crate::error::{IndexError, IndexResult};

/// Magic tag leading every encoded manifest.
const MANIFEST_MAGIC: u32 = 0x6C6D_616E; // "lman" in LE byte order.

/// Everything needed to reopen a durable index directory: the design tag,
/// its serialised root metadata, and the WAL segment file ids.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Manifest {
    /// Stable design tag (`IndexChoice` style, e.g. `"pgm"`, `"hybrid-mt"`).
    pub index_kind: String,
    /// The design's own metadata bytes, from `IndexWrite::save_meta`.
    pub index_meta: Vec<u8>,
    /// File ids of the WAL segments to replay, in shard order.
    pub wal_files: Vec<FileId>,
}

impl Manifest {
    /// Serialises the manifest for storage in a superblock payload.
    pub fn encode(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(16 + self.index_kind.len() + self.index_meta.len());
        out.extend_from_slice(&MANIFEST_MAGIC.to_le_bytes());
        out.extend_from_slice(&(self.index_kind.len() as u32).to_le_bytes());
        out.extend_from_slice(self.index_kind.as_bytes());
        out.extend_from_slice(&(self.index_meta.len() as u32).to_le_bytes());
        out.extend_from_slice(&self.index_meta);
        out.extend_from_slice(&(self.wal_files.len() as u32).to_le_bytes());
        for &file in &self.wal_files {
            out.extend_from_slice(&file.to_le_bytes());
        }
        out
    }

    /// Decodes a manifest previously produced by [`encode`](Self::encode).
    /// Truncated or mistagged input yields a typed error, never a panic.
    pub fn decode(buf: &[u8]) -> IndexResult<Self> {
        let mut cursor = Cursor { buf, pos: 0 };
        let magic = cursor.u32()?;
        if magic != MANIFEST_MAGIC {
            return Err(IndexError::Internal(format!(
                "manifest magic {magic:#x} does not match {MANIFEST_MAGIC:#x}"
            )));
        }
        let kind_len = cursor.u32()? as usize;
        let kind_bytes = cursor.bytes(kind_len)?;
        let index_kind = String::from_utf8(kind_bytes.to_vec())
            .map_err(|_| IndexError::Internal("manifest index kind is not UTF-8".into()))?;
        let meta_len = cursor.u32()? as usize;
        let index_meta = cursor.bytes(meta_len)?.to_vec();
        let wal_count = cursor.u32()? as usize;
        let mut wal_files = Vec::with_capacity(wal_count.min(1024));
        for _ in 0..wal_count {
            wal_files.push(cursor.u32()?);
        }
        Ok(Manifest { index_kind, index_meta, wal_files })
    }
}

/// Frames one staged entry as a WAL record payload (16 bytes LE).
pub fn encode_wal_entry(key: crate::Key, value: crate::Value) -> [u8; 16] {
    let mut out = [0u8; 16];
    out[0..8].copy_from_slice(&key.to_le_bytes());
    out[8..16].copy_from_slice(&value.to_le_bytes());
    out
}

/// Decodes a WAL record payload back into staged entries. Payloads are a
/// concatenation of 16-byte `(key, value)` pairs; anything else means the
/// record was produced by different code and is rejected, never guessed at.
pub fn decode_wal_entries(payload: &[u8]) -> IndexResult<Vec<crate::Entry>> {
    if !payload.len().is_multiple_of(16) {
        return Err(IndexError::Internal(format!(
            "WAL entry payload of {} bytes is not a whole number of (key, value) pairs",
            payload.len()
        )));
    }
    Ok(payload
        .chunks_exact(16)
        .map(|pair| {
            (
                u64::from_le_bytes(pair[0..8].try_into().expect("8 bytes")),
                u64::from_le_bytes(pair[8..16].try_into().expect("8 bytes")),
            )
        })
        .collect())
}

/// A little-endian byte-string builder for `save_meta` implementations.
/// The inverse of [`MetaReader`]; field order is the schema.
#[derive(Debug, Default)]
pub struct MetaWriter {
    buf: Vec<u8>,
}

impl MetaWriter {
    /// An empty writer.
    pub fn new() -> Self {
        Self::default()
    }

    /// Appends a `u32`.
    pub fn u32(&mut self, v: u32) -> &mut Self {
        self.buf.extend_from_slice(&v.to_le_bytes());
        self
    }

    /// Appends a `u64`.
    pub fn u64(&mut self, v: u64) -> &mut Self {
        self.buf.extend_from_slice(&v.to_le_bytes());
        self
    }

    /// Appends an `f64` (IEEE 754 bits).
    pub fn f64(&mut self, v: f64) -> &mut Self {
        self.buf.extend_from_slice(&v.to_bits().to_le_bytes());
        self
    }

    /// Appends a length-prefixed byte string.
    pub fn bytes(&mut self, v: &[u8]) -> &mut Self {
        self.u32(v.len() as u32);
        self.buf.extend_from_slice(v);
        self
    }

    /// The accumulated bytes.
    pub fn finish(self) -> Vec<u8> {
        self.buf
    }
}

/// A bounds-checked little-endian reader for `load` implementations; every
/// short read is a typed [`IndexError::Internal`], never a panic.
pub struct MetaReader<'a> {
    cursor: Cursor<'a>,
}

impl<'a> MetaReader<'a> {
    /// Reads from the start of `buf`.
    pub fn new(buf: &'a [u8]) -> Self {
        MetaReader { cursor: Cursor { buf, pos: 0 } }
    }

    /// Reads a `u32`.
    pub fn u32(&mut self) -> IndexResult<u32> {
        self.cursor.u32()
    }

    /// Reads a `u64`.
    pub fn u64(&mut self) -> IndexResult<u64> {
        Ok(u64::from_le_bytes(self.cursor.bytes(8)?.try_into().expect("8 bytes")))
    }

    /// Reads an `f64` (IEEE 754 bits).
    pub fn f64(&mut self) -> IndexResult<f64> {
        Ok(f64::from_bits(self.u64()?))
    }

    /// Reads a length-prefixed byte string.
    pub fn bytes(&mut self) -> IndexResult<&'a [u8]> {
        let len = self.u32()? as usize;
        self.cursor.bytes(len)
    }

    /// True once every byte has been consumed.
    pub fn is_exhausted(&self) -> bool {
        self.cursor.pos == self.cursor.buf.len()
    }
}

/// A bounds-checked little-endian reader over a byte slice.
struct Cursor<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Cursor<'a> {
    fn bytes(&mut self, n: usize) -> IndexResult<&'a [u8]> {
        let end =
            self.pos.checked_add(n).filter(|&end| end <= self.buf.len()).ok_or_else(|| {
                IndexError::Internal(format!(
                    "manifest truncated: need {n} bytes at offset {}, have {}",
                    self.pos,
                    self.buf.len()
                ))
            })?;
        let slice = &self.buf[self.pos..end];
        self.pos = end;
        Ok(slice)
    }

    fn u32(&mut self) -> IndexResult<u32> {
        Ok(u32::from_le_bytes(self.bytes(4)?.try_into().expect("4 bytes")))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trips() {
        let m = Manifest {
            index_kind: "hybrid-pla".to_string(),
            index_meta: vec![1, 2, 3, 255, 0, 42],
            wal_files: vec![3, 9, 11],
        };
        assert_eq!(Manifest::decode(&m.encode()).unwrap(), m);

        let empty =
            Manifest { index_kind: String::new(), index_meta: Vec::new(), wal_files: Vec::new() };
        assert_eq!(Manifest::decode(&empty.encode()).unwrap(), empty);
    }

    #[test]
    fn meta_writer_reader_round_trip() {
        let mut w = MetaWriter::new();
        w.u32(7).u64(u64::MAX - 3).f64(0.8125).bytes(b"blob");
        let buf = w.finish();
        let mut r = MetaReader::new(&buf);
        assert_eq!(r.u32().unwrap(), 7);
        assert_eq!(r.u64().unwrap(), u64::MAX - 3);
        assert_eq!(r.f64().unwrap(), 0.8125);
        assert_eq!(r.bytes().unwrap(), b"blob");
        assert!(r.is_exhausted());
        assert!(r.u32().is_err(), "reading past the end is a typed error");
    }

    #[test]
    fn wal_entry_codec_round_trips_and_rejects_ragged_payloads() {
        let payload: Vec<u8> = [encode_wal_entry(1, 2), encode_wal_entry(u64::MAX, 0)].concat();
        assert_eq!(decode_wal_entries(&payload).unwrap(), vec![(1, 2), (u64::MAX, 0)]);
        assert_eq!(decode_wal_entries(&[]).unwrap(), vec![]);
        assert!(decode_wal_entries(&payload[..17]).is_err());
    }

    #[test]
    fn every_truncation_is_a_typed_error() {
        let m = Manifest {
            index_kind: "btree".to_string(),
            index_meta: vec![7; 20],
            wal_files: vec![1, 2],
        };
        let encoded = m.encode();
        for cut in 0..encoded.len() {
            let err = Manifest::decode(&encoded[..cut])
                .expect_err("a truncated manifest must not decode");
            assert!(matches!(err, IndexError::Internal(_)));
        }
        let mut wrong_magic = encoded;
        wrong_magic[0] ^= 0xFF;
        assert!(Manifest::decode(&wrong_magic).is_err());
    }
}
