//! The error type shared by all index implementations.

use std::fmt;

use lidx_storage::StorageError;

/// Result alias for index operations.
pub type IndexResult<T> = Result<T, IndexError>;

/// Errors surfaced by index operations.
#[derive(Debug)]
pub enum IndexError {
    /// The underlying storage layer failed.
    Storage(StorageError),
    /// Bulk load was called with keys that are not strictly increasing.
    UnsortedBulkLoad {
        /// Position of the first out-of-order key.
        position: usize,
    },
    /// Bulk load was called on an index that already contains data.
    AlreadyLoaded,
    /// The key being inserted already exists (the evaluation workloads only
    /// insert fresh keys, so indexes may reject duplicates explicitly).
    DuplicateKey(u64),
    /// An operation was attempted before the index was bulk loaded or
    /// initialised.
    NotInitialized,
    /// An internal invariant was violated; indicates a bug or corrupt data.
    Internal(String),
    /// The index does not implement an optional capability (e.g. a design
    /// without a persistence format cannot serve
    /// [`crate::index::IndexWrite::save_meta`]).
    Unsupported(&'static str),
}

impl fmt::Display for IndexError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            IndexError::Storage(e) => write!(f, "storage error: {e}"),
            IndexError::UnsortedBulkLoad { position } => {
                write!(
                    f,
                    "bulk load keys must be strictly increasing (violated at position {position})"
                )
            }
            IndexError::AlreadyLoaded => write!(f, "index has already been bulk loaded"),
            IndexError::DuplicateKey(k) => write!(f, "key {k} already exists"),
            IndexError::NotInitialized => write!(f, "index has not been initialised"),
            IndexError::Internal(msg) => write!(f, "internal index error: {msg}"),
            IndexError::Unsupported(op) => write!(f, "operation not supported by this index: {op}"),
        }
    }
}

impl std::error::Error for IndexError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            IndexError::Storage(e) => Some(e),
            _ => None,
        }
    }
}

impl From<StorageError> for IndexError {
    fn from(e: StorageError) -> Self {
        IndexError::Storage(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn storage_errors_convert() {
        let e: IndexError = StorageError::UnknownFile(3).into();
        assert!(matches!(e, IndexError::Storage(_)));
        assert!(std::error::Error::source(&e).is_some());
        assert!(e.to_string().contains("storage error"));
    }

    #[test]
    fn display_covers_all_variants() {
        assert!(IndexError::UnsortedBulkLoad { position: 5 }.to_string().contains('5'));
        assert!(IndexError::AlreadyLoaded.to_string().contains("already"));
        assert!(IndexError::DuplicateKey(9).to_string().contains('9'));
        assert!(IndexError::NotInitialized.to_string().contains("not been initialised"));
        assert!(IndexError::Internal("oops".into()).to_string().contains("oops"));
        assert!(IndexError::Unsupported("save_meta").to_string().contains("save_meta"));
    }
}
