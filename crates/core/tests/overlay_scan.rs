//! Property test: the overlay scan — staged entries merged newest-wins over
//! the wrapped index — must behave identically whether the staging front is
//! the single-threaded [`WriteBuffer`] or the sharded concurrent
//! [`ShardedWriteBuffer`], and both must match a reference model (a plain
//! map with staged entries overwriting stored ones).

use std::collections::BTreeMap;
use std::sync::Arc;

use lidx_core::concurrent::{ShardedWriteBuffer, ShardedWriteBufferConfig};
use lidx_core::write_buffer::{WriteBuffer, WriteBufferConfig};
use lidx_core::{
    Entry, IndexKind, IndexRead, IndexResult, IndexStats, IndexWrite, InsertBreakdown, Key, Value,
};
use lidx_storage::{Disk, DiskConfig};
use proptest::prelude::*;

/// A minimal in-memory [`lidx_core::DiskIndex`] to sit under the staging
/// fronts.
struct MapIndex {
    disk: Arc<Disk>,
    entries: BTreeMap<Key, Value>,
}

impl MapIndex {
    fn new() -> Self {
        MapIndex { disk: Disk::in_memory(DiskConfig::default()), entries: BTreeMap::new() }
    }
}

impl IndexRead for MapIndex {
    fn kind(&self) -> IndexKind {
        IndexKind::BTree
    }

    fn disk(&self) -> &Arc<Disk> {
        &self.disk
    }

    fn lookup(&self, key: Key) -> IndexResult<Option<Value>> {
        Ok(self.entries.get(&key).copied())
    }

    fn scan(&self, start: Key, count: usize, out: &mut Vec<Entry>) -> IndexResult<usize> {
        out.clear();
        out.extend(self.entries.range(start..).take(count).map(|(&k, &v)| (k, v)));
        Ok(out.len())
    }

    fn len(&self) -> u64 {
        self.entries.len() as u64
    }

    fn stats(&self) -> IndexStats {
        IndexStats::default()
    }
}

impl IndexWrite for MapIndex {
    fn bulk_load(&mut self, entries: &[Entry]) -> IndexResult<()> {
        self.entries = entries.iter().copied().collect();
        Ok(())
    }

    fn insert(&mut self, key: Key, value: Value) -> IndexResult<()> {
        self.entries.insert(key, value);
        Ok(())
    }

    fn insert_breakdown(&self) -> InsertBreakdown {
        InsertBreakdown::new()
    }
}

/// What any overlay scan must produce: staged entries overwrite stored
/// ones, then the first `count` entries with key `>= start`.
fn model_scan(
    stored: &BTreeMap<Key, Value>,
    staged: &BTreeMap<Key, Value>,
    start: Key,
    count: usize,
) -> Vec<Entry> {
    let mut merged = stored.clone();
    for (&k, &v) in staged {
        merged.insert(k, v);
    }
    merged.range(start..).take(count).map(|(&k, &v)| (k, v)).collect()
}

fn entries(map: &BTreeMap<Key, Value>) -> Vec<Entry> {
    map.iter().map(|(&k, &v)| (k, v)).collect()
}

proptest! {
    /// The same (stored, staged, scan) case runs through both staging
    /// fronts; `capacity` is drawn too, so some cases drain mid-staging and
    /// some answer purely from the overlay.
    #[test]
    fn overlay_scans_match_the_reference_model(
        stored_pairs in proptest::collection::vec((0u64..200, 0u64..1_000), 0..32),
        staged_pairs in proptest::collection::vec((0u64..200, 0u64..1_000), 0..32),
        start in 0u64..210,
        count in 0usize..48,
        capacity in prop_oneof![Just(4usize), Just(1_024usize)],
    ) {
        // Later duplicates win when collecting, matching staging semantics.
        let stored: BTreeMap<Key, Value> = stored_pairs.into_iter().collect();
        let staged: BTreeMap<Key, Value> = staged_pairs.into_iter().collect();
        let expected = model_scan(&stored, &staged, start, count);
        let stored_entries = entries(&stored);
        let staged_entries = entries(&staged);

        // Single-threaded front.
        let mut wb = WriteBuffer::new(
            MapIndex::new(),
            WriteBufferConfig { capacity, drain: capacity },
        );
        wb.bulk_load(&stored_entries).unwrap();
        for &(k, v) in &staged_entries {
            wb.insert(k, v).unwrap();
        }
        let mut got = Vec::new();
        wb.scan(start, count, &mut got).unwrap();
        prop_assert_eq!(&got, &expected, "WriteBuffer::scan diverged from the model");

        // Sharded concurrent front (same case, three key-range shards).
        let mut swb = ShardedWriteBuffer::with_boundaries(
            MapIndex::new(),
            ShardedWriteBufferConfig { capacity, drain: capacity, shards: 3 },
            vec![70, 140],
        );
        swb.bulk_load(&stored_entries).unwrap();
        swb.stage_batch(&staged_entries).unwrap();
        let mut got = Vec::new();
        swb.scan(start, count, &mut got).unwrap();
        prop_assert_eq!(&got, &expected, "ShardedWriteBuffer::scan diverged from the model");
    }
}
