//! Differential property tests: the on-disk B+-tree must behave exactly like
//! `std::collections::BTreeMap` for arbitrary bulk loads and operation
//! sequences, and it must keep working when backed by real files.

use std::collections::BTreeMap;
use std::sync::Arc;

use lidx_btree::BTreeIndex;
use lidx_core::{IndexRead, IndexWrite};
use lidx_storage::{Disk, DiskConfig, FileBackend};
use proptest::prelude::*;

#[derive(Debug, Clone)]
enum TreeOp {
    Insert(u64, u64),
    Lookup(u64),
    Scan(u64, usize),
}

fn tree_op() -> impl Strategy<Value = TreeOp> {
    prop_oneof![
        (0u64..100_000, any::<u64>()).prop_map(|(k, v)| TreeOp::Insert(k, v)),
        (0u64..110_000).prop_map(TreeOp::Lookup),
        (0u64..100_000, 1usize..300).prop_map(|(k, n)| TreeOp::Scan(k, n)),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 24, .. ProptestConfig::default() })]

    #[test]
    fn btree_matches_the_standard_library_oracle(
        bulk in proptest::collection::btree_set(0u64..100_000, 0..800),
        ops in proptest::collection::vec(tree_op(), 1..300),
        block_size_pow in 8u32..13, // 256 B .. 4 KB
    ) {
        let block_size = 1usize << block_size_pow;
        let disk = Disk::in_memory(DiskConfig::with_block_size(block_size));
        let mut tree = BTreeIndex::new(disk).unwrap();
        let bulk_entries: Vec<(u64, u64)> = bulk.iter().map(|&k| (k, k ^ 0xABCD)).collect();
        tree.bulk_load(&bulk_entries).unwrap();
        let mut oracle: BTreeMap<u64, u64> = bulk_entries.iter().copied().collect();

        let mut out = Vec::new();
        for op in ops {
            match op {
                TreeOp::Insert(k, v) => {
                    tree.insert(k, v).unwrap();
                    oracle.insert(k, v);
                }
                TreeOp::Lookup(k) => {
                    prop_assert_eq!(tree.lookup(k).unwrap(), oracle.get(&k).copied());
                }
                TreeOp::Scan(start, n) => {
                    tree.scan(start, n, &mut out).unwrap();
                    let expected: Vec<(u64, u64)> =
                        oracle.range(start..).take(n).map(|(&k, &v)| (k, v)).collect();
                    prop_assert_eq!(&out, &expected);
                }
            }
            prop_assert_eq!(tree.len(), oracle.len() as u64);
        }

        // The floor lookup used by the hybrid designs agrees with the oracle.
        for probe in [0u64, 1, 50_000, 99_999, 105_000] {
            let expected = oracle.range(..=probe).next_back().map(|(&k, &v)| (k, v));
            prop_assert_eq!(tree.lookup_floor(probe).unwrap(), expected, "floor of {}", probe);
        }
    }
}

/// The same index operations work against real files on the local
/// filesystem, not just the in-memory backend.
#[test]
fn btree_round_trips_through_real_files() {
    let dir = std::env::temp_dir().join(format!("lidx-btree-files-{}", std::process::id()));
    let backend = FileBackend::new(&dir, 4096).unwrap();
    let disk = Disk::with_backend(Box::new(backend), DiskConfig::with_block_size(4096));
    let mut tree = BTreeIndex::new(Arc::clone(&disk)).unwrap();

    let entries: Vec<(u64, u64)> = (0..50_000u64).map(|i| (i * 3, i)).collect();
    tree.bulk_load(&entries).unwrap();
    for i in 0..2_000u64 {
        tree.insert(i * 3 + 1, i).unwrap();
    }
    for &(k, v) in entries.iter().step_by(997) {
        assert_eq!(tree.lookup(k).unwrap(), Some(v));
    }
    let mut out = Vec::new();
    assert_eq!(tree.scan(0, 1_000, &mut out).unwrap(), 1_000);
    assert!(out.windows(2).all(|w| w[0].0 < w[1].0));
    assert!(disk.total_bytes() > 0);

    std::fs::remove_dir_all(&dir).ok();
}
