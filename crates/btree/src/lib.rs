//! A disk-resident B+-tree — the traditional baseline of the evaluation.
//!
//! Every node occupies exactly one block. Inner nodes store separator keys
//! and child block ids; leaf nodes store dense, sorted key-payload pairs and
//! are linked to their siblings so range scans walk the leaf level without
//! touching inner nodes again (§3 and Table 2 of the paper).
//!
//! The index meta data (root block, height, key count) is kept in memory
//! while the index is open and persisted to block 0 of the file, matching
//! the paper's assumption that "the meta block … is stored in main memory
//! when in use" (§6.1).

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

mod node;
mod tree;

pub use node::{InnerNode, LeafNode, NodeCapacity};
pub use tree::{BTreeConfig, BTreeIndex};
