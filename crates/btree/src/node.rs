//! On-disk node layouts for the B+-tree.
//!
//! Both node types occupy exactly one block:
//!
//! ```text
//! Inner:  [tag u8][pad u8][count u16][leftmost_child u32]
//!         [ (key u64, child u32) * count ]
//! Leaf:   [tag u8][pad u8][count u16][next u32][prev u32]
//!         [ (key u64, payload u64) * count ]
//! ```
//!
//! An inner node with `count` keys has `count + 1` children; child `i` covers
//! keys `< keys[i]`, the last child covers keys `>= keys[count-1]`.

use lidx_core::{Entry, IndexError, IndexResult, Key, Value};
use lidx_storage::{BlockId, BlockReader, BlockWriter, INVALID_BLOCK};

const TAG_INNER: u8 = 1;
const TAG_LEAF: u8 = 2;

const INNER_HEADER: usize = 1 + 1 + 2 + 4;
const LEAF_HEADER: usize = 1 + 1 + 2 + 4 + 4;
const INNER_ENTRY: usize = 8 + 4;
const LEAF_ENTRY: usize = 8 + 8;

/// Derived node capacities for a given block size.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct NodeCapacity {
    /// Maximum number of separator keys in an inner node.
    pub inner_keys: usize,
    /// Maximum number of key-payload pairs in a leaf node.
    pub leaf_entries: usize,
}

impl NodeCapacity {
    /// Computes the capacities for `block_size`.
    pub fn for_block_size(block_size: usize) -> Self {
        let inner_keys = (block_size - INNER_HEADER) / INNER_ENTRY;
        let leaf_entries = (block_size - LEAF_HEADER) / LEAF_ENTRY;
        assert!(inner_keys >= 2 && leaf_entries >= 2, "block size too small for B+-tree nodes");
        NodeCapacity { inner_keys, leaf_entries }
    }
}

/// An inner (routing) node.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct InnerNode {
    /// Separator keys, strictly increasing.
    pub keys: Vec<Key>,
    /// Child block ids; always `keys.len() + 1` entries once populated.
    pub children: Vec<BlockId>,
}

impl InnerNode {
    /// Index of the child that covers `key`.
    pub fn child_for(&self, key: Key) -> usize {
        // First separator strictly greater than `key` determines the child.
        self.keys.partition_point(|&k| k <= key)
    }

    /// Encodes the node into a block buffer of `block_size` bytes.
    pub fn encode(&self, block_size: usize) -> IndexResult<Vec<u8>> {
        debug_assert_eq!(self.children.len(), self.keys.len() + 1);
        let mut w = BlockWriter::new(block_size);
        w.put_u8(TAG_INNER).map_err(IndexError::from)?;
        w.put_u8(0)?;
        w.put_u16(self.keys.len() as u16)?;
        w.put_u32(self.children[0])?;
        for (i, &k) in self.keys.iter().enumerate() {
            w.put_u64(k)?;
            w.put_u32(self.children[i + 1])?;
        }
        Ok(w.finish())
    }

    /// Decodes an inner node from a block buffer.
    pub fn decode(buf: &[u8]) -> IndexResult<Self> {
        let mut r = BlockReader::new(buf);
        let tag = r.get_u8()?;
        if tag != TAG_INNER {
            return Err(IndexError::Internal(format!("expected inner node tag, found {tag}")));
        }
        r.get_u8()?;
        let count = r.get_u16()? as usize;
        let mut keys = Vec::with_capacity(count);
        let mut children = Vec::with_capacity(count + 1);
        children.push(r.get_u32()?);
        for _ in 0..count {
            keys.push(r.get_u64()?);
            children.push(r.get_u32()?);
        }
        Ok(InnerNode { keys, children })
    }
}

/// A leaf node: dense sorted entries plus sibling links.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LeafNode {
    /// Sorted key-payload pairs.
    pub entries: Vec<Entry>,
    /// Block id of the next (right) leaf, or [`INVALID_BLOCK`].
    pub next: BlockId,
    /// Block id of the previous (left) leaf, or [`INVALID_BLOCK`].
    pub prev: BlockId,
}

impl Default for LeafNode {
    fn default() -> Self {
        LeafNode { entries: Vec::new(), next: INVALID_BLOCK, prev: INVALID_BLOCK }
    }
}

impl LeafNode {
    /// Binary-searches for `key`, returning its payload if present.
    pub fn lookup(&self, key: Key) -> Option<Value> {
        self.entries.binary_search_by_key(&key, |&(k, _)| k).ok().map(|i| self.entries[i].1)
    }

    /// Inserts or overwrites `key`. Returns `true` if a new entry was added
    /// (as opposed to an existing payload being overwritten).
    pub fn upsert(&mut self, key: Key, value: Value) -> bool {
        match self.entries.binary_search_by_key(&key, |&(k, _)| k) {
            Ok(i) => {
                self.entries[i].1 = value;
                false
            }
            Err(i) => {
                self.entries.insert(i, (key, value));
                true
            }
        }
    }

    /// Splits off the upper half of the entries into a new leaf, returning
    /// the split key (first key of the new right leaf) and the new leaf.
    pub fn split(&mut self) -> (Key, LeafNode) {
        let mid = self.entries.len() / 2;
        let right_entries = self.entries.split_off(mid);
        let split_key = right_entries[0].0;
        let right = LeafNode { entries: right_entries, next: self.next, prev: INVALID_BLOCK };
        (split_key, right)
    }

    /// Encodes the leaf into a block buffer.
    pub fn encode(&self, block_size: usize) -> IndexResult<Vec<u8>> {
        let mut w = BlockWriter::new(block_size);
        w.put_u8(TAG_LEAF)?;
        w.put_u8(0)?;
        w.put_u16(self.entries.len() as u16)?;
        w.put_u32(self.next)?;
        w.put_u32(self.prev)?;
        for &(k, v) in &self.entries {
            w.put_u64(k)?;
            w.put_u64(v)?;
        }
        Ok(w.finish())
    }

    /// Decodes a leaf node from a block buffer.
    pub fn decode(buf: &[u8]) -> IndexResult<Self> {
        let mut r = BlockReader::new(buf);
        let tag = r.get_u8()?;
        if tag != TAG_LEAF {
            return Err(IndexError::Internal(format!("expected leaf node tag, found {tag}")));
        }
        r.get_u8()?;
        let count = r.get_u16()? as usize;
        let next = r.get_u32()?;
        let prev = r.get_u32()?;
        let mut entries = Vec::with_capacity(count);
        for _ in 0..count {
            let k = r.get_u64()?;
            let v = r.get_u64()?;
            entries.push((k, v));
        }
        Ok(LeafNode { entries, next, prev })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn capacities_scale_with_block_size() {
        let c4k = NodeCapacity::for_block_size(4096);
        let c16k = NodeCapacity::for_block_size(16 * 1024);
        assert!(c4k.leaf_entries >= 250 && c4k.leaf_entries <= 256);
        assert!(c4k.inner_keys >= 300);
        assert!(c16k.leaf_entries > 4 * c4k.leaf_entries - 8);
    }

    #[test]
    fn inner_node_roundtrip_and_routing() {
        let node = InnerNode { keys: vec![10, 20, 30], children: vec![100, 101, 102, 103] };
        let buf = node.encode(256).unwrap();
        let back = InnerNode::decode(&buf).unwrap();
        assert_eq!(back, node);
        assert_eq!(node.child_for(5), 0);
        assert_eq!(node.child_for(10), 1, "separator keys route to the right child");
        assert_eq!(node.child_for(19), 1);
        assert_eq!(node.child_for(20), 2);
        assert_eq!(node.child_for(1000), 3);
    }

    #[test]
    fn leaf_node_roundtrip_lookup_and_upsert() {
        let mut leaf = LeafNode::default();
        assert!(leaf.upsert(5, 6));
        assert!(leaf.upsert(1, 2));
        assert!(leaf.upsert(9, 10));
        assert!(!leaf.upsert(5, 7), "existing key is overwritten, not duplicated");
        assert_eq!(leaf.entries.iter().map(|e| e.0).collect::<Vec<_>>(), vec![1, 5, 9]);
        assert_eq!(leaf.lookup(5), Some(7));
        assert_eq!(leaf.lookup(4), None);

        leaf.next = 77;
        leaf.prev = 33;
        let buf = leaf.encode(256).unwrap();
        let back = LeafNode::decode(&buf).unwrap();
        assert_eq!(back, leaf);
    }

    #[test]
    fn leaf_split_keeps_order_and_links() {
        let mut leaf =
            LeafNode { entries: (0..10).map(|i| (i, i + 1)).collect(), next: 42, prev: 7 };
        let (split_key, right) = leaf.split();
        assert_eq!(split_key, 5);
        assert_eq!(leaf.entries.len(), 5);
        assert_eq!(right.entries.len(), 5);
        assert_eq!(right.next, 42, "right leaf inherits the old next pointer");
        assert!(leaf.entries.iter().all(|&(k, _)| k < split_key));
        assert!(right.entries.iter().all(|&(k, _)| k >= split_key));
    }

    #[test]
    fn decode_rejects_wrong_tags() {
        let leaf = LeafNode::default().encode(128).unwrap();
        assert!(InnerNode::decode(&leaf).is_err());
        let inner = InnerNode { keys: vec![1], children: vec![0, 1] }.encode(128).unwrap();
        assert!(LeafNode::decode(&inner).is_err());
    }
}
