//! The on-disk B+-tree implementation.

use std::sync::Arc;

use lidx_core::{
    index::validate_bulk_load, Entry, IndexError, IndexKind, IndexRead, IndexResult, IndexStats,
    IndexWrite, InsertBreakdown, InsertStep, Key, MetaReader, MetaWriter, Value,
};
use lidx_storage::{
    AccessClass, BlockId, BlockKind, BlockWriter, Disk, OpClass, SeqHint, INVALID_BLOCK,
};

use crate::node::{InnerNode, LeafNode, NodeCapacity};

/// Construction-time options for [`BTreeIndex`].
#[derive(Debug, Clone, Copy)]
pub struct BTreeConfig {
    /// Fraction of a node filled during bulk load (the paper's B+-tree leaves
    /// about 20 % slack, yielding ~980 k leaves for 200 M keys at 4 KB).
    pub fill_factor: f64,
}

impl Default for BTreeConfig {
    fn default() -> Self {
        BTreeConfig { fill_factor: 0.8 }
    }
}

/// A disk-resident B+-tree over `u64` keys.
pub struct BTreeIndex {
    disk: Arc<Disk>,
    config: BTreeConfig,
    capacity: NodeCapacity,
    file: u32,
    root: BlockId,
    height: u32,
    key_count: u64,
    inner_nodes: u64,
    leaf_nodes: u64,
    smo_count: u64,
    loaded: bool,
    breakdown: InsertBreakdown,
}

impl BTreeIndex {
    /// Creates an empty B+-tree on `disk` with default configuration.
    pub fn new(disk: Arc<Disk>) -> IndexResult<Self> {
        Self::with_config(disk, BTreeConfig::default())
    }

    /// Creates an empty B+-tree with an explicit configuration.
    pub fn with_config(disk: Arc<Disk>, config: BTreeConfig) -> IndexResult<Self> {
        assert!(
            config.fill_factor > 0.1 && config.fill_factor <= 1.0,
            "fill factor must be in (0.1, 1.0]"
        );
        let capacity = NodeCapacity::for_block_size(disk.block_size());
        let file = disk.create_file()?;
        // Block 0 is the meta block (root pointer); it is kept memory-resident
        // while the index is open, as the paper assumes.
        let meta = disk.allocate(file, 1)?;
        debug_assert_eq!(meta, 0);
        Ok(BTreeIndex {
            disk,
            config,
            capacity,
            file,
            root: INVALID_BLOCK,
            height: 0,
            key_count: 0,
            inner_nodes: 0,
            leaf_nodes: 0,
            smo_count: 0,
            loaded: false,
            breakdown: InsertBreakdown::new(),
        })
    }

    /// The node capacities derived from the disk's block size.
    pub fn capacity(&self) -> NodeCapacity {
        self.capacity
    }

    /// Rebuilds a tree handle over blocks already on `disk` from the bytes
    /// a previous session's [`IndexWrite::save_meta`] produced.
    pub fn load(disk: Arc<Disk>, config: BTreeConfig, meta: &[u8]) -> IndexResult<Self> {
        let mut r = MetaReader::new(meta);
        let file = r.u32()?;
        let root = r.u32()?;
        let height = r.u32()?;
        let key_count = r.u64()?;
        let inner_nodes = r.u64()?;
        let leaf_nodes = r.u64()?;
        let smo_count = r.u64()?;
        let capacity = NodeCapacity::for_block_size(disk.block_size());
        Ok(BTreeIndex {
            disk,
            config,
            capacity,
            file,
            root,
            height,
            key_count,
            inner_nodes,
            leaf_nodes,
            smo_count,
            loaded: true,
            breakdown: InsertBreakdown::new(),
        })
    }

    /// The file id holding this tree (exposed for the hybrid designs).
    pub fn file_id(&self) -> u32 {
        self.file
    }

    /// Persists the meta block (root, height, key count) to block 0.
    pub fn persist_meta(&self) -> IndexResult<()> {
        let mut w = BlockWriter::new(self.disk.block_size());
        w.put_u32(self.root)?;
        w.put_u32(self.height)?;
        w.put_u64(self.key_count)?;
        self.disk.write(self.file, 0, BlockKind::Meta, &w.finish())?;
        Ok(())
    }

    fn read_leaf(&self, block: BlockId) -> IndexResult<LeafNode> {
        let buf = self.disk.read_ref(self.file, block, BlockKind::Leaf)?;
        LeafNode::decode(&buf)
    }

    /// [`Self::read_leaf`] tagged as part of a scan stream, so the buffer
    /// pool's admission policy can keep the leaf-chain walk from flushing
    /// the point-lookup working set. The caller passes an explicit
    /// sequentiality hint derived from the leaf chain itself (`next ==
    /// block + 1`), so a concurrent reader touching other blocks between
    /// two chain steps cannot turn this scan's sequential charges into
    /// random ones.
    fn read_leaf_scan(&self, block: BlockId, hint: SeqHint) -> IndexResult<LeafNode> {
        let buf = self.disk.read_ref_hinted(
            self.file,
            block,
            BlockKind::Leaf,
            AccessClass::Scan,
            hint,
        )?;
        LeafNode::decode(&buf)
    }

    fn write_leaf(&self, block: BlockId, leaf: &LeafNode) -> IndexResult<()> {
        let buf = leaf.encode(self.disk.block_size())?;
        self.disk.write(self.file, block, BlockKind::Leaf, &buf)?;
        Ok(())
    }

    fn read_inner(&self, block: BlockId) -> IndexResult<InnerNode> {
        let buf = self.disk.read_ref(self.file, block, BlockKind::Inner)?;
        InnerNode::decode(&buf)
    }

    fn write_inner(&self, block: BlockId, node: &InnerNode) -> IndexResult<()> {
        let buf = node.encode(self.disk.block_size())?;
        self.disk.write(self.file, block, BlockKind::Inner, &buf)?;
        Ok(())
    }

    /// Descends from the root to the leaf covering `key`, returning the path
    /// of `(inner block, child index chosen)` pairs and the leaf block id.
    fn descend(&self, key: Key) -> IndexResult<(Vec<(BlockId, usize)>, BlockId)> {
        if self.root == INVALID_BLOCK {
            return Err(IndexError::NotInitialized);
        }
        let mut path = Vec::with_capacity(self.height as usize);
        let mut current = self.root;
        for _ in 1..self.height {
            let node = self.read_inner(current)?;
            let idx = node.child_for(key);
            let child = node.children[idx];
            path.push((current, idx));
            current = child;
        }
        Ok((path, current))
    }

    /// Like [`Self::descend`], but additionally returns the leaf's upper
    /// separator — the smallest routing key to the right of the descent
    /// path (`None` for the rightmost leaf). Every key strictly below the
    /// separator routes to the same leaf, so a sorted batch can group keys
    /// per leaf *without reading the leaf*, which is what lets the queued
    /// batch path fetch whole leaves as one outstanding-I/O wave.
    fn descend_bounded(&self, key: Key) -> IndexResult<(BlockId, Option<Key>)> {
        if self.root == INVALID_BLOCK {
            return Err(IndexError::NotInitialized);
        }
        let mut current = self.root;
        let mut upper = None;
        for _ in 1..self.height {
            let node = self.read_inner(current)?;
            let idx = node.child_for(key);
            if idx < node.keys.len() {
                upper = Some(node.keys[idx]);
            }
            current = node.children[idx];
        }
        Ok((current, upper))
    }

    /// The queued batch path: group the sorted probes per leaf via
    /// [`Self::descend_bounded`] (inner blocks only), then fetch all the
    /// group leaves as outstanding-I/O waves and answer each group from its
    /// decoded leaf. Answers are identical to the pinned-leaf loop; only
    /// the simulated time differs (a wave is charged its max, not its sum).
    fn lookup_batch_queued(
        &self,
        keys: &[Key],
        order: &[u32],
        out: &mut [Option<Value>],
    ) -> IndexResult<()> {
        let mut groups: Vec<(BlockId, Vec<u32>)> = Vec::new();
        let mut bound: Option<Key> = None;
        for &i in order {
            let key = keys[i as usize];
            let in_current = !groups.is_empty() && bound.is_none_or(|b| key < b);
            if in_current {
                groups.last_mut().expect("group exists").1.push(i);
            } else {
                let (leaf_block, upper) = self.descend_bounded(key)?;
                bound = upper;
                match groups.last_mut() {
                    // A gap key can re-route to the group's own leaf.
                    Some((block, idxs)) if *block == leaf_block => idxs.push(i),
                    _ => groups.push((leaf_block, vec![i])),
                }
            }
        }
        let mut q = self.disk.read_queue();
        for &(block, _) in &groups {
            q.submit(self.file, block, BlockKind::Leaf, AccessClass::Point)?;
        }
        let done = q.complete()?;
        debug_assert_eq!(done.len(), groups.len());
        for ((_, idxs), c) in groups.iter().zip(done) {
            let leaf = LeafNode::decode(&c.frame)?;
            for &i in idxs {
                out[i as usize] = leaf.lookup(keys[i as usize]);
            }
        }
        Ok(())
    }

    /// Finds the entry with the greatest stored key `<= key` (a "floor"
    /// lookup). Used by structures that index range boundaries, e.g. the
    /// hybrid designs of §6.1.2 which map each leaf page's boundary key to a
    /// page address.
    pub fn lookup_floor(&self, key: Key) -> IndexResult<Option<Entry>> {
        let (_, leaf_block) = self.descend(key)?;
        let leaf = self.read_leaf(leaf_block)?;
        let pos = leaf.entries.partition_point(|&(k, _)| k <= key);
        if pos > 0 {
            return Ok(Some(leaf.entries[pos - 1]));
        }
        // The floor may live in the previous leaf if `key` is smaller than
        // every key of this leaf (possible when `key` precedes the whole
        // subtree's range).
        if leaf.prev != INVALID_BLOCK {
            let prev = self.read_leaf(leaf.prev)?;
            if let Some(&e) = prev.entries.last() {
                return Ok(Some(e));
            }
        }
        Ok(None)
    }

    /// Builds the leaf level during bulk load, returning `(min_key, block)`
    /// pairs for the next level up.
    fn bulk_load_leaves(&mut self, entries: &[Entry]) -> IndexResult<Vec<(Key, BlockId)>> {
        let per_leaf = ((self.capacity.leaf_entries as f64 * self.config.fill_factor) as usize)
            .clamp(1, self.capacity.leaf_entries);
        let leaf_count = entries.len().div_ceil(per_leaf).max(1);
        let first_block = self.disk.allocate(self.file, leaf_count as u32)?;
        let mut level = Vec::with_capacity(leaf_count);
        for (i, chunk) in entries.chunks(per_leaf).enumerate() {
            let block = first_block + i as u32;
            let next = if i + 1 < leaf_count { block + 1 } else { INVALID_BLOCK };
            let prev = if i > 0 { block - 1 } else { INVALID_BLOCK };
            let leaf = LeafNode { entries: chunk.to_vec(), next, prev };
            self.write_leaf(block, &leaf)?;
            level.push((chunk[0].0, block));
        }
        if entries.is_empty() {
            // A single empty leaf keeps every operation well-defined.
            let leaf = LeafNode::default();
            self.write_leaf(first_block, &leaf)?;
            level.push((0, first_block));
        }
        self.leaf_nodes = level.len() as u64;
        Ok(level)
    }

    /// Builds one inner level over `children`, returning the next level up.
    fn bulk_load_inner_level(
        &mut self,
        children: &[(Key, BlockId)],
    ) -> IndexResult<Vec<(Key, BlockId)>> {
        let per_node = ((self.capacity.inner_keys as f64 * self.config.fill_factor) as usize)
            .clamp(2, self.capacity.inner_keys);
        // Each inner node holds up to `per_node` keys, i.e. `per_node + 1` children.
        let node_count = children.len().div_ceil(per_node + 1).max(1);
        let first_block = self.disk.allocate(self.file, node_count as u32)?;
        let mut level = Vec::with_capacity(node_count);
        for (i, chunk) in children.chunks(per_node + 1).enumerate() {
            let block = first_block + i as u32;
            let node = InnerNode {
                keys: chunk[1..].iter().map(|&(k, _)| k).collect(),
                children: chunk.iter().map(|&(_, b)| b).collect(),
            };
            self.write_inner(block, &node)?;
            level.push((chunk[0].0, block));
        }
        self.inner_nodes += level.len() as u64;
        Ok(level)
    }

    /// Handles a leaf split during insert: writes both halves, then inserts
    /// the separator into the parent chain (splitting upward as necessary).
    fn split_leaf_and_propagate(
        &mut self,
        path: &[(BlockId, usize)],
        leaf_block: BlockId,
        mut leaf: LeafNode,
    ) -> IndexResult<()> {
        self.smo_count += 1;
        // One span covers the leaf split and any upward inner-node splits:
        // the cascade is a single pause from the caller's point of view.
        let telemetry = Arc::clone(&self.disk);
        let _span = telemetry.telemetry().span(OpClass::Smo);
        telemetry.telemetry().add(OpClass::Smo, 1);
        let (split_key, mut right) = leaf.split();
        let right_block = self.disk.allocate(self.file, 1)?;
        right.prev = leaf_block;
        leaf.next = right_block;
        self.write_leaf(leaf_block, &leaf)?;
        self.write_leaf(right_block, &right)?;
        self.leaf_nodes += 1;
        self.insert_into_parent(path, split_key, right_block)
    }

    /// Inserts `(key, child)` into the lowest node of `path`, splitting inner
    /// nodes upward as needed.
    fn insert_into_parent(
        &mut self,
        path: &[(BlockId, usize)],
        key: Key,
        child: BlockId,
    ) -> IndexResult<()> {
        let mut key = key;
        let mut child = child;
        for depth in (0..path.len()).rev() {
            let (block, _) = path[depth];
            let mut node = self.read_inner(block)?;
            let pos = node.keys.partition_point(|&k| k <= key);
            node.keys.insert(pos, key);
            node.children.insert(pos + 1, child);
            if node.keys.len() <= self.capacity.inner_keys {
                self.write_inner(block, &node)?;
                return Ok(());
            }
            // Split the inner node.
            self.smo_count += 1;
            let mid = node.keys.len() / 2;
            let up_key = node.keys[mid];
            let right = InnerNode {
                keys: node.keys.split_off(mid + 1),
                children: node.children.split_off(mid + 1),
            };
            node.keys.pop(); // `up_key` moves up rather than staying in either half
            let right_block = self.disk.allocate(self.file, 1)?;
            self.write_inner(block, &node)?;
            self.write_inner(right_block, &right)?;
            self.inner_nodes += 1;
            key = up_key;
            child = right_block;
        }
        // The root itself split: create a new root.
        let new_root_block = self.disk.allocate(self.file, 1)?;
        let new_root = InnerNode { keys: vec![key], children: vec![self.root, child] };
        self.write_inner(new_root_block, &new_root)?;
        self.inner_nodes += 1;
        self.root = new_root_block;
        self.height += 1;
        Ok(())
    }
}

impl IndexRead for BTreeIndex {
    fn kind(&self) -> IndexKind {
        IndexKind::BTree
    }

    fn disk(&self) -> &Arc<Disk> {
        &self.disk
    }

    fn lookup(&self, key: Key) -> IndexResult<Option<Value>> {
        let (_, leaf_block) = self.descend(key)?;
        let leaf = self.read_leaf(leaf_block)?;
        Ok(leaf.lookup(key))
    }

    /// Batched lookups sort the probe keys and walk the tree once per *run*
    /// of keys landing in the same leaf: the shared root-to-leaf path and the
    /// leaf decode are paid once per run instead of once per key.
    fn lookup_batch(&self, keys: &[Key], out: &mut Vec<Option<Value>>) -> IndexResult<()> {
        out.clear();
        out.resize(keys.len(), None);
        if keys.is_empty() {
            return Ok(());
        }
        let mut order: Vec<u32> = (0..keys.len() as u32).collect();
        order.sort_unstable_by_key(|&i| keys[i as usize]);
        if self.disk.queue_depth() > 1 {
            return self.lookup_batch_queued(keys, &order, out);
        }
        let mut current: Option<(BlockId, LeafNode)> = None;
        for &i in &order {
            let key = keys[i as usize];
            // A sorted probe key still belongs to the pinned leaf as long as
            // it does not exceed the leaf's last stored key (leaves cover
            // contiguous, disjoint key ranges). Keys in the gap between two
            // leaves re-descend, which routes them to a leaf that proves
            // their absence just as a sequential lookup would.
            let in_current = current
                .as_ref()
                .is_some_and(|(_, leaf)| leaf.entries.last().is_some_and(|&(k, _)| key <= k));
            if !in_current {
                let (_, leaf_block) = self.descend(key)?;
                if current.as_ref().map(|(b, _)| *b) != Some(leaf_block) {
                    current = Some((leaf_block, self.read_leaf(leaf_block)?));
                }
            }
            out[i as usize] = current.as_ref().expect("leaf pinned").1.lookup(key);
        }
        Ok(())
    }

    fn scan(&self, start: Key, count: usize, out: &mut Vec<Entry>) -> IndexResult<usize> {
        out.clear();
        if count == 0 {
            return Ok(0);
        }
        let (_, leaf_block) = self.descend(start)?;
        let mut block = leaf_block;
        let mut hint = SeqHint::Auto;
        loop {
            let leaf = self.read_leaf_scan(block, hint)?;
            let from = leaf.entries.partition_point(|&(k, _)| k < start);
            for &e in &leaf.entries[from..] {
                out.push(e);
                if out.len() == count {
                    return Ok(out.len());
                }
            }
            if leaf.next == INVALID_BLOCK {
                return Ok(out.len());
            }
            // The chain itself knows whether the next hop is physically
            // contiguous — no need to guess from the shared last-access
            // word.
            hint = if leaf.next == block + 1 { SeqHint::Sequential } else { SeqHint::Random };
            block = leaf.next;
        }
    }

    /// Batched scans execute the ranges in ascending start-key order (the
    /// results stay positional): adjacent ranges then walk the leaf chain as
    /// one mostly-forward block stream, which the device cost model prices
    /// as sequential reads and the reuse slot / buffer pool serve without
    /// re-fetching a shared boundary leaf.
    fn scan_batch(&self, ranges: &[(Key, usize)], out: &mut Vec<Vec<Entry>>) -> IndexResult<()> {
        out.clear();
        out.resize_with(ranges.len(), Vec::new);
        let mut order: Vec<u32> = (0..ranges.len() as u32).collect();
        order.sort_unstable_by_key(|&i| ranges[i as usize].0);
        for &i in &order {
            let (start, count) = ranges[i as usize];
            self.scan(start, count, &mut out[i as usize])?;
        }
        Ok(())
    }

    fn len(&self) -> u64 {
        self.key_count
    }

    fn stats(&self) -> IndexStats {
        IndexStats {
            keys: self.key_count,
            height: self.height,
            inner_nodes: self.inner_nodes,
            leaf_nodes: self.leaf_nodes,
            smo_count: self.smo_count,
        }
    }
}

impl IndexWrite for BTreeIndex {
    fn bulk_load(&mut self, entries: &[Entry]) -> IndexResult<()> {
        if self.loaded {
            return Err(IndexError::AlreadyLoaded);
        }
        validate_bulk_load(entries)?;
        let mut level = self.bulk_load_leaves(entries)?;
        self.height = 1;
        while level.len() > 1 {
            level = self.bulk_load_inner_level(&level)?;
            self.height += 1;
        }
        self.root = level[0].1;
        self.key_count = entries.len() as u64;
        self.loaded = true;
        self.persist_meta()?;
        Ok(())
    }

    fn insert(&mut self, key: Key, value: Value) -> IndexResult<()> {
        let before = self.disk.snapshot();
        let (path, leaf_block) = self.descend(key)?;
        let mut leaf = self.read_leaf(leaf_block)?;
        let after_search = self.disk.snapshot();
        self.breakdown.add(InsertStep::Search, &after_search.since(&before));

        let added = leaf.upsert(key, value);
        if added {
            self.key_count += 1;
        }
        if leaf.entries.len() <= self.capacity.leaf_entries {
            self.write_leaf(leaf_block, &leaf)?;
            let after_insert = self.disk.snapshot();
            self.breakdown.add(InsertStep::Insert, &after_insert.since(&after_search));
        } else {
            self.split_leaf_and_propagate(&path, leaf_block, leaf)?;
            let after_smo = self.disk.snapshot();
            self.breakdown.add(InsertStep::Smo, &after_smo.since(&after_search));
        }
        self.breakdown.finish_insert();
        Ok(())
    }

    /// Batched inserts sort the entries and descend the tree once per *run*
    /// of keys landing in the same leaf: the shared root-to-leaf path, the
    /// leaf decode and the leaf write-back are paid once per run instead of
    /// once per key, and a run that overfills its leaf triggers one split
    /// before the remainder re-descends against the updated tree.
    fn insert_batch(&mut self, entries: &[Entry]) -> IndexResult<()> {
        if entries.is_empty() {
            return Ok(());
        }
        if self.root == INVALID_BLOCK {
            return Err(IndexError::NotInitialized);
        }
        // A stable sort keeps duplicate keys in slice order, so the last
        // occurrence wins — exactly like the sequential loop.
        let mut order: Vec<u32> = (0..entries.len() as u32).collect();
        order.sort_by_key(|&i| entries[i as usize].0);
        let mut next = 0usize;
        while next < order.len() {
            let before = self.disk.snapshot();
            let (path, leaf_block) = self.descend(entries[order[next] as usize].0)?;
            let mut leaf = self.read_leaf(leaf_block)?;
            let after_search = self.disk.snapshot();
            self.breakdown.add(InsertStep::Search, &after_search.since(&before));

            // Apply the run: the first key always lands here (the descent is
            // authoritative); every following sorted key stays in this leaf
            // as long as it does not exceed the leaf's current last key
            // (leaves cover contiguous disjoint ranges, so such a key cannot
            // belong anywhere else). Stop once the leaf holds one entry too
            // many — that overflow needs a split before the rest continue.
            let mut consumed = 0usize;
            while next + consumed < order.len() {
                if leaf.entries.len() > self.capacity.leaf_entries {
                    break;
                }
                let (key, value) = entries[order[next + consumed] as usize];
                // The rightmost leaf covers every key from its separator to
                // infinity, so a sorted append run stays pinned to it.
                let in_leaf = consumed == 0
                    || leaf.entries.last().is_some_and(|&(last, _)| key <= last)
                    || leaf.next == INVALID_BLOCK;
                if !in_leaf {
                    break;
                }
                if leaf.upsert(key, value) {
                    self.key_count += 1;
                }
                self.breakdown.finish_insert();
                consumed += 1;
            }
            if leaf.entries.len() <= self.capacity.leaf_entries {
                self.write_leaf(leaf_block, &leaf)?;
                let after_insert = self.disk.snapshot();
                self.breakdown.add(InsertStep::Insert, &after_insert.since(&after_search));
            } else {
                self.split_leaf_and_propagate(&path, leaf_block, leaf)?;
                let after_smo = self.disk.snapshot();
                self.breakdown.add(InsertStep::Smo, &after_smo.since(&after_search));
            }
            next += consumed;
        }
        Ok(())
    }

    fn insert_breakdown(&self) -> InsertBreakdown {
        self.breakdown
    }

    fn save_meta(&mut self) -> IndexResult<Vec<u8>> {
        self.persist_meta()?;
        let mut w = MetaWriter::new();
        w.u32(self.file)
            .u32(self.root)
            .u32(self.height)
            .u64(self.key_count)
            .u64(self.inner_nodes)
            .u64(self.leaf_nodes)
            .u64(self.smo_count);
        Ok(w.finish())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lidx_core::payload_for;
    use lidx_storage::DiskConfig;

    fn make_tree(block_size: usize) -> BTreeIndex {
        let disk = Disk::in_memory(DiskConfig::with_block_size(block_size));
        BTreeIndex::new(disk).unwrap()
    }

    fn entries(n: u64, stride: u64) -> Vec<Entry> {
        (0..n).map(|i| (i * stride + 1, payload_for(i * stride + 1))).collect()
    }

    #[test]
    fn bulk_load_and_lookup_every_key() {
        let mut t = make_tree(512);
        let data = entries(10_000, 3);
        t.bulk_load(&data).unwrap();
        assert_eq!(t.len(), 10_000);
        assert!(t.stats().height >= 2);
        for &(k, v) in data.iter().step_by(97) {
            assert_eq!(t.lookup(k).unwrap(), Some(v));
        }
        assert_eq!(t.lookup(0).unwrap(), None);
        assert_eq!(t.lookup(2).unwrap(), None, "keys between stored keys are absent");
        assert_eq!(t.lookup(u64::MAX).unwrap(), None);
    }

    #[test]
    fn bulk_load_rejects_disorder_and_double_load() {
        let mut t = make_tree(512);
        assert!(matches!(t.bulk_load(&[(5, 1), (4, 1)]), Err(IndexError::UnsortedBulkLoad { .. })));
        t.bulk_load(&entries(10, 1)).unwrap();
        assert!(matches!(t.bulk_load(&entries(10, 1)), Err(IndexError::AlreadyLoaded)));
    }

    #[test]
    fn operations_before_bulk_load_fail() {
        let mut t = make_tree(512);
        assert!(matches!(t.lookup(1), Err(IndexError::NotInitialized)));
        assert!(matches!(t.insert(1, 2), Err(IndexError::NotInitialized)));
    }

    #[test]
    fn inserts_split_leaves_and_grow_the_tree() {
        let mut t = make_tree(256);
        t.bulk_load(&entries(100, 10)).unwrap();
        let h0 = t.stats().height;
        // Insert many keys into a narrow range to force repeated splits.
        for i in 0..2_000u64 {
            t.insert(i * 7 + 3, i).unwrap();
        }
        assert!(t.stats().smo_count > 0, "splits must have happened");
        assert!(t.stats().height >= h0);
        // 14 of the inserted keys (i*7+3 with i ≡ 4 mod 10, i <= 134) collide
        // with bulk-loaded keys and are upserts rather than new entries.
        assert_eq!(t.len(), 100 + 2_000 - 14);
        for i in (0..2_000u64).step_by(131) {
            assert_eq!(t.lookup(i * 7 + 3).unwrap(), Some(i));
        }
        // Bulk-loaded keys survive the splits (skipping the ones the insert
        // phase legitimately overwrote).
        for i in (0..100u64).step_by(13) {
            let key = i * 10 + 1;
            if key >= 3 && (key - 3) % 7 == 0 {
                continue;
            }
            assert_eq!(t.lookup(key).unwrap(), Some(payload_for(key)));
        }
    }

    #[test]
    fn upsert_overwrites_without_growing() {
        let mut t = make_tree(512);
        t.bulk_load(&entries(1_000, 2)).unwrap();
        let before = t.len();
        t.insert(1, 999).unwrap();
        assert_eq!(t.len(), before);
        assert_eq!(t.lookup(1).unwrap(), Some(999));
    }

    #[test]
    fn scan_crosses_leaf_boundaries_in_order() {
        let mut t = make_tree(256);
        let data = entries(5_000, 2);
        t.bulk_load(&data).unwrap();
        let mut out = Vec::new();
        let n = t.scan(data[1_000].0, 500, &mut out).unwrap();
        assert_eq!(n, 500);
        assert_eq!(out.len(), 500);
        assert_eq!(out[0], data[1_000]);
        assert_eq!(out[499], data[1_499]);
        assert!(out.windows(2).all(|w| w[0].0 < w[1].0));

        // Scan starting between keys begins at the next stored key.
        let n = t.scan(data[10].0 + 1, 3, &mut out).unwrap();
        assert_eq!(n, 3);
        assert_eq!(out[0], data[11]);

        // Scan hitting the end of the index returns fewer entries.
        let n = t.scan(data[data.len() - 2].0, 100, &mut out).unwrap();
        assert_eq!(n, 2);
    }

    #[test]
    fn scan_on_inserted_keys_sees_them() {
        let mut t = make_tree(256);
        t.bulk_load(&entries(100, 100)).unwrap();
        for i in 0..50u64 {
            t.insert(1_000 + i, i).unwrap();
        }
        let mut out = Vec::new();
        t.scan(1_000, 50, &mut out).unwrap();
        assert_eq!(out.len(), 50);
        assert!(out.iter().enumerate().all(|(i, &(k, v))| k == 1_000 + i as u64 && v == i as u64));
    }

    #[test]
    fn height_matches_paper_shape_for_4kb_blocks() {
        // With 4 KB blocks and 0.8 fill the tree over 200k keys must have
        // ~1000 leaves and height 3 (leaf + two inner levels), mirroring the
        // paper's 4-level tree over 200M keys.
        let mut t = make_tree(4096);
        let data = entries(200_000, 5);
        t.bulk_load(&data).unwrap();
        let s = t.stats();
        assert!(s.leaf_nodes > 900 && s.leaf_nodes < 1100, "got {} leaves", s.leaf_nodes);
        assert_eq!(s.height, 3);
        // Every lookup fetches exactly `height` blocks once the meta block is
        // memory-resident.
        let before = t.disk().snapshot();
        t.lookup(data[12_345].0).unwrap();
        let delta = t.disk().snapshot().since(&before);
        assert_eq!(delta.reads(), 3);
        assert_eq!(delta.reads_of(BlockKind::Inner), 2);
        assert_eq!(delta.reads_of(BlockKind::Leaf), 1);
    }

    #[test]
    fn insert_breakdown_attributes_steps() {
        let mut t = make_tree(256);
        t.bulk_load(&entries(2_000, 4)).unwrap();
        for i in 0..500u64 {
            t.insert(i * 4 + 2, i).unwrap();
        }
        let b = t.insert_breakdown();
        assert_eq!(b.inserts, 500);
        assert!(b.reads(InsertStep::Search) >= 500, "every insert descends the tree");
        assert!(b.writes(InsertStep::Insert) + b.writes(InsertStep::Smo) >= 500);
    }

    #[test]
    fn empty_bulk_load_is_usable() {
        let mut t = make_tree(512);
        t.bulk_load(&[]).unwrap();
        assert_eq!(t.len(), 0);
        assert_eq!(t.lookup(5).unwrap(), None);
        t.insert(5, 6).unwrap();
        assert_eq!(t.lookup(5).unwrap(), Some(6));
        let mut out = Vec::new();
        assert_eq!(t.scan(0, 10, &mut out).unwrap(), 1);
    }

    #[test]
    fn scan_boundary_cases_match_oracle() {
        // Small leaves (256-byte blocks) so scanning from every stored key
        // exercises starts at exact leaf-block boundaries.
        let mut t = make_tree(256);
        let data = entries(600, 3);
        t.bulk_load(&data).unwrap();
        let mut out = Vec::new();

        // count == 0 returns nothing and leaves `out` empty.
        out.push((1, 1));
        assert_eq!(t.scan(data[0].0, 0, &mut out).unwrap(), 0);
        assert!(out.is_empty());

        // Starts above the maximum key return nothing.
        let max_key = data.last().unwrap().0;
        for start in [max_key + 1, u64::MAX] {
            assert_eq!(t.scan(start, 10, &mut out).unwrap(), 0, "scan from {start}");
            assert!(out.is_empty());
        }

        // Scanning from every stored key (covering every leaf boundary)
        // matches the oracle slice.
        for (i, &(k, _)) in data.iter().enumerate() {
            let n = t.scan(k, 7, &mut out).unwrap();
            let expected: Vec<Entry> = data[i..].iter().take(7).copied().collect();
            assert_eq!(n, expected.len(), "scan length from key {k}");
            assert_eq!(out, expected, "scan contents from key {k}");
        }
    }

    #[test]
    fn lookup_batch_matches_sequential_and_amortises_descents() {
        let mut t = make_tree(512);
        let data = entries(10_000, 3);
        t.bulk_load(&data).unwrap();
        // Unsorted probes mixing hits, misses, duplicates and extremes.
        let probes: Vec<Key> = data
            .iter()
            .step_by(37)
            .map(|&(k, _)| k)
            .chain([0, 2, u64::MAX, data[500].0, data[500].0, data[500].0 + 1])
            .rev()
            .collect();
        let mut batched = Vec::new();
        t.lookup_batch(&probes, &mut batched).unwrap();
        assert_eq!(batched.len(), probes.len());
        for (i, &p) in probes.iter().enumerate() {
            assert_eq!(batched[i], t.lookup(p).unwrap(), "probe {p}");
        }

        // A batch of co-located keys descends once per leaf run, so it must
        // fetch strictly fewer blocks than the same lookups done one by one.
        let run: Vec<Key> = data[..256].iter().map(|&(k, _)| k).collect();
        t.disk().stats().reset();
        t.disk().reset_access_state();
        t.lookup_batch(&run, &mut batched).unwrap();
        let batch_reads = t.disk().stats().reads();
        t.disk().stats().reset();
        t.disk().reset_access_state();
        for &k in &run {
            t.lookup(k).unwrap();
        }
        let seq_reads = t.disk().stats().reads();
        assert!(
            batch_reads * 2 < seq_reads,
            "batched reads ({batch_reads}) must amortise sequential reads ({seq_reads})"
        );

        // Empty batches are a no-op.
        t.lookup_batch(&[], &mut batched).unwrap();
        assert!(batched.is_empty());
    }

    #[test]
    fn insert_batch_matches_sequential_and_amortises_writes() {
        let data = entries(2_000, 4);
        // Unsorted batch mixing fresh keys, overwrites of bulk keys and
        // in-batch duplicates (the later duplicate must win).
        // After the reverse, slice order is (39, 2) then (39, 1): the later
        // occurrence (39, 1) must win, exactly as a sequential loop would.
        let mut batch: Vec<Entry> = (0..900u64).map(|i| (i * 9 + 2, i)).collect();
        batch.push((data[100].0, 111));
        batch.push((39, 1));
        batch.push((39, 2));
        batch.reverse();

        let mut batched = make_tree(256);
        batched.bulk_load(&data).unwrap();
        batched.insert_batch(&batch).unwrap();
        let mut sequential = make_tree(256);
        sequential.bulk_load(&data).unwrap();
        for &(k, v) in &batch {
            sequential.insert(k, v).unwrap();
        }
        assert_eq!(batched.len(), sequential.len());
        assert_eq!(batched.lookup(39).unwrap(), Some(1), "later duplicate wins");
        assert_eq!(batched.lookup(data[100].0).unwrap(), Some(111));
        let mut b_scan = Vec::new();
        let mut s_scan = Vec::new();
        batched.scan(0, usize::MAX / 2, &mut b_scan).unwrap();
        sequential.scan(0, usize::MAX / 2, &mut s_scan).unwrap();
        assert_eq!(b_scan, s_scan, "batched and sequential content must be identical");
        assert_eq!(batched.insert_breakdown().inserts, batch.len() as u64);

        // A dense sorted batch descends and writes once per leaf run, so it
        // must do strictly less I/O than the per-key loop.
        let run: Vec<Entry> = (0..512u64).map(|i| (i * 2 + 100_001, i)).collect();
        let mut a = make_tree(256);
        a.bulk_load(&data).unwrap();
        a.disk().stats().reset();
        a.disk().reset_access_state();
        a.insert_batch(&run).unwrap();
        let batch_io = a.disk().stats().reads() + a.disk().stats().writes();
        let mut b = make_tree(256);
        b.bulk_load(&data).unwrap();
        b.disk().stats().reset();
        b.disk().reset_access_state();
        for &(k, v) in &run {
            b.insert(k, v).unwrap();
        }
        let seq_io = b.disk().stats().reads() + b.disk().stats().writes();
        assert!(
            batch_io * 2 < seq_io,
            "batched insert I/O ({batch_io}) must amortise sequential I/O ({seq_io})"
        );

        // Degenerate batches.
        a.insert_batch(&[]).unwrap();
        let mut empty = make_tree(256);
        assert!(matches!(empty.insert_batch(&[(1, 1)]), Err(IndexError::NotInitialized)));
    }

    #[test]
    fn queued_lookup_batch_matches_depth_one_answers_and_overlaps_io() {
        let data = entries(10_000, 3);
        let probes: Vec<Key> = data
            .iter()
            .step_by(17)
            .map(|&(k, _)| k)
            .chain([0, 2, u64::MAX, data[500].0, data[500].0 + 1])
            .rev()
            .collect();

        // A buffer pool keeps the inner levels resident (as any real
        // deployment would), so the comparison isolates the leaf fetches —
        // the part the outstanding-I/O engine overlaps.
        let model = lidx_storage::DeviceModel::ssd();
        let config = || {
            DiskConfig::with_block_size(512).device(model).buffer_blocks(64).reuse_last_block(true)
        };
        let mut expected = Vec::new();
        let mut t1 = BTreeIndex::new(Disk::in_memory(config())).unwrap();
        t1.bulk_load(&data).unwrap();
        t1.lookup_batch(&probes, &mut expected).unwrap();
        let sync_ns = {
            t1.disk().stats().reset();
            t1.disk().reset_access_state();
            t1.disk().clear_buffer();
            t1.lookup_batch(&probes, &mut expected).unwrap();
            t1.disk().stats().device_ns()
        };

        let disk = Disk::in_memory(config().queue_depth(8));
        let mut t8 = BTreeIndex::new(disk).unwrap();
        t8.bulk_load(&data).unwrap();
        let mut got = Vec::new();
        t8.lookup_batch(&probes, &mut got).unwrap();
        assert_eq!(got, expected, "queue depth must never change the answers");
        t8.disk().stats().reset();
        t8.disk().reset_access_state();
        t8.disk().clear_buffer();
        t8.lookup_batch(&probes, &mut got).unwrap();
        let queued_ns = t8.disk().stats().device_ns();
        assert!(
            queued_ns * 2 < sync_ns,
            "depth-8 leaf waves ({queued_ns} ns) must overlap the depth-1 cost ({sync_ns} ns)"
        );
        assert!(t8.disk().stats().overlap_saved_ns() > 0);
        assert!(t8.disk().stats().max_inflight() > 1);
    }

    #[test]
    fn concurrent_lookups_agree_with_serial_answers() {
        let mut t = make_tree(512);
        let data = entries(20_000, 3);
        t.bulk_load(&data).unwrap();
        let t = &t;
        let data = &data;
        std::thread::scope(|s| {
            for tid in 0..4usize {
                s.spawn(move || {
                    let mut out = Vec::new();
                    for &(k, v) in data.iter().skip(tid * 31).step_by(127) {
                        assert_eq!(t.lookup(k).unwrap(), Some(v));
                        assert_eq!(t.lookup(k + 1).unwrap(), None);
                        let n = t.scan(k, 5, &mut out).unwrap();
                        assert!(n >= 1 && out[0] == (k, v));
                    }
                });
            }
        });
    }

    #[test]
    fn storage_blocks_grow_with_splits() {
        let mut t = make_tree(256);
        t.bulk_load(&entries(1_000, 2)).unwrap();
        let before = t.storage_blocks();
        // Bulk-loaded keys are odd (2i + 1); inserting even keys doubles the
        // data volume and must allocate new leaf blocks via splits.
        for i in 0..1_000u64 {
            t.insert(i * 2 + 2, i).unwrap();
        }
        assert!(t.storage_blocks() > before);
    }
}
