//! Concurrent, mergeable latency telemetry for the evaluation harness.
//!
//! The paper's tail-latency metric (Fig. 12, p99) was originally reproduced
//! by buffering every sample in a `Vec` and sorting — workable
//! single-threaded, unusable from the multi-threaded `mixed_workload` /
//! `sharded_serving` phases. This crate replaces that recorder on the
//! concurrent paths with three pieces:
//!
//! * [`Histogram`] — a log-bucketed, HDR-style histogram with **constant
//!   memory** (a fixed array of atomic bucket counters, no per-sample
//!   allocation), **lock-free recording** (every record is a handful of
//!   relaxed atomic adds), **exact merge** (bucket-wise addition loses
//!   nothing) and percentile queries with a relative error bounded by
//!   [`RELATIVE_ERROR_BOUND`] (1/32 ≈ 3.2 %).
//! * [`TelemetryRegistry`] — one histogram plus one free-form counter per
//!   [`OpClass`] (lookup / scan / insert / drain / SMO / WAL sync /
//!   checkpoint / lock stalls / wave / rebalance / recovery), shared behind
//!   `&self` so every layer of the stack records into the same registry.
//! * [`Span`] — an RAII wall-clock timer: `registry.span(OpClass::Drain)`
//!   records the elapsed nanoseconds into the drain histogram when dropped,
//!   which is how pause points (drains, SMOs, WAL syncs, shard splits)
//!   become attributable in a p999 spike.
//!
//! # Bucket scheme
//!
//! Values 0..31 get exact unit buckets. Above that, each power-of-two
//! octave `[2^e, 2^{e+1})` is split into 32 equal sub-buckets, so a bucket
//! at value `v` is at most `v/32` wide. Percentile queries return the
//! bucket's inclusive upper bound (clamped to the exact recorded maximum),
//! which therefore never *under*-reports and over-reports by at most
//! `value/32`. The whole `u64` range fits in [`BUCKET_COUNT`] = 1920
//! buckets — 15 KiB of counters per histogram, independent of how many
//! samples are recorded.

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Instant;

/// Sub-bucket resolution: each octave is split into `2^SUB_BITS` buckets.
const SUB_BITS: u32 = 5;

/// Sub-buckets per octave (32).
const SUB: u64 = 1 << SUB_BITS;

/// Total buckets: 32 exact unit buckets for 0..31, then 32 sub-buckets for
/// each of the octaves `[2^5, 2^6) .. [2^63, 2^64)`.
pub const BUCKET_COUNT: usize = (SUB as usize) * (64 - SUB_BITS as usize + 1);

/// Worst-case relative over-report of a percentile query: the width of a
/// bucket divided by its lower bound, `1/32`.
pub const RELATIVE_ERROR_BOUND: f64 = 1.0 / SUB as f64;

/// Bucket index of `v` (log-linear: exact below [`SUB`], then 32
/// sub-buckets per octave).
#[inline]
fn bucket_index(v: u64) -> usize {
    if v < SUB {
        v as usize
    } else {
        let exp = 63 - v.leading_zeros(); // >= SUB_BITS
        let shift = exp - SUB_BITS;
        let mantissa = (v >> shift) - SUB; // in [0, SUB)
        ((shift as usize + 1) << SUB_BITS) + mantissa as usize
    }
}

/// Inclusive upper bound of bucket `idx` — the value a percentile query
/// reports for samples that landed in it.
#[inline]
fn bucket_high(idx: usize) -> u64 {
    if idx < SUB as usize {
        idx as u64
    } else {
        let shift = (idx >> SUB_BITS) as u32 - 1;
        let mantissa = (idx as u64) & (SUB - 1);
        // ((SUB + mantissa + 1) << shift) - 1, in u128 because the topmost
        // bucket's exclusive bound is 2^64.
        ((((SUB + mantissa + 1) as u128) << shift) - 1) as u64
    }
}

/// A log-bucketed histogram of `u64` samples (nanoseconds, by convention).
///
/// Recording is lock-free (`&self`, relaxed atomics) and allocation-free;
/// the struct's size is a compile-time constant regardless of how many
/// samples are recorded. Two histograms merge exactly: bucket counts add,
/// and every percentile of the merged histogram is what a single histogram
/// fed both sample streams would report.
///
/// Queries made while other threads are still recording see a best-effort
/// snapshot (counters are loaded individually); the harness queries after
/// joining its workers, where the view is exact.
pub struct Histogram {
    buckets: [AtomicU64; BUCKET_COUNT],
    count: AtomicU64,
    sum: AtomicU64,
    max: AtomicU64,
}

impl Default for Histogram {
    fn default() -> Self {
        Self::new()
    }
}

impl Histogram {
    /// Creates an empty histogram.
    pub fn new() -> Self {
        Histogram {
            buckets: std::array::from_fn(|_| AtomicU64::new(0)),
            count: AtomicU64::new(0),
            sum: AtomicU64::new(0),
            max: AtomicU64::new(0),
        }
    }

    /// Records one sample. Lock-free and allocation-free.
    pub fn record(&self, v: u64) {
        self.buckets[bucket_index(v)].fetch_add(1, Ordering::Relaxed);
        self.count.fetch_add(1, Ordering::Relaxed);
        self.sum.fetch_add(v, Ordering::Relaxed);
        self.max.fetch_max(v, Ordering::Relaxed);
    }

    /// Number of samples recorded.
    pub fn count(&self) -> u64 {
        self.count.load(Ordering::Relaxed)
    }

    /// True if no samples were recorded.
    pub fn is_empty(&self) -> bool {
        self.count() == 0
    }

    /// Sum of all samples (wrapping at `u64::MAX`, irrelevant for
    /// nanosecond latencies).
    pub fn sum(&self) -> u64 {
        self.sum.load(Ordering::Relaxed)
    }

    /// Exact maximum sample recorded (0 when empty).
    pub fn max(&self) -> u64 {
        self.max.load(Ordering::Relaxed)
    }

    /// Arithmetic mean of the samples (0.0 when empty).
    pub fn mean(&self) -> f64 {
        let n = self.count();
        if n == 0 {
            0.0
        } else {
            self.sum() as f64 / n as f64
        }
    }

    /// Nearest-rank percentile estimate for quantile `q` in `[0, 1]`.
    ///
    /// Returns the inclusive upper bound of the bucket holding the
    /// nearest-rank sample, clamped to the exact recorded maximum: the
    /// estimate is never below the exact nearest-rank value and at most
    /// `value * `[`RELATIVE_ERROR_BOUND`] above it. Returns 0 when empty.
    pub fn value_at_quantile(&self, q: f64) -> u64 {
        let n = self.count();
        if n == 0 {
            return 0;
        }
        let rank = ((q * n as f64).ceil() as u64).clamp(1, n);
        let mut cum = 0u64;
        for (i, bucket) in self.buckets.iter().enumerate() {
            cum += bucket.load(Ordering::Relaxed);
            if cum >= rank {
                return bucket_high(i).min(self.max());
            }
        }
        // Racing recorders can leave `count` ahead of the bucket the sample
        // lands in for one instant; fall back to the max either way.
        self.max()
    }

    /// The standard tail summary (count / mean / p50 / p95 / p99 / p999 /
    /// max) of everything recorded so far.
    pub fn summary(&self) -> TailSummary {
        TailSummary {
            count: self.count(),
            mean_ns: self.mean(),
            p50_ns: self.value_at_quantile(0.50),
            p95_ns: self.value_at_quantile(0.95),
            p99_ns: self.value_at_quantile(0.99),
            p999_ns: self.value_at_quantile(0.999),
            max_ns: self.max(),
        }
    }

    /// Adds every sample of `other` into `self`, exactly: afterwards `self`
    /// reports what one histogram fed both streams would report.
    pub fn merge_from(&self, other: &Histogram) {
        for (mine, theirs) in self.buckets.iter().zip(other.buckets.iter()) {
            let n = theirs.load(Ordering::Relaxed);
            if n > 0 {
                mine.fetch_add(n, Ordering::Relaxed);
            }
        }
        self.count.fetch_add(other.count(), Ordering::Relaxed);
        self.sum.fetch_add(other.sum(), Ordering::Relaxed);
        self.max.fetch_max(other.max(), Ordering::Relaxed);
    }

    /// Resets every counter to zero.
    pub fn reset(&self) {
        for b in &self.buckets {
            b.store(0, Ordering::Relaxed);
        }
        self.count.store(0, Ordering::Relaxed);
        self.sum.store(0, Ordering::Relaxed);
        self.max.store(0, Ordering::Relaxed);
    }

    /// The raw bucket counts (test/debug aid; allocates, unlike recording).
    pub fn bucket_counts(&self) -> Vec<u64> {
        self.buckets.iter().map(|b| b.load(Ordering::Relaxed)).collect()
    }

    /// Memory footprint of one histogram, a compile-time constant — this is
    /// the "no per-sample allocation" claim made checkable.
    pub const MEMORY_BYTES: usize = std::mem::size_of::<Histogram>();
}

impl std::fmt::Debug for Histogram {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Histogram").field("count", &self.count()).field("max", &self.max()).finish()
    }
}

/// Count / mean / tail percentiles of one histogram (all in nanoseconds).
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct TailSummary {
    /// Number of samples.
    pub count: u64,
    /// Arithmetic mean.
    pub mean_ns: f64,
    /// Median.
    pub p50_ns: u64,
    /// 95th percentile.
    pub p95_ns: u64,
    /// 99th percentile (the paper's Fig. 12 tail metric).
    pub p99_ns: u64,
    /// 99.9th percentile.
    pub p999_ns: u64,
    /// Exact maximum.
    pub max_ns: u64,
}

/// What a latency sample (or pause span) was doing — the key of the
/// [`TelemetryRegistry`].
///
/// The first three are *per-operation* classes recorded by the harness
/// around whole operations; the rest are *pause* classes recorded by RAII
/// [`Span`]s around the stack's blocking points, so a tail spike in an op
/// class is attributable to the pause class that caused it.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum OpClass {
    /// One point lookup (or one lookup batch on batched paths).
    Lookup,
    /// One range scan.
    Scan,
    /// One insert / stage operation.
    Insert,
    /// A write-buffer drain: staged entries applied through `insert_batch`.
    Drain,
    /// A structural modification operation inside an index (split,
    /// resegmentation, subtree rebuild, run merge).
    Smo,
    /// A WAL group-commit sync (buffered tail forced to the device).
    WalSync,
    /// A durable checkpoint (meta save + superblock persist + WAL truncate).
    Checkpoint,
    /// A reader blocked on the index write lock (a drain chunk in flight).
    LockRead,
    /// A writer blocked on a contended shard or index lock.
    LockWrite,
    /// One completion wave of the outstanding-read engine.
    Wave,
    /// A shard split or merge in the keyspace router.
    Rebalance,
    /// Recovery replay work (WAL scan + re-stage) after a reopen.
    Recovery,
}

impl OpClass {
    /// All classes, in stable reporting order.
    pub const ALL: [OpClass; 12] = [
        OpClass::Lookup,
        OpClass::Scan,
        OpClass::Insert,
        OpClass::Drain,
        OpClass::Smo,
        OpClass::WalSync,
        OpClass::Checkpoint,
        OpClass::LockRead,
        OpClass::LockWrite,
        OpClass::Wave,
        OpClass::Rebalance,
        OpClass::Recovery,
    ];

    /// Number of classes.
    pub const COUNT: usize = Self::ALL.len();

    #[inline]
    fn idx(self) -> usize {
        match self {
            OpClass::Lookup => 0,
            OpClass::Scan => 1,
            OpClass::Insert => 2,
            OpClass::Drain => 3,
            OpClass::Smo => 4,
            OpClass::WalSync => 5,
            OpClass::Checkpoint => 6,
            OpClass::LockRead => 7,
            OpClass::LockWrite => 8,
            OpClass::Wave => 9,
            OpClass::Rebalance => 10,
            OpClass::Recovery => 11,
        }
    }

    /// Stable snake_case label used in reports and bench JSON.
    pub fn label(self) -> &'static str {
        match self {
            OpClass::Lookup => "lookup",
            OpClass::Scan => "scan",
            OpClass::Insert => "insert",
            OpClass::Drain => "drain",
            OpClass::Smo => "smo",
            OpClass::WalSync => "wal_sync",
            OpClass::Checkpoint => "checkpoint",
            OpClass::LockRead => "lock_read",
            OpClass::LockWrite => "lock_write",
            OpClass::Wave => "wave",
            OpClass::Rebalance => "rebalance",
            OpClass::Recovery => "recovery",
        }
    }

    /// True for the pause-attribution classes (everything that is a
    /// blocking point rather than a whole operation).
    pub fn is_pause(self) -> bool {
        !matches!(self, OpClass::Lookup | OpClass::Scan | OpClass::Insert)
    }
}

/// One histogram plus one free-form counter per [`OpClass`].
///
/// Shared behind `&self` (typically hanging off the storage layer's `Disk`,
/// next to its `IoStats`), so index internals, write fronts and the harness
/// all record into the same place without any constructor plumbing.
pub struct TelemetryRegistry {
    // Boxed: a histogram is ~15 KiB of bucket counters, and the registry
    // holds one per class — keeping them behind one heap allocation keeps
    // the registry (and everything embedding it, like the storage layer's
    // `Disk`) cheap to construct and move on any stack.
    histograms: Box<[Histogram]>,
    counters: Box<[AtomicU64]>,
}

impl Default for TelemetryRegistry {
    fn default() -> Self {
        Self::new()
    }
}

impl TelemetryRegistry {
    /// Creates a registry with every histogram and counter at zero.
    pub fn new() -> Self {
        TelemetryRegistry {
            histograms: (0..OpClass::COUNT).map(|_| Histogram::new()).collect(),
            counters: (0..OpClass::COUNT).map(|_| AtomicU64::new(0)).collect(),
        }
    }

    /// Records one latency/pause sample (nanoseconds) under `class`.
    pub fn record_ns(&self, class: OpClass, ns: u64) {
        self.histograms[class.idx()].record(ns);
    }

    /// The histogram of `class`.
    pub fn histogram(&self, class: OpClass) -> &Histogram {
        &self.histograms[class.idx()]
    }

    /// Adds `n` to the free-form counter of `class` (entries drained,
    /// records synced, shards split — whatever the class's unit is).
    pub fn add(&self, class: OpClass, n: u64) {
        self.counters[class.idx()].fetch_add(n, Ordering::Relaxed);
    }

    /// The free-form counter of `class`.
    pub fn counter(&self, class: OpClass) -> u64 {
        self.counters[class.idx()].load(Ordering::Relaxed)
    }

    /// Starts an RAII wall-clock span: the elapsed nanoseconds are recorded
    /// under `class` when the returned guard drops.
    pub fn span(&self, class: OpClass) -> Span<'_> {
        Span { registry: self, class, start: Instant::now() }
    }

    /// Merges every histogram and counter of `other` into `self`, exactly.
    /// Used to aggregate the per-shard registries of a sharded router.
    pub fn merge_from(&self, other: &TelemetryRegistry) {
        for (mine, theirs) in self.histograms.iter().zip(other.histograms.iter()) {
            mine.merge_from(theirs);
        }
        for (mine, theirs) in self.counters.iter().zip(other.counters.iter()) {
            let n = theirs.load(Ordering::Relaxed);
            if n > 0 {
                mine.fetch_add(n, Ordering::Relaxed);
            }
        }
    }

    /// Resets every histogram and counter.
    pub fn reset(&self) {
        for h in &self.histograms {
            h.reset();
        }
        for c in &self.counters {
            c.store(0, Ordering::Relaxed);
        }
    }

    /// A point-in-time summary of every class, for reports and bench JSON.
    pub fn snapshot(&self) -> TelemetrySnapshot {
        TelemetrySnapshot {
            classes: OpClass::ALL
                .iter()
                .map(|&class| ClassStats {
                    class,
                    summary: self.histogram(class).summary(),
                    counter: self.counter(class),
                })
                .collect(),
        }
    }
}

impl std::fmt::Debug for TelemetryRegistry {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let mut s = f.debug_struct("TelemetryRegistry");
        for class in OpClass::ALL {
            let h = self.histogram(class);
            if !h.is_empty() {
                s.field(class.label(), &h.count());
            }
        }
        s.finish()
    }
}

/// An RAII wall-clock timer; records its elapsed nanoseconds into the
/// registry when dropped. Wall-clock (not simulated device time) because
/// the pause points it instruments — lock waits, drains racing readers —
/// are real elapsed time the simulated clock cannot see.
pub struct Span<'a> {
    registry: &'a TelemetryRegistry,
    class: OpClass,
    start: Instant,
}

impl Span<'_> {
    /// Nanoseconds elapsed so far (the drop will record the final value).
    pub fn elapsed_ns(&self) -> u64 {
        self.start.elapsed().as_nanos() as u64
    }
}

impl Drop for Span<'_> {
    fn drop(&mut self) {
        self.registry.record_ns(self.class, self.start.elapsed().as_nanos() as u64);
    }
}

/// Summary of one class inside a [`TelemetrySnapshot`].
#[derive(Debug, Clone, Copy)]
pub struct ClassStats {
    /// Which class this row summarises.
    pub class: OpClass,
    /// Count / mean / tail percentiles of the class's histogram.
    pub summary: TailSummary,
    /// The class's free-form counter.
    pub counter: u64,
}

/// A point-in-time summary of a [`TelemetryRegistry`] — one row per
/// [`OpClass`], in [`OpClass::ALL`] order.
#[derive(Debug, Clone)]
pub struct TelemetrySnapshot {
    classes: Vec<ClassStats>,
}

impl TelemetrySnapshot {
    /// Every class's row, in stable order.
    pub fn classes(&self) -> &[ClassStats] {
        &self.classes
    }

    /// The row of one class.
    pub fn class(&self, class: OpClass) -> &ClassStats {
        &self.classes[class.idx()]
    }

    /// The rows of every class that recorded at least one sample.
    pub fn non_empty(&self) -> impl Iterator<Item = &ClassStats> {
        self.classes.iter().filter(|c| c.summary.count > 0)
    }

    /// The pause-attribution table: every pause class with at least one
    /// sample, sorted by worst (max) pause first — the direct answer to
    /// "what caused the p999 spike". At most `limit` rows.
    pub fn top_pauses(&self, limit: usize) -> Vec<&ClassStats> {
        let mut pauses: Vec<&ClassStats> =
            self.classes.iter().filter(|c| c.class.is_pause() && c.summary.count > 0).collect();
        pauses.sort_by(|a, b| {
            b.summary.max_ns.cmp(&a.summary.max_ns).then(a.class.idx().cmp(&b.class.idx()))
        });
        pauses.truncate(limit);
        pauses
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bucket_scheme_is_exhaustive_and_monotonic() {
        // Every bucket's high bound maps back to the same bucket, and highs
        // are strictly increasing — no value can fall between buckets.
        let mut prev = None;
        for idx in 0..BUCKET_COUNT {
            let high = bucket_high(idx);
            assert_eq!(bucket_index(high), idx, "high of bucket {idx} must map back");
            if let Some(p) = prev {
                assert!(high > p, "bucket highs must be strictly increasing at {idx}");
                assert_eq!(
                    bucket_index(p + 1),
                    idx,
                    "the value after bucket {}'s high must land in bucket {idx}",
                    idx - 1
                );
            }
            prev = Some(high);
        }
        assert_eq!(bucket_high(BUCKET_COUNT - 1), u64::MAX);
        assert_eq!(bucket_index(u64::MAX), BUCKET_COUNT - 1);
        assert_eq!(bucket_index(0), 0);
    }

    #[test]
    fn small_values_are_exact_and_large_values_bounded() {
        let h = Histogram::new();
        for v in 0..SUB {
            h.record(v);
        }
        // Values below SUB live in unit buckets: every quantile is exact.
        assert_eq!(h.value_at_quantile(0.5), 15);
        assert_eq!(h.value_at_quantile(1.0), 31);

        let h = Histogram::new();
        h.record(1_000_000);
        let est = h.value_at_quantile(0.99);
        assert!(est >= 1_000_000);
        assert!((est - 1_000_000) as f64 <= 1_000_000.0 * RELATIVE_ERROR_BOUND);
    }

    #[test]
    fn summary_orders_percentiles_and_max_is_exact() {
        let h = Histogram::new();
        for i in 0..10_000u64 {
            h.record(i * 37 + 5);
        }
        let s = h.summary();
        assert_eq!(s.count, 10_000);
        assert_eq!(s.max_ns, 9_999 * 37 + 5, "max is tracked exactly, not bucketed");
        assert!(s.p50_ns <= s.p95_ns);
        assert!(s.p95_ns <= s.p99_ns);
        assert!(s.p99_ns <= s.p999_ns);
        assert!(s.p999_ns <= s.max_ns);
        assert!(s.mean_ns > 0.0);
    }

    #[test]
    fn merge_is_exact_bucket_for_bucket() {
        let a = Histogram::new();
        let b = Histogram::new();
        let both = Histogram::new();
        for i in 0..5_000u64 {
            let v = i.wrapping_mul(0x9E3779B97F4A7C15).rotate_left(17) >> 20;
            if i % 2 == 0 {
                a.record(v)
            } else {
                b.record(v)
            }
            both.record(v);
        }
        a.merge_from(&b);
        assert_eq!(a.bucket_counts(), both.bucket_counts());
        assert_eq!(a.count(), both.count());
        assert_eq!(a.sum(), both.sum());
        assert_eq!(a.max(), both.max());
        for q in [0.5, 0.95, 0.99, 0.999, 1.0] {
            assert_eq!(a.value_at_quantile(q), both.value_at_quantile(q));
        }
    }

    #[test]
    fn histogram_memory_is_constant_with_no_per_sample_allocation() {
        // The histogram is one fixed-size struct: BUCKET_COUNT bucket
        // counters plus three scalars. Recording takes `&self` and touches
        // only those atomics — there is no Vec, no Box, nothing that could
        // grow per sample — so its memory is exactly MEMORY_BYTES no matter
        // how much is recorded.
        assert_eq!(Histogram::MEMORY_BYTES, std::mem::size_of::<Histogram>());
        assert_eq!(Histogram::MEMORY_BYTES, (BUCKET_COUNT + 3) * 8);
        let h = Histogram::new();
        for i in 0..100_000u64 {
            h.record(i.wrapping_mul(2_654_435_761) >> 7);
        }
        assert_eq!(h.count(), 100_000);
        assert_eq!(std::mem::size_of_val(&h), Histogram::MEMORY_BYTES);
    }

    #[test]
    fn empty_histogram_reports_zeroes() {
        let h = Histogram::new();
        assert!(h.is_empty());
        assert_eq!(h.value_at_quantile(0.99), 0);
        assert_eq!(h.summary(), TailSummary::default());
    }

    #[test]
    fn registry_spans_record_into_the_right_class() {
        let r = TelemetryRegistry::new();
        {
            let _s = r.span(OpClass::Drain);
            std::hint::black_box(());
        }
        r.record_ns(OpClass::Lookup, 123);
        r.add(OpClass::Drain, 64);
        assert_eq!(r.histogram(OpClass::Drain).count(), 1);
        assert_eq!(r.histogram(OpClass::Lookup).count(), 1);
        assert_eq!(r.histogram(OpClass::Smo).count(), 0);
        assert_eq!(r.counter(OpClass::Drain), 64);
        let snap = r.snapshot();
        assert_eq!(snap.class(OpClass::Lookup).summary.p50_ns, 123);
        assert_eq!(snap.non_empty().count(), 2);
    }

    #[test]
    fn registry_merge_and_reset_cover_every_class() {
        let a = TelemetryRegistry::new();
        let b = TelemetryRegistry::new();
        for (i, class) in OpClass::ALL.into_iter().enumerate() {
            a.record_ns(class, 100 + i as u64);
            b.record_ns(class, 1_000_000 + i as u64);
            b.add(class, i as u64 + 1);
        }
        a.merge_from(&b);
        for (i, class) in OpClass::ALL.into_iter().enumerate() {
            assert_eq!(a.histogram(class).count(), 2, "{}", class.label());
            assert_eq!(a.histogram(class).max(), 1_000_000 + i as u64);
            assert_eq!(a.counter(class), i as u64 + 1);
        }
        a.reset();
        for class in OpClass::ALL {
            assert!(a.histogram(class).is_empty());
            assert_eq!(a.counter(class), 0);
        }
    }

    #[test]
    fn top_pauses_sorts_by_worst_max_and_skips_op_classes() {
        let r = TelemetryRegistry::new();
        r.record_ns(OpClass::Lookup, u64::MAX / 2); // op class: excluded
        r.record_ns(OpClass::Smo, 500_000);
        r.record_ns(OpClass::Drain, 2_000_000);
        r.record_ns(OpClass::WalSync, 10_000);
        let snap = r.snapshot();
        let top = snap.top_pauses(2);
        assert_eq!(top.len(), 2);
        assert_eq!(top[0].class, OpClass::Drain);
        assert_eq!(top[1].class, OpClass::Smo);
        let all = snap.top_pauses(usize::MAX);
        assert_eq!(all.len(), 3, "op classes never appear in the pause table");
    }

    #[test]
    fn class_labels_are_unique_and_stable() {
        let labels: std::collections::HashSet<_> = OpClass::ALL.iter().map(|c| c.label()).collect();
        assert_eq!(labels.len(), OpClass::COUNT);
        assert_eq!(OpClass::WalSync.label(), "wal_sync");
        assert!(OpClass::Drain.is_pause());
        assert!(!OpClass::Lookup.is_pause());
    }

    #[test]
    fn concurrent_recording_matches_sequential_exactly() {
        // Determinism under concurrency: N threads each record a disjoint
        // shard of the sample set; the result must equal the sequential
        // recording bucket-for-bucket (atomic adds commute).
        let samples: Vec<u64> = (0..40_000u64)
            .map(|i| i.wrapping_mul(0x9E3779B97F4A7C15).rotate_left(23) >> 16)
            .collect();
        let sequential = Histogram::new();
        for &v in &samples {
            sequential.record(v);
        }
        let concurrent = Histogram::new();
        std::thread::scope(|s| {
            for t in 0..8usize {
                let concurrent = &concurrent;
                let samples = &samples;
                s.spawn(move || {
                    for v in samples.iter().skip(t).step_by(8) {
                        concurrent.record(*v);
                    }
                });
            }
        });
        assert_eq!(concurrent.bucket_counts(), sequential.bucket_counts());
        assert_eq!(concurrent.count(), sequential.count());
        assert_eq!(concurrent.sum(), sequential.sum());
        assert_eq!(concurrent.max(), sequential.max());
    }
}
