//! Histogram property suite: the log-bucketed [`Histogram`] checked against
//! an exact sorted-vector oracle (every percentile within the documented
//! relative-error bound, never under-reported), exact-merge properties, and
//! a determinism check that N-thread concurrent recording merged across
//! per-thread registries equals sequential recording snapshot-for-snapshot.
//!
//! CI runs this suite in release next to the racing-oracle suites: the
//! lock-free recording path is exactly the kind of code whose races hide in
//! debug builds.

use lidx_telemetry::{Histogram, OpClass, TelemetryRegistry, RELATIVE_ERROR_BOUND};
use proptest::prelude::*;

/// The exact nearest-rank percentile the harness's sorted-vector recorder
/// would report — the oracle the histogram is held to.
fn exact_percentile(sorted: &[u64], q: f64) -> u64 {
    let rank = ((q * sorted.len() as f64).ceil() as usize).clamp(1, sorted.len());
    sorted[rank - 1]
}

const QUANTILES: [f64; 6] = [0.5, 0.9, 0.95, 0.99, 0.999, 1.0];

proptest! {
    #![proptest_config(ProptestConfig { cases: 64, .. ProptestConfig::default() })]

    /// Every percentile the histogram reports is at least the exact
    /// nearest-rank value and overshoots it by at most
    /// `RELATIVE_ERROR_BOUND` (1/32), across sample sets spanning the full
    /// range of magnitudes (the `shift` component varies the octave).
    #[test]
    fn percentiles_match_sorted_oracle_within_bound(
        raw in proptest::collection::vec((any::<u64>(), 0u32..64), 1..300),
    ) {
        let samples: Vec<u64> = raw.iter().map(|&(v, s)| v >> s).collect();
        let hist = Histogram::new();
        for &v in &samples {
            hist.record(v);
        }
        let mut sorted = samples.clone();
        sorted.sort_unstable();
        prop_assert_eq!(hist.count(), samples.len() as u64);
        prop_assert_eq!(hist.max(), *sorted.last().unwrap());
        for q in QUANTILES {
            let exact = exact_percentile(&sorted, q);
            let est = hist.value_at_quantile(q);
            prop_assert!(est >= exact,
                "q={q}: histogram may never under-report ({est} < {exact})");
            prop_assert!(
                (est - exact) as f64 <= exact as f64 * RELATIVE_ERROR_BOUND,
                "q={q}: overshoot {} above exact {exact} breaks the 1/{} bound",
                est - exact, (1.0 / RELATIVE_ERROR_BOUND) as u64
            );
        }
    }

    /// Merging two histograms is exact: every percentile of the merged
    /// histogram equals what one histogram fed both streams reports, and
    /// count/sum/max add up.
    #[test]
    fn merge_is_exact_for_any_partition(
        raw in proptest::collection::vec((any::<u64>(), 0u32..64), 2..300),
        split in any::<u16>(),
    ) {
        let samples: Vec<u64> = raw.iter().map(|&(v, s)| v >> s).collect();
        let cut = 1 + (split as usize) % (samples.len() - 1);
        let (left, right) = (Histogram::new(), Histogram::new());
        let single = Histogram::new();
        for (i, &v) in samples.iter().enumerate() {
            if i < cut { left.record(v) } else { right.record(v) }
            single.record(v);
        }
        left.merge_from(&right);
        prop_assert_eq!(left.count(), single.count());
        prop_assert_eq!(left.sum(), single.sum());
        prop_assert_eq!(left.max(), single.max());
        for q in QUANTILES {
            prop_assert_eq!(left.value_at_quantile(q), single.value_at_quantile(q));
        }
    }

    /// The summary's percentile fields are always ordered
    /// p50 ≤ p95 ≤ p99 ≤ p999 ≤ max — the invariant the CI bench-JSON smoke
    /// asserts on every refreshed snapshot.
    #[test]
    fn summary_percentiles_are_always_ordered(
        raw in proptest::collection::vec((any::<u64>(), 0u32..64), 1..200),
    ) {
        let hist = Histogram::new();
        for &(v, s) in &raw {
            hist.record(v >> s);
        }
        let s = hist.summary();
        prop_assert!(s.p50_ns <= s.p95_ns);
        prop_assert!(s.p95_ns <= s.p99_ns);
        prop_assert!(s.p99_ns <= s.p999_ns);
        prop_assert!(s.p999_ns <= s.max_ns);
    }
}

/// Determinism under concurrency: eight threads record disjoint shards of
/// one sample stream into per-thread registries (the sharded-router
/// aggregation shape); merging them must equal sequential recording into a
/// single registry, class-for-class and bucket-for-bucket.
#[test]
fn n_thread_recording_merges_to_the_sequential_snapshot() {
    const THREADS: usize = 8;
    let samples: Vec<(OpClass, u64)> = (0..48_000u64)
        .map(|i| {
            let h = i.wrapping_mul(0x9E3779B97F4A7C15).rotate_left(29);
            let class = OpClass::ALL[(h % OpClass::COUNT as u64) as usize];
            (class, h >> (h % 40))
        })
        .collect();

    let sequential = TelemetryRegistry::new();
    for &(class, v) in &samples {
        sequential.record_ns(class, v);
        sequential.add(class, v % 7);
    }

    let merged = TelemetryRegistry::new();
    std::thread::scope(|s| {
        let handles: Vec<_> = (0..THREADS)
            .map(|t| {
                let samples = &samples;
                s.spawn(move || {
                    let local = TelemetryRegistry::new();
                    for &(class, v) in samples.iter().skip(t).step_by(THREADS) {
                        local.record_ns(class, v);
                        local.add(class, v % 7);
                    }
                    local
                })
            })
            .collect();
        for h in handles {
            merged.merge_from(&h.join().expect("recorder thread panicked"));
        }
    });

    for class in OpClass::ALL {
        let (a, b) = (merged.histogram(class), sequential.histogram(class));
        assert_eq!(a.bucket_counts(), b.bucket_counts(), "{} buckets", class.label());
        assert_eq!(a.count(), b.count(), "{} count", class.label());
        assert_eq!(a.sum(), b.sum(), "{} sum", class.label());
        assert_eq!(a.max(), b.max(), "{} max", class.label());
        assert_eq!(merged.counter(class), sequential.counter(class), "{}", class.label());
        assert_eq!(a.summary(), b.summary(), "{} summary", class.label());
    }
}
