//! The on-disk LIPP node format.
//!
//! A node occupies a contiguous extent:
//!
//! ```text
//! block 0   : header (model, capacity, counters, statistics)
//! blocks 1..: slots, 24 bytes each: [type u64][key u64][payload-or-child u64]
//! ```
//!
//! The slot type is stored inline (the paper's replacement for ALEX's
//! bitmap), so one block read yields both the type and the content of a slot.

use lidx_core::{Entry, IndexError, IndexResult, Key, Value};
use lidx_models::LinearModel;
use lidx_storage::{AccessClass, BlockId, BlockKind, BlockReader, BlockWriter, Disk};

/// Size of one slot in bytes.
pub const SLOT_BYTES: usize = 24;

const TAG_NODE: u8 = 0x71;

const SLOT_NULL: u64 = 0;
const SLOT_DATA: u64 = 1;
const SLOT_CHILD: u64 = 2;

/// The contents of one slot.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Slot {
    /// The slot is empty.
    Null,
    /// The slot stores a key-payload pair.
    Data(Key, Value),
    /// The slot points at a child node (start block of its extent).
    Child(BlockId),
}

impl Slot {
    fn encode(self) -> [u64; 3] {
        match self {
            Slot::Null => [SLOT_NULL, 0, 0],
            Slot::Data(k, v) => [SLOT_DATA, k, v],
            Slot::Child(b) => [SLOT_CHILD, 0, u64::from(b)],
        }
    }

    fn decode(raw: [u64; 3]) -> IndexResult<Slot> {
        match raw[0] {
            SLOT_NULL => Ok(Slot::Null),
            SLOT_DATA => Ok(Slot::Data(raw[1], raw[2])),
            SLOT_CHILD => Ok(Slot::Child(raw[2] as u32)),
            other => Err(IndexError::Internal(format!("invalid LIPP slot tag {other}"))),
        }
    }
}

/// The persistent header of a LIPP node.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LippHeader {
    /// Number of slots.
    pub capacity: u32,
    /// Number of `DATA` slots.
    pub data_count: u32,
    /// Number of `NODE` slots.
    pub child_count: u32,
    /// The FMCD-selected linear model mapping keys to slots.
    pub model: LinearModel,
    /// Number of keys the node (subtree) was built from.
    pub build_size: u32,
    /// Inserts routed through this node since it was built.
    pub num_inserts: u32,
    /// Inserts that hit an occupied slot (conflicts) since the node was
    /// built — the trigger for subtree rebuilds.
    pub num_conflicts: u32,
}

impl LippHeader {
    fn encode(&self, block_size: usize) -> IndexResult<Vec<u8>> {
        let mut w = BlockWriter::new(block_size);
        w.put_u8(TAG_NODE)?;
        w.put_u8(0)?;
        w.put_u16(0)?;
        w.put_u32(self.capacity)?;
        w.put_u32(self.data_count)?;
        w.put_u32(self.child_count)?;
        w.put_f64(self.model.slope)?;
        w.put_f64(self.model.intercept)?;
        w.put_u32(self.build_size)?;
        w.put_u32(self.num_inserts)?;
        w.put_u32(self.num_conflicts)?;
        Ok(w.finish())
    }

    fn decode(buf: &[u8]) -> IndexResult<Self> {
        let mut r = BlockReader::new(buf);
        let tag = r.get_u8()?;
        if tag != TAG_NODE {
            return Err(IndexError::Internal(format!("expected LIPP node tag, got {tag:#x}")));
        }
        r.get_u8()?;
        r.get_u16()?;
        let capacity = r.get_u32()?;
        let data_count = r.get_u32()?;
        let child_count = r.get_u32()?;
        let slope = r.get_f64()?;
        let intercept = r.get_f64()?;
        Ok(LippHeader {
            capacity,
            data_count,
            child_count,
            model: LinearModel::new(slope, intercept),
            build_size: r.get_u32()?,
            num_inserts: r.get_u32()?,
            num_conflicts: r.get_u32()?,
        })
    }
}

/// A handle to one on-disk LIPP node.
#[derive(Debug, Clone)]
pub struct LippNode {
    /// File holding the node.
    pub file: u32,
    /// First block of the extent.
    pub start: BlockId,
    /// The decoded header.
    pub header: LippHeader,
}

/// Number of slots per block for a given block size.
pub fn slots_per_block(block_size: usize) -> usize {
    block_size / SLOT_BYTES
}

/// Total blocks of a node extent with `capacity` slots.
pub fn blocks_for(capacity: u32, block_size: usize) -> u32 {
    1 + (capacity as usize).div_ceil(slots_per_block(block_size)).max(1) as u32
}

impl LippNode {
    /// Reads the header of the node at `start` (one block read).
    pub fn load(disk: &Disk, file: u32, start: BlockId) -> IndexResult<Self> {
        let buf = disk.read_ref(file, start, BlockKind::Leaf)?;
        Ok(LippNode { file, start, header: LippHeader::decode(&buf)? })
    }

    /// Builds a handle from an already-fetched header block (e.g. one
    /// delivered by a read-queue completion wave), avoiding a second read.
    pub fn from_header_bytes(file: u32, start: BlockId, buf: &[u8]) -> IndexResult<Self> {
        Ok(LippNode { file, start, header: LippHeader::decode(buf)? })
    }

    /// [`LippNode::load`] tagged as part of a scan stream: used by the
    /// in-order scan traversal when it descends into a child subtree.
    pub fn load_scan(disk: &Disk, file: u32, start: BlockId) -> IndexResult<Self> {
        let buf = disk.read_ref_scan(file, start, BlockKind::Leaf)?;
        Ok(LippNode { file, start, header: LippHeader::decode(&buf)? })
    }

    /// Total blocks of the node's extent.
    pub fn total_blocks(&self, block_size: usize) -> u32 {
        blocks_for(self.header.capacity, block_size)
    }

    /// Persists the header (one block write).
    pub fn write_header(&self, disk: &Disk) -> IndexResult<()> {
        let buf = self.header.encode(disk.block_size())?;
        disk.write(self.file, self.start, BlockKind::Leaf, &buf)?;
        Ok(())
    }

    /// Slot the model assigns to `key`.
    pub fn predict(&self, key: Key) -> u32 {
        self.header.model.predict_clamped(key, self.header.capacity as usize) as u32
    }

    fn slot_location(&self, slot: u32, block_size: usize) -> (BlockId, usize) {
        let per_block = slots_per_block(block_size) as u32;
        (self.start + 1 + slot / per_block, ((slot % per_block) as usize) * SLOT_BYTES)
    }

    /// Absolute block id holding `slot` — the prefetch target for batched
    /// lookups that wave a whole level's slot fetches at once.
    pub fn slot_block_id(&self, slot: u32, block_size: usize) -> BlockId {
        self.slot_location(slot, block_size).0
    }

    /// Reads one slot.
    pub fn read_slot(&self, disk: &Disk, slot: u32) -> IndexResult<Slot> {
        self.read_slot_class(disk, slot, AccessClass::Point)
    }

    /// [`LippNode::read_slot`] tagged as part of a scan stream.
    pub fn read_slot_scan(&self, disk: &Disk, slot: u32) -> IndexResult<Slot> {
        self.read_slot_class(disk, slot, AccessClass::Scan)
    }

    fn read_slot_class(&self, disk: &Disk, slot: u32, class: AccessClass) -> IndexResult<Slot> {
        let (block, off) = self.slot_location(slot, disk.block_size());
        let buf = disk.read_ref_class(self.file, block, BlockKind::Leaf, class)?;
        let raw = [
            u64::from_le_bytes(buf[off..off + 8].try_into().unwrap()),
            u64::from_le_bytes(buf[off + 8..off + 16].try_into().unwrap()),
            u64::from_le_bytes(buf[off + 16..off + 24].try_into().unwrap()),
        ];
        Slot::decode(raw)
    }

    /// Writes one slot.
    pub fn write_slot(&self, disk: &Disk, slot: u32, value: Slot) -> IndexResult<()> {
        let (block, off) = self.slot_location(slot, disk.block_size());
        let mut buf = disk.read_vec(self.file, block, BlockKind::Leaf)?;
        let raw = value.encode();
        buf[off..off + 8].copy_from_slice(&raw[0].to_le_bytes());
        buf[off + 8..off + 16].copy_from_slice(&raw[1].to_le_bytes());
        buf[off + 16..off + 24].copy_from_slice(&raw[2].to_le_bytes());
        disk.write(self.file, block, BlockKind::Leaf, &buf)?;
        Ok(())
    }

    /// Builds a node for `entries` (sorted, strictly increasing) with the
    /// given slot capacity and FMCD model. Conflicting keys are *not* handled
    /// here — the caller groups keys per slot and builds child nodes; this
    /// function receives the final per-slot assignment.
    pub fn write_new(
        disk: &Disk,
        file: u32,
        start: BlockId,
        capacity: u32,
        model: LinearModel,
        slots: &[Slot],
        build_size: u32,
    ) -> IndexResult<LippNode> {
        debug_assert_eq!(slots.len(), capacity as usize);
        let bs = disk.block_size();
        let per_block = slots_per_block(bs);
        let mut data_count = 0;
        let mut child_count = 0;
        for s in slots {
            match s {
                Slot::Data(..) => data_count += 1,
                Slot::Child(_) => child_count += 1,
                Slot::Null => {}
            }
        }
        let mut buf = vec![0u8; bs];
        let slot_blocks = (capacity as usize).div_ceil(per_block).max(1) as u32;
        for b in 0..slot_blocks {
            buf.fill(0);
            for i in 0..per_block {
                let idx = b as usize * per_block + i;
                let raw = slots.get(idx).copied().unwrap_or(Slot::Null).encode();
                let off = i * SLOT_BYTES;
                buf[off..off + 8].copy_from_slice(&raw[0].to_le_bytes());
                buf[off + 8..off + 16].copy_from_slice(&raw[1].to_le_bytes());
                buf[off + 16..off + 24].copy_from_slice(&raw[2].to_le_bytes());
            }
            disk.write(file, start + 1 + b, BlockKind::Leaf, &buf)?;
        }
        let node = LippNode {
            file,
            start,
            header: LippHeader {
                capacity,
                data_count,
                child_count,
                model,
                build_size,
                num_inserts: 0,
                num_conflicts: 0,
            },
        };
        node.write_header(disk)?;
        Ok(node)
    }

    /// Collects every entry stored in this node's subtree, in key order.
    pub fn collect_subtree(&self, disk: &Disk, out: &mut Vec<Entry>) -> IndexResult<()> {
        for slot in 0..self.header.capacity {
            match self.read_slot(disk, slot)? {
                Slot::Null => {}
                Slot::Data(k, v) => out.push((k, v)),
                Slot::Child(block) => {
                    let child = LippNode::load(disk, self.file, block)?;
                    child.collect_subtree(disk, out)?;
                }
            }
        }
        Ok(())
    }

    /// Frees this node's extent and, recursively, every descendant's.
    pub fn free_subtree(&self, disk: &Disk) -> IndexResult<()> {
        for slot in 0..self.header.capacity {
            if let Slot::Child(block) = self.read_slot(disk, slot)? {
                let child = LippNode::load(disk, self.file, block)?;
                child.free_subtree(disk)?;
            }
        }
        disk.free(self.file, self.start, self.total_blocks(disk.block_size()));
        Ok(())
    }
}

/// Returns `(entry, entry)` slot groupings: entries that map to the same slot
/// under `model` are grouped together, in slot order.
pub fn group_by_slot(
    entries: &[Entry],
    model: &LinearModel,
    capacity: u32,
) -> Vec<(u32, Vec<Entry>)> {
    let mut groups: Vec<(u32, Vec<Entry>)> = Vec::new();
    for &e in entries {
        let slot = model.predict_clamped(e.0, capacity as usize) as u32;
        match groups.last_mut() {
            Some((s, g)) if *s == slot => g.push(e),
            _ => groups.push((slot, vec![e])),
        }
    }
    groups
}

#[cfg(test)]
mod tests {
    use super::*;
    use lidx_storage::DiskConfig;
    use std::sync::Arc;

    fn disk() -> Arc<Disk> {
        Disk::in_memory(DiskConfig::with_block_size(512))
    }

    #[test]
    fn slot_encoding_roundtrips() {
        for s in [Slot::Null, Slot::Data(5, 6), Slot::Child(1234)] {
            assert_eq!(Slot::decode(s.encode()).unwrap(), s);
        }
        assert!(Slot::decode([9, 0, 0]).is_err());
    }

    #[test]
    fn node_write_read_slots_and_header() {
        let d = disk();
        let file = d.create_file().unwrap();
        let capacity = 64u32;
        let start = d.allocate(file, blocks_for(capacity, 512)).unwrap();
        let mut slots = vec![Slot::Null; capacity as usize];
        slots[3] = Slot::Data(30, 31);
        slots[10] = Slot::Child(99);
        slots[63] = Slot::Data(630, 631);
        let model = LinearModel::new(0.1, 0.0);
        let node = LippNode::write_new(&d, file, start, capacity, model, &slots, 3).unwrap();
        assert_eq!(node.header.data_count, 2);
        assert_eq!(node.header.child_count, 1);

        let reloaded = LippNode::load(&d, file, start).unwrap();
        assert_eq!(reloaded.header, node.header);
        assert_eq!(reloaded.read_slot(&d, 3).unwrap(), Slot::Data(30, 31));
        assert_eq!(reloaded.read_slot(&d, 10).unwrap(), Slot::Child(99));
        assert_eq!(reloaded.read_slot(&d, 4).unwrap(), Slot::Null);

        reloaded.write_slot(&d, 4, Slot::Data(40, 41)).unwrap();
        assert_eq!(reloaded.read_slot(&d, 4).unwrap(), Slot::Data(40, 41));
        assert_eq!(reloaded.read_slot(&d, 3).unwrap(), Slot::Data(30, 31));
    }

    #[test]
    fn predict_uses_the_model() {
        let d = disk();
        let file = d.create_file().unwrap();
        let capacity = 100u32;
        let start = d.allocate(file, blocks_for(capacity, 512)).unwrap();
        let model = LinearModel::new(0.01, 0.0); // keys 0..10_000 -> slots 0..100
        let node = LippNode::write_new(
            &d,
            file,
            start,
            capacity,
            model,
            &vec![Slot::Null; capacity as usize],
            0,
        )
        .unwrap();
        assert_eq!(node.predict(0), 0);
        assert_eq!(node.predict(5_000), 50);
        assert_eq!(node.predict(1_000_000), 99);
    }

    #[test]
    fn group_by_slot_groups_conflicting_keys() {
        let entries: Vec<Entry> = vec![(1, 1), (2, 2), (3, 3), (100, 4), (101, 5)];
        let model = LinearModel::new(0.05, 0.0); // 1,2,3 -> slot 0; 100,101 -> slot 5
        let groups = group_by_slot(&entries, &model, 10);
        assert_eq!(groups.len(), 2);
        assert_eq!(groups[0].0, 0);
        assert_eq!(groups[0].1.len(), 3);
        assert_eq!(groups[1].0, 5);
        assert_eq!(groups[1].1.len(), 2);
    }

    #[test]
    fn collect_and_free_subtree() {
        let d = disk();
        let file = d.create_file().unwrap();
        // Child node with two entries.
        let child_cap = 8u32;
        let child_start = d.allocate(file, blocks_for(child_cap, 512)).unwrap();
        let mut child_slots = vec![Slot::Null; child_cap as usize];
        child_slots[1] = Slot::Data(10, 100);
        child_slots[6] = Slot::Data(20, 200);
        LippNode::write_new(
            &d,
            file,
            child_start,
            child_cap,
            LinearModel::new(0.5, -4.0),
            &child_slots,
            2,
        )
        .unwrap();
        // Parent referencing the child between two data slots.
        let cap = 8u32;
        let start = d.allocate(file, blocks_for(cap, 512)).unwrap();
        let mut slots = vec![Slot::Null; cap as usize];
        slots[0] = Slot::Data(5, 50);
        slots[2] = Slot::Child(child_start);
        slots[5] = Slot::Data(30, 300);
        let parent =
            LippNode::write_new(&d, file, start, cap, LinearModel::new(0.1, 0.0), &slots, 4)
                .unwrap();

        let mut out = Vec::new();
        parent.collect_subtree(&d, &mut out).unwrap();
        assert_eq!(out, vec![(5, 50), (10, 100), (20, 200), (30, 300)]);

        let before_freed = d.stats().freed_blocks();
        parent.free_subtree(&d).unwrap();
        let freed = d.stats().freed_blocks() - before_freed;
        assert_eq!(
            freed,
            u64::from(blocks_for(child_cap, 512) + blocks_for(cap, 512)),
            "both extents must be freed"
        );
    }
}
