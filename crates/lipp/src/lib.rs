//! An on-disk LIPP index (§2.2 / §4.2 of the paper).
//!
//! LIPP (Updatable Learned Index with Precise Positions) has a single node
//! type. Every node carries a linear model chosen by the FMCD algorithm and
//! an array of slots; each slot is `NULL`, `DATA` (a key-payload pair) or
//! `NODE` (a pointer to a child built from the keys that conflicted on that
//! slot). Predictions are *precise*: a lookup never needs a local search,
//! only one slot probe per level.
//!
//! The on-disk extension follows §4.2: the layout mirrors ALEX's (each node
//! is a contiguous block extent, the meta block stores the root) except that
//! the bitmap is replaced by a per-slot type flag stored inline with the
//! slot, so no separate utility blocks have to be fetched. The price the
//! paper measures remains: node headers and slots usually live in different
//! blocks (2 · log N lookup cost, S1), inserts create a new node roughly
//! every third insertion and must update statistics along the whole access
//! path (O7 / S3), and scans traverse interleaved `DATA`/`NODE` slots across
//! many blocks (O5 / S2).

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod index;
pub mod node;

pub use index::{LippConfig, LippIndex};
