//! The on-disk LIPP tree and its [`DiskIndex`](lidx_core::DiskIndex)
//! implementation.

use std::sync::Arc;

use lidx_core::{
    index::validate_bulk_load, Entry, IndexError, IndexKind, IndexRead, IndexResult, IndexStats,
    IndexWrite, InsertBreakdown, InsertStep, Key, MetaReader, MetaWriter, Value,
};
use lidx_models::fmcd::fit_fmcd;
use lidx_storage::{AccessClass, BlockId, BlockKind, Disk, OpClass, SeqHint};

use crate::node::{blocks_for, group_by_slot, LippNode, Slot};

/// Configuration of the on-disk LIPP index.
#[derive(Debug, Clone, Copy)]
pub struct LippConfig {
    /// Slot over-allocation factor for nodes built from fewer than
    /// [`LippConfig::large_node_threshold`] keys (LIPP allocates 5× slots for
    /// small nodes — the source of its large empty-slot ratio, O11).
    pub small_gap_factor: u32,
    /// Slot over-allocation factor for nodes at or above the threshold
    /// (LIPP allocates 2× slots for large nodes).
    pub large_gap_factor: u32,
    /// Key-count threshold separating the two factors (100 000 in LIPP).
    pub large_node_threshold: usize,
    /// Hard cap on the number of slots in a single node.
    pub max_node_slots: u32,
    /// A subtree is rebuilt when its accumulated inserts exceed its build
    /// size times this factor and at least a quarter of them conflicted.
    pub rebuild_insert_factor: f64,
}

impl Default for LippConfig {
    fn default() -> Self {
        LippConfig {
            small_gap_factor: 5,
            large_gap_factor: 2,
            large_node_threshold: 100_000,
            max_node_slots: 1 << 21,
            rebuild_insert_factor: 1.0,
        }
    }
}

/// An on-disk LIPP index.
pub struct LippIndex {
    disk: Arc<Disk>,
    config: LippConfig,
    file: u32,
    root: BlockId,
    key_count: u64,
    node_count: u64,
    max_depth: u32,
    smo_count: u64,
    loaded: bool,
    breakdown: InsertBreakdown,
}

impl LippIndex {
    /// Creates an empty LIPP index with the default configuration.
    pub fn new(disk: Arc<Disk>) -> IndexResult<Self> {
        Self::with_config(disk, LippConfig::default())
    }

    /// Creates an empty LIPP index with an explicit configuration.
    pub fn with_config(disk: Arc<Disk>, config: LippConfig) -> IndexResult<Self> {
        assert!(config.small_gap_factor >= 1 && config.large_gap_factor >= 1);
        assert!(config.max_node_slots >= 8);
        let file = disk.create_file()?;
        Ok(LippIndex {
            disk,
            config,
            file,
            root: 0,
            key_count: 0,
            node_count: 0,
            max_depth: 0,
            smo_count: 0,
            loaded: false,
            breakdown: InsertBreakdown::new(),
        })
    }

    /// Reopens a LIPP index from [`IndexWrite::save_meta`] bytes against a
    /// disk that already holds its blocks. `config` must match the one the
    /// index was created with.
    pub fn load(disk: Arc<Disk>, config: LippConfig, meta: &[u8]) -> IndexResult<Self> {
        let mut r = MetaReader::new(meta);
        let file = r.u32()?;
        let root = r.u32()?;
        let key_count = r.u64()?;
        let node_count = r.u64()?;
        let max_depth = r.u32()?;
        let smo_count = r.u64()?;
        Ok(LippIndex {
            disk,
            config,
            file,
            root,
            key_count,
            node_count,
            max_depth,
            smo_count,
            loaded: true,
            breakdown: InsertBreakdown::new(),
        })
    }

    /// Number of nodes in the tree.
    pub fn node_count(&self) -> u64 {
        self.node_count
    }

    fn capacity_for(&self, count: usize) -> u32 {
        let factor = if count < self.config.large_node_threshold {
            self.config.small_gap_factor
        } else {
            self.config.large_gap_factor
        } as usize;
        ((count.max(1) * factor).max(8) as u32).min(self.config.max_node_slots)
    }

    /// Recursively builds a node for `entries`, returning its start block.
    fn build_subtree(&mut self, entries: &[Entry], depth: u32) -> IndexResult<BlockId> {
        self.max_depth = self.max_depth.max(depth + 1);
        let capacity = self.capacity_for(entries.len());
        let keys: Vec<Key> = entries.iter().map(|e| e.0).collect();
        let fitted = fit_fmcd(&keys, capacity as usize);
        let model = fitted.model;

        let mut slots = vec![Slot::Null; capacity as usize];
        for (slot, group) in group_by_slot(entries, &model, capacity) {
            if group.len() == 1 {
                slots[slot as usize] = Slot::Data(group[0].0, group[0].1);
            } else {
                let child = self.build_subtree(&group, depth + 1)?;
                slots[slot as usize] = Slot::Child(child);
            }
        }

        let start = self.disk.allocate(self.file, blocks_for(capacity, self.disk.block_size()))?;
        LippNode::write_new(
            &self.disk,
            self.file,
            start,
            capacity,
            model,
            &slots,
            entries.len() as u32,
        )?;
        self.node_count += 1;
        Ok(start)
    }

    /// Rebuilds the subtree rooted at `node`, repointing either the parent
    /// slot described by `parent` or the root.
    fn rebuild_subtree(
        &mut self,
        node: &LippNode,
        parent: Option<(&LippNode, u32)>,
    ) -> IndexResult<()> {
        self.smo_count += 1;
        // The SMO is the learned-index pause the paper attributes tail
        // latency to: time the whole operation and count it, off a local
        // Arc so the span does not pin a borrow of `self`.
        let telemetry = Arc::clone(&self.disk);
        let _span = telemetry.telemetry().span(OpClass::Smo);
        telemetry.telemetry().add(OpClass::Smo, 1);
        let mut entries = Vec::new();
        node.collect_subtree(&self.disk, &mut entries)?;
        // Subtract the nodes that are about to disappear.
        let mut removed = 0u64;
        count_nodes(&self.disk, node, &mut removed)?;
        node.free_subtree(&self.disk)?;
        self.node_count -= removed;
        let new_block = self.build_subtree(&entries, 0)?;
        match parent {
            Some((p, slot)) => p.write_slot(&self.disk, slot, Slot::Child(new_block))?,
            None => self.root = new_block,
        }
        Ok(())
    }

    /// Writes the statistics header of every node in `dirty` once (the
    /// batched-insert Maintenance step) and empties the set. The in-memory
    /// cache is authoritative while headers are deferred, so this is the
    /// only place batched inserts touch headers on disk.
    fn flush_dirty_headers(
        &mut self,
        nodes: &std::collections::HashMap<BlockId, LippNode>,
        dirty: &mut std::collections::BTreeSet<BlockId>,
    ) -> IndexResult<()> {
        if dirty.is_empty() {
            return Ok(());
        }
        let before = self.disk.snapshot();
        for b in std::mem::take(dirty) {
            if let Some(node) = nodes.get(&b) {
                node.write_header(&self.disk)?;
            }
        }
        self.breakdown.add(InsertStep::Maintenance, &self.disk.snapshot().since(&before));
        Ok(())
    }

    /// The outstanding-I/O variant of [`lookup_batch`](IndexRead::lookup_batch)
    /// used when the disk's queue depth exceeds 1: every probe descends the
    /// tree level by level in lock-step, so each level's header fetches ride
    /// one completion wave and each level's predicted slot blocks ride a
    /// prefetch wave — the per-level "header + slot" latency pair every LIPP
    /// probe pays is overlapped across the whole batch. Answers are identical
    /// to the synchronous batch: the per-probe routing (predict → slot →
    /// child) is byte-for-byte the sequential descent.
    fn lookup_batch_queued(
        &self,
        keys: &[Key],
        order: &[u32],
        out: &mut [Option<Value>],
    ) -> IndexResult<()> {
        use std::collections::{BTreeSet, HashMap};
        let bs = self.disk.block_size();
        let mut nodes: HashMap<BlockId, LippNode> = HashMap::new();
        let mut active: Vec<(u32, BlockId)> = order.iter().map(|&i| (i, self.root)).collect();
        let mut q = self.disk.read_queue();
        while !active.is_empty() {
            // Wave A: headers of the nodes this level reaches for the first
            // time (always exactly one — the root — on the first round).
            let need: BTreeSet<BlockId> =
                active.iter().map(|&(_, b)| b).filter(|b| !nodes.contains_key(b)).collect();
            for &b in &need {
                q.submit(self.file, b, BlockKind::Leaf, AccessClass::Point)?;
            }
            for c in q.complete()? {
                nodes.insert(c.block, LippNode::from_header_bytes(self.file, c.block, &c.frame)?);
            }

            // Wave B: every active probe's predicted slot block.
            let slot_blocks: BTreeSet<BlockId> = active
                .iter()
                .map(|&(i, b)| {
                    let node = &nodes[&b];
                    node.slot_block_id(node.predict(keys[i as usize]), bs)
                })
                .collect();
            for &b in &slot_blocks {
                q.prefetch(self.file, b, BlockKind::Leaf, AccessClass::Point, SeqHint::Auto)?;
            }
            q.flush()?;

            // Resolve the level from the parked frames; probes that hit a
            // child pointer go another round.
            let mut next = Vec::new();
            for (i, b) in active {
                let node = &nodes[&b];
                match node.read_slot(&self.disk, node.predict(keys[i as usize]))? {
                    Slot::Null => {}
                    Slot::Data(k, v) => out[i as usize] = (k == keys[i as usize]).then_some(v),
                    Slot::Child(child) => next.push((i, child)),
                }
            }
            active = next;
        }
        Ok(())
    }

    fn should_rebuild(&self, node: &LippNode) -> bool {
        let h = &node.header;
        let grown = f64::from(h.num_inserts)
            >= f64::from(h.build_size.max(64)) * self.config.rebuild_insert_factor;
        grown && h.num_conflicts * 4 >= h.num_inserts
    }
}

/// Counts the nodes of a subtree (used when a rebuild replaces them).
fn count_nodes(disk: &Disk, node: &LippNode, acc: &mut u64) -> IndexResult<()> {
    *acc += 1;
    for slot in 0..node.header.capacity {
        if let Slot::Child(b) = node.read_slot(disk, slot)? {
            let child = LippNode::load(disk, node.file, b)?;
            count_nodes(disk, &child, acc)?;
        }
    }
    Ok(())
}

impl IndexRead for LippIndex {
    fn kind(&self) -> IndexKind {
        IndexKind::Lipp
    }

    fn disk(&self) -> &Arc<Disk> {
        &self.disk
    }

    fn lookup(&self, key: Key) -> IndexResult<Option<Value>> {
        if !self.loaded {
            return Err(IndexError::NotInitialized);
        }
        let mut node = LippNode::load(&self.disk, self.file, self.root)?;
        loop {
            let slot = node.predict(key);
            match node.read_slot(&self.disk, slot)? {
                Slot::Null => return Ok(None),
                Slot::Data(k, v) => return Ok((k == key).then_some(v)),
                Slot::Child(b) => node = LippNode::load(&self.disk, self.file, b)?,
            }
        }
    }

    /// Batched lookups cache each routing node's decoded header for the
    /// duration of the batch: a sequential LIPP lookup pays a header read
    /// plus a slot read *per level*, and the header half is identical for
    /// every probe that traverses the same node (always true for the root).
    /// The slot reads — where the answers live — still go to the disk per
    /// probe, in sorted order so co-located probes hit the same slot blocks
    /// back to back. The traversal logic is otherwise byte-for-byte the
    /// sequential descent, so answers are identical.
    fn lookup_batch(&self, keys: &[Key], out: &mut Vec<Option<Value>>) -> IndexResult<()> {
        out.clear();
        if keys.is_empty() {
            return Ok(());
        }
        if !self.loaded {
            return Err(IndexError::NotInitialized);
        }
        out.resize(keys.len(), None);
        let mut order: Vec<u32> = (0..keys.len() as u32).collect();
        order.sort_unstable_by_key(|&i| keys[i as usize]);
        if self.disk.queue_depth() > 1 {
            return self.lookup_batch_queued(keys, &order, out);
        }
        let mut nodes: std::collections::HashMap<BlockId, LippNode> =
            std::collections::HashMap::new();
        for &i in &order {
            let key = keys[i as usize];
            let mut block = self.root;
            loop {
                if let std::collections::hash_map::Entry::Vacant(slot) = nodes.entry(block) {
                    slot.insert(LippNode::load(&self.disk, self.file, block)?);
                }
                let node = &nodes[&block];
                let slot = node.predict(key);
                match node.read_slot(&self.disk, slot)? {
                    Slot::Null => break,
                    Slot::Data(k, v) => {
                        out[i as usize] = (k == key).then_some(v);
                        break;
                    }
                    Slot::Child(child) => block = child,
                }
            }
        }
        Ok(())
    }

    fn scan(&self, start: Key, count: usize, out: &mut Vec<Entry>) -> IndexResult<usize> {
        out.clear();
        if !self.loaded {
            return Err(IndexError::NotInitialized);
        }
        if count == 0 {
            return Ok(0);
        }
        // Seed the traversal stack with the access path of `start`: every
        // ancestor resumes just after the slot we descended through.
        let mut stack: Vec<(LippNode, u32)> = Vec::new();
        let mut node = LippNode::load(&self.disk, self.file, self.root)?;
        loop {
            let slot = node.predict(start);
            match node.read_slot(&self.disk, slot)? {
                Slot::Child(b) => {
                    stack.push((node, slot + 1));
                    node = LippNode::load(&self.disk, self.file, b)?;
                }
                _ => {
                    stack.push((node, slot));
                    break;
                }
            }
        }

        // In-order traversal across the interleaved DATA / NODE slots — the
        // scattered accesses behind LIPP's poor scan performance (O5).
        'outer: while let Some((node, mut idx)) = stack.pop() {
            while idx < node.header.capacity {
                if out.len() >= count {
                    break 'outer;
                }
                match node.read_slot_scan(&self.disk, idx)? {
                    Slot::Null => {}
                    Slot::Data(k, v) => {
                        if k >= start {
                            out.push((k, v));
                        }
                    }
                    Slot::Child(b) => {
                        stack.push((node, idx + 1));
                        stack.push((LippNode::load_scan(&self.disk, self.file, b)?, 0));
                        continue 'outer;
                    }
                }
                idx += 1;
            }
        }
        Ok(out.len())
    }

    fn len(&self) -> u64 {
        self.key_count
    }

    fn stats(&self) -> IndexStats {
        IndexStats {
            keys: self.key_count,
            height: self.max_depth,
            inner_nodes: 0,
            leaf_nodes: self.node_count,
            smo_count: self.smo_count,
        }
    }
}

impl IndexWrite for LippIndex {
    fn bulk_load(&mut self, entries: &[Entry]) -> IndexResult<()> {
        if self.loaded {
            return Err(IndexError::AlreadyLoaded);
        }
        validate_bulk_load(entries)?;
        self.root = self.build_subtree(entries, 0)?;
        self.key_count = entries.len() as u64;
        self.loaded = true;
        Ok(())
    }

    fn insert(&mut self, key: Key, value: Value) -> IndexResult<()> {
        if !self.loaded {
            return Err(IndexError::NotInitialized);
        }
        let before = self.disk.snapshot();

        // Descend, remembering the path for the statistics maintenance pass.
        let mut path: Vec<(LippNode, u32)> = Vec::new();
        let mut node = LippNode::load(&self.disk, self.file, self.root)?;
        let outcome = loop {
            let slot = node.predict(key);
            match node.read_slot(&self.disk, slot)? {
                Slot::Child(b) => {
                    path.push((node, slot));
                    node = LippNode::load(&self.disk, self.file, b)?;
                }
                other => break (other, slot),
            }
        };
        let after_search = self.disk.snapshot();
        self.breakdown.add(InsertStep::Search, &after_search.since(&before));

        let (slot_content, slot) = outcome;
        let mut conflicted = false;
        match slot_content {
            Slot::Data(k, _) if k == key => {
                // Upsert: overwrite the payload in place.
                node.write_slot(&self.disk, slot, Slot::Data(key, value))?;
                let after_insert = self.disk.snapshot();
                self.breakdown.add(InsertStep::Insert, &after_insert.since(&after_search));
                self.breakdown.finish_insert();
                return Ok(());
            }
            Slot::Null => {
                node.write_slot(&self.disk, slot, Slot::Data(key, value))?;
                node.header.data_count += 1;
                let after_insert = self.disk.snapshot();
                self.breakdown.add(InsertStep::Insert, &after_insert.since(&after_search));
            }
            Slot::Data(k0, v0) => {
                // Conflict: push both keys into a freshly created child node
                // (LIPP's per-insert SMO, roughly one in three inserts, O7).
                conflicted = true;
                self.smo_count += 1;
                let telemetry = Arc::clone(&self.disk);
                let _span = telemetry.telemetry().span(OpClass::Smo);
                telemetry.telemetry().add(OpClass::Smo, 1);
                let mut pair = [(k0, v0), (key, value)];
                pair.sort_unstable_by_key(|e| e.0);
                let child = self.build_subtree(&pair, 0)?;
                node.write_slot(&self.disk, slot, Slot::Child(child))?;
                node.header.data_count -= 1;
                node.header.child_count += 1;
                let after_smo = self.disk.snapshot();
                self.breakdown.add(InsertStep::Smo, &after_smo.since(&after_search));
            }
            Slot::Child(_) => unreachable!("descent only stops at NULL or DATA slots"),
        }
        self.key_count += 1;

        // Maintenance: update the statistics of every node along the access
        // path (the paper calls out this full-path write cost for LIPP).
        let after_smo_or_insert = self.disk.snapshot();
        node.header.num_inserts += 1;
        if conflicted {
            node.header.num_conflicts += 1;
        }
        node.write_header(&self.disk)?;
        for (ancestor, _) in path.iter_mut() {
            ancestor.header.num_inserts += 1;
            if conflicted {
                ancestor.header.num_conflicts += 1;
            }
            ancestor.write_header(&self.disk)?;
        }
        let after_maintenance = self.disk.snapshot();
        self.breakdown.add(InsertStep::Maintenance, &after_maintenance.since(&after_smo_or_insert));

        // Subtree-rebuild SMO: find the highest node on the path whose
        // statistics demand a rebuild and rebuild it.
        let mut rebuild_target: Option<usize> = None;
        for (i, (n, _)) in path.iter().enumerate() {
            if self.should_rebuild(n) {
                rebuild_target = Some(i);
                break;
            }
        }
        let leaf_needs_rebuild = rebuild_target.is_none() && self.should_rebuild(&node);
        if let Some(i) = rebuild_target {
            let (target, _) = path[i].clone();
            let parent = if i == 0 { None } else { Some((&path[i - 1].0, path[i - 1].1)) };
            self.rebuild_subtree(&target, parent)?;
            let after_rebuild = self.disk.snapshot();
            self.breakdown.add(InsertStep::Smo, &after_rebuild.since(&after_maintenance));
        } else if leaf_needs_rebuild {
            let parent = path.last().map(|(p, s)| (p, *s));
            self.rebuild_subtree(&node, parent)?;
            let after_rebuild = self.disk.snapshot();
            self.breakdown.add(InsertStep::Smo, &after_rebuild.since(&after_maintenance));
        }

        self.breakdown.finish_insert();
        Ok(())
    }

    /// Batched inserts accumulate the per-node statistics (`num_inserts`,
    /// `num_conflicts`, slot counts) in an in-memory node cache and write
    /// each touched node's header **once per batch** instead of once per
    /// key per path level — the write-side counterpart of `lookup_batch`'s
    /// header caching, and the Fig. 6 maintenance cost LIPP pays worst of
    /// all designs. Slot writes (the actual data) still go to disk per
    /// entry, so the on-disk structure is never behind; only the statistics
    /// headers are deferred. A subtree rebuild first flushes every deferred
    /// header and drops the cache, so the rebuild (and any node re-load
    /// after it) always sees accurate on-disk statistics.
    fn insert_batch(&mut self, entries: &[Entry]) -> IndexResult<()> {
        if !self.loaded {
            return Err(IndexError::NotInitialized);
        }
        let mut nodes: std::collections::HashMap<BlockId, LippNode> =
            std::collections::HashMap::new();
        let mut dirty: std::collections::BTreeSet<BlockId> = std::collections::BTreeSet::new();

        for &(key, value) in entries {
            // Descend through the cache (in-memory headers authoritative).
            let before = self.disk.snapshot();
            let mut path: Vec<(BlockId, u32)> = Vec::new();
            let mut block = self.root;
            let (slot_content, slot, leaf) = loop {
                if let std::collections::hash_map::Entry::Vacant(e) = nodes.entry(block) {
                    e.insert(LippNode::load(&self.disk, self.file, block)?);
                }
                let node = &nodes[&block];
                let slot = node.predict(key);
                match node.read_slot(&self.disk, slot)? {
                    Slot::Child(b) => {
                        path.push((block, slot));
                        block = b;
                    }
                    other => break (other, slot, block),
                }
            };
            let after_search = self.disk.snapshot();
            self.breakdown.add(InsertStep::Search, &after_search.since(&before));

            let mut conflicted = false;
            match slot_content {
                Slot::Data(k, _) if k == key => {
                    // Upsert in place: no statistics change.
                    nodes[&leaf].write_slot(&self.disk, slot, Slot::Data(key, value))?;
                    self.breakdown
                        .add(InsertStep::Insert, &self.disk.snapshot().since(&after_search));
                    self.breakdown.finish_insert();
                    continue;
                }
                Slot::Null => {
                    nodes[&leaf].write_slot(&self.disk, slot, Slot::Data(key, value))?;
                    nodes.get_mut(&leaf).expect("cached").header.data_count += 1;
                    self.breakdown
                        .add(InsertStep::Insert, &self.disk.snapshot().since(&after_search));
                }
                Slot::Data(k0, v0) => {
                    conflicted = true;
                    self.smo_count += 1;
                    let telemetry = Arc::clone(&self.disk);
                    let _span = telemetry.telemetry().span(OpClass::Smo);
                    telemetry.telemetry().add(OpClass::Smo, 1);
                    let mut pair = [(k0, v0), (key, value)];
                    pair.sort_unstable_by_key(|e| e.0);
                    let child = self.build_subtree(&pair, 0)?;
                    nodes[&leaf].write_slot(&self.disk, slot, Slot::Child(child))?;
                    let header = &mut nodes.get_mut(&leaf).expect("cached").header;
                    header.data_count -= 1;
                    header.child_count += 1;
                    self.breakdown.add(InsertStep::Smo, &self.disk.snapshot().since(&after_search));
                }
                Slot::Child(_) => unreachable!("descent only stops at NULL or DATA slots"),
            }
            self.key_count += 1;

            // Maintenance, deferred: bump the statistics of the leaf and
            // every ancestor in memory only.
            for &(b, _) in path.iter().chain(std::iter::once(&(leaf, 0))) {
                let header = &mut nodes.get_mut(&b).expect("cached").header;
                header.num_inserts += 1;
                if conflicted {
                    header.num_conflicts += 1;
                }
                dirty.insert(b);
            }

            // Subtree-rebuild check against the (accurate) in-memory stats.
            let mut rebuild_target: Option<usize> = None;
            for (i, &(b, _)) in path.iter().enumerate() {
                if self.should_rebuild(&nodes[&b]) {
                    rebuild_target = Some(i);
                    break;
                }
            }
            let leaf_needs_rebuild = rebuild_target.is_none() && self.should_rebuild(&nodes[&leaf]);
            if rebuild_target.is_some() || leaf_needs_rebuild {
                // Flush every deferred header before restructuring, then
                // drop the cache: the rebuild frees blocks that may be
                // re-allocated, so no stale handle may survive it.
                self.flush_dirty_headers(&nodes, &mut dirty)?;
                let before_rebuild = self.disk.snapshot();
                if let Some(i) = rebuild_target {
                    let target = nodes[&path[i].0].clone();
                    let parent = if i == 0 {
                        None
                    } else {
                        Some((nodes[&path[i - 1].0].clone(), path[i - 1].1))
                    };
                    self.rebuild_subtree(&target, parent.as_ref().map(|(p, s)| (p, *s)))?;
                } else {
                    let target = nodes[&leaf].clone();
                    let parent = path.last().map(|&(b, s)| (nodes[&b].clone(), s));
                    self.rebuild_subtree(&target, parent.as_ref().map(|(p, s)| (p, *s)))?;
                }
                nodes.clear();
                self.breakdown.add(InsertStep::Smo, &self.disk.snapshot().since(&before_rebuild));
            }
            self.breakdown.finish_insert();
        }
        self.flush_dirty_headers(&nodes, &mut dirty)
    }

    fn insert_breakdown(&self) -> InsertBreakdown {
        self.breakdown
    }

    fn save_meta(&mut self) -> IndexResult<Vec<u8>> {
        // Node blocks (headers included — `flush_dirty_headers` runs before
        // any batch returns) are written eagerly, so the handle's plain
        // fields are the whole state.
        let mut w = MetaWriter::new();
        w.u32(self.file)
            .u32(self.root)
            .u64(self.key_count)
            .u64(self.node_count)
            .u32(self.max_depth)
            .u64(self.smo_count);
        Ok(w.finish())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lidx_storage::{BlockKind, DiskConfig};

    fn index() -> LippIndex {
        let disk = Disk::in_memory(DiskConfig::with_block_size(512));
        LippIndex::new(disk).unwrap()
    }

    fn uniformish(n: u64) -> Vec<Entry> {
        (0..n).map(|i| (i * 97 + 13, i)).collect()
    }

    fn clustered(n: u64) -> Vec<Entry> {
        let mut keys: Vec<u64> = (0..n).map(|i| (i / 50) * 1_000_000 + (i % 50) * 3).collect();
        keys.sort_unstable();
        keys.dedup();
        keys.into_iter().map(|k| (k, k + 1)).collect()
    }

    #[test]
    fn bulk_load_and_lookup_uniform() {
        let mut l = index();
        let data = uniformish(20_000);
        l.bulk_load(&data).unwrap();
        assert_eq!(l.len(), 20_000);
        for &(k, v) in data.iter().step_by(487) {
            assert_eq!(l.lookup(k).unwrap(), Some(v), "key {k}");
        }
        assert_eq!(l.lookup(14).unwrap(), None);
        assert_eq!(l.lookup(u64::MAX).unwrap(), None);
    }

    #[test]
    fn bulk_load_and_lookup_clustered_builds_children() {
        let mut l = index();
        let data = clustered(10_000);
        l.bulk_load(&data).unwrap();
        assert!(l.node_count() > 1, "clustered data must force child nodes");
        assert!(l.stats().height > 1);
        for &(k, v) in data.iter().step_by(311) {
            assert_eq!(l.lookup(k).unwrap(), Some(v), "key {k}");
        }
    }

    #[test]
    fn lookup_io_is_two_blocks_per_level() {
        let mut l = index();
        let data = uniformish(50_000);
        l.bulk_load(&data).unwrap();
        l.disk().stats().reset();
        let queries: Vec<Key> = data.iter().step_by(977).map(|e| e.0).collect();
        for &k in &queries {
            l.disk().reset_access_state();
            l.lookup(k).unwrap();
        }
        let per_query = l.disk().stats().reads() as f64 / queries.len() as f64;
        let height = l.stats().height as f64;
        assert!(
            per_query <= 2.0 * height + 1.0,
            "lookup cost {per_query} exceeds 2·height = {}",
            2.0 * height
        );
        assert!(per_query >= 1.5, "header + slot blocks are usually distinct");
    }

    #[test]
    fn inserts_create_children_on_conflict_and_survive() {
        let mut l = index();
        let data: Vec<Entry> = (0..2_000u64).map(|i| (i * 40, i)).collect();
        l.bulk_load(&data).unwrap();
        let nodes_before = l.node_count();
        for i in 0..2_000u64 {
            l.insert(i * 40 + 7, i).unwrap();
        }
        assert_eq!(l.len(), 4_000);
        assert!(l.stats().smo_count > 0, "conflicts must have created child nodes");
        assert!(l.node_count() > nodes_before);
        for i in (0..2_000u64).step_by(173) {
            assert_eq!(l.lookup(i * 40 + 7).unwrap(), Some(i), "inserted key");
            assert_eq!(l.lookup(i * 40).unwrap(), Some(i), "bulk key");
        }
    }

    #[test]
    fn lookup_batch_matches_sequential_and_caches_headers() {
        let mut l = index();
        let data = clustered(10_000);
        l.bulk_load(&data).unwrap();
        let probes: Vec<Key> = data
            .iter()
            .step_by(53)
            .map(|&(k, _)| k)
            .chain([0, u64::MAX, data[100].0, data[100].0, data[100].0 + 1])
            .rev()
            .collect();
        let mut batched = Vec::new();
        l.lookup_batch(&probes, &mut batched).unwrap();
        assert_eq!(batched.len(), probes.len());
        for (i, &p) in probes.iter().enumerate() {
            assert_eq!(batched[i], l.lookup(p).unwrap(), "probe {p}");
        }

        // Batched probes read each routing node's header once for the whole
        // batch instead of once per key, so the read count must shrink.
        let run: Vec<Key> = data.iter().step_by(19).map(|&(k, _)| k).collect();
        l.disk().stats().reset();
        l.disk().reset_access_state();
        l.lookup_batch(&run, &mut batched).unwrap();
        let batch_reads = l.disk().stats().reads();
        l.disk().stats().reset();
        l.disk().reset_access_state();
        for &k in &run {
            l.lookup(k).unwrap();
        }
        let seq_reads = l.disk().stats().reads();
        assert!(
            batch_reads < seq_reads,
            "batched reads ({batch_reads}) must amortise sequential reads ({seq_reads})"
        );

        // Inserted keys (including conflict children) stay visible.
        for i in 0..300u64 {
            l.insert(data[i as usize * 7].0 + 1, i).unwrap();
        }
        let probes2: Vec<Key> = (0..300u64).map(|i| data[i as usize * 7].0 + 1).collect();
        l.lookup_batch(&probes2, &mut batched).unwrap();
        for (i, &p) in probes2.iter().enumerate() {
            assert_eq!(batched[i], l.lookup(p).unwrap(), "post-insert probe {p}");
        }

        l.lookup_batch(&[], &mut batched).unwrap();
        assert!(batched.is_empty());
        let fresh = index();
        assert!(fresh.lookup_batch(&[1], &mut batched).is_err());
    }

    #[test]
    fn queued_lookup_batch_matches_depth_one_answers_and_overlaps_io() {
        use lidx_storage::DeviceModel;
        let data = clustered(10_000);
        let mut probes: Vec<Key> = data.iter().step_by(13).map(|&(k, _)| k).collect();
        probes.extend([0, u64::MAX, data[100].0 + 1]);
        probes.reverse();

        let config =
            || DiskConfig::with_block_size(512).device(DeviceModel::ssd()).buffer_blocks(64);
        let mut sync_lipp = LippIndex::new(Disk::in_memory(config())).unwrap();
        sync_lipp.bulk_load(&data).unwrap();
        let mut expected = Vec::new();
        sync_lipp.disk().stats().reset();
        sync_lipp.lookup_batch(&probes, &mut expected).unwrap();
        let sync_ns = sync_lipp.disk().stats().device_ns();

        let mut queued_lipp = LippIndex::new(Disk::in_memory(config().queue_depth(8))).unwrap();
        queued_lipp.bulk_load(&data).unwrap();
        let mut got = Vec::new();
        queued_lipp.disk().stats().reset();
        queued_lipp.lookup_batch(&probes, &mut got).unwrap();
        let queued_ns = queued_lipp.disk().stats().device_ns();

        assert_eq!(got, expected, "queue depth must never change the answers");
        assert!(
            queued_ns * 2 < sync_ns,
            "depth-8 level waves ({queued_ns} ns) must overlap the depth-1 cost ({sync_ns} ns)"
        );
        assert!(queued_lipp.disk().stats().overlap_saved_ns() > 0);
        assert!(queued_lipp.disk().stats().max_inflight() > 1);
    }

    #[test]
    fn upsert_overwrites_in_place() {
        let mut l = index();
        l.bulk_load(&uniformish(1_000)).unwrap();
        l.insert(13, 999).unwrap();
        assert_eq!(l.lookup(13).unwrap(), Some(999));
        assert_eq!(l.len(), 1_000);
    }

    #[test]
    fn maintenance_updates_touch_the_whole_path() {
        let mut l = index();
        let data = clustered(5_000);
        l.bulk_load(&data).unwrap();
        // Insert keys into an existing cluster (deep in the tree).
        let probe_base = data[2_500].0;
        let before = l.disk().snapshot();
        l.insert(probe_base + 1, 1).unwrap();
        let delta = l.disk().snapshot().since(&before);
        assert!(
            delta.writes_of(BlockKind::Leaf) >= 2,
            "insert must write the slot and at least one statistics header"
        );
        let b = l.insert_breakdown();
        assert!(b.writes(lidx_core::InsertStep::Maintenance) >= 1);
    }

    #[test]
    fn scan_boundary_cases_match_oracle() {
        let mut t = index();
        let data = uniformish(1_200);
        t.bulk_load(&data).unwrap();
        let mut out = Vec::new();

        // count == 0 returns nothing and clears `out`.
        out.push((1, 1));
        assert_eq!(t.scan(data[0].0, 0, &mut out).unwrap(), 0);
        assert!(out.is_empty());

        // Starts above the maximum stored key return nothing.
        let max_key = data.last().unwrap().0;
        for start in [max_key + 1, u64::MAX] {
            assert_eq!(t.scan(start, 10, &mut out).unwrap(), 0, "scan from {start}");
            assert!(out.is_empty());
        }

        // Scanning from every stored key covers every block / segment / node
        // boundary; each result must match the oracle slice exactly.
        for (i, &(k, _)) in data.iter().enumerate() {
            let n = t.scan(k, 5, &mut out).unwrap();
            let expected: Vec<Entry> = data[i..].iter().take(5).copied().collect();
            assert_eq!(n, expected.len(), "scan length from key {k}");
            assert_eq!(out, expected, "scan contents from key {k}");
        }
    }

    #[test]
    fn scan_returns_sorted_entries_across_nodes() {
        let mut l = index();
        let data = clustered(8_000);
        l.bulk_load(&data).unwrap();
        let start_idx = 3_456;
        let mut out = Vec::new();
        let n = l.scan(data[start_idx].0, 400, &mut out).unwrap();
        assert_eq!(n, 400);
        assert_eq!(out[0], data[start_idx]);
        assert_eq!(out[399], data[start_idx + 399]);
        assert!(out.windows(2).all(|w| w[0].0 < w[1].0));

        // Scans see inserted keys too.
        l.insert(data[start_idx].0 + 1, 42).unwrap();
        l.scan(data[start_idx].0, 3, &mut out).unwrap();
        assert_eq!(out[1], (data[start_idx].0 + 1, 42));
    }

    #[test]
    fn heavy_local_inserts_trigger_subtree_rebuilds() {
        let disk = Disk::in_memory(DiskConfig::with_block_size(512));
        let mut l = LippIndex::with_config(
            disk,
            LippConfig { rebuild_insert_factor: 0.5, ..Default::default() },
        )
        .unwrap();
        let data: Vec<Entry> = (0..500u64).map(|i| (i * 1_000, i)).collect();
        l.bulk_load(&data).unwrap();
        // Hammer one region so conflicts accumulate and a rebuild triggers.
        for i in 0..3_000u64 {
            l.insert(100_000 + i * 7, i).unwrap();
        }
        assert!(l.stats().smo_count > 100);
        for i in (0..3_000u64).step_by(211) {
            assert_eq!(l.lookup(100_000 + i * 7).unwrap(), Some(i));
        }
        // Everything still reachable after rebuilds.
        let mut out = Vec::new();
        let total = l.scan(0, 10_000, &mut out).unwrap();
        assert_eq!(total as u64, l.len());
        assert!(out.windows(2).all(|w| w[0].0 < w[1].0));
    }

    #[test]
    fn insert_batch_matches_sequential_semantics() {
        let mut batched = index();
        let mut sequential = index();
        let data = clustered(4_000);
        batched.bulk_load(&data).unwrap();
        sequential.bulk_load(&data).unwrap();

        // Fresh keys (conflict-heavy), upserts of bulk keys, an in-batch
        // duplicate whose later value must win, and an unsorted tail.
        let mut batch: Vec<Entry> =
            (0..600u64).map(|i| (data[(i * 5) as usize].0 + 1, i)).collect();
        batch.push((data[7].0, 7_000));
        batch.push((data[7].0 + 1, 1));
        batch.push((data[7].0 + 1, 2)); // later duplicate wins
        batch.push((5, 55));
        batch.push((u64::MAX - 3, 3));
        batch.push((0, 11));

        let before = batched.insert_breakdown();
        batched.insert_batch(&batch).unwrap();
        let delta = batched.insert_breakdown().since(&before);
        assert_eq!(delta.inserts, batch.len() as u64);
        for &(k, v) in &batch {
            sequential.insert(k, v).unwrap();
        }

        assert_eq!(batched.len(), sequential.len());
        for &(k, _) in &batch {
            assert_eq!(batched.lookup(k).unwrap(), sequential.lookup(k).unwrap(), "key {k}");
        }
        assert_eq!(batched.lookup(data[7].0 + 1).unwrap(), Some(2), "later duplicate wins");
        let (mut b_out, mut s_out) = (Vec::new(), Vec::new());
        batched.scan(0, 6_000, &mut b_out).unwrap();
        sequential.scan(0, 6_000, &mut s_out).unwrap();
        assert_eq!(b_out, s_out, "full scans agree");
    }

    #[test]
    fn insert_batch_writes_each_touched_header_once() {
        let mut l = index();
        let data = clustered(5_000);
        l.bulk_load(&data).unwrap();
        // Keys landing in one deep cluster: a sequential insert pays a header
        // write per path level per key; the batch pays one per touched node.
        let base = data[2_500].0;
        let batch: Vec<Entry> = (0..128u64).map(|i| (base + 2 * i + 1, i)).collect();
        let before_b = l.insert_breakdown();
        let before = l.disk().snapshot();
        l.insert_batch(&batch).unwrap();
        let delta = l.insert_breakdown().since(&before_b);
        let maint = delta.writes(lidx_core::InsertStep::Maintenance);
        assert!(
            maint > 0 && maint < batch.len() as u64,
            "maintenance header writes ({maint}) must undercut one-per-key ({})",
            batch.len()
        );
        let io = l.disk().snapshot().since(&before);
        assert!(io.writes_of(BlockKind::Leaf) > 0);
        for &(k, v) in &batch {
            assert_eq!(l.lookup(k).unwrap(), Some(v), "key {k}");
        }
    }

    #[test]
    fn insert_batch_rebuilds_subtrees_mid_batch() {
        let disk = Disk::in_memory(DiskConfig::with_block_size(512));
        let mut l = LippIndex::with_config(
            disk,
            LippConfig { rebuild_insert_factor: 0.5, ..Default::default() },
        )
        .unwrap();
        let data: Vec<Entry> = (0..500u64).map(|i| (i * 1_000, i)).collect();
        l.bulk_load(&data).unwrap();
        // Same hammering as the sequential rebuild test, one batch: conflicts
        // accumulate in the cached headers and must trigger rebuilds mid-batch.
        let batch: Vec<Entry> = (0..3_000u64).map(|i| (100_000 + i * 7, i)).collect();
        l.insert_batch(&batch).unwrap();
        assert!(l.stats().smo_count > 100, "rebuilds must fire inside the batch");
        for i in (0..3_000u64).step_by(211) {
            assert_eq!(l.lookup(100_000 + i * 7).unwrap(), Some(i));
        }
        let mut out = Vec::new();
        let total = l.scan(0, 10_000, &mut out).unwrap();
        assert_eq!(total as u64, l.len());
        assert!(out.windows(2).all(|w| w[0].0 < w[1].0));
    }

    #[test]
    fn error_paths_and_empty_load() {
        let mut l = index();
        assert!(matches!(l.lookup(1), Err(IndexError::NotInitialized)));
        l.bulk_load(&[]).unwrap();
        assert_eq!(l.lookup(1).unwrap(), None);
        for i in 0..200u64 {
            l.insert(i * 3, i).unwrap();
        }
        assert_eq!(l.len(), 200);
        for i in (0..200u64).step_by(13) {
            assert_eq!(l.lookup(i * 3).unwrap(), Some(i));
        }
        assert!(matches!(l.bulk_load(&[(1, 1)]), Err(IndexError::AlreadyLoaded)));
    }
}
