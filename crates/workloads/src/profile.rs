//! Dataset profiling (Table 3 of the paper).
//!
//! For each dataset the paper reports how many ε-bounded piecewise-linear
//! segments are needed at several error bounds, how many leaf nodes an
//! on-disk B+-tree would use at a 4 KB block size, and the conflict degree of
//! the best FMCD linear model — the two learned-index difficulty metrics.

use lidx_core::Key;
use lidx_models::fmcd::fit_fmcd;
use lidx_models::pla::segment_keys;

/// The error bounds profiled in Table 3.
pub const TABLE3_ERROR_BOUNDS: [usize; 4] = [16, 64, 256, 1024];

/// The profiling metrics of one dataset.
#[derive(Debug, Clone, PartialEq)]
pub struct DatasetProfile {
    /// Number of keys profiled.
    pub keys: usize,
    /// `(error bound, segment count)` pairs.
    pub segments: Vec<(usize, usize)>,
    /// Number of B+-tree leaf nodes at the given block size and a 0.8 fill
    /// factor (the paper's ~204 entries per 4 KB leaf).
    pub btree_leaves: usize,
    /// Conflict degree of the best FMCD model over `2 · keys` slots.
    pub conflict_degree: usize,
}

/// Profiles a sorted key set, reproducing the Table 3 metrics.
pub fn profile_dataset(keys: &[Key], error_bounds: &[usize], block_size: usize) -> DatasetProfile {
    let segments = error_bounds.iter().map(|&eps| (eps, segment_keys(keys, eps).len())).collect();
    let entries_per_leaf = ((block_size.saturating_sub(16)) / 16).max(1);
    let per_leaf = ((entries_per_leaf as f64) * 0.8) as usize;
    let btree_leaves = keys.len().div_ceil(per_leaf.max(1));
    let conflict_degree =
        if keys.is_empty() { 0 } else { fit_fmcd(keys, keys.len() * 2).conflict_degree };
    DatasetProfile { keys: keys.len(), segments, btree_leaves, conflict_degree }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dataset::Dataset;

    #[test]
    fn profile_reports_all_requested_error_bounds() {
        let keys = Dataset::Ycsb.generate_keys(20_000, 3);
        let p = profile_dataset(&keys, &TABLE3_ERROR_BOUNDS, 4096);
        assert_eq!(p.segments.len(), 4);
        assert_eq!(p.keys, keys.len());
        // More generous error bounds never need more segments.
        for w in p.segments.windows(2) {
            assert!(w[0].1 >= w[1].1, "segments must not grow with epsilon: {:?}", p.segments);
        }
        // ~204 entries per 4 KB leaf at 0.8 fill.
        assert!(p.btree_leaves >= keys.len() / 210 && p.btree_leaves <= keys.len() / 190);
        assert!(p.conflict_degree >= 1);
    }

    #[test]
    fn fb_is_harder_than_ycsb_and_osm_conflicts_most() {
        let n = 30_000;
        let ycsb = profile_dataset(&Dataset::Ycsb.generate_keys(n, 1), &[64], 4096);
        let fb = profile_dataset(&Dataset::Fb.generate_keys(n, 1), &[64], 4096);
        let osm = profile_dataset(&Dataset::Osm.generate_keys(n, 1), &[64], 4096);
        assert!(fb.segments[0].1 > ycsb.segments[0].1 * 4);
        assert!(osm.conflict_degree > ycsb.conflict_degree * 10);
        // The B+-tree leaf count only depends on the key count, mirroring the
        // constant row of Table 3.
        assert_eq!(
            ycsb.btree_leaves,
            profile_dataset(&Dataset::Stack.generate_keys(n, 1), &[64], 4096)
                .btree_leaves
                .max(ycsb.btree_leaves)
                .min(ycsb.btree_leaves + 2)
        );
    }

    #[test]
    fn empty_input_is_handled() {
        let p = profile_dataset(&[], &[16, 64], 4096);
        assert_eq!(p.conflict_degree, 0);
        assert_eq!(p.segments, vec![(16, 0), (64, 0)]);
    }
}
