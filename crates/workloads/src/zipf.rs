//! A scrambled-zipfian rank sampler for hot-key serving workloads.
//!
//! YCSB's serving workloads draw keys from a bounded zipfian distribution
//! and then *scramble* the ranks over the key population, so per-key skew
//! (a few keys absorb most of the traffic) is preserved while the hot keys
//! scatter uniformly over the keyspace — the realistic shape for a
//! range-sharded serving tier, where hotness should not pile onto a single
//! contiguous range by construction. [`ScrambledZipfian`] reproduces that
//! generator deterministically: the caller feeds it uniform `f64` draws
//! (e.g. from a splitmix64 stream) and receives population positions.

/// A bounded zipfian sampler over ranks `0..n`, with a fixed scrambling
/// permutation mapping ranks to population positions.
///
/// The inverse-CDF approximation is the classic Gray et al. "quickly
/// generating billion-record synthetic databases" construction (the one
/// YCSB uses): `zeta(n, theta)` is precomputed once in `O(n)`, after which
/// each sample is `O(1)`.
///
/// # Example
///
/// ```
/// use lidx_workloads::zipf::ScrambledZipfian;
///
/// let z = ScrambledZipfian::new(1_000, 0.99);
/// let hot = z.position(0.0005); // a very low u maps to the hottest rank
/// assert!(hot < 1_000);
/// assert_eq!(z.position(0.0005), hot, "deterministic");
/// ```
#[derive(Debug, Clone)]
pub struct ScrambledZipfian {
    n: u64,
    theta: f64,
    alpha: f64,
    zeta_n: f64,
    eta: f64,
}

/// The scrambling multiplier: a prime larger than any supported population
/// (so it is coprime with `n` and `rank * PRIME mod n` is a permutation),
/// small enough that `u128` intermediate products never overflow.
const SCRAMBLE_PRIME: u64 = 2_654_435_761;

impl ScrambledZipfian {
    /// Builds a sampler over ranks `0..n` with skew `theta` (YCSB default
    /// 0.99; must be in `(0, 1)`). `O(n)` zeta precomputation.
    ///
    /// # Panics
    ///
    /// If `n` is zero or at least the scramble prime (2 654 435 761), or
    /// `theta` is outside `(0, 1)`.
    pub fn new(n: usize, theta: f64) -> Self {
        assert!(n > 0, "zipfian population must be non-empty");
        assert!((n as u64) < SCRAMBLE_PRIME, "population too large to scramble");
        assert!(theta > 0.0 && theta < 1.0, "theta must be in (0, 1)");
        let zeta_n: f64 = (1..=n as u64).map(|i| 1.0 / (i as f64).powf(theta)).sum();
        let zeta_2 = 1.0 + 0.5f64.powf(theta);
        let alpha = 1.0 / (1.0 - theta);
        let eta = (1.0 - (2.0 / n as f64).powf(1.0 - theta)) / (1.0 - zeta_2 / zeta_n);
        ScrambledZipfian { n: n as u64, theta, alpha, zeta_n, eta }
    }

    /// Population size.
    pub fn len(&self) -> usize {
        self.n as usize
    }

    /// Always false ([`new`](Self::new) rejects an empty population);
    /// provided for clippy's `len`-without-`is_empty` convention.
    pub fn is_empty(&self) -> bool {
        false
    }

    /// Maps one uniform draw `u` in `[0, 1)` to a zipfian *rank*: rank 0 is
    /// the hottest, with `P(rank = r) ∝ 1 / (r + 1)^theta`.
    pub fn rank(&self, u: f64) -> usize {
        let u = u.clamp(0.0, 1.0 - f64::EPSILON);
        let uz = u * self.zeta_n;
        if uz < 1.0 {
            return 0;
        }
        if uz < 1.0 + 0.5f64.powf(self.theta) {
            return 1;
        }
        let r = (self.n as f64 * (self.eta * u - self.eta + 1.0).powf(self.alpha)) as u64;
        r.min(self.n - 1) as usize
    }

    /// Maps one uniform draw to a *scrambled* population position: the
    /// zipfian rank pushed through a fixed permutation of `0..n`, so the
    /// hot ranks scatter over the whole population.
    pub fn position(&self, u: f64) -> usize {
        self.scramble(self.rank(u))
    }

    /// The fixed rank → position permutation (multiplication by a prime
    /// coprime with `n`, modulo `n`).
    pub fn scramble(&self, rank: usize) -> usize {
        ((rank as u128 * SCRAMBLE_PRIME as u128) % self.n as u128) as usize
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The splitmix64 step, duplicated here so the tests can drive the
    /// sampler exactly like the experiment runner does.
    fn splitmix64(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    fn uniform(state: &mut u64) -> f64 {
        (splitmix64(state) >> 11) as f64 / (1u64 << 53) as f64
    }

    #[test]
    fn ranks_are_heavily_skewed_toward_zero() {
        let z = ScrambledZipfian::new(100_000, 0.99);
        let mut rng = 7u64;
        let draws = 50_000;
        let mut head = 0usize;
        let mut rank0 = 0usize;
        for _ in 0..draws {
            let r = z.rank(uniform(&mut rng));
            assert!(r < 100_000);
            if r == 0 {
                rank0 += 1;
            }
            if r < 1_000 {
                head += 1;
            }
        }
        // With theta = 0.99 over 100k ranks, the top 1% of ranks carry well
        // over half the mass and rank 0 alone several percent.
        assert!(head * 2 > draws, "top 1% got {head}/{draws}");
        assert!(rank0 * 50 > draws, "rank 0 got {rank0}/{draws}");
    }

    #[test]
    fn scramble_is_a_permutation_that_spreads_hot_ranks() {
        let n = 10_000;
        let z = ScrambledZipfian::new(n, 0.9);
        let mut seen = vec![false; n];
        for r in 0..n {
            let p = z.scramble(r);
            assert!(!seen[p], "position {p} hit twice");
            seen[p] = true;
        }
        // The ten hottest ranks must not land in one contiguous hot range.
        let hot: Vec<usize> = (0..10).map(|r| z.scramble(r)).collect();
        let (lo, hi) = (hot.iter().min().unwrap(), hot.iter().max().unwrap());
        assert!(hi - lo > n / 2, "hot ranks clustered in [{lo}, {hi}]");
    }

    #[test]
    fn positions_are_deterministic_for_a_given_draw() {
        let z = ScrambledZipfian::new(1_000, 0.99);
        for &u in &[0.0, 0.1, 0.5, 0.9, 0.999_999] {
            assert_eq!(z.position(u), z.position(u));
        }
    }
}
