//! Datasets, workloads and dataset profiling for the evaluation harness.
//!
//! The paper evaluates eleven SOSD-derived datasets (200 M keys each) and six
//! workload types (§5.1–§5.2). We do not ship the original datasets; instead
//! [`dataset::Dataset`] provides synthetic generators tuned so that the
//! *difficulty ordering* of Table 3 — piecewise-linear segment counts under a
//! given error bound, and the LIPP conflict degree — is preserved. Every
//! generator is deterministic given a seed and scales to any key count.
//!
//! [`workload`] builds the six workload types with the paper's mix ratios,
//! and [`profile`] reproduces the Table 3 profiling metrics for any dataset.

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod dataset;
pub mod profile;
pub mod workload;
pub mod zipf;

pub use dataset::Dataset;
pub use profile::{profile_dataset, DatasetProfile};
pub use workload::{Op, Workload, WorkloadKind, WorkloadSpec};
pub use zipf::ScrambledZipfian;
