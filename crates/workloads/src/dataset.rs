//! Synthetic stand-ins for the paper's eleven datasets.
//!
//! Each generator is shaped so that the two difficulty metrics the paper uses
//! (Table 3) rank the datasets the same way as the real data:
//!
//! * **Piecewise-linear hardness** — how many ε-bounded segments are needed —
//!   is driven by how irregular the gaps between consecutive keys are.
//!   `Fb`-like data has heavy-tailed gaps with occasional huge jumps (hardest
//!   for FITing/PGM/ALEX), `Ycsb`/`Stack`-like data has nearly uniform gaps
//!   (easiest).
//! * **Conflict degree** — how many keys the best FMCD linear model maps to
//!   one slot — is driven by clustering. `Osm`-like data is built from dense
//!   clusters separated by huge empty ranges (hardest for LIPP), `Planet` and
//!   `Genome` are nearly conflict-free.

use lidx_core::{payload_for, Entry, Key};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// The datasets of §5.1, as synthetic generators.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Dataset {
    /// Uniform random keys (the easiest dataset in both metrics).
    Ycsb,
    /// Heavy-tailed gaps with rare huge jumps (hardest to model linearly).
    Fb,
    /// Multi-scale clusters separated by wide gaps (highest conflict degree).
    Osm,
    /// Mildly bursty timestamps.
    Covid,
    /// Bursty timestamps with daily plateaus.
    History,
    /// Many medium-sized runs with irregular spacing.
    Genome,
    /// Moderately irregular gaps.
    Libio,
    /// Nearly regular grid with occasional jumps.
    Planet,
    /// Near-uniform gaps (easy).
    Stack,
    /// Mild clustering.
    Wise,
    /// The OSM generator at 4× the requested size (the paper's 800 M-key
    /// scalability dataset).
    Osm800,
}

impl Dataset {
    /// All datasets, in the order Table 3 lists them.
    pub const ALL: [Dataset; 11] = [
        Dataset::Ycsb,
        Dataset::Fb,
        Dataset::Osm,
        Dataset::Covid,
        Dataset::History,
        Dataset::Genome,
        Dataset::Libio,
        Dataset::Planet,
        Dataset::Stack,
        Dataset::Wise,
        Dataset::Osm800,
    ];

    /// The three representative datasets the paper's figures focus on.
    pub const REPRESENTATIVE: [Dataset; 3] = [Dataset::Fb, Dataset::Osm, Dataset::Ycsb];

    /// Lowercase name used in experiment output.
    pub fn name(self) -> &'static str {
        match self {
            Dataset::Ycsb => "ycsb",
            Dataset::Fb => "fb",
            Dataset::Osm => "osm",
            Dataset::Covid => "covid",
            Dataset::History => "history",
            Dataset::Genome => "genome",
            Dataset::Libio => "libio",
            Dataset::Planet => "planet",
            Dataset::Stack => "stack",
            Dataset::Wise => "wise",
            Dataset::Osm800 => "osm800",
        }
    }

    /// Parses a dataset name.
    pub fn from_name(name: &str) -> Option<Dataset> {
        Dataset::ALL.iter().copied().find(|d| d.name() == name)
    }

    /// Generates approximately `n` strictly-increasing keys (duplicates from
    /// the random process are removed, so the exact count can be slightly
    /// smaller). Deterministic for a given `seed`.
    pub fn generate_keys(self, n: usize, seed: u64) -> Vec<Key> {
        let mut rng = StdRng::seed_from_u64(seed ^ (self as u64) << 32);
        let mut keys: Vec<Key> = match self {
            Dataset::Ycsb => (0..n).map(|_| rng.gen::<u64>() >> 1).collect(),
            Dataset::Stack => {
                // Near-uniform gaps with small noise.
                gaps(n, &mut rng, |rng| 1_000 + rng.gen_range(0..200))
            }
            Dataset::Planet => {
                // Regular grid with occasional medium jumps.
                gaps(n, &mut rng, |rng| {
                    if rng.gen_ratio(1, 50) {
                        rng.gen_range(50_000..100_000)
                    } else {
                        2_000 + rng.gen_range(0..50)
                    }
                })
            }
            Dataset::Wise => {
                // Mild clustering: short dense runs, moderate jumps between.
                clustered(n, &mut rng, 200, 1..80, 10_000..200_000)
            }
            Dataset::Covid => {
                // Bursty timestamps: exponential-ish gaps.
                gaps(n, &mut rng, |rng| exp_gap(rng, 3_000.0) + 1)
            }
            Dataset::History => {
                // Plateaus of dense activity separated by larger pauses.
                clustered(n, &mut rng, 500, 1..40, 100_000..400_000)
            }
            Dataset::Libio => {
                // Irregular medium gaps with a mild heavy tail.
                gaps(n, &mut rng, |rng| {
                    let base = exp_gap(rng, 5_000.0) + 1;
                    if rng.gen_ratio(1, 200) {
                        base + rng.gen_range(1_000_000..5_000_000)
                    } else {
                        base
                    }
                })
            }
            Dataset::Genome => {
                // Many loci runs: small gaps with frequent medium jumps.
                gaps(n, &mut rng, |rng| {
                    if rng.gen_ratio(1, 10) {
                        rng.gen_range(100_000..1_000_000)
                    } else {
                        rng.gen_range(1..500)
                    }
                })
            }
            Dataset::Fb => {
                // Heavy tail: lognormal-like gaps plus rare enormous jumps.
                gaps(n, &mut rng, |rng| {
                    let ln = lognormal_gap(rng, 6.0, 2.5);
                    if rng.gen_ratio(1, 1_000) {
                        ln + rng.gen_range(1u64 << 36..1u64 << 40)
                    } else {
                        ln + 1
                    }
                })
            }
            Dataset::Osm | Dataset::Osm800 => {
                let count = if self == Dataset::Osm800 { n * 4 } else { n };
                // Multi-scale clusters: very dense runs inside cells, cells
                // spread over an enormous key space.
                clustered(count, &mut rng, 4_000, 1..8, 1u64 << 34..1u64 << 38)
            }
        };
        keys.sort_unstable();
        keys.dedup();
        keys
    }

    /// Generates approximately `n` entries `(key, key + 1)`, the payload rule
    /// the paper uses (§5.1).
    pub fn generate(self, n: usize, seed: u64) -> Vec<Entry> {
        self.generate_keys(n, seed).into_iter().map(|k| (k, payload_for(k))).collect()
    }

    /// Loads a SOSD-style binary key file: a little-endian `u64` count
    /// followed by that many little-endian `u64` keys (the format the SOSD
    /// benchmark distributes its `fb`/`osm`/`wiki`/`books` datasets in).
    /// Keys are sorted and de-duplicated, so the result is valid bulk-load
    /// input regardless of the file's ordering.
    ///
    /// This is how real datasets replace the synthetic generators: the `exp`
    /// binary's `--dataset-path` flag routes every workload's key set
    /// through this loader instead of [`Dataset::generate_keys`].
    pub fn from_sosd_file(path: &std::path::Path) -> std::io::Result<Vec<Key>> {
        use std::io::{Error, ErrorKind};
        let bytes = std::fs::read(path)?;
        if bytes.len() < 8 {
            return Err(Error::new(
                ErrorKind::InvalidData,
                format!("{}: too short for a SOSD header (need 8 bytes)", path.display()),
            ));
        }
        let count = u64::from_le_bytes(bytes[..8].try_into().unwrap());
        let needed = 8
            + (count as usize).checked_mul(8).ok_or_else(|| {
                Error::new(
                    ErrorKind::InvalidData,
                    format!("{}: absurd key count {count}", path.display()),
                )
            })?;
        if bytes.len() < needed {
            return Err(Error::new(
                ErrorKind::InvalidData,
                format!(
                    "{}: header promises {count} keys ({needed} bytes) but the file has {}",
                    path.display(),
                    bytes.len()
                ),
            ));
        }
        let mut keys: Vec<Key> = bytes[8..needed]
            .chunks_exact(8)
            .map(|c| Key::from_le_bytes(c.try_into().unwrap()))
            .collect();
        keys.sort_unstable();
        keys.dedup();
        Ok(keys)
    }
}

/// Builds keys from per-step gaps.
fn gaps(n: usize, rng: &mut StdRng, mut gap: impl FnMut(&mut StdRng) -> u64) -> Vec<Key> {
    let mut keys = Vec::with_capacity(n);
    let mut current: u64 = rng.gen_range(1..1_000_000);
    for _ in 0..n {
        current = current.saturating_add(gap(rng).max(1));
        keys.push(current);
    }
    keys
}

/// Builds keys from clusters of `cluster_len` keys with in-cluster gaps drawn
/// from `small` and between-cluster jumps drawn from `big`.
fn clustered(
    n: usize,
    rng: &mut StdRng,
    cluster_len: usize,
    small: std::ops::Range<u64>,
    big: std::ops::Range<u64>,
) -> Vec<Key> {
    let mut keys = Vec::with_capacity(n);
    let mut current: u64 = rng.gen_range(1..1_000_000);
    while keys.len() < n {
        current = current.saturating_add(rng.gen_range(big.clone()));
        let len = cluster_len / 2 + rng.gen_range(0..cluster_len.max(2));
        for _ in 0..len.min(n - keys.len()) {
            current = current.saturating_add(rng.gen_range(small.clone()).max(1));
            keys.push(current);
        }
    }
    keys
}

/// An exponential-ish gap with the given mean.
fn exp_gap(rng: &mut StdRng, mean: f64) -> u64 {
    let u: f64 = rng.gen_range(1e-9..1.0);
    (-mean * u.ln()) as u64
}

/// A lognormal-ish gap: `exp(mu + sigma * z)` with `z` approximately normal.
fn lognormal_gap(rng: &mut StdRng, mu: f64, sigma: f64) -> u64 {
    // Sum of uniforms approximates a normal (Irwin–Hall with 6 terms).
    let z: f64 = (0..6).map(|_| rng.gen_range(0.0..1.0f64)).sum::<f64>() - 3.0;
    let v = (mu + sigma * z).exp();
    v.min(1e15) as u64
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generators_produce_sorted_unique_keys_deterministically() {
        for d in Dataset::ALL {
            let a = d.generate_keys(5_000, 7);
            let b = d.generate_keys(5_000, 7);
            assert_eq!(a, b, "{d:?} must be deterministic for a fixed seed");
            assert!(a.windows(2).all(|w| w[0] < w[1]), "{d:?} keys must be strictly increasing");
            let min_expected = if d == Dataset::Osm800 { 15_000 } else { 4_000 };
            assert!(a.len() >= min_expected, "{d:?} produced only {} keys", a.len());
            let c = d.generate_keys(5_000, 8);
            assert_ne!(a, c, "{d:?} must vary with the seed");
        }
    }

    #[test]
    fn entries_follow_the_payload_rule() {
        let entries = Dataset::Ycsb.generate(1_000, 3);
        assert!(entries.iter().all(|&(k, v)| v == k.wrapping_add(1)));
    }

    #[test]
    fn sosd_loader_reads_sorts_and_dedups_the_fixture() {
        // The checked-in fixture holds a count header of 100, then 100
        // shuffled little-endian u64 keys of the form i*977+13 (i < 99) with
        // one duplicate; the loader must sort and drop the duplicate.
        let path = std::path::Path::new(env!("CARGO_MANIFEST_DIR")).join("testdata/sosd_tiny.bin");
        let keys = Dataset::from_sosd_file(&path).expect("fixture must load");
        assert_eq!(keys.len(), 99, "the duplicate key must be dropped");
        assert!(keys.windows(2).all(|w| w[0] < w[1]), "keys must come back sorted");
        assert_eq!(keys[0], 13);
        assert_eq!(keys[98], 98 * 977 + 13);

        // Corrupt inputs are rejected, not mis-read.
        let dir = std::env::temp_dir();
        let short = dir.join("lidx_sosd_short.bin");
        std::fs::write(&short, [1u8, 2, 3]).unwrap();
        assert!(Dataset::from_sosd_file(&short).is_err(), "short header must fail");
        let truncated = dir.join("lidx_sosd_truncated.bin");
        let mut bytes = 1_000u64.to_le_bytes().to_vec();
        bytes.extend_from_slice(&42u64.to_le_bytes());
        std::fs::write(&truncated, bytes).unwrap();
        assert!(Dataset::from_sosd_file(&truncated).is_err(), "truncated body must fail");
        std::fs::remove_file(short).ok();
        std::fs::remove_file(truncated).ok();
    }

    #[test]
    fn names_roundtrip() {
        for d in Dataset::ALL {
            assert_eq!(Dataset::from_name(d.name()), Some(d));
        }
        assert_eq!(Dataset::from_name("nope"), None);
    }

    #[test]
    fn difficulty_ordering_matches_table3() {
        use lidx_models::pla::segment_keys;
        let n = 50_000;
        let seg = |d: Dataset| segment_keys(&d.generate_keys(n, 42), 64).len();
        let ycsb = seg(Dataset::Ycsb);
        let fb = seg(Dataset::Fb);
        let osm = seg(Dataset::Osm);
        let stack = seg(Dataset::Stack);
        assert!(fb > 4 * ycsb, "FB ({fb}) must need far more segments than YCSB ({ycsb})");
        assert!(osm > ycsb, "OSM ({osm}) must be harder than YCSB ({ycsb})");
        assert!(stack <= ycsb * 2, "Stack ({stack}) must be roughly as easy as YCSB ({ycsb})");

        use lidx_models::fmcd::fit_fmcd;
        let cd = |d: Dataset| {
            let keys = d.generate_keys(n, 42);
            fit_fmcd(&keys, keys.len() * 2).conflict_degree
        };
        let cd_osm = cd(Dataset::Osm);
        let cd_ycsb = cd(Dataset::Ycsb);
        let cd_planet = cd(Dataset::Planet);
        assert!(
            cd_osm > 10 * cd_ycsb.max(1),
            "OSM conflict degree ({cd_osm}) must dwarf YCSB's ({cd_ycsb})"
        );
        assert!(cd_planet <= cd_ycsb.max(2), "Planet ({cd_planet}) is nearly conflict-free");
    }
}
