//! The six workload types of §5.2.

use lidx_core::{payload_for, Entry, Key};
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::{Rng, SeedableRng};

/// The workload types evaluated by the paper.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum WorkloadKind {
    /// Lookups over a fully bulk-loaded index.
    LookupOnly,
    /// Range scans (lookup of a start key + the next 99 entries) over a fully
    /// bulk-loaded index.
    ScanOnly,
    /// Inserts into an index bulk loaded with a random subset of the keys.
    WriteOnly,
    /// 90 % lookups / 10 % inserts, interleaved as 18 lookups then 2 inserts.
    ReadHeavy,
    /// 10 % lookups / 90 % inserts, interleaved as 2 lookups then 18 inserts.
    WriteHeavy,
    /// 50 % lookups / 50 % inserts, interleaved as 10 and 10.
    Balanced,
}

impl WorkloadKind {
    /// All workload kinds in the order the paper reports them.
    pub const ALL: [WorkloadKind; 6] = [
        WorkloadKind::LookupOnly,
        WorkloadKind::ScanOnly,
        WorkloadKind::WriteOnly,
        WorkloadKind::ReadHeavy,
        WorkloadKind::WriteHeavy,
        WorkloadKind::Balanced,
    ];

    /// Lowercase name used in experiment output.
    pub fn name(self) -> &'static str {
        match self {
            WorkloadKind::LookupOnly => "lookup-only",
            WorkloadKind::ScanOnly => "scan-only",
            WorkloadKind::WriteOnly => "write-only",
            WorkloadKind::ReadHeavy => "read-heavy",
            WorkloadKind::WriteHeavy => "write-heavy",
            WorkloadKind::Balanced => "balanced",
        }
    }

    /// `(lookups, inserts)` per interleaving round, as described in §5.2.
    pub fn mix(self) -> (usize, usize) {
        match self {
            WorkloadKind::LookupOnly | WorkloadKind::ScanOnly => (1, 0),
            WorkloadKind::WriteOnly => (0, 1),
            WorkloadKind::ReadHeavy => (18, 2),
            WorkloadKind::WriteHeavy => (2, 18),
            WorkloadKind::Balanced => (10, 10),
        }
    }

    /// True if the index is bulk loaded with every key before running (the
    /// search-only workloads); mixed workloads bulk load a subset and insert
    /// the rest.
    pub fn bulk_loads_everything(self) -> bool {
        matches!(self, WorkloadKind::LookupOnly | WorkloadKind::ScanOnly)
    }
}

/// One operation of a workload.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Op {
    /// Point lookup of a key.
    Lookup(Key),
    /// Insert of a key-payload pair.
    Insert(Key, u64),
    /// Range scan: start key and number of entries to fetch.
    Scan(Key, usize),
}

/// Parameters for building a workload.
#[derive(Debug, Clone, Copy)]
pub struct WorkloadSpec {
    /// Which workload to build.
    pub kind: WorkloadKind,
    /// Number of operations to generate.
    pub operations: usize,
    /// Number of keys bulk loaded before the mixed/write workloads run (the
    /// paper bulk loads 10 M of the dataset's keys; scale to taste).
    pub bulk_keys: usize,
    /// Scan length (the paper scans 100 entries including the start key).
    pub scan_len: usize,
    /// RNG seed.
    pub seed: u64,
}

impl WorkloadSpec {
    /// A spec with the paper's mix for `kind`, scaled to `operations`
    /// operations over a `bulk_keys`-key bulk load.
    pub fn new(kind: WorkloadKind, operations: usize, bulk_keys: usize) -> Self {
        WorkloadSpec { kind, operations, bulk_keys, scan_len: 100, seed: 0xC0FFEE }
    }
}

/// A fully materialised workload: what to bulk load and the operation stream.
#[derive(Debug, Clone)]
pub struct Workload {
    /// The workload kind.
    pub kind: WorkloadKind,
    /// Entries to bulk load before executing the operations.
    pub bulk: Vec<Entry>,
    /// The operation stream.
    pub ops: Vec<Op>,
}

impl Workload {
    /// Builds a workload over `keys` (the sorted key set of a dataset).
    ///
    /// * Search-only workloads bulk load every key and draw their search keys
    ///   uniformly from the loaded keys.
    /// * Write/mixed workloads bulk load a random subset of `spec.bulk_keys`
    ///   keys; the remaining keys form the insert pool, and lookups are drawn
    ///   uniformly from the bulk-loaded keys (the paper's "evenly
    ///   distributed" search keys).
    pub fn build(keys: &[Key], spec: WorkloadSpec) -> Workload {
        assert!(!keys.is_empty(), "cannot build a workload over an empty dataset");
        let mut rng = StdRng::seed_from_u64(spec.seed);

        if spec.kind.bulk_loads_everything() {
            let bulk: Vec<Entry> = keys.iter().map(|&k| (k, payload_for(k))).collect();
            let ops = (0..spec.operations)
                .map(|_| {
                    let k = keys[rng.gen_range(0..keys.len())];
                    match spec.kind {
                        WorkloadKind::LookupOnly => Op::Lookup(k),
                        WorkloadKind::ScanOnly => Op::Scan(k, spec.scan_len),
                        _ => unreachable!(),
                    }
                })
                .collect();
            return Workload { kind: spec.kind, bulk, ops };
        }

        // Mixed / write-only: split the keys into a bulk-loaded subset and an
        // insert pool.
        let bulk_count = spec.bulk_keys.min(keys.len().saturating_sub(1)).max(1);
        let mut indexes: Vec<usize> = (0..keys.len()).collect();
        indexes.shuffle(&mut rng);
        let mut bulk_idx = indexes[..bulk_count].to_vec();
        bulk_idx.sort_unstable();
        let bulk: Vec<Entry> = bulk_idx.iter().map(|&i| (keys[i], payload_for(keys[i]))).collect();
        let mut insert_pool: Vec<Key> = indexes[bulk_count..].iter().map(|&i| keys[i]).collect();
        // Top up the pool with fresh keys if the dataset is too small for the
        // requested number of inserts.
        let (lookups_per_round, inserts_per_round) = spec.kind.mix();
        let round = lookups_per_round + inserts_per_round;
        let needed_inserts = spec.operations * inserts_per_round / round + round;
        let mut synth = keys[keys.len() - 1];
        while insert_pool.len() < needed_inserts {
            synth = synth.wrapping_add(rng.gen_range(1..1_000));
            insert_pool.push(synth);
        }

        let mut ops = Vec::with_capacity(spec.operations);
        let mut pool_iter = insert_pool.into_iter();
        while ops.len() < spec.operations {
            for _ in 0..lookups_per_round {
                if ops.len() == spec.operations {
                    break;
                }
                let (k, _) = bulk[rng.gen_range(0..bulk.len())];
                ops.push(Op::Lookup(k));
            }
            for _ in 0..inserts_per_round {
                if ops.len() == spec.operations {
                    break;
                }
                let k = pool_iter.next().expect("insert pool sized for the operation count");
                ops.push(Op::Insert(k, payload_for(k)));
            }
        }
        Workload { kind: spec.kind, bulk, ops }
    }

    /// Number of insert operations in the stream.
    pub fn insert_count(&self) -> usize {
        self.ops.iter().filter(|o| matches!(o, Op::Insert(..))).count()
    }

    /// Number of lookup operations in the stream.
    pub fn lookup_count(&self) -> usize {
        self.ops.iter().filter(|o| matches!(o, Op::Lookup(..))).count()
    }

    /// Number of scan operations in the stream.
    pub fn scan_count(&self) -> usize {
        self.ops.iter().filter(|o| matches!(o, Op::Scan(..))).count()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dataset::Dataset;

    fn keys() -> Vec<Key> {
        Dataset::Ycsb.generate_keys(20_000, 1)
    }

    #[test]
    fn lookup_only_bulk_loads_everything() {
        let keys = keys();
        let w = Workload::build(&keys, WorkloadSpec::new(WorkloadKind::LookupOnly, 1_000, 0));
        assert_eq!(w.bulk.len(), keys.len());
        assert_eq!(w.ops.len(), 1_000);
        assert_eq!(w.lookup_count(), 1_000);
        // Every looked-up key exists in the bulk load.
        for op in &w.ops {
            if let Op::Lookup(k) = op {
                assert!(keys.binary_search(k).is_ok());
            }
        }
    }

    #[test]
    fn scan_only_produces_scans_of_the_requested_length() {
        let keys = keys();
        let w = Workload::build(&keys, WorkloadSpec::new(WorkloadKind::ScanOnly, 500, 0));
        assert_eq!(w.scan_count(), 500);
        assert!(w.ops.iter().all(|o| matches!(o, Op::Scan(_, 100))));
    }

    #[test]
    fn mixed_workloads_follow_the_paper_ratios() {
        let keys = keys();
        for (kind, expect_insert_fraction) in [
            (WorkloadKind::WriteOnly, 1.0),
            (WorkloadKind::ReadHeavy, 0.1),
            (WorkloadKind::WriteHeavy, 0.9),
            (WorkloadKind::Balanced, 0.5),
        ] {
            let w = Workload::build(&keys, WorkloadSpec::new(kind, 10_000, 5_000));
            assert_eq!(w.ops.len(), 10_000);
            assert_eq!(w.bulk.len(), 5_000);
            let frac = w.insert_count() as f64 / w.ops.len() as f64;
            assert!(
                (frac - expect_insert_fraction).abs() < 0.02,
                "{kind:?}: insert fraction {frac}"
            );
            // Inserted keys are fresh (not bulk loaded).
            let bulk_keys: std::collections::HashSet<Key> = w.bulk.iter().map(|e| e.0).collect();
            for op in &w.ops {
                if let Op::Insert(k, _) = op {
                    assert!(!bulk_keys.contains(k), "insert key {k} was already bulk loaded");
                }
            }
        }
    }

    #[test]
    fn small_datasets_still_yield_enough_inserts() {
        let keys: Vec<Key> = (0..100u64).map(|i| i * 10).collect();
        let w = Workload::build(&keys, WorkloadSpec::new(WorkloadKind::WriteOnly, 5_000, 50));
        assert_eq!(w.insert_count(), 5_000);
        // All insert keys are unique.
        let mut seen = std::collections::HashSet::new();
        for op in &w.ops {
            if let Op::Insert(k, _) = op {
                assert!(seen.insert(*k), "duplicate insert key {k}");
            }
        }
    }

    #[test]
    fn workloads_are_deterministic() {
        let keys = keys();
        let a = Workload::build(&keys, WorkloadSpec::new(WorkloadKind::Balanced, 2_000, 1_000));
        let b = Workload::build(&keys, WorkloadSpec::new(WorkloadKind::Balanced, 2_000, 1_000));
        assert_eq!(a.ops, b.ops);
        assert_eq!(a.bulk, b.bulk);
    }
}
