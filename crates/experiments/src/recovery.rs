//! Crash-safe persistence for the harness: durable create / reopen helpers
//! shared by the `recovery` experiment and the kill-and-recover oracle
//! suite, plus the experiment itself (`BENCH_recovery.json`).
//!
//! A durable store is a directory holding block files with per-block
//! checksum sidecars, a double-buffered superblock whose payload is the
//! [`Manifest`] (design tag, `save_meta` bytes, WAL file ids), and one
//! write-ahead-log segment feeding the [`WriteBuffer`] staging overlay.
//! [`create_durable_index`] builds that stack from scratch;
//! [`reopen_durable_index`] walks it back: best superblock → manifest →
//! per-design load → WAL replay into the overlay.

use std::path::Path;
use std::sync::Arc;
use std::time::Instant;

use lidx_core::{
    payload_for, DiskIndex, IndexError, IndexRead, IndexResult, IndexWrite, Key, Manifest,
    WriteBuffer, WriteBufferConfig,
};
use lidx_storage::{Disk, DiskConfig, FaultPlan, OpClass};

use crate::experiments::Scale;
use crate::runner::IndexChoice;

/// The WAL-backed durable write front the harness drives: any of the
/// studied designs behind a logged staging buffer.
pub type DurableIndex = WriteBuffer<Box<dyn DiskIndex>>;

/// Creates a fresh durable store for `choice` in `dir` (wiping any previous
/// store there) and wraps it behind a WAL'd write buffer. With a
/// [`FaultPlan`], every backend access and superblock checkpoint consults
/// the plan, so tests can kill the store at a precise write.
pub fn create_durable_index(
    dir: &Path,
    block_size: usize,
    choice: IndexChoice,
    config: WriteBufferConfig,
    plan: Option<FaultPlan>,
) -> IndexResult<DurableIndex> {
    create_durable_index_with(dir, DiskConfig::with_block_size(block_size), choice, config, plan)
}

/// [`create_durable_index`] with a full [`DiskConfig`] (device cost model,
/// pool sizing, …) instead of just a block size.
pub fn create_durable_index_with(
    dir: &Path,
    disk_config: DiskConfig,
    choice: IndexChoice,
    config: WriteBufferConfig,
    plan: Option<FaultPlan>,
) -> IndexResult<DurableIndex> {
    let disk = Disk::create_durable_with_faults(dir, disk_config, plan)?;
    let inner = choice.build(Arc::clone(&disk));
    WriteBuffer::with_wal(inner, config, choice.name())
}

/// Reopens the durable store in `dir`: loads the best valid superblock,
/// decodes its [`Manifest`], reconstructs the named design from its
/// `save_meta` bytes and replays the WAL segment into the staging overlay.
/// Returns the recovered front and the number of WAL entries replayed.
pub fn reopen_durable_index(
    dir: &Path,
    block_size: usize,
    config: WriteBufferConfig,
    plan: Option<FaultPlan>,
) -> IndexResult<(DurableIndex, u64)> {
    let (disk, superblock) =
        Disk::open_with_faults(dir, DiskConfig::with_block_size(block_size), plan)?;
    let manifest = Manifest::decode(&superblock.meta)?;
    let choice = IndexChoice::from_name(&manifest.index_kind).ok_or_else(|| {
        IndexError::Internal(format!("manifest names unknown design '{}'", manifest.index_kind))
    })?;
    let inner = choice.load(Arc::clone(&disk), &manifest.index_meta)?;
    let wal_file = *manifest
        .wal_files
        .first()
        .ok_or_else(|| IndexError::Internal("manifest lists no WAL segment".into()))?;
    WriteBuffer::with_wal_replayed(inner, config, &manifest.index_kind, wal_file)
}

/// A fresh per-process scratch directory under the system temp dir.
fn scratch_dir(tag: &str) -> std::path::PathBuf {
    std::env::temp_dir().join(format!("lidx-recovery-{tag}-{}", std::process::id()))
}

fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

fn bulk_entries(n: usize, seed: u64) -> Vec<(Key, u64)> {
    let mut state = seed;
    let mut keys: Vec<Key> = (0..n).map(|_| splitmix64(&mut state) >> 1).collect();
    keys.sort_unstable();
    keys.dedup();
    keys.into_iter().map(|k| (k, payload_for(k))).collect()
}

fn insert_keys(n: usize, seed: u64) -> Vec<Key> {
    let mut state = seed ^ 0xA5A5_A5A5;
    (0..n).map(|_| splitmix64(&mut state) >> 1).collect()
}

/// One design's WAL-on vs buffered-baseline write-path comparison.
struct OverheadRow {
    index: &'static str,
    wal_wall_ns_per_insert: f64,
    buffered_wall_ns_per_insert: f64,
    wal_device_ns_per_insert: f64,
    buffered_device_ns_per_insert: f64,
    device_overhead: f64,
    wal_appends: u64,
    wal_bytes: u64,
    wal_sync_p99_ns: u64,
    checkpoint_max_ns: u64,
}

/// One replay-scaling measurement: kill with `dirty` logged-but-undrained
/// entries, reopen, measure the replay.
struct ReplayRow {
    dirty_entries: u64,
    replayed_entries: u64,
    replay_wall_micros: f64,
    recovered_len: u64,
    recovery_pause_ns: u64,
}

/// The recovery experiment: writes `BENCH_recovery.json` with (1) the write
/// path cost of the WAL — wall and simulated-device time per insert with
/// the log on, against the plain buffered front over the same durable disk —
/// and (2) replay time as a function of the dirty-entry count at the kill
/// point. Beyond the paper: the paper's evaluation assumes a process that
/// never dies; this freezes what crash safety costs the write path here.
pub fn recovery(scale: &Scale) {
    recovery_to(scale, Path::new("BENCH_recovery.json"));
}

/// [`recovery`] with an explicit output path (tests write to a temp file;
/// the `exp` binary always writes `BENCH_recovery.json` in the cwd).
pub fn recovery_to(scale: &Scale, path: &Path) {
    let shown = path.display();
    println!("== recovery: WAL write-path overhead and replay scaling (writing {shown}) ==");
    let block_size = 4096;
    let entries = bulk_entries(scale.bulk_keys, scale.seed);
    let ops = insert_keys(scale.ops, scale.seed);

    let mut overhead_rows = Vec::new();
    let mut t = crate::report::Table::new([
        "index",
        "wal ns/ins",
        "buf ns/ins",
        "wal dev ns/ins",
        "buf dev ns/ins",
        "dev overhead",
        "wal appends",
        "sync p99 us",
        "ckpt max us",
    ]);
    for choice in IndexChoice::ALL_DESIGNS {
        // WAL-on: durable store, logged staging front, full checkpoint at
        // the end (sync, drain, save_meta, superblock persist, truncate).
        // The SSD cost model makes the device columns meaningful — the
        // default model charges nothing per block.
        let disk_config =
            DiskConfig::with_block_size(block_size).device(lidx_storage::DeviceModel::ssd());
        let dir = scratch_dir(&format!("ovh-wal-{}", choice.name()));
        let mut front = create_durable_index_with(
            &dir,
            disk_config,
            choice,
            WriteBufferConfig::default(),
            None,
        )
        .expect("create durable store");
        front.bulk_load(&entries).expect("bulk load");
        let disk = Arc::clone(front.inner().disk());
        let before = disk.snapshot();
        disk.telemetry().reset();
        let start = Instant::now();
        for &k in &ops {
            front.insert(k, payload_for(k)).expect("insert");
        }
        front.checkpoint(false).expect("checkpoint");
        let wal_wall = start.elapsed().as_nanos() as f64;
        let after = disk.snapshot().since(&before);
        let tele = disk.telemetry().snapshot();
        drop(front);
        std::fs::remove_dir_all(&dir).ok();

        // Buffered baseline: same durable disk flavour, same staging front,
        // no log and no checkpoints.
        let dir = scratch_dir(&format!("ovh-buf-{}", choice.name()));
        let base_disk = Disk::create_durable(&dir, disk_config).expect("create baseline store");
        let mut base =
            WriteBuffer::new(choice.build(Arc::clone(&base_disk)), WriteBufferConfig::default());
        base.bulk_load(&entries).expect("bulk load");
        let before = base_disk.snapshot();
        let start = Instant::now();
        for &k in &ops {
            base.insert(k, payload_for(k)).expect("insert");
        }
        base.flush().expect("flush");
        let buf_wall = start.elapsed().as_nanos() as f64;
        let base_after = base_disk.snapshot().since(&before);
        drop(base);
        std::fs::remove_dir_all(&dir).ok();

        let n = ops.len().max(1) as f64;
        let row = OverheadRow {
            index: choice.name(),
            wal_wall_ns_per_insert: wal_wall / n,
            buffered_wall_ns_per_insert: buf_wall / n,
            wal_device_ns_per_insert: after.device_ns as f64 / n,
            buffered_device_ns_per_insert: base_after.device_ns as f64 / n,
            device_overhead: after.device_ns as f64 / (base_after.device_ns as f64).max(1.0),
            wal_appends: after.wal_appends,
            wal_bytes: after.wal_bytes,
            wal_sync_p99_ns: tele.class(OpClass::WalSync).summary.p99_ns,
            checkpoint_max_ns: tele.class(OpClass::Checkpoint).summary.max_ns,
        };
        t.row([
            row.index.to_string(),
            format!("{:.0}", row.wal_wall_ns_per_insert),
            format!("{:.0}", row.buffered_wall_ns_per_insert),
            format!("{:.0}", row.wal_device_ns_per_insert),
            format!("{:.0}", row.buffered_device_ns_per_insert),
            format!("{:.3}", row.device_overhead),
            row.wal_appends.to_string(),
            format!("{:.1}", row.wal_sync_p99_ns as f64 / 1e3),
            format!("{:.1}", row.checkpoint_max_ns as f64 / 1e3),
        ]);
        overhead_rows.push(row);
    }
    t.print();

    // Replay scaling: a B+-tree store killed with N logged-but-undrained
    // entries; the reopen replays exactly those into the staging overlay.
    let dirty_counts: [usize; 3] =
        [(scale.ops / 4).max(64), scale.ops.max(256), (scale.ops * 4).max(1024)];
    let mut replay_rows = Vec::new();
    let mut rt = crate::report::Table::new([
        "dirty entries",
        "replayed",
        "replay us",
        "recovered len",
        "pause us",
    ]);
    for &dirty in &dirty_counts {
        let dir = scratch_dir(&format!("replay-{dirty}"));
        let config = WriteBufferConfig { capacity: dirty + 1, ..Default::default() };
        let mut front = create_durable_index(&dir, block_size, IndexChoice::BTree, config, None)
            .expect("create durable store");
        front.bulk_load(&entries).expect("bulk load");
        front.checkpoint(false).expect("checkpoint");
        for &k in insert_keys(dirty, scale.seed.wrapping_add(dirty as u64)).iter() {
            front.insert(k, payload_for(k)).expect("insert");
        }
        front.sync_wal().expect("sync");
        drop(front); // the kill: no checkpoint, the WAL holds the tail

        let start = Instant::now();
        let (recovered, replayed) =
            reopen_durable_index(&dir, block_size, config, None).expect("reopen after kill");
        let replay_wall_micros = start.elapsed().as_nanos() as f64 / 1e3;
        // The reopen's recovery span (recorded by `with_wal_replayed`) is
        // the pause a restarted server serves nothing during; its counter
        // must agree with the replayed-entry return value.
        let tele = recovered.inner().disk().telemetry().snapshot();
        assert_eq!(
            tele.class(OpClass::Recovery).counter,
            replayed,
            "recovery counter must match replayed entries"
        );
        let row = ReplayRow {
            dirty_entries: dirty as u64,
            replayed_entries: replayed,
            replay_wall_micros,
            recovered_len: recovered.len(),
            recovery_pause_ns: tele.class(OpClass::Recovery).summary.max_ns,
        };
        rt.row([
            row.dirty_entries.to_string(),
            row.replayed_entries.to_string(),
            format!("{:.0}", row.replay_wall_micros),
            row.recovered_len.to_string(),
            format!("{:.1}", row.recovery_pause_ns as f64 / 1e3),
        ]);
        replay_rows.push(row);
        drop(recovered);
        std::fs::remove_dir_all(&dir).ok();
    }
    rt.print();

    let overhead_json: Vec<String> = overhead_rows
        .iter()
        .map(|r| {
            format!(
                concat!(
                    "    {{ \"index\": \"{}\", \"wal_wall_ns_per_insert\": {:.1}, ",
                    "\"buffered_wall_ns_per_insert\": {:.1}, ",
                    "\"wal_device_ns_per_insert\": {:.1}, ",
                    "\"buffered_device_ns_per_insert\": {:.1}, ",
                    "\"device_overhead\": {:.4}, ",
                    "\"wal_appends\": {}, \"wal_bytes\": {}, ",
                    "\"wal_sync_p99_ns\": {}, \"checkpoint_max_ns\": {} }}"
                ),
                r.index,
                r.wal_wall_ns_per_insert,
                r.buffered_wall_ns_per_insert,
                r.wal_device_ns_per_insert,
                r.buffered_device_ns_per_insert,
                r.device_overhead,
                r.wal_appends,
                r.wal_bytes,
                r.wal_sync_p99_ns,
                r.checkpoint_max_ns,
            )
        })
        .collect();
    let replay_json: Vec<String> = replay_rows
        .iter()
        .map(|r| {
            format!(
                concat!(
                    "    {{ \"dirty_entries\": {}, \"replayed_entries\": {}, ",
                    "\"replay_wall_micros\": {:.1}, \"recovered_len\": {}, ",
                    "\"recovery_pause_ns\": {} }}"
                ),
                r.dirty_entries,
                r.replayed_entries,
                r.replay_wall_micros,
                r.recovered_len,
                r.recovery_pause_ns,
            )
        })
        .collect();
    let json = format!(
        concat!(
            "{{\n",
            "  \"schema\": \"lidx-bench-recovery-v1\",\n",
            "  \"bulk_keys\": {},\n",
            "  \"ops\": {},\n",
            "  \"seed\": {},\n",
            "  \"write_overhead\": [\n{}\n  ],\n",
            "  \"replay\": [\n{}\n  ]\n",
            "}}\n"
        ),
        scale.bulk_keys,
        scale.ops,
        scale.seed,
        overhead_json.join(",\n"),
        replay_json.join(",\n"),
    );
    std::fs::write(path, json).expect("write recovery snapshot");
    println!("wrote {shown}");
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn durable_round_trip_through_helpers() {
        let dir = scratch_dir("helper-roundtrip");
        let entries = bulk_entries(2_000, 11);
        let mut front = create_durable_index(
            &dir,
            4096,
            IndexChoice::BTree,
            WriteBufferConfig::default(),
            None,
        )
        .unwrap();
        front.bulk_load(&entries).unwrap();
        front.insert(3, 33).unwrap();
        front.checkpoint(true).unwrap();
        drop(front);

        let (recovered, replayed) =
            reopen_durable_index(&dir, 4096, WriteBufferConfig::default(), None).unwrap();
        assert_eq!(replayed, 0, "a clean checkpoint leaves nothing to replay");
        assert_eq!(recovered.lookup(3).unwrap(), Some(33));
        assert_eq!(recovered.lookup(entries[17].0).unwrap(), Some(entries[17].1));
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn recovery_experiment_writes_machine_readable_json() {
        let scale = Scale {
            keys: 2_000,
            ops: 80,
            bulk_keys: 1_000,
            seed: 9,
            threads: 2,
            dataset_path: None,
        };
        let path = std::env::temp_dir()
            .join(format!("lidx_bench_recovery_test_{}.json", std::process::id()));
        recovery_to(&scale, &path);
        let body = std::fs::read_to_string(&path).unwrap();
        assert!(body.contains("\"schema\": \"lidx-bench-recovery-v1\""));
        assert!(body.contains("\"write_overhead\""));
        assert!(body.contains("\"replay\""));
        assert!(body.contains("\"wal_sync_p99_ns\""));
        assert!(body.contains("\"checkpoint_max_ns\""));
        assert!(body.contains("\"recovery_pause_ns\""));
        for choice in IndexChoice::ALL_DESIGNS {
            assert!(body.contains(&format!("\"index\": \"{}\"", choice.name())));
        }
        std::fs::remove_file(&path).ok();
    }
}
