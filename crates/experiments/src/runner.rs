//! Building indexes and executing workloads against them.

use std::sync::Arc;
use std::time::Instant;

use lidx_alex::{AlexConfig, AlexIndex, AlexLayout};
use lidx_btree::{BTreeConfig, BTreeIndex};
use lidx_core::{
    DiskIndex, Entry, IndexRead, IndexWrite, InsertBreakdown, Key, LatencyRecorder, LatencySummary,
    ShardedIndex, ShardedIndexConfig, ShardedWriteBuffer, ShardedWriteBufferConfig, WriteBuffer,
    WriteBufferConfig,
};
use lidx_fiting::{FitingConfig, FitingTree};
use lidx_hybrid::{HybridConfig, HybridIndex, HybridInnerKind};
use lidx_lipp::{LippConfig, LippIndex};
use lidx_pgm::{PgmConfig, PgmIndex};
use lidx_storage::{
    BlockKind, DeviceModel, Disk, DiskConfig, OpClass, PoolPartitions, ReplacementPolicy,
    TelemetrySnapshot,
};
use lidx_workloads::{Op, ScrambledZipfian, Workload};

/// Which index to build.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum IndexChoice {
    /// The on-disk B+-tree baseline.
    BTree,
    /// The on-disk FITing-tree.
    Fiting,
    /// The on-disk dynamic PGM-index.
    Pgm,
    /// The on-disk ALEX index (Layout#2).
    Alex,
    /// The on-disk ALEX index using Layout#1 (single file); used by the
    /// layout ablation.
    AlexLayout1,
    /// The on-disk LIPP index.
    Lipp,
    /// Hybrid design with a PLA (FITing/PGM-style) inner directory.
    HybridPla,
    /// Hybrid design with an FMCD model-tree (ALEX/LIPP-style) inner
    /// directory.
    HybridModelTree,
}

impl IndexChoice {
    /// The five indexes the paper's main figures compare.
    pub const EVALUATED: [IndexChoice; 5] = [
        IndexChoice::BTree,
        IndexChoice::Fiting,
        IndexChoice::Pgm,
        IndexChoice::Alex,
        IndexChoice::Lipp,
    ];

    /// The seven distinct index designs (excludes the `AlexLayout1`
    /// ablation, which is the same design with a different file layout).
    /// This is the list the cross-index oracle suites and concurrency
    /// sweeps iterate, so a newly added design is picked up everywhere.
    pub const ALL_DESIGNS: [IndexChoice; 7] = [
        IndexChoice::BTree,
        IndexChoice::Fiting,
        IndexChoice::Pgm,
        IndexChoice::Alex,
        IndexChoice::Lipp,
        IndexChoice::HybridPla,
        IndexChoice::HybridModelTree,
    ];

    /// Every variant, including ablation configurations.
    pub const ALL: [IndexChoice; 8] = [
        IndexChoice::BTree,
        IndexChoice::Fiting,
        IndexChoice::Pgm,
        IndexChoice::Alex,
        IndexChoice::AlexLayout1,
        IndexChoice::Lipp,
        IndexChoice::HybridPla,
        IndexChoice::HybridModelTree,
    ];

    /// Short name used in report rows.
    pub fn name(self) -> &'static str {
        match self {
            IndexChoice::BTree => "btree",
            IndexChoice::Fiting => "fiting",
            IndexChoice::Pgm => "pgm",
            IndexChoice::Alex => "alex",
            IndexChoice::AlexLayout1 => "alex-layout1",
            IndexChoice::Lipp => "lipp",
            IndexChoice::HybridPla => "hybrid-pla",
            IndexChoice::HybridModelTree => "hybrid-modeltree",
        }
    }

    /// Parses a name produced by [`IndexChoice::name`].
    pub fn from_name(s: &str) -> Option<IndexChoice> {
        Self::ALL.into_iter().find(|c| c.name() == s)
    }

    /// Builds an empty index of this kind over `disk`.
    pub fn build(self, disk: Arc<Disk>) -> Box<dyn DiskIndex> {
        match self {
            IndexChoice::BTree => Box::new(BTreeIndex::new(disk).expect("btree init")),
            IndexChoice::Fiting => Box::new(
                FitingTree::with_config(disk, FitingConfig { epsilon: 64, buffer_entries: 256 })
                    .expect("fiting init"),
            ),
            IndexChoice::Pgm => Box::new(
                PgmIndex::with_config(disk, PgmConfig { epsilon: 64, insert_run_entries: 585 })
                    .expect("pgm init"),
            ),
            IndexChoice::Alex => Box::new(AlexIndex::new(disk).expect("alex init")),
            IndexChoice::AlexLayout1 => Box::new(
                AlexIndex::with_config(
                    disk,
                    AlexConfig { layout: AlexLayout::SingleFile, ..Default::default() },
                )
                .expect("alex layout1 init"),
            ),
            IndexChoice::Lipp => Box::new(LippIndex::new(disk).expect("lipp init")),
            IndexChoice::HybridPla => Box::new(
                HybridIndex::new(
                    disk,
                    HybridConfig { inner: HybridInnerKind::Pla, ..Default::default() },
                )
                .expect("hybrid init"),
            ),
            IndexChoice::HybridModelTree => Box::new(
                HybridIndex::new(
                    disk,
                    HybridConfig { inner: HybridInnerKind::ModelTree, ..Default::default() },
                )
                .expect("hybrid init"),
            ),
        }
    }

    /// Reopens an index of this kind from its
    /// [`save_meta`](lidx_core::IndexWrite::save_meta) bytes over a durable
    /// disk that already holds its blocks. The per-design configurations
    /// mirror [`IndexChoice::build`] exactly, so a store written by `build`
    /// always reopens under the same choice.
    pub fn load(self, disk: Arc<Disk>, meta: &[u8]) -> lidx_core::IndexResult<Box<dyn DiskIndex>> {
        Ok(match self {
            IndexChoice::BTree => Box::new(BTreeIndex::load(disk, BTreeConfig::default(), meta)?),
            IndexChoice::Fiting => Box::new(FitingTree::load(
                disk,
                FitingConfig { epsilon: 64, buffer_entries: 256 },
                meta,
            )?),
            IndexChoice::Pgm => Box::new(PgmIndex::load(
                disk,
                PgmConfig { epsilon: 64, insert_run_entries: 585 },
                meta,
            )?),
            IndexChoice::Alex => Box::new(AlexIndex::load(disk, AlexConfig::default(), meta)?),
            IndexChoice::AlexLayout1 => Box::new(AlexIndex::load(
                disk,
                AlexConfig { layout: AlexLayout::SingleFile, ..Default::default() },
                meta,
            )?),
            IndexChoice::Lipp => Box::new(LippIndex::load(disk, LippConfig::default(), meta)?),
            IndexChoice::HybridPla => Box::new(HybridIndex::load(
                disk,
                HybridConfig { inner: HybridInnerKind::Pla, ..Default::default() },
                meta,
            )?),
            IndexChoice::HybridModelTree => Box::new(HybridIndex::load(
                disk,
                HybridConfig { inner: HybridInnerKind::ModelTree, ..Default::default() },
                meta,
            )?),
        })
    }
}

/// Storage configuration of one experiment run.
#[derive(Debug, Clone, Copy)]
pub struct RunConfig {
    /// Block size in bytes.
    pub block_size: usize,
    /// Device cost model.
    pub device: DeviceModel,
    /// Buffer pool capacity in blocks (0 = the paper's default of no
    /// buffer manager).
    pub buffer_blocks: usize,
    /// Buffer pool replacement policy (strict LRU by default; clock and the
    /// scan-resistant 2Q variant are the `scan_resistance` experiment's
    /// subjects).
    pub buffer_policy: ReplacementPolicy,
    /// Per-kind frame partitioning (unified by default;
    /// [`PoolPartitions::InnerReserved`] shields inner/meta frames from data
    /// scans).
    pub buffer_partitions: PoolPartitions,
    /// Treat inner-node and meta blocks as memory-resident (§6.2).
    pub memory_resident_inner: bool,
    /// Outstanding-read queue depth (1 = today's fully synchronous path;
    /// deeper queues let `lookup_batch`/readahead overlap a wave of misses,
    /// charging the max instead of the sum of the wave's device costs).
    pub queue_depth: usize,
    /// Realise the device cost model as actual blocking time (each charged
    /// read/write sleeps for its simulated latency, outside all locks). Used
    /// by the concurrent-read phases so N reader threads overlap their
    /// simulated I/O waits exactly like outstanding disk requests.
    pub simulate_device_latency: bool,
}

impl Default for RunConfig {
    fn default() -> Self {
        RunConfig {
            block_size: 4096,
            device: DeviceModel::hdd(),
            buffer_blocks: 0,
            buffer_policy: ReplacementPolicy::default(),
            buffer_partitions: PoolPartitions::default(),
            memory_resident_inner: false,
            queue_depth: 1,
            simulate_device_latency: false,
        }
    }
}

impl RunConfig {
    /// Creates the disk described by this configuration.
    pub fn make_disk(&self) -> Arc<Disk> {
        let mut cfg = DiskConfig::with_block_size(self.block_size)
            .device(self.device)
            .buffer_blocks(self.buffer_blocks)
            .buffer_policy(self.buffer_policy)
            .buffer_partitions(self.buffer_partitions)
            .queue_depth(self.queue_depth)
            .simulate_latency(self.simulate_device_latency);
        if self.memory_resident_inner {
            cfg = cfg.memory_resident(&[BlockKind::Inner, BlockKind::Meta]);
        }
        Disk::in_memory(cfg)
    }
}

/// Everything measured while executing one workload on one index.
#[derive(Debug, Clone)]
pub struct WorkloadReport {
    /// Index name.
    pub index: String,
    /// Number of operations executed.
    pub ops: u64,
    /// Simulated device seconds spent executing the operations (excludes the
    /// bulk load).
    pub device_seconds: f64,
    /// Simulated device seconds spent bulk loading.
    pub bulk_seconds: f64,
    /// Blocks written during bulk load.
    pub bulk_writes: u64,
    /// Average fetched (read) blocks per operation.
    pub avg_reads_per_op: f64,
    /// Average written blocks per operation.
    pub avg_writes_per_op: f64,
    /// Average inner-node blocks read per operation.
    pub avg_inner_reads_per_op: f64,
    /// Average leaf blocks read per operation.
    pub avg_leaf_reads_per_op: f64,
    /// Average utility blocks (bitmaps, buffers, LSM runs) read per
    /// operation.
    pub avg_utility_reads_per_op: f64,
    /// Per-operation latency summary derived from the device model.
    pub latency: LatencySummary,
    /// Total blocks occupied on disk after the workload (the §6.3 metric).
    pub storage_blocks: u64,
    /// Block size used, so storage can be reported in bytes.
    pub block_size: usize,
    /// Insert-step breakdown accumulated by the index.
    pub breakdown: InsertBreakdown,
    /// Structural statistics after the run.
    pub stats: lidx_core::IndexStats,
}

impl WorkloadReport {
    /// Operations per simulated second.
    pub fn throughput(&self) -> f64 {
        if self.device_seconds <= 0.0 {
            f64::INFINITY
        } else {
            self.ops as f64 / self.device_seconds
        }
    }

    /// Storage footprint in mebibytes.
    pub fn storage_mib(&self) -> f64 {
        self.storage_blocks as f64 * self.block_size as f64 / (1024.0 * 1024.0)
    }
}

/// Bulk loads `choice` over `workload.bulk` and executes `workload.ops`,
/// measuring everything the paper reports.
pub fn run_workload(
    choice: IndexChoice,
    config: &RunConfig,
    workload: &Workload,
) -> WorkloadReport {
    let disk = config.make_disk();
    let mut index = choice.build(Arc::clone(&disk));

    let bulk_before = disk.snapshot();
    index.bulk_load(&workload.bulk).expect("bulk load");
    let bulk_after = disk.snapshot();
    let bulk_delta = bulk_after.since(&bulk_before);
    let bulk_seconds = bulk_delta.device_ns as f64 / 1e9;
    let bulk_writes = bulk_delta.writes();

    // The evaluation measures steady-state query behaviour: statistics are
    // reset after the bulk load and each query starts from a cold access
    // state (no carry-over of the last fetched block between queries).
    disk.stats().reset();
    disk.clear_buffer();
    let mut latency = LatencyRecorder::with_capacity(workload.ops.len());
    let mut scan_buf = Vec::with_capacity(256);
    for op in &workload.ops {
        disk.reset_access_state();
        let before = disk.snapshot();
        match *op {
            Op::Lookup(k) => {
                index.lookup(k).expect("lookup");
            }
            Op::Insert(k, v) => {
                index.insert(k, v).expect("insert");
            }
            Op::Scan(k, len) => {
                index.scan(k, len, &mut scan_buf).expect("scan");
            }
        }
        let delta = disk.snapshot().since(&before);
        latency.record(delta.device_ns);
    }

    let stats = disk.stats();
    let ops = workload.ops.len() as u64;
    let storage_blocks = index.storage_blocks();
    WorkloadReport {
        index: index.name(),
        ops,
        device_seconds: stats.device_ns() as f64 / 1e9,
        bulk_seconds,
        bulk_writes,
        avg_reads_per_op: stats.reads() as f64 / ops.max(1) as f64,
        avg_writes_per_op: stats.writes() as f64 / ops.max(1) as f64,
        avg_inner_reads_per_op: stats.reads_of(BlockKind::Inner) as f64 / ops.max(1) as f64,
        avg_leaf_reads_per_op: stats.reads_of(BlockKind::Leaf) as f64 / ops.max(1) as f64,
        avg_utility_reads_per_op: stats.reads_of(BlockKind::Utility) as f64 / ops.max(1) as f64,
        latency: latency.summary(),
        storage_blocks,
        block_size: config.block_size,
        breakdown: index.insert_breakdown(),
        stats: index.stats(),
    }
}

/// Convenience used by a few experiments: the sorted key set of a workload's
/// bulk-load phase.
pub fn bulk_keys(workload: &Workload) -> Vec<Key> {
    workload.bulk.iter().map(|e| e.0).collect()
}

/// Everything measured by a [`run_par_lookup`] phase: N reader threads
/// sharing one bulk-loaded (frozen) index.
///
/// Unlike [`WorkloadReport`], throughput here is derived from *wall-clock*
/// time: the point of the phase is to observe how real reader threads
/// overlap, which simulated (purely counted) device time cannot express.
#[derive(Debug, Clone)]
pub struct ParLookupReport {
    /// Index name.
    pub index: String,
    /// Number of reader threads.
    pub threads: usize,
    /// Lookups per [`lidx_core::index::IndexRead::lookup_batch`] call
    /// (1 = per-key lookups).
    pub batch: usize,
    /// Total lookups executed across all threads.
    pub total_ops: u64,
    /// Wall-clock seconds from the first thread starting to the last one
    /// finishing.
    pub wall_seconds: f64,
    /// Lookups that returned `None` (sanity signal: lookup-only workloads
    /// draw their keys from the bulk load, so this should be zero).
    pub not_found: u64,
    /// Device blocks read during the phase.
    pub blocks_read: u64,
}

impl ParLookupReport {
    /// Aggregate lookups per wall-clock second across all threads.
    pub fn aggregate_ops_per_sec(&self) -> f64 {
        if self.wall_seconds <= 0.0 {
            f64::INFINITY
        } else {
            self.total_ops as f64 / self.wall_seconds
        }
    }

    /// Average per-thread lookups per wall-clock second.
    pub fn per_thread_ops_per_sec(&self) -> f64 {
        self.aggregate_ops_per_sec() / self.threads.max(1) as f64
    }
}

/// Bulk loads `choice` over `workload.bulk`, freezes the index, then executes
/// the workload's lookup keys from `threads` concurrent reader threads
/// (round-robin partitioning), measuring wall-clock throughput.
///
/// This is the "N threads of lookups against a bulk-loaded index" phase from
/// the roadmap: the index is shared as `&dyn DiskIndex` — the `IndexRead`
/// half of the trait takes `&self` and is `Sync`, so no locking exists
/// outside the storage layer. Panics if the workload contains no lookups.
pub fn run_par_lookup(
    choice: IndexChoice,
    config: &RunConfig,
    workload: &Workload,
    threads: usize,
) -> ParLookupReport {
    run_par_lookup_batched(choice, config, workload, threads, 1)
}

/// Like [`run_par_lookup`], but each reader thread issues its keys through
/// [`lidx_core::index::IndexRead::lookup_batch`] in chunks of `batch`
/// (`batch <= 1` degenerates to per-key lookups). This is the parallel
/// harness for the batched read path: the same frozen-index sharing, with
/// per-thread batches amortising shared inner blocks and leaf decodes.
pub fn run_par_lookup_batched(
    choice: IndexChoice,
    config: &RunConfig,
    workload: &Workload,
    threads: usize,
    batch: usize,
) -> ParLookupReport {
    assert!(threads >= 1, "at least one reader thread is required");
    let disk = config.make_disk();
    let mut index = choice.build(Arc::clone(&disk));
    index.bulk_load(&workload.bulk).expect("bulk load");

    let keys: Vec<Key> = workload
        .ops
        .iter()
        .filter_map(|op| match *op {
            Op::Lookup(k) => Some(k),
            _ => None,
        })
        .collect();
    assert!(!keys.is_empty(), "par_lookup requires a workload with lookup operations");

    // Steady-state measurement, as in run_workload: reset counters and start
    // from a cold access state.
    disk.stats().reset();
    disk.clear_buffer();
    disk.reset_access_state();

    let shared: &dyn DiskIndex = &*index;
    let keys = &keys;
    let start = Instant::now();
    let not_found: u64 = std::thread::scope(|s| {
        let handles: Vec<_> = (0..threads)
            .map(|t| {
                s.spawn(move || {
                    let mine: Vec<Key> = keys.iter().skip(t).step_by(threads).copied().collect();
                    let mut misses = 0u64;
                    if batch <= 1 {
                        for &k in &mine {
                            if shared.lookup(k).expect("lookup").is_none() {
                                misses += 1;
                            }
                        }
                    } else {
                        let mut answers = Vec::with_capacity(batch);
                        for chunk in mine.chunks(batch) {
                            shared.lookup_batch(chunk, &mut answers).expect("lookup_batch");
                            misses += answers.iter().filter(|a| a.is_none()).count() as u64;
                        }
                    }
                    misses
                })
            })
            .collect();
        handles.into_iter().map(|h| h.join().expect("reader thread panicked")).sum()
    });
    let wall_seconds = start.elapsed().as_secs_f64();

    ParLookupReport {
        index: index.name(),
        threads,
        batch: batch.max(1),
        total_ops: keys.len() as u64,
        wall_seconds,
        not_found,
        blocks_read: disk.stats().reads(),
    }
}

/// Everything measured by one [`run_batch_lookup`] phase: a lookup-only
/// workload executed against a warm buffer pool, either per-key or through
/// [`lidx_core::index::IndexRead::lookup_batch`].
#[derive(Debug, Clone)]
pub struct BatchLookupReport {
    /// Index name.
    pub index: String,
    /// Lookups executed.
    pub ops: u64,
    /// Lookups per batch call (1 = sequential per-key lookups).
    pub batch: usize,
    /// Outstanding-read queue depth the run's disk was configured with.
    pub queue_depth: usize,
    /// Wall-clock seconds for the measured pass.
    pub wall_seconds: f64,
    /// Simulated device seconds for the measured pass.
    pub device_seconds: f64,
    /// Simulated device nanoseconds saved by overlapping completion waves
    /// (`sum - max` across every wave; 0 at queue depth 1).
    pub overlap_saved_ns: u64,
    /// Device block reads during the measured pass.
    pub reads: u64,
    /// Buffer-pool hits during the measured pass.
    pub buffer_hits: u64,
    /// Last-block reuse hits during the measured pass.
    pub reuse_hits: u64,
    /// Bytes copied into caller buffers (legacy path; 0 proves zero-copy).
    pub bytes_copied: u64,
    /// Pinned frames handed out.
    pub frames_pinned: u64,
    /// Lookups that returned `None` (should be 0: keys come from the bulk).
    pub not_found: u64,
    /// Stamp verifications that failed during the measured pass (0 on the
    /// in-memory experiment disks; non-zero only under fault injection).
    pub checksum_failures: u64,
    /// Transient read errors retried during the measured pass.
    pub io_retries: u64,
    /// WAL records appended during the measured pass (0: lookups never log).
    pub wal_appends: u64,
    /// Per-op-class telemetry for the measured pass: wall-clock lookup
    /// latencies (one sample per `lookup` / `lookup_batch` call) plus any
    /// pause classes the storage layer recorded (readahead waves, etc.).
    pub telemetry: TelemetrySnapshot,
}

impl BatchLookupReport {
    /// Wall-clock nanoseconds per lookup.
    pub fn wall_ns_per_op(&self) -> f64 {
        self.wall_seconds * 1e9 / self.ops.max(1) as f64
    }

    /// Device block reads per lookup.
    pub fn reads_per_op(&self) -> f64 {
        self.reads as f64 / self.ops.max(1) as f64
    }

    /// Fraction of served reads that hit the buffer pool (last-block reuse
    /// hits are reported separately by [`BatchLookupReport::reuse_hit_rate`]
    /// so pool-tuning comparisons are not polluted by the single-slot
    /// reuse cache).
    pub fn buffer_hit_rate(&self) -> f64 {
        let served = self.reads + self.buffer_hits + self.reuse_hits;
        if served == 0 {
            0.0
        } else {
            self.buffer_hits as f64 / served as f64
        }
    }

    /// Fraction of served reads that hit the single-slot last-block reuse
    /// cache (§6.5).
    pub fn reuse_hit_rate(&self) -> f64 {
        let served = self.reads + self.buffer_hits + self.reuse_hits;
        if served == 0 {
            0.0
        } else {
            self.reuse_hits as f64 / served as f64
        }
    }
}

/// Bulk loads `choice`, warms the buffer pool with one untimed pass over the
/// workload's lookup keys, then measures a second pass issued either per key
/// (`batch <= 1`) or through `lookup_batch` in chunks of `batch`.
///
/// The warm pass makes this a *buffer-hit* measurement: with the pool sized
/// to the working set, the measured pass isolates the per-lookup CPU and
/// copy overhead that the zero-copy `BlockRef` path eliminates — which is
/// exactly what `BENCH_lookup.json` tracks across PRs.
pub fn run_batch_lookup(
    choice: IndexChoice,
    config: &RunConfig,
    workload: &Workload,
    batch: usize,
) -> BatchLookupReport {
    let disk = config.make_disk();
    let mut index = choice.build(Arc::clone(&disk));
    index.bulk_load(&workload.bulk).expect("bulk load");

    let keys: Vec<Key> = workload
        .ops
        .iter()
        .filter_map(|op| match *op {
            Op::Lookup(k) => Some(k),
            _ => None,
        })
        .collect();
    assert!(!keys.is_empty(), "batch_lookup requires a workload with lookup operations");

    // Warm pass: populate the buffer pool, then reset the counters so the
    // measured pass reflects steady-state hit behaviour.
    for &k in &keys {
        index.lookup(k).expect("warm lookup");
    }
    disk.stats().reset();
    disk.telemetry().reset();
    disk.reset_access_state();

    let telemetry = disk.telemetry();
    let mut not_found = 0u64;
    let start = Instant::now();
    if batch <= 1 {
        for &k in &keys {
            let t0 = Instant::now();
            if index.lookup(k).expect("lookup").is_none() {
                not_found += 1;
            }
            telemetry.record_ns(OpClass::Lookup, t0.elapsed().as_nanos() as u64);
        }
    } else {
        let mut answers = Vec::with_capacity(batch);
        for chunk in keys.chunks(batch) {
            let t0 = Instant::now();
            index.lookup_batch(chunk, &mut answers).expect("lookup_batch");
            telemetry.record_ns(OpClass::Lookup, t0.elapsed().as_nanos() as u64);
            not_found += answers.iter().filter(|a| a.is_none()).count() as u64;
        }
    }
    let wall_seconds = start.elapsed().as_secs_f64();

    let stats = disk.stats();
    BatchLookupReport {
        index: index.name(),
        ops: keys.len() as u64,
        batch: batch.max(1),
        queue_depth: config.queue_depth.max(1),
        wall_seconds,
        device_seconds: stats.device_ns() as f64 / 1e9,
        overlap_saved_ns: stats.overlap_saved_ns(),
        reads: stats.reads(),
        buffer_hits: stats.buffer_hits(),
        reuse_hits: stats.reuse_hits(),
        bytes_copied: stats.bytes_copied(),
        frames_pinned: stats.frames_pinned(),
        not_found,
        checksum_failures: stats.checksum_failures(),
        io_retries: stats.io_retries(),
        wal_appends: stats.wal_appends(),
        telemetry: disk.telemetry().snapshot(),
    }
}

/// The outstanding-read queue depths the batched-lookup sweep measures:
/// depth 1 is today's fully synchronous path (the reproducibility anchor),
/// the rest show how overlapping a wave of misses collapses simulated I/O
/// time.
pub const QDEPTH_SWEEP: [usize; 4] = [1, 4, 8, 32];

/// Runs [`run_batch_lookup`] once per queue depth in `depths`, holding
/// everything else (index, workload, batch size, buffer pool) fixed. Each
/// depth gets its own freshly built disk and index, so depth 1 reproduces
/// the plain [`run_batch_lookup`] numbers bit for bit.
pub fn run_batch_lookup_qdepth_sweep(
    choice: IndexChoice,
    config: &RunConfig,
    workload: &Workload,
    batch: usize,
    depths: &[usize],
) -> Vec<BatchLookupReport> {
    depths
        .iter()
        .map(|&depth| {
            let cfg = RunConfig { queue_depth: depth, ..*config };
            run_batch_lookup(choice, &cfg, workload, batch)
        })
        .collect()
}

/// How [`run_batch_insert`] feeds the workload's inserts to the index.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum InsertMode {
    /// One [`IndexWrite::insert`] call per entry, in workload order — the
    /// paper's write path and the baseline the batched modes are measured
    /// against.
    PerKey,
    /// [`IndexWrite::insert_batch`] over workload-order chunks of the given
    /// size (the caller batches; no staging, no reordering across chunks).
    Batch(usize),
    /// A [`WriteBuffer`] front with the given configuration: entries are
    /// staged, overlaid on reads, and drained sorted through `insert_batch`
    /// (flushed at the end so the measurement covers every insert).
    Buffered(WriteBufferConfig),
}

impl InsertMode {
    /// Short name used in report rows.
    pub fn name(&self) -> String {
        match self {
            InsertMode::PerKey => "per-key".to_string(),
            InsertMode::Batch(n) => format!("batch{n}"),
            InsertMode::Buffered(cfg) => format!("buffered{}", cfg.capacity),
        }
    }
}

/// Everything measured by one [`run_batch_insert`] phase: a Write-Only
/// workload executed per key, through `insert_batch`, or behind a
/// group-commit [`WriteBuffer`].
#[derive(Debug, Clone)]
pub struct BatchInsertReport {
    /// Index name (with a `+wb` suffix when buffered).
    pub index: String,
    /// How the inserts were issued.
    pub mode: String,
    /// Inserts executed.
    pub inserts: u64,
    /// Wall-clock seconds for the measured pass.
    pub wall_seconds: f64,
    /// Simulated device seconds for the measured pass.
    pub device_seconds: f64,
    /// Device block reads during the measured pass.
    pub reads: u64,
    /// Device block writes during the measured pass.
    pub writes: u64,
    /// Structural modification operations performed during the pass.
    pub smos: u64,
    /// Insert-step breakdown accumulated during the pass (drain counters
    /// included for the buffered mode).
    pub breakdown: InsertBreakdown,
    /// Inserted keys that a post-pass lookup failed to find (sanity signal;
    /// must be zero).
    pub lost: u64,
}

impl BatchInsertReport {
    /// Simulated device nanoseconds per insert — the deterministic metric
    /// `BENCH_write.json` tracks across PRs.
    pub fn device_ns_per_insert(&self) -> f64 {
        self.device_seconds * 1e9 / self.inserts.max(1) as f64
    }

    /// Device blocks (reads + writes) per insert.
    pub fn io_per_insert(&self) -> f64 {
        (self.reads + self.writes) as f64 / self.inserts.max(1) as f64
    }
}

/// Bulk loads `choice` over `workload.bulk`, then feeds the workload's
/// insert operations to the index in the given [`InsertMode`], measuring
/// simulated device time, I/O and SMO counts — the write-side mirror of
/// [`run_batch_lookup`].
///
/// All modes run under the same storage configuration and consume the same
/// insert stream, so the contrast isolates the insert *strategy*: per-key
/// cold inserts versus caller-batched `insert_batch` versus the staged,
/// sorted group commit of a [`WriteBuffer`] (which is flushed before the
/// measurement ends, so no cost hides in the buffer). After the measured
/// pass every inserted key is looked up once (unmeasured) and the misses
/// are reported as `lost` — the phase checks itself.
pub fn run_batch_insert(
    choice: IndexChoice,
    config: &RunConfig,
    workload: &Workload,
    mode: InsertMode,
) -> BatchInsertReport {
    let disk = config.make_disk();
    let mut index = choice.build(Arc::clone(&disk));
    index.bulk_load(&workload.bulk).expect("bulk load");

    let inserts: Vec<Entry> = workload
        .ops
        .iter()
        .filter_map(|op| match *op {
            Op::Insert(k, v) => Some((k, v)),
            _ => None,
        })
        .collect();
    assert!(!inserts.is_empty(), "batch_insert requires a workload with insert operations");

    disk.stats().reset();
    disk.clear_buffer();
    disk.reset_access_state();
    let breakdown_before = index.insert_breakdown();
    let smos_before = index.stats().smo_count;

    let start = Instant::now();
    let (index, name) = match mode {
        InsertMode::PerKey => {
            for &(k, v) in &inserts {
                index.insert(k, v).expect("insert");
            }
            let name = index.name();
            (index, name)
        }
        InsertMode::Batch(batch) => {
            for chunk in inserts.chunks(batch.max(1)) {
                index.insert_batch(chunk).expect("insert_batch");
            }
            let name = index.name();
            (index, name)
        }
        InsertMode::Buffered(cfg) => {
            let mut buffered = WriteBuffer::new(index, cfg);
            for &(k, v) in &inserts {
                buffered.insert(k, v).expect("buffered insert");
            }
            // Flush inside the measured window so no cost hides in the
            // buffer, then capture the exact drain counters before
            // unwrapping (`insert_breakdown` merges them in).
            buffered.flush().expect("final drain");
            let name = buffered.name();
            let breakdown = buffered.insert_breakdown();
            let index = buffered.into_inner().expect("already flushed");
            let wall_seconds = start.elapsed().as_secs_f64();
            return finish_batch_insert_report(
                &disk,
                index,
                name,
                mode.name(),
                &inserts,
                wall_seconds,
                breakdown,
                breakdown_before,
                smos_before,
            );
        }
    };
    let wall_seconds = start.elapsed().as_secs_f64();
    let breakdown = index.insert_breakdown();
    finish_batch_insert_report(
        &disk,
        index,
        name,
        mode.name(),
        &inserts,
        wall_seconds,
        breakdown,
        breakdown_before,
        smos_before,
    )
}

/// Shared tail of [`run_batch_insert`]: collect the disk counters, diff the
/// breakdown, run the unmeasured self-check lookups and assemble the report.
#[allow(clippy::too_many_arguments)]
fn finish_batch_insert_report(
    disk: &Arc<Disk>,
    index: Box<dyn DiskIndex>,
    name: String,
    mode_name: String,
    inserts: &[Entry],
    wall_seconds: f64,
    breakdown: InsertBreakdown,
    breakdown_before: InsertBreakdown,
    smos_before: u64,
) -> BatchInsertReport {
    let stats = disk.stats();
    let device_seconds = stats.device_ns() as f64 / 1e9;
    let (reads, writes) = (stats.reads(), stats.writes());
    let delta = breakdown.since(&breakdown_before);
    let smos = index.stats().smo_count - smos_before;

    // Unmeasured sanity pass: every inserted key must now be findable.
    let mut answers = Vec::new();
    let keys: Vec<Key> = inserts.iter().map(|&(k, _)| k).collect();
    index.lookup_batch(&keys, &mut answers).expect("verify lookups");
    let lost = answers.iter().filter(|a| a.is_none()).count() as u64;

    BatchInsertReport {
        index: name,
        mode: mode_name,
        inserts: inserts.len() as u64,
        wall_seconds,
        device_seconds,
        reads,
        writes,
        smos,
        breakdown: delta,
        lost,
    }
}

/// The YCSB read/write mixes the concurrent mixed-workload sweep executes
/// (workload E/D variants are out of scope; A/B/C are the contention
/// spectrum: write-heavy, read-mostly, read-only).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum YcsbMix {
    /// YCSB-A: 50 % lookups / 50 % inserts.
    A,
    /// YCSB-B: 95 % lookups / 5 % inserts.
    B,
    /// YCSB-C: 100 % lookups.
    C,
}

impl YcsbMix {
    /// The three mixes in contention order.
    pub const ALL: [YcsbMix; 3] = [YcsbMix::A, YcsbMix::B, YcsbMix::C];

    /// Lowercase name used in report rows and `BENCH_mixed.json`.
    pub fn name(self) -> &'static str {
        match self {
            YcsbMix::A => "ycsb-a",
            YcsbMix::B => "ycsb-b",
            YcsbMix::C => "ycsb-c",
        }
    }

    /// Fraction of worker operations that are lookups.
    pub fn read_fraction(self) -> f64 {
        match self {
            YcsbMix::A => 0.50,
            YcsbMix::B => 0.95,
            YcsbMix::C => 1.00,
        }
    }
}

/// Everything measured by one [`run_mixed_workload`] phase: N worker threads
/// racing a YCSB mix against a background writer that stages and drains
/// through the same [`ShardedWriteBuffer`].
///
/// As with [`ParLookupReport`], throughput is wall-clock: the phase exists to
/// observe how reader threads overlap while drains take the index write lock
/// one chunk at a time.
#[derive(Debug, Clone)]
pub struct MixedWorkloadReport {
    /// Index name (with the `+rw+swb` suffixes of the concurrent front).
    pub index: String,
    /// Mix name (`ycsb-a` / `ycsb-b` / `ycsb-c`).
    pub mix: &'static str,
    /// Number of worker threads (the background writer is extra).
    pub threads: usize,
    /// Operations executed by the worker threads (lookups + staged inserts).
    pub total_ops: u64,
    /// Worker lookups executed.
    pub lookups: u64,
    /// Worker inserts staged.
    pub inserts: u64,
    /// Entries the background writer staged (and drained) during the
    /// measured window — proof the writer was active.
    pub writer_entries: u64,
    /// Wall-clock seconds from the first worker starting to the last one
    /// finishing.
    pub wall_seconds: f64,
    /// Worker lookups of bulk-loaded keys that returned `None` (must be 0:
    /// drains only ever add entries).
    pub not_found: u64,
    /// Exclusive drain chunks applied during the measured window.
    pub drain_chunks: u64,
    /// Entries those chunks carried.
    pub drained_entries: u64,
    /// Reader acquisitions that found the index write-locked mid-drain.
    pub read_stalls: u64,
    /// Writer acquisitions (stages and drains) that had to wait.
    pub write_stalls: u64,
    /// Staged keys a post-run lookup failed to find after the final flush
    /// (sanity signal; must be zero).
    pub lost: u64,
    /// Per-op-class telemetry: wall-clock worker lookup/insert latencies
    /// recorded by the phase plus every pause class the stack recorded on
    /// the shared disk (drains, SMOs, lock waits, readahead waves).
    pub telemetry: TelemetrySnapshot,
}

impl MixedWorkloadReport {
    /// Aggregate worker operations per wall-clock second.
    pub fn aggregate_ops_per_sec(&self) -> f64 {
        if self.wall_seconds <= 0.0 {
            f64::INFINITY
        } else {
            self.total_ops as f64 / self.wall_seconds
        }
    }
}

/// The splitmix64 step: a tiny deterministic per-thread PRNG so worker
/// threads need no shared RNG state.
fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Bulk loads `choice`, wraps it in a [`ShardedWriteBuffer`] (shard
/// boundaries sampled from the full key population) and races `threads`
/// worker threads executing `ops_per_thread` operations of the given YCSB
/// `mix` against one background writer thread that continuously stages
/// chunks and flushes them — so even the read-only YCSB-C rows measure
/// readers overlapping an actively draining writer.
///
/// Lookups draw from the bulk-loaded keys (a miss is reported as
/// `not_found`); worker inserts consume disjoint per-thread slices of the
/// workload's insert pool, and the background writer cycles its own slice.
/// After the workers finish, the buffer is flushed and every staged key is
/// looked up once (unmeasured); misses are reported as `lost`.
pub fn run_mixed_workload(
    choice: IndexChoice,
    config: &RunConfig,
    workload: &Workload,
    mix: YcsbMix,
    threads: usize,
    ops_per_thread: usize,
    buffer: ShardedWriteBufferConfig,
) -> MixedWorkloadReport {
    assert!(threads >= 1, "at least one worker thread is required");
    let disk = config.make_disk();
    let mut index = choice.build(Arc::clone(&disk));
    index.bulk_load(&workload.bulk).expect("bulk load");

    let bulk_keys: Vec<Key> = workload.bulk.iter().map(|e| e.0).collect();
    assert!(!bulk_keys.is_empty(), "mixed workload needs a non-empty bulk load");
    let pool: Vec<Entry> = workload
        .ops
        .iter()
        .filter_map(|op| match *op {
            Op::Insert(k, v) => Some((k, v)),
            _ => None,
        })
        .collect();
    assert!(!pool.is_empty(), "mixed workload needs insert operations (the writer's fuel)");

    // The background writer owns the tail third of the pool; the workers
    // split the rest round-robin.
    let writer_start = pool.len() - pool.len() / 3;
    let (worker_pool, writer_pool) = pool.split_at(writer_start.min(pool.len() - 1).max(1));

    let mut boundary_sample: Vec<Key> =
        bulk_keys.iter().chain(pool.iter().map(|(k, _)| k)).copied().collect();
    boundary_sample.sort_unstable();
    let swb = ShardedWriteBuffer::with_sampled_boundaries(index, buffer, &boundary_sample);

    disk.stats().reset();
    disk.telemetry().reset();
    disk.clear_buffer();
    disk.reset_access_state();

    let swb = &swb;
    let bulk_keys = &bulk_keys;
    let telemetry = disk.telemetry();
    let stop = std::sync::atomic::AtomicBool::new(false);
    let stop = &stop;
    let chunk = buffer.drain.max(1);
    let (wall_seconds, lookups, inserts, not_found, staged_counts, writer_entries) =
        std::thread::scope(|s| {
            let writer = s.spawn(move || {
                // Stage a chunk, then flush the whole buffer: the flush runs
                // the exclusive drain protocol, so while this thread lives
                // the workers race an actively draining writer. The pool is
                // cycled (re-staging is an upsert) until the workers finish.
                let mut staged = 0u64;
                'outer: loop {
                    for c in writer_pool.chunks(chunk) {
                        if stop.load(std::sync::atomic::Ordering::Relaxed) {
                            break 'outer;
                        }
                        swb.stage_batch(c).expect("writer stage");
                        swb.flush().expect("writer drain");
                        staged += c.len() as u64;
                    }
                }
                staged
            });

            let start = Instant::now();
            let results: Vec<(u64, u64, u64, u64)> = {
                let handles: Vec<_> = (0..threads)
                    .map(|t| {
                        s.spawn(move || {
                            let mine: Vec<Entry> =
                                worker_pool.iter().skip(t).step_by(threads).copied().collect();
                            let mut rng = 0x5EED_0000u64 + t as u64;
                            let (mut lookups, mut inserts, mut misses) = (0u64, 0u64, 0u64);
                            let mut next = 0usize;
                            for _ in 0..ops_per_thread {
                                let r = splitmix64(&mut rng);
                                let is_read = mine.is_empty()
                                    || (r >> 11) as f64 / ((1u64 << 53) as f64)
                                        < mix.read_fraction();
                                if is_read {
                                    let k = bulk_keys[(r % bulk_keys.len() as u64) as usize];
                                    let t0 = Instant::now();
                                    if swb.lookup(k).expect("lookup").is_none() {
                                        misses += 1;
                                    }
                                    telemetry
                                        .record_ns(OpClass::Lookup, t0.elapsed().as_nanos() as u64);
                                    lookups += 1;
                                } else {
                                    let (k, v) = mine[next % mine.len()];
                                    let t0 = Instant::now();
                                    swb.stage(k, v).expect("stage");
                                    telemetry
                                        .record_ns(OpClass::Insert, t0.elapsed().as_nanos() as u64);
                                    next += 1;
                                    inserts += 1;
                                }
                            }
                            (lookups, inserts, misses, (next as u64).min(mine.len() as u64))
                        })
                    })
                    .collect();
                handles.into_iter().map(|h| h.join().expect("worker panicked")).collect()
            };
            let wall = start.elapsed().as_secs_f64();
            stop.store(true, std::sync::atomic::Ordering::Relaxed);
            let writer_entries = writer.join().expect("writer panicked");

            let lookups: u64 = results.iter().map(|r| r.0).sum();
            let inserts: u64 = results.iter().map(|r| r.1).sum();
            let misses: u64 = results.iter().map(|r| r.2).sum();
            let staged_counts: Vec<u64> = results.iter().map(|r| r.3).collect();
            (wall, lookups, inserts, misses, staged_counts, writer_entries)
        });

    swb.flush().expect("final flush");
    let stats = disk.stats();
    let (drain_chunks, drained_entries) = (stats.drain_chunks(), stats.drain_entries());
    let (read_stalls, write_stalls) = (stats.read_stalls(), stats.write_stalls());

    // Unmeasured self-check: every key any thread staged must be findable.
    let mut verify: Vec<Key> = Vec::new();
    for (t, &count) in staged_counts.iter().enumerate() {
        verify.extend(
            worker_pool.iter().skip(t).step_by(threads).take(count as usize).map(|&(k, _)| k),
        );
    }
    let writer_staged = (writer_entries as usize).min(writer_pool.len());
    verify.extend(writer_pool.iter().take(writer_staged).map(|&(k, _)| k));
    let mut answers = Vec::new();
    swb.lookup_batch(&verify, &mut answers).expect("verify lookups");
    let lost = answers.iter().filter(|a| a.is_none()).count() as u64;

    MixedWorkloadReport {
        index: swb.name(),
        mix: mix.name(),
        threads,
        total_ops: lookups + inserts,
        lookups,
        inserts,
        writer_entries,
        wall_seconds,
        not_found,
        drain_chunks,
        drained_entries,
        read_stalls,
        write_stalls,
        lost,
        telemetry: disk.telemetry().snapshot(),
    }
}

/// Key distribution the sharded-serving phase draws its read stream from.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum KeyDist {
    /// Every bulk-loaded key equally likely.
    Uniform,
    /// Scrambled zipfian (YCSB theta = 0.99): a few hot keys absorb most
    /// of the traffic, scattered uniformly over the keyspace.
    Zipfian,
}

impl KeyDist {
    /// Both distributions, skewed first (the interesting one).
    pub const ALL: [KeyDist; 2] = [KeyDist::Zipfian, KeyDist::Uniform];

    /// Lowercase name used in report rows and `BENCH_sharded.json`.
    pub fn name(self) -> &'static str {
        match self {
            KeyDist::Uniform => "uniform",
            KeyDist::Zipfian => "zipfian",
        }
    }
}

/// Everything measured by one [`run_sharded_serving`] phase: N worker
/// threads serving a read-mostly stream against a [`ShardedIndex`] while a
/// background writer continuously stages and drains, optionally with one
/// online hot-shard split racing the workload.
///
/// Throughput is wall-clock, as in [`MixedWorkloadReport`]: the phase
/// exists to observe how per-shard write fronts confine drain stalls to
/// one key range while a single-shard router serialises every reader
/// behind every drain chunk.
#[derive(Debug, Clone)]
pub struct ShardedServingReport {
    /// Router name (`<inner>+rw+swb+shardedN`).
    pub index: String,
    /// Read-key distribution (`zipfian` / `uniform`).
    pub dist: &'static str,
    /// Shard count the router was built with.
    pub shards_initial: usize,
    /// Shard count after the run (differs when the online split fired).
    pub shards_final: usize,
    /// Number of worker threads (the background writer is extra).
    pub threads: usize,
    /// Operations executed by the worker threads.
    pub total_ops: u64,
    /// Worker lookups executed.
    pub lookups: u64,
    /// Worker inserts staged.
    pub inserts: u64,
    /// Entries the background writer staged during the measured window.
    pub writer_entries: u64,
    /// Wall-clock seconds from the first worker starting to the last one
    /// finishing.
    pub wall_seconds: f64,
    /// Worker lookups of bulk-loaded keys that returned `None` (must be
    /// 0; a split/merge never drops an entry).
    pub not_found: u64,
    /// Exclusive drain chunks applied across all live shard disks.
    pub drain_chunks: u64,
    /// Reader stalls summed across all live shard disks and the router.
    pub read_stalls: u64,
    /// Writer stalls summed across all live shard disks and the router.
    pub write_stalls: u64,
    /// Online splits executed during the run.
    pub splits: u64,
    /// True when the split fired while workers still had operations in
    /// flight (the "online" claim; false when the run was too short).
    pub split_overlapped: bool,
    /// Staged keys a post-run lookup failed to find after the final flush
    /// (the rebalance-race oracle; must be zero).
    pub lost: u64,
    /// Per-op-class telemetry merged across the router and every live shard
    /// disk: wall-clock worker lookup/insert latencies (recorded on the
    /// router disk) plus drain/SMO/rebalance/lock/wave pauses from the
    /// shards.
    pub telemetry: TelemetrySnapshot,
}

impl ShardedServingReport {
    /// Aggregate worker operations per wall-clock second.
    pub fn aggregate_ops_per_sec(&self) -> f64 {
        if self.wall_seconds <= 0.0 {
            f64::INFINITY
        } else {
            self.total_ops as f64 / self.wall_seconds
        }
    }
}

/// Bulk loads `choice` behind a [`ShardedIndex`] with `shards` shards
/// (boundaries sampled from the full key population, one fresh [`Disk`]
/// per shard) and races `threads` worker threads — 95 % lookups drawn
/// from `dist`, 5 % staged inserts — against one background writer that
/// continuously stages chunks and flushes them through every shard's
/// drain path.
///
/// With `split_hot` set (and more than one shard), once a quarter of the
/// worker operations have completed the hottest shard — measured by
/// routing a sample of the read distribution — is split online at its
/// median while the workload keeps racing. After the workers finish, the
/// router is flushed and every staged key is looked up once (unmeasured);
/// misses are reported as `lost` — zero proves the split moved every
/// entry and routed every racing write.
#[allow(clippy::too_many_arguments)]
pub fn run_sharded_serving(
    choice: IndexChoice,
    config: &RunConfig,
    workload: &Workload,
    dist: KeyDist,
    shards: usize,
    threads: usize,
    ops_per_thread: usize,
    buffer: ShardedWriteBufferConfig,
    split_hot: bool,
) -> ShardedServingReport {
    assert!(threads >= 1, "at least one worker thread is required");
    assert!(shards >= 1, "at least one shard is required");
    let bulk_keys: Vec<Key> = workload.bulk.iter().map(|e| e.0).collect();
    assert!(!bulk_keys.is_empty(), "sharded serving needs a non-empty bulk load");
    let pool: Vec<Entry> = workload
        .ops
        .iter()
        .filter_map(|op| match *op {
            Op::Insert(k, v) => Some((k, v)),
            _ => None,
        })
        .collect();
    assert!(!pool.is_empty(), "sharded serving needs insert operations (the writer's fuel)");
    let writer_start = pool.len() - pool.len() / 3;
    let (worker_pool, writer_pool) = pool.split_at(writer_start.min(pool.len() - 1).max(1));

    let run_config = *config;
    let factory = move || Ok(choice.build(run_config.make_disk()));
    let mut boundary_sample: Vec<Key> =
        bulk_keys.iter().chain(pool.iter().map(|(k, _)| k)).copied().collect();
    boundary_sample.sort_unstable();
    let router_config = ShardedIndexConfig { shards, buffer };
    let mut router =
        ShardedIndex::with_sampled_boundaries(Box::new(factory), router_config, &boundary_sample)
            .expect("build router");
    router.bulk_load(&workload.bulk).expect("bulk load");

    for disk in router.shard_disks() {
        disk.stats().reset();
        disk.telemetry().reset();
        disk.clear_buffer();
        disk.reset_access_state();
    }
    router.disk().stats().reset();
    router.disk().telemetry().reset();

    let zipf = ScrambledZipfian::new(bulk_keys.len(), 0.99);
    let router = &router;
    let bulk_keys = &bulk_keys;
    let telemetry = router.disk().telemetry();
    let zipf = &zipf;
    let stop = std::sync::atomic::AtomicBool::new(false);
    let stop = &stop;
    let ops_done = std::sync::atomic::AtomicU64::new(0);
    let ops_done = &ops_done;
    let chunk = buffer.drain.max(1);
    let total_expected = (threads * ops_per_thread) as u64;

    let (wall_seconds, lookups, inserts, not_found, staged_counts, writer_entries, split_state) =
        std::thread::scope(|s| {
            let writer = s.spawn(move || {
                let mut staged = 0u64;
                'outer: loop {
                    for c in writer_pool.chunks(chunk) {
                        if stop.load(std::sync::atomic::Ordering::Relaxed) {
                            break 'outer;
                        }
                        router.stage_batch(c).expect("writer stage");
                        router.flush().expect("writer drain");
                        staged += c.len() as u64;
                    }
                }
                staged
            });

            let start = Instant::now();
            let handles: Vec<_> = (0..threads)
                .map(|t| {
                    s.spawn(move || {
                        let mine: Vec<Entry> =
                            worker_pool.iter().skip(t).step_by(threads).copied().collect();
                        let mut rng = 0x5EED_0000u64 + t as u64;
                        let (mut lookups, mut inserts, mut misses) = (0u64, 0u64, 0u64);
                        let mut next = 0usize;
                        for _ in 0..ops_per_thread {
                            let r = splitmix64(&mut rng);
                            let u = (r >> 11) as f64 / ((1u64 << 53) as f64);
                            let is_read = mine.is_empty() || u < 0.95;
                            if is_read {
                                let pos = match dist {
                                    KeyDist::Uniform => (r % bulk_keys.len() as u64) as usize,
                                    KeyDist::Zipfian => zipf.position(u / 0.95),
                                };
                                let t0 = Instant::now();
                                if router.lookup(bulk_keys[pos]).expect("lookup").is_none() {
                                    misses += 1;
                                }
                                telemetry
                                    .record_ns(OpClass::Lookup, t0.elapsed().as_nanos() as u64);
                                lookups += 1;
                            } else {
                                let (k, v) = mine[next % mine.len()];
                                let t0 = Instant::now();
                                router.stage(k, v).expect("stage");
                                telemetry
                                    .record_ns(OpClass::Insert, t0.elapsed().as_nanos() as u64);
                                next += 1;
                                inserts += 1;
                            }
                            ops_done.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
                        }
                        (lookups, inserts, misses, (next as u64).min(mine.len() as u64))
                    })
                })
                .collect();

            // The coordinator: once a quarter of the operations have
            // landed, split the hottest shard while the workload races.
            let mut split_state = (0u64, false);
            if split_hot && router.shard_count() > 1 {
                while ops_done.load(std::sync::atomic::Ordering::Relaxed) < total_expected / 4 {
                    std::thread::yield_now();
                }
                let mut heat = vec![0u64; router.shard_count()];
                let mut rng = 0xD15Eu64;
                for _ in 0..4096 {
                    let r = splitmix64(&mut rng);
                    let u = (r >> 11) as f64 / ((1u64 << 53) as f64);
                    let pos = match dist {
                        KeyDist::Uniform => (r % bulk_keys.len() as u64) as usize,
                        KeyDist::Zipfian => zipf.position(u),
                    };
                    let s = router.shard_of(bulk_keys[pos]);
                    if s < heat.len() {
                        heat[s] += 1;
                    }
                }
                let hot =
                    heat.iter().enumerate().max_by_key(|&(_, &h)| h).map(|(s, _)| s).unwrap_or(0);
                router.split_shard(hot, None).expect("online split");
                let at = ops_done.load(std::sync::atomic::Ordering::Relaxed);
                split_state = (router.splits(), at < total_expected);
            }

            let results: Vec<(u64, u64, u64, u64)> =
                handles.into_iter().map(|h| h.join().expect("worker panicked")).collect();
            let wall = start.elapsed().as_secs_f64();
            stop.store(true, std::sync::atomic::Ordering::Relaxed);
            let writer_entries = writer.join().expect("writer panicked");

            let lookups: u64 = results.iter().map(|r| r.0).sum();
            let inserts: u64 = results.iter().map(|r| r.1).sum();
            let misses: u64 = results.iter().map(|r| r.2).sum();
            let staged_counts: Vec<u64> = results.iter().map(|r| r.3).collect();
            (wall, lookups, inserts, misses, staged_counts, writer_entries, split_state)
        });

    router.flush().expect("final flush");
    let aggregate = router.aggregate_stats();

    // Unmeasured self-check — the rebalance-race oracle: every key any
    // thread staged must be findable after splits, merges and drains.
    let mut verify: Vec<Key> = Vec::new();
    for (t, &count) in staged_counts.iter().enumerate() {
        verify.extend(
            worker_pool.iter().skip(t).step_by(threads).take(count as usize).map(|&(k, _)| k),
        );
    }
    let writer_staged = (writer_entries as usize).min(writer_pool.len());
    verify.extend(writer_pool.iter().take(writer_staged).map(|&(k, _)| k));
    let mut answers = Vec::new();
    router.lookup_batch(&verify, &mut answers).expect("verify lookups");
    let lost = answers.iter().filter(|a| a.is_none()).count() as u64;

    ShardedServingReport {
        index: router.name(),
        dist: dist.name(),
        shards_initial: shards,
        shards_final: router.shard_count(),
        threads,
        total_ops: lookups + inserts,
        lookups,
        inserts,
        writer_entries,
        wall_seconds,
        not_found,
        drain_chunks: aggregate.drain_chunks,
        read_stalls: aggregate.read_stalls,
        write_stalls: aggregate.write_stalls,
        splits: split_state.0,
        split_overlapped: split_state.1,
        lost,
        telemetry: router.aggregate_telemetry().snapshot(),
    }
}

/// Everything measured by one [`run_scan_interference`] phase: the
/// hot-lookup pool hit rate before and while a full-table scan streams.
#[derive(Debug, Clone)]
pub struct ScanInterferenceReport {
    /// Index name.
    pub index: String,
    /// Buffer pool replacement policy used.
    pub policy: ReplacementPolicy,
    /// Buffer pool partitioning used.
    pub partitions: PoolPartitions,
    /// Number of hot keys probed per round.
    pub hot_keys: usize,
    /// Pool hit rate of a hot-lookup pass with no scan running (after the
    /// warm-up passes). Hit rates count buffer-pool hits over pool hits plus
    /// device reads; single-slot last-block reuse hits (§6.5) are excluded
    /// so the metric isolates replacement behaviour.
    pub baseline_hit_rate: f64,
    /// Pool hit rate of the hot-lookup passes interleaved with the scan
    /// chunks (averaged over every round).
    pub under_scan_hit_rate: f64,
    /// Entries produced by the interfering full-table scan.
    pub scanned_entries: u64,
    /// Read requests the scan tagged as scan-class (proof the scan
    /// announced itself to the pool).
    pub scan_reads: u64,
    /// Device reads of inner-node blocks during the measured hot rounds —
    /// i.e. how often the scan managed to evict the descent path. Zero when
    /// [`PoolPartitions::InnerReserved`] does its job.
    pub under_scan_inner_reads: u64,
}

impl ScanInterferenceReport {
    /// How many percentage points of hit rate the scan cost the hot lookups
    /// (positive = degradation; ~0 = scan-resistant).
    pub fn degradation_points(&self) -> f64 {
        (self.baseline_hit_rate - self.under_scan_hit_rate) * 100.0
    }
}

/// Bulk loads `choice`, promotes a strided hot-lookup working set into the
/// buffer pool, measures its no-scan pool hit rate, then interleaves hot
/// rounds with a chunked full-table scan (issued through
/// [`lidx_core::index::IndexRead::scan_batch`], whose block reads the
/// indexes tag scan-class) and measures the hit rate again.
///
/// This is the roadmap's scan-resistance experiment: under strict LRU each
/// scan chunk flushes the pool and the hot hit rate collapses, while the 2Q
/// policy confines the stream to its probation queue and the hot (protected)
/// set keeps hitting — the numbers `BENCH_scan.json` snapshots.
///
/// The hot keys are taken at a uniform stride over the bulk-loaded keys so
/// each probe lands in a distinct leaf; `config.buffer_blocks` should
/// comfortably exceed that working set (hot leaves plus the inner path) and
/// be far smaller than the table, or the experiment degenerates.
pub fn run_scan_interference(
    choice: IndexChoice,
    config: &RunConfig,
    workload: &Workload,
    hot_keys: usize,
) -> ScanInterferenceReport {
    assert!(config.buffer_blocks > 0, "scan interference needs a buffer pool");
    let disk = config.make_disk();
    let mut index = choice.build(Arc::clone(&disk));
    index.bulk_load(&workload.bulk).expect("bulk load");
    let bulk: Vec<Key> = workload.bulk.iter().map(|e| e.0).collect();
    assert!(!bulk.is_empty(), "scan interference needs a non-empty bulk load");

    let hot_keys = hot_keys.clamp(1, bulk.len());
    let stride = (bulk.len() / hot_keys).max(1);
    let hot: Vec<Key> = bulk.iter().step_by(stride).take(hot_keys).copied().collect();

    disk.stats().reset();
    disk.clear_buffer();
    disk.reset_access_state();

    // One hot pass; returns (pool hits, pool hits + device reads, device
    // reads of inner blocks). Last-block reuse hits are excluded on both
    // sides: the single-slot §6.5 cache serves same-block request bursts
    // regardless of the pool policy (the hybrid inner directory issues
    // dozens per lookup), and counting them would dilute exactly the
    // pool-replacement behaviour this experiment isolates.
    let hot_pass = |index: &dyn DiskIndex| -> (u64, u64, u64) {
        disk.reset_access_state();
        let before = disk.snapshot();
        for &k in &hot {
            index.lookup(k).expect("hot lookup");
        }
        let delta = disk.snapshot().since(&before);
        (
            delta.buffer_hits,
            delta.reads() + delta.buffer_hits,
            delta.reads_of(BlockKind::Inner) + delta.reads_of(BlockKind::Meta),
        )
    };
    let rate = |(hits, served, _): (u64, u64, u64)| hits as f64 / served.max(1) as f64;

    // Two warm passes: the first admits the hot working set, the second
    // re-references it (which is what promotes it under 2Q / sets the CLOCK
    // bits), then the measured no-scan baseline.
    hot_pass(&*index);
    hot_pass(&*index);
    let baseline_hit_rate = rate(hot_pass(&*index));

    // Interference: each round streams one full-table Scan-Only pass (split
    // in two halves to exercise the multi-range `scan_batch` path) and then
    // measures one hot round. At experiment scale the table is several times
    // the pool, so under LRU every scan pass flushes the hot set.
    const ROUNDS: usize = 4;
    let half = bulk.len().div_ceil(2);
    let mid_key = bulk[half.min(bulk.len() - 1)];
    let ranges = [(bulk[0], half), (mid_key, bulk.len() - half)];
    let mut rows: Vec<Vec<lidx_core::Entry>> = Vec::new();
    let mut scanned_entries = 0u64;
    let scan_reads_before = disk.stats().scan_reads();
    let (mut hits, mut served, mut inner_reads) = (0u64, 0u64, 0u64);
    for _ in 0..ROUNDS {
        index.scan_batch(&ranges, &mut rows).expect("scan pass");
        scanned_entries += rows.iter().map(|r| r.len() as u64).sum::<u64>();
        let (h, s, i) = hot_pass(&*index);
        hits += h;
        served += s;
        inner_reads += i;
    }
    let scan_reads = disk.stats().scan_reads() - scan_reads_before;

    ScanInterferenceReport {
        index: index.name(),
        policy: config.buffer_policy,
        partitions: config.buffer_partitions,
        hot_keys,
        baseline_hit_rate,
        under_scan_hit_rate: hits as f64 / served.max(1) as f64,
        scanned_entries,
        scan_reads,
        under_scan_inner_reads: inner_reads,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lidx_workloads::{Dataset, WorkloadKind, WorkloadSpec};

    #[test]
    fn every_index_runs_a_small_lookup_workload() {
        let keys = Dataset::Ycsb.generate_keys(5_000, 1);
        let w = Workload::build(&keys, WorkloadSpec::new(WorkloadKind::LookupOnly, 200, 0));
        for choice in IndexChoice::ALL_DESIGNS {
            let r = run_workload(choice, &RunConfig::default(), &w);
            assert_eq!(r.ops, 200);
            assert!(r.avg_reads_per_op >= 1.0, "{choice:?} must read blocks for lookups");
            assert!(r.throughput().is_finite());
            assert!(r.storage_blocks > 0);
            assert_eq!(r.index, choice.build(RunConfig::default().make_disk()).name());
        }
    }

    #[test]
    fn every_index_runs_a_small_mixed_workload() {
        let keys = Dataset::Osm.generate_keys(4_000, 2);
        let w = Workload::build(&keys, WorkloadSpec::new(WorkloadKind::Balanced, 400, 2_000));
        for choice in IndexChoice::EVALUATED {
            let r = run_workload(choice, &RunConfig::default(), &w);
            assert!(r.avg_writes_per_op > 0.0, "{choice:?} must write blocks for inserts");
            assert!(r.latency.p99_ns >= r.latency.p50_ns);
        }
    }

    #[test]
    fn memory_resident_inner_reduces_fetched_blocks() {
        let keys = Dataset::Fb.generate_keys(20_000, 3);
        let w = Workload::build(&keys, WorkloadSpec::new(WorkloadKind::LookupOnly, 300, 0));
        let on_disk = run_workload(IndexChoice::BTree, &RunConfig::default(), &w);
        let hybrid_cfg = RunConfig { memory_resident_inner: true, ..Default::default() };
        let cached = run_workload(IndexChoice::BTree, &hybrid_cfg, &w);
        assert!(cached.avg_reads_per_op < on_disk.avg_reads_per_op);
        assert!(cached.avg_inner_reads_per_op < 0.01);
    }

    #[test]
    fn par_lookup_runs_every_index_with_multiple_threads() {
        let keys = Dataset::Ycsb.generate_keys(4_000, 3);
        let w = Workload::build(&keys, WorkloadSpec::new(WorkloadKind::LookupOnly, 256, 0));
        for choice in IndexChoice::ALL_DESIGNS {
            let r = run_par_lookup(choice, &RunConfig::default(), &w, 4);
            assert_eq!(r.threads, 4);
            assert_eq!(r.total_ops, 256, "{choice:?} must execute every lookup");
            assert_eq!(r.not_found, 0, "{choice:?} lookup keys come from the bulk load");
            assert!(r.blocks_read > 0, "{choice:?} must fetch blocks");
            assert!(r.aggregate_ops_per_sec() > 0.0);
            assert!(r.per_thread_ops_per_sec() <= r.aggregate_ops_per_sec());
        }
    }

    #[test]
    fn batched_par_lookup_covers_every_key() {
        let keys = Dataset::Ycsb.generate_keys(4_000, 3);
        let w = Workload::build(&keys, WorkloadSpec::new(WorkloadKind::LookupOnly, 256, 0));
        for choice in [IndexChoice::BTree, IndexChoice::Pgm, IndexChoice::HybridModelTree] {
            let r = run_par_lookup_batched(choice, &RunConfig::default(), &w, 3, 16);
            assert_eq!(r.total_ops, 256, "{choice:?} must execute every lookup");
            assert_eq!(r.not_found, 0, "{choice:?} lookup keys come from the bulk load");
            assert_eq!(r.batch, 16);
            assert!(r.blocks_read > 0);
        }
    }

    #[test]
    fn mixed_workload_phase_loses_nothing_for_every_design() {
        let keys = Dataset::Ycsb.generate_keys(6_000, 13);
        let w = Workload::build(&keys, WorkloadSpec::new(WorkloadKind::Balanced, 2_000, 3_000));
        let buffer = ShardedWriteBufferConfig { capacity: 256, drain: 64, shards: 4 };
        for choice in IndexChoice::ALL_DESIGNS {
            for mix in YcsbMix::ALL {
                let r = run_mixed_workload(choice, &RunConfig::default(), &w, mix, 2, 150, buffer);
                assert_eq!(r.total_ops, 300, "{choice:?} {mix:?}");
                assert_eq!(r.lookups + r.inserts, r.total_ops);
                assert_eq!(r.not_found, 0, "{choice:?} {mix:?} bulk keys must stay visible");
                assert_eq!(r.lost, 0, "{choice:?} {mix:?} staged keys must survive the race");
                assert!(r.writer_entries > 0, "{choice:?} {mix:?} writer must stage entries");
                assert!(r.drain_chunks > 0, "{choice:?} {mix:?} writer must drain exclusively");
                assert!(r.drained_entries >= r.writer_entries.min(64));
                assert!(r.index.ends_with("+rw+swb"), "{choice:?} name: {}", r.index);
                assert!(r.aggregate_ops_per_sec() > 0.0);
                let lk = r.telemetry.class(OpClass::Lookup);
                assert_eq!(lk.summary.count, r.lookups, "{choice:?} {mix:?} lookup samples");
                let drain = r.telemetry.class(OpClass::Drain);
                assert!(drain.summary.count > 0, "{choice:?} {mix:?} drains must be timed");
                assert!(
                    r.telemetry.top_pauses(3).iter().any(|c| c.class == OpClass::Drain),
                    "{choice:?} {mix:?} drain must rank among the top pauses"
                );
                if mix == YcsbMix::C {
                    assert_eq!(r.inserts, 0, "{choice:?} YCSB-C workers are read-only");
                } else {
                    let ins = r.telemetry.class(OpClass::Insert);
                    assert_eq!(ins.summary.count, r.inserts, "{choice:?} {mix:?} insert samples");
                }
            }
        }
    }

    #[test]
    fn batch_lookup_phase_is_zero_copy_and_batching_reduces_reads() {
        let keys = Dataset::Ycsb.generate_keys(8_000, 5);
        let w = Workload::build(&keys, WorkloadSpec::new(WorkloadKind::LookupOnly, 400, 0));
        let cfg = RunConfig { buffer_blocks: 64, ..Default::default() };
        for choice in [IndexChoice::BTree, IndexChoice::Pgm] {
            let seq = run_batch_lookup(choice, &cfg, &w, 1);
            let bat = run_batch_lookup(choice, &cfg, &w, 64);
            assert_eq!(seq.ops, 400);
            assert_eq!(seq.not_found, 0, "{choice:?}");
            assert_eq!(bat.not_found, 0, "{choice:?}");
            assert_eq!(seq.bytes_copied, 0, "{choice:?} lookups must be zero-copy");
            assert_eq!(bat.bytes_copied, 0, "{choice:?} batched lookups must be zero-copy");
            assert!(seq.frames_pinned > 0, "{choice:?} must pin frames");
            assert!(
                bat.reads <= seq.reads,
                "{choice:?} batching must not fetch more blocks ({} vs {})",
                bat.reads,
                seq.reads
            );
            assert!(seq.buffer_hit_rate() > 0.0, "{choice:?} warm pool must produce hits");
            let lk = seq.telemetry.class(OpClass::Lookup);
            assert_eq!(lk.summary.count, seq.ops, "{choice:?} one lookup sample per op");
            assert!(
                lk.summary.p50_ns <= lk.summary.p999_ns && lk.summary.p999_ns <= lk.summary.max_ns,
                "{choice:?} lookup percentiles must be ordered: {:?}",
                lk.summary
            );
        }
    }

    #[test]
    fn qdepth_sweep_overlaps_simulated_io_for_every_design() {
        let keys = Dataset::Ycsb.generate_keys(20_000, 7);
        let w = Workload::build(&keys, WorkloadSpec::new(WorkloadKind::LookupOnly, 512, 0));
        let cfg = RunConfig { buffer_blocks: 64, ..Default::default() };
        for choice in IndexChoice::ALL_DESIGNS {
            let sweep = run_batch_lookup_qdepth_sweep(choice, &cfg, &w, 64, &[1, 8]);
            let (d1, d8) = (&sweep[0], &sweep[1]);
            assert_eq!(d1.queue_depth, 1);
            assert_eq!(d8.queue_depth, 8);
            assert_eq!(d1.not_found, 0, "{choice:?} keys come from the bulk load");
            assert_eq!(d8.not_found, 0, "{choice:?} queued answers must match");
            assert_eq!(d1.overlap_saved_ns, 0, "{choice:?} depth 1 must stay synchronous");
            assert!(d8.overlap_saved_ns > 0, "{choice:?} depth 8 must overlap waves");
            assert!(
                d8.device_seconds < d1.device_seconds,
                "{choice:?} outstanding reads must cut simulated I/O ({} vs {})",
                d8.device_seconds,
                d1.device_seconds
            );
        }
    }

    #[test]
    fn batch_insert_phase_runs_every_design_in_every_mode() {
        let keys = Dataset::Ycsb.generate_keys(6_000, 5);
        let w = Workload::build(&keys, WorkloadSpec::new(WorkloadKind::WriteOnly, 300, 2_000));
        let cfg = RunConfig { buffer_blocks: 64, ..Default::default() };
        let wb = lidx_core::WriteBufferConfig { capacity: 128, drain: 64 };
        for choice in IndexChoice::ALL_DESIGNS {
            for mode in [InsertMode::PerKey, InsertMode::Batch(32), InsertMode::Buffered(wb)] {
                let r = run_batch_insert(choice, &cfg, &w, mode);
                assert_eq!(r.inserts, 300, "{choice:?} {mode:?}");
                assert_eq!(r.lost, 0, "{choice:?} {mode:?} must find every inserted key");
                assert_eq!(r.breakdown.inserts, 300, "{choice:?} {mode:?} breakdown coverage");
                assert!(r.writes > 0, "{choice:?} {mode:?} must write blocks");
                assert!(r.device_seconds > 0.0);
                match mode {
                    InsertMode::Buffered(_) => {
                        assert!(r.index.ends_with("+wb"), "{choice:?} buffered name: {}", r.index);
                        assert!(r.breakdown.drains >= 2, "{choice:?} expected multiple drains");
                        assert_eq!(r.breakdown.drained_entries, 300, "{choice:?}");
                    }
                    _ => assert_eq!(r.breakdown.drains, 0, "{choice:?} {mode:?}"),
                }
            }
        }
    }

    #[test]
    fn scan_interference_pins_the_policy_contrast() {
        // The PR's acceptance criterion at a reduced (CI-friendly) scale: a
        // 64-block pool against a ~30k-key table (hundreds of leaf blocks).
        // 2Q must hold the hot hit rate within 5 points of its no-scan
        // baseline; strict LRU must degrade by well more than that.
        let keys = Dataset::Ycsb.generate_keys(30_000, 11);
        let w = Workload::build(&keys, WorkloadSpec::new(WorkloadKind::LookupOnly, 1, 0));
        let run = |policy| {
            let cfg = RunConfig { buffer_blocks: 64, buffer_policy: policy, ..Default::default() };
            run_scan_interference(IndexChoice::BTree, &cfg, &w, 24)
        };
        let twoq = run(ReplacementPolicy::TwoQ);
        let lru = run(ReplacementPolicy::Lru);
        assert!(twoq.scan_reads > 0, "the scan must tag its reads");
        assert!(twoq.scanned_entries >= 30_000, "the scan must cover the table");
        assert!(
            twoq.baseline_hit_rate > 0.9,
            "2Q baseline must be warm, got {}",
            twoq.baseline_hit_rate
        );
        assert!(
            twoq.degradation_points() <= 5.0,
            "2Q must hold within 5 points, lost {:.1}",
            twoq.degradation_points()
        );
        assert!(
            lru.degradation_points() > 10.0,
            "LRU must degrade under the scan, lost only {:.1}",
            lru.degradation_points()
        );
    }

    #[test]
    fn inner_reservation_keeps_inner_reads_cached_during_scans() {
        // Partitioning is orthogonal to the policy: even under LRU, a
        // reserved inner partition keeps the descent path cached while the
        // scan churns the general partition.
        let keys = Dataset::Ycsb.generate_keys(30_000, 11);
        let w = Workload::build(&keys, WorkloadSpec::new(WorkloadKind::LookupOnly, 1, 0));
        let run = |partitions| {
            let cfg = RunConfig {
                buffer_blocks: 64,
                buffer_partitions: partitions,
                ..Default::default()
            };
            run_scan_interference(IndexChoice::BTree, &cfg, &w, 24)
        };
        let unified = run(PoolPartitions::Unified);
        let reserved = run(PoolPartitions::InnerReserved { percent: 25 });
        assert_eq!(
            reserved.under_scan_inner_reads, 0,
            "with a reserved partition the scan must never evict the descent path"
        );
        assert!(
            unified.under_scan_inner_reads > 0,
            "without partitions the scan must evict inner blocks (otherwise \
             this test is vacuous)"
        );
    }

    #[test]
    fn scan_batch_matches_sequential_scans_for_every_design() {
        let keys = Dataset::Osm.generate_keys(4_000, 9);
        let w = Workload::build(&keys, WorkloadSpec::new(WorkloadKind::LookupOnly, 1, 0));
        let ranges: Vec<(Key, usize)> = vec![
            (keys[100], 50),
            (0, 10),
            (keys[100], 50), // duplicate range
            (keys[keys.len() - 1] + 1, 5),
            (keys[2_000], 0),
        ];
        for choice in IndexChoice::ALL_DESIGNS {
            let disk = RunConfig::default().make_disk();
            let mut index = choice.build(disk);
            index.bulk_load(&w.bulk).expect("bulk load");
            let mut batched: Vec<Vec<lidx_core::Entry>> = Vec::new();
            index.scan_batch(&ranges, &mut batched).expect("scan_batch");
            assert_eq!(batched.len(), ranges.len(), "{choice:?}");
            let mut single = Vec::new();
            for (i, &(start, count)) in ranges.iter().enumerate() {
                index.scan(start, count, &mut single).expect("scan");
                assert_eq!(batched[i], single, "{choice:?} range {i} diverges");
            }
        }
    }

    #[test]
    fn index_choice_names_roundtrip() {
        for c in IndexChoice::ALL {
            assert_eq!(IndexChoice::from_name(c.name()), Some(c));
        }
        assert_eq!(IndexChoice::from_name("nope"), None);
    }
}
