//! The experiment harness reproducing every table and figure of the paper's
//! evaluation section (§5–§7).
//!
//! * [`runner`] builds any of the studied indexes on a freshly configured
//!   simulated disk, executes a [`lidx_workloads::Workload`] against it and
//!   collects the metrics the paper reports: throughput (derived from the
//!   device cost model), average fetched blocks per query broken down by
//!   block kind, tail latency, storage footprint and the insert-step
//!   breakdown.
//! * [`experiments`] contains one function per table / figure; each prints
//!   the same rows or series the paper shows, at a configurable scale.
//! * [`report`] holds small text-table formatting helpers.
//!
//! The `exp` binary (`cargo run -p lidx-experiments --bin exp -- <target>`)
//! dispatches to these functions; `exp all` regenerates everything, which is
//! what `EXPERIMENTS.md` records.

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod experiments;
pub mod recovery;
pub mod report;
pub mod runner;
pub mod sharded_recovery;

pub use recovery::{
    create_durable_index, create_durable_index_with, reopen_durable_index, DurableIndex,
};
pub use runner::{IndexChoice, RunConfig, WorkloadReport};
pub use sharded_recovery::{DurableShardedRouter, SplitFault};
