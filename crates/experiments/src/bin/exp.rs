//! The experiment driver.
//!
//! ```text
//! cargo run --release -p lidx-experiments --bin exp -- <target> [options]
//!
//! targets:  table2 table3 table4 table5 fig3 fig4 ... fig14
//!           layout_ablation space_reuse_ablation par_lookup all list
//! options:  --keys N        dataset size for search workloads   (default 200000)
//!           --ops N         operations per workload             (default 5000)
//!           --bulk N        bulk-loaded keys for mixed workloads (default 50000)
//!           --seed N        RNG seed                             (default 42)
//!           --threads N     max reader threads for par_lookup    (default 4)
//!           --dataset-path F  SOSD binary key file (u64 LE count + keys)
//!                             replacing the synthetic datasets
//!           --quick         tiny scale for smoke testing
//! ```

use lidx_experiments::experiments::{all_experiments, Scale};

fn parse_args() -> (Vec<String>, Scale) {
    let mut scale = Scale::default();
    let mut targets = Vec::new();
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--keys" => scale.keys = args.next().and_then(|v| v.parse().ok()).expect("--keys N"),
            "--ops" => scale.ops = args.next().and_then(|v| v.parse().ok()).expect("--ops N"),
            "--bulk" => {
                scale.bulk_keys = args.next().and_then(|v| v.parse().ok()).expect("--bulk N")
            }
            "--seed" => scale.seed = args.next().and_then(|v| v.parse().ok()).expect("--seed N"),
            "--threads" => {
                scale.threads = args.next().and_then(|v| v.parse().ok()).expect("--threads N")
            }
            "--dataset-path" => {
                scale.dataset_path = Some(args.next().expect("--dataset-path FILE").into());
            }
            "--quick" => {
                scale.keys = 20_000;
                scale.ops = 500;
                scale.bulk_keys = 5_000;
            }
            other => targets.push(other.to_string()),
        }
    }
    (targets, scale)
}

fn main() {
    let (targets, scale) = parse_args();
    let registry = all_experiments();

    if targets.is_empty() || targets.iter().any(|t| t == "list") {
        eprintln!(
            "usage: exp <target>... [--keys N] [--ops N] [--bulk N] [--seed N] [--threads N] \
             [--dataset-path FILE] [--quick]"
        );
        eprintln!("targets:");
        for (name, _) in &registry {
            eprintln!("  {name}");
        }
        eprintln!("  all");
        return;
    }

    println!(
        "scale: {} keys, {} ops, {} bulk keys, seed {}",
        scale.keys, scale.ops, scale.bulk_keys, scale.seed
    );
    for target in &targets {
        if target == "all" {
            for (name, f) in &registry {
                println!("\n#### {name} ####");
                f(&scale);
            }
            continue;
        }
        // Accept kebab-case spellings (`bench-snapshot` == `bench_snapshot`).
        let target = target.replace('-', "_");
        match registry.iter().find(|(name, _)| *name == target) {
            Some((_, f)) => {
                println!();
                f(&scale);
            }
            None => {
                eprintln!("unknown experiment '{target}' (use 'list' to see the available ones)");
                std::process::exit(1);
            }
        }
    }
}
