//! Plain-text table formatting for experiment output, plus the shared
//! renderers that turn a [`TelemetrySnapshot`] into the per-op-class tail
//! table and the hand-formatted JSON fragments the `BENCH_*.json` snapshots
//! embed.

use lidx_storage::TelemetrySnapshot;

/// A simple fixed-width text table.
#[derive(Debug, Default)]
pub struct Table {
    header: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// Creates a table with the given column headers.
    pub fn new<S: Into<String>>(header: impl IntoIterator<Item = S>) -> Self {
        Table { header: header.into_iter().map(Into::into).collect(), rows: Vec::new() }
    }

    /// Appends one row (cells are stringified by the caller).
    pub fn row<S: Into<String>>(&mut self, cells: impl IntoIterator<Item = S>) {
        self.rows.push(cells.into_iter().map(Into::into).collect());
    }

    /// Number of data rows.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// True when the table has no data rows.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Renders the table.
    pub fn render(&self) -> String {
        let cols = self.header.len().max(self.rows.iter().map(Vec::len).max().unwrap_or(0));
        let mut widths = vec![0usize; cols];
        for (i, h) in self.header.iter().enumerate() {
            widths[i] = widths[i].max(h.len());
        }
        for row in &self.rows {
            for (i, c) in row.iter().enumerate() {
                widths[i] = widths[i].max(c.len());
            }
        }
        let mut out = String::new();
        let fmt_row = |cells: &[String], widths: &[usize]| -> String {
            let mut line = String::new();
            for (i, w) in widths.iter().enumerate() {
                let cell = cells.get(i).map(String::as_str).unwrap_or("");
                if i > 0 {
                    line.push_str("  ");
                }
                line.push_str(&format!("{cell:>w$}", w = w));
            }
            line
        };
        out.push_str(&fmt_row(&self.header, &widths));
        out.push('\n');
        out.push_str(&"-".repeat(widths.iter().sum::<usize>() + 2 * (cols.saturating_sub(1))));
        out.push('\n');
        for row in &self.rows {
            out.push_str(&fmt_row(row, &widths));
            out.push('\n');
        }
        out
    }

    /// Prints the table to stdout.
    pub fn print(&self) {
        print!("{}", self.render());
    }
}

/// Formats a float with two decimals.
pub fn f2(v: f64) -> String {
    format!("{v:.2}")
}

/// Formats a throughput (ops/s) compactly.
pub fn ops(v: f64) -> String {
    if v >= 1e6 {
        format!("{:.2}M", v / 1e6)
    } else if v >= 1e3 {
        format!("{:.1}k", v / 1e3)
    } else {
        format!("{v:.1}")
    }
}

/// Formats nanoseconds as milliseconds with two decimals.
pub fn ms(ns: f64) -> String {
    format!("{:.2}", ns / 1e6)
}

/// Formats nanoseconds as microseconds with one decimal.
pub fn us(ns: f64) -> String {
    format!("{:.1}", ns / 1e3)
}

/// Renders the non-empty classes of a telemetry snapshot as a per-op-class
/// tail-latency table (count, mean and the p50/p95/p99/p999/max ladder, in
/// microseconds).
pub fn tail_table(snapshot: &TelemetrySnapshot) -> Table {
    let mut t = Table::new([
        "op class", "count", "mean us", "p50 us", "p95 us", "p99 us", "p999 us", "max us",
    ]);
    for c in snapshot.non_empty() {
        let s = c.summary;
        t.row([
            c.class.label().to_string(),
            s.count.to_string(),
            us(s.mean_ns),
            us(s.p50_ns as f64),
            us(s.p95_ns as f64),
            us(s.p99_ns as f64),
            us(s.p999_ns as f64),
            us(s.max_ns as f64),
        ]);
    }
    t
}

/// The hand-formatted JSON object mapping each non-empty op class to its
/// tail summary, e.g. `{ "lookup": { "count": 9, ..., "max_ns": 120 } }`.
/// Returned without a trailing newline so callers splice it after a
/// `"telemetry": ` key; `indent` is prepended to every inner line.
pub fn telemetry_json(snapshot: &TelemetrySnapshot, indent: &str) -> String {
    let classes: Vec<String> = snapshot
        .non_empty()
        .map(|c| {
            let s = c.summary;
            format!(
                concat!(
                    "{indent}  \"{label}\": {{ \"count\": {}, \"counter\": {}, ",
                    "\"mean_ns\": {:.1}, \"p50_ns\": {}, \"p95_ns\": {}, \"p99_ns\": {}, ",
                    "\"p999_ns\": {}, \"max_ns\": {} }}"
                ),
                s.count,
                c.counter,
                s.mean_ns,
                s.p50_ns,
                s.p95_ns,
                s.p99_ns,
                s.p999_ns,
                s.max_ns,
                indent = indent,
                label = c.class.label(),
            )
        })
        .collect();
    if classes.is_empty() {
        "{}".to_string()
    } else {
        format!("{{\n{}\n{indent}}}", classes.join(",\n"))
    }
}

/// The hand-formatted JSON array of the worst recorded pauses (pause classes
/// only, sorted by maximum observed duration), the "top pauses" companion to
/// [`telemetry_json`].
pub fn top_pauses_json(snapshot: &TelemetrySnapshot, limit: usize, indent: &str) -> String {
    let rows: Vec<String> = snapshot
        .top_pauses(limit)
        .iter()
        .map(|c| {
            let s = c.summary;
            format!(
                "{indent}  {{ \"class\": \"{}\", \"count\": {}, \"p99_ns\": {}, \"max_ns\": {} }}",
                c.class.label(),
                s.count,
                s.p99_ns,
                s.max_ns,
            )
        })
        .collect();
    if rows.is_empty() {
        "[]".to_string()
    } else {
        format!("[\n{}\n{indent}]", rows.join(",\n"))
    }
}

/// Panics unless every non-empty class of `snapshot` reports an ordered
/// percentile ladder (p50 <= p95 <= p99 <= p999 <= max) — the smoke gate the
/// CI `--quick` snapshot runs assert on every refreshed bench JSON.
pub fn assert_percentiles_ordered(snapshot: &TelemetrySnapshot, context: &str) {
    for c in snapshot.non_empty() {
        let s = c.summary;
        assert!(
            s.p50_ns <= s.p95_ns
                && s.p95_ns <= s.p99_ns
                && s.p99_ns <= s.p999_ns
                && s.p999_ns <= s.max_ns,
            "{context}: class {} percentiles out of order: {s:?}",
            c.class.label(),
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_renders_aligned_columns() {
        let mut t = Table::new(["index", "throughput"]);
        t.row(["btree", "120.0"]);
        t.row(["alex", "7.5"]);
        let s = t.render();
        assert!(s.contains("index"));
        assert!(s.lines().count() == 4);
        assert_eq!(t.len(), 2);
        assert!(!t.is_empty());
        // Columns are right-aligned to the same width.
        let lines: Vec<&str> = s.lines().collect();
        assert_eq!(lines[2].len(), lines[3].len());
    }

    #[test]
    fn number_formatting() {
        assert_eq!(f2(1.234), "1.23");
        assert_eq!(ops(2_500_000.0), "2.50M");
        assert_eq!(ops(12_345.0), "12.3k");
        assert_eq!(ops(45.0), "45.0");
        assert_eq!(ms(2_500_000.0), "2.50");
    }
}
