//! Plain-text table formatting for experiment output.

/// A simple fixed-width text table.
#[derive(Debug, Default)]
pub struct Table {
    header: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// Creates a table with the given column headers.
    pub fn new<S: Into<String>>(header: impl IntoIterator<Item = S>) -> Self {
        Table { header: header.into_iter().map(Into::into).collect(), rows: Vec::new() }
    }

    /// Appends one row (cells are stringified by the caller).
    pub fn row<S: Into<String>>(&mut self, cells: impl IntoIterator<Item = S>) {
        self.rows.push(cells.into_iter().map(Into::into).collect());
    }

    /// Number of data rows.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// True when the table has no data rows.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Renders the table.
    pub fn render(&self) -> String {
        let cols = self.header.len().max(self.rows.iter().map(Vec::len).max().unwrap_or(0));
        let mut widths = vec![0usize; cols];
        for (i, h) in self.header.iter().enumerate() {
            widths[i] = widths[i].max(h.len());
        }
        for row in &self.rows {
            for (i, c) in row.iter().enumerate() {
                widths[i] = widths[i].max(c.len());
            }
        }
        let mut out = String::new();
        let fmt_row = |cells: &[String], widths: &[usize]| -> String {
            let mut line = String::new();
            for (i, w) in widths.iter().enumerate() {
                let cell = cells.get(i).map(String::as_str).unwrap_or("");
                if i > 0 {
                    line.push_str("  ");
                }
                line.push_str(&format!("{cell:>w$}", w = w));
            }
            line
        };
        out.push_str(&fmt_row(&self.header, &widths));
        out.push('\n');
        out.push_str(&"-".repeat(widths.iter().sum::<usize>() + 2 * (cols.saturating_sub(1))));
        out.push('\n');
        for row in &self.rows {
            out.push_str(&fmt_row(row, &widths));
            out.push('\n');
        }
        out
    }

    /// Prints the table to stdout.
    pub fn print(&self) {
        print!("{}", self.render());
    }
}

/// Formats a float with two decimals.
pub fn f2(v: f64) -> String {
    format!("{v:.2}")
}

/// Formats a throughput (ops/s) compactly.
pub fn ops(v: f64) -> String {
    if v >= 1e6 {
        format!("{:.2}M", v / 1e6)
    } else if v >= 1e3 {
        format!("{:.1}k", v / 1e3)
    } else {
        format!("{v:.1}")
    }
}

/// Formats nanoseconds as milliseconds with two decimals.
pub fn ms(ns: f64) -> String {
    format!("{:.2}", ns / 1e6)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_renders_aligned_columns() {
        let mut t = Table::new(["index", "throughput"]);
        t.row(["btree", "120.0"]);
        t.row(["alex", "7.5"]);
        let s = t.render();
        assert!(s.contains("index"));
        assert!(s.lines().count() == 4);
        assert_eq!(t.len(), 2);
        assert!(!t.is_empty());
        // Columns are right-aligned to the same width.
        let lines: Vec<&str> = s.lines().collect();
        assert_eq!(lines[2].len(), lines[3].len());
    }

    #[test]
    fn number_formatting() {
        assert_eq!(f2(1.234), "1.23");
        assert_eq!(ops(2_500_000.0), "2.50M");
        assert_eq!(ops(12_345.0), "12.3k");
        assert_eq!(ops(45.0), "45.0");
        assert_eq!(ms(2_500_000.0), "2.50");
    }
}
