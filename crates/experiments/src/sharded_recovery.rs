//! Crash-safe persistence for the *sharded* serving layer: a durable
//! keyspace-partitioned router whose shard map commits atomically, so a
//! crash anywhere inside an online shard split recovers to exactly the
//! pre-split or the post-split boundary set — never a half-moved shard.
//!
//! On disk a sharded store is a directory holding one `ROUTER` manifest
//! plus one durable single-shard store (see [`crate::recovery`]) per shard:
//!
//! ```text
//! store/
//!   ROUTER            <- checksummed manifest: boundaries + shard dirs
//!   shard-0-0/        <- a PR-8 durable store (blocks, superblock, WAL)
//!   shard-0-1/
//!   ...
//! ```
//!
//! The split protocol is copy-on-write + atomic rename:
//!
//! 1. **Quiesce** the source shard: flush its staging front and take a full
//!    checkpoint (WAL truncated, superblock current).
//! 2. **Build aside**: scan the frozen shard and bulk-load the two halves
//!    into *fresh* shard directories of the next generation, each fully
//!    checkpointed. The live tree is never modified.
//! 3. **Commit**: write the new manifest (new boundary, old dir replaced by
//!    the two new dirs) to `ROUTER.tmp`, fsync it, and `rename(2)` it over
//!    `ROUTER`, fsyncing the directory. The rename is the commit point.
//! 4. **Garbage-collect** the retired shard directory.
//!
//! A kill before step 3's rename leaves the old manifest naming the old
//! shard — reopen serves the pre-split store and sweeps the orphaned
//! next-generation dirs. A kill after the rename serves the post-split
//! store and sweeps the retired dir. The manifest itself is checksummed so
//! a torn `ROUTER.tmp` can never be mistaken for a commit.

use std::io::Write as _;
use std::path::{Path, PathBuf};

use lidx_core::{Entry, IndexError, IndexRead, IndexResult, IndexWrite, Key, WriteBufferConfig};

use crate::recovery::{create_durable_index, reopen_durable_index, DurableIndex};
use crate::runner::IndexChoice;

/// Simulated kill points inside [`DurableShardedRouter::split_shard`]: the
/// split abandons ship at the named step (the caller then drops the router,
/// modelling the process dying there).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SplitFault {
    /// Run the split to completion.
    None,
    /// Die after the two new shard stores are built and checkpointed but
    /// before the manifest rename — the commit never happens.
    CrashBeforeCommit,
    /// Die right after the manifest rename — committed, but the retired
    /// shard directory was never garbage-collected.
    CrashAfterCommit,
}

/// A durable keyspace-sharded store: N single-shard durable stores behind
/// one checksummed, atomically-replaced `ROUTER` manifest.
///
/// This is the persistence twin of [`lidx_core::ShardedIndex`]: that type
/// pins the *online* split protocol (readers and writers racing the shard
/// map), this one pins the *crash* protocol (what a kill at any point of a
/// split recovers to). `boundaries[s]` is the first key NOT owned by shard
/// `s`, exactly as in the in-memory router.
pub struct DurableShardedRouter {
    dir: PathBuf,
    block_size: usize,
    config: WriteBufferConfig,
    choice: IndexChoice,
    generation: u64,
    boundaries: Vec<Key>,
    shards: Vec<(String, DurableIndex)>,
}

/// FNV-1a over the manifest body; torn or bit-rotted manifests fail closed.
fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01B3);
    }
    h
}

impl DurableShardedRouter {
    /// Creates a fresh sharded store for `choice` in `dir` (wiping any
    /// previous store there) with the given boundaries (`boundaries.len()
    /// + 1` shards).
    pub fn create(
        dir: &Path,
        block_size: usize,
        choice: IndexChoice,
        config: WriteBufferConfig,
        boundaries: Vec<Key>,
    ) -> IndexResult<Self> {
        assert!(
            boundaries.windows(2).all(|w| w[0] < w[1]),
            "shard boundaries must be strictly increasing"
        );
        if dir.exists() {
            std::fs::remove_dir_all(dir).map_err(io_err)?;
        }
        std::fs::create_dir_all(dir).map_err(io_err)?;
        let mut shards = Vec::with_capacity(boundaries.len() + 1);
        for s in 0..=boundaries.len() {
            let name = format!("shard-0-{s}");
            let front = create_durable_index(&dir.join(&name), block_size, choice, config, None)?;
            shards.push((name, front));
        }
        let mut router = DurableShardedRouter {
            dir: dir.to_path_buf(),
            block_size,
            config,
            choice,
            generation: 0,
            boundaries,
            shards,
        };
        router.commit_manifest()?;
        Ok(router)
    }

    /// Reopens the sharded store in `dir`: decodes the `ROUTER` manifest
    /// (rejecting it on any checksum mismatch), reopens every listed shard
    /// store (replaying each shard's WAL tail) and sweeps directories no
    /// committed manifest references — orphans of a killed split. Returns
    /// the router and the total WAL entries replayed across shards.
    pub fn reopen(
        dir: &Path,
        block_size: usize,
        config: WriteBufferConfig,
    ) -> IndexResult<(Self, u64)> {
        let body = std::fs::read_to_string(dir.join("ROUTER")).map_err(io_err)?;
        let (index_name, generation, boundaries, names) = decode_manifest(&body)?;
        let choice = IndexChoice::from_name(&index_name).ok_or_else(|| {
            IndexError::Internal(format!("ROUTER manifest names unknown design '{index_name}'"))
        })?;
        let mut shards = Vec::with_capacity(names.len());
        let mut replayed_total = 0;
        for name in &names {
            let (front, replayed) =
                reopen_durable_index(&dir.join(name), block_size, config, None)?;
            replayed_total += replayed;
            shards.push((name.clone(), front));
        }
        // Sweep orphans: shard dirs built by a split that never committed,
        // or retired by one that committed but died before cleanup.
        for entry in std::fs::read_dir(dir).map_err(io_err)? {
            let entry = entry.map_err(io_err)?;
            let file = entry.file_name().to_string_lossy().into_owned();
            let is_shard_dir = file.starts_with("shard-") && entry.path().is_dir();
            if (is_shard_dir && !names.contains(&file)) || file == "ROUTER.tmp" {
                if entry.path().is_dir() {
                    std::fs::remove_dir_all(entry.path()).ok();
                } else {
                    std::fs::remove_file(entry.path()).ok();
                }
            }
        }
        let router = DurableShardedRouter {
            dir: dir.to_path_buf(),
            block_size,
            config,
            choice,
            generation,
            boundaries,
            shards,
        };
        Ok((router, replayed_total))
    }

    /// The current shard boundaries (empty for a single shard).
    pub fn boundaries(&self) -> &[Key] {
        &self.boundaries
    }

    /// Number of live shards.
    pub fn shard_count(&self) -> usize {
        self.shards.len()
    }

    fn route(&self, key: Key) -> usize {
        self.boundaries.partition_point(|&b| b <= key)
    }

    /// Bulk-loads `entries` (sorted, deduplicated) across the shards.
    pub fn bulk_load(&mut self, entries: &[Entry]) -> IndexResult<()> {
        let mut from = 0;
        for s in 0..self.shards.len() {
            let to = match self.boundaries.get(s) {
                Some(&b) => entries.partition_point(|e| e.0 < b),
                None => entries.len(),
            };
            self.shards[s].1.bulk_load(&entries[from..to])?;
            from = to;
        }
        Ok(())
    }

    /// Upserts one entry through its owning shard's logged staging front.
    pub fn insert(&mut self, key: Key, value: u64) -> IndexResult<()> {
        let s = self.route(key);
        self.shards[s].1.insert(key, value)
    }

    /// Looks `key` up in its owning shard (staged overlay included).
    pub fn lookup(&self, key: Key) -> IndexResult<Option<u64>> {
        self.shards[self.route(key)].1.lookup(key)
    }

    /// Scans `count` entries from `start`, stitching across shards.
    pub fn scan(&self, start: Key, count: usize, out: &mut Vec<Entry>) -> IndexResult<usize> {
        out.clear();
        let mut piece = Vec::new();
        let mut from = start;
        for s in self.route(start)..self.shards.len() {
            if out.len() >= count {
                break;
            }
            self.shards[s].1.scan(from, count - out.len(), &mut piece)?;
            out.extend_from_slice(&piece);
            from = match self.boundaries.get(s) {
                Some(&b) => b,
                None => break,
            };
        }
        Ok(out.len())
    }

    /// Visible entries across all shards (staged overlays included).
    pub fn len(&self) -> u64 {
        self.shards.iter().map(|(_, f)| f.len()).sum()
    }

    /// True when no shard holds any visible entry.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Group-commits every shard's WAL (fsyncs the log tails without
    /// draining); after this, a kill loses nothing that was inserted.
    pub fn sync_wal(&mut self) -> IndexResult<()> {
        for (_, front) in &mut self.shards {
            front.sync_wal()?;
        }
        Ok(())
    }

    /// Checkpoints every shard (drain + superblock persist + WAL truncate).
    pub fn checkpoint(&mut self) -> IndexResult<()> {
        for (_, front) in &mut self.shards {
            front.checkpoint(true)?;
        }
        Ok(())
    }

    /// Splits shard `shard` at its median key using the copy-on-write
    /// protocol from the [module docs](self), returning the new boundary.
    /// With a [`SplitFault`] other than [`SplitFault::None`] the split
    /// abandons the process at that step (the simulated kill); the router
    /// must then be dropped and reopened.
    pub fn split_shard(&mut self, shard: usize, fault: SplitFault) -> IndexResult<Key> {
        assert!(shard < self.shards.len(), "shard {shard} out of range");
        // Step 1: quiesce the source shard.
        self.shards[shard].1.checkpoint(true)?;
        // Step 2: snapshot it and build the two halves aside.
        let lo = if shard == 0 { 0 } else { self.boundaries[shard - 1] };
        let want = self.shards[shard].1.len() as usize + 1;
        let mut all = Vec::new();
        self.shards[shard].1.scan(lo, want, &mut all)?;
        let median = all.get(all.len() / 2).map(|e| e.0).unwrap_or(lo);
        let pivot = if median > lo {
            median
        } else {
            all.iter().map(|e| e.0).find(|&k| k > lo).ok_or_else(|| {
                IndexError::Internal(format!("shard {shard} has no key to split at"))
            })?
        };
        let at = all.partition_point(|e| e.0 < pivot);
        let generation = self.generation + 1;
        let mut halves = Vec::with_capacity(2);
        for (half, slice) in [&all[..at], &all[at..]].into_iter().enumerate() {
            let name = format!("shard-{generation}-{half}");
            let mut front = create_durable_index(
                &self.dir.join(&name),
                self.block_size,
                self.choice,
                self.config,
                None,
            )?;
            front.bulk_load(slice)?;
            front.checkpoint(true)?;
            halves.push((name, front));
        }
        if fault == SplitFault::CrashBeforeCommit {
            // The kill: the new dirs exist but no manifest names them.
            return Ok(pivot);
        }
        // Step 3: the commit point — swap the manifest atomically.
        let (old_name, _) = self.shards.remove(shard);
        let mut halves = halves.into_iter();
        self.shards.insert(shard, halves.next().expect("left half"));
        self.shards.insert(shard + 1, halves.next().expect("right half"));
        self.boundaries.insert(shard, pivot);
        self.generation = generation;
        self.commit_manifest()?;
        if fault == SplitFault::CrashAfterCommit {
            // The kill: committed, but the retired dir still exists.
            return Ok(pivot);
        }
        // Step 4: garbage-collect the retired shard.
        std::fs::remove_dir_all(self.dir.join(&old_name)).map_err(io_err)?;
        Ok(pivot)
    }

    /// Writes the manifest for the current shard map to `ROUTER.tmp`,
    /// fsyncs it and renames it over `ROUTER` (the atomic commit), fsyncing
    /// the store directory so the rename itself is durable.
    fn commit_manifest(&mut self) -> IndexResult<()> {
        let mut body = format!(
            "lidx-sharded-router v1\nindex {}\ngeneration {}\nshards {}\n",
            self.choice.name(),
            self.generation,
            self.shards.len(),
        );
        for (s, (name, _)) in self.shards.iter().enumerate() {
            let lo = if s == 0 { 0 } else { self.boundaries[s - 1] };
            body.push_str(&format!("shard {name} {lo}\n"));
        }
        let tmp = self.dir.join("ROUTER.tmp");
        let mut file = std::fs::File::create(&tmp).map_err(io_err)?;
        file.write_all(body.as_bytes()).map_err(io_err)?;
        file.write_all(format!("checksum {:016x}\n", fnv1a(body.as_bytes())).as_bytes())
            .map_err(io_err)?;
        file.sync_all().map_err(io_err)?;
        drop(file);
        std::fs::rename(&tmp, self.dir.join("ROUTER")).map_err(io_err)?;
        if let Ok(d) = std::fs::File::open(&self.dir) {
            d.sync_all().ok();
        }
        Ok(())
    }
}

fn io_err(e: std::io::Error) -> IndexError {
    IndexError::Internal(format!("sharded store io: {e}"))
}

/// Decodes and checksum-verifies a `ROUTER` manifest body, returning
/// `(index name, generation, boundaries, shard dir names)`.
fn decode_manifest(body: &str) -> IndexResult<(String, u64, Vec<Key>, Vec<String>)> {
    let bad = |why: &str| IndexError::Internal(format!("ROUTER manifest: {why}"));
    let (payload, checksum_line) =
        body.trim_end_matches('\n').rsplit_once('\n').ok_or_else(|| bad("too short"))?;
    let payload = format!("{payload}\n");
    let want = checksum_line
        .strip_prefix("checksum ")
        .and_then(|h| u64::from_str_radix(h, 16).ok())
        .ok_or_else(|| bad("missing checksum"))?;
    if fnv1a(payload.as_bytes()) != want {
        return Err(bad("checksum mismatch (torn write?)"));
    }
    let mut lines = payload.lines();
    if lines.next() != Some("lidx-sharded-router v1") {
        return Err(bad("bad magic"));
    }
    let mut index_name = String::new();
    let mut generation = 0;
    let mut names = Vec::new();
    let mut lows: Vec<Key> = Vec::new();
    for line in lines {
        let mut parts = line.split(' ');
        match parts.next() {
            Some("shards") => {}
            Some("index") => {
                index_name = parts.next().ok_or_else(|| bad("bad index line"))?.to_string();
            }
            Some("generation") => {
                generation = parts
                    .next()
                    .and_then(|g| g.parse().ok())
                    .ok_or_else(|| bad("bad generation"))?;
            }
            Some("shard") => {
                let name = parts.next().ok_or_else(|| bad("shard without name"))?;
                let lo: Key = parts
                    .next()
                    .and_then(|l| l.parse().ok())
                    .ok_or_else(|| bad("shard without range"))?;
                names.push(name.to_string());
                lows.push(lo);
            }
            _ => return Err(bad("unknown line")),
        }
    }
    if names.is_empty() {
        return Err(bad("no shards"));
    }
    // `lows[0]` is always 0; the remaining lows are the boundaries.
    Ok((index_name, generation, lows[1..].to_vec(), names))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn scratch(tag: &str) -> PathBuf {
        std::env::temp_dir().join(format!("lidx-shrec-{tag}-{}", std::process::id()))
    }

    fn entries() -> Vec<Entry> {
        (0..800u64).map(|i| (i * 7 + 1, i * 7 + 2)).collect()
    }

    #[test]
    fn durable_sharded_round_trip() {
        let dir = scratch("roundtrip");
        let mut router = DurableShardedRouter::create(
            &dir,
            4096,
            IndexChoice::BTree,
            WriteBufferConfig::default(),
            vec![2_000, 4_000],
        )
        .unwrap();
        router.bulk_load(&entries()).unwrap();
        router.insert(2_000, 77).unwrap();
        router.checkpoint().unwrap();
        drop(router);

        let (recovered, replayed) =
            DurableShardedRouter::reopen(&dir, 4096, WriteBufferConfig::default()).unwrap();
        assert_eq!(replayed, 0);
        assert_eq!(recovered.boundaries(), &[2_000, 4_000]);
        assert_eq!(recovered.lookup(2_000).unwrap(), Some(77));
        assert_eq!(recovered.lookup(1).unwrap(), Some(2));
        let mut out = Vec::new();
        recovered.scan(1_990, 4, &mut out).unwrap();
        assert_eq!(out.first(), Some(&(1_996, 1_997)), "stitches across the boundary");
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn torn_manifest_is_rejected() {
        let dir = scratch("torn");
        let router = DurableShardedRouter::create(
            &dir,
            4096,
            IndexChoice::BTree,
            WriteBufferConfig::default(),
            vec![1_000],
        )
        .unwrap();
        drop(router);
        let manifest = dir.join("ROUTER");
        let body = std::fs::read_to_string(&manifest).unwrap();
        std::fs::write(&manifest, &body[..body.len() - 3]).unwrap();
        let err = DurableShardedRouter::reopen(&dir, 4096, WriteBufferConfig::default());
        assert!(err.is_err(), "a torn manifest must fail closed");
        std::fs::remove_dir_all(&dir).ok();
    }
}
