//! One function per table / figure of the paper's evaluation section.
//!
//! Every function prints the same rows or series the paper reports, computed
//! at a configurable [`Scale`]. Absolute numbers differ from the paper (the
//! substrate is a simulated disk and the datasets are synthetic analogues),
//! but the comparative shape — who wins, by roughly what factor, where the
//! crossovers are — is what these reproduce; `EXPERIMENTS.md` records the
//! paper-vs-measured comparison for each one.

use lidx_core::InsertStep;
use lidx_storage::{DeviceModel, OpClass, PoolPartitions, ReplacementPolicy};
use lidx_workloads::{profile_dataset, Dataset, Workload, WorkloadKind, WorkloadSpec};

use lidx_core::WriteBufferConfig;

use crate::report::{
    assert_percentiles_ordered, f2, ms, ops, telemetry_json, top_pauses_json, us, Table,
};
use crate::runner::{
    run_batch_insert, run_batch_lookup, run_batch_lookup_qdepth_sweep, run_par_lookup,
    run_par_lookup_batched, run_scan_interference, run_workload, IndexChoice, InsertMode,
    RunConfig, WorkloadReport, QDEPTH_SWEEP,
};

/// Scale knobs shared by every experiment.
#[derive(Debug, Clone)]
pub struct Scale {
    /// Keys per dataset for the search-only workloads (the paper uses 200 M).
    pub keys: usize,
    /// Operations per workload (the paper uses 200 k searches / 10 M writes).
    pub ops: usize,
    /// Keys bulk loaded before mixed workloads (the paper uses 10 M).
    pub bulk_keys: usize,
    /// RNG seed for datasets and workloads.
    pub seed: u64,
    /// Maximum reader-thread count for the concurrent-lookup sweep (the
    /// sweep doubles from 1 up to this value).
    pub threads: usize,
    /// Path to a SOSD-style binary key file (`u64` LE count + keys). When
    /// set, every experiment draws its key set from this file (truncated to
    /// `keys`) instead of the synthetic generators, so real `fb`/`osm`/
    /// `wiki` keys can be dropped in via `exp --dataset-path <file>`.
    pub dataset_path: Option<std::path::PathBuf>,
}

impl Default for Scale {
    fn default() -> Self {
        Scale {
            keys: 200_000,
            ops: 5_000,
            bulk_keys: 50_000,
            seed: 42,
            threads: 4,
            dataset_path: None,
        }
    }
}

impl Scale {
    /// The key set an experiment runs over: the SOSD file when
    /// [`Scale::dataset_path`] is set (every synthetic `dataset` then maps
    /// to the same real keys), the synthetic generator otherwise.
    fn dataset_keys(&self, dataset: Dataset) -> Vec<lidx_core::Key> {
        match &self.dataset_path {
            Some(path) => {
                let mut keys = Dataset::from_sosd_file(path)
                    .unwrap_or_else(|e| panic!("--dataset-path {}: {e}", path.display()));
                keys.truncate(self.keys);
                assert!(!keys.is_empty(), "--dataset-path {} holds no keys", path.display());
                keys
            }
            None => dataset.generate_keys(self.keys, self.seed),
        }
    }

    fn search_workload(&self, dataset: Dataset, kind: WorkloadKind) -> Workload {
        let keys = self.dataset_keys(dataset);
        let mut spec = WorkloadSpec::new(kind, self.ops, 0);
        spec.seed = self.seed;
        Workload::build(&keys, spec)
    }

    fn mixed_workload(&self, dataset: Dataset, kind: WorkloadKind) -> Workload {
        let keys = self.dataset_keys(dataset);
        let mut spec = WorkloadSpec::new(kind, self.ops, self.bulk_keys);
        spec.seed = self.seed;
        Workload::build(&keys, spec)
    }
}

fn hdd() -> RunConfig {
    RunConfig { device: DeviceModel::hdd(), ..Default::default() }
}

fn ssd() -> RunConfig {
    RunConfig { device: DeviceModel::ssd(), ..Default::default() }
}

/// Table 2 — empirical check of the worst-case I/O cost analysis: average
/// fetched / written blocks per operation for each index.
pub fn table2(scale: &Scale) {
    println!("== Table 2: I/O cost analysis (measured blocks per operation, YCSB-like data) ==");
    println!("Analytical worst cases (paper):  lookup: B+-tree log_B N | ALEX logN+log(M/B)+1 | FITing log_B P + 2e/B | LIPP 2logN | PGM log(N/B)");
    let lookup = scale.search_workload(Dataset::Ycsb, WorkloadKind::LookupOnly);
    let scan = scale.search_workload(Dataset::Ycsb, WorkloadKind::ScanOnly);
    let write = scale.mixed_workload(Dataset::Ycsb, WorkloadKind::WriteOnly);
    let mut t = Table::new(["index", "lookup blk", "scan blk", "insert blk (r+w)"]);
    for choice in IndexChoice::EVALUATED {
        let rl = run_workload(choice, &hdd(), &lookup);
        let rs = run_workload(choice, &hdd(), &scan);
        let rw = run_workload(choice, &hdd(), &write);
        t.row([
            choice.name().to_string(),
            f2(rl.avg_reads_per_op),
            f2(rs.avg_reads_per_op),
            f2(rw.avg_reads_per_op + rw.avg_writes_per_op),
        ]);
    }
    t.print();
}

/// Table 3 — dataset profiling: PLA segments per error bound, B+-tree leaf
/// count and FMCD conflict degree for every dataset.
pub fn table3(scale: &Scale) {
    println!("== Table 3: dataset profiling (block size 4 KB, {} keys/dataset) ==", scale.keys);
    let bounds = [16usize, 64, 256, 1024];
    let mut t = Table::new([
        "dataset",
        "eps=16",
        "eps=64",
        "eps=256",
        "eps=1024",
        "btree leaves",
        "conflict degree",
    ]);
    for dataset in Dataset::ALL {
        let keys = dataset.generate_keys(scale.keys, scale.seed);
        let p = profile_dataset(&keys, &bounds, 4096);
        t.row([
            dataset.name().to_string(),
            p.segments[0].1.to_string(),
            p.segments[1].1.to_string(),
            p.segments[2].1.to_string(),
            p.segments[3].1.to_string(),
            p.btree_leaves.to_string(),
            p.conflict_degree.to_string(),
        ]);
    }
    t.print();
}

fn search_figure(scale: &Scale, kind: WorkloadKind, title: &str) {
    println!("== {title} ==");
    for (device_name, cfg) in [("HDD", hdd()), ("SSD", ssd())] {
        let mut t = Table::new(["dataset", "btree", "fiting", "pgm", "alex", "lipp"]);
        for dataset in Dataset::REPRESENTATIVE {
            let w = scale.search_workload(dataset, kind);
            let mut row = vec![dataset.name().to_string()];
            for choice in IndexChoice::EVALUATED {
                let r = run_workload(choice, &cfg, &w);
                row.push(ops(r.throughput()));
            }
            t.row(row);
        }
        println!("-- {device_name} (ops/s) --");
        t.print();
    }
}

/// Fig. 3 — Lookup-Only and Scan-Only throughput on HDD and SSD, entire index
/// disk-resident, 4 KB blocks.
pub fn fig3(scale: &Scale) {
    search_figure(scale, WorkloadKind::LookupOnly, "Fig. 3(a)(b): Lookup-Only throughput");
    search_figure(scale, WorkloadKind::ScanOnly, "Fig. 3(c)(d): Scan-Only throughput");
}

/// Fig. 4 — average fetched block count per search query.
pub fn fig4(scale: &Scale) {
    println!("== Fig. 4: average fetched blocks per search query (HDD) ==");
    for kind in [WorkloadKind::LookupOnly, WorkloadKind::ScanOnly] {
        let mut t = Table::new(["dataset", "btree", "fiting", "pgm", "alex", "lipp"]);
        for dataset in Dataset::REPRESENTATIVE {
            let w = scale.search_workload(dataset, kind);
            let mut row = vec![dataset.name().to_string()];
            for choice in IndexChoice::EVALUATED {
                let r = run_workload(choice, &hdd(), &w);
                row.push(f2(r.avg_reads_per_op));
            }
            t.row(row);
        }
        println!("-- {} --", kind.name());
        t.print();
    }
}

/// Table 4 — fetched block breakdown: inner blocks vs leaf blocks for the
/// Lookup-Only and Scan-Only workloads.
pub fn table4(scale: &Scale) {
    println!("== Table 4: fetched block breakdown (HDD, per query) ==");
    let mut t = Table::new([
        "dataset",
        "index",
        "inner blk",
        "leaf blk (lookup)",
        "leaf blk (scan)",
        "utility (scan)",
    ]);
    for dataset in Dataset::REPRESENTATIVE {
        let lookup = scale.search_workload(dataset, WorkloadKind::LookupOnly);
        let scan = scale.search_workload(dataset, WorkloadKind::ScanOnly);
        for choice in IndexChoice::EVALUATED {
            let rl = run_workload(choice, &hdd(), &lookup);
            let rs = run_workload(choice, &hdd(), &scan);
            t.row([
                dataset.name().to_string(),
                choice.name().to_string(),
                f2(rl.avg_inner_reads_per_op),
                f2(rl.avg_leaf_reads_per_op + rl.avg_utility_reads_per_op),
                f2(rs.avg_leaf_reads_per_op),
                f2(rs.avg_utility_reads_per_op),
            ]);
        }
    }
    t.print();
}

/// Table 5 — hybrid designs (learned inner + B+-tree-styled leaves): fetched
/// blocks per lookup / scan query.
pub fn table5(scale: &Scale) {
    println!("== Table 5: hybrid designs, fetched blocks per query (HDD) ==");
    println!("(hybrid-pla stands in for the FITing-tree/PGM hybrids, hybrid-modeltree for the ALEX/LIPP hybrids)");
    let choices = [IndexChoice::HybridPla, IndexChoice::HybridModelTree, IndexChoice::BTree];
    let mut t = Table::new(["dataset", "index", "lookup blk", "scan blk"]);
    for dataset in Dataset::REPRESENTATIVE {
        let lookup = scale.search_workload(dataset, WorkloadKind::LookupOnly);
        let scan = scale.search_workload(dataset, WorkloadKind::ScanOnly);
        for choice in choices {
            let rl = run_workload(choice, &hdd(), &lookup);
            let rs = run_workload(choice, &hdd(), &scan);
            t.row([
                dataset.name().to_string(),
                choice.name().to_string(),
                f2(rl.avg_reads_per_op),
                f2(rs.avg_reads_per_op),
            ]);
        }
    }
    t.print();
}

fn write_figure(scale: &Scale, memory_resident_inner: bool, title: &str) {
    println!("== {title} ==");
    let kinds = [
        WorkloadKind::WriteOnly,
        WorkloadKind::ReadHeavy,
        WorkloadKind::WriteHeavy,
        WorkloadKind::Balanced,
    ];
    for (device_name, base) in [("HDD", hdd()), ("SSD", ssd())] {
        let cfg = RunConfig { memory_resident_inner, ..base };
        println!("-- {device_name} (ops/s) --");
        let mut t = Table::new(["dataset", "workload", "btree", "fiting", "pgm", "alex", "lipp"]);
        for dataset in Dataset::REPRESENTATIVE {
            for kind in kinds {
                let w = scale.mixed_workload(dataset, kind);
                let mut row = vec![dataset.name().to_string(), kind.name().to_string()];
                for choice in IndexChoice::EVALUATED {
                    let r = run_workload(choice, &cfg, &w);
                    row.push(ops(r.throughput()));
                }
                t.row(row);
            }
        }
        t.print();
    }
}

/// Fig. 5 — Write-Only / Read-Heavy / Write-Heavy / Balanced throughput with
/// the entire index disk-resident.
pub fn fig5(scale: &Scale) {
    write_figure(scale, false, "Fig. 5: write/mixed workload throughput, disk-resident");
}

/// Fig. 6 — write performance breakdown into the four insert steps.
pub fn fig6(scale: &Scale) {
    println!("== Fig. 6: write breakdown, avg ms per insert (HDD, Write-Only) ==");
    let mut t = Table::new(["dataset", "index", "search", "insert", "smo", "maintenance", "total"]);
    for dataset in Dataset::REPRESENTATIVE {
        let w = scale.mixed_workload(dataset, WorkloadKind::WriteOnly);
        for choice in IndexChoice::EVALUATED {
            let r = run_workload(choice, &hdd(), &w);
            let b = r.breakdown;
            let total: f64 = InsertStep::ALL.iter().map(|&s| b.avg_ns(s)).sum();
            t.row([
                dataset.name().to_string(),
                choice.name().to_string(),
                ms(b.avg_ns(InsertStep::Search)),
                ms(b.avg_ns(InsertStep::Insert)),
                ms(b.avg_ns(InsertStep::Smo)),
                ms(b.avg_ns(InsertStep::Maintenance)),
                ms(total),
            ]);
        }
    }
    t.print();
}

/// Fig. 7 — bulk-load time and resulting index size.
pub fn fig7(scale: &Scale) {
    println!("== Fig. 7: bulkload time (simulated s, HDD) and index size (MiB) ==");
    let mut t = Table::new(["dataset", "index", "bulk time (s)", "bulk writes", "size (MiB)"]);
    for dataset in Dataset::REPRESENTATIVE {
        let w = scale.search_workload(dataset, WorkloadKind::LookupOnly);
        for choice in IndexChoice::EVALUATED {
            let r = run_workload(choice, &hdd(), &w);
            t.row([
                dataset.name().to_string(),
                choice.name().to_string(),
                f2(r.bulk_seconds),
                r.bulk_writes.to_string(),
                f2(r.storage_mib()),
            ]);
        }
    }
    t.print();
}

/// Fig. 8 — search performance with inner nodes memory-resident.
pub fn fig8(scale: &Scale) {
    println!("== Fig. 8: search throughput, inner nodes memory-resident ==");
    println!("(LIPP is excluded, as in the paper: it has a single node type)");
    let choices = [IndexChoice::BTree, IndexChoice::Fiting, IndexChoice::Pgm, IndexChoice::Alex];
    for kind in [WorkloadKind::LookupOnly, WorkloadKind::ScanOnly] {
        println!("-- {} (HDD, ops/s) --", kind.name());
        let mut t = Table::new(["dataset", "btree", "fiting", "pgm", "alex"]);
        for dataset in Dataset::REPRESENTATIVE {
            let w = scale.search_workload(dataset, kind);
            let cfg = RunConfig { memory_resident_inner: true, ..hdd() };
            let mut row = vec![dataset.name().to_string()];
            for choice in choices {
                let r = run_workload(choice, &cfg, &w);
                row.push(ops(r.throughput()));
            }
            t.row(row);
        }
        t.print();
    }
}

/// Fig. 9 — write workloads with inner nodes memory-resident.
pub fn fig9(scale: &Scale) {
    write_figure(
        scale,
        true,
        "Fig. 9: write/mixed workload throughput, inner nodes memory-resident",
    );
}

/// Fig. 10 — storage usage on disk after the Write-Only workload.
pub fn fig10(scale: &Scale) {
    println!("== Fig. 10: storage usage after Write-Only (MiB) ==");
    let mut t = Table::new(["dataset", "btree", "fiting", "pgm", "alex", "lipp"]);
    for dataset in Dataset::REPRESENTATIVE {
        let w = scale.mixed_workload(dataset, WorkloadKind::WriteOnly);
        let mut row = vec![dataset.name().to_string()];
        for choice in IndexChoice::EVALUATED {
            let r = run_workload(choice, &hdd(), &w);
            row.push(f2(r.storage_mib()));
        }
        t.row(row);
    }
    t.print();
}

/// Fig. 11 — fetched blocks per lookup under different block sizes.
pub fn fig11(scale: &Scale) {
    println!("== Fig. 11: fetched blocks per lookup vs block size (HDD, Lookup-Only) ==");
    let sizes = [1024usize, 2048, 4096, 8192, 16384];
    for dataset in Dataset::REPRESENTATIVE {
        println!("-- {} --", dataset.name());
        let mut t = Table::new(["block size", "btree", "fiting", "pgm", "alex", "lipp"]);
        let w = scale.search_workload(dataset, WorkloadKind::LookupOnly);
        for bs in sizes {
            let cfg = RunConfig { block_size: bs, ..hdd() };
            let mut row = vec![format!("{} KB", bs / 1024)];
            for choice in IndexChoice::EVALUATED {
                let r = run_workload(choice, &cfg, &w);
                row.push(f2(r.avg_reads_per_op));
            }
            t.row(row);
        }
        t.print();
    }
}

/// Fig. 12 — tail latency (p99 and standard deviation) for the Lookup-Only
/// and Write-Only workloads.
pub fn fig12(scale: &Scale) {
    println!("== Fig. 12: tail latency on HDD (ms) ==");
    for kind in [WorkloadKind::LookupOnly, WorkloadKind::WriteOnly] {
        println!("-- {} --", kind.name());
        let mut t = Table::new(["dataset", "index", "mean", "p99", "stddev"]);
        for dataset in Dataset::REPRESENTATIVE {
            let w = if kind == WorkloadKind::LookupOnly {
                scale.search_workload(dataset, kind)
            } else {
                scale.mixed_workload(dataset, kind)
            };
            for choice in IndexChoice::EVALUATED {
                let r = run_workload(choice, &hdd(), &w);
                t.row([
                    dataset.name().to_string(),
                    choice.name().to_string(),
                    ms(r.latency.mean_ns),
                    ms(r.latency.p99_ns as f64),
                    ms(r.latency.stddev_ns),
                ]);
            }
        }
        t.print();
    }
}

/// Fig. 13 — fetched blocks per lookup under different LRU buffer sizes.
pub fn fig13(scale: &Scale) {
    println!("== Fig. 13: fetched blocks per lookup vs buffer size (HDD, Lookup-Only) ==");
    let buffers = [0usize, 2, 4, 8, 16, 32, 64, 128];
    for dataset in Dataset::REPRESENTATIVE {
        println!("-- {} --", dataset.name());
        let mut t = Table::new(["buffer blks", "btree", "fiting", "pgm", "alex", "lipp"]);
        let w = scale.search_workload(dataset, WorkloadKind::LookupOnly);
        for buf in buffers {
            let cfg = RunConfig { buffer_blocks: buf, ..hdd() };
            let mut row = vec![buf.to_string()];
            for choice in IndexChoice::EVALUATED {
                let r = run_workload(choice, &cfg, &w);
                row.push(f2(r.avg_reads_per_op));
            }
            t.row(row);
        }
        t.print();
    }
}

/// Fig. 14 — normalized throughput of every workload on YCSB and FB.
pub fn fig14(scale: &Scale) {
    println!("== Fig. 14: normalized throughput, all workloads (HDD; 1.00 = best per workload) ==");
    for dataset in [Dataset::Ycsb, Dataset::Fb] {
        println!("-- {} --", dataset.name());
        let mut t = Table::new(["workload", "btree", "fiting", "pgm", "alex", "lipp"]);
        for kind in WorkloadKind::ALL {
            let w = if kind.bulk_loads_everything() {
                scale.search_workload(dataset, kind)
            } else {
                scale.mixed_workload(dataset, kind)
            };
            let reports: Vec<WorkloadReport> =
                IndexChoice::EVALUATED.iter().map(|&c| run_workload(c, &hdd(), &w)).collect();
            let best = reports.iter().map(|r| r.throughput()).fold(0.0f64, f64::max);
            let mut row = vec![kind.name().to_string()];
            for r in &reports {
                row.push(f2(r.throughput() / best));
            }
            t.row(row);
        }
        t.print();
    }
}

/// §4.1 layout ablation — ALEX Layout#1 (single file) vs Layout#2 (two
/// files) on the Lookup-Only workload.
pub fn layout_ablation(scale: &Scale) {
    println!("== ALEX layout ablation: Layout#1 (single file) vs Layout#2 (two files) ==");
    let mut t =
        Table::new(["dataset", "layout1 blk", "layout2 blk", "layout1 ops/s", "layout2 ops/s"]);
    for dataset in Dataset::REPRESENTATIVE {
        let w = scale.search_workload(dataset, WorkloadKind::LookupOnly);
        let l1 = run_workload(IndexChoice::AlexLayout1, &hdd(), &w);
        let l2 = run_workload(IndexChoice::Alex, &hdd(), &w);
        t.row([
            dataset.name().to_string(),
            f2(l1.avg_reads_per_op),
            f2(l2.avg_reads_per_op),
            ops(l1.throughput()),
            ops(l2.throughput()),
        ]);
    }
    t.print();
}

/// Extra ablation for design principle P4: reuse of freed space (not enabled
/// in the paper's measurements) versus the default fragmentation behaviour.
pub fn space_reuse_ablation(scale: &Scale) {
    println!("== Space-reuse ablation (design principle P4): storage after Write-Only ==");
    let mut t = Table::new(["index", "no reuse (MiB)", "with reuse (MiB)"]);
    let w = scale.mixed_workload(Dataset::Fb, WorkloadKind::WriteOnly);
    for choice in IndexChoice::EVALUATED {
        let plain = run_workload(choice, &hdd(), &w);
        let reuse_cfg = RunConfig::default();
        // Freed-extent reuse is a Disk-level switch; rebuild the disk with it.
        let disk = lidx_storage::Disk::in_memory(
            lidx_storage::DiskConfig::with_block_size(reuse_cfg.block_size)
                .device(DeviceModel::hdd())
                .reuse_freed_space(true),
        );
        let mut index = choice.build(disk);
        index.bulk_load(&w.bulk).expect("bulk");
        let mut scan_buf = Vec::new();
        for op in &w.ops {
            match *op {
                lidx_workloads::Op::Lookup(k) => {
                    index.lookup(k).expect("lookup");
                }
                lidx_workloads::Op::Insert(k, v) => {
                    index.insert(k, v).expect("insert");
                }
                lidx_workloads::Op::Scan(k, n) => {
                    index.scan(k, n, &mut scan_buf).expect("scan");
                }
            }
        }
        let reuse_mib =
            index.storage_blocks() as f64 * reuse_cfg.block_size as f64 / (1024.0 * 1024.0);
        t.row([choice.name().to_string(), f2(plain.storage_mib()), f2(reuse_mib)]);
    }
    t.print();
}

/// Beyond the paper: aggregate lookup throughput of N concurrent reader
/// threads over a frozen index (the read side of the `DiskIndex` trait takes
/// `&self`, so readers share the index with no index-level locking). The
/// device cost model is realised as actual blocking time so the sweep shows
/// I/O latency hiding — the same effect queue depth has on a real SSD.
pub fn par_lookup(scale: &Scale) {
    println!(
        "== Concurrent lookups: aggregate throughput vs reader threads (simulated SSD latency) =="
    );
    // A scaled-down SSD so the sweep completes quickly: 25 us random read.
    let cfg = RunConfig {
        device: DeviceModel::custom("ssd-25us", 25_000, 30_000, 15_000),
        simulate_device_latency: true,
        ..Default::default()
    };
    let w = scale.search_workload(Dataset::Ycsb, WorkloadKind::LookupOnly);
    let mut sweep = Vec::new();
    let mut t = 1usize;
    while t <= scale.threads.max(1) {
        sweep.push(t);
        t *= 2;
    }
    let mut table = Table::new(["index", "threads", "ops/s", "per-thread ops/s", "speedup"]);
    for choice in IndexChoice::ALL_DESIGNS {
        let mut base = 0.0f64;
        for &threads in &sweep {
            let r = run_par_lookup(choice, &cfg, &w, threads);
            if threads == 1 {
                base = r.aggregate_ops_per_sec();
            }
            table.row([
                r.index.clone(),
                threads.to_string(),
                ops(r.aggregate_ops_per_sec()),
                ops(r.per_thread_ops_per_sec()),
                f2(r.aggregate_ops_per_sec() / base.max(f64::MIN_POSITIVE)),
            ]);
        }
    }
    table.print();
}

/// Beyond the paper: the batched lookup path. For every index design, the
/// same lookup-only workload is executed per key and through
/// `IndexRead::lookup_batch` (64 keys per batch) against a warm 64-block
/// buffer pool, comparing fetched blocks, wall-clock time per lookup and the
/// copy counters. Sequential lookups over the zero-copy `read_ref` path
/// already show `bytes copied = 0`; batching additionally amortises shared
/// inner blocks and leaf decodes across co-located keys.
pub fn batch_lookup(scale: &Scale) {
    println!("== Batched lookups vs sequential (warm 64-block buffer pool, HDD model) ==");
    let cfg = RunConfig { buffer_blocks: 64, ..hdd() };
    let w = scale.search_workload(Dataset::Ycsb, WorkloadKind::LookupOnly);
    let mut t = Table::new([
        "index",
        "seq blk/op",
        "batch blk/op",
        "seq ns/op",
        "batch ns/op",
        "speedup",
        "seq copied B",
        "batch copied B",
    ]);
    for choice in IndexChoice::ALL_DESIGNS {
        let seq = run_batch_lookup(choice, &cfg, &w, 1);
        let bat = run_batch_lookup(choice, &cfg, &w, 64);
        assert_eq!(bat.not_found, seq.not_found, "{choice:?} batch/sequential disagree");
        t.row([
            seq.index.clone(),
            f2(seq.reads_per_op()),
            f2(bat.reads_per_op()),
            format!("{:.0}", seq.wall_ns_per_op()),
            format!("{:.0}", bat.wall_ns_per_op()),
            f2(seq.wall_ns_per_op() / bat.wall_ns_per_op().max(f64::MIN_POSITIVE)),
            seq.bytes_copied.to_string(),
            bat.bytes_copied.to_string(),
        ]);
    }
    t.print();

    // Outstanding reads: the same 64-key batches with the disk configured
    // for queue depths 1/4/8/32. Depth 1 is the synchronous baseline; deeper
    // queues overlap each batch's misses into completion waves charged at
    // the max (not the sum) of their device costs, so simulated I/O time
    // collapses while the answers stay identical.
    println!("-- 64-key batches at outstanding-read queue depths 1/4/8/32 (simulated I/O s) --");
    let mut qt = Table::new(["index", "qd1 io s", "qd4 io s", "qd8 io s", "qd32 io s", "speedup"]);
    for choice in IndexChoice::ALL_DESIGNS {
        let sweep = run_batch_lookup_qdepth_sweep(choice, &cfg, &w, 64, &QDEPTH_SWEEP);
        let base = sweep[0].device_seconds;
        let last = sweep.last().unwrap().device_seconds;
        qt.row([
            sweep[0].index.clone(),
            format!("{:.4}", sweep[0].device_seconds),
            format!("{:.4}", sweep[1].device_seconds),
            format!("{:.4}", sweep[2].device_seconds),
            format!("{:.4}", last),
            f2(base / last.max(f64::MIN_POSITIVE)),
        ]);
    }
    qt.print();

    // The same comparison under reader parallelism: batched threads.
    println!("-- 4 reader threads, per-key vs 64-key batches (wall-clock ops/s) --");
    let mut pt = Table::new(["index", "per-key ops/s", "batched ops/s"]);
    for choice in [IndexChoice::BTree, IndexChoice::Pgm] {
        let per_key = run_par_lookup_batched(choice, &cfg, &w, 4, 1);
        let batched = run_par_lookup_batched(choice, &cfg, &w, 4, 64);
        pt.row([
            per_key.index.clone(),
            ops(per_key.aggregate_ops_per_sec()),
            ops(batched.aggregate_ops_per_sec()),
        ]);
    }
    pt.print();
}

/// Machine-readable perf snapshot: writes `BENCH_lookup.json` with
/// per-index wall-clock ns per lookup (sequential and batched), fetched
/// blocks per lookup, buffer hit rate, simulated I/O seconds and the
/// zero-copy counters, so future PRs have a perf trajectory to compare
/// against. The JSON is emitted by hand (stable field order, no serde).
pub fn bench_snapshot(scale: &Scale) {
    bench_snapshot_to(scale, std::path::Path::new("BENCH_lookup.json"));
}

/// [`bench_snapshot`] with an explicit output path (tests write to a temp
/// file; the `exp` binary always writes `BENCH_lookup.json` in the cwd).
pub fn bench_snapshot_to(scale: &Scale, path: &std::path::Path) {
    let path = path.display();
    println!("== bench snapshot: writing {path} ==");
    let cfg = RunConfig { buffer_blocks: 64, ..hdd() };
    let w = scale.search_workload(Dataset::Ycsb, WorkloadKind::LookupOnly);
    let mut entries = Vec::new();
    let mut t = Table::new([
        "index",
        "ns/op",
        "batch ns/op",
        "blk/op",
        "pool hit",
        "reuse hit",
        "sim io s",
        "qd32 io s",
    ]);
    for choice in IndexChoice::ALL_DESIGNS {
        let seq = run_batch_lookup(choice, &cfg, &w, 1);
        let bat = run_batch_lookup(choice, &cfg, &w, 64);
        assert_percentiles_ordered(&seq.telemetry, &seq.index);
        // Outstanding-read sweep: the same 64-key batches with the disk at
        // queue depths 1/4/8/32. The depth-1 row reproduces `bat` (same
        // config, fresh disk); deeper rows overlap each batch's misses.
        let sweep = run_batch_lookup_qdepth_sweep(choice, &cfg, &w, 64, &QDEPTH_SWEEP);
        t.row([
            seq.index.clone(),
            format!("{:.0}", seq.wall_ns_per_op()),
            format!("{:.0}", bat.wall_ns_per_op()),
            f2(seq.reads_per_op()),
            f2(seq.buffer_hit_rate()),
            f2(seq.reuse_hit_rate()),
            format!("{:.4}", seq.device_seconds),
            format!("{:.4}", sweep.last().unwrap().device_seconds),
        ]);
        let qdepth_rows: Vec<String> = sweep
            .iter()
            .map(|r| {
                format!(
                    concat!(
                        "        {{ \"depth\": {}, \"simulated_io_seconds\": {:.6}, ",
                        "\"overlap_saved_seconds\": {:.6} }}"
                    ),
                    r.queue_depth,
                    r.device_seconds,
                    r.overlap_saved_ns as f64 / 1e9,
                )
            })
            .collect();
        entries.push(format!(
            concat!(
                "    {{\n",
                "      \"index\": \"{}\",\n",
                "      \"ns_per_lookup\": {:.1},\n",
                "      \"batch64_ns_per_lookup\": {:.1},\n",
                "      \"reads_per_lookup\": {:.4},\n",
                "      \"buffer_hit_rate\": {:.4},\n",
                "      \"reuse_hit_rate\": {:.4},\n",
                "      \"simulated_io_seconds\": {:.6},\n",
                "      \"bytes_copied\": {},\n",
                "      \"frames_pinned\": {},\n",
                "      \"checksum_failures\": {},\n",
                "      \"io_retries\": {},\n",
                "      \"wal_appends\": {},\n",
                "      \"telemetry\": {},\n",
                "      \"qdepth_sweep\": [\n{}\n      ]\n",
                "    }}"
            ),
            seq.index,
            seq.wall_ns_per_op(),
            bat.wall_ns_per_op(),
            seq.reads_per_op(),
            seq.buffer_hit_rate(),
            seq.reuse_hit_rate(),
            seq.device_seconds,
            seq.bytes_copied,
            seq.frames_pinned,
            seq.checksum_failures,
            seq.io_retries,
            seq.wal_appends,
            telemetry_json(&seq.telemetry, "      "),
            qdepth_rows.join(",\n"),
        ));
    }
    t.print();
    let json = format!(
        concat!(
            "{{\n",
            "  \"schema\": \"lidx-bench-snapshot-v1\",\n",
            "  \"workload\": \"lookup-only/ycsb\",\n",
            "  \"buffer_blocks\": 64,\n",
            "  \"keys\": {},\n",
            "  \"ops\": {},\n",
            "  \"seed\": {},\n",
            "  \"indexes\": [\n{}\n  ]\n",
            "}}\n"
        ),
        scale.keys,
        scale.ops,
        scale.seed,
        entries.join(",\n"),
    );
    std::fs::write(path.to_string(), json).expect("write bench snapshot");
    println!("wrote {path}");
}

/// Beyond the paper: scan-resistant buffer management. For three structural
/// families, a strided hot-lookup working set is promoted into a 128-block
/// pool and its pool hit rate is measured with no scan running, then again
/// while full-table Scan-Only passes stream through the pool — once per
/// replacement policy (LRU / CLOCK / 2Q) plus an LRU + reserved-inner-
/// partition row showing the partitioning knob is orthogonal to the policy.
/// Strict LRU loses the hot set to every pass; 2Q confines the stream to its
/// probation queue and holds the hit rate within a few points of baseline.
/// `BENCH_scan.json` freezes the numbers (cited in DESIGN.md §3.3).
pub fn scan_resistance(scale: &Scale) {
    scan_resistance_to(scale, std::path::Path::new("BENCH_scan.json"));
}

/// [`scan_resistance`] with an explicit output path (tests write to a temp
/// file; the `exp` binary always writes `BENCH_scan.json` in the cwd).
pub fn scan_resistance_to(scale: &Scale, path: &std::path::Path) {
    let path = path.display();
    println!("== Scan resistance: hot-lookup pool hit rate vs a streaming full-table scan ==");
    println!("(128-block pool, 32 hot keys; writing {path})");
    let w = scale.search_workload(Dataset::Ycsb, WorkloadKind::LookupOnly);
    let variants: [(ReplacementPolicy, PoolPartitions); 4] = [
        (ReplacementPolicy::Lru, PoolPartitions::Unified),
        (ReplacementPolicy::Clock, PoolPartitions::Unified),
        (ReplacementPolicy::TwoQ, PoolPartitions::Unified),
        (ReplacementPolicy::Lru, PoolPartitions::InnerReserved { percent: 25 }),
    ];
    let mut t = Table::new([
        "index",
        "policy",
        "partitions",
        "baseline hit",
        "under-scan hit",
        "lost (pts)",
        "inner misses",
    ]);
    let mut entries = Vec::new();
    for choice in [IndexChoice::BTree, IndexChoice::Pgm, IndexChoice::HybridPla] {
        for (policy, partitions) in variants {
            let cfg = RunConfig {
                buffer_blocks: 128,
                buffer_policy: policy,
                buffer_partitions: partitions,
                ..hdd()
            };
            let r = run_scan_interference(choice, &cfg, &w, 32);
            t.row([
                r.index.clone(),
                policy.name().to_string(),
                partitions.name().to_string(),
                f2(r.baseline_hit_rate),
                f2(r.under_scan_hit_rate),
                f2(r.degradation_points()),
                r.under_scan_inner_reads.to_string(),
            ]);
            entries.push(format!(
                concat!(
                    "    {{\n",
                    "      \"index\": \"{}\",\n",
                    "      \"policy\": \"{}\",\n",
                    "      \"partitions\": \"{}\",\n",
                    "      \"baseline_hit_rate\": {:.4},\n",
                    "      \"under_scan_hit_rate\": {:.4},\n",
                    "      \"degradation_points\": {:.2},\n",
                    "      \"under_scan_inner_reads\": {},\n",
                    "      \"scanned_entries\": {},\n",
                    "      \"scan_tagged_reads\": {}\n",
                    "    }}"
                ),
                r.index,
                policy.name(),
                partitions.name(),
                r.baseline_hit_rate,
                r.under_scan_hit_rate,
                r.degradation_points(),
                r.under_scan_inner_reads,
                r.scanned_entries,
                r.scan_reads,
            ));
        }
    }
    t.print();
    let json = format!(
        concat!(
            "{{\n",
            "  \"schema\": \"lidx-bench-scan-v1\",\n",
            "  \"workload\": \"hot-lookups-vs-full-table-scan/ycsb\",\n",
            "  \"buffer_blocks\": 128,\n",
            "  \"hot_keys\": 32,\n",
            "  \"keys\": {},\n",
            "  \"seed\": {},\n",
            "  \"runs\": [\n{}\n  ]\n",
            "}}\n"
        ),
        scale.keys,
        scale.seed,
        entries.join(",\n"),
    );
    std::fs::write(path.to_string(), json).expect("write scan snapshot");
    println!("wrote {path}");
}

/// The storage configuration of the batched-write experiment: the same
/// 64-block pool for every mode, so the contrast isolates the insert
/// strategy rather than the cache size.
fn batch_insert_config() -> RunConfig {
    RunConfig { buffer_blocks: 64, ..hdd() }
}

/// The Fig. 5 gap metric over `(index, per_key_ns, buffered_ns)` rows: mean
/// device cost of the non-PGM designs relative to PGM's *per-key* path (its
/// native LSM batching — the paper's configuration), measured once with the
/// other designs inserting per key and once with them buffered.
fn pgm_gap(rows: &[(String, f64, f64)]) -> (f64, f64) {
    let Some(&(_, pgm, _)) = rows.iter().find(|(n, _, _)| n == "pgm") else {
        return (0.0, 0.0);
    };
    let pgm = pgm.max(f64::MIN_POSITIVE);
    let others: Vec<&(String, f64, f64)> = rows.iter().filter(|(n, _, _)| n != "pgm").collect();
    if others.is_empty() {
        return (0.0, 0.0);
    }
    let per_key = others.iter().map(|(_, p, _)| p / pgm).sum::<f64>() / others.len() as f64;
    let buffered = others.iter().map(|(_, _, b)| b / pgm).sum::<f64>() / others.len() as f64;
    (per_key, buffered)
}

/// The `WriteBuffer` configuration the batched-write experiment measures
/// (512-entry group commit, drained in 128-entry `insert_batch` calls —
/// the same order of magnitude as PGM's 585-entry insert run).
pub fn batch_insert_buffer_config() -> WriteBufferConfig {
    WriteBufferConfig { capacity: 512, drain: 128 }
}

/// Beyond the paper: the batched write path. For every index design, the
/// same Write-Only workload is executed three ways under one storage
/// configuration — per-key `insert` (the paper's write path), caller-chunked
/// `insert_batch`, and a group-commit `WriteBuffer` front — comparing
/// simulated device time per insert, fetched/written blocks and SMO counts.
/// This is the Fig. 5/6 gap under the microscope: PGM's LSM run is what
/// made it the write winner, and the `WriteBuffer` hands the same batching
/// to every other design, so the PGM-vs-rest gap must shrink.
pub fn batch_insert(scale: &Scale) {
    batch_insert_to(scale, std::path::Path::new("BENCH_write.json"));
}

/// [`batch_insert`] with an explicit output path (tests write to a temp
/// file; the `exp` binary always writes `BENCH_write.json` in the cwd).
pub fn batch_insert_to(scale: &Scale, path: &std::path::Path) {
    let path = path.display();
    println!("== Batched inserts vs per-key (Write-Only, 64-block pool, HDD model) ==");
    println!("(writing {path})");
    let cfg = batch_insert_config();
    let wb = batch_insert_buffer_config();
    let w = scale.mixed_workload(Dataset::Ycsb, WorkloadKind::WriteOnly);
    let mut t = Table::new([
        "index",
        "per-key ns/ins",
        "batch64 ns/ins",
        "buffered ns/ins",
        "speedup",
        "per-key blk/ins",
        "buffered blk/ins",
        "smos (pk/buf)",
        "drains",
    ]);
    let mut entries = Vec::new();
    let mut gap_inputs: Vec<(String, f64, f64)> = Vec::new();
    for choice in IndexChoice::ALL_DESIGNS {
        let per_key = run_batch_insert(choice, &cfg, &w, InsertMode::PerKey);
        let batch = run_batch_insert(choice, &cfg, &w, InsertMode::Batch(64));
        let buffered = run_batch_insert(choice, &cfg, &w, InsertMode::Buffered(wb));
        for r in [&per_key, &batch, &buffered] {
            assert_eq!(r.lost, 0, "{choice:?} {} lost inserted keys", r.mode);
        }
        let speedup =
            per_key.device_ns_per_insert() / buffered.device_ns_per_insert().max(f64::MIN_POSITIVE);
        t.row([
            per_key.index.clone(),
            format!("{:.0}", per_key.device_ns_per_insert()),
            format!("{:.0}", batch.device_ns_per_insert()),
            format!("{:.0}", buffered.device_ns_per_insert()),
            f2(speedup),
            f2(per_key.io_per_insert()),
            f2(buffered.io_per_insert()),
            format!("{}/{}", per_key.smos, buffered.smos),
            buffered.breakdown.drains.to_string(),
        ]);
        gap_inputs.push((
            per_key.index.clone(),
            per_key.device_ns_per_insert(),
            buffered.device_ns_per_insert(),
        ));
        entries.push(format!(
            concat!(
                "    {{\n",
                "      \"index\": \"{}\",\n",
                "      \"per_key_ns_per_insert\": {:.1},\n",
                "      \"batch64_ns_per_insert\": {:.1},\n",
                "      \"buffered_ns_per_insert\": {:.1},\n",
                "      \"buffered_speedup\": {:.4},\n",
                "      \"per_key_blocks_per_insert\": {:.4},\n",
                "      \"batch64_blocks_per_insert\": {:.4},\n",
                "      \"buffered_blocks_per_insert\": {:.4},\n",
                "      \"per_key_smos\": {},\n",
                "      \"buffered_smos\": {},\n",
                "      \"drains\": {},\n",
                "      \"drained_entries\": {}\n",
                "    }}"
            ),
            per_key.index,
            per_key.device_ns_per_insert(),
            batch.device_ns_per_insert(),
            buffered.device_ns_per_insert(),
            speedup,
            per_key.io_per_insert(),
            batch.io_per_insert(),
            buffered.io_per_insert(),
            per_key.smos,
            buffered.smos,
            buffered.breakdown.drains,
            buffered.breakdown.drained_entries,
        ));
    }
    t.print();

    // The Fig. 5 gap: PGM's insert advantage came from its native LSM
    // batching, so the reference stays PGM's per-key path (the paper's
    // configuration) while the other designs ride the WriteBuffer. The mean
    // cost ratio of the non-PGM designs against that reference must shrink
    // once they batch too.
    let (gap_per_key, gap_buffered) = pgm_gap(&gap_inputs);
    println!(
        "Mean non-PGM cost vs PGM's native path: {:.2}x per-key -> {:.2}x buffered",
        gap_per_key, gap_buffered
    );

    let json = format!(
        concat!(
            "{{\n",
            "  \"schema\": \"lidx-bench-write-v1\",\n",
            "  \"workload\": \"write-only/ycsb\",\n",
            "  \"buffer_blocks\": 64,\n",
            "  \"write_buffer\": {{ \"capacity\": {}, \"drain\": {} }},\n",
            "  \"keys\": {},\n",
            "  \"ops\": {},\n",
            "  \"bulk_keys\": {},\n",
            "  \"seed\": {},\n",
            "  \"pgm_gap_per_key\": {:.2},\n",
            "  \"pgm_gap_buffered\": {:.2},\n",
            "  \"indexes\": [\n{}\n  ]\n",
            "}}\n"
        ),
        wb.capacity,
        wb.drain,
        scale.keys,
        scale.ops,
        scale.bulk_keys,
        scale.seed,
        gap_per_key,
        gap_buffered,
        entries.join(",\n"),
    );
    std::fs::write(path.to_string(), json).expect("write batch-insert snapshot");
    println!("wrote {path}");
}

/// The [`lidx_core::ShardedWriteBufferConfig`] the mixed-workload sweep
/// races: 8 shards so four writers rarely collide on a staging lock, and a
/// small drain chunk so the exclusive index-lock windows stay short enough
/// for readers to overlap.
pub fn mixed_workload_buffer_config() -> lidx_core::ShardedWriteBufferConfig {
    lidx_core::ShardedWriteBufferConfig { capacity: 1024, drain: 64, shards: 8 }
}

/// Beyond the paper: the concurrent write path. Every index design is
/// wrapped in the `ConcurrentIndex` + `ShardedWriteBuffer` front and raced
/// under the YCSB-A/B/C mixes by 1..=`scale.threads` worker threads while a
/// dedicated background writer continuously stages chunks and drains them —
/// so even the read-only YCSB-C rows measure readers overlapping exclusive
/// drain windows. The device cost model is realised as blocking time (as in
/// [`par_lookup`]), making the wall-clock speedup the contention signal:
/// reads scale while drains only pause them chunk-wise.
pub fn mixed_workload(scale: &Scale) {
    mixed_workload_to(scale, std::path::Path::new("BENCH_mixed.json"));
}

/// [`mixed_workload`] with an explicit output path (tests write to a temp
/// file; the `exp` binary always writes `BENCH_mixed.json` in the cwd).
pub fn mixed_workload_to(scale: &Scale, path: &std::path::Path) {
    let path = path.display();
    println!(
        "== Mixed YCSB workloads: worker threads racing a draining writer (writing {path}) =="
    );
    let cfg = RunConfig {
        device: DeviceModel::custom("ssd-25us", 25_000, 30_000, 15_000),
        simulate_device_latency: true,
        ..Default::default()
    };
    let buffer = mixed_workload_buffer_config();
    // Balanced supplies the biggest insert pool; the mix ratios are applied
    // per worker operation inside the phase, not by the workload stream.
    let w = scale.mixed_workload(Dataset::Ycsb, WorkloadKind::Balanced);
    let mut sweep = Vec::new();
    let mut t = 1usize;
    while t <= scale.threads.max(1) {
        sweep.push(t);
        t *= 2;
    }
    let ops_per_thread = scale.ops;
    let mut table = Table::new([
        "index",
        "mix",
        "threads",
        "ops/s",
        "speedup",
        "drains",
        "read stalls",
        "write stalls",
    ]);
    let mut entries = Vec::new();
    let mut tails = Table::new([
        "index",
        "mix",
        "lookup p99 us",
        "insert p99 us",
        "drain p99 us",
        "drain max us",
        "top pause",
    ]);
    for choice in IndexChoice::ALL_DESIGNS {
        for mix in crate::runner::YcsbMix::ALL {
            let mut base = 0.0f64;
            for &threads in &sweep {
                let r = crate::runner::run_mixed_workload(
                    choice,
                    &cfg,
                    &w,
                    mix,
                    threads,
                    ops_per_thread,
                    buffer,
                );
                assert_eq!(r.not_found, 0, "{choice:?} {mix:?} bulk keys must stay visible");
                assert_eq!(r.lost, 0, "{choice:?} {mix:?} staged keys must survive the race");
                assert_percentiles_ordered(
                    &r.telemetry,
                    &format!("{} {} t{threads}", r.index, r.mix),
                );
                if threads == 1 {
                    base = r.aggregate_ops_per_sec();
                }
                if threads == *sweep.last().unwrap() {
                    tails.row([
                        r.index.clone(),
                        r.mix.to_string(),
                        us(r.telemetry.class(OpClass::Lookup).summary.p99_ns as f64),
                        us(r.telemetry.class(OpClass::Insert).summary.p99_ns as f64),
                        us(r.telemetry.class(OpClass::Drain).summary.p99_ns as f64),
                        us(r.telemetry.class(OpClass::Drain).summary.max_ns as f64),
                        r.telemetry
                            .top_pauses(1)
                            .first()
                            .map(|c| c.class.label().to_string())
                            .unwrap_or_else(|| "-".to_string()),
                    ]);
                }
                let speedup = r.aggregate_ops_per_sec() / base.max(f64::MIN_POSITIVE);
                table.row([
                    r.index.clone(),
                    r.mix.to_string(),
                    threads.to_string(),
                    ops(r.aggregate_ops_per_sec()),
                    f2(speedup),
                    r.drain_chunks.to_string(),
                    r.read_stalls.to_string(),
                    r.write_stalls.to_string(),
                ]);
                entries.push(format!(
                    concat!(
                        "    {{\n",
                        "      \"index\": \"{}\",\n",
                        "      \"mix\": \"{}\",\n",
                        "      \"threads\": {},\n",
                        "      \"aggregate_ops_per_sec\": {:.1},\n",
                        "      \"speedup_vs_1_thread\": {:.4},\n",
                        "      \"lookups\": {},\n",
                        "      \"inserts\": {},\n",
                        "      \"writer_entries\": {},\n",
                        "      \"drain_chunks\": {},\n",
                        "      \"drained_entries\": {},\n",
                        "      \"read_stalls\": {},\n",
                        "      \"write_stalls\": {},\n",
                        "      \"not_found\": {},\n",
                        "      \"lost\": {},\n",
                        "      \"telemetry\": {},\n",
                        "      \"top_pauses\": {}\n",
                        "    }}"
                    ),
                    r.index,
                    r.mix,
                    threads,
                    r.aggregate_ops_per_sec(),
                    speedup,
                    r.lookups,
                    r.inserts,
                    r.writer_entries,
                    r.drain_chunks,
                    r.drained_entries,
                    r.read_stalls,
                    r.write_stalls,
                    r.not_found,
                    r.lost,
                    telemetry_json(&r.telemetry, "      "),
                    top_pauses_json(&r.telemetry, 5, "      "),
                ));
            }
        }
    }
    table.print();
    println!("-- per-op-class tails at {} threads (wall-clock) --", sweep.last().unwrap());
    tails.print();
    let json = format!(
        concat!(
            "{{\n",
            "  \"schema\": \"lidx-bench-mixed-v1\",\n",
            "  \"workload\": \"ycsb-abc/ycsb\",\n",
            "  \"device\": \"ssd-25us\",\n",
            "  \"buffer\": {{ \"capacity\": {}, \"drain\": {}, \"shards\": {} }},\n",
            "  \"keys\": {},\n",
            "  \"ops_per_thread\": {},\n",
            "  \"bulk_keys\": {},\n",
            "  \"seed\": {},\n",
            "  \"runs\": [\n{}\n  ]\n",
            "}}\n"
        ),
        buffer.capacity,
        buffer.drain,
        buffer.shards,
        scale.keys,
        ops_per_thread,
        scale.bulk_keys,
        scale.seed,
        entries.join(",\n"),
    );
    std::fs::write(path.to_string(), json).expect("write mixed snapshot");
    println!("wrote {path}");
}

/// The per-shard staging config the sharded-serving sweep uses: the same
/// capacity/drain shape as the mixed sweep, with fewer staging sub-shards
/// per front because write contention is already spread across keyspace
/// shards.
pub fn sharded_serving_buffer_config() -> lidx_core::ShardedWriteBufferConfig {
    lidx_core::ShardedWriteBufferConfig { capacity: 1024, drain: 64, shards: 4 }
}

/// Beyond the paper: the sharded serving layer. Every design runs behind
/// `ShardedIndex` at 1, 4 and 16 shards under zipfian and uniform read
/// streams, racing `scale.threads` workers against a continuously draining
/// background writer; every multi-shard row also executes one online
/// hot-shard split mid-run and proves `lost == 0` afterwards. Full runs
/// are floored at a 2 M-key bulk load (the tens-of-millions regime scales
/// with `--keys`/`--bulk`); smoke scales pass through untouched.
pub fn sharded_serving(scale: &Scale) {
    sharded_serving_to(scale, std::path::Path::new("BENCH_sharded.json"));
}

/// [`sharded_serving`] with an explicit output path (tests write to a temp
/// file; the `exp` binary always writes `BENCH_sharded.json` in the cwd).
pub fn sharded_serving_to(scale: &Scale, path: &std::path::Path) {
    let path = path.display();
    println!(
        "== Sharded serving: shard-count sweep under zipfian/uniform reads (writing {path}) =="
    );
    // Smoke scales (--quick) pass through; anything full-sized is floored
    // at the 2 M-key serving regime the sweep is about.
    let eff = if scale.keys < 100_000 {
        scale.clone()
    } else {
        Scale {
            keys: scale.keys.max(2_500_000),
            bulk_keys: scale.bulk_keys.max(2_000_000),
            ..scale.clone()
        }
    };
    let cfg = RunConfig {
        device: DeviceModel::custom("ssd-25us", 25_000, 30_000, 15_000),
        simulate_device_latency: true,
        ..Default::default()
    };
    let buffer = sharded_serving_buffer_config();
    let w = eff.mixed_workload(Dataset::Ycsb, WorkloadKind::Balanced);
    let threads = eff.threads.max(1);
    let shard_sweep = [1usize, 4, 16];
    let mut table = Table::new([
        "index",
        "dist",
        "shards",
        "ops/s",
        "speedup",
        "splits",
        "read stalls",
        "write stalls",
    ]);
    let mut tails = Table::new([
        "index",
        "dist",
        "lookup p99 us",
        "insert p99 us",
        "rebalance max us",
        "top pause",
    ]);
    let mut entries = Vec::new();
    for choice in IndexChoice::ALL_DESIGNS {
        for dist in crate::runner::KeyDist::ALL {
            let mut base = 0.0f64;
            for &shards in &shard_sweep {
                let r = crate::runner::run_sharded_serving(
                    choice,
                    &cfg,
                    &w,
                    dist,
                    shards,
                    threads,
                    eff.ops,
                    buffer,
                    shards > 1,
                );
                assert_eq!(r.not_found, 0, "{choice:?} {dist:?} bulk keys must stay visible");
                assert_eq!(r.lost, 0, "{choice:?} {dist:?} staged keys must survive the race");
                assert_percentiles_ordered(
                    &r.telemetry,
                    &format!("{} {} s{shards}", r.index, r.dist),
                );
                if shards == *shard_sweep.last().unwrap() {
                    tails.row([
                        r.index.clone(),
                        r.dist.to_string(),
                        us(r.telemetry.class(OpClass::Lookup).summary.p99_ns as f64),
                        us(r.telemetry.class(OpClass::Insert).summary.p99_ns as f64),
                        us(r.telemetry.class(OpClass::Rebalance).summary.max_ns as f64),
                        r.telemetry
                            .top_pauses(1)
                            .first()
                            .map(|c| c.class.label().to_string())
                            .unwrap_or_else(|| "-".to_string()),
                    ]);
                }
                if shards > 1 {
                    assert!(r.splits >= 1, "{choice:?} {dist:?} online split must have fired");
                    assert_eq!(r.shards_final, shards + 1, "split must add one shard");
                }
                if shards == 1 {
                    base = r.aggregate_ops_per_sec();
                }
                let speedup = r.aggregate_ops_per_sec() / base.max(f64::MIN_POSITIVE);
                table.row([
                    r.index.clone(),
                    r.dist.to_string(),
                    shards.to_string(),
                    ops(r.aggregate_ops_per_sec()),
                    f2(speedup),
                    r.splits.to_string(),
                    r.read_stalls.to_string(),
                    r.write_stalls.to_string(),
                ]);
                entries.push(format!(
                    concat!(
                        "    {{\n",
                        "      \"index\": \"{}\",\n",
                        "      \"dist\": \"{}\",\n",
                        "      \"shards\": {},\n",
                        "      \"shards_final\": {},\n",
                        "      \"threads\": {},\n",
                        "      \"aggregate_ops_per_sec\": {:.1},\n",
                        "      \"speedup_vs_1_shard\": {:.4},\n",
                        "      \"lookups\": {},\n",
                        "      \"inserts\": {},\n",
                        "      \"writer_entries\": {},\n",
                        "      \"drain_chunks\": {},\n",
                        "      \"read_stalls\": {},\n",
                        "      \"write_stalls\": {},\n",
                        "      \"splits\": {},\n",
                        "      \"split_overlapped\": {},\n",
                        "      \"not_found\": {},\n",
                        "      \"lost\": {},\n",
                        "      \"telemetry\": {},\n",
                        "      \"top_pauses\": {}\n",
                        "    }}"
                    ),
                    r.index,
                    r.dist,
                    shards,
                    r.shards_final,
                    r.threads,
                    r.aggregate_ops_per_sec(),
                    speedup,
                    r.lookups,
                    r.inserts,
                    r.writer_entries,
                    r.drain_chunks,
                    r.read_stalls,
                    r.write_stalls,
                    r.splits,
                    r.split_overlapped,
                    r.not_found,
                    r.lost,
                    telemetry_json(&r.telemetry, "      "),
                    top_pauses_json(&r.telemetry, 5, "      "),
                ));
            }
        }
    }
    table.print();
    println!(
        "-- per-op-class tails at {} shards (router + live shards) --",
        shard_sweep.last().unwrap()
    );
    tails.print();
    let json = format!(
        concat!(
            "{{\n",
            "  \"schema\": \"lidx-bench-sharded-v1\",\n",
            "  \"workload\": \"serving-95r5w/ycsb\",\n",
            "  \"device\": \"ssd-25us\",\n",
            "  \"buffer\": {{ \"capacity\": {}, \"drain\": {}, \"shards\": {} }},\n",
            "  \"keys\": {},\n",
            "  \"bulk_keys\": {},\n",
            "  \"ops_per_thread\": {},\n",
            "  \"threads\": {},\n",
            "  \"zipfian_theta\": 0.99,\n",
            "  \"seed\": {},\n",
            "  \"runs\": [\n{}\n  ]\n",
            "}}\n"
        ),
        buffer.capacity,
        buffer.drain,
        buffer.shards,
        eff.keys,
        eff.bulk_keys,
        eff.ops,
        threads,
        eff.seed,
        entries.join(",\n"),
    );
    std::fs::write(path.to_string(), json).expect("write sharded snapshot");
    println!("wrote {path}");
}

/// An experiment entry: a stable name and the function that prints it.
pub type ExperimentFn = fn(&Scale);

/// Every experiment, in paper order. Returns the list of `(name, function)`
/// pairs so the binary and the docs stay in sync.
pub fn all_experiments() -> Vec<(&'static str, ExperimentFn)> {
    vec![
        ("table2", table2 as ExperimentFn),
        ("table3", table3),
        ("fig3", fig3),
        ("fig4", fig4),
        ("table4", table4),
        ("table5", table5),
        ("fig5", fig5),
        ("fig6", fig6),
        ("fig7", fig7),
        ("fig8", fig8),
        ("fig9", fig9),
        ("fig10", fig10),
        ("fig11", fig11),
        ("fig12", fig12),
        ("fig13", fig13),
        ("fig14", fig14),
        ("layout_ablation", layout_ablation),
        ("par_lookup", par_lookup),
        ("batch_lookup", batch_lookup),
        ("batch_insert", batch_insert),
        ("mixed_workload", mixed_workload),
        ("bench_snapshot", bench_snapshot),
        ("scan_resistance", scan_resistance),
        ("space_reuse_ablation", space_reuse_ablation),
        ("sharded_serving", sharded_serving),
        ("recovery", crate::recovery::recovery),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny() -> Scale {
        Scale { keys: 3_000, ops: 60, bulk_keys: 1_500, seed: 7, threads: 2, dataset_path: None }
    }

    #[test]
    fn experiment_registry_contains_every_table_and_figure() {
        let names: Vec<&str> = all_experiments().iter().map(|(n, _)| *n).collect();
        for expected in [
            "table2",
            "table3",
            "table4",
            "table5",
            "fig3",
            "fig4",
            "fig5",
            "fig6",
            "fig7",
            "fig8",
            "fig9",
            "fig10",
            "fig11",
            "fig12",
            "fig13",
            "fig14",
            "layout_ablation",
            "par_lookup",
        ] {
            assert!(names.contains(&expected), "missing experiment {expected}");
        }
    }

    #[test]
    fn dataset_path_routes_workloads_through_the_sosd_loader() {
        let fixture = std::path::Path::new(env!("CARGO_MANIFEST_DIR"))
            .join("../workloads/testdata/sosd_tiny.bin");
        let scale = Scale { dataset_path: Some(fixture), ..tiny() };
        let w = scale.search_workload(Dataset::Ycsb, WorkloadKind::LookupOnly);
        // The fixture holds 99 distinct keys of the form i*977+13; when a
        // dataset path is set, the synthetic generator must not run.
        assert_eq!(w.bulk.len(), 99);
        assert!(w.bulk.iter().all(|&(k, _)| (k - 13) % 977 == 0));
        let r = run_workload(IndexChoice::BTree, &hdd(), &w);
        assert_eq!(r.ops, scale.ops as u64);
    }

    #[test]
    fn representative_search_experiments_run_at_tiny_scale() {
        let s = tiny();
        table3(&s);
        fig4(&s);
        table5(&s);
        layout_ablation(&s);
    }

    #[test]
    fn representative_write_experiments_run_at_tiny_scale() {
        let s = tiny();
        fig6(&s);
        fig10(&s);
    }

    #[test]
    fn par_lookup_sweep_runs_at_tiny_scale() {
        par_lookup(&tiny());
    }

    #[test]
    fn batch_lookup_comparison_runs_at_tiny_scale() {
        batch_lookup(&tiny());
    }

    #[test]
    fn buffered_inserts_beat_per_key_and_narrow_the_pgm_gap() {
        // The PR's write-side acceptance criterion at a CI-friendly scale
        // (simulated device time is deterministic, so this cannot flake):
        // a WriteBuffer front must beat per-key inserts for every non-PGM
        // design, and the mean non-PGM insert cost relative to PGM's native
        // LSM path (the Fig. 5 gap) must shrink under batching.
        let scale = Scale {
            keys: 20_000,
            ops: 800,
            bulk_keys: 8_000,
            seed: 42,
            threads: 2,
            dataset_path: None,
        };
        let cfg = batch_insert_config();
        let wb = batch_insert_buffer_config();
        let w = scale.mixed_workload(Dataset::Ycsb, WorkloadKind::WriteOnly);
        let mut rows: Vec<(String, f64, f64)> = Vec::new();
        for choice in IndexChoice::ALL_DESIGNS {
            let per_key = run_batch_insert(choice, &cfg, &w, InsertMode::PerKey);
            let buffered = run_batch_insert(choice, &cfg, &w, InsertMode::Buffered(wb));
            assert_eq!(per_key.lost, 0, "{choice:?} per-key lost keys");
            assert_eq!(buffered.lost, 0, "{choice:?} buffered lost keys");
            assert_eq!(per_key.inserts, buffered.inserts);
            assert!(buffered.breakdown.drains >= 1, "{choice:?} must actually drain");
            if per_key.index != "pgm" {
                assert!(
                    buffered.device_ns_per_insert() < per_key.device_ns_per_insert(),
                    "{choice:?}: buffered inserts ({:.0} ns) must beat per-key ({:.0} ns)",
                    buffered.device_ns_per_insert(),
                    per_key.device_ns_per_insert()
                );
            }
            rows.push((
                per_key.index.clone(),
                per_key.device_ns_per_insert(),
                buffered.device_ns_per_insert(),
            ));
        }
        let (gap_per_key, gap_buffered) = pgm_gap(&rows);
        assert!(
            gap_buffered < gap_per_key,
            "batching must narrow the PGM insert gap ({gap_per_key:.2}x -> {gap_buffered:.2}x)"
        );
    }

    #[test]
    fn batch_insert_writes_machine_readable_json() {
        let path = std::env::temp_dir().join("lidx_write_snapshot_test.json");
        batch_insert_to(&tiny(), &path);
        let s = std::fs::read_to_string(&path).unwrap();
        std::fs::remove_file(&path).ok();
        for index in ["btree", "fiting", "pgm", "alex", "lipp", "hybrid-pla", "hybrid-model-tree"] {
            assert!(s.contains(&format!("\"index\": \"{index}\"")), "snapshot misses {index}");
        }
        for field in [
            "\"schema\": \"lidx-bench-write-v1\"",
            "per_key_ns_per_insert",
            "batch64_ns_per_insert",
            "buffered_ns_per_insert",
            "buffered_speedup",
            "per_key_blocks_per_insert",
            "buffered_blocks_per_insert",
            "per_key_smos",
            "buffered_smos",
            "\"drains\":",
            "drained_entries",
            "pgm_gap_per_key",
            "pgm_gap_buffered",
            "\"write_buffer\": { \"capacity\": 512, \"drain\": 128 }",
        ] {
            assert!(s.contains(field), "write snapshot misses {field}: {s}");
        }
        assert_eq!(s.matches("\"index\":").count(), 7);
    }

    #[test]
    fn mixed_workload_writes_machine_readable_json() {
        // Tiny scale checks the mechanics and the self-checks inside the
        // phase (not_found == 0, lost == 0 for every design / mix / thread
        // count); the wall-clock *scaling* is a release-mode property pinned
        // by the checked-in BENCH_mixed.json.
        let path = std::env::temp_dir().join("lidx_mixed_snapshot_test.json");
        mixed_workload_to(&tiny(), &path);
        let s = std::fs::read_to_string(&path).unwrap();
        std::fs::remove_file(&path).ok();
        for field in [
            "\"schema\": \"lidx-bench-mixed-v1\"",
            "\"mix\": \"ycsb-a\"",
            "\"mix\": \"ycsb-b\"",
            "\"mix\": \"ycsb-c\"",
            "aggregate_ops_per_sec",
            "speedup_vs_1_thread",
            "writer_entries",
            "drain_chunks",
            "read_stalls",
            "write_stalls",
            "\"buffer\": { \"capacity\": 1024, \"drain\": 64, \"shards\": 8 }",
            "\"telemetry\":",
            "\"top_pauses\":",
            "\"lookup\":",
            "\"drain\":",
            "\"p999_ns\":",
        ] {
            assert!(s.contains(field), "mixed snapshot misses {field}");
        }
        assert!(s.contains("+rw+swb"), "concurrent front names must carry +rw+swb");
        // 7 designs x 3 mixes x 2 thread counts (tiny scale: threads = 2).
        assert_eq!(s.matches("\"index\":").count(), 42);
        assert!(!s.contains("\"lost\": 1"), "no run may lose a staged key");
        // Every run embeds a telemetry object and a top-pauses array.
        assert_eq!(s.matches("\"telemetry\":").count(), 42);
        assert_eq!(s.matches("\"top_pauses\":").count(), 42);
    }

    #[test]
    fn sharded_serving_writes_machine_readable_json() {
        // Tiny scale checks the mechanics and the self-checks inside the
        // phase (not_found == 0, lost == 0, an online split on every
        // multi-shard row); the aggregate *scaling* is a release-mode
        // property pinned by the checked-in BENCH_sharded.json.
        let path = std::env::temp_dir().join("lidx_sharded_snapshot_test.json");
        sharded_serving_to(&tiny(), &path);
        let s = std::fs::read_to_string(&path).unwrap();
        std::fs::remove_file(&path).ok();
        for field in [
            "\"schema\": \"lidx-bench-sharded-v1\"",
            "\"dist\": \"zipfian\"",
            "\"dist\": \"uniform\"",
            "\"shards\": 16",
            "\"shards_final\": 17",
            "aggregate_ops_per_sec",
            "speedup_vs_1_shard",
            "\"zipfian_theta\": 0.99",
            "\"buffer\": { \"capacity\": 1024, \"drain\": 64, \"shards\": 4 }",
            "\"telemetry\":",
            "\"top_pauses\":",
            "\"rebalance\":",
            "\"p999_ns\":",
        ] {
            assert!(s.contains(field), "sharded snapshot misses {field}");
        }
        // Every run embeds a telemetry object and a top-pauses array.
        assert_eq!(s.matches("\"telemetry\":").count(), 42);
        assert_eq!(s.matches("\"top_pauses\":").count(), 42);
        assert!(s.contains("+sharded"), "router names must carry +sharded");
        // 7 designs x 2 distributions x 3 shard counts.
        assert_eq!(s.matches("\"index\":").count(), 42);
        assert!(!s.contains("\"lost\": 1"), "no run may lose a staged key");
        // Every multi-shard row split online (asserted per-run inside the
        // phase); 28 of the 42 rows ran multi-shard.
        assert_eq!(s.matches("\"splits\": 1").count(), 28);
    }

    #[test]
    fn scan_resistance_writes_machine_readable_json() {
        // Tiny scale only checks the mechanics (the policy *contrast* needs
        // a table much larger than the pool and is pinned at a realistic
        // scale by `runner::tests::scan_interference_pins_the_policy_contrast`).
        let path = std::env::temp_dir().join("lidx_scan_snapshot_test.json");
        scan_resistance_to(&tiny(), &path);
        let s = std::fs::read_to_string(&path).unwrap();
        std::fs::remove_file(&path).ok();
        for field in [
            "\"schema\": \"lidx-bench-scan-v1\"",
            "\"policy\": \"lru\"",
            "\"policy\": \"clock\"",
            "\"policy\": \"2q\"",
            "\"partitions\": \"inner-reserved\"",
            "baseline_hit_rate",
            "under_scan_hit_rate",
            "degradation_points",
            "under_scan_inner_reads",
            "scan_tagged_reads",
        ] {
            assert!(s.contains(field), "scan snapshot misses {field}: {s}");
        }
        // 3 indexes x 4 (policy, partition) variants.
        assert_eq!(s.matches("\"index\":").count(), 12);
    }

    #[test]
    fn bench_snapshot_writes_machine_readable_json() {
        let path = std::env::temp_dir().join("lidx_bench_snapshot_test.json");
        bench_snapshot_to(&tiny(), &path);
        let s = std::fs::read_to_string(&path).unwrap();
        std::fs::remove_file(&path).ok();
        for index in ["btree", "fiting", "pgm", "alex", "lipp", "hybrid-pla", "hybrid-model-tree"] {
            assert!(s.contains(&format!("\"index\": \"{index}\"")), "snapshot misses {index}");
        }
        for field in [
            "ns_per_lookup",
            "batch64_ns_per_lookup",
            "reads_per_lookup",
            "buffer_hit_rate",
            "reuse_hit_rate",
            "simulated_io_seconds",
            "bytes_copied",
            "frames_pinned",
            "qdepth_sweep",
            "overlap_saved_seconds",
            "\"telemetry\":",
            "\"lookup\":",
            "\"p999_ns\":",
        ] {
            assert!(s.contains(field), "snapshot misses field {field}");
        }
        // One telemetry object per index entry.
        assert_eq!(s.matches("\"telemetry\":").count(), 7);
        // Each of the 7 index entries carries the full 1/4/8/32 depth sweep.
        for depth in QDEPTH_SWEEP {
            assert_eq!(
                s.matches(&format!("\"depth\": {depth},")).count(),
                7,
                "one depth-{depth} row per index: {s}"
            );
        }
        // Lookup hot paths are zero-copy: the sequential pass must record
        // exactly zero caller-buffer copies for *every one* of the seven
        // indexes (one `"bytes_copied": 0` line per index entry).
        let zero_copy_lines = s.matches("\"bytes_copied\": 0,").count();
        let copied_lines = s.matches("\"bytes_copied\":").count();
        assert_eq!(copied_lines, 7, "one bytes_copied field per index: {s}");
        assert_eq!(zero_copy_lines, 7, "every index's lookup path must copy 0 bytes: {s}");
    }
}
