//! Learned inner structures over leaf boundary keys.
//!
//! Both structures map a search key to the leaf block whose boundary (first
//! key) is the greatest one not exceeding the search key — a *floor* lookup.
//! All their I/O is charged to [`BlockKind::Inner`].

use std::sync::Arc;

use lidx_core::{IndexError, IndexResult, Key};
use lidx_models::fmcd::fit_fmcd;
use lidx_models::pla::segment_keys;
use lidx_models::LinearModel;
use lidx_storage::{BlockId, BlockKind, Disk};

/// One `(boundary key, leaf block)` pair.
pub type Boundary = (Key, BlockId);

/// A floor-lookup directory over leaf boundaries.
pub trait InnerDirectory {
    /// Rebuilds the directory from scratch over `boundaries` (sorted by key).
    fn rebuild(&mut self, boundaries: &[Boundary]) -> IndexResult<()>;

    /// Returns the leaf block covering `key`: the entry with the greatest
    /// boundary `<= key`, or the first leaf when `key` precedes every
    /// boundary.
    fn find_leaf(&self, key: Key) -> IndexResult<BlockId>;

    /// Number of on-disk nodes (blocks for the PLA directory).
    fn node_count(&self) -> u64;

    /// Height of the directory including the in-memory root.
    fn height(&self) -> u32;
}

// ---------------------------------------------------------------------------
// PLA directory (FITing-tree / PGM style)
// ---------------------------------------------------------------------------

const PLA_ENTRY: usize = 16; // boundary u64 + leaf block u64
const PLA_RECORD: usize = 28; // first_key u64 + slope f64 + start u64 + len u32

#[derive(Debug, Clone, Copy)]
struct PlaLevel {
    first_block: u32,
    records: u64,
}

#[derive(Debug, Clone, Copy)]
struct PlaRecord {
    first_key: Key,
    slope: f64,
    start: u64,
    len: u32,
}

impl PlaRecord {
    fn predict(&self, key: Key) -> u64 {
        if self.len == 0 {
            return self.start;
        }
        let m = LinearModel { slope: self.slope, intercept: -self.slope * self.first_key as f64 };
        self.start + m.predict_clamped(key, self.len as usize) as u64
    }
}

/// A recursive ε-bounded piecewise-linear directory over the boundaries, the
/// inner structure a FITing-tree or PGM would use (Table 5, "FITing-Tree" /
/// "PGM" columns).
pub struct PlaInner {
    disk: Arc<Disk>,
    file: u32,
    epsilon: usize,
    boundaries: u64,
    base_blocks: u32,
    base_first_block: u32,
    levels: Vec<PlaLevel>,
    root: Option<PlaRecord>,
    first_leaf: BlockId,
    total_blocks: u64,
}

impl PlaInner {
    /// Creates an empty PLA directory with error bound `epsilon`.
    pub fn new(disk: Arc<Disk>, epsilon: usize) -> IndexResult<Self> {
        let file = disk.create_file()?;
        Ok(PlaInner {
            disk,
            file,
            epsilon: epsilon.max(1),
            boundaries: 0,
            base_blocks: 0,
            base_first_block: 0,
            levels: Vec::new(),
            root: None,
            first_leaf: 0,
            total_blocks: 0,
        })
    }

    fn entries_per_block(&self) -> usize {
        self.disk.block_size() / PLA_ENTRY
    }

    fn records_per_block(&self) -> usize {
        self.disk.block_size() / PLA_RECORD
    }

    fn read_base(&self, pos: u64) -> IndexResult<Boundary> {
        let per = self.entries_per_block() as u64;
        let block = (pos / per) as u32;
        let slot = (pos % per) as usize;
        let buf = self.disk.read_ref(self.file, self.base_start() + block, BlockKind::Inner)?;
        let off = slot * PLA_ENTRY;
        Ok((
            Key::from_le_bytes(buf[off..off + 8].try_into().unwrap()),
            u64::from_le_bytes(buf[off + 8..off + 16].try_into().unwrap()) as u32,
        ))
    }

    fn base_start(&self) -> u32 {
        self.base_first_block
    }

    fn read_record(&self, level: &PlaLevel, idx: u64) -> IndexResult<PlaRecord> {
        let per = self.records_per_block() as u64;
        let block = level.first_block + (idx / per) as u32;
        let slot = (idx % per) as usize;
        let buf = self.disk.read_ref(self.file, block, BlockKind::Inner)?;
        let off = slot * PLA_RECORD;
        Ok(PlaRecord {
            first_key: Key::from_le_bytes(buf[off..off + 8].try_into().unwrap()),
            slope: f64::from_le_bytes(buf[off + 8..off + 16].try_into().unwrap()),
            start: u64::from_le_bytes(buf[off + 16..off + 24].try_into().unwrap()),
            len: u32::from_le_bytes(buf[off + 24..off + 28].try_into().unwrap()),
        })
    }

    /// Searches one on-disk record level for the record covering `key`.
    fn search_level(&self, level: &PlaLevel, key: Key, predicted: u64) -> IndexResult<PlaRecord> {
        let lo = predicted.saturating_sub(self.epsilon as u64 + 1);
        let hi = (predicted + self.epsilon as u64).min(level.records - 1);
        let mut best: Option<PlaRecord> = None;
        for idx in lo..=hi {
            let rec = self.read_record(level, idx)?;
            if rec.first_key <= key {
                best = Some(rec);
            } else {
                break;
            }
        }
        match best {
            Some(r) => Ok(r),
            None => self.read_record(level, 0),
        }
    }
}

impl InnerDirectory for PlaInner {
    fn rebuild(&mut self, boundaries: &[Boundary]) -> IndexResult<()> {
        let bs = self.disk.block_size();
        let per_entry_block = self.entries_per_block();
        self.boundaries = boundaries.len() as u64;
        self.first_leaf = boundaries.first().map_or(0, |b| b.1);

        // Base level: the boundary array itself.
        let base_blocks = boundaries.len().div_ceil(per_entry_block).max(1) as u32;
        let base_start = self.disk.allocate(self.file, base_blocks)?;
        let mut buf = vec![0u8; bs];
        for b in 0..base_blocks {
            buf.fill(0);
            for slot in 0..per_entry_block {
                if let Some(&(k, blk)) = boundaries.get(b as usize * per_entry_block + slot) {
                    let off = slot * PLA_ENTRY;
                    buf[off..off + 8].copy_from_slice(&k.to_le_bytes());
                    buf[off + 8..off + 16].copy_from_slice(&u64::from(blk).to_le_bytes());
                }
            }
            self.disk.write(self.file, base_start + b, BlockKind::Inner, &buf)?;
        }
        self.base_blocks = base_blocks;
        self.base_first_block = base_start;

        // Upper levels: ε-bounded segments over the boundary keys.
        self.levels.clear();
        let mut keys: Vec<Key> = boundaries.iter().map(|b| b.0).collect();
        if keys.is_empty() {
            keys.push(0);
        }
        let mut records: Vec<PlaRecord> = segment_keys(&keys, self.epsilon)
            .iter()
            .map(|s| PlaRecord {
                first_key: s.first_key,
                slope: s.model.slope,
                start: s.start_index as u64,
                len: s.len as u32,
            })
            .collect();
        let per_rec_block = self.records_per_block();
        while records.len() > 1 {
            let blocks = records.len().div_ceil(per_rec_block) as u32;
            let first = self.disk.allocate(self.file, blocks)?;
            for b in 0..blocks {
                buf.fill(0);
                for slot in 0..per_rec_block {
                    if let Some(r) = records.get(b as usize * per_rec_block + slot) {
                        let off = slot * PLA_RECORD;
                        buf[off..off + 8].copy_from_slice(&r.first_key.to_le_bytes());
                        buf[off + 8..off + 16].copy_from_slice(&r.slope.to_le_bytes());
                        buf[off + 16..off + 24].copy_from_slice(&r.start.to_le_bytes());
                        buf[off + 24..off + 28].copy_from_slice(&r.len.to_le_bytes());
                    }
                }
                self.disk.write(self.file, first + b, BlockKind::Inner, &buf)?;
            }
            self.levels.push(PlaLevel { first_block: first, records: records.len() as u64 });
            let level_keys: Vec<Key> = records.iter().map(|r| r.first_key).collect();
            records = segment_keys(&level_keys, self.epsilon)
                .iter()
                .map(|s| PlaRecord {
                    first_key: s.first_key,
                    slope: s.model.slope,
                    start: s.start_index as u64,
                    len: s.len as u32,
                })
                .collect();
        }
        self.root = records.pop();
        self.total_blocks = u64::from(base_blocks)
            + self.levels.iter().map(|l| l.records.div_ceil(per_rec_block as u64)).sum::<u64>();
        Ok(())
    }

    fn find_leaf(&self, key: Key) -> IndexResult<BlockId> {
        if self.boundaries == 0 {
            return Err(IndexError::NotInitialized);
        }
        let mut rec = self.root.ok_or(IndexError::NotInitialized)?;
        for level in self.levels.iter().rev() {
            let predicted = rec.predict(key).min(level.records - 1);
            rec = self.search_level(level, key, predicted)?;
        }
        // Search the base level inside the ε window.
        let predicted = rec.predict(key).min(self.boundaries - 1);
        let lo = predicted.saturating_sub(self.epsilon as u64 + 1);
        let hi = (predicted + self.epsilon as u64).min(self.boundaries - 1);
        let mut best: Option<BlockId> = None;
        for idx in lo..=hi {
            let (k, blk) = self.read_base(idx)?;
            if k <= key {
                best = Some(blk);
            } else {
                break;
            }
        }
        Ok(best.unwrap_or(self.first_leaf))
    }

    fn node_count(&self) -> u64 {
        self.total_blocks
    }

    fn height(&self) -> u32 {
        // base level + record levels + in-memory root
        2 + self.levels.len() as u32
    }
}

// ---------------------------------------------------------------------------
// FMCD model tree (ALEX / LIPP style)
// ---------------------------------------------------------------------------

const MT_SLOT: usize = 24;
const MT_NULL: u64 = 0;
const MT_DATA: u64 = 1;
const MT_CHILD: u64 = 2;

/// An FMCD-fitted model tree over the boundaries, in the spirit of the inner
/// nodes of ALEX and LIPP (Table 5, "ALEX" / "LIPP" columns).
pub struct ModelTreeInner {
    disk: Arc<Disk>,
    file: u32,
    gap_factor: u32,
    root: BlockId,
    nodes: u64,
    height: u32,
    first_leaf: BlockId,
    built: bool,
}

struct MtHeader {
    capacity: u32,
    model: LinearModel,
}

impl ModelTreeInner {
    /// Creates an empty model-tree directory; `gap_factor` is the slot
    /// over-allocation factor (LIPP-style).
    pub fn new(disk: Arc<Disk>, gap_factor: u32) -> IndexResult<Self> {
        let file = disk.create_file()?;
        Ok(ModelTreeInner {
            disk,
            file,
            gap_factor: gap_factor.max(1),
            root: 0,
            nodes: 0,
            height: 0,
            first_leaf: 0,
            built: false,
        })
    }

    fn slots_per_block(&self) -> usize {
        self.disk.block_size() / MT_SLOT
    }

    fn blocks_for(&self, capacity: u32) -> u32 {
        1 + (capacity as usize).div_ceil(self.slots_per_block()).max(1) as u32
    }

    fn read_header(&self, start: BlockId) -> IndexResult<MtHeader> {
        let buf = self.disk.read_ref(self.file, start, BlockKind::Inner)?;
        Ok(MtHeader {
            capacity: u32::from_le_bytes(buf[0..4].try_into().unwrap()),
            model: LinearModel::new(
                f64::from_le_bytes(buf[8..16].try_into().unwrap()),
                f64::from_le_bytes(buf[16..24].try_into().unwrap()),
            ),
        })
    }

    fn read_slot(&self, start: BlockId, slot: u32) -> IndexResult<(u64, Key, u64)> {
        let per = self.slots_per_block() as u32;
        let block = start + 1 + slot / per;
        let off = ((slot % per) as usize) * MT_SLOT;
        let buf = self.disk.read_ref(self.file, block, BlockKind::Inner)?;
        Ok((
            u64::from_le_bytes(buf[off..off + 8].try_into().unwrap()),
            Key::from_le_bytes(buf[off + 8..off + 16].try_into().unwrap()),
            u64::from_le_bytes(buf[off + 16..off + 24].try_into().unwrap()),
        ))
    }

    fn build_node(&mut self, boundaries: &[Boundary], depth: u32) -> IndexResult<BlockId> {
        self.height = self.height.max(depth + 1);
        let capacity = (boundaries.len() as u32 * self.gap_factor).clamp(8, 1 << 20);
        let keys: Vec<Key> = boundaries.iter().map(|b| b.0).collect();
        let model = fit_fmcd(&keys, capacity as usize).model;

        // Group boundaries by slot.
        let mut slots: Vec<(u64, Key, u64)> = vec![(MT_NULL, 0, 0); capacity as usize];
        let mut i = 0usize;
        while i < boundaries.len() {
            let slot = model.predict_clamped(boundaries[i].0, capacity as usize);
            let mut j = i + 1;
            while j < boundaries.len()
                && model.predict_clamped(boundaries[j].0, capacity as usize) == slot
            {
                j += 1;
            }
            if j - i == 1 {
                slots[slot] = (MT_DATA, boundaries[i].0, u64::from(boundaries[i].1));
            } else {
                let child = self.build_node(&boundaries[i..j], depth + 1)?;
                slots[slot] = (MT_CHILD, boundaries[i].0, u64::from(child));
            }
            i = j;
        }

        // Serialise.
        let bs = self.disk.block_size();
        let start = self.disk.allocate(self.file, self.blocks_for(capacity))?;
        let mut buf = vec![0u8; bs];
        buf[0..4].copy_from_slice(&capacity.to_le_bytes());
        buf[8..16].copy_from_slice(&model.slope.to_le_bytes());
        buf[16..24].copy_from_slice(&model.intercept.to_le_bytes());
        self.disk.write(self.file, start, BlockKind::Inner, &buf)?;
        let per = self.slots_per_block();
        let slot_blocks = (capacity as usize).div_ceil(per).max(1) as u32;
        for b in 0..slot_blocks {
            buf.fill(0);
            for s in 0..per {
                if let Some(&(t, k, v)) = slots.get(b as usize * per + s) {
                    let off = s * MT_SLOT;
                    buf[off..off + 8].copy_from_slice(&t.to_le_bytes());
                    buf[off + 8..off + 16].copy_from_slice(&k.to_le_bytes());
                    buf[off + 16..off + 24].copy_from_slice(&v.to_le_bytes());
                }
            }
            self.disk.write(self.file, start + 1 + b, BlockKind::Inner, &buf)?;
        }
        self.nodes += 1;
        Ok(start)
    }

    /// Floor search within the node at `start`: the greatest boundary
    /// `<= key` in this subtree, if any.
    fn find_in(&self, start: BlockId, key: Key) -> IndexResult<Option<BlockId>> {
        let header = self.read_header(start)?;
        let predicted = header.model.predict_clamped(key, header.capacity as usize) as u32;
        // Scan from the predicted slot leftwards until a usable entry is
        // found (the "walk to the next occupied slot" cost the paper notes
        // for LIPP-style nodes without separate data/inner types).
        let mut slot = predicted as i64;
        while slot >= 0 {
            let (tag, boundary, value) = self.read_slot(start, slot as u32)?;
            match tag {
                MT_NULL => {}
                MT_DATA => {
                    if boundary <= key {
                        return Ok(Some(value as u32));
                    }
                }
                MT_CHILD => {
                    if boundary <= key {
                        if let Some(found) = self.find_in(value as u32, key)? {
                            return Ok(Some(found));
                        }
                        // Every boundary in the child exceeded `key` (only
                        // possible at the predicted slot); keep looking left.
                    }
                }
                other => {
                    return Err(IndexError::Internal(format!("bad model-tree slot tag {other}")))
                }
            }
            slot -= 1;
        }
        Ok(None)
    }
}

impl InnerDirectory for ModelTreeInner {
    fn rebuild(&mut self, boundaries: &[Boundary]) -> IndexResult<()> {
        self.nodes = 0;
        self.height = 0;
        self.first_leaf = boundaries.first().map_or(0, |b| b.1);
        let bounds = if boundaries.is_empty() { &[(0, 0)][..] } else { boundaries };
        self.root = self.build_node(bounds, 0)?;
        self.built = true;
        Ok(())
    }

    fn find_leaf(&self, key: Key) -> IndexResult<BlockId> {
        if !self.built {
            return Err(IndexError::NotInitialized);
        }
        Ok(self.find_in(self.root, key)?.unwrap_or(self.first_leaf))
    }

    fn node_count(&self) -> u64 {
        self.nodes
    }

    fn height(&self) -> u32 {
        self.height
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lidx_storage::DiskConfig;

    fn boundaries(n: u64, stride: u64) -> Vec<Boundary> {
        (0..n).map(|i| (i * stride + 5, (i + 100) as u32)).collect()
    }

    fn check_floor(dir: &dyn InnerDirectory, bounds: &[Boundary]) {
        // Exact boundary keys route to their own leaf.
        for &(k, blk) in bounds.iter().step_by(13) {
            assert_eq!(dir.find_leaf(k).unwrap(), blk, "boundary {k}");
        }
        // Keys inside a leaf's range route to that leaf.
        for w in bounds.windows(2).step_by(17) {
            let probe = w[0].0 + (w[1].0 - w[0].0) / 2;
            assert_eq!(dir.find_leaf(probe).unwrap(), w[0].1, "probe {probe}");
        }
        // Keys beyond the last boundary route to the last leaf; keys before
        // the first boundary route to the first leaf.
        assert_eq!(dir.find_leaf(u64::MAX).unwrap(), bounds.last().unwrap().1);
        assert_eq!(dir.find_leaf(0).unwrap(), bounds[0].1);
    }

    #[test]
    fn pla_inner_floor_lookups() {
        let disk = Disk::in_memory(DiskConfig::with_block_size(512));
        let mut dir = PlaInner::new(disk, 8).unwrap();
        let bounds = boundaries(5_000, 37);
        dir.rebuild(&bounds).unwrap();
        assert!(dir.node_count() > 0);
        assert!(dir.height() >= 2);
        check_floor(&dir, &bounds);
    }

    #[test]
    fn model_tree_inner_floor_lookups() {
        let disk = Disk::in_memory(DiskConfig::with_block_size(512));
        let mut dir = ModelTreeInner::new(disk, 2).unwrap();
        let bounds = boundaries(5_000, 37);
        dir.rebuild(&bounds).unwrap();
        assert!(dir.node_count() >= 1);
        check_floor(&dir, &bounds);
    }

    #[test]
    fn model_tree_handles_clustered_boundaries() {
        let disk = Disk::in_memory(DiskConfig::with_block_size(512));
        let mut dir = ModelTreeInner::new(disk, 2).unwrap();
        let mut bounds: Vec<Boundary> = Vec::new();
        for c in 0..50u64 {
            for i in 0..40u64 {
                bounds.push((c * 1_000_000 + i * 3, (c * 100 + i) as u32));
            }
        }
        dir.rebuild(&bounds).unwrap();
        assert!(dir.node_count() > 1, "clustered boundaries must create child nodes");
        check_floor(&dir, &bounds);
    }

    #[test]
    fn inner_io_is_attributed_to_inner_blocks() {
        let disk = Disk::in_memory(DiskConfig::with_block_size(512));
        let mut dir = PlaInner::new(Arc::clone(&disk), 8).unwrap();
        let bounds = boundaries(2_000, 11);
        dir.rebuild(&bounds).unwrap();
        disk.stats().reset();
        dir.find_leaf(bounds[777].0 + 1).unwrap();
        assert!(disk.stats().reads_of(BlockKind::Inner) > 0);
        assert_eq!(disk.stats().reads_of(BlockKind::Leaf), 0);
    }

    #[test]
    fn directories_refuse_lookups_before_rebuild() {
        let disk = Disk::in_memory(DiskConfig::with_block_size(512));
        let pla = PlaInner::new(Arc::clone(&disk), 8).unwrap();
        assert!(pla.find_leaf(1).is_err());
        let mt = ModelTreeInner::new(disk, 2).unwrap();
        assert!(mt.find_leaf(1).is_err());
    }
}
