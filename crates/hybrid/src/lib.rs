//! Hybrid index designs: a learned inner structure over B+-tree-styled leaf
//! blocks (§6.1.2 / Table 5 of the paper, design principles P3 and P5).
//!
//! The idea the paper evaluates is to keep the *leaf level* exactly like a
//! B+-tree — dense, sorted key-payload pairs in linked blocks, which scans
//! love — and to replace only the routing structure above it with a learned
//! index over the per-leaf boundary keys (the minimum key of each leaf).
//!
//! Two learned inner structures are provided:
//!
//! * [`inner::PlaInner`] — a recursive ε-bounded piecewise-linear directory,
//!   the structure a FITing-tree or PGM would use for its inner part. The
//!   harness reports it for both the "FITing-tree" and "PGM" hybrid columns
//!   of Table 5 (they behave identically at this granularity).
//! * [`inner::ModelTreeInner`] — an FMCD-fitted model tree in the spirit of
//!   LIPP/ALEX inner nodes: each node maps a boundary key to a slot holding
//!   either the leaf address or a child node. Reported for the "ALEX" and
//!   "LIPP" hybrid columns.
//!
//! The plain B+-tree column of Table 5 is simply [`lidx_btree::BTreeIndex`].
//!
//! All inner-structure I/O is attributed to [`lidx_storage::BlockKind::Inner`]
//! and leaf I/O to `Leaf`, so the fetched-block breakdown matches the paper's
//! accounting.

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod index;
pub mod inner;
pub mod leaf;

pub use index::{HybridConfig, HybridIndex, HybridInnerKind};
