//! The hybrid index: learned inner directory + B+-tree-styled leaves.

use std::sync::Arc;

use lidx_core::{
    index::validate_bulk_load, DiskIndex, Entry, IndexError, IndexKind, IndexRead, IndexResult,
    IndexStats, InsertBreakdown, InsertStep, Key, Value,
};
use lidx_storage::{BlockId, Disk};

use crate::inner::{InnerDirectory, ModelTreeInner, PlaInner};
use crate::leaf::{LeafInsert, LeafLevel};

/// Which learned structure routes queries to the leaves.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum HybridInnerKind {
    /// ε-bounded piecewise-linear directory (FITing-tree / PGM style).
    Pla,
    /// FMCD model tree (ALEX / LIPP style).
    ModelTree,
}

impl HybridInnerKind {
    /// Short name used in experiment output.
    pub fn name(self) -> &'static str {
        match self {
            HybridInnerKind::Pla => "pla",
            HybridInnerKind::ModelTree => "model-tree",
        }
    }
}

/// Configuration of a hybrid index.
#[derive(Debug, Clone, Copy)]
pub struct HybridConfig {
    /// The inner directory flavour.
    pub inner: HybridInnerKind,
    /// Error bound of the PLA directory (ignored by the model tree).
    pub epsilon: usize,
    /// Slot over-allocation factor of the model tree (ignored by PLA).
    pub gap_factor: u32,
    /// Leaf fill factor at bulk load.
    pub leaf_fill: f64,
}

impl Default for HybridConfig {
    fn default() -> Self {
        HybridConfig { inner: HybridInnerKind::Pla, epsilon: 64, gap_factor: 2, leaf_fill: 0.8 }
    }
}

/// A hybrid index (§6.1.2): learned inner structure, B+-tree-styled leaves.
pub struct HybridIndex {
    disk: Arc<Disk>,
    config: HybridConfig,
    leaves: LeafLevel,
    inner: Box<dyn InnerDirectory + Send + Sync>,
    /// In-memory copy of the `(boundary, leaf block)` pairs, used only to
    /// rebuild the inner directory after leaf splits (meta-style state; all
    /// routing I/O still goes through the on-disk directory).
    boundaries: Vec<(Key, BlockId)>,
    key_count: u64,
    smo_count: u64,
    loaded: bool,
    breakdown: InsertBreakdown,
}

impl HybridIndex {
    /// Creates an empty hybrid index.
    pub fn new(disk: Arc<Disk>, config: HybridConfig) -> IndexResult<Self> {
        let leaves = LeafLevel::new(Arc::clone(&disk), config.leaf_fill)?;
        let inner: Box<dyn InnerDirectory + Send + Sync> = match config.inner {
            HybridInnerKind::Pla => Box::new(PlaInner::new(Arc::clone(&disk), config.epsilon)?),
            HybridInnerKind::ModelTree => {
                Box::new(ModelTreeInner::new(Arc::clone(&disk), config.gap_factor)?)
            }
        };
        Ok(HybridIndex {
            disk,
            config,
            leaves,
            inner,
            boundaries: Vec::new(),
            key_count: 0,
            smo_count: 0,
            loaded: false,
            breakdown: InsertBreakdown::new(),
        })
    }

    /// The inner directory flavour.
    pub fn inner_kind(&self) -> HybridInnerKind {
        self.config.inner
    }

    /// Number of leaf blocks.
    pub fn leaf_count(&self) -> u64 {
        self.leaves.leaf_count()
    }
}

impl IndexRead for HybridIndex {
    fn kind(&self) -> IndexKind {
        IndexKind::Hybrid
    }

    fn name(&self) -> String {
        format!("hybrid-{}", self.config.inner.name())
    }

    fn disk(&self) -> &Arc<Disk> {
        &self.disk
    }

    fn lookup(&self, key: Key) -> IndexResult<Option<Value>> {
        if !self.loaded {
            return Err(IndexError::NotInitialized);
        }
        let leaf = self.inner.find_leaf(key)?;
        self.leaves.lookup_in(leaf, key)
    }

    fn scan(&self, start: Key, count: usize, out: &mut Vec<Entry>) -> IndexResult<usize> {
        out.clear();
        if !self.loaded {
            return Err(IndexError::NotInitialized);
        }
        if count == 0 {
            return Ok(0);
        }
        let leaf = self.inner.find_leaf(start)?;
        self.leaves.scan_from(leaf, start, count, out)
    }

    fn len(&self) -> u64 {
        self.key_count
    }

    fn stats(&self) -> IndexStats {
        IndexStats {
            keys: self.key_count,
            height: self.inner.height() + 1,
            inner_nodes: self.inner.node_count(),
            leaf_nodes: self.leaves.leaf_count(),
            smo_count: self.smo_count,
        }
    }
}

impl DiskIndex for HybridIndex {
    fn bulk_load(&mut self, entries: &[Entry]) -> IndexResult<()> {
        if self.loaded {
            return Err(IndexError::AlreadyLoaded);
        }
        validate_bulk_load(entries)?;
        self.boundaries = self.leaves.bulk_build(entries)?;
        self.inner.rebuild(&self.boundaries)?;
        self.key_count = entries.len() as u64;
        self.loaded = true;
        Ok(())
    }

    fn insert(&mut self, key: Key, value: Value) -> IndexResult<()> {
        if !self.loaded {
            return Err(IndexError::NotInitialized);
        }
        let before = self.disk.snapshot();
        let leaf = self.inner.find_leaf(key)?;
        let existed = self.leaves.lookup_in(leaf, key)?.is_some();
        let after_search = self.disk.snapshot();
        self.breakdown.add(InsertStep::Search, &after_search.since(&before));

        match self.leaves.insert_in(leaf, key, value)? {
            LeafInsert::Done => {
                let after_insert = self.disk.snapshot();
                self.breakdown.add(InsertStep::Insert, &after_insert.since(&after_search));
            }
            LeafInsert::Split { boundary, block } => {
                // Register the new leaf and rebuild the learned directory —
                // the heavy retraining cost that makes updatable learned
                // inners expensive (design principle P2).
                self.smo_count += 1;
                let pos = self.boundaries.partition_point(|&(b, _)| b <= boundary);
                self.boundaries.insert(pos, (boundary, block));
                self.inner.rebuild(&self.boundaries)?;
                let after_smo = self.disk.snapshot();
                self.breakdown.add(InsertStep::Smo, &after_smo.since(&after_search));
            }
        }
        if !existed {
            self.key_count += 1;
        }
        self.breakdown.finish_insert();
        Ok(())
    }

    fn insert_breakdown(&self) -> InsertBreakdown {
        self.breakdown
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lidx_storage::{BlockKind, DiskConfig};

    fn build(inner: HybridInnerKind, n: u64) -> (HybridIndex, Vec<Entry>) {
        let disk = Disk::in_memory(DiskConfig::with_block_size(512));
        let mut h = HybridIndex::new(
            disk,
            HybridConfig { inner, epsilon: 16, gap_factor: 2, leaf_fill: 0.8 },
        )
        .unwrap();
        let mut keys: Vec<u64> = (0..n).map(|i| i * 13 + (i % 29) * 7).collect();
        keys.sort_unstable();
        keys.dedup();
        let data: Vec<Entry> = keys.into_iter().map(|k| (k, k + 1)).collect();
        h.bulk_load(&data).unwrap();
        (h, data)
    }

    #[test]
    fn lookups_work_for_both_inner_kinds() {
        for inner in [HybridInnerKind::Pla, HybridInnerKind::ModelTree] {
            let (h, data) = build(inner, 20_000);
            assert_eq!(h.len(), data.len() as u64);
            for &(k, v) in data.iter().step_by(487) {
                assert_eq!(h.lookup(k).unwrap(), Some(v), "{inner:?} key {k}");
            }
            assert_eq!(h.lookup(data.last().unwrap().0 + 1).unwrap(), None);
            assert!(h.name().starts_with("hybrid-"));
        }
    }

    #[test]
    fn scans_behave_like_a_btree_leaf_chain() {
        for inner in [HybridInnerKind::Pla, HybridInnerKind::ModelTree] {
            let (h, data) = build(inner, 10_000);
            let mut out = Vec::new();
            let n = h.scan(data[3_000].0, 500, &mut out).unwrap();
            assert_eq!(n, 500);
            assert_eq!(out[0], data[3_000]);
            assert_eq!(out[499], data[3_499]);
            assert!(out.windows(2).all(|w| w[0].0 < w[1].0));
        }
    }

    #[test]
    fn scan_leaf_io_is_dense_like_a_btree() {
        // The whole point of the hybrid design: scans fetch only dense leaf
        // blocks (plus the inner descent), unlike ALEX/LIPP native scans.
        let (h, data) = build(HybridInnerKind::Pla, 20_000);
        let mut out = Vec::new();
        h.disk().stats().reset();
        h.disk().reset_access_state();
        h.scan(data[5_000].0, 100, &mut out).unwrap();
        let leaf_reads = h.disk().stats().reads_of(BlockKind::Leaf);
        // 100 entries at ~25 entries per 512-byte leaf = about 5 leaf blocks.
        assert!(leaf_reads <= 8, "scan fetched {leaf_reads} leaf blocks");
        assert_eq!(h.disk().stats().reads_of(BlockKind::Utility), 0);
    }

    #[test]
    fn scan_boundary_cases_match_oracle() {
        for inner in [HybridInnerKind::Pla, HybridInnerKind::ModelTree] {
            let (t, data) = build(inner, 1_200);
            let mut out = Vec::new();

            // count == 0 returns nothing and clears `out`.
            out.push((1, 1));
            assert_eq!(t.scan(data[0].0, 0, &mut out).unwrap(), 0);
            assert!(out.is_empty());

            // Starts above the maximum stored key return nothing.
            let max_key = data.last().unwrap().0;
            for start in [max_key + 1, u64::MAX] {
                assert_eq!(t.scan(start, 10, &mut out).unwrap(), 0, "{inner:?} from {start}");
                assert!(out.is_empty());
            }

            // Scanning from every stored key covers every leaf boundary.
            for (i, &(k, _)) in data.iter().enumerate() {
                let n = t.scan(k, 5, &mut out).unwrap();
                let expected: Vec<Entry> = data[i..].iter().take(5).copied().collect();
                assert_eq!(n, expected.len(), "{inner:?} scan length from key {k}");
                assert_eq!(out, expected, "{inner:?} scan contents from key {k}");
            }
        }
    }

    #[test]
    fn inserts_split_leaves_and_keep_serving() {
        let (mut h, data) = build(HybridInnerKind::Pla, 2_000);
        for i in 0..1_500u64 {
            h.insert(i * 17 + 3, i).unwrap();
        }
        assert!(h.stats().smo_count > 0, "splits must have happened");
        for i in (0..1_500u64).step_by(97) {
            let expect = data
                .iter()
                .find(|&&(k, _)| k == i * 17 + 3)
                .map(|_| i) // overwritten bulk key
                .unwrap_or(i);
            assert_eq!(h.lookup(i * 17 + 3).unwrap(), Some(expect));
        }
        let mut out = Vec::new();
        let n = h.scan(0, usize::MAX / 2, &mut out).unwrap();
        assert_eq!(n as u64, h.len());
        assert!(out.windows(2).all(|w| w[0].0 < w[1].0));
    }

    #[test]
    fn error_paths() {
        let disk = Disk::in_memory(DiskConfig::with_block_size(512));
        let mut h = HybridIndex::new(disk, HybridConfig::default()).unwrap();
        assert!(matches!(h.lookup(1), Err(IndexError::NotInitialized)));
        h.bulk_load(&[(1, 2), (5, 6)]).unwrap();
        assert!(matches!(h.bulk_load(&[(1, 2)]), Err(IndexError::AlreadyLoaded)));
        assert_eq!(h.lookup(5).unwrap(), Some(6));
        assert_eq!(h.lookup(3).unwrap(), None);
    }
}
