//! The hybrid index: learned inner directory + B+-tree-styled leaves.

use std::sync::Arc;

use lidx_core::{
    index::validate_bulk_load, Entry, IndexError, IndexKind, IndexRead, IndexResult, IndexStats,
    IndexWrite, InsertBreakdown, InsertStep, Key, MetaReader, MetaWriter, Value,
};
use lidx_storage::{BlockId, Disk, OpClass};

use crate::inner::{InnerDirectory, ModelTreeInner, PlaInner};
use crate::leaf::{LeafInsert, LeafLevel};

/// Which learned structure routes queries to the leaves.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum HybridInnerKind {
    /// ε-bounded piecewise-linear directory (FITing-tree / PGM style).
    Pla,
    /// FMCD model tree (ALEX / LIPP style).
    ModelTree,
}

impl HybridInnerKind {
    /// Short name used in experiment output.
    pub fn name(self) -> &'static str {
        match self {
            HybridInnerKind::Pla => "pla",
            HybridInnerKind::ModelTree => "model-tree",
        }
    }
}

/// Configuration of a hybrid index.
#[derive(Debug, Clone, Copy)]
pub struct HybridConfig {
    /// The inner directory flavour.
    pub inner: HybridInnerKind,
    /// Error bound of the PLA directory (ignored by the model tree).
    pub epsilon: usize,
    /// Slot over-allocation factor of the model tree (ignored by PLA).
    pub gap_factor: u32,
    /// Leaf fill factor at bulk load.
    pub leaf_fill: f64,
}

impl Default for HybridConfig {
    fn default() -> Self {
        HybridConfig { inner: HybridInnerKind::Pla, epsilon: 64, gap_factor: 2, leaf_fill: 0.8 }
    }
}

/// A hybrid index (§6.1.2): learned inner structure, B+-tree-styled leaves.
pub struct HybridIndex {
    disk: Arc<Disk>,
    config: HybridConfig,
    leaves: LeafLevel,
    inner: Box<dyn InnerDirectory + Send + Sync>,
    /// In-memory copy of the `(boundary, leaf block)` pairs, used only to
    /// rebuild the inner directory after leaf splits (meta-style state; all
    /// routing I/O still goes through the on-disk directory).
    boundaries: Vec<(Key, BlockId)>,
    key_count: u64,
    smo_count: u64,
    loaded: bool,
    breakdown: InsertBreakdown,
}

impl HybridIndex {
    /// Creates an empty hybrid index.
    pub fn new(disk: Arc<Disk>, config: HybridConfig) -> IndexResult<Self> {
        let leaves = LeafLevel::new(Arc::clone(&disk), config.leaf_fill)?;
        let inner: Box<dyn InnerDirectory + Send + Sync> = match config.inner {
            HybridInnerKind::Pla => Box::new(PlaInner::new(Arc::clone(&disk), config.epsilon)?),
            HybridInnerKind::ModelTree => {
                Box::new(ModelTreeInner::new(Arc::clone(&disk), config.gap_factor)?)
            }
        };
        Ok(HybridIndex {
            disk,
            config,
            leaves,
            inner,
            boundaries: Vec::new(),
            key_count: 0,
            smo_count: 0,
            loaded: false,
            breakdown: InsertBreakdown::new(),
        })
    }

    /// Reopens a hybrid index from [`IndexWrite::save_meta`] bytes against a
    /// disk that already holds its leaf blocks. `config` must match the one
    /// the index was created with (including the inner flavour). The learned
    /// inner directory is rebuilt from the persisted boundary table — the
    /// same refresh path leaf splits take — so it lands in fresh blocks.
    pub fn load(disk: Arc<Disk>, config: HybridConfig, meta: &[u8]) -> IndexResult<Self> {
        let mut r = MetaReader::new(meta);
        let leaf_file = r.u32()?;
        let leaf_count = r.u64()?;
        let loaded = r.u32()? != 0;
        let key_count = r.u64()?;
        let smo_count = r.u64()?;
        let boundary_count = r.u32()? as usize;
        let mut boundaries = Vec::with_capacity(boundary_count.min(1 << 20));
        for _ in 0..boundary_count {
            boundaries.push((r.u64()?, r.u32()?));
        }
        let leaves =
            LeafLevel::from_parts(Arc::clone(&disk), leaf_file, config.leaf_fill, leaf_count);
        let mut inner: Box<dyn InnerDirectory + Send + Sync> = match config.inner {
            HybridInnerKind::Pla => Box::new(PlaInner::new(Arc::clone(&disk), config.epsilon)?),
            HybridInnerKind::ModelTree => {
                Box::new(ModelTreeInner::new(Arc::clone(&disk), config.gap_factor)?)
            }
        };
        if !boundaries.is_empty() {
            inner.rebuild(&boundaries)?;
        }
        Ok(HybridIndex {
            disk,
            config,
            leaves,
            inner,
            boundaries,
            key_count,
            smo_count,
            loaded,
            breakdown: InsertBreakdown::new(),
        })
    }

    /// The inner directory flavour.
    pub fn inner_kind(&self) -> HybridInnerKind {
        self.config.inner
    }

    /// The outstanding-I/O variant of [`lookup_batch`](IndexRead::lookup_batch)
    /// used when the disk's queue depth exceeds 1: sorted probes are grouped
    /// by covering leaf through the in-memory boundary table (leaves cover
    /// contiguous disjoint ranges, so groups are runs), one learned-directory
    /// descent is still charged per group — the routing I/O the sequential
    /// batch pays per run — and then every group's leaf block is fetched as
    /// one submission wave instead of one blocking read per run. Answers are
    /// identical to the synchronous batch.
    fn lookup_batch_queued(
        &self,
        keys: &[Key],
        order: &[u32],
        out: &mut [Option<Value>],
    ) -> IndexResult<()> {
        let mut groups: Vec<(BlockId, Vec<u32>)> = Vec::new();
        let mut current: Option<usize> = None;
        for &i in order {
            let key = keys[i as usize];
            let idx = self.boundaries.partition_point(|&(b, _)| b <= key).saturating_sub(1);
            match (current, groups.last_mut()) {
                (Some(c), Some((_, idxs))) if c == idx => idxs.push(i),
                _ => {
                    let block = self.inner.find_leaf(key)?;
                    groups.push((block, vec![i]));
                    current = Some(idx);
                }
            }
        }
        let blocks: Vec<BlockId> = groups.iter().map(|&(b, _)| b).collect();
        let leaves = self.leaves.leaf_nodes_queued(&blocks)?;
        for ((_, idxs), leaf) in groups.iter().zip(&leaves) {
            for &i in idxs {
                out[i as usize] = leaf.lookup(keys[i as usize]);
            }
        }
        Ok(())
    }

    /// Number of leaf blocks.
    pub fn leaf_count(&self) -> u64 {
        self.leaves.leaf_count()
    }
}

impl IndexRead for HybridIndex {
    fn kind(&self) -> IndexKind {
        IndexKind::Hybrid
    }

    fn name(&self) -> String {
        format!("hybrid-{}", self.config.inner.name())
    }

    fn disk(&self) -> &Arc<Disk> {
        &self.disk
    }

    fn lookup(&self, key: Key) -> IndexResult<Option<Value>> {
        if !self.loaded {
            return Err(IndexError::NotInitialized);
        }
        let leaf = self.inner.find_leaf(key)?;
        self.leaves.lookup_in(leaf, key)
    }

    /// Batched lookups sort the probe keys and route once per *run* of keys
    /// landing in the same leaf: the learned-directory descent and the leaf
    /// block fetch/decode are paid once per run instead of once per key —
    /// the same sorted-probe sharing as the B+-tree, with the inner
    /// structure's floor lookup standing in for the root-to-leaf walk.
    fn lookup_batch(&self, keys: &[Key], out: &mut Vec<Option<Value>>) -> IndexResult<()> {
        out.clear();
        if keys.is_empty() {
            return Ok(());
        }
        if !self.loaded {
            return Err(IndexError::NotInitialized);
        }
        out.resize(keys.len(), None);
        let mut order: Vec<u32> = (0..keys.len() as u32).collect();
        order.sort_unstable_by_key(|&i| keys[i as usize]);
        if self.disk.queue_depth() > 1 {
            return self.lookup_batch_queued(keys, &order, out);
        }
        let mut current: Option<lidx_btree::LeafNode> = None;
        for &i in &order {
            let key = keys[i as usize];
            // Leaves cover contiguous, disjoint boundary ranges, so a sorted
            // probe key still belongs to the pinned leaf as long as it does
            // not exceed the leaf's last stored key; keys in the gap between
            // two leaves re-route, which proves their absence exactly as a
            // sequential lookup would.
            let in_current = current
                .as_ref()
                .is_some_and(|leaf| leaf.entries.last().is_some_and(|&(last, _)| key <= last));
            if !in_current {
                let block = self.inner.find_leaf(key)?;
                current = Some(self.leaves.leaf_node(block)?);
            }
            out[i as usize] = current.as_ref().expect("leaf pinned").lookup(key);
        }
        Ok(())
    }

    fn scan(&self, start: Key, count: usize, out: &mut Vec<Entry>) -> IndexResult<usize> {
        out.clear();
        if !self.loaded {
            return Err(IndexError::NotInitialized);
        }
        if count == 0 {
            return Ok(0);
        }
        let leaf = self.inner.find_leaf(start)?;
        self.leaves.scan_from(leaf, start, count, out)
    }

    fn len(&self) -> u64 {
        self.key_count
    }

    fn stats(&self) -> IndexStats {
        IndexStats {
            keys: self.key_count,
            height: self.inner.height() + 1,
            inner_nodes: self.inner.node_count(),
            leaf_nodes: self.leaves.leaf_count(),
            smo_count: self.smo_count,
        }
    }
}

impl IndexWrite for HybridIndex {
    fn bulk_load(&mut self, entries: &[Entry]) -> IndexResult<()> {
        if self.loaded {
            return Err(IndexError::AlreadyLoaded);
        }
        validate_bulk_load(entries)?;
        self.boundaries = self.leaves.bulk_build(entries)?;
        self.inner.rebuild(&self.boundaries)?;
        self.key_count = entries.len() as u64;
        self.loaded = true;
        Ok(())
    }

    fn insert(&mut self, key: Key, value: Value) -> IndexResult<()> {
        if !self.loaded {
            return Err(IndexError::NotInitialized);
        }
        let before = self.disk.snapshot();
        let leaf = self.inner.find_leaf(key)?;
        let existed = self.leaves.lookup_in(leaf, key)?.is_some();
        let after_search = self.disk.snapshot();
        self.breakdown.add(InsertStep::Search, &after_search.since(&before));

        match self.leaves.insert_in(leaf, key, value)? {
            LeafInsert::Done => {
                let after_insert = self.disk.snapshot();
                self.breakdown.add(InsertStep::Insert, &after_insert.since(&after_search));
            }
            LeafInsert::Split { boundary, block } => {
                // Register the new leaf and rebuild the learned directory —
                // the heavy retraining cost that makes updatable learned
                // inners expensive (design principle P2).
                self.smo_count += 1;
                let telemetry = Arc::clone(&self.disk);
                let _span = telemetry.telemetry().span(OpClass::Smo);
                telemetry.telemetry().add(OpClass::Smo, 1);
                let pos = self.boundaries.partition_point(|&(b, _)| b <= boundary);
                self.boundaries.insert(pos, (boundary, block));
                self.inner.rebuild(&self.boundaries)?;
                let after_smo = self.disk.snapshot();
                self.breakdown.add(InsertStep::Smo, &after_smo.since(&after_search));
            }
        }
        if !existed {
            self.key_count += 1;
        }
        self.breakdown.finish_insert();
        Ok(())
    }

    /// Batched inserts append each sorted *run* of co-located entries to its
    /// dense leaf with one read-modify-write, and — the big win — defer the
    /// learned-directory retrain to a single [`InnerDirectory::rebuild`] at
    /// the end of the batch instead of one per split (the P2 cost the
    /// sequential path pays). While splits are pending, routing switches to
    /// the in-memory boundary table, which is exactly the state the deferred
    /// rebuild will be trained on.
    ///
    /// [`InnerDirectory::rebuild`]: crate::inner::InnerDirectory::rebuild
    fn insert_batch(&mut self, entries: &[Entry]) -> IndexResult<()> {
        if !self.loaded {
            return Err(IndexError::NotInitialized);
        }
        if entries.is_empty() {
            return Ok(());
        }
        // Stable sort: duplicate keys keep slice order, later entries win.
        let mut order: Vec<u32> = (0..entries.len() as u32).collect();
        order.sort_by_key(|&i| entries[i as usize].0);
        let mut directory_stale = false;
        let mut next = 0usize;
        while next < order.len() {
            let key = entries[order[next] as usize].0;
            let before = self.disk.snapshot();
            // Route through the learned directory while it is current; once
            // a split leaves it stale, the in-memory boundary table (always
            // current) takes over until the end-of-batch rebuild.
            let upper_pos = self.boundaries.partition_point(|&(b, _)| b <= key);
            let leaf = if directory_stale {
                self.boundaries[upper_pos.saturating_sub(1)].1
            } else {
                self.inner.find_leaf(key)?
            };
            let after_search = self.disk.snapshot();
            self.breakdown.add(InsertStep::Search, &after_search.since(&before));

            // The leaf covers keys up to (but excluding) the next boundary.
            let run_end = match self.boundaries.get(upper_pos) {
                Some(&(upper, _)) => {
                    next + order[next..].partition_point(|&i| entries[i as usize].0 < upper)
                }
                None => order.len(),
            };
            let run: Vec<Entry> =
                order[next..run_end].iter().map(|&i| entries[i as usize]).collect();
            let (consumed, added, split) = self.leaves.insert_run_in(leaf, &run)?;
            self.key_count += added;
            for _ in 0..consumed {
                self.breakdown.finish_insert();
            }
            let after_apply = self.disk.snapshot();
            let step = if split.is_some() { InsertStep::Smo } else { InsertStep::Insert };
            self.breakdown.add(step, &after_apply.since(&after_search));
            if let Some(LeafInsert::Split { boundary, block }) = split {
                self.smo_count += 1;
                self.disk.telemetry().add(OpClass::Smo, 1);
                let pos = self.boundaries.partition_point(|&(b, _)| b <= boundary);
                self.boundaries.insert(pos, (boundary, block));
                directory_stale = true;
            }
            next += consumed;
        }
        if directory_stale {
            // The deferred directory retrain is the batch path's real SMO
            // pause; the per-split bookkeeping above is bookkeeping only.
            let telemetry = Arc::clone(&self.disk);
            let _span = telemetry.telemetry().span(OpClass::Smo);
            let before_rebuild = self.disk.snapshot();
            self.inner.rebuild(&self.boundaries)?;
            let after_rebuild = self.disk.snapshot();
            self.breakdown.add(InsertStep::Smo, &after_rebuild.since(&before_rebuild));
        }
        Ok(())
    }

    fn insert_breakdown(&self) -> InsertBreakdown {
        self.breakdown
    }

    fn save_meta(&mut self) -> IndexResult<Vec<u8>> {
        // Leaf blocks are written eagerly; the inner directory is derivable
        // from the boundary table (it is rebuilt on load), so the meta is
        // the leaf-level parts plus the boundaries.
        let mut w = MetaWriter::new();
        w.u32(self.leaves.file_id())
            .u64(self.leaves.leaf_count())
            .u32(self.loaded as u32)
            .u64(self.key_count)
            .u64(self.smo_count)
            .u32(self.boundaries.len() as u32);
        for &(key, block) in &self.boundaries {
            w.u64(key).u32(block);
        }
        Ok(w.finish())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lidx_storage::{BlockKind, DiskConfig};

    fn build(inner: HybridInnerKind, n: u64) -> (HybridIndex, Vec<Entry>) {
        let disk = Disk::in_memory(DiskConfig::with_block_size(512));
        let mut h = HybridIndex::new(
            disk,
            HybridConfig { inner, epsilon: 16, gap_factor: 2, leaf_fill: 0.8 },
        )
        .unwrap();
        let mut keys: Vec<u64> = (0..n).map(|i| i * 13 + (i % 29) * 7).collect();
        keys.sort_unstable();
        keys.dedup();
        let data: Vec<Entry> = keys.into_iter().map(|k| (k, k + 1)).collect();
        h.bulk_load(&data).unwrap();
        (h, data)
    }

    #[test]
    fn lookups_work_for_both_inner_kinds() {
        for inner in [HybridInnerKind::Pla, HybridInnerKind::ModelTree] {
            let (h, data) = build(inner, 20_000);
            assert_eq!(h.len(), data.len() as u64);
            for &(k, v) in data.iter().step_by(487) {
                assert_eq!(h.lookup(k).unwrap(), Some(v), "{inner:?} key {k}");
            }
            assert_eq!(h.lookup(data.last().unwrap().0 + 1).unwrap(), None);
            assert!(h.name().starts_with("hybrid-"));
        }
    }

    #[test]
    fn scans_behave_like_a_btree_leaf_chain() {
        for inner in [HybridInnerKind::Pla, HybridInnerKind::ModelTree] {
            let (h, data) = build(inner, 10_000);
            let mut out = Vec::new();
            let n = h.scan(data[3_000].0, 500, &mut out).unwrap();
            assert_eq!(n, 500);
            assert_eq!(out[0], data[3_000]);
            assert_eq!(out[499], data[3_499]);
            assert!(out.windows(2).all(|w| w[0].0 < w[1].0));
        }
    }

    #[test]
    fn scan_leaf_io_is_dense_like_a_btree() {
        // The whole point of the hybrid design: scans fetch only dense leaf
        // blocks (plus the inner descent), unlike ALEX/LIPP native scans.
        let (h, data) = build(HybridInnerKind::Pla, 20_000);
        let mut out = Vec::new();
        h.disk().stats().reset();
        h.disk().reset_access_state();
        h.scan(data[5_000].0, 100, &mut out).unwrap();
        let leaf_reads = h.disk().stats().reads_of(BlockKind::Leaf);
        // 100 entries at ~25 entries per 512-byte leaf = about 5 leaf blocks.
        assert!(leaf_reads <= 8, "scan fetched {leaf_reads} leaf blocks");
        assert_eq!(h.disk().stats().reads_of(BlockKind::Utility), 0);
    }

    #[test]
    fn scan_boundary_cases_match_oracle() {
        for inner in [HybridInnerKind::Pla, HybridInnerKind::ModelTree] {
            let (t, data) = build(inner, 1_200);
            let mut out = Vec::new();

            // count == 0 returns nothing and clears `out`.
            out.push((1, 1));
            assert_eq!(t.scan(data[0].0, 0, &mut out).unwrap(), 0);
            assert!(out.is_empty());

            // Starts above the maximum stored key return nothing.
            let max_key = data.last().unwrap().0;
            for start in [max_key + 1, u64::MAX] {
                assert_eq!(t.scan(start, 10, &mut out).unwrap(), 0, "{inner:?} from {start}");
                assert!(out.is_empty());
            }

            // Scanning from every stored key covers every leaf boundary.
            for (i, &(k, _)) in data.iter().enumerate() {
                let n = t.scan(k, 5, &mut out).unwrap();
                let expected: Vec<Entry> = data[i..].iter().take(5).copied().collect();
                assert_eq!(n, expected.len(), "{inner:?} scan length from key {k}");
                assert_eq!(out, expected, "{inner:?} scan contents from key {k}");
            }
        }
    }

    #[test]
    fn inserts_split_leaves_and_keep_serving() {
        let (mut h, data) = build(HybridInnerKind::Pla, 2_000);
        for i in 0..1_500u64 {
            h.insert(i * 17 + 3, i).unwrap();
        }
        assert!(h.stats().smo_count > 0, "splits must have happened");
        for i in (0..1_500u64).step_by(97) {
            let expect = data
                .iter()
                .find(|&&(k, _)| k == i * 17 + 3)
                .map(|_| i) // overwritten bulk key
                .unwrap_or(i);
            assert_eq!(h.lookup(i * 17 + 3).unwrap(), Some(expect));
        }
        let mut out = Vec::new();
        let n = h.scan(0, usize::MAX / 2, &mut out).unwrap();
        assert_eq!(n as u64, h.len());
        assert!(out.windows(2).all(|w| w[0].0 < w[1].0));
    }

    #[test]
    fn lookup_batch_matches_sequential_and_amortises_descents() {
        for inner in [HybridInnerKind::Pla, HybridInnerKind::ModelTree] {
            let (h, data) = build(inner, 10_000);
            let probes: Vec<u64> = data
                .iter()
                .step_by(41)
                .map(|&(k, _)| k)
                .chain([0, u64::MAX, data[7].0, data[7].0, data[7].0 + 1])
                .rev()
                .collect();
            let mut batched = Vec::new();
            h.lookup_batch(&probes, &mut batched).unwrap();
            for (i, &p) in probes.iter().enumerate() {
                assert_eq!(batched[i], h.lookup(p).unwrap(), "{inner:?} probe {p}");
            }

            // Co-located keys share one directory descent and one leaf read.
            let run: Vec<u64> = data[..128].iter().map(|&(k, _)| k).collect();
            h.disk().stats().reset();
            h.disk().reset_access_state();
            h.lookup_batch(&run, &mut batched).unwrap();
            let batch_reads = h.disk().stats().reads();
            h.disk().stats().reset();
            h.disk().reset_access_state();
            for &k in &run {
                h.lookup(k).unwrap();
            }
            let seq_reads = h.disk().stats().reads();
            assert!(
                batch_reads * 2 < seq_reads,
                "{inner:?} batched reads ({batch_reads}) must amortise sequential ({seq_reads})"
            );
        }
    }

    #[test]
    fn queued_lookup_batch_matches_depth_one_answers_and_overlaps_io() {
        use lidx_storage::DeviceModel;
        let mut keys: Vec<u64> = (0..10_000u64).map(|i| i * 13 + (i % 29) * 7).collect();
        keys.sort_unstable();
        keys.dedup();
        let data: Vec<Entry> = keys.into_iter().map(|k| (k, k + 1)).collect();
        let mut probes: Vec<Key> = data.iter().step_by(11).map(|&(k, _)| k).collect();
        probes.extend([0, u64::MAX, data[7].0 + 1]);
        probes.reverse();
        let config =
            || DiskConfig::with_block_size(512).device(DeviceModel::ssd()).buffer_blocks(64);

        for inner in [HybridInnerKind::Pla, HybridInnerKind::ModelTree] {
            let hybrid_config = HybridConfig { inner, epsilon: 16, gap_factor: 2, leaf_fill: 0.8 };
            let mut sync_h = HybridIndex::new(Disk::in_memory(config()), hybrid_config).unwrap();
            sync_h.bulk_load(&data).unwrap();
            let mut expected = Vec::new();
            sync_h.disk().stats().reset();
            sync_h.lookup_batch(&probes, &mut expected).unwrap();
            let sync_ns = sync_h.disk().stats().device_ns();

            let mut queued_h =
                HybridIndex::new(Disk::in_memory(config().queue_depth(8)), hybrid_config).unwrap();
            queued_h.bulk_load(&data).unwrap();
            let mut got = Vec::new();
            queued_h.disk().stats().reset();
            queued_h.lookup_batch(&probes, &mut got).unwrap();
            let queued_ns = queued_h.disk().stats().device_ns();

            assert_eq!(got, expected, "{inner:?}: queue depth must never change the answers");
            assert!(
                queued_ns * 2 < sync_ns,
                "{inner:?}: depth-8 leaf waves ({queued_ns} ns) must overlap \
                 the depth-1 cost ({sync_ns} ns)"
            );
            assert!(queued_h.disk().stats().overlap_saved_ns() > 0);
            assert!(queued_h.disk().stats().max_inflight() > 1);
        }
    }

    #[test]
    fn insert_batch_matches_sequential_with_one_deferred_rebuild() {
        for inner in [HybridInnerKind::Pla, HybridInnerKind::ModelTree] {
            let (mut batched, data) = build(inner, 2_000);
            let (mut sequential, _) = build(inner, 2_000);
            // After the reverse, (4, 1) is the later occurrence and must win.
            let mut batch: Vec<Entry> = (0..800u64).map(|i| (i * 23 + 3, i)).collect();
            batch.extend([(data[9].0, 777), (4, 1), (4, 2)]);
            batch.reverse();

            batched.insert_batch(&batch).unwrap();
            for &(k, v) in &batch {
                sequential.insert(k, v).unwrap();
            }
            assert_eq!(batched.len(), sequential.len(), "{inner:?}");
            assert_eq!(batched.lookup(4).unwrap(), Some(1), "{inner:?} later duplicate wins");
            assert_eq!(batched.lookup(data[9].0).unwrap(), Some(777), "{inner:?}");
            let mut b_scan = Vec::new();
            let mut s_scan = Vec::new();
            batched.scan(0, usize::MAX / 2, &mut b_scan).unwrap();
            sequential.scan(0, usize::MAX / 2, &mut s_scan).unwrap();
            assert_eq!(b_scan, s_scan, "{inner:?} content must be identical");
            assert!(batched.stats().smo_count > 0, "{inner:?} dense batch must split leaves");

            // The batch retrains the directory once; the sequential loop
            // retrains per split, so its inner writes must dwarf the batch's.
            let splitting: Vec<Entry> = (0..400u64).map(|i| (500_000 + i * 2, i)).collect();
            batched.disk().stats().reset();
            batched.insert_batch(&splitting).unwrap();
            let batch_writes = batched.disk().stats().writes();
            sequential.disk().stats().reset();
            for &(k, v) in &splitting {
                sequential.insert(k, v).unwrap();
            }
            let seq_writes = sequential.disk().stats().writes();
            assert!(
                batch_writes * 2 < seq_writes,
                "{inner:?} deferred rebuild ({batch_writes} writes) must amortise \
                 per-split retraining ({seq_writes} writes)"
            );
        }
    }

    #[test]
    fn error_paths() {
        let disk = Disk::in_memory(DiskConfig::with_block_size(512));
        let mut h = HybridIndex::new(disk, HybridConfig::default()).unwrap();
        assert!(matches!(h.lookup(1), Err(IndexError::NotInitialized)));
        h.bulk_load(&[(1, 2), (5, 6)]).unwrap();
        assert!(matches!(h.bulk_load(&[(1, 2)]), Err(IndexError::AlreadyLoaded)));
        assert_eq!(h.lookup(5).unwrap(), Some(6));
        assert_eq!(h.lookup(3).unwrap(), None);
    }
}
