//! The B+-tree-styled leaf level shared by every hybrid design.
//!
//! Leaves reuse the [`lidx_btree::LeafNode`] block format: dense sorted
//! key-payload pairs plus sibling links, one block per leaf. The leaf level
//! is built once at bulk-load time; inserts go to the covering leaf and split
//! it when full (the caller is told about splits so it can refresh the inner
//! structure).

use std::sync::Arc;

use lidx_btree::{LeafNode, NodeCapacity};
use lidx_core::{Entry, IndexResult, Key, Value};
use lidx_storage::{AccessClass, BlockId, BlockKind, Disk, INVALID_BLOCK};

/// The leaf level: a file of linked, dense leaf blocks.
pub struct LeafLevel {
    disk: Arc<Disk>,
    file: u32,
    capacity: usize,
    fill: f64,
    leaf_count: u64,
}

/// Result of inserting into the leaf level.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LeafInsert {
    /// The entry was stored without structural change.
    Done,
    /// The entry was stored but the leaf split; the new right leaf starts at
    /// the given block and covers keys from the given boundary upwards.
    Split {
        /// Boundary (first key) of the new right leaf.
        boundary: Key,
        /// Block id of the new right leaf.
        block: BlockId,
    },
}

impl LeafLevel {
    /// Creates an empty leaf level in its own file.
    pub fn new(disk: Arc<Disk>, fill: f64) -> IndexResult<Self> {
        assert!(fill > 0.1 && fill <= 1.0);
        let capacity = NodeCapacity::for_block_size(disk.block_size()).leaf_entries;
        let file = disk.create_file()?;
        Ok(LeafLevel { disk, file, capacity, fill, leaf_count: 0 })
    }

    /// Reconstructs a leaf level from persisted parts. The leaf blocks must
    /// already exist on `disk`; no I/O is performed.
    pub fn from_parts(disk: Arc<Disk>, file: u32, fill: f64, leaf_count: u64) -> Self {
        let capacity = NodeCapacity::for_block_size(disk.block_size()).leaf_entries;
        LeafLevel { disk, file, capacity, fill, leaf_count }
    }

    /// The file holding the leaves.
    pub fn file_id(&self) -> u32 {
        self.file
    }

    /// Number of leaf blocks.
    pub fn leaf_count(&self) -> u64 {
        self.leaf_count
    }

    fn read(&self, block: BlockId) -> IndexResult<LeafNode> {
        let buf = self.disk.read_ref(self.file, block, BlockKind::Leaf)?;
        LeafNode::decode(&buf)
    }

    /// [`Self::read`] tagged as part of a scan stream (the leaf-chain walk
    /// of [`LeafLevel::scan_from`]).
    fn read_scan(&self, block: BlockId) -> IndexResult<LeafNode> {
        let buf = self.disk.read_ref_scan(self.file, block, BlockKind::Leaf)?;
        LeafNode::decode(&buf)
    }

    fn write(&self, block: BlockId, leaf: &LeafNode) -> IndexResult<()> {
        let buf = leaf.encode(self.disk.block_size())?;
        self.disk.write(self.file, block, BlockKind::Leaf, &buf)?;
        Ok(())
    }

    /// Bulk-builds the leaf level, returning `(boundary key, block)` pairs in
    /// key order — the input the inner structures index.
    pub fn bulk_build(&mut self, entries: &[Entry]) -> IndexResult<Vec<(Key, BlockId)>> {
        let per_leaf = ((self.capacity as f64 * self.fill) as usize).clamp(1, self.capacity);
        let leaves = entries.len().div_ceil(per_leaf).max(1);
        let first = self.disk.allocate(self.file, leaves as u32)?;
        let mut boundaries = Vec::with_capacity(leaves);
        if entries.is_empty() {
            self.write(first, &LeafNode::default())?;
            boundaries.push((0, first));
        } else {
            for (i, chunk) in entries.chunks(per_leaf).enumerate() {
                let block = first + i as u32;
                let leaf = LeafNode {
                    entries: chunk.to_vec(),
                    next: if i + 1 < leaves { block + 1 } else { INVALID_BLOCK },
                    prev: if i > 0 { block - 1 } else { INVALID_BLOCK },
                };
                self.write(block, &leaf)?;
                boundaries.push((chunk[0].0, block));
            }
        }
        self.leaf_count = boundaries.len() as u64;
        Ok(boundaries)
    }

    /// Looks up `key` in the leaf at `block` (one block read).
    pub fn lookup_in(&self, block: BlockId, key: Key) -> IndexResult<Option<Value>> {
        Ok(self.read(block)?.lookup(key))
    }

    /// Decodes the leaf at `block` (one block read). Used by the batched
    /// read path, which pins one decoded leaf per probe run.
    pub(crate) fn leaf_node(&self, block: BlockId) -> IndexResult<LeafNode> {
        self.read(block)
    }

    /// Decodes a batch of leaves with the blocks fetched as one
    /// outstanding-read submission wave — the queue-depth > 1 counterpart of
    /// calling [`LeafLevel::leaf_node`] once per block. Results are returned
    /// in input order.
    pub(crate) fn leaf_nodes_queued(&self, blocks: &[BlockId]) -> IndexResult<Vec<LeafNode>> {
        let mut q = self.disk.read_queue();
        for &b in blocks {
            q.submit(self.file, b, BlockKind::Leaf, AccessClass::Point)?;
        }
        q.complete()?.iter().map(|c| LeafNode::decode(&c.frame)).collect()
    }

    /// Upserts a sorted run of entries into the leaf at `block` with one
    /// read and one write, returning `(consumed, added, split)`: how many
    /// leading entries of `run` were applied, how many of those were new
    /// keys, and the split descriptor if the leaf overflowed. The caller
    /// guarantees every run entry is covered by this leaf; consumption stops
    /// one entry past capacity (that overflow forces the split), so the
    /// caller re-routes the remainder against the post-split leaf level.
    pub fn insert_run_in(
        &mut self,
        block: BlockId,
        run: &[Entry],
    ) -> IndexResult<(usize, u64, Option<LeafInsert>)> {
        let mut leaf = self.read(block)?;
        let mut consumed = 0usize;
        let mut added = 0u64;
        for &(key, value) in run {
            if leaf.entries.len() > self.capacity {
                break;
            }
            if leaf.upsert(key, value) {
                added += 1;
            }
            consumed += 1;
        }
        if leaf.entries.len() <= self.capacity {
            self.write(block, &leaf)?;
            return Ok((consumed, added, None));
        }
        let (boundary, mut right) = leaf.split();
        let right_block = self.disk.allocate(self.file, 1)?;
        right.prev = block;
        leaf.next = right_block;
        self.write(block, &leaf)?;
        self.write(right_block, &right)?;
        self.leaf_count += 1;
        Ok((consumed, added, Some(LeafInsert::Split { boundary, block: right_block })))
    }

    /// Inserts into the leaf at `block`, splitting it if necessary: the
    /// single-entry case of [`LeafLevel::insert_run_in`].
    pub fn insert_in(&mut self, block: BlockId, key: Key, value: Value) -> IndexResult<LeafInsert> {
        let (consumed, _, split) = self.insert_run_in(block, &[(key, value)])?;
        debug_assert_eq!(consumed, 1, "a single entry is always consumed");
        Ok(split.unwrap_or(LeafInsert::Done))
    }

    /// Scans forward from `start`, beginning at the leaf at `block`, until
    /// `count` entries are collected or the leaf chain ends.
    pub fn scan_from(
        &self,
        block: BlockId,
        start: Key,
        count: usize,
        out: &mut Vec<Entry>,
    ) -> IndexResult<usize> {
        let mut current = block;
        loop {
            let leaf = self.read_scan(current)?;
            let from = leaf.entries.partition_point(|&(k, _)| k < start);
            for &e in &leaf.entries[from..] {
                out.push(e);
                if out.len() == count {
                    return Ok(out.len());
                }
            }
            if leaf.next == INVALID_BLOCK {
                return Ok(out.len());
            }
            current = leaf.next;
        }
    }

    /// Whether `key` belongs to the leaf at `block` — i.e. it is not smaller
    /// than the leaf's first entry (callers route by boundary key, so this is
    /// a sanity check used in tests).
    pub fn covers(&self, block: BlockId, key: Key) -> IndexResult<bool> {
        let leaf = self.read(block)?;
        Ok(leaf.entries.first().is_none_or(|&(k, _)| k <= key))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lidx_storage::DiskConfig;

    fn level() -> LeafLevel {
        let disk = Disk::in_memory(DiskConfig::with_block_size(256));
        LeafLevel::new(disk, 0.8).unwrap()
    }

    #[test]
    fn bulk_build_produces_sorted_boundaries() {
        let mut l = level();
        let entries: Vec<Entry> = (0..1_000u64).map(|i| (i * 3, i)).collect();
        let bounds = l.bulk_build(&entries).unwrap();
        assert_eq!(bounds.len() as u64, l.leaf_count());
        assert!(bounds.len() > 50);
        assert!(bounds.windows(2).all(|w| w[0].0 < w[1].0));
        assert_eq!(bounds[0].0, 0);
        // Every key is found in the leaf its boundary routes to.
        for &(k, v) in entries.iter().step_by(97) {
            let idx = bounds.partition_point(|&(b, _)| b <= k) - 1;
            assert_eq!(l.lookup_in(bounds[idx].1, k).unwrap(), Some(v));
            assert!(l.covers(bounds[idx].1, k).unwrap());
        }
    }

    #[test]
    fn insert_splits_full_leaves() {
        let mut l = level();
        let entries: Vec<Entry> = (0..100u64).map(|i| (i * 10, i)).collect();
        let bounds = l.bulk_build(&entries).unwrap();
        let mut splits = 0;
        for i in 0..200u64 {
            let key = i * 5 + 1;
            let idx = bounds.partition_point(|&(b, _)| b <= key) - 1;
            match l.insert_in(bounds[idx].1, key, i).unwrap() {
                LeafInsert::Done => {}
                LeafInsert::Split { boundary, block } => {
                    splits += 1;
                    assert!(boundary > bounds[idx].0);
                    assert!(l.covers(block, boundary).unwrap());
                }
            }
        }
        assert!(splits > 0, "dense inserts must split at least one leaf");
    }

    #[test]
    fn scan_walks_the_chain() {
        let mut l = level();
        let entries: Vec<Entry> = (0..500u64).map(|i| (i * 2, i)).collect();
        let bounds = l.bulk_build(&entries).unwrap();
        let mut out = Vec::new();
        let n = l.scan_from(bounds[0].1, 100, 50, &mut out).unwrap();
        assert_eq!(n, 50);
        assert_eq!(out[0], (100, 50));
        assert!(out.windows(2).all(|w| w[0].0 < w[1].0));
    }
}
