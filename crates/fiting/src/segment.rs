//! On-disk segment layout for the FITing-tree.
//!
//! A segment is an extent of consecutive blocks in the segment file:
//!
//! ```text
//! [ data blocks: (key u64, payload u64) * count, sentinel-padded ]
//! [ buffer blocks: (key u64, payload u64) * buffer_count, sorted ]
//! ```
//!
//! The segment itself carries **no header** — its linear model and occupancy
//! counters live in the directory entry pointing at it ([`SegmentMeta`]).
//! This mirrors the design property the paper highlights for FITing-tree and
//! PGM (shortcoming S1 does not apply): the model is stored in the parent, so
//! reaching a key costs only the data blocks covered by the error range.
//!
//! Entries are 16 bytes and never straddle a block boundary (block sizes are
//! powers of two ≥ 64). Unused data slots are padded with the sentinel key
//! `u64::MAX`, which is larger than any valid key, so binary search works
//! without knowing the exact count.

use lidx_core::{Entry, IndexError, IndexResult, Key, Value};
use lidx_storage::{AccessClass, BlockId, BlockKind, Disk};

use lidx_models::LinearModel;

/// Size of one stored entry in bytes.
pub const ENTRY_BYTES: usize = 16;

/// Sentinel key used to pad unused slots in data blocks.
pub const SENTINEL_KEY: Key = Key::MAX;

/// Directory metadata describing one segment.
///
/// This is the value type stored in the directory B+-tree; it is what the
/// paper means by "the model is stored in the parent node".
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SegmentMeta {
    /// First (smallest) key covered by the segment.
    pub first_key: Key,
    /// Slope of the linear model (positions per key unit, relative to
    /// `first_key`).
    pub slope: f64,
    /// First block of the segment extent in the segment file.
    pub start_block: BlockId,
    /// Number of data blocks.
    pub data_blocks: u32,
    /// Number of buffer blocks following the data blocks.
    pub buffer_blocks: u32,
    /// Number of valid entries in the data region.
    pub count: u32,
    /// Number of valid entries in the delta buffer.
    pub buffer_count: u32,
}

impl SegmentMeta {
    /// Total blocks of the extent.
    pub fn total_blocks(&self) -> u32 {
        self.data_blocks + self.buffer_blocks
    }

    /// Capacity of the delta buffer in entries, given the block size.
    pub fn buffer_capacity(&self, block_size: usize) -> u32 {
        self.buffer_blocks * (block_size / ENTRY_BYTES) as u32
    }

    /// Predicts the position of `key` inside the data region, clamped to the
    /// valid range.
    pub fn predict(&self, key: Key) -> usize {
        if self.count == 0 {
            return 0;
        }
        let model =
            LinearModel { slope: self.slope, intercept: -self.slope * self.first_key as f64 };
        model.predict_clamped(key, self.count as usize)
    }
}

/// Number of entries per block for a given block size.
pub fn entries_per_block(block_size: usize) -> usize {
    block_size / ENTRY_BYTES
}

/// Serialises `entries` (plus sentinel padding) into the data region of a
/// segment extent and writes it to `disk`, charging [`BlockKind::Leaf`].
pub fn write_data_region(
    disk: &Disk,
    file: u32,
    start_block: BlockId,
    data_blocks: u32,
    entries: &[Entry],
) -> IndexResult<()> {
    let bs = disk.block_size();
    let per_block = entries_per_block(bs);
    let capacity = data_blocks as usize * per_block;
    if entries.len() > capacity {
        return Err(IndexError::Internal(format!(
            "segment data region overflow: {} entries into {} slots",
            entries.len(),
            capacity
        )));
    }
    let mut buf = vec![0u8; bs];
    for b in 0..data_blocks {
        let base = b as usize * per_block;
        for slot in 0..per_block {
            let off = slot * ENTRY_BYTES;
            let (k, v) = entries.get(base + slot).copied().unwrap_or((SENTINEL_KEY, 0));
            buf[off..off + 8].copy_from_slice(&k.to_le_bytes());
            buf[off + 8..off + 16].copy_from_slice(&v.to_le_bytes());
        }
        disk.write(file, start_block + b, BlockKind::Leaf, &buf)?;
    }
    Ok(())
}

/// Writes the sorted delta-buffer entries into the buffer region.
pub fn write_buffer_region(
    disk: &Disk,
    file: u32,
    meta: &SegmentMeta,
    entries: &[Entry],
) -> IndexResult<()> {
    let bs = disk.block_size();
    let per_block = entries_per_block(bs);
    let capacity = meta.buffer_blocks as usize * per_block;
    if entries.len() > capacity {
        return Err(IndexError::Internal(format!(
            "segment buffer overflow: {} entries into {} slots",
            entries.len(),
            capacity
        )));
    }
    let mut buf = vec![0u8; bs];
    let start = meta.start_block + meta.data_blocks;
    for b in 0..meta.buffer_blocks {
        let base = b as usize * per_block;
        for slot in 0..per_block {
            let off = slot * ENTRY_BYTES;
            let (k, v) = entries.get(base + slot).copied().unwrap_or((SENTINEL_KEY, 0));
            buf[off..off + 8].copy_from_slice(&k.to_le_bytes());
            buf[off + 8..off + 16].copy_from_slice(&v.to_le_bytes());
        }
        disk.write(file, start + b, BlockKind::Leaf, &buf)?;
    }
    Ok(())
}

/// Decodes the entry stored at `slot` of a raw block buffer.
pub fn entry_at(buf: &[u8], slot: usize) -> Entry {
    let off = slot * ENTRY_BYTES;
    let k = Key::from_le_bytes(buf[off..off + 8].try_into().unwrap());
    let v = Value::from_le_bytes(buf[off + 8..off + 16].try_into().unwrap());
    (k, v)
}

/// Searches the data region of a segment for `key`.
///
/// Only the blocks overlapping the error window `[pred - epsilon,
/// pred + epsilon]` are fetched, exactly as the paper's I/O analysis assumes
/// (Table 2: `2ε / B` blocks in the worst case).
pub fn search_data(
    disk: &Disk,
    file: u32,
    meta: &SegmentMeta,
    key: Key,
    epsilon: usize,
) -> IndexResult<Option<Value>> {
    if meta.count == 0 {
        return Ok(None);
    }
    let per_block = entries_per_block(disk.block_size());
    let pred = meta.predict(key);
    let lo = pred.saturating_sub(epsilon);
    let hi = (pred + epsilon).min(meta.count as usize - 1);
    let first_block = lo / per_block;
    let last_block = hi / per_block;
    for b in first_block..=last_block {
        let buf = disk.read_ref(file, meta.start_block + b as u32, BlockKind::Leaf)?;
        let slot_lo = if b == first_block { lo - b * per_block } else { 0 };
        let slot_hi = if b == last_block { hi - b * per_block } else { per_block - 1 };
        // Binary search within the in-block window.
        let mut lo_s = slot_lo;
        let mut hi_s = slot_hi + 1;
        while lo_s < hi_s {
            let mid = (lo_s + hi_s) / 2;
            let (k, v) = entry_at(&buf, mid);
            match k.cmp(&key) {
                std::cmp::Ordering::Equal => return Ok(Some(v)),
                std::cmp::Ordering::Less => lo_s = mid + 1,
                std::cmp::Ordering::Greater => hi_s = mid,
            }
        }
    }
    Ok(None)
}

/// Reads the valid entries of the data region (`count` entries), charging one
/// read per data block. Used by resegmentation; the whole-segment stream is
/// tagged scan-class so maintenance passes do not flush the hot pool set.
pub fn read_all_data(disk: &Disk, file: u32, meta: &SegmentMeta) -> IndexResult<Vec<Entry>> {
    let per_block = entries_per_block(disk.block_size());
    let mut out = Vec::with_capacity(meta.count as usize);
    let mut remaining = meta.count as usize;
    for b in 0..meta.data_blocks {
        if remaining == 0 {
            break;
        }
        let buf = disk.read_ref_scan(file, meta.start_block + b, BlockKind::Leaf)?;
        let take = remaining.min(per_block);
        for slot in 0..take {
            out.push(entry_at(&buf, slot));
        }
        remaining -= take;
    }
    Ok(out)
}

/// Reads data-region entries for a range scan: starting from position
/// `from_pos`, blocks are fetched in order (tagged scan-class) and decoded
/// until `needed` entries with keys `>= min_key` have been seen (or the data
/// is exhausted). All decoded entries from `from_pos` onwards are returned so
/// the caller can merge them with the delta buffer.
pub fn read_data_from(
    disk: &Disk,
    file: u32,
    meta: &SegmentMeta,
    from_pos: usize,
    min_key: Key,
    needed: usize,
) -> IndexResult<Vec<Entry>> {
    let per_block = entries_per_block(disk.block_size());
    let count = meta.count as usize;
    let mut out = Vec::new();
    if count == 0 || from_pos >= count {
        return Ok(out);
    }
    let mut matched = 0usize;
    let mut block = from_pos / per_block;
    let last_block = (count - 1) / per_block;
    while block <= last_block && matched < needed {
        let buf = disk.read_ref_scan(file, meta.start_block + block as u32, BlockKind::Leaf)?;
        let slot_lo = if block == from_pos / per_block { from_pos % per_block } else { 0 };
        let slot_hi = per_block.min(count - block * per_block);
        for slot in slot_lo..slot_hi {
            let e = entry_at(&buf, slot);
            if e.0 >= min_key {
                matched += 1;
            }
            out.push(e);
        }
        block += 1;
    }
    Ok(out)
}

/// Reads the valid entries of the delta buffer (sorted), charging one read
/// per buffer block actually holding data. `class` distinguishes a point
/// lookup's buffer probe from a scan / maintenance stream.
pub fn read_buffer(
    disk: &Disk,
    file: u32,
    meta: &SegmentMeta,
    class: AccessClass,
) -> IndexResult<Vec<Entry>> {
    let per_block = entries_per_block(disk.block_size());
    let mut out = Vec::with_capacity(meta.buffer_count as usize);
    let mut remaining = meta.buffer_count as usize;
    let start = meta.start_block + meta.data_blocks;
    for b in 0..meta.buffer_blocks {
        if remaining == 0 {
            break;
        }
        let buf = disk.read_ref_class(file, start + b, BlockKind::Leaf, class)?;
        let take = remaining.min(per_block);
        for slot in 0..take {
            out.push(entry_at(&buf, slot));
        }
        remaining -= take;
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use lidx_storage::DiskConfig;

    fn setup(count: usize) -> (std::sync::Arc<Disk>, u32, SegmentMeta, Vec<Entry>) {
        let disk = Disk::in_memory(DiskConfig::with_block_size(256));
        let file = disk.create_file().unwrap();
        let entries: Vec<Entry> = (0..count as u64).map(|i| (i * 10, i * 10 + 1)).collect();
        let per_block = entries_per_block(256);
        let data_blocks = count.div_ceil(per_block).max(1) as u32;
        let buffer_blocks = 1;
        let start = disk.allocate(file, data_blocks + buffer_blocks).unwrap();
        let slope =
            if count > 1 { (count as f64 - 1.0) / ((count as f64 - 1.0) * 10.0) } else { 0.0 };
        let meta = SegmentMeta {
            first_key: 0,
            slope,
            start_block: start,
            data_blocks,
            buffer_blocks,
            count: count as u32,
            buffer_count: 0,
        };
        write_data_region(&disk, file, start, data_blocks, &entries).unwrap();
        write_buffer_region(&disk, file, &meta, &[]).unwrap();
        (disk, file, meta, entries)
    }

    #[test]
    fn search_finds_every_key_within_epsilon() {
        let (disk, file, meta, entries) = setup(100);
        for &(k, v) in &entries {
            assert_eq!(search_data(&disk, file, &meta, k, 4).unwrap(), Some(v), "key {k}");
        }
        assert_eq!(search_data(&disk, file, &meta, 5, 4).unwrap(), None);
        assert_eq!(search_data(&disk, file, &meta, 10_000, 4).unwrap(), None);
    }

    #[test]
    fn search_fetches_limited_blocks() {
        let (disk, file, meta, entries) = setup(200); // spans many 16-entry blocks
        disk.stats().reset();
        disk.reset_access_state();
        let (k, _) = entries[100];
        search_data(&disk, file, &meta, k, 4).unwrap();
        // ε = 4 on a perfect model touches at most 2 blocks of 16 entries.
        assert!(disk.stats().reads() <= 2, "read {} blocks", disk.stats().reads());
    }

    #[test]
    fn read_all_data_and_buffer_roundtrip() {
        let (disk, file, mut meta, entries) = setup(50);
        assert_eq!(read_all_data(&disk, file, &meta).unwrap(), entries);
        assert!(read_buffer(&disk, file, &meta, AccessClass::Point).unwrap().is_empty());

        let buffered: Vec<Entry> = vec![(3, 4), (7, 8)];
        meta.buffer_count = buffered.len() as u32;
        write_buffer_region(&disk, file, &meta, &buffered).unwrap();
        assert_eq!(read_buffer(&disk, file, &meta, AccessClass::Point).unwrap(), buffered);
    }

    #[test]
    fn overflow_is_rejected() {
        let (disk, file, meta, _) = setup(10);
        let too_many: Vec<Entry> = (0..10_000u64).map(|i| (i, i)).collect();
        assert!(
            write_data_region(&disk, file, meta.start_block, meta.data_blocks, &too_many).is_err()
        );
        assert!(write_buffer_region(&disk, file, &meta, &too_many).is_err());
    }

    #[test]
    fn meta_helpers() {
        let meta = SegmentMeta {
            first_key: 100,
            slope: 0.5,
            start_block: 3,
            data_blocks: 4,
            buffer_blocks: 1,
            count: 60,
            buffer_count: 2,
        };
        assert_eq!(meta.total_blocks(), 5);
        assert_eq!(meta.buffer_capacity(256), 16);
        assert_eq!(meta.predict(100), 0);
        assert_eq!(meta.predict(120), 10);
        assert_eq!(meta.predict(1_000_000), 59, "prediction clamps to count-1");
    }
}
