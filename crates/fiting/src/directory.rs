//! The FITing-tree directory: a B+-tree over segment metadata.
//!
//! The directory is the FITing-tree's *inner structure*. Its leaf entries are
//! full [`SegmentMeta`] records (model + occupancy + extent address), so by
//! the time a query reaches a segment it already knows the model and how many
//! entries are valid — no segment header ever needs to be fetched. All
//! directory I/O is attributed to [`BlockKind::Inner`].
//!
//! Routing nodes reuse the [`lidx_btree::InnerNode`] block layout; directory
//! leaves use their own layout defined here.

use std::sync::Arc;

use lidx_btree::InnerNode;
use lidx_core::{IndexError, IndexResult, Key};
use lidx_storage::{BlockId, BlockKind, BlockReader, BlockWriter, Disk, INVALID_BLOCK};

use crate::segment::SegmentMeta;

const TAG_DIR_LEAF: u8 = 3;
const DIR_LEAF_HEADER: usize = 1 + 1 + 2 + 4;
/// Bytes per serialized [`SegmentMeta`] entry.
const DIR_ENTRY: usize = 8 + 8 + 4 + 4 + 4 + 4 + 4;

/// Location of a directory entry (used to update occupancy counters in
/// place).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DirSlot {
    /// Directory leaf block.
    pub block: BlockId,
    /// Entry index within the leaf.
    pub slot: usize,
}

/// A directory leaf node holding segment metadata records sorted by
/// `first_key`.
#[derive(Debug, Clone, PartialEq, Default)]
struct DirLeaf {
    entries: Vec<SegmentMeta>,
    next: BlockId,
}

impl DirLeaf {
    fn capacity(block_size: usize) -> usize {
        (block_size - DIR_LEAF_HEADER) / DIR_ENTRY
    }

    fn encode(&self, block_size: usize) -> IndexResult<Vec<u8>> {
        let mut w = BlockWriter::new(block_size);
        w.put_u8(TAG_DIR_LEAF)?;
        w.put_u8(0)?;
        w.put_u16(self.entries.len() as u16)?;
        w.put_u32(self.next)?;
        for m in &self.entries {
            w.put_u64(m.first_key)?;
            w.put_f64(m.slope)?;
            w.put_u32(m.start_block)?;
            w.put_u32(m.data_blocks)?;
            w.put_u32(m.buffer_blocks)?;
            w.put_u32(m.count)?;
            w.put_u32(m.buffer_count)?;
        }
        Ok(w.finish())
    }

    fn decode(buf: &[u8]) -> IndexResult<Self> {
        let mut r = BlockReader::new(buf);
        let tag = r.get_u8()?;
        if tag != TAG_DIR_LEAF {
            return Err(IndexError::Internal(format!("expected directory leaf tag, got {tag}")));
        }
        r.get_u8()?;
        let count = r.get_u16()? as usize;
        let next = r.get_u32()?;
        let mut entries = Vec::with_capacity(count);
        for _ in 0..count {
            entries.push(SegmentMeta {
                first_key: r.get_u64()?,
                slope: r.get_f64()?,
                start_block: r.get_u32()?,
                data_blocks: r.get_u32()?,
                buffer_blocks: r.get_u32()?,
                count: r.get_u32()?,
                buffer_count: r.get_u32()?,
            });
        }
        Ok(DirLeaf { entries, next })
    }
}

/// The directory B+-tree.
pub struct Directory {
    disk: Arc<Disk>,
    file: u32,
    root: BlockId,
    height: u32,
    leaf_count: u64,
    routing_count: u64,
    segment_count: u64,
}

impl Directory {
    /// Creates an empty directory in its own file on `disk`.
    pub fn new(disk: Arc<Disk>) -> IndexResult<Self> {
        let file = disk.create_file()?;
        Ok(Directory {
            disk,
            file,
            root: INVALID_BLOCK,
            height: 0,
            leaf_count: 0,
            routing_count: 0,
            segment_count: 0,
        })
    }

    /// Number of segments currently registered.
    pub fn segment_count(&self) -> u64 {
        self.segment_count
    }

    /// Number of directory leaf nodes.
    pub fn leaf_nodes(&self) -> u64 {
        self.leaf_count
    }

    /// Number of routing (non-leaf) directory nodes.
    pub fn routing_nodes(&self) -> u64 {
        self.routing_count
    }

    /// Height of the directory (1 = a single leaf).
    pub fn height(&self) -> u32 {
        self.height
    }

    /// The directory's file id.
    pub fn file_id(&self) -> u32 {
        self.file
    }

    /// Root block of the directory tree ([`INVALID_BLOCK`] before the first
    /// bulk build).
    pub fn root_block(&self) -> BlockId {
        self.root
    }

    /// Reconstructs a directory handle from persisted counters. The blocks
    /// themselves must already exist on `disk`; no I/O is performed.
    #[allow(clippy::too_many_arguments)]
    pub fn from_parts(
        disk: Arc<Disk>,
        file: u32,
        root: BlockId,
        height: u32,
        leaf_count: u64,
        routing_count: u64,
        segment_count: u64,
    ) -> Self {
        Directory { disk, file, root, height, leaf_count, routing_count, segment_count }
    }

    fn read_leaf(&self, block: BlockId) -> IndexResult<DirLeaf> {
        let buf = self.disk.read_ref(self.file, block, BlockKind::Inner)?;
        DirLeaf::decode(&buf)
    }

    fn write_leaf(&self, block: BlockId, leaf: &DirLeaf) -> IndexResult<()> {
        let buf = leaf.encode(self.disk.block_size())?;
        self.disk.write(self.file, block, BlockKind::Inner, &buf)?;
        Ok(())
    }

    fn read_routing(&self, block: BlockId) -> IndexResult<InnerNode> {
        let buf = self.disk.read_ref(self.file, block, BlockKind::Inner)?;
        InnerNode::decode(&buf)
    }

    fn write_routing(&self, block: BlockId, node: &InnerNode) -> IndexResult<()> {
        let buf = node.encode(self.disk.block_size())?;
        self.disk.write(self.file, block, BlockKind::Inner, &buf)?;
        Ok(())
    }

    /// Bulk-builds the directory from segment metadata sorted by `first_key`.
    pub fn bulk_build(&mut self, metas: &[SegmentMeta]) -> IndexResult<()> {
        let bs = self.disk.block_size();
        let per_leaf = (DirLeaf::capacity(bs) as f64 * 0.8).max(1.0) as usize;
        let leaf_total = metas.len().div_ceil(per_leaf).max(1);
        let first_block = self.disk.allocate(self.file, leaf_total as u32)?;
        let mut level: Vec<(Key, BlockId)> = Vec::with_capacity(leaf_total);
        if metas.is_empty() {
            self.write_leaf(first_block, &DirLeaf::default())?;
            level.push((0, first_block));
        } else {
            for (i, chunk) in metas.chunks(per_leaf).enumerate() {
                let block = first_block + i as u32;
                let next = if i + 1 < leaf_total { block + 1 } else { INVALID_BLOCK };
                let leaf = DirLeaf { entries: chunk.to_vec(), next };
                self.write_leaf(block, &leaf)?;
                level.push((chunk[0].first_key, block));
            }
        }
        self.leaf_count = level.len() as u64;
        self.height = 1;

        let inner_cap = lidx_btree::NodeCapacity::for_block_size(bs).inner_keys;
        let per_node = ((inner_cap as f64 * 0.8) as usize).clamp(2, inner_cap);
        while level.len() > 1 {
            let node_count = level.len().div_ceil(per_node + 1).max(1);
            let first = self.disk.allocate(self.file, node_count as u32)?;
            let mut up = Vec::with_capacity(node_count);
            for (i, chunk) in level.chunks(per_node + 1).enumerate() {
                let block = first + i as u32;
                let node = InnerNode {
                    keys: chunk[1..].iter().map(|&(k, _)| k).collect(),
                    children: chunk.iter().map(|&(_, b)| b).collect(),
                };
                self.write_routing(block, &node)?;
                up.push((chunk[0].0, block));
            }
            self.routing_count += up.len() as u64;
            self.height += 1;
            level = up;
        }
        self.root = level[0].1;
        self.segment_count = metas.len() as u64;
        Ok(())
    }

    /// Descends to the directory leaf covering `key`, returning the routing
    /// path (block, child index) and the leaf block.
    fn descend(&self, key: Key) -> IndexResult<(Vec<(BlockId, usize)>, BlockId)> {
        if self.root == INVALID_BLOCK {
            return Err(IndexError::NotInitialized);
        }
        let mut path = Vec::with_capacity(self.height as usize);
        let mut current = self.root;
        for _ in 1..self.height {
            let node = self.read_routing(current)?;
            let idx = node.child_for(key);
            path.push((current, idx));
            current = node.children[idx];
        }
        Ok((path, current))
    }

    /// Finds the segment covering `key`: the entry with the greatest
    /// `first_key <= key`. Returns the metadata and its location.
    pub fn find(&self, key: Key) -> IndexResult<(SegmentMeta, DirSlot)> {
        let (_, leaf_block) = self.descend(key)?;
        let leaf = self.read_leaf(leaf_block)?;
        let pos = leaf.entries.partition_point(|m| m.first_key <= key);
        if pos == 0 {
            return Err(IndexError::Internal(format!(
                "no segment covers key {key}; the caller must route keys below the global minimum to the overflow buffer"
            )));
        }
        Ok((leaf.entries[pos - 1], DirSlot { block: leaf_block, slot: pos - 1 }))
    }

    /// Returns the segment following `slot` in key order, if any.
    pub fn next_segment(&self, slot: DirSlot) -> IndexResult<Option<(SegmentMeta, DirSlot)>> {
        let leaf = self.read_leaf(slot.block)?;
        if slot.slot + 1 < leaf.entries.len() {
            return Ok(Some((
                leaf.entries[slot.slot + 1],
                DirSlot { block: slot.block, slot: slot.slot + 1 },
            )));
        }
        if leaf.next == INVALID_BLOCK {
            return Ok(None);
        }
        let next = self.read_leaf(leaf.next)?;
        if next.entries.is_empty() {
            return Ok(None);
        }
        Ok(Some((next.entries[0], DirSlot { block: leaf.next, slot: 0 })))
    }

    /// Overwrites the metadata stored at `slot` (the entry's `first_key` must
    /// not change). Costs one leaf write — the "extra block to update the
    /// current item count" the paper attributes to FITing-tree inserts.
    pub fn update_meta(&mut self, slot: DirSlot, meta: SegmentMeta) -> IndexResult<()> {
        let mut leaf = self.read_leaf(slot.block)?;
        let entry = leaf
            .entries
            .get_mut(slot.slot)
            .ok_or_else(|| IndexError::Internal(format!("stale directory slot {slot:?}")))?;
        if entry.first_key != meta.first_key {
            return Err(IndexError::Internal(format!(
                "directory slot {slot:?} holds first_key {} but update targets {}",
                entry.first_key, meta.first_key
            )));
        }
        *entry = meta;
        self.write_leaf(slot.block, &leaf)
    }

    /// Replaces the segment whose `first_key` equals `old_first_key` with one
    /// or more new segments (sorted by `first_key`). Splits directory leaves
    /// and updates routing nodes as needed; this is the directory half of a
    /// resegmentation SMO.
    pub fn replace(&mut self, old_first_key: Key, new_metas: &[SegmentMeta]) -> IndexResult<()> {
        if new_metas.is_empty() {
            return Err(IndexError::Internal("replace requires at least one new segment".into()));
        }
        let (path, leaf_block) = self.descend(old_first_key)?;
        let mut leaf = self.read_leaf(leaf_block)?;
        let pos =
            leaf.entries.iter().position(|m| m.first_key == old_first_key).ok_or_else(|| {
                IndexError::Internal(format!("segment with first_key {old_first_key} not found"))
            })?;
        leaf.entries.splice(pos..=pos, new_metas.iter().copied());
        self.segment_count += new_metas.len() as u64 - 1;

        let cap = DirLeaf::capacity(self.disk.block_size());
        if leaf.entries.len() <= cap {
            return self.write_leaf(leaf_block, &leaf);
        }

        // Split the overflowing directory leaf into as many leaves as needed.
        let chunks: Vec<Vec<SegmentMeta>> =
            leaf.entries.chunks(cap.div_ceil(2).max(1)).map(|c| c.to_vec()).collect();
        let extra = chunks.len() - 1;
        let new_first = self.disk.allocate(self.file, extra as u32)?;
        let old_next = leaf.next;
        let mut separators = Vec::with_capacity(extra);
        for (i, chunk) in chunks.iter().enumerate() {
            let block = if i == 0 { leaf_block } else { new_first + (i as u32 - 1) };
            let next = if i + 1 < chunks.len() {
                if i == 0 {
                    new_first
                } else {
                    new_first + i as u32
                }
            } else {
                old_next
            };
            let node = DirLeaf { entries: chunk.clone(), next };
            self.write_leaf(block, &node)?;
            if i > 0 {
                separators.push((chunk[0].first_key, block));
            }
        }
        self.leaf_count += extra as u64;
        for (key, child) in separators {
            self.insert_into_routing(&path, key, child)?;
        }
        Ok(())
    }

    /// Inserts `(key, child)` into the routing nodes along `path`, splitting
    /// upward as needed.
    fn insert_into_routing(
        &mut self,
        path: &[(BlockId, usize)],
        key: Key,
        child: BlockId,
    ) -> IndexResult<()> {
        let inner_cap = lidx_btree::NodeCapacity::for_block_size(self.disk.block_size()).inner_keys;
        let mut key = key;
        let mut child = child;
        for depth in (0..path.len()).rev() {
            let (block, _) = path[depth];
            let mut node = self.read_routing(block)?;
            let pos = node.keys.partition_point(|&k| k <= key);
            node.keys.insert(pos, key);
            node.children.insert(pos + 1, child);
            if node.keys.len() <= inner_cap {
                self.write_routing(block, &node)?;
                return Ok(());
            }
            let mid = node.keys.len() / 2;
            let up_key = node.keys[mid];
            let right = InnerNode {
                keys: node.keys.split_off(mid + 1),
                children: node.children.split_off(mid + 1),
            };
            node.keys.pop();
            let right_block = self.disk.allocate(self.file, 1)?;
            self.write_routing(block, &node)?;
            self.write_routing(right_block, &right)?;
            self.routing_count += 1;
            key = up_key;
            child = right_block;
        }
        let new_root = self.disk.allocate(self.file, 1)?;
        let node = InnerNode { keys: vec![key], children: vec![self.root, child] };
        self.write_routing(new_root, &node)?;
        self.routing_count += 1;
        self.root = new_root;
        self.height += 1;
        Ok(())
    }

    /// Collects every segment's metadata in key order (test / debugging aid;
    /// reads the whole leaf level).
    pub fn all_segments(&self) -> IndexResult<Vec<SegmentMeta>> {
        if self.root == INVALID_BLOCK {
            return Ok(Vec::new());
        }
        // Walk down the leftmost path, then follow leaf links.
        let mut current = self.root;
        for _ in 1..self.height {
            let node = self.read_routing(current)?;
            current = node.children[0];
        }
        let mut out = Vec::new();
        loop {
            let leaf = self.read_leaf(current)?;
            out.extend_from_slice(&leaf.entries);
            if leaf.next == INVALID_BLOCK {
                break;
            }
            current = leaf.next;
        }
        Ok(out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lidx_storage::DiskConfig;

    fn meta(first_key: Key, start_block: BlockId) -> SegmentMeta {
        SegmentMeta {
            first_key,
            slope: 0.1,
            start_block,
            data_blocks: 2,
            buffer_blocks: 1,
            count: 10,
            buffer_count: 0,
        }
    }

    fn build(n: u64, block_size: usize) -> Directory {
        let disk = Disk::in_memory(DiskConfig::with_block_size(block_size));
        let mut dir = Directory::new(disk).unwrap();
        let metas: Vec<SegmentMeta> = (0..n).map(|i| meta(i * 100 + 10, i as u32 * 3)).collect();
        dir.bulk_build(&metas).unwrap();
        dir
    }

    #[test]
    fn find_returns_covering_segment() {
        let dir = build(500, 512);
        assert_eq!(dir.segment_count(), 500);
        assert!(dir.height() >= 2);
        let (m, _) = dir.find(10).unwrap();
        assert_eq!(m.first_key, 10);
        let (m, _) = dir.find(109).unwrap();
        assert_eq!(m.first_key, 10, "keys inside a segment's range route to it");
        let (m, _) = dir.find(110).unwrap();
        assert_eq!(m.first_key, 110);
        let (m, _) = dir.find(u64::MAX).unwrap();
        assert_eq!(m.first_key, 499 * 100 + 10);
        assert!(dir.find(5).is_err(), "keys below the global minimum are the caller's problem");
    }

    #[test]
    fn next_segment_walks_in_key_order() {
        let dir = build(300, 512);
        let (mut m, mut slot) = dir.find(10).unwrap();
        let mut seen = vec![m.first_key];
        while let Some((n, s)) = dir.next_segment(slot).unwrap() {
            assert!(n.first_key > m.first_key);
            seen.push(n.first_key);
            m = n;
            slot = s;
        }
        assert_eq!(seen.len(), 300);
    }

    #[test]
    fn update_meta_persists_counters() {
        let mut dir = build(50, 512);
        let (mut m, slot) = dir.find(1010).unwrap();
        m.buffer_count = 7;
        m.count = 99;
        dir.update_meta(slot, m).unwrap();
        let (again, _) = dir.find(1010).unwrap();
        assert_eq!(again.buffer_count, 7);
        assert_eq!(again.count, 99);

        // Updating with a mismatched first_key is rejected.
        let mut wrong = again;
        wrong.first_key += 1;
        assert!(dir.update_meta(slot, wrong).is_err());
    }

    #[test]
    fn replace_splits_leaves_and_keeps_all_segments_reachable() {
        let mut dir = build(200, 512);
        // Replace one segment with 40 new ones — enough to overflow a leaf.
        let old = 100 * 100 + 10; // first_key of segment #100
        let news: Vec<SegmentMeta> = (0..40).map(|i| meta(old + i, 10_000 + i as u32)).collect();
        dir.replace(old, &news).unwrap();
        assert_eq!(dir.segment_count(), 200 + 39);
        // Every new segment must now be found.
        for m in &news {
            let (found, _) = dir.find(m.first_key).unwrap();
            assert_eq!(found.first_key, m.first_key);
            assert_eq!(found.start_block, m.start_block);
        }
        // Old neighbours are still reachable and ordering is preserved.
        let all = dir.all_segments().unwrap();
        assert_eq!(all.len(), 239);
        assert!(all.windows(2).all(|w| w[0].first_key < w[1].first_key));
    }

    #[test]
    fn replace_missing_segment_fails() {
        let mut dir = build(10, 512);
        assert!(dir.replace(123_456, &[meta(123_456, 1)]).is_err());
        assert!(dir.replace(10, &[]).is_err());
    }

    #[test]
    fn directory_io_is_attributed_to_inner() {
        let dir = build(100, 512);
        dir.find(5_000).unwrap();
        assert!(dir.disk.stats().reads_of(BlockKind::Inner) > 0);
        assert_eq!(dir.disk.stats().reads_of(BlockKind::Leaf), 0);
    }

    #[test]
    fn empty_directory_reports_not_initialised() {
        let disk = Disk::in_memory(DiskConfig::with_block_size(512));
        let dir = Directory::new(disk).unwrap();
        assert!(matches!(dir.find(1), Err(IndexError::NotInitialized)));
        assert!(dir.all_segments().unwrap().is_empty());
    }
}
