//! The FITing-tree [`DiskIndex`](lidx_core::DiskIndex) implementation.

use std::sync::Arc;

use lidx_core::{
    index::validate_bulk_load, Entry, IndexError, IndexKind, IndexRead, IndexResult, IndexStats,
    IndexWrite, InsertBreakdown, InsertStep, Key, MetaReader, MetaWriter, Value,
};
use lidx_models::pla::ShrinkingCone;
use lidx_storage::{AccessClass, BlockId, BlockKind, Disk, OpClass, SeqHint};

use crate::directory::Directory;
use crate::segment::{
    self, entries_per_block, read_all_data, read_buffer, search_data, write_buffer_region,
    write_data_region, SegmentMeta,
};

/// Configuration of the on-disk FITing-tree.
#[derive(Debug, Clone, Copy)]
pub struct FitingConfig {
    /// Error bound ε of the per-segment linear models (the paper's default
    /// is 64).
    pub epsilon: usize,
    /// Capacity of each segment's delta buffer in entries (the paper's
    /// default is 256).
    pub buffer_entries: usize,
}

impl Default for FitingConfig {
    fn default() -> Self {
        FitingConfig { epsilon: 64, buffer_entries: 256 }
    }
}

/// An on-disk FITing-tree with the Delta insert strategy.
pub struct FitingTree {
    disk: Arc<Disk>,
    config: FitingConfig,
    directory: Directory,
    /// File holding segment data; block 0 is the overflow buffer for keys
    /// below the global minimum (§4.2).
    seg_file: u32,
    /// Smallest key covered by any segment; smaller keys live in the
    /// overflow buffer.
    global_min_key: Key,
    /// Number of entries currently in the overflow buffer.
    overflow_count: u32,
    key_count: u64,
    smo_count: u64,
    loaded: bool,
    breakdown: InsertBreakdown,
}

impl FitingTree {
    /// Creates an empty FITing-tree with default configuration.
    pub fn new(disk: Arc<Disk>) -> IndexResult<Self> {
        Self::with_config(disk, FitingConfig::default())
    }

    /// Creates an empty FITing-tree with an explicit configuration.
    pub fn with_config(disk: Arc<Disk>, config: FitingConfig) -> IndexResult<Self> {
        assert!(config.epsilon >= 1, "epsilon must be at least 1");
        assert!(config.buffer_entries >= 1, "buffer must hold at least one entry");
        let directory = Directory::new(Arc::clone(&disk))?;
        let seg_file = disk.create_file()?;
        // Block 0 of the segment file is the overflow buffer.
        let b0 = disk.allocate(seg_file, 1)?;
        debug_assert_eq!(b0, 0);
        Ok(FitingTree {
            disk,
            config,
            directory,
            seg_file,
            global_min_key: 0,
            overflow_count: 0,
            key_count: 0,
            smo_count: 0,
            loaded: false,
            breakdown: InsertBreakdown::new(),
        })
    }

    /// Reopens a FITing-tree from [`IndexWrite::save_meta`] bytes against a
    /// disk that already holds its blocks. `config` must match the one the
    /// tree was created with.
    pub fn load(disk: Arc<Disk>, config: FitingConfig, meta: &[u8]) -> IndexResult<Self> {
        let mut r = MetaReader::new(meta);
        let seg_file = r.u32()?;
        let global_min_key = r.u64()?;
        let overflow_count = r.u32()?;
        let key_count = r.u64()?;
        let smo_count = r.u64()?;
        let dir_file = r.u32()?;
        let dir_root = r.u32()?;
        let dir_height = r.u32()?;
        let dir_leaves = r.u64()?;
        let dir_routing = r.u64()?;
        let dir_segments = r.u64()?;
        let directory = Directory::from_parts(
            Arc::clone(&disk),
            dir_file,
            dir_root,
            dir_height,
            dir_leaves,
            dir_routing,
            dir_segments,
        );
        Ok(FitingTree {
            disk,
            config,
            directory,
            seg_file,
            global_min_key,
            overflow_count,
            key_count,
            smo_count,
            loaded: true,
            breakdown: InsertBreakdown::new(),
        })
    }

    /// The configured error bound.
    pub fn epsilon(&self) -> usize {
        self.config.epsilon
    }

    /// Number of segments currently in the index.
    pub fn segment_count(&self) -> u64 {
        self.directory.segment_count()
    }

    fn buffer_blocks_per_segment(&self) -> u32 {
        (self.config.buffer_entries.div_ceil(entries_per_block(self.disk.block_size()))) as u32
    }

    /// Creates segments (extents + metadata) covering `entries`, which must be
    /// sorted and non-empty unless the index is being initialised empty.
    fn build_segments(&mut self, entries: &[Entry]) -> IndexResult<Vec<SegmentMeta>> {
        let per_block = entries_per_block(self.disk.block_size());
        let buffer_blocks = self.buffer_blocks_per_segment();
        if entries.is_empty() {
            // One empty segment anchored at key 0 keeps every code path
            // uniform for an index that starts out empty.
            let data_blocks = 1;
            let start = self.disk.allocate(self.seg_file, data_blocks + buffer_blocks)?;
            write_data_region(&self.disk, self.seg_file, start, data_blocks, &[])?;
            return Ok(vec![SegmentMeta {
                first_key: 0,
                slope: 0.0,
                start_block: start,
                data_blocks,
                buffer_blocks,
                count: 0,
                buffer_count: 0,
            }]);
        }

        let mut cone = ShrinkingCone::new(self.config.epsilon);
        let mut pla_segments = Vec::new();
        for &(k, _) in entries {
            if let Some(s) = cone.push(k) {
                pla_segments.push(s);
            }
        }
        if let Some(s) = cone.finish() {
            pla_segments.push(s);
        }

        let mut metas = Vec::with_capacity(pla_segments.len());
        for seg in &pla_segments {
            let slice = &entries[seg.start_index..seg.start_index + seg.len];
            let data_blocks = seg.len.div_ceil(per_block).max(1) as u32;
            let start = self.disk.allocate(self.seg_file, data_blocks + buffer_blocks)?;
            write_data_region(&self.disk, self.seg_file, start, data_blocks, slice)?;
            metas.push(SegmentMeta {
                first_key: seg.first_key,
                slope: seg.model.slope,
                start_block: start,
                data_blocks,
                buffer_blocks,
                count: seg.len as u32,
                buffer_count: 0,
            });
        }
        Ok(metas)
    }

    fn read_overflow(&self, class: AccessClass) -> IndexResult<Vec<Entry>> {
        if self.overflow_count == 0 {
            return Ok(Vec::new());
        }
        let buf = self.disk.read_ref_class(self.seg_file, 0, BlockKind::Utility, class)?;
        Ok((0..self.overflow_count as usize).map(|i| segment::entry_at(&buf, i)).collect())
    }

    fn write_overflow(&self, entries: &[Entry]) -> IndexResult<()> {
        let bs = self.disk.block_size();
        let mut buf = vec![0u8; bs];
        for (i, &(k, v)) in entries.iter().enumerate() {
            let off = i * segment::ENTRY_BYTES;
            buf[off..off + 8].copy_from_slice(&k.to_le_bytes());
            buf[off + 8..off + 16].copy_from_slice(&v.to_le_bytes());
        }
        self.disk.write(self.seg_file, 0, BlockKind::Utility, &buf)?;
        Ok(())
    }

    fn overflow_capacity(&self) -> usize {
        entries_per_block(self.disk.block_size())
    }

    /// Batched lookups with the segment I/O issued as outstanding-read
    /// waves: every probe is routed through the directory first (inner
    /// blocks only), then the distinct ε-window data blocks and occupied
    /// delta-buffer blocks of the whole batch are prefetched in one
    /// submission wave, and finally each probe is resolved exactly as
    /// [`IndexRead::lookup`] would — its reads consume the parked frames.
    /// Only called with `queue_depth > 1`.
    fn lookup_batch_queued(
        &self,
        keys: &[Key],
        order: &[u32],
        out: &mut [Option<Value>],
    ) -> IndexResult<()> {
        let epsilon = self.config.epsilon;
        let per_block = entries_per_block(self.disk.block_size());
        let mut metas: Vec<(u32, Option<SegmentMeta>)> = Vec::with_capacity(order.len());
        let mut blocks: std::collections::BTreeSet<BlockId> = std::collections::BTreeSet::new();
        for &i in order {
            let key = keys[i as usize];
            if key < self.global_min_key {
                metas.push((i, None));
                continue;
            }
            let (meta, _) = self.directory.find(key)?;
            if meta.count > 0 {
                let pred = meta.predict(key);
                let lo = pred.saturating_sub(epsilon);
                let hi = (pred + epsilon).min(meta.count as usize - 1);
                for b in lo / per_block..=hi / per_block {
                    blocks.insert(meta.start_block + b as u32);
                }
            }
            if meta.buffer_count > 0 {
                let used = (meta.buffer_count as usize).div_ceil(per_block) as u32;
                for b in 0..used {
                    blocks.insert(meta.start_block + meta.data_blocks + b);
                }
            }
            metas.push((i, Some(meta)));
        }

        let mut q = self.disk.read_queue();
        for &b in &blocks {
            q.prefetch(self.seg_file, b, BlockKind::Leaf, AccessClass::Point, SeqHint::Auto)?;
        }
        q.flush()?;

        for (i, meta) in metas {
            let key = keys[i as usize];
            let Some(meta) = meta else {
                out[i as usize] = self
                    .read_overflow(AccessClass::Point)?
                    .iter()
                    .find(|&&(k, _)| k == key)
                    .map(|&(_, v)| v);
                continue;
            };
            if let Some(v) = search_data(&self.disk, self.seg_file, &meta, key, epsilon)? {
                out[i as usize] = Some(v);
                continue;
            }
            if meta.buffer_count > 0 {
                let buffer = read_buffer(&self.disk, self.seg_file, &meta, AccessClass::Point)?;
                if let Ok(pos) = buffer.binary_search_by_key(&key, |&(k, _)| k) {
                    out[i as usize] = Some(buffer[pos].1);
                }
            }
        }
        Ok(())
    }

    /// Resegments `old` (identified by its directory `first_key`) together
    /// with `extra` entries (sorted by key, duplicates removed), replacing it
    /// with freshly built segments. On keys present both on disk and in
    /// `extra`, the `extra` payload wins — the sequential insert path never
    /// passes such duplicates, but the batched delta-buffer fill folds its
    /// pending overwrites through here.
    fn resegment(&mut self, old: SegmentMeta, extra: &[Entry]) -> IndexResult<()> {
        self.smo_count += 1;
        // The SMO is the learned-index pause the paper attributes tail
        // latency to: time the whole operation and count it, off a local
        // Arc so the span does not pin a borrow of `self`.
        let telemetry = Arc::clone(&self.disk);
        let _span = telemetry.telemetry().span(OpClass::Smo);
        telemetry.telemetry().add(OpClass::Smo, 1);
        let mut stored = read_all_data(&self.disk, self.seg_file, &old)?;
        stored.extend_from_slice(&read_buffer(&self.disk, self.seg_file, &old, AccessClass::Scan)?);
        // Data region and delta buffer are disjoint by construction, so this
        // sort sees no equal keys.
        stored.sort_unstable_by_key(|&(k, _)| k);
        let mut merged = Vec::with_capacity(stored.len() + extra.len());
        lidx_core::merge_newest_wins(extra.iter().copied(), stored, usize::MAX, &mut merged);

        let news = self.build_segments(&merged)?;
        let was_first = old.first_key == self.global_min_key;
        self.directory.replace(old.first_key, &news)?;
        self.disk.free(self.seg_file, old.start_block, old.total_blocks());
        if was_first {
            self.global_min_key = news[0].first_key;
        }
        Ok(())
    }
}

impl IndexRead for FitingTree {
    fn kind(&self) -> IndexKind {
        IndexKind::FitingTree
    }

    fn disk(&self) -> &Arc<Disk> {
        &self.disk
    }

    fn lookup(&self, key: Key) -> IndexResult<Option<Value>> {
        if !self.loaded {
            return Err(IndexError::NotInitialized);
        }
        if key < self.global_min_key {
            return Ok(self
                .read_overflow(AccessClass::Point)?
                .iter()
                .find(|&&(k, _)| k == key)
                .map(|&(_, v)| v));
        }
        let (meta, _) = self.directory.find(key)?;
        if let Some(v) = search_data(&self.disk, self.seg_file, &meta, key, self.config.epsilon)? {
            return Ok(Some(v));
        }
        if meta.buffer_count > 0 {
            let buffer = read_buffer(&self.disk, self.seg_file, &meta, AccessClass::Point)?;
            if let Ok(pos) = buffer.binary_search_by_key(&key, |&(k, _)| k) {
                return Ok(Some(buffer[pos].1));
            }
        }
        Ok(None)
    }

    fn lookup_batch(&self, keys: &[Key], out: &mut Vec<Option<Value>>) -> IndexResult<()> {
        if !self.loaded {
            return Err(IndexError::NotInitialized);
        }
        // At queue depth 1 this is byte-for-byte the trait default (per-key
        // lookups in input order), so existing numbers are reproducible.
        if self.disk.queue_depth() <= 1 || keys.len() <= 1 {
            out.clear();
            out.reserve(keys.len());
            for &key in keys {
                out.push(self.lookup(key)?);
            }
            return Ok(());
        }
        out.clear();
        out.resize(keys.len(), None);
        let mut order: Vec<u32> = (0..keys.len() as u32).collect();
        order.sort_unstable_by_key(|&i| keys[i as usize]);
        self.lookup_batch_queued(keys, &order, out)
    }

    fn scan(&self, start: Key, count: usize, out: &mut Vec<Entry>) -> IndexResult<usize> {
        out.clear();
        if count == 0 || !self.loaded {
            if !self.loaded {
                return Err(IndexError::NotInitialized);
            }
            return Ok(0);
        }

        // Entries in the overflow buffer are all below the global minimum, so
        // they come first in key order.
        if start < self.global_min_key && self.overflow_count > 0 {
            let overflow = self.read_overflow(AccessClass::Scan)?;
            for &(k, v) in overflow.iter().filter(|&&(k, _)| k >= start) {
                out.push((k, v));
                if out.len() == count {
                    return Ok(out.len());
                }
            }
        }

        let anchor = start.max(self.global_min_key);
        let (mut meta, mut slot) = self.directory.find(anchor)?;
        let mut first_segment = true;
        loop {
            // Only the blocks that can contain keys >= `start` are fetched:
            // within the first segment the model bounds the start position to
            // within ε, and later segments are read from their beginning.
            let from_pos = if first_segment && start > meta.first_key {
                meta.predict(start).saturating_sub(self.config.epsilon)
            } else {
                0
            };
            first_segment = false;
            let needed = count - out.len();
            let data =
                segment::read_data_from(&self.disk, self.seg_file, &meta, from_pos, start, needed)?;
            let buffer = if meta.buffer_count > 0 {
                read_buffer(&self.disk, self.seg_file, &meta, AccessClass::Scan)?
            } else {
                Vec::new()
            };
            let mut di = data.iter().peekable();
            let mut bi = buffer.iter().peekable();
            while out.len() < count {
                let next = match (di.peek(), bi.peek()) {
                    (Some(&&d), Some(&&b)) => {
                        if d.0 <= b.0 {
                            di.next();
                            d
                        } else {
                            bi.next();
                            b
                        }
                    }
                    (Some(&&d), None) => {
                        di.next();
                        d
                    }
                    (None, Some(&&b)) => {
                        bi.next();
                        b
                    }
                    (None, None) => break,
                };
                if next.0 >= start {
                    out.push(next);
                }
            }
            if out.len() == count {
                return Ok(out.len());
            }
            match self.directory.next_segment(slot)? {
                Some((m, s)) => {
                    meta = m;
                    slot = s;
                }
                None => return Ok(out.len()),
            }
        }
    }

    fn len(&self) -> u64 {
        self.key_count
    }

    fn stats(&self) -> IndexStats {
        IndexStats {
            keys: self.key_count,
            height: self.directory.height() + 1,
            inner_nodes: self.directory.routing_nodes() + self.directory.leaf_nodes(),
            leaf_nodes: self.directory.segment_count(),
            smo_count: self.smo_count,
        }
    }
}

impl IndexWrite for FitingTree {
    fn bulk_load(&mut self, entries: &[Entry]) -> IndexResult<()> {
        if self.loaded {
            return Err(IndexError::AlreadyLoaded);
        }
        validate_bulk_load(entries)?;
        let metas = self.build_segments(entries)?;
        self.global_min_key = metas[0].first_key;
        self.directory.bulk_build(&metas)?;
        self.key_count = entries.len() as u64;
        self.loaded = true;
        Ok(())
    }

    fn insert(&mut self, key: Key, value: Value) -> IndexResult<()> {
        if !self.loaded {
            return Err(IndexError::NotInitialized);
        }
        let before = self.disk.snapshot();

        // Keys below the global minimum go to the overflow buffer (§4.2).
        if key < self.global_min_key {
            let mut overflow = self.read_overflow(AccessClass::Point)?;
            let after_search = self.disk.snapshot();
            self.breakdown.add(InsertStep::Search, &after_search.since(&before));
            match overflow.binary_search_by_key(&key, |&(k, _)| k) {
                Ok(pos) => overflow[pos].1 = value,
                Err(pos) => {
                    overflow.insert(pos, (key, value));
                    self.key_count += 1;
                }
            }
            if overflow.len() <= self.overflow_capacity() {
                self.overflow_count = overflow.len() as u32;
                self.write_overflow(&overflow)?;
                let after_insert = self.disk.snapshot();
                self.breakdown.add(InsertStep::Insert, &after_insert.since(&after_search));
            } else {
                // Overflow buffer full: fold its contents into the first
                // segment via a resegmentation SMO.
                let (first, _) = self.directory.find(self.global_min_key)?;
                self.resegment(first, &overflow)?;
                self.overflow_count = 0;
                self.write_overflow(&[])?;
                let after_smo = self.disk.snapshot();
                self.breakdown.add(InsertStep::Smo, &after_smo.since(&after_search));
            }
            self.breakdown.finish_insert();
            return Ok(());
        }

        let (meta, slot) = self.directory.find(key)?;
        // Search the data region and the buffer to honour upsert semantics.
        let existing = search_data(&self.disk, self.seg_file, &meta, key, self.config.epsilon)?;
        let buffer = if meta.buffer_count > 0 {
            read_buffer(&self.disk, self.seg_file, &meta, AccessClass::Point)?
        } else {
            Vec::new()
        };
        let after_search = self.disk.snapshot();
        self.breakdown.add(InsertStep::Search, &after_search.since(&before));

        if existing.is_some() {
            // Overwrite in place: rewrite the data block holding the key.
            let mut data = read_all_data(&self.disk, self.seg_file, &meta)?;
            if let Ok(pos) = data.binary_search_by_key(&key, |&(k, _)| k) {
                data[pos].1 = value;
            }
            write_data_region(
                &self.disk,
                self.seg_file,
                meta.start_block,
                meta.data_blocks,
                &data,
            )?;
            let after_insert = self.disk.snapshot();
            self.breakdown.add(InsertStep::Insert, &after_insert.since(&after_search));
            self.breakdown.finish_insert();
            return Ok(());
        }

        let mut buffer = buffer;
        match buffer.binary_search_by_key(&key, |&(k, _)| k) {
            Ok(pos) => {
                buffer[pos].1 = value;
                write_buffer_region(&self.disk, self.seg_file, &meta, &buffer)?;
                let after_insert = self.disk.snapshot();
                self.breakdown.add(InsertStep::Insert, &after_insert.since(&after_search));
                self.breakdown.finish_insert();
                return Ok(());
            }
            Err(pos) => buffer.insert(pos, (key, value)),
        }
        self.key_count += 1;

        if buffer.len() <= self.config.buffer_entries
            && buffer.len() <= meta.buffer_capacity(self.disk.block_size()) as usize
        {
            // Normal delta insert: write the buffer and persist the new
            // occupancy in the directory (the paper's "extra block" write).
            write_buffer_region(&self.disk, self.seg_file, &meta, &buffer)?;
            let mut updated = meta;
            updated.buffer_count = buffer.len() as u32;
            self.directory.update_meta(slot, updated)?;
            let after_insert = self.disk.snapshot();
            self.breakdown.add(InsertStep::Insert, &after_insert.since(&after_search));
        } else {
            // Buffer full: resegment the segment together with the new key.
            self.resegment(meta, &[(key, value)])?;
            let after_smo = self.disk.snapshot();
            self.breakdown.add(InsertStep::Smo, &after_smo.since(&after_search));
        }
        self.breakdown.finish_insert();
        Ok(())
    }

    /// Batched inserts fill each segment's delta buffer in one
    /// read-modify-write pass: the entries are sorted, grouped by covering
    /// segment (one directory descent plus one boundary probe per group),
    /// and each group pays the buffer read, the buffer write, the directory
    /// meta update and any data-region overwrite rewrite *once* — the
    /// sequential path pays all four per key. Keys below the global minimum
    /// are likewise folded into the overflow buffer as one group.
    fn insert_batch(&mut self, entries: &[Entry]) -> IndexResult<()> {
        if !self.loaded {
            return Err(IndexError::NotInitialized);
        }
        if entries.is_empty() {
            return Ok(());
        }
        // Stable sort: duplicate keys keep slice order, later entries win.
        let mut order: Vec<u32> = (0..entries.len() as u32).collect();
        order.sort_by_key(|&i| entries[i as usize].0);

        // Group 1: keys below the global minimum go to the overflow buffer
        // (§4.2), merged in one pass; overflowing it folds everything into
        // the first segment with a single resegmentation SMO.
        let below = order.partition_point(|&i| entries[i as usize].0 < self.global_min_key);
        if below > 0 {
            let before = self.disk.snapshot();
            let mut overflow = self.read_overflow(AccessClass::Point)?;
            let after_search = self.disk.snapshot();
            self.breakdown.add(InsertStep::Search, &after_search.since(&before));
            for &i in &order[..below] {
                let (key, value) = entries[i as usize];
                match overflow.binary_search_by_key(&key, |&(k, _)| k) {
                    Ok(pos) => overflow[pos].1 = value,
                    Err(pos) => {
                        overflow.insert(pos, (key, value));
                        self.key_count += 1;
                    }
                }
                self.breakdown.finish_insert();
            }
            if overflow.len() <= self.overflow_capacity() {
                self.overflow_count = overflow.len() as u32;
                self.write_overflow(&overflow)?;
                let after_insert = self.disk.snapshot();
                self.breakdown.add(InsertStep::Insert, &after_insert.since(&after_search));
            } else {
                let (first, _) = self.directory.find(self.global_min_key)?;
                self.resegment(first, &overflow)?;
                self.overflow_count = 0;
                self.write_overflow(&[])?;
                let after_smo = self.disk.snapshot();
                self.breakdown.add(InsertStep::Smo, &after_smo.since(&after_search));
            }
        }

        // Group 2: one pass per covering segment.
        let mut next = below;
        while next < order.len() {
            let before = self.disk.snapshot();
            let (meta, slot) = self.directory.find(entries[order[next] as usize].0)?;
            // The segment covers keys up to (but excluding) the next
            // segment's first key; one directory probe bounds the group.
            let upper = self.directory.next_segment(slot)?.map(|(m, _)| m.first_key);
            let group_end = match upper {
                Some(u) => next + order[next..].partition_point(|&i| entries[i as usize].0 < u),
                None => order.len(),
            };
            let mut buffer = if meta.buffer_count > 0 {
                read_buffer(&self.disk, self.seg_file, &meta, AccessClass::Point)?
            } else {
                Vec::new()
            };
            // Classify each key: buffer overwrite, data-region overwrite, or
            // brand new (appended to the in-memory buffer). `search_data`
            // probes benefit from the sorted order via the reuse slot.
            let mut data_overwrites: Vec<Entry> = Vec::new();
            let mut buffer_dirty = false;
            for &i in &order[next..group_end] {
                let (key, value) = entries[i as usize];
                if let Ok(pos) = buffer.binary_search_by_key(&key, |&(k, _)| k) {
                    buffer[pos].1 = value;
                    buffer_dirty = true;
                } else if search_data(&self.disk, self.seg_file, &meta, key, self.config.epsilon)?
                    .is_some()
                {
                    match data_overwrites.binary_search_by_key(&key, |&(k, _)| k) {
                        Ok(pos) => data_overwrites[pos].1 = value,
                        Err(pos) => data_overwrites.insert(pos, (key, value)),
                    }
                } else {
                    let pos = buffer.partition_point(|&(k, _)| k < key);
                    buffer.insert(pos, (key, value));
                    buffer_dirty = true;
                    self.key_count += 1;
                }
                self.breakdown.finish_insert();
            }
            let after_search = self.disk.snapshot();
            self.breakdown.add(InsertStep::Search, &after_search.since(&before));

            if buffer.len() <= self.config.buffer_entries
                && buffer.len() <= meta.buffer_capacity(self.disk.block_size()) as usize
            {
                // Delta fill: apply data overwrites with one region rewrite,
                // then persist the merged buffer and its occupancy once.
                if !data_overwrites.is_empty() {
                    let mut data = read_all_data(&self.disk, self.seg_file, &meta)?;
                    for &(key, value) in &data_overwrites {
                        if let Ok(pos) = data.binary_search_by_key(&key, |&(k, _)| k) {
                            data[pos].1 = value;
                        }
                    }
                    write_data_region(
                        &self.disk,
                        self.seg_file,
                        meta.start_block,
                        meta.data_blocks,
                        &data,
                    )?;
                }
                if buffer_dirty {
                    write_buffer_region(&self.disk, self.seg_file, &meta, &buffer)?;
                    if buffer.len() != meta.buffer_count as usize {
                        let mut updated = meta;
                        updated.buffer_count = buffer.len() as u32;
                        self.directory.update_meta(slot, updated)?;
                    }
                }
                let after_insert = self.disk.snapshot();
                self.breakdown.add(InsertStep::Insert, &after_insert.since(&after_search));
            } else {
                // The group overflows the delta buffer: fold every pending
                // change (overwrites and fresh keys — `resegment` lets the
                // extras win on duplicates) into fresh segments, once.
                let mut extras = buffer;
                for &(key, value) in &data_overwrites {
                    match extras.binary_search_by_key(&key, |&(k, _)| k) {
                        Ok(pos) => extras[pos].1 = value,
                        Err(pos) => extras.insert(pos, (key, value)),
                    }
                }
                self.resegment(meta, &extras)?;
                let after_smo = self.disk.snapshot();
                self.breakdown.add(InsertStep::Smo, &after_smo.since(&after_search));
            }
            next = group_end;
        }
        Ok(())
    }

    fn insert_breakdown(&self) -> InsertBreakdown {
        self.breakdown
    }

    fn save_meta(&mut self) -> IndexResult<Vec<u8>> {
        // Every block (segments, buffers, directory nodes, overflow) is
        // written eagerly, so the handle's plain fields are the whole state.
        let mut w = MetaWriter::new();
        w.u32(self.seg_file)
            .u64(self.global_min_key)
            .u32(self.overflow_count)
            .u64(self.key_count)
            .u64(self.smo_count)
            .u32(self.directory.file_id())
            .u32(self.directory.root_block())
            .u32(self.directory.height())
            .u64(self.directory.leaf_nodes())
            .u64(self.directory.routing_nodes())
            .u64(self.directory.segment_count());
        Ok(w.finish())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lidx_core::payload_for;
    use lidx_storage::DiskConfig;

    fn tree(block_size: usize) -> FitingTree {
        let disk = Disk::in_memory(DiskConfig::with_block_size(block_size));
        FitingTree::with_config(disk, FitingConfig { epsilon: 16, buffer_entries: 16 }).unwrap()
    }

    fn irregular_entries(n: u64) -> Vec<Entry> {
        // A mildly non-linear distribution so several segments are produced.
        let mut keys: Vec<u64> = (0..n).map(|i| i * 17 + (i % 13) * (i % 7) * 29).collect();
        keys.sort_unstable();
        keys.dedup();
        keys.into_iter().map(|k| (k, payload_for(k))).collect()
    }

    #[test]
    fn bulk_load_and_lookup() {
        let mut t = tree(512);
        let data = irregular_entries(20_000);
        t.bulk_load(&data).unwrap();
        assert_eq!(t.len(), data.len() as u64);
        assert!(t.segment_count() >= 1);
        for &(k, v) in data.iter().step_by(577) {
            assert_eq!(t.lookup(k).unwrap(), Some(v), "key {k}");
        }
        assert_eq!(t.lookup(data.last().unwrap().0 + 1).unwrap(), None);
    }

    #[test]
    fn inserts_go_to_buffers_then_trigger_resegmentation() {
        let mut t = tree(512);
        let data: Vec<Entry> = (0..2_000u64).map(|i| (i * 10, i)).collect();
        t.bulk_load(&data).unwrap();
        let segments_before = t.segment_count();
        // Insert keys that interleave with existing ones.
        for i in 0..1_000u64 {
            t.insert(i * 10 + 5, i).unwrap();
        }
        assert_eq!(t.len(), 3_000);
        assert!(t.stats().smo_count > 0, "buffer overflows must trigger resegmentation");
        assert!(t.segment_count() >= segments_before);
        for i in (0..1_000u64).step_by(97) {
            assert_eq!(t.lookup(i * 10 + 5).unwrap(), Some(i));
        }
        for &(k, v) in data.iter().step_by(131) {
            assert_eq!(t.lookup(k).unwrap(), Some(v));
        }
    }

    #[test]
    fn keys_below_global_minimum_use_the_overflow_buffer() {
        let mut t = tree(512);
        let data: Vec<Entry> = (1_000..2_000u64).map(|k| (k, k + 1)).collect();
        t.bulk_load(&data).unwrap();
        // Insert keys below the bulk-loaded minimum.
        for k in (0..40u64).rev() {
            t.insert(k, k + 1).unwrap();
        }
        for k in (0..40u64).step_by(7) {
            assert_eq!(t.lookup(k).unwrap(), Some(k + 1), "key {k} must be found");
        }
        assert_eq!(t.len(), 1_040);
        // Fill the overflow buffer far enough to force the fold-in SMO
        // (overflow capacity at 512-byte blocks is 32 entries).
        for k in 100..160u64 {
            t.insert(k, k + 1).unwrap();
        }
        assert!(t.stats().smo_count >= 1);
        for k in (0..40u64).chain(100..160) {
            assert_eq!(t.lookup(k).unwrap(), Some(k + 1), "key {k} must survive the SMO");
        }
        // After folding, the global minimum must have moved down.
        assert_eq!(t.lookup(0).unwrap(), Some(1));
    }

    #[test]
    fn upsert_overwrites_in_data_and_buffer() {
        let mut t = tree(512);
        let data: Vec<Entry> = (0..500u64).map(|i| (i * 3, i)).collect();
        t.bulk_load(&data).unwrap();
        t.insert(30, 999).unwrap();
        assert_eq!(t.lookup(30).unwrap(), Some(999));
        assert_eq!(t.len(), 500, "overwriting must not grow the index");
        t.insert(31, 1).unwrap();
        t.insert(31, 2).unwrap();
        assert_eq!(t.lookup(31).unwrap(), Some(2));
        assert_eq!(t.len(), 501);
    }

    #[test]
    fn scan_merges_segments_buffers_and_overflow() {
        let mut t = tree(512);
        let data: Vec<Entry> = (100..1_100u64).map(|k| (k * 2, k)).collect();
        t.bulk_load(&data).unwrap();
        // Buffered entries inside the range plus overflow entries below it.
        t.insert(201, 1).unwrap();
        t.insert(203, 2).unwrap();
        t.insert(50, 3).unwrap();
        let mut out = Vec::new();
        let n = t.scan(40, 10, &mut out).unwrap();
        assert_eq!(n, 10);
        assert_eq!(out[0], (50, 3), "overflow entries come first");
        assert_eq!(out[1], (200, 100));
        assert_eq!(out[2], (201, 1), "buffered entries are merged in key order");
        assert!(out.windows(2).all(|w| w[0].0 < w[1].0));

        // A long scan crosses segment boundaries.
        let n = t.scan(200, 800, &mut out).unwrap();
        assert_eq!(n, 800);
        assert!(out.windows(2).all(|w| w[0].0 < w[1].0));
    }

    #[test]
    fn scan_boundary_cases_match_oracle() {
        let mut t = tree(512);
        let data = irregular_entries(1_200);
        t.bulk_load(&data).unwrap();
        let mut out = Vec::new();

        // count == 0 returns nothing and clears `out`.
        out.push((1, 1));
        assert_eq!(t.scan(data[0].0, 0, &mut out).unwrap(), 0);
        assert!(out.is_empty());

        // Starts above the maximum stored key return nothing.
        let max_key = data.last().unwrap().0;
        for start in [max_key + 1, u64::MAX] {
            assert_eq!(t.scan(start, 10, &mut out).unwrap(), 0, "scan from {start}");
            assert!(out.is_empty());
        }

        // Scanning from every stored key covers every block / segment / node
        // boundary; each result must match the oracle slice exactly.
        for (i, &(k, _)) in data.iter().enumerate() {
            let n = t.scan(k, 5, &mut out).unwrap();
            let expected: Vec<Entry> = data[i..].iter().take(5).copied().collect();
            assert_eq!(n, expected.len(), "scan length from key {k}");
            assert_eq!(out, expected, "scan contents from key {k}");
        }
    }

    #[test]
    fn lookup_fetched_blocks_match_expected_shape() {
        // With ε=16 and 512-byte blocks (32 entries/block) a lookup should
        // fetch the directory path plus one or two data blocks.
        let mut t = tree(512);
        let data: Vec<Entry> = (0..50_000u64).map(|i| (i * 7, i)).collect();
        t.bulk_load(&data).unwrap();
        t.disk().stats().reset();
        t.disk().reset_access_state();
        let mut inner_reads = 0;
        let mut leaf_reads = 0;
        for &(k, _) in data.iter().step_by(911) {
            let before = t.disk().snapshot();
            t.lookup(k).unwrap();
            let d = t.disk().snapshot().since(&before);
            inner_reads += d.reads_of(BlockKind::Inner);
            leaf_reads += d.reads_of(BlockKind::Leaf);
            t.disk().reset_access_state();
        }
        let queries = data.iter().step_by(911).count() as u64;
        assert!(leaf_reads <= queries * 2, "leaf blocks per lookup must stay within 2ε/B + 1");
        assert!(inner_reads >= queries, "every lookup must traverse the directory");
    }

    #[test]
    fn insert_batch_matches_sequential_and_amortises_buffer_writes() {
        let data: Vec<Entry> = (100..2_100u64).map(|k| (k * 10, k)).collect();
        // Mix below-minimum keys (overflow buffer), overwrites of stored and
        // buffered keys, in-batch duplicates and fresh keys spanning several
        // segments.
        let mut batch: Vec<Entry> = (0..600u64).map(|i| (i * 33 + 1_005, i)).collect();
        // After the reverse, (5, 1) is the later occurrence and must win.
        batch.extend([(5, 1), (7, 2), (5, 3), (1_000, 99), (data[50].0, 123)]);
        batch.reverse();

        let mut batched = tree(512);
        batched.bulk_load(&data).unwrap();
        batched.insert_batch(&batch).unwrap();
        let mut sequential = tree(512);
        sequential.bulk_load(&data).unwrap();
        for &(k, v) in &batch {
            sequential.insert(k, v).unwrap();
        }
        assert_eq!(batched.len(), sequential.len());
        assert_eq!(batched.lookup(5).unwrap(), Some(1), "later duplicate wins");
        assert_eq!(batched.lookup(data[50].0).unwrap(), sequential.lookup(data[50].0).unwrap());
        let mut b_scan = Vec::new();
        let mut s_scan = Vec::new();
        batched.scan(0, usize::MAX / 2, &mut b_scan).unwrap();
        sequential.scan(0, usize::MAX / 2, &mut s_scan).unwrap();
        assert_eq!(b_scan, s_scan, "batched and sequential content must be identical");
        assert_eq!(batched.insert_breakdown().inserts, batch.len() as u64);

        // A batch confined to a few segments pays each delta buffer once, so
        // its write count must be far below the per-key loop's.
        let run: Vec<Entry> = (0..64u64).map(|i| (5_000 + i * 10 + 3, i)).collect();
        let mut a = tree(512);
        a.bulk_load(&data).unwrap();
        a.disk().stats().reset();
        a.disk().reset_access_state();
        a.insert_batch(&run).unwrap();
        let batch_writes = a.disk().stats().writes();
        let mut b = tree(512);
        b.bulk_load(&data).unwrap();
        b.disk().stats().reset();
        b.disk().reset_access_state();
        for &(k, v) in &run {
            b.insert(k, v).unwrap();
        }
        let seq_writes = b.disk().stats().writes();
        assert!(
            batch_writes * 2 < seq_writes,
            "batched writes ({batch_writes}) must amortise sequential writes ({seq_writes})"
        );

        let mut empty = tree(512);
        assert!(matches!(empty.insert_batch(&[(1, 1)]), Err(IndexError::NotInitialized)));
    }

    #[test]
    fn unsorted_or_repeated_bulk_load_is_rejected() {
        let mut t = tree(512);
        assert!(t.bulk_load(&[(3, 1), (2, 1)]).is_err());
        t.bulk_load(&[(1, 1), (2, 2)]).unwrap();
        assert!(matches!(t.bulk_load(&[(1, 1)]), Err(IndexError::AlreadyLoaded)));
        let t2 = tree(512);
        assert!(matches!(t2.lookup(1), Err(IndexError::NotInitialized)));
    }

    #[test]
    fn queued_lookup_batch_matches_depth_one_answers_and_overlaps_io() {
        use lidx_storage::DeviceModel;
        let data = irregular_entries(20_000);
        let mut probes: Vec<Key> = data.iter().step_by(19).map(|&(k, _)| k).collect();
        probes.push(data.last().unwrap().0 + 3); // miss above the key space
        probes.push(1); // miss below / between keys
        probes.reverse();
        let config =
            || DiskConfig::with_block_size(512).device(DeviceModel::ssd()).buffer_blocks(64);

        let mut sync = FitingTree::with_config(
            Disk::in_memory(config()),
            FitingConfig { epsilon: 16, buffer_entries: 16 },
        )
        .unwrap();
        sync.bulk_load(&data).unwrap();
        let mut sync_out = Vec::new();
        sync.disk.stats().reset();
        sync.lookup_batch(&probes, &mut sync_out).unwrap();
        let sync_ns = sync.disk.stats().device_ns();

        let mut queued = FitingTree::with_config(
            Disk::in_memory(config().queue_depth(8)),
            FitingConfig { epsilon: 16, buffer_entries: 16 },
        )
        .unwrap();
        queued.bulk_load(&data).unwrap();
        let mut queued_out = Vec::new();
        queued.disk.stats().reset();
        queued.lookup_batch(&probes, &mut queued_out).unwrap();
        let queued_ns = queued.disk.stats().device_ns();

        assert_eq!(queued_out, sync_out, "queued answers must match the sync path");
        assert!(
            queued_ns * 2 < sync_ns,
            "waved segment fetches must overlap device time ({queued_ns} vs {sync_ns})"
        );
        assert!(queued.disk.stats().overlap_saved_ns() > 0);
    }

    #[test]
    fn empty_bulk_load_supports_inserts() {
        let mut t = tree(512);
        t.bulk_load(&[]).unwrap();
        assert_eq!(t.len(), 0);
        for k in 0..100u64 {
            t.insert(k * 5, k).unwrap();
        }
        assert_eq!(t.len(), 100);
        for k in (0..100u64).step_by(9) {
            assert_eq!(t.lookup(k * 5).unwrap(), Some(k));
        }
        let mut out = Vec::new();
        assert_eq!(t.scan(0, 1_000, &mut out).unwrap(), 100);
    }
}
