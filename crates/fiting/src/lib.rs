//! An on-disk FITing-tree with the Delta insert strategy (§2.1 / §4.2).
//!
//! The FITing-tree partitions the sorted key space into *segments*, each
//! covered by a linear model with a bounded prediction error ε, and indexes
//! the segments with a B+-tree. This crate follows the paper's on-disk
//! extensions:
//!
//! * the greedy segmentation is replaced by the same streaming
//!   (shrinking-cone) algorithm PGM uses;
//! * each segment carries a fixed-capacity *delta buffer* holding new
//!   insertions; a full buffer triggers a resegmentation SMO;
//! * an extra overflow buffer (one block) absorbs keys smaller than the
//!   current minimum key, which the original FITing-tree cannot insert;
//! * the per-segment model and occupancy metadata live in the *directory*
//!   (the inner B+-tree), so a lookup fetches only the data blocks that the
//!   error bound allows — this is the property the paper credits for
//!   FITing-tree's small leaf block counts (S1).
//!
//! Module layout: [`segment`] defines the on-disk segment data layout,
//! [`directory`] the inner B+-tree over segment metadata, and [`index`] the
//! [`lidx_core::DiskIndex`] implementation tying them together.

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod directory;
pub mod index;
pub mod segment;

pub use index::{FitingConfig, FitingTree};
pub use segment::SegmentMeta;
