//! The on-disk ALEX tree and its [`DiskIndex`](lidx_core::DiskIndex)
//! implementation.

use std::sync::Arc;

use lidx_core::{
    index::validate_bulk_load, Entry, IndexError, IndexKind, IndexRead, IndexResult, IndexStats,
    IndexWrite, InsertBreakdown, InsertStep, Key, MetaReader, MetaWriter, Value,
};
use lidx_models::LinearModel;
use lidx_storage::{AccessClass, BlockId, BlockKind, Disk, OpClass, SeqHint, INVALID_BLOCK};

use crate::node::{ChildPtr, DataGeometry, DataNode, InnerNode};

/// The two on-disk layouts of Fig. 2.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AlexLayout {
    /// Layout#1: inner nodes and data nodes share a single file.
    SingleFile,
    /// Layout#2: inner nodes and data nodes live in separate files (the
    /// paper measures a 0.5 %–30 % lookup improvement and prefers this).
    TwoFiles,
}

/// Configuration of the on-disk ALEX index.
#[derive(Debug, Clone, Copy)]
pub struct AlexConfig {
    /// File layout (Layout#2 by default, as in the paper).
    pub layout: AlexLayout,
    /// Gapped-array density right after bulk load or an SMO (ALEX defaults
    /// to ~0.7).
    pub leaf_density: f64,
    /// Density threshold that triggers a structural modification.
    pub max_density: f64,
    /// Target number of entries per data node when bulk loading.
    pub target_leaf_entries: usize,
    /// Maximum entries a data node may grow to before it is split instead of
    /// expanded (the paper's data nodes reach 16 MB; scaled down here).
    pub max_leaf_entries: usize,
    /// Maximum fanout of an inner node.
    pub max_fanout: usize,
}

impl Default for AlexConfig {
    fn default() -> Self {
        AlexConfig {
            layout: AlexLayout::TwoFiles,
            leaf_density: 0.7,
            max_density: 0.8,
            target_leaf_entries: 2048,
            max_leaf_entries: 1 << 16,
            max_fanout: 512,
        }
    }
}

/// An on-disk ALEX index.
pub struct AlexIndex {
    disk: Arc<Disk>,
    config: AlexConfig,
    inner_file: u32,
    data_file: u32,
    root: ChildPtr,
    key_count: u64,
    data_nodes: u64,
    inner_nodes: u64,
    height: u32,
    smo_count: u64,
    loaded: bool,
    breakdown: InsertBreakdown,
}

impl AlexIndex {
    /// Creates an empty ALEX index with the default configuration.
    pub fn new(disk: Arc<Disk>) -> IndexResult<Self> {
        Self::with_config(disk, AlexConfig::default())
    }

    /// Creates an empty ALEX index with an explicit configuration.
    pub fn with_config(disk: Arc<Disk>, config: AlexConfig) -> IndexResult<Self> {
        assert!(config.leaf_density > 0.1 && config.leaf_density < config.max_density);
        assert!(config.max_density <= 1.0);
        assert!(config.target_leaf_entries >= 16);
        assert!(config.max_fanout >= 2);
        let inner_file = disk.create_file()?;
        let data_file = match config.layout {
            AlexLayout::SingleFile => inner_file,
            AlexLayout::TwoFiles => disk.create_file()?,
        };
        Ok(AlexIndex {
            disk,
            config,
            inner_file,
            data_file,
            root: ChildPtr { is_data: true, block: INVALID_BLOCK },
            key_count: 0,
            data_nodes: 0,
            inner_nodes: 0,
            height: 0,
            smo_count: 0,
            loaded: false,
            breakdown: InsertBreakdown::new(),
        })
    }

    /// Reopens an ALEX index from [`IndexWrite::save_meta`] bytes against a
    /// disk that already holds its blocks. `config` must match the one the
    /// index was created with (including the layout).
    pub fn load(disk: Arc<Disk>, config: AlexConfig, meta: &[u8]) -> IndexResult<Self> {
        let mut r = MetaReader::new(meta);
        let inner_file = r.u32()?;
        let data_file = r.u32()?;
        let root_is_data = r.u32()? != 0;
        let root_block = r.u32()?;
        let key_count = r.u64()?;
        let data_nodes = r.u64()?;
        let inner_nodes = r.u64()?;
        let height = r.u32()?;
        let smo_count = r.u64()?;
        Ok(AlexIndex {
            disk,
            config,
            inner_file,
            data_file,
            root: ChildPtr { is_data: root_is_data, block: root_block },
            key_count,
            data_nodes,
            inner_nodes,
            height,
            smo_count,
            loaded: true,
            breakdown: InsertBreakdown::new(),
        })
    }

    /// The layout in use.
    pub fn layout(&self) -> AlexLayout {
        self.config.layout
    }

    fn capacity_for(&self, len: usize) -> u32 {
        ((len as f64 / self.config.leaf_density).ceil() as usize).max(len + 8).max(16) as u32
    }

    /// Allocates and builds a data node for `entries`.
    fn make_data_node(
        &mut self,
        entries: &[Entry],
        prev: BlockId,
        next: BlockId,
    ) -> IndexResult<DataNode> {
        let capacity = self.capacity_for(entries.len());
        let geo = DataGeometry::for_capacity(capacity, self.disk.block_size());
        let start = self.disk.allocate(self.data_file, geo.total_blocks())?;
        let node =
            DataNode::build(&self.disk, self.data_file, start, capacity, entries, prev, next)?;
        self.data_nodes += 1;
        Ok(node)
    }

    /// Recursively builds a subtree for `entries`, appending every created
    /// data node to `leaves` in key order (sibling links are fixed up by the
    /// caller).
    fn build_subtree(
        &mut self,
        entries: &[Entry],
        leaves: &mut Vec<DataNode>,
        depth: u32,
    ) -> IndexResult<ChildPtr> {
        self.height = self.height.max(depth + 1);
        if entries.len() <= self.config.target_leaf_entries {
            let node = self.make_data_node(entries, INVALID_BLOCK, INVALID_BLOCK)?;
            let ptr = ChildPtr { is_data: true, block: node.start };
            leaves.push(node);
            return Ok(ptr);
        }

        let keys: Vec<Key> = entries.iter().map(|e| e.0).collect();
        let fanout = (entries.len() / self.config.target_leaf_entries)
            .next_power_of_two()
            .clamp(2, self.config.max_fanout);
        let model = LinearModel::fit_keys(&keys).rescale(entries.len(), fanout);

        // Model-based partition: bucket of entry i is the predicted child.
        let mut boundaries = Vec::with_capacity(fanout + 1);
        boundaries.push(0usize);
        let mut current = 0usize;
        for b in 1..fanout {
            // First index whose predicted bucket is >= b.
            while current < entries.len() && model.predict_clamped(entries[current].0, fanout) < b {
                current += 1;
            }
            boundaries.push(current);
        }
        boundaries.push(entries.len());

        let largest =
            (0..fanout).map(|b| boundaries[b + 1] - boundaries[b]).max().unwrap_or(entries.len());
        if largest == entries.len() {
            // The model failed to separate the keys (extremely clustered
            // data): fall back to one big data node, as ALEX's cost model
            // would rather than build useless inner levels.
            let node = self.make_data_node(entries, INVALID_BLOCK, INVALID_BLOCK)?;
            let ptr = ChildPtr { is_data: true, block: node.start };
            leaves.push(node);
            return Ok(ptr);
        }

        let mut children: Vec<Option<ChildPtr>> = vec![None; fanout];
        for b in 0..fanout {
            let slice = &entries[boundaries[b]..boundaries[b + 1]];
            if !slice.is_empty() {
                children[b] = Some(self.build_subtree(slice, leaves, depth + 1)?);
            }
        }
        // Empty buckets share the nearest preceding child (or the first
        // following one for leading empties), mirroring ALEX's duplicated
        // child pointers.
        let first_some = children
            .iter()
            .flatten()
            .next()
            .copied()
            .ok_or_else(|| IndexError::Internal("inner node built with no children".into()))?;
        let mut fill = first_some;
        let resolved: Vec<ChildPtr> = children
            .into_iter()
            .map(|c| {
                if let Some(p) = c {
                    fill = p;
                }
                fill
            })
            .collect();

        let blocks = InnerNode::blocks_for(resolved.len() as u32, self.disk.block_size());
        let start = self.disk.allocate(self.inner_file, blocks)?;
        InnerNode::build(&self.disk, self.inner_file, start, model, &resolved)?;
        self.inner_nodes += 1;
        Ok(ChildPtr { is_data: false, block: start })
    }

    /// Descends from the root to the data node covering `key`, returning the
    /// inner-node path (node handle + chosen child index) and the data node.
    fn descend(&self, key: Key) -> IndexResult<(Vec<(InnerNode, u32)>, DataNode)> {
        if !self.loaded {
            return Err(IndexError::NotInitialized);
        }
        let mut path = Vec::new();
        let mut ptr = self.root;
        while !ptr.is_data {
            let node = InnerNode::load(&self.disk, self.inner_file, ptr.block)?;
            let idx = node.child_index(key);
            let child = node.child_at(&self.disk, idx)?;
            path.push((node, idx));
            ptr = child;
        }
        let data = DataNode::load(&self.disk, self.data_file, ptr.block)?;
        Ok((path, data))
    }

    /// Repoints the parent of an SMO'd node (or the root) to `new_ptr`.
    fn repoint_parent(
        &mut self,
        path: &[(InnerNode, u32)],
        old_block: BlockId,
        new_ptr: ChildPtr,
    ) -> IndexResult<()> {
        match path.last() {
            None => {
                self.root = new_ptr;
                Ok(())
            }
            Some((parent, idx)) => {
                // The model may map several consecutive indexes to the same
                // child; repoint every pointer that referenced the old node.
                let mut i = *idx;
                loop {
                    parent.set_child(&self.disk, i, new_ptr)?;
                    if i == 0 {
                        break;
                    }
                    let prev = parent.child_at(&self.disk, i - 1)?;
                    if prev.is_data && prev.block == old_block {
                        i -= 1;
                    } else {
                        break;
                    }
                }
                let mut i = *idx + 1;
                while i < parent.header.children {
                    let nxt = parent.child_at(&self.disk, i)?;
                    if nxt.is_data && nxt.block == old_block {
                        parent.set_child(&self.disk, i, new_ptr)?;
                        i += 1;
                    } else {
                        break;
                    }
                }
                Ok(())
            }
        }
    }

    /// Fixes the sibling links of the nodes adjacent to a rebuilt node.
    fn relink_neighbours(
        &mut self,
        prev: BlockId,
        next: BlockId,
        new_first: BlockId,
        new_last: BlockId,
    ) -> IndexResult<()> {
        if prev != INVALID_BLOCK {
            let mut n = DataNode::load(&self.disk, self.data_file, prev)?;
            n.header.next = new_first;
            n.write_header(&self.disk)?;
        }
        if next != INVALID_BLOCK {
            let mut n = DataNode::load(&self.disk, self.data_file, next)?;
            n.header.prev = new_last;
            n.write_header(&self.disk)?;
        }
        Ok(())
    }

    /// Runs a structural modification operation on a full data node: either
    /// expands it in place (doubling the capacity) or splits it downward into
    /// a new two-child inner node.
    fn smo(&mut self, path: &[(InnerNode, u32)], node: DataNode) -> IndexResult<()> {
        self.smo_count += 1;
        // The SMO is the learned-index pause the paper attributes tail
        // latency to: time the whole operation and count it, off a local
        // Arc so the span does not pin a borrow of `self`.
        let telemetry = Arc::clone(&self.disk);
        let _span = telemetry.telemetry().span(OpClass::Smo);
        telemetry.telemetry().add(OpClass::Smo, 1);
        let mut entries = Vec::with_capacity(node.header.count as usize);
        node.collect_entries(&self.disk, &mut entries)?;
        let old_blocks = node.total_blocks(self.disk.block_size());
        let prev = node.header.prev;
        let next = node.header.next;
        self.disk.free(self.data_file, node.start, old_blocks);
        self.data_nodes -= 1;

        // A split partitions the entries with the 2-way routing model's own
        // (floating-point) prediction, never by key comparison: descents
        // route through `predict_clamped`, and a model whose prediction at
        // the boundary key rounds to 0.999… would send that key to the left
        // child forever while a comparison-based split stored it right — a
        // lost key. Evaluating the same expression at split time makes the
        // placement and every future descent agree bit for bit. The split
        // plan degenerates (one side empty) only when rounding collapses
        // the routing entirely; expansion handles that case.
        let grown_capacity = (node.header.capacity as usize * 2).max(32);
        let mut split_plan = None;
        if grown_capacity > self.config.max_leaf_entries && entries.len() >= 2 {
            let mid = entries.len() / 2;
            let model = LinearModel::from_points(entries[0].0, 0.0, entries[mid].0, 1.0);
            let split_at = entries.partition_point(|&(k, _)| model.predict_clamped(k, 2) == 0);
            if split_at > 0 && split_at < entries.len() {
                split_plan = Some((model, split_at));
            }
        }
        if let Some((model, split_at)) = split_plan {
            // Split downward: two data nodes under a fresh 2-way inner node.
            let (left_entries, right_entries) = entries.split_at(split_at);
            let left = self.make_data_node(left_entries, prev, INVALID_BLOCK)?;
            let right = self.make_data_node(right_entries, left.start, next)?;
            let mut left = left;
            left.header.next = right.start;
            left.write_header(&self.disk)?;
            self.relink_neighbours(prev, next, left.start, right.start)?;

            let blocks = InnerNode::blocks_for(2, self.disk.block_size());
            let start = self.disk.allocate(self.inner_file, blocks)?;
            InnerNode::build(
                &self.disk,
                self.inner_file,
                start,
                model,
                &[
                    ChildPtr { is_data: true, block: left.start },
                    ChildPtr { is_data: true, block: right.start },
                ],
            )?;
            self.inner_nodes += 1;
            self.height += 1;
            self.repoint_parent(path, node.start, ChildPtr { is_data: false, block: start })?;
        } else {
            // Expansion: rebuild with double capacity and a retrained model.
            let capacity = grown_capacity.max(self.capacity_for(entries.len()) as usize) as u32;
            let geo = DataGeometry::for_capacity(capacity, self.disk.block_size());
            let start = self.disk.allocate(self.data_file, geo.total_blocks())?;
            let new =
                DataNode::build(&self.disk, self.data_file, start, capacity, &entries, prev, next)?;
            self.data_nodes += 1;
            self.relink_neighbours(prev, next, new.start, new.start)?;
            self.repoint_parent(path, node.start, ChildPtr { is_data: true, block: new.start })?;
        }
        Ok(())
    }

    /// Attempts the actual slot insertion into `node`. Returns `false` if the
    /// node is too full and an SMO is required first.
    fn try_insert_into(
        &mut self,
        node: &mut DataNode,
        key: Key,
        value: Value,
    ) -> IndexResult<bool> {
        let capacity = node.header.capacity;
        if (node.header.count + 1) as f64 > capacity as f64 * self.config.max_density {
            return Ok(false);
        }
        let lb = node.lower_bound(&self.disk, key)?;

        // Upsert: overwrite every duplicate of an existing key so gap copies
        // stay consistent with the real slot.
        if lb < capacity {
            let (k, _) = node.read_slot(&self.disk, lb)?;
            if k == key && node.header.count > 0 {
                // Ensure the key really exists (a gap can duplicate a key only
                // if the real occurrence exists somewhere in the node).
                let mut s = lb;
                while s < capacity {
                    let (k2, _) = node.read_slot(&self.disk, s)?;
                    if k2 != key {
                        break;
                    }
                    node.write_slot(&self.disk, s, (key, value))?;
                    s += 1;
                }
                return Ok(true);
            }
        }

        // Fresh insert. Prefer the gap immediately left of the lower bound.
        let inserted_shifts;
        if lb > 0 && !node.read_bit(&self.disk, lb - 1)? {
            node.write_slot(&self.disk, lb - 1, (key, value))?;
            node.set_bit(&self.disk, lb - 1, true)?;
            inserted_shifts = 0;
        } else {
            // Find the first gap at or after the lower bound and shift the
            // occupied run one slot to the right.
            let mut gap = None;
            let mut s = lb;
            while s < capacity {
                if !node.read_bit(&self.disk, s)? {
                    gap = Some(s);
                    break;
                }
                s += 1;
            }
            let Some(gap) = gap else {
                return Ok(false);
            };
            // Shift [lb, gap) right by one, block-wise, then place the key.
            node.shift_right(&self.disk, lb, gap)?;
            node.write_slot(&self.disk, lb, (key, value))?;
            node.set_bit(&self.disk, gap, true)?;
            inserted_shifts = (gap - lb) as u64;
        }

        node.header.count += 1;
        node.header.num_inserts += 1;
        node.header.num_shifts += inserted_shifts;
        self.key_count += 1;
        Ok(true)
    }

    /// Routes `key` through the inner levels only, returning the start block
    /// of the covering data node without touching the data file. This is the
    /// descent the outstanding-read batch uses: it resolves *where* every
    /// probe lands first, so the data-node header fetches can ride one
    /// submission wave instead of being paid one blocking latency at a time.
    fn route(&self, key: Key) -> IndexResult<BlockId> {
        let mut ptr = self.root;
        while !ptr.is_data {
            let node = InnerNode::load(&self.disk, self.inner_file, ptr.block)?;
            let idx = node.child_index(key);
            ptr = node.child_at(&self.disk, idx)?;
        }
        Ok(ptr.block)
    }

    /// The outstanding-I/O variant of [`lookup_batch`](IndexRead::lookup_batch)
    /// used when the disk's queue depth exceeds 1: probes are routed through
    /// the (pool-resident) inner levels first, then the data-node header
    /// blocks are fetched as one completion wave, then every probe's
    /// predicted slot block is prefetched as a second wave; the final
    /// in-node probes consume the parked frames, with only exponential-search
    /// spillover reads left synchronous. Answers are identical to the
    /// synchronous batch — the queue only overlaps the simulated latencies.
    fn lookup_batch_queued(
        &self,
        keys: &[Key],
        order: &[u32],
        out: &mut [Option<Value>],
    ) -> IndexResult<()> {
        // Phase 1: route every probe; model routing is monotone in the key,
        // so probes landing in the same data node are consecutive in sorted
        // order and grouping is a plain run-length pass.
        let mut groups: Vec<(BlockId, Vec<u32>)> = Vec::new();
        for &i in order {
            let start = self.route(keys[i as usize])?;
            match groups.last_mut() {
                Some((block, idxs)) if *block == start => idxs.push(i),
                _ => groups.push((start, vec![i])),
            }
        }

        // Phase 2: one wave over the distinct data-node header blocks.
        let mut q = self.disk.read_queue();
        let mut header_blocks = std::collections::BTreeSet::new();
        for &(start, _) in &groups {
            header_blocks.insert(start);
        }
        for &start in &header_blocks {
            q.submit(self.data_file, start, BlockKind::Leaf, AccessClass::Point)?;
        }
        let mut nodes = std::collections::HashMap::new();
        for c in q.complete()? {
            nodes.insert(c.block, DataNode::from_header_bytes(self.data_file, c.block, &c.frame)?);
        }

        // Phase 3: one wave prefetching every probe's predicted slot block.
        let mut slot_blocks = std::collections::BTreeSet::new();
        for (start, idxs) in &groups {
            let node = &nodes[start];
            for &i in idxs {
                let slot = node.predict(keys[i as usize]);
                slot_blocks.insert(node.slot_block_id(&self.disk, slot));
            }
        }
        for &block in &slot_blocks {
            q.prefetch(self.data_file, block, BlockKind::Leaf, AccessClass::Point, SeqHint::Auto)?;
        }
        q.flush()?;

        // Phase 4: answer from the parked frames.
        for (start, idxs) in &groups {
            let node = &nodes[start];
            for &i in idxs {
                out[i as usize] = node.lookup(&self.disk, keys[i as usize])?;
            }
        }
        Ok(())
    }

    /// Writes the deferred statistics header of a batch-cached leaf, if any
    /// (the once-per-touched-node maintenance write of `insert_batch`).
    fn flush_cached_leaf(&mut self, cached: &mut Option<CachedLeaf>) -> IndexResult<()> {
        if let Some(c) = cached.take() {
            if c.dirty {
                let before = self.disk.snapshot();
                c.node.write_header(&self.disk)?;
                self.breakdown.add(InsertStep::Maintenance, &self.disk.snapshot().since(&before));
            }
        }
        Ok(())
    }
}

/// The leaf a batched insert is currently filling: its in-memory header is
/// authoritative (the on-disk copy is stale until the deferred maintenance
/// write), so the batch must route follow-up keys to this handle instead of
/// re-loading the node from disk.
struct CachedLeaf {
    /// The inner-node path that led here, kept for a potential SMO.
    path: Vec<(InnerNode, u32)>,
    node: DataNode,
    /// True once an insert changed the occupancy statistics.
    dirty: bool,
    /// A key known to route to this node; by monotonicity of the model
    /// routing, every key in `[witness, max]` provably descends here.
    witness: Key,
    /// The node's largest stored key, fetched lazily (one slot read) on the
    /// first reuse attempt.
    max: Option<Key>,
}

impl IndexRead for AlexIndex {
    fn kind(&self) -> IndexKind {
        IndexKind::Alex
    }

    fn disk(&self) -> &Arc<Disk> {
        &self.disk
    }

    fn lookup(&self, key: Key) -> IndexResult<Option<Value>> {
        let (_, data) = self.descend(key)?;
        data.lookup(&self.disk, key)
    }

    /// Batched lookups sort the probe keys and descend once per *run* of
    /// keys landing in the same data node: the inner-node routing blocks and
    /// the node's header block are fetched once per run instead of once per
    /// key. Model routing is monotone in the key, so any probe between two
    /// keys stored in the pinned node provably descends to that same node;
    /// probes beyond its largest key re-descend, exactly like a sequential
    /// lookup. The node's key bound (one slot read) is fetched lazily, only
    /// once a second probe lands in the same node — a batch of scattered
    /// probes (one per node) therefore costs exactly what the sequential
    /// loop costs, never more.
    fn lookup_batch(&self, keys: &[Key], out: &mut Vec<Option<Value>>) -> IndexResult<()> {
        out.clear();
        if keys.is_empty() {
            return Ok(());
        }
        if !self.loaded {
            return Err(IndexError::NotInitialized);
        }
        out.resize(keys.len(), None);
        let mut order: Vec<u32> = (0..keys.len() as u32).collect();
        order.sort_unstable_by_key(|&i| keys[i as usize]);
        if self.disk.queue_depth() > 1 {
            return self.lookup_batch_queued(keys, &order, out);
        }
        // The pinned node and its largest stored key (fetched on the second
        // consecutive landing; empty nodes are never pinned).
        let mut current: Option<(DataNode, Option<Key>)> = None;
        for &i in &order {
            let key = keys[i as usize];
            if let Some((node, Some(max))) = &current {
                if key <= *max {
                    out[i as usize] = node.lookup(&self.disk, key)?;
                    continue;
                }
            }
            let (_, node) = self.descend(key)?;
            if node.header.count == 0 {
                // An empty node answers every probe with a miss.
                current = None;
                continue;
            }
            out[i as usize] = node.lookup(&self.disk, key)?;
            match &mut current {
                Some((cached, max)) if cached.start == node.start => {
                    if max.is_none() {
                        *max = Some(node.max_key(&self.disk)?);
                    }
                }
                _ => current = Some((node, None)),
            }
        }
        Ok(())
    }

    fn scan(&self, start: Key, count: usize, out: &mut Vec<Entry>) -> IndexResult<usize> {
        out.clear();
        if count == 0 {
            if !self.loaded {
                return Err(IndexError::NotInitialized);
            }
            return Ok(0);
        }
        let (_, mut node) = self.descend(start)?;
        let mut slot = node.lower_bound(&self.disk, start)?;
        loop {
            // The bitmap distinguishes real entries from gap duplicates — the
            // extra utility I/O the paper highlights for ALEX scans (S3). The
            // scan fetches each bitmap block and each slot block once and
            // walks them in memory.
            node.scan_slots(&self.disk, slot, start, count, out)?;
            if out.len() >= count || node.header.next == INVALID_BLOCK {
                return Ok(out.len());
            }
            node = DataNode::load_scan(&self.disk, self.data_file, node.header.next)?;
            slot = 0;
        }
    }

    fn len(&self) -> u64 {
        self.key_count
    }

    fn stats(&self) -> IndexStats {
        IndexStats {
            keys: self.key_count,
            height: self.height,
            inner_nodes: self.inner_nodes,
            leaf_nodes: self.data_nodes,
            smo_count: self.smo_count,
        }
    }
}

impl IndexWrite for AlexIndex {
    fn bulk_load(&mut self, entries: &[Entry]) -> IndexResult<()> {
        if self.loaded {
            return Err(IndexError::AlreadyLoaded);
        }
        validate_bulk_load(entries)?;
        let mut leaves = Vec::new();
        self.root = self.build_subtree(entries, &mut leaves, 0)?;
        // Fix up sibling links across the whole leaf level.
        for i in 0..leaves.len() {
            leaves[i].header.prev = if i > 0 { leaves[i - 1].start } else { INVALID_BLOCK };
            leaves[i].header.next =
                if i + 1 < leaves.len() { leaves[i + 1].start } else { INVALID_BLOCK };
            leaves[i].write_header(&self.disk)?;
        }
        self.key_count = entries.len() as u64;
        self.loaded = true;
        Ok(())
    }

    fn insert(&mut self, key: Key, value: Value) -> IndexResult<()> {
        if !self.loaded {
            return Err(IndexError::NotInitialized);
        }
        loop {
            let before = self.disk.snapshot();
            let (path, mut node) = self.descend(key)?;
            let after_search = self.disk.snapshot();
            self.breakdown.add(InsertStep::Search, &after_search.since(&before));

            let prior_count = node.header.count;
            if self.try_insert_into(&mut node, key, value)? {
                let after_insert = self.disk.snapshot();
                self.breakdown.add(InsertStep::Insert, &after_insert.since(&after_search));
                if node.header.count != prior_count {
                    // Persist the updated occupancy and cost-model statistics
                    // (the maintenance overhead of Fig. 6).
                    node.write_header(&self.disk)?;
                    let after_maintenance = self.disk.snapshot();
                    self.breakdown
                        .add(InsertStep::Maintenance, &after_maintenance.since(&after_insert));
                }
                self.breakdown.finish_insert();
                return Ok(());
            }

            // The node was too full: run the SMO and retry.
            self.smo(&path, node)?;
            let after_smo = self.disk.snapshot();
            self.breakdown.add(InsertStep::Smo, &after_smo.since(&after_search));
        }
    }

    /// Batched inserts keep the current leaf's statistics header in memory
    /// and write it once per touched node per batch instead of once per key
    /// — the maintenance-batching counterpart of `lookup_batch`'s pinned
    /// descent. A key reuses the cached leaf when it provably routes there
    /// (`witness <= key <= max`, monotone model routing); any other key
    /// first flushes the deferred header, so the on-disk statistics are
    /// never stale when a node is re-loaded. SMOs receive the cached
    /// in-memory header (the authoritative occupancy), and the freed node's
    /// deferred write is simply dropped.
    fn insert_batch(&mut self, entries: &[Entry]) -> IndexResult<()> {
        if !self.loaded {
            return Err(IndexError::NotInitialized);
        }
        let mut cached: Option<CachedLeaf> = None;
        for &(key, value) in entries {
            loop {
                // Route the key: reuse the cached leaf when possible.
                let mut hit = false;
                if let Some(c) = cached.as_mut() {
                    if key >= c.witness {
                        if c.max.is_none() && c.node.header.count > 0 {
                            c.max = Some(c.node.max_key(&self.disk)?);
                        }
                        hit = c.max.is_some_and(|m| key <= m);
                    }
                }
                if !hit {
                    self.flush_cached_leaf(&mut cached)?;
                    let before = self.disk.snapshot();
                    let (path, node) = self.descend(key)?;
                    self.breakdown.add(InsertStep::Search, &self.disk.snapshot().since(&before));
                    cached = Some(CachedLeaf { path, node, dirty: false, witness: key, max: None });
                }

                let c = cached.as_mut().expect("cached leaf just resolved");
                let before = self.disk.snapshot();
                let prior_count = c.node.header.count;
                if self.try_insert_into(&mut c.node, key, value)? {
                    self.breakdown.add(InsertStep::Insert, &self.disk.snapshot().since(&before));
                    if c.node.header.count != prior_count {
                        c.dirty = true;
                    }
                    break;
                }

                // Too full: SMO with the authoritative in-memory header and
                // the cached parent path, then retry this key. The freed
                // node's deferred header write is dropped with it.
                let c = cached.take().expect("cached leaf just resolved");
                let before_smo = self.disk.snapshot();
                self.smo(&c.path, c.node)?;
                self.breakdown.add(InsertStep::Smo, &self.disk.snapshot().since(&before_smo));
            }
            self.breakdown.finish_insert();
        }
        self.flush_cached_leaf(&mut cached)
    }

    fn insert_breakdown(&self) -> InsertBreakdown {
        self.breakdown
    }

    fn save_meta(&mut self) -> IndexResult<Vec<u8>> {
        // Node blocks (inner and data, headers included) are written eagerly,
        // so the handle's plain fields are the whole state.
        let mut w = MetaWriter::new();
        w.u32(self.inner_file)
            .u32(self.data_file)
            .u32(self.root.is_data as u32)
            .u32(self.root.block)
            .u64(self.key_count)
            .u64(self.data_nodes)
            .u64(self.inner_nodes)
            .u32(self.height)
            .u64(self.smo_count);
        Ok(w.finish())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lidx_storage::{BlockKind, DiskConfig};

    fn index(bs: usize) -> AlexIndex {
        let disk = Disk::in_memory(DiskConfig::with_block_size(bs));
        AlexIndex::with_config(
            disk,
            AlexConfig { target_leaf_entries: 128, max_leaf_entries: 1024, ..Default::default() },
        )
        .unwrap()
    }

    fn entries(n: u64, stride: u64) -> Vec<Entry> {
        (0..n).map(|i| (i * stride + 1, i * stride + 2)).collect()
    }

    fn skewed(n: u64) -> Vec<Entry> {
        let mut keys: Vec<u64> = (0..n).map(|i| i * 5 + (i % 97) * (i % 13)).collect();
        keys.sort_unstable();
        keys.dedup();
        keys.into_iter().map(|k| (k, k + 1)).collect()
    }

    #[test]
    fn split_partition_agrees_with_the_routing_model() {
        // Regression: the 2-way split used to partition entries by key
        // comparison at the midpoint while descents route through the
        // model's floating-point prediction. For this insert sequence the
        // split boundary key 238703 predicts 0.999...9 (one ulp below 1.0),
        // so the comparison-stored right half and the model-routed left
        // child disagreed and lookups lost the key. The split now
        // partitions with the model itself, so placement and routing agree
        // bit for bit.
        let mut x = 12345u64;
        let mut rnd = move || {
            x ^= x << 13;
            x ^= x >> 7;
            x ^= x << 17;
            x
        };
        let n_bulk = 20 + (rnd() % 180) as usize;
        let bulk_set: std::collections::BTreeSet<u64> =
            (0..n_bulk).map(|_| rnd() % 400_000).collect();
        let bulk: Vec<Entry> = bulk_set.iter().map(|&k| (k, k + 1)).collect();
        assert!(bulk_set.contains(&238703), "the regression key must be bulk loaded");
        let disk = Disk::in_memory(DiskConfig::with_block_size(4096));
        let mut a = AlexIndex::new(disk).unwrap();
        a.bulk_load(&bulk).unwrap();
        let inserts = [
            (443584u64, 0u64),
            (230089, 1),
            (235439, 2),
            (414753, 3),
            (255476, 4),
            (381092, 5),
            (449409, 6),
        ];
        let mut oracle: std::collections::BTreeMap<Key, Value> = bulk.iter().copied().collect();
        for &(k, v) in &inserts {
            a.insert(k, v).unwrap();
            oracle.insert(k, v);
            // Every key must stay reachable through every SMO.
            for (&ok, &ov) in &oracle {
                assert_eq!(a.lookup(ok).unwrap(), Some(ov), "key {ok} lost after insert {k}");
            }
        }
        assert_eq!(a.lookup(238703).unwrap(), Some(238704));
    }

    #[test]
    fn bulk_load_builds_a_tree_and_serves_lookups() {
        let mut a = index(512);
        let data = skewed(20_000);
        a.bulk_load(&data).unwrap();
        assert_eq!(a.len(), data.len() as u64);
        let s = a.stats();
        assert!(s.inner_nodes >= 1, "20k keys with 128-entry leaves need inner nodes");
        assert!(s.leaf_nodes > 10);
        assert!(s.height >= 2);
        for &(k, v) in data.iter().step_by(509) {
            assert_eq!(a.lookup(k).unwrap(), Some(v), "key {k}");
        }
        assert_eq!(a.lookup(data.last().unwrap().0 + 7).unwrap(), None);
    }

    #[test]
    fn lookup_reads_header_plus_slot_blocks() {
        let mut a = index(4096);
        let data = entries(100_000, 3);
        a.bulk_load(&data).unwrap();
        a.disk().stats().reset();
        let queries: Vec<Key> = data.iter().step_by(1013).map(|e| e.0).collect();
        for &k in &queries {
            a.disk().reset_access_state();
            a.lookup(k).unwrap();
        }
        let per_query = a.disk().stats().reads() as f64 / queries.len() as f64;
        // Inner level(s) + data node header + slot block: ALEX reads at least
        // 2 leaf blocks per lookup (the paper's Table 4 shows 2.0–2.6).
        let leaf_per_query =
            a.disk().stats().reads_of(BlockKind::Leaf) as f64 / queries.len() as f64;
        assert!(leaf_per_query >= 2.0, "got {leaf_per_query} leaf blocks per lookup");
        assert!(per_query <= 8.0, "got {per_query} blocks per lookup");
        // Lookups never touch the bitmap.
        assert_eq!(a.disk().stats().reads_of(BlockKind::Utility), 0);
    }

    #[test]
    fn inserts_fill_gaps_then_trigger_smos() {
        let mut a = index(512);
        let data = entries(2_000, 10);
        a.bulk_load(&data).unwrap();
        for i in 0..3_000u64 {
            a.insert(i * 7 + 2, i).unwrap();
        }
        assert!(a.stats().smo_count > 0, "density overflow must trigger SMOs");
        for i in (0..3_000u64).step_by(211) {
            assert_eq!(a.lookup(i * 7 + 2).unwrap(), Some(i), "inserted key {}", i * 7 + 2);
        }
        for &(k, v) in data.iter().step_by(173) {
            if k >= 2 && (k - 2) % 7 == 0 {
                continue; // overwritten by the insert loop
            }
            assert_eq!(a.lookup(k).unwrap(), Some(v), "bulk key {k}");
        }
    }

    #[test]
    fn upsert_keeps_gap_duplicates_consistent() {
        let mut a = index(512);
        a.bulk_load(&entries(500, 3)).unwrap();
        a.insert(1, 777).unwrap();
        assert_eq!(a.lookup(1).unwrap(), Some(777));
        assert_eq!(a.len(), 500, "upsert must not grow the index");
        // A scan must also observe the new value exactly once.
        let mut out = Vec::new();
        a.scan(1, 3, &mut out).unwrap();
        assert_eq!(out[0], (1, 777));
        assert_eq!(out.len(), 3);
        assert!(out.windows(2).all(|w| w[0].0 < w[1].0));
    }

    #[test]
    fn scan_boundary_cases_match_oracle() {
        let mut t = index(512);
        let data = entries(1_500, 5);
        t.bulk_load(&data).unwrap();
        let mut out = Vec::new();

        // count == 0 returns nothing and clears `out`.
        out.push((1, 1));
        assert_eq!(t.scan(data[0].0, 0, &mut out).unwrap(), 0);
        assert!(out.is_empty());

        // Starts above the maximum stored key return nothing.
        let max_key = data.last().unwrap().0;
        for start in [max_key + 1, u64::MAX] {
            assert_eq!(t.scan(start, 10, &mut out).unwrap(), 0, "scan from {start}");
            assert!(out.is_empty());
        }

        // Scanning from every stored key covers every block / segment / node
        // boundary; each result must match the oracle slice exactly.
        for (i, &(k, _)) in data.iter().enumerate() {
            let n = t.scan(k, 5, &mut out).unwrap();
            let expected: Vec<Entry> = data[i..].iter().take(5).copied().collect();
            assert_eq!(n, expected.len(), "scan length from key {k}");
            assert_eq!(out, expected, "scan contents from key {k}");
        }
    }

    #[test]
    fn scan_crosses_data_nodes_in_key_order() {
        let mut a = index(512);
        let data = skewed(10_000);
        a.bulk_load(&data).unwrap();
        let start_idx = 4_321;
        let mut out = Vec::new();
        let n = a.scan(data[start_idx].0, 500, &mut out).unwrap();
        assert_eq!(n, 500);
        assert_eq!(out[0], data[start_idx]);
        assert_eq!(out[499], data[start_idx + 499]);
        assert!(out.windows(2).all(|w| w[0].0 < w[1].0));
        // Scans must consult the bitmap (utility blocks).
        let before = a.disk().snapshot();
        a.scan(data[100].0, 200, &mut out).unwrap();
        let delta = a.disk().snapshot().since(&before);
        assert!(delta.reads_of(BlockKind::Utility) > 0, "scans read the bitmap");
    }

    #[test]
    fn scan_sees_inserted_keys() {
        let mut a = index(512);
        a.bulk_load(&entries(1_000, 4)).unwrap();
        for i in 0..200u64 {
            a.insert(i * 4 + 3, i).unwrap();
        }
        let mut out = Vec::new();
        a.scan(1, 400, &mut out).unwrap();
        assert_eq!(out.len(), 400);
        assert!(out.windows(2).all(|w| w[0].0 < w[1].0));
        // Keys 1, 3, 5, 7, ... interleave bulk and inserted entries.
        assert_eq!(out[0].0, 1);
        assert_eq!(out[1].0, 3);
        assert_eq!(out[2].0, 5);
    }

    #[test]
    fn lookup_batch_matches_sequential_and_amortises_descents() {
        let mut a = index(512);
        let data = skewed(20_000);
        a.bulk_load(&data).unwrap();
        // Unsorted probes mixing hits, near-misses, extremes and duplicates.
        let probes: Vec<Key> = data
            .iter()
            .step_by(67)
            .map(|&(k, _)| k)
            .chain([0, u64::MAX, data[500].0, data[500].0, data[500].0 + 1])
            .rev()
            .collect();
        let mut batched = Vec::new();
        a.lookup_batch(&probes, &mut batched).unwrap();
        assert_eq!(batched.len(), probes.len());
        for (i, &p) in probes.iter().enumerate() {
            assert_eq!(batched[i], a.lookup(p).unwrap(), "probe {p}");
        }

        // A batch also agrees after inserts push keys through gaps and SMOs.
        for i in 0..800u64 {
            a.insert(i * 11 + 6, i).unwrap();
        }
        let probes2: Vec<Key> = (0..800u64).map(|i| i * 11 + 6).rev().collect();
        a.lookup_batch(&probes2, &mut batched).unwrap();
        for (i, &p) in probes2.iter().enumerate() {
            assert_eq!(batched[i], a.lookup(p).unwrap(), "post-insert probe {p}");
        }

        // Co-located keys share the descent and the node's header block.
        let run: Vec<Key> = data[..256].iter().map(|&(k, _)| k).collect();
        a.disk().stats().reset();
        a.disk().reset_access_state();
        a.lookup_batch(&run, &mut batched).unwrap();
        let batch_reads = a.disk().stats().reads();
        a.disk().stats().reset();
        a.disk().reset_access_state();
        for &k in &run {
            a.lookup(k).unwrap();
        }
        let seq_reads = a.disk().stats().reads();
        assert!(
            batch_reads < seq_reads,
            "batched reads ({batch_reads}) must amortise sequential reads ({seq_reads})"
        );

        // Degenerate batches.
        a.lookup_batch(&[], &mut batched).unwrap();
        assert!(batched.is_empty());
        let empty = index(512);
        assert!(empty.lookup_batch(&[1], &mut batched).is_err());
    }

    #[test]
    fn queued_lookup_batch_matches_depth_one_answers_and_overlaps_io() {
        use lidx_storage::DeviceModel;
        let data = skewed(20_000);
        let mut probes: Vec<Key> = data.iter().step_by(17).map(|&(k, _)| k).collect();
        probes.extend([0, u64::MAX, data[500].0 + 1]);
        probes.reverse();

        let config =
            || DiskConfig::with_block_size(512).device(DeviceModel::ssd()).buffer_blocks(64);
        let alex_config =
            AlexConfig { target_leaf_entries: 128, max_leaf_entries: 1024, ..Default::default() };
        let mut sync_alex = AlexIndex::with_config(Disk::in_memory(config()), alex_config).unwrap();
        sync_alex.bulk_load(&data).unwrap();
        let mut expected = Vec::new();
        sync_alex.disk().stats().reset();
        sync_alex.lookup_batch(&probes, &mut expected).unwrap();
        let sync_ns = sync_alex.disk().stats().device_ns();

        let mut queued_alex =
            AlexIndex::with_config(Disk::in_memory(config().queue_depth(8)), alex_config).unwrap();
        queued_alex.bulk_load(&data).unwrap();
        let mut got = Vec::new();
        queued_alex.disk().stats().reset();
        queued_alex.lookup_batch(&probes, &mut got).unwrap();
        let queued_ns = queued_alex.disk().stats().device_ns();

        assert_eq!(got, expected, "queue depth must never change the answers");
        assert!(
            queued_ns * 2 < sync_ns,
            "depth-8 header+slot waves ({queued_ns} ns) must overlap the depth-1 cost ({sync_ns} ns)"
        );
        assert!(queued_alex.disk().stats().overlap_saved_ns() > 0);
        assert!(queued_alex.disk().stats().max_inflight() > 1);
    }

    #[test]
    fn layouts_single_and_two_files() {
        for layout in [AlexLayout::SingleFile, AlexLayout::TwoFiles] {
            let disk = Disk::in_memory(DiskConfig::with_block_size(512));
            let mut a = AlexIndex::with_config(
                disk,
                AlexConfig {
                    layout,
                    target_leaf_entries: 128,
                    max_leaf_entries: 1024,
                    ..Default::default()
                },
            )
            .unwrap();
            let data = skewed(5_000);
            a.bulk_load(&data).unwrap();
            assert_eq!(a.layout(), layout);
            for &(k, v) in data.iter().step_by(401) {
                assert_eq!(a.lookup(k).unwrap(), Some(v));
            }
        }
    }

    #[test]
    fn maintenance_writes_show_up_in_the_breakdown() {
        let mut a = index(512);
        a.bulk_load(&entries(2_000, 6)).unwrap();
        for i in 0..300u64 {
            a.insert(i * 6 + 4, i).unwrap();
        }
        let b = a.insert_breakdown();
        assert_eq!(b.inserts, 300);
        assert!(b.reads(InsertStep::Search) > 0);
        assert!(b.writes(InsertStep::Insert) > 0);
        assert!(
            b.writes(InsertStep::Maintenance) >= 300,
            "every fresh insert persists the node statistics"
        );
    }

    #[test]
    fn insert_batch_matches_sequential_semantics() {
        let data = entries(2_000, 10);
        let mut seq = index(512);
        let mut bat = index(512);
        seq.bulk_load(&data).unwrap();
        bat.bulk_load(&data).unwrap();
        // Fresh keys, upserts of bulk keys and in-batch duplicates
        // (later must win), unsorted tail.
        let mut batch: Vec<Entry> = (0..3_000u64).map(|i| (i * 7 + 2, i)).collect();
        batch.push((1, 111));
        batch.push((9, 999));
        batch.push((9, 1000));
        for &(k, v) in &batch {
            seq.insert(k, v).unwrap();
        }
        bat.insert_batch(&batch).unwrap();
        assert_eq!(seq.len(), bat.len());
        assert_eq!(bat.lookup(9).unwrap(), Some(1000), "later duplicate wins");
        for &(k, _) in batch.iter().step_by(97) {
            assert_eq!(bat.lookup(k).unwrap(), seq.lookup(k).unwrap(), "key {k}");
        }
        for &(k, _) in data.iter().step_by(131) {
            assert_eq!(bat.lookup(k).unwrap(), seq.lookup(k).unwrap(), "bulk key {k}");
        }
        assert_eq!(bat.insert_breakdown().inserts, batch.len() as u64);
        let mut a = Vec::new();
        let mut b = Vec::new();
        seq.scan(0, 10_000, &mut a).unwrap();
        bat.scan(0, 10_000, &mut b).unwrap();
        assert_eq!(a, b, "scans must agree entry for entry");
    }

    #[test]
    fn insert_batch_writes_each_touched_header_once() {
        // A sorted co-located run: the sequential loop writes the leaf's
        // statistics header once per key, the batch once per touched node.
        let mut a = index(512);
        a.bulk_load(&entries(2_000, 10)).unwrap();
        let run: Vec<Entry> = (0..256u64).map(|i| (i * 10 + 5, i)).collect();
        let before = a.insert_breakdown();
        a.insert_batch(&run).unwrap();
        let delta = a.insert_breakdown().since(&before);
        assert_eq!(delta.inserts, 256);
        assert!(
            delta.writes(InsertStep::Maintenance) < 64,
            "batched maintenance must write headers per node, not per key (got {})",
            delta.writes(InsertStep::Maintenance)
        );
        // The deferred header did land: a re-loaded node sees the batch's
        // occupancy (lookups agree and the key count is exact).
        assert_eq!(a.len(), 2_000 + 256);
        for &(k, v) in run.iter().step_by(17) {
            assert_eq!(a.lookup(k).unwrap(), Some(v), "key {k}");
        }
    }

    #[test]
    fn empty_and_error_paths() {
        let mut a = index(512);
        assert!(matches!(a.lookup(1), Err(IndexError::NotInitialized)));
        a.bulk_load(&[]).unwrap();
        assert_eq!(a.lookup(5).unwrap(), None);
        for i in 0..50u64 {
            a.insert(i * 2, i).unwrap();
        }
        assert_eq!(a.len(), 50);
        for i in (0..50u64).step_by(7) {
            assert_eq!(a.lookup(i * 2).unwrap(), Some(i));
        }
        assert!(matches!(a.bulk_load(&[(1, 1)]), Err(IndexError::AlreadyLoaded)));
    }
}
