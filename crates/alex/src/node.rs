//! On-disk node formats for ALEX.
//!
//! # Data node extent
//!
//! ```text
//! block 0            : header (model, capacity, count, stats, sibling links)
//! blocks 1..1+BM     : bitmap, 1 bit per slot (BM = ceil(capacity / (8·bs)))
//! blocks 1+BM..      : slots, 16 bytes each (gapped array)
//! ```
//!
//! Gap slots duplicate their nearest left real entry (leading gaps duplicate
//! the first real entry), so point lookups never need the bitmap — the disk
//! translation of ALEX's "overwrite preceding empty slots" trick (S5). The
//! bitmap is only consulted by inserts (to find gaps) and scans (to skip
//! duplicates), which is exactly where the paper locates ALEX's utility
//! overhead (S3).
//!
//! # Inner node extent
//!
//! ```text
//! block 0            : header (model, child count) + as many child pointers as fit
//! blocks 1..         : remaining child pointers
//! ```
//!
//! A child pointer packs "is data node" into bit 63 and the child's start
//! block into the low 32 bits.

use lidx_core::{Entry, IndexError, IndexResult, Key, Value};
use lidx_models::LinearModel;
use lidx_storage::{BlockId, BlockKind, BlockReader, BlockWriter, Disk};

/// Size of one slot in bytes.
pub const SLOT_BYTES: usize = 16;

const TAG_DATA: u8 = 0xD1;
const TAG_INNER: u8 = 0xA1;

/// A packed child pointer: data/inner flag plus start block.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ChildPtr {
    /// True if the child is a data node.
    pub is_data: bool,
    /// First block of the child's extent.
    pub block: BlockId,
}

impl ChildPtr {
    /// Packs the pointer into a `u64`.
    pub fn pack(self) -> u64 {
        (u64::from(self.is_data) << 63) | u64::from(self.block)
    }

    /// Unpacks a pointer from a `u64`.
    pub fn unpack(raw: u64) -> Self {
        ChildPtr { is_data: raw >> 63 == 1, block: (raw & 0xFFFF_FFFF) as u32 }
    }
}

/// The persistent header of a data node.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DataHeader {
    /// Number of slots in the gapped array.
    pub capacity: u32,
    /// Number of real (occupied) slots.
    pub count: u32,
    /// Linear model mapping keys to slot positions.
    pub model: LinearModel,
    /// Start block of the previous data node, or [`lidx_storage::INVALID_BLOCK`].
    pub prev: BlockId,
    /// Start block of the next data node, or [`lidx_storage::INVALID_BLOCK`].
    pub next: BlockId,
    /// Statistics maintained for the cost model (updated on every insert —
    /// the maintenance overhead of Fig. 6).
    pub num_inserts: u64,
    /// Total slots shifted by inserts into this node.
    pub num_shifts: u64,
    /// Lookups served by this node (the paper notes ALEX would even update
    /// this on reads; our implementation follows the paper's optimisation of
    /// not persisting it for read-only queries).
    pub num_lookups: u64,
}

impl DataHeader {
    fn encode(&self, block_size: usize) -> IndexResult<Vec<u8>> {
        let mut w = BlockWriter::new(block_size);
        w.put_u8(TAG_DATA)?;
        w.put_u8(0)?;
        w.put_u16(0)?;
        w.put_u32(self.capacity)?;
        w.put_u32(self.count)?;
        w.put_f64(self.model.slope)?;
        w.put_f64(self.model.intercept)?;
        w.put_u32(self.prev)?;
        w.put_u32(self.next)?;
        w.put_u64(self.num_inserts)?;
        w.put_u64(self.num_shifts)?;
        w.put_u64(self.num_lookups)?;
        Ok(w.finish())
    }

    fn decode(buf: &[u8]) -> IndexResult<Self> {
        let mut r = BlockReader::new(buf);
        let tag = r.get_u8()?;
        if tag != TAG_DATA {
            return Err(IndexError::Internal(format!("expected data node tag, got {tag:#x}")));
        }
        r.get_u8()?;
        r.get_u16()?;
        let capacity = r.get_u32()?;
        let count = r.get_u32()?;
        let slope = r.get_f64()?;
        let intercept = r.get_f64()?;
        let prev = r.get_u32()?;
        let next = r.get_u32()?;
        Ok(DataHeader {
            capacity,
            count,
            model: LinearModel::new(slope, intercept),
            prev,
            next,
            num_inserts: r.get_u64()?,
            num_shifts: r.get_u64()?,
            num_lookups: r.get_u64()?,
        })
    }
}

/// Geometry of a data node extent for a given block size and capacity.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DataGeometry {
    /// Blocks used by the bitmap.
    pub bitmap_blocks: u32,
    /// Blocks used by the slot array.
    pub slot_blocks: u32,
}

impl DataGeometry {
    /// Computes the geometry for `capacity` slots.
    pub fn for_capacity(capacity: u32, block_size: usize) -> Self {
        let bitmap_blocks = (capacity as usize).div_ceil(block_size * 8) as u32;
        let slots_per_block = block_size / SLOT_BYTES;
        let slot_blocks = (capacity as usize).div_ceil(slots_per_block).max(1) as u32;
        DataGeometry { bitmap_blocks, slot_blocks }
    }

    /// Total blocks of the extent (header + bitmap + slots).
    pub fn total_blocks(&self) -> u32 {
        1 + self.bitmap_blocks + self.slot_blocks
    }
}

/// A handle to one on-disk data node.
#[derive(Debug, Clone)]
pub struct DataNode {
    /// File holding the node.
    pub file: u32,
    /// First block of the extent.
    pub start: BlockId,
    /// The decoded header.
    pub header: DataHeader,
}

impl DataNode {
    /// Reads the header of the data node at `start` (one block read).
    pub fn load(disk: &Disk, file: u32, start: BlockId) -> IndexResult<Self> {
        let buf = disk.read_ref(file, start, BlockKind::Leaf)?;
        Ok(DataNode { file, start, header: DataHeader::decode(&buf)? })
    }

    /// Builds a handle from an already-fetched header block (e.g. one
    /// delivered by a read-queue completion wave), avoiding a second read.
    pub fn from_header_bytes(file: u32, start: BlockId, buf: &[u8]) -> IndexResult<Self> {
        Ok(DataNode { file, start, header: DataHeader::decode(buf)? })
    }

    /// [`DataNode::load`] tagged as part of a scan stream: used when a range
    /// scan follows the sibling chain into the next data node.
    pub fn load_scan(disk: &Disk, file: u32, start: BlockId) -> IndexResult<Self> {
        let buf = disk.read_ref_scan(file, start, BlockKind::Leaf)?;
        Ok(DataNode { file, start, header: DataHeader::decode(&buf)? })
    }

    /// The extent geometry implied by the header.
    pub fn geometry(&self, block_size: usize) -> DataGeometry {
        DataGeometry::for_capacity(self.header.capacity, block_size)
    }

    /// Total blocks of this node's extent.
    pub fn total_blocks(&self, block_size: usize) -> u32 {
        self.geometry(block_size).total_blocks()
    }

    /// Persists the header (one block write).
    pub fn write_header(&self, disk: &Disk) -> IndexResult<()> {
        let buf = self.header.encode(disk.block_size())?;
        disk.write(self.file, self.start, BlockKind::Leaf, &buf)?;
        Ok(())
    }

    fn slot_block(&self, slot: u32, disk: &Disk) -> (BlockId, usize) {
        let per_block = (disk.block_size() / SLOT_BYTES) as u32;
        let geo = self.geometry(disk.block_size());
        (self.start + 1 + geo.bitmap_blocks + slot / per_block, (slot % per_block) as usize)
    }

    /// Absolute block id holding `slot` — the prefetch target for batched
    /// lookups that wave the predicted slot blocks before probing.
    pub fn slot_block_id(&self, disk: &Disk, slot: u32) -> BlockId {
        self.slot_block(slot, disk).0
    }

    /// Reads the slot at `slot` (entry may be a gap duplicate).
    pub fn read_slot(&self, disk: &Disk, slot: u32) -> IndexResult<Entry> {
        let (block, idx) = self.slot_block(slot, disk);
        let buf = disk.read_ref(self.file, block, BlockKind::Leaf)?;
        let off = idx * SLOT_BYTES;
        Ok((
            Key::from_le_bytes(buf[off..off + 8].try_into().unwrap()),
            Value::from_le_bytes(buf[off + 8..off + 16].try_into().unwrap()),
        ))
    }

    /// Writes the slot at `slot`.
    pub fn write_slot(&self, disk: &Disk, slot: u32, entry: Entry) -> IndexResult<()> {
        let (block, idx) = self.slot_block(slot, disk);
        let mut buf = disk.read_vec(self.file, block, BlockKind::Leaf)?;
        let off = idx * SLOT_BYTES;
        buf[off..off + 8].copy_from_slice(&entry.0.to_le_bytes());
        buf[off + 8..off + 16].copy_from_slice(&entry.1.to_le_bytes());
        disk.write(self.file, block, BlockKind::Leaf, &buf)?;
        Ok(())
    }

    /// Reads the bitmap bit for `slot` (charged as a utility block).
    pub fn read_bit(&self, disk: &Disk, slot: u32) -> IndexResult<bool> {
        let bs = disk.block_size();
        let block = self.start + 1 + slot / (bs as u32 * 8);
        let buf = disk.read_ref(self.file, block, BlockKind::Utility)?;
        let bit = (slot as usize) % (bs * 8);
        Ok(buf[bit / 8] & (1 << (bit % 8)) != 0)
    }

    /// Sets the bitmap bit for `slot`.
    pub fn set_bit(&self, disk: &Disk, slot: u32, value: bool) -> IndexResult<()> {
        let bs = disk.block_size();
        let block = self.start + 1 + slot / (bs as u32 * 8);
        let mut buf = disk.read_vec(self.file, block, BlockKind::Utility)?;
        let bit = (slot as usize) % (bs * 8);
        if value {
            buf[bit / 8] |= 1 << (bit % 8);
        } else {
            buf[bit / 8] &= !(1 << (bit % 8));
        }
        disk.write(self.file, block, BlockKind::Utility, &buf)?;
        Ok(())
    }

    /// Predicted slot of `key`, clamped to the capacity.
    pub fn predict(&self, key: Key) -> u32 {
        self.header.model.predict_clamped(key, self.header.capacity as usize) as u32
    }

    /// Finds the leftmost slot whose key is `>= key` using exponential search
    /// from the model's prediction, as ALEX does. Returns `capacity` if every
    /// slot key is smaller.
    pub fn lower_bound(&self, disk: &Disk, key: Key) -> IndexResult<u32> {
        let n = self.header.capacity;
        if n == 0 {
            return Ok(0);
        }
        let pred = self.predict(key);
        let at = |s: u32| -> IndexResult<Key> { Ok(self.read_slot(disk, s)?.0) };

        let (mut lo, mut hi);
        if at(pred)? >= key {
            // Grow leftwards until we find a key smaller than the target.
            let mut step = 1u32;
            hi = pred;
            loop {
                if step > pred {
                    lo = 0;
                    break;
                }
                let probe = pred - step;
                if at(probe)? < key {
                    lo = probe + 1;
                    break;
                }
                if probe == 0 {
                    lo = 0;
                    break;
                }
                step *= 2;
            }
        } else {
            // Grow rightwards until we find a key >= target.
            let mut step = 1u32;
            lo = pred + 1;
            loop {
                let probe = pred.saturating_add(step);
                if probe >= n - 1 {
                    if at(n - 1)? < key {
                        return Ok(n);
                    }
                    hi = n - 1;
                    break;
                }
                if at(probe)? >= key {
                    hi = probe;
                    break;
                }
                lo = probe + 1;
                step *= 2;
            }
        }
        // Binary search in [lo, hi].
        while lo < hi {
            let mid = (lo + hi) / 2;
            if at(mid)? < key {
                lo = mid + 1;
            } else {
                hi = mid;
            }
        }
        Ok(lo)
    }

    /// The largest stored key, read from the last slot (one block read).
    ///
    /// The slot array is non-decreasing in key and every gap slot duplicates
    /// its nearest left real entry (trailing gaps duplicate the last real
    /// entry), so the final slot always carries the maximum real key —
    /// whether it is the real occurrence or a gap copy. Meaningless when the
    /// node is empty (`header.count == 0`).
    pub fn max_key(&self, disk: &Disk) -> IndexResult<Key> {
        Ok(self.read_slot(disk, self.header.capacity.saturating_sub(1))?.0)
    }

    /// Point lookup. Gap slots duplicate the payload of the real entry they
    /// copy, so no bitmap access is required.
    pub fn lookup(&self, disk: &Disk, key: Key) -> IndexResult<Option<Value>> {
        if self.header.count == 0 {
            return Ok(None);
        }
        let slot = self.lower_bound(disk, key)?;
        if slot >= self.header.capacity {
            return Ok(None);
        }
        let (k, v) = self.read_slot(disk, slot)?;
        Ok((k == key).then_some(v))
    }

    /// Shifts the slots `[from, gap)` one position to the right (slot `gap`
    /// is overwritten), reading and writing each affected slot block exactly
    /// once — the on-disk equivalent of ALEX's in-memory shift, whose cost is
    /// proportional to the blocks touched rather than the slots moved.
    pub fn shift_right(&self, disk: &Disk, from: u32, gap: u32) -> IndexResult<()> {
        if gap <= from {
            return Ok(());
        }
        let bs = disk.block_size();
        let per_block = (bs / SLOT_BYTES) as u32;
        let geo = self.geometry(bs);
        let base = self.start + 1 + geo.bitmap_blocks;
        let first_block = from / per_block;
        let last_block = gap / per_block;
        let nblocks = last_block - first_block + 1;
        let mut data = disk.read_extent(self.file, base + first_block, BlockKind::Leaf, nblocks)?;
        let rel_from = (from - first_block * per_block) as usize * SLOT_BYTES;
        let rel_gap = (gap - first_block * per_block) as usize * SLOT_BYTES;
        data.copy_within(rel_from..rel_gap, rel_from + SLOT_BYTES);
        for i in 0..nblocks {
            let off = i as usize * bs;
            disk.write(self.file, base + first_block + i, BlockKind::Leaf, &data[off..off + bs])?;
        }
        Ok(())
    }

    /// Walks the real entries of the node in slot order starting at
    /// `from_slot`, appending those with keys `>= start` to `out` until it
    /// holds `limit` entries. Bitmap blocks and slot blocks are each fetched
    /// once and decoded in memory, so the I/O cost is `slots/B` slot blocks
    /// plus the covering bitmap blocks — the scan cost the paper attributes
    /// to ALEX (Table 2 / S3). Every fetch is tagged scan-class so a
    /// scan-resistant buffer pool admits the stream into probation only.
    pub fn scan_slots(
        &self,
        disk: &Disk,
        from_slot: u32,
        start: Key,
        limit: usize,
        out: &mut Vec<Entry>,
    ) -> IndexResult<()> {
        let bs = disk.block_size();
        let per_block = (bs / SLOT_BYTES) as u32;
        let bits_per_block = (bs * 8) as u32;
        let geo = self.geometry(bs);
        let mut bitmap_block_idx = u32::MAX;
        let mut bitmap_frame: Option<lidx_storage::BlockRef> = None;
        let mut slot = from_slot;
        while slot < self.header.capacity && out.len() < limit {
            // Fetch the bitmap block covering this slot if we do not already
            // hold it (charged as a utility block).
            let needed_bitmap = slot / bits_per_block;
            if needed_bitmap != bitmap_block_idx {
                bitmap_frame = Some(disk.read_ref_scan(
                    self.file,
                    self.start + 1 + needed_bitmap,
                    BlockKind::Utility,
                )?);
                bitmap_block_idx = needed_bitmap;
            }
            let bitmap = bitmap_frame.as_deref().expect("bitmap block pinned");
            // Fetch the slot block and walk every slot it contains.
            let slot_block = slot / per_block;
            let buf = disk.read_ref_scan(
                self.file,
                self.start + 1 + geo.bitmap_blocks + slot_block,
                BlockKind::Leaf,
            )?;
            let block_end = ((slot_block + 1) * per_block).min(self.header.capacity);
            while slot < block_end && out.len() < limit {
                // The bitmap block can end before the slot block does.
                if slot / bits_per_block != bitmap_block_idx {
                    break;
                }
                let bit = (slot % bits_per_block) as usize;
                if bitmap[bit / 8] & (1 << (bit % 8)) != 0 {
                    let off = (slot % per_block) as usize * SLOT_BYTES;
                    let k = Key::from_le_bytes(buf[off..off + 8].try_into().unwrap());
                    if k >= start {
                        let v = Value::from_le_bytes(buf[off + 8..off + 16].try_into().unwrap());
                        out.push((k, v));
                    }
                }
                slot += 1;
            }
        }
        Ok(())
    }

    /// Collects all real entries in key order (bitmap-guided; used by scans,
    /// SMOs and tests).
    pub fn collect_entries(&self, disk: &Disk, out: &mut Vec<Entry>) -> IndexResult<()> {
        self.scan_slots(disk, 0, Key::MIN, usize::MAX, out)?;
        debug_assert!(out.windows(2).all(|w| w[0].0 < w[1].0), "slots must be strictly increasing");
        Ok(())
    }

    /// Builds a brand-new data node extent from sorted `entries` with the
    /// given slot capacity, returning its handle. The caller provides the
    /// extent's start block (already allocated, `geometry.total_blocks()`
    /// blocks long).
    #[allow(clippy::too_many_arguments)]
    pub fn build(
        disk: &Disk,
        file: u32,
        start: BlockId,
        capacity: u32,
        entries: &[Entry],
        prev: BlockId,
        next: BlockId,
    ) -> IndexResult<DataNode> {
        assert!(capacity as usize >= entries.len(), "capacity must hold all entries");
        let bs = disk.block_size();
        let geo = DataGeometry::for_capacity(capacity, bs);
        let keys: Vec<Key> = entries.iter().map(|e| e.0).collect();
        let model = LinearModel::fit_keys(&keys).rescale(entries.len().max(1), capacity as usize);

        // Model-based placement (ALEX's bulk-load strategy): every entry goes
        // to its predicted slot, pushed right past already-placed entries and
        // pulled left just enough to leave room for the entries still to come.
        // Entries are processed in key order, so slots at or beyond `cursor`
        // are always free and the real keys end up in sorted slot order.
        let mut slots: Vec<Option<Entry>> = vec![None; capacity as usize];
        let mut cursor = 0usize;
        for (i, &e) in entries.iter().enumerate() {
            let remaining = entries.len() - i;
            let predicted = model.predict_clamped(e.0, capacity as usize);
            let pos = predicted.max(cursor).min(capacity as usize - remaining);
            debug_assert!(slots[pos].is_none());
            slots[pos] = Some(e);
            cursor = pos + 1;
        }

        // Serialise the slot blocks, filling gaps with their left neighbour
        // (leading gaps duplicate the first entry).
        let per_block = bs / SLOT_BYTES;
        let first_entry = entries.first().copied().unwrap_or((0, 0));
        let mut fill = first_entry;
        // Pre-compute the gap fill for leading gaps by scanning once.
        let mut materialised: Vec<Entry> = Vec::with_capacity(capacity as usize);
        for s in slots.iter() {
            match s {
                Some(e) => {
                    fill = *e;
                    materialised.push(*e);
                }
                None => materialised.push(fill),
            }
        }
        // Leading gaps currently hold (0,0)-ish fill from before the first
        // real entry; rewrite them to duplicate the first real entry.
        for m in materialised.iter_mut() {
            if entries.is_empty() {
                break;
            }
            if m.0 < first_entry.0 {
                *m = first_entry;
            } else {
                break;
            }
        }
        let mut buf = vec![0u8; bs];
        for b in 0..geo.slot_blocks {
            buf.fill(0);
            for i in 0..per_block {
                let idx = b as usize * per_block + i;
                let e = materialised.get(idx).copied().unwrap_or(fill);
                let off = i * SLOT_BYTES;
                buf[off..off + 8].copy_from_slice(&e.0.to_le_bytes());
                buf[off + 8..off + 16].copy_from_slice(&e.1.to_le_bytes());
            }
            disk.write(file, start + 1 + geo.bitmap_blocks + b, BlockKind::Leaf, &buf)?;
        }

        // Serialise the bitmap blocks.
        for b in 0..geo.bitmap_blocks {
            buf.fill(0);
            for bit in 0..bs * 8 {
                let slot = b as usize * bs * 8 + bit;
                if slot < capacity as usize && slots[slot].is_some() {
                    buf[bit / 8] |= 1 << (bit % 8);
                }
            }
            disk.write(file, start + 1 + b, BlockKind::Utility, &buf)?;
        }

        let node = DataNode {
            file,
            start,
            header: DataHeader {
                capacity,
                count: entries.len() as u32,
                model,
                prev,
                next,
                num_inserts: 0,
                num_shifts: 0,
                num_lookups: 0,
            },
        };
        node.write_header(disk)?;
        Ok(node)
    }
}

/// The persistent header of an inner node.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct InnerHeader {
    /// Number of child pointers.
    pub children: u32,
    /// Linear model mapping keys to child indexes.
    pub model: LinearModel,
}

/// A handle to one on-disk inner node.
#[derive(Debug, Clone)]
pub struct InnerNode {
    /// File holding the node.
    pub file: u32,
    /// First block of the extent.
    pub start: BlockId,
    /// The decoded header.
    pub header: InnerHeader,
}

/// Bytes of the inner-node header before the child pointer array.
const INNER_HEADER_BYTES: usize = 4 + 4 + 8 + 8;

impl InnerNode {
    /// Number of child pointers that fit into the first block.
    pub fn ptrs_in_first_block(block_size: usize) -> usize {
        (block_size - INNER_HEADER_BYTES) / 8
    }

    /// Total blocks needed for an inner node with `children` pointers.
    pub fn blocks_for(children: u32, block_size: usize) -> u32 {
        let in_first = Self::ptrs_in_first_block(block_size) as u32;
        if children <= in_first {
            1
        } else {
            1 + (children - in_first).div_ceil((block_size / 8) as u32)
        }
    }

    /// Reads the header of the inner node at `start` (one block read).
    pub fn load(disk: &Disk, file: u32, start: BlockId) -> IndexResult<Self> {
        let buf = disk.read_ref(file, start, BlockKind::Inner)?;
        let mut r = BlockReader::new(&buf);
        let tag = r.get_u8()?;
        if tag != TAG_INNER {
            return Err(IndexError::Internal(format!("expected inner node tag, got {tag:#x}")));
        }
        r.get_u8()?;
        r.get_u16()?;
        let children = r.get_u32()?;
        let slope = r.get_f64()?;
        let intercept = r.get_f64()?;
        Ok(InnerNode {
            file,
            start,
            header: InnerHeader { children, model: LinearModel::new(slope, intercept) },
        })
    }

    /// Writes a complete inner node (header plus child pointers), charging
    /// one write per extent block.
    pub fn build(
        disk: &Disk,
        file: u32,
        start: BlockId,
        model: LinearModel,
        children: &[ChildPtr],
    ) -> IndexResult<InnerNode> {
        let bs = disk.block_size();
        let in_first = Self::ptrs_in_first_block(bs);
        let mut w = BlockWriter::new(bs);
        w.put_u8(TAG_INNER)?;
        w.put_u8(0)?;
        w.put_u16(0)?;
        w.put_u32(children.len() as u32)?;
        w.put_f64(model.slope)?;
        w.put_f64(model.intercept)?;
        for ptr in children.iter().take(in_first) {
            w.put_u64(ptr.pack())?;
        }
        disk.write(file, start, BlockKind::Inner, &w.finish())?;

        let per_block = bs / 8;
        let remaining = children.len().saturating_sub(in_first);
        let extra_blocks = remaining.div_ceil(per_block);
        let mut buf = vec![0u8; bs];
        for b in 0..extra_blocks {
            buf.fill(0);
            for i in 0..per_block {
                if let Some(ptr) = children.get(in_first + b * per_block + i) {
                    buf[i * 8..i * 8 + 8].copy_from_slice(&ptr.pack().to_le_bytes());
                }
            }
            disk.write(file, start + 1 + b as u32, BlockKind::Inner, &buf)?;
        }
        Ok(InnerNode {
            file,
            start,
            header: InnerHeader { children: children.len() as u32, model },
        })
    }

    /// Total blocks of this node's extent.
    pub fn total_blocks(&self, block_size: usize) -> u32 {
        Self::blocks_for(self.header.children, block_size)
    }

    /// Child index the model picks for `key`.
    pub fn child_index(&self, key: Key) -> u32 {
        self.header.model.predict_clamped(key, self.header.children as usize) as u32
    }

    /// Reads the child pointer at `idx`. Costs one extra block read only when
    /// the pointer lives outside the header block.
    pub fn child_at(&self, disk: &Disk, idx: u32) -> IndexResult<ChildPtr> {
        let bs = disk.block_size();
        let in_first = Self::ptrs_in_first_block(bs) as u32;
        let (block, offset) = if idx < in_first {
            (self.start, INNER_HEADER_BYTES + idx as usize * 8)
        } else {
            let rest = idx - in_first;
            let per_block = (bs / 8) as u32;
            (self.start + 1 + rest / per_block, ((rest % per_block) as usize) * 8)
        };
        let buf = disk.read_ref(self.file, block, BlockKind::Inner)?;
        Ok(ChildPtr::unpack(u64::from_le_bytes(buf[offset..offset + 8].try_into().unwrap())))
    }

    /// Overwrites the child pointer at `idx`.
    pub fn set_child(&self, disk: &Disk, idx: u32, ptr: ChildPtr) -> IndexResult<()> {
        let bs = disk.block_size();
        let in_first = Self::ptrs_in_first_block(bs) as u32;
        let (block, offset) = if idx < in_first {
            (self.start, INNER_HEADER_BYTES + idx as usize * 8)
        } else {
            let rest = idx - in_first;
            let per_block = (bs / 8) as u32;
            (self.start + 1 + rest / per_block, ((rest % per_block) as usize) * 8)
        };
        let mut buf = disk.read_vec(self.file, block, BlockKind::Inner)?;
        buf[offset..offset + 8].copy_from_slice(&ptr.pack().to_le_bytes());
        disk.write(self.file, block, BlockKind::Inner, &buf)?;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lidx_storage::{DiskConfig, INVALID_BLOCK};
    use std::sync::Arc;

    fn disk(bs: usize) -> Arc<Disk> {
        Disk::in_memory(DiskConfig::with_block_size(bs))
    }

    fn build_data(disk: &Disk, entries: &[Entry], capacity: u32) -> DataNode {
        let file = disk.create_file().unwrap();
        let geo = DataGeometry::for_capacity(capacity, disk.block_size());
        let start = disk.allocate(file, geo.total_blocks()).unwrap();
        DataNode::build(disk, file, start, capacity, entries, INVALID_BLOCK, INVALID_BLOCK).unwrap()
    }

    #[test]
    fn child_ptr_packs_and_unpacks() {
        for ptr in [
            ChildPtr { is_data: true, block: 0 },
            ChildPtr { is_data: false, block: 12345 },
            ChildPtr { is_data: true, block: u32::MAX },
        ] {
            assert_eq!(ChildPtr::unpack(ptr.pack()), ptr);
        }
    }

    #[test]
    fn geometry_accounts_header_bitmap_and_slots() {
        let g = DataGeometry::for_capacity(1024, 4096);
        assert_eq!(g.bitmap_blocks, 1);
        assert_eq!(g.slot_blocks, 4);
        assert_eq!(g.total_blocks(), 6);
        let g = DataGeometry::for_capacity(100_000, 4096);
        assert_eq!(g.bitmap_blocks, 4);
        assert_eq!(g.slot_blocks, 391);
    }

    #[test]
    fn data_node_build_lookup_roundtrip() {
        let d = disk(512);
        let entries: Vec<Entry> = (0..500u64).map(|i| (i * 7 + 3, i)).collect();
        let node = build_data(&d, &entries, 800);
        assert_eq!(node.header.count, 500);
        // Header survives a reload.
        let reloaded = DataNode::load(&d, node.file, node.start).unwrap();
        assert_eq!(reloaded.header, node.header);
        for &(k, v) in entries.iter().step_by(17) {
            assert_eq!(node.lookup(&d, k).unwrap(), Some(v), "key {k}");
        }
        assert_eq!(node.lookup(&d, 1).unwrap(), None);
        assert_eq!(node.lookup(&d, 4).unwrap(), None);
        assert_eq!(node.lookup(&d, 10_000).unwrap(), None);
    }

    #[test]
    fn collect_entries_returns_sorted_originals() {
        let d = disk(512);
        let entries: Vec<Entry> = (0..300u64).map(|i| (i * i + 1, i)).collect();
        let node = build_data(&d, &entries, 512);
        let mut out = Vec::new();
        node.collect_entries(&d, &mut out).unwrap();
        assert_eq!(out, entries);
    }

    #[test]
    fn bitmap_bits_match_occupancy() {
        let d = disk(512);
        let entries: Vec<Entry> = (0..50u64).map(|i| (i * 100, i)).collect();
        let node = build_data(&d, &entries, 128);
        let mut occupied = 0;
        for s in 0..node.header.capacity {
            if node.read_bit(&d, s).unwrap() {
                occupied += 1;
            }
        }
        assert_eq!(occupied, 50);
        // Toggling a bit round-trips.
        node.set_bit(&d, 5, true).unwrap();
        assert!(node.read_bit(&d, 5).unwrap());
    }

    #[test]
    fn lower_bound_is_consistent_with_slot_order() {
        let d = disk(512);
        let entries: Vec<Entry> = (0..400u64).map(|i| (i * 3 + 10, i)).collect();
        let node = build_data(&d, &entries, 600);
        for probe in [0u64, 10, 11, 500, 1_207, 1_209, 5_000] {
            let lb = node.lower_bound(&d, probe).unwrap();
            // Every slot before lb holds a key < probe and lb (if valid) holds
            // a key >= probe.
            if lb < node.header.capacity {
                assert!(node.read_slot(&d, lb).unwrap().0 >= probe);
            }
            if lb > 0 {
                assert!(node.read_slot(&d, lb - 1).unwrap().0 < probe);
            }
        }
    }

    #[test]
    fn empty_data_node_is_harmless() {
        let d = disk(512);
        let node = build_data(&d, &[], 64);
        assert_eq!(node.header.count, 0);
        assert_eq!(node.lookup(&d, 5).unwrap(), None);
        let mut out = Vec::new();
        node.collect_entries(&d, &mut out).unwrap();
        assert!(out.is_empty());
    }

    #[test]
    fn inner_node_routes_and_updates_children() {
        let d = disk(512);
        let file = d.create_file().unwrap();
        // 200 children: spills beyond the first block at 512-byte blocks.
        let children: Vec<ChildPtr> =
            (0..200u32).map(|i| ChildPtr { is_data: i % 2 == 0, block: i * 10 }).collect();
        let blocks = InnerNode::blocks_for(200, 512);
        assert!(blocks > 1);
        let start = d.allocate(file, blocks).unwrap();
        let model = LinearModel::new(200.0 / 2_000.0, 0.0); // keys 0..2000 -> 0..200
        let node = InnerNode::build(&d, file, start, model, &children).unwrap();
        assert_eq!(node.total_blocks(512), blocks);

        let reloaded = InnerNode::load(&d, file, start).unwrap();
        assert_eq!(reloaded.header.children, 200);
        for idx in [0u32, 1, 57, 63, 64, 150, 199] {
            assert_eq!(reloaded.child_at(&d, idx).unwrap(), children[idx as usize]);
        }
        assert_eq!(reloaded.child_index(0), 0);
        assert_eq!(reloaded.child_index(1_000), 100);
        assert_eq!(reloaded.child_index(1_000_000), 199, "predictions clamp to the last child");

        let new_ptr = ChildPtr { is_data: true, block: 9999 };
        reloaded.set_child(&d, 150, new_ptr).unwrap();
        assert_eq!(reloaded.child_at(&d, 150).unwrap(), new_ptr);
        assert_eq!(reloaded.child_at(&d, 149).unwrap(), children[149]);
    }
}
