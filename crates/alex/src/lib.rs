//! An on-disk ALEX index (§2.2 / §4.1 of the paper).
//!
//! ALEX is a top-down learned index with two node types: *inner nodes* whose
//! linear model picks a child pointer in constant time, and *data nodes*
//! holding a model-based **gapped array** of key-payload slots plus a bitmap
//! marking which slots are occupied.
//!
//! The on-disk extensions follow §4.1 of the paper:
//!
//! * every node is stored as a contiguous extent of blocks (a node must not
//!   be scattered), with the meta block holding the root address;
//! * either a single file holds all nodes (Layout#1) or inner nodes and data
//!   nodes live in separate files (Layout#2, the paper's preferred layout);
//! * data-node lookups never touch the bitmap — gap slots duplicate their
//!   left neighbour, which is the disk equivalent of ALEX overwriting
//!   preceding empty slots (shortcoming S5);
//! * inserts must read and update the bitmap and the node-header statistics,
//!   which is exactly the utility/maintenance overhead the paper measures in
//!   Fig. 6 (shortcoming S3);
//! * structural modification operations either expand a data node in place
//!   or split it downward into a new two-child inner node, mirroring ALEX's
//!   expansion / split mechanisms.
//!
//! Module layout: [`node`] defines the on-disk node formats, [`index`] the
//! tree operations and the [`lidx_core::DiskIndex`] implementation.

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod index;
pub mod node;

pub use index::{AlexConfig, AlexIndex, AlexLayout};
