//! Little helpers for encoding index nodes into fixed-size blocks.
//!
//! All on-disk structures in this workspace are built from primitive integers
//! and IEEE-754 doubles laid out little-endian. [`BlockWriter`] appends
//! values to a block-sized buffer and [`BlockReader`] consumes them again;
//! both track a cursor so node serialisation code reads like a schema.

use crate::error::{StorageError, StorageResult};

/// Sequentially encodes primitives into a fixed-capacity block buffer.
#[derive(Debug)]
pub struct BlockWriter {
    buf: Vec<u8>,
    capacity: usize,
}

impl BlockWriter {
    /// Creates a writer for a block of `capacity` bytes.
    pub fn new(capacity: usize) -> Self {
        BlockWriter { buf: Vec::with_capacity(capacity), capacity }
    }

    /// Bytes written so far.
    pub fn len(&self) -> usize {
        self.buf.len()
    }

    /// True if nothing has been written.
    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }

    /// Remaining capacity in bytes.
    pub fn remaining(&self) -> usize {
        self.capacity - self.buf.len()
    }

    fn push(&mut self, bytes: &[u8]) -> StorageResult<()> {
        if self.buf.len() + bytes.len() > self.capacity {
            return Err(StorageError::BlockOverflow {
                got: self.buf.len() + bytes.len(),
                capacity: self.capacity,
            });
        }
        self.buf.extend_from_slice(bytes);
        Ok(())
    }

    /// Appends a `u8`.
    pub fn put_u8(&mut self, v: u8) -> StorageResult<()> {
        self.push(&[v])
    }

    /// Appends a `u16` (little-endian).
    pub fn put_u16(&mut self, v: u16) -> StorageResult<()> {
        self.push(&v.to_le_bytes())
    }

    /// Appends a `u32` (little-endian).
    pub fn put_u32(&mut self, v: u32) -> StorageResult<()> {
        self.push(&v.to_le_bytes())
    }

    /// Appends a `u64` (little-endian).
    pub fn put_u64(&mut self, v: u64) -> StorageResult<()> {
        self.push(&v.to_le_bytes())
    }

    /// Appends an `f64` (little-endian IEEE-754).
    pub fn put_f64(&mut self, v: f64) -> StorageResult<()> {
        self.push(&v.to_le_bytes())
    }

    /// Appends raw bytes.
    pub fn put_bytes(&mut self, v: &[u8]) -> StorageResult<()> {
        self.push(v)
    }

    /// Finalises the block, zero-padding up to the capacity.
    pub fn finish(mut self) -> Vec<u8> {
        self.buf.resize(self.capacity, 0);
        self.buf
    }
}

/// Sequentially decodes primitives from a block buffer.
#[derive(Debug)]
pub struct BlockReader<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> BlockReader<'a> {
    /// Creates a reader over `buf`.
    pub fn new(buf: &'a [u8]) -> Self {
        BlockReader { buf, pos: 0 }
    }

    /// Current cursor position.
    pub fn position(&self) -> usize {
        self.pos
    }

    /// Moves the cursor to an absolute offset.
    pub fn seek(&mut self, pos: usize) -> StorageResult<()> {
        if pos > self.buf.len() {
            return Err(StorageError::Corrupt(format!(
                "seek to {pos} beyond block of {} bytes",
                self.buf.len()
            )));
        }
        self.pos = pos;
        Ok(())
    }

    fn take(&mut self, n: usize) -> StorageResult<&'a [u8]> {
        if self.pos + n > self.buf.len() {
            return Err(StorageError::Corrupt(format!(
                "read of {n} bytes at offset {} beyond block of {} bytes",
                self.pos,
                self.buf.len()
            )));
        }
        let s = &self.buf[self.pos..self.pos + n];
        self.pos += n;
        Ok(s)
    }

    /// Reads a `u8`.
    pub fn get_u8(&mut self) -> StorageResult<u8> {
        Ok(self.take(1)?[0])
    }

    /// Reads a `u16`.
    pub fn get_u16(&mut self) -> StorageResult<u16> {
        Ok(u16::from_le_bytes(self.take(2)?.try_into().unwrap()))
    }

    /// Reads a `u32`.
    pub fn get_u32(&mut self) -> StorageResult<u32> {
        Ok(u32::from_le_bytes(self.take(4)?.try_into().unwrap()))
    }

    /// Reads a `u64`.
    pub fn get_u64(&mut self) -> StorageResult<u64> {
        Ok(u64::from_le_bytes(self.take(8)?.try_into().unwrap()))
    }

    /// Reads an `f64`.
    pub fn get_f64(&mut self) -> StorageResult<f64> {
        Ok(f64::from_le_bytes(self.take(8)?.try_into().unwrap()))
    }

    /// Reads `n` raw bytes.
    pub fn get_bytes(&mut self, n: usize) -> StorageResult<&'a [u8]> {
        self.take(n)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn writer_reader_roundtrip() {
        let mut w = BlockWriter::new(64);
        w.put_u8(7).unwrap();
        w.put_u16(500).unwrap();
        w.put_u32(70_000).unwrap();
        w.put_u64(1 << 40).unwrap();
        w.put_f64(3.25).unwrap();
        w.put_bytes(b"abc").unwrap();
        assert_eq!(w.len(), 1 + 2 + 4 + 8 + 8 + 3);
        let block = w.finish();
        assert_eq!(block.len(), 64);

        let mut r = BlockReader::new(&block);
        assert_eq!(r.get_u8().unwrap(), 7);
        assert_eq!(r.get_u16().unwrap(), 500);
        assert_eq!(r.get_u32().unwrap(), 70_000);
        assert_eq!(r.get_u64().unwrap(), 1 << 40);
        assert_eq!(r.get_f64().unwrap(), 3.25);
        assert_eq!(r.get_bytes(3).unwrap(), b"abc");
    }

    #[test]
    fn writer_rejects_overflow() {
        let mut w = BlockWriter::new(8);
        w.put_u64(1).unwrap();
        assert!(matches!(w.put_u8(1), Err(StorageError::BlockOverflow { .. })));
        assert_eq!(w.remaining(), 0);
    }

    #[test]
    fn reader_rejects_truncated_reads_and_bad_seeks() {
        let buf = [1u8, 2, 3];
        let mut r = BlockReader::new(&buf);
        assert!(r.get_u64().is_err());
        assert!(r.seek(10).is_err());
        r.seek(1).unwrap();
        assert_eq!(r.get_u8().unwrap(), 2);
        assert_eq!(r.position(), 2);
    }

    #[test]
    fn finish_pads_with_zeros() {
        let mut w = BlockWriter::new(16);
        w.put_u32(0xFFFF_FFFF).unwrap();
        let b = w.finish();
        assert_eq!(&b[4..], &[0u8; 12]);
    }
}
