//! Device cost models.
//!
//! The paper runs its evaluation on a physical 1 TB HDD and an 8 TB SSD. We
//! do not have those devices, so we substitute a *cost model*: every block
//! read or write is charged a configurable latency and the harness derives
//! throughput and latency figures from the accumulated simulated time. The
//! paper itself observes that on-disk performance is determined by the number
//! of fetched blocks (O1, O4, O13), so a per-block latency model preserves
//! the comparative shape of every figure.

/// A per-block latency model for a storage device.
///
/// Latencies are expressed in nanoseconds per block operation. Sequential
/// reads (the `next` block of the previous access) can be charged a cheaper
/// rate, which matters for scan-heavy workloads on HDDs where the seek
/// dominates random accesses.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DeviceModel {
    /// Human-readable device name used in reports ("hdd", "ssd", ...).
    pub name: &'static str,
    /// Cost of a random block read, in nanoseconds.
    pub read_ns: u64,
    /// Cost of a random block write, in nanoseconds.
    pub write_ns: u64,
    /// Cost of a sequential block read (block id adjacent to the previous
    /// access in the same file), in nanoseconds.
    pub seq_read_ns: u64,
}

impl DeviceModel {
    /// A magnetic disk: seek-dominated random I/O (~10 ms), much cheaper
    /// sequential transfer (~100 µs per 4 KB block at ~40 MB/s effective).
    pub const fn hdd() -> Self {
        DeviceModel { name: "hdd", read_ns: 10_000_000, write_ns: 10_000_000, seq_read_ns: 100_000 }
    }

    /// A SATA/NVMe-class solid state disk: ~100 µs random read, ~120 µs
    /// write, sequential reads marginally cheaper.
    pub const fn ssd() -> Self {
        DeviceModel { name: "ssd", read_ns: 100_000, write_ns: 120_000, seq_read_ns: 60_000 }
    }

    /// A free device (no simulated latency); useful for pure block-count
    /// experiments and unit tests.
    pub const fn none() -> Self {
        DeviceModel { name: "none", read_ns: 0, write_ns: 0, seq_read_ns: 0 }
    }

    /// A custom model.
    pub const fn custom(name: &'static str, read_ns: u64, write_ns: u64, seq_read_ns: u64) -> Self {
        DeviceModel { name, read_ns, write_ns, seq_read_ns }
    }

    /// Cost of one read, given whether it is sequential with the previous
    /// access.
    pub fn read_cost(&self, sequential: bool) -> u64 {
        if sequential {
            self.seq_read_ns
        } else {
            self.read_ns
        }
    }

    /// Cost of one write.
    pub fn write_cost(&self) -> u64 {
        self.write_ns
    }
}

impl Default for DeviceModel {
    fn default() -> Self {
        DeviceModel::none()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn presets_are_ordered_sensibly() {
        let hdd = DeviceModel::hdd();
        let ssd = DeviceModel::ssd();
        assert!(hdd.read_ns > ssd.read_ns, "HDD random reads must be slower than SSD");
        assert!(hdd.seq_read_ns < hdd.read_ns, "HDD sequential reads are cheaper than seeks");
        assert_eq!(DeviceModel::none().read_cost(false), 0);
    }

    #[test]
    fn read_cost_distinguishes_sequential() {
        let hdd = DeviceModel::hdd();
        assert_eq!(hdd.read_cost(false), hdd.read_ns);
        assert_eq!(hdd.read_cost(true), hdd.seq_read_ns);
        assert_eq!(hdd.write_cost(), hdd.write_ns);
    }

    #[test]
    fn custom_model_roundtrips() {
        let m = DeviceModel::custom("tape", 1, 2, 3);
        assert_eq!(m.name, "tape");
        assert_eq!((m.read_ns, m.write_ns, m.seq_read_ns), (1, 2, 3));
    }
}
