//! Scan-resistant buffer management over `(file, block)` pairs.
//!
//! The paper's default configuration has *no* buffer manager — every request
//! hits the disk — but §6.6 studies the impact of caching 0–128 blocks with
//! an LRU policy (Fig. 13). This module provides that cache, generalised to a
//! small buffer-manager design space:
//!
//! * **Replacement policy** ([`ReplacementPolicy`]): strict LRU (the paper's
//!   policy and the default), a CLOCK / second-chance sweep, and a 2Q-style
//!   scan-resistant policy with probation/protected queues.
//! * **Per-kind partitions** ([`PoolPartitions`]): a fraction of the frames
//!   can be reserved for index-structure blocks ([`BlockKind::Meta`] /
//!   [`BlockKind::Inner`]) so that streaming over leaf data can never evict
//!   the hot inner path.
//! * **Access classes** ([`AccessClass`]): readers tag each request as a
//!   point access or part of a scan stream, and the policy uses the tag for
//!   admission (2Q admits scan reads into probation only; CLOCK gives them
//!   no reference bit).
//!
//! All three knobs are carried by [`PoolConfig`] and selected per
//! [`crate::Disk`] via `DiskConfig`. Two cache levels exist:
//!
//! * [`BufferPool`] — a single unsynchronised pool. Used directly by
//!   single-threaded micro-benchmarks and as the building block below.
//! * [`ShardedBufferPool`] — a lock-striped array of [`BufferPool`] shards,
//!   each behind its own mutex, selected by `(file ^ block)`. This is what
//!   [`crate::Disk`] embeds so N reader threads hitting different blocks do
//!   not serialise on one pool lock. Within a shard the configured policy
//!   applies exactly; consecutive blocks of one file stripe round-robin
//!   across shards, so the common "small pool, hot working set"
//!   configurations of Fig. 13 keep their hit behaviour.
//!
//! Cached block contents are stored as [`BlockRef`] frames — cheaply
//! clonable, `Arc`-backed, read-only views. A pool hit hands the caller a
//! clone of the frame instead of copying the bytes out, and eviction merely
//! drops the pool's reference: any caller still holding the frame keeps a
//! consistent snapshot of the block (lazy free, see `DESIGN.md` §3.2–§3.3).
//!
//! # Example
//!
//! A 2Q pool with a quarter of its frames reserved for inner/meta blocks. A
//! streaming scan admits its blocks into the probation queue only, so the
//! re-referenced (protected) point-lookup working set survives it:
//!
//! ```
//! use lidx_storage::{AccessClass, BlockKind, BlockRef, BufferPool, PoolConfig,
//!                    PoolPartitions, ReplacementPolicy};
//!
//! let mut pool = BufferPool::with_config(
//!     PoolConfig::new(8)
//!         .policy(ReplacementPolicy::TwoQ)
//!         .partitions(PoolPartitions::InnerReserved { percent: 25 }),
//! );
//! // A hot block, re-referenced once: promoted to the protected queue.
//! pool.put_ref(0, 0, BlockKind::Leaf, AccessClass::Point, BlockRef::from_vec(vec![1; 16]));
//! assert!(pool.get_ref(0, 0, AccessClass::Point).is_some());
//! // A scan streams far more blocks than the pool holds...
//! for b in 1..100u32 {
//!     pool.put_ref(0, b, BlockKind::Leaf, AccessClass::Scan, BlockRef::from_vec(vec![0; 16]));
//! }
//! // ...but only churns probation: the protected hot block is still cached.
//! assert!(pool.contains(0, 0));
//! ```

use std::collections::HashMap;
use std::sync::Arc;

use parking_lot::Mutex;

use crate::stats::BlockKind;

/// A pinned, read-only view of one block's contents.
///
/// `BlockRef` is the unit of the zero-copy read path: the buffer pool, the
/// last-block-reuse slot and every index hot path share the same `Arc`-backed
/// frame, so a buffer-hit lookup performs no allocation and no byte copy —
/// cloning a `BlockRef` is one atomic increment. Frames are immutable once
/// published; a write to the same `(file, block)` installs a *new* frame,
/// leaving outstanding references with the snapshot they pinned.
#[derive(Clone, Debug)]
pub struct BlockRef(Arc<Vec<u8>>);

impl BlockRef {
    /// Wraps an owned buffer into a frame without copying it.
    pub fn from_vec(data: Vec<u8>) -> Self {
        BlockRef(Arc::new(data))
    }

    /// The block contents.
    pub fn as_slice(&self) -> &[u8] {
        &self.0
    }

    /// Number of live references to this frame (the pool's copy counts as
    /// one). Exposed for pin-accounting tests.
    pub fn ref_count(&self) -> usize {
        Arc::strong_count(&self.0)
    }
}

impl std::ops::Deref for BlockRef {
    type Target = [u8];

    fn deref(&self) -> &[u8] {
        &self.0
    }
}

impl AsRef<[u8]> for BlockRef {
    fn as_ref(&self) -> &[u8] {
        &self.0
    }
}

/// How a block request relates to the access pattern around it.
///
/// Scans announce themselves so the replacement policy can keep a streaming
/// pass from flushing the point-lookup working set: under
/// [`ReplacementPolicy::TwoQ`] scan-class blocks are admitted into the
/// probation queue only and a scan-class re-reference does not promote, and
/// under [`ReplacementPolicy::Clock`] scan-class hits do not set the
/// reference bit. Strict LRU ignores the class — it is the scan-vulnerable
/// baseline the paper evaluates.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum AccessClass {
    /// An individual (point) access: lookups, descents, read-modify-write.
    #[default]
    Point,
    /// Part of a sequential scan stream over many blocks.
    Scan,
}

/// The frame replacement policy of a [`BufferPool`] partition.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum ReplacementPolicy {
    /// Strict least-recently-used (the paper's Fig. 13 policy, and the
    /// default). Every hit front-moves the frame; eviction takes the tail.
    /// A one-pass scan therefore replaces the entire pool.
    #[default]
    Lru,
    /// CLOCK (second-chance): frames sit in a ring; a point hit sets the
    /// frame's reference bit, and the eviction hand clears bits until it
    /// finds an unreferenced victim. Scan-class accesses never set the bit,
    /// so streamed blocks are reclaimed on the hand's first pass while
    /// re-referenced point frames survive a full sweep.
    Clock,
    /// 2Q-style scan resistance: frames enter a probation FIFO; a *point*
    /// re-reference promotes to a protected LRU segment capped at 3/4 of the
    /// partition, while scan-class blocks stay in probation. Evictions take
    /// probation first and touch protected frames only when probation is
    /// empty, so a full-table scan churns probation and leaves the promoted
    /// working set resident.
    TwoQ,
}

impl ReplacementPolicy {
    /// All policies, in a stable order used by sweeps and reports.
    pub const ALL: [ReplacementPolicy; 3] =
        [ReplacementPolicy::Lru, ReplacementPolicy::Clock, ReplacementPolicy::TwoQ];

    /// Short lowercase name used in experiment output.
    pub fn name(self) -> &'static str {
        match self {
            ReplacementPolicy::Lru => "lru",
            ReplacementPolicy::Clock => "clock",
            ReplacementPolicy::TwoQ => "2q",
        }
    }
}

impl std::fmt::Display for ReplacementPolicy {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// How pool frames are divided between block kinds.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum PoolPartitions {
    /// Every block kind competes for the same frames (the paper's setting,
    /// and the default).
    #[default]
    Unified,
    /// `percent`% of the frames (clamped to `1..=capacity-1`) are reserved
    /// for index-structure blocks ([`BlockKind::Meta`] and
    /// [`BlockKind::Inner`]); leaf and utility blocks compete only for the
    /// remainder. Each partition runs its own instance of the configured
    /// policy and evicts strictly within itself, so a data scan can *never*
    /// steal an inner frame. Pools of fewer than 2 frames cannot be split
    /// and fall back to [`PoolPartitions::Unified`].
    InnerReserved {
        /// Share of the capacity reserved for meta/inner frames, in percent.
        percent: u8,
    },
}

impl PoolPartitions {
    /// Short name used in experiment output.
    pub fn name(self) -> &'static str {
        match self {
            PoolPartitions::Unified => "unified",
            PoolPartitions::InnerReserved { .. } => "inner-reserved",
        }
    }
}

/// Construction-time configuration of a [`BufferPool`] /
/// [`ShardedBufferPool`].
///
/// ```
/// use lidx_storage::{PoolConfig, PoolPartitions, ReplacementPolicy};
///
/// // The paper's configuration: plain LRU, no partitions.
/// let fig13 = PoolConfig::new(64);
/// assert_eq!(fig13.policy, ReplacementPolicy::Lru);
///
/// // A scan-resistant pool: 2Q with 25% of frames reserved for inner nodes.
/// let resistant = PoolConfig::new(64)
///     .policy(ReplacementPolicy::TwoQ)
///     .partitions(PoolPartitions::InnerReserved { percent: 25 });
/// assert_eq!(resistant.capacity, 64);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct PoolConfig {
    /// Total capacity in blocks; 0 disables caching entirely.
    pub capacity: usize,
    /// The replacement policy (applied per partition).
    pub policy: ReplacementPolicy,
    /// How frames are divided between block kinds.
    pub partitions: PoolPartitions,
}

impl PoolConfig {
    /// An LRU, unpartitioned pool of `capacity` blocks — exactly the paper's
    /// Fig. 13 buffer manager.
    pub fn new(capacity: usize) -> Self {
        PoolConfig { capacity, ..Default::default() }
    }

    /// Sets the replacement policy.
    #[must_use]
    pub fn policy(mut self, policy: ReplacementPolicy) -> Self {
        self.policy = policy;
        self
    }

    /// Sets the partitioning scheme.
    #[must_use]
    pub fn partitions(mut self, partitions: PoolPartitions) -> Self {
        self.partitions = partitions;
        self
    }

    /// The per-partition capacities this configuration resolves to:
    /// `[reserved, general]` when partitioned, `[capacity]` otherwise.
    pub fn partition_capacities(&self) -> Vec<usize> {
        match self.partitions {
            PoolPartitions::InnerReserved { percent } if self.capacity >= 2 => {
                let reserved = (self.capacity * percent as usize / 100).clamp(1, self.capacity - 1);
                vec![reserved, self.capacity - reserved]
            }
            _ => vec![self.capacity],
        }
    }
}

const NIL: usize = usize::MAX;

#[derive(Debug)]
struct Entry {
    key: (u32, u32),
    data: BlockRef,
    prev: usize,
    next: usize,
    /// CLOCK reference bit.
    referenced: bool,
    /// 2Q: true when the entry lives on the protected list.
    protected: bool,
}

/// One intrusive doubly-linked list over a [`SubPool`]'s entry slab.
#[derive(Debug, Clone, Copy)]
struct List {
    head: usize,
    tail: usize,
    len: usize,
}

impl List {
    fn new() -> Self {
        List { head: NIL, tail: NIL, len: 0 }
    }
}

/// One partition: an entry slab plus the policy queues over it.
///
/// The `main` list is the LRU chain (MRU at head), the CLOCK ring (hand at
/// head, newest at tail) or the 2Q probation FIFO (newest at head, victim at
/// tail) depending on the policy; `prot` is the 2Q protected LRU segment and
/// is unused by the other policies.
#[derive(Debug)]
struct SubPool {
    policy: ReplacementPolicy,
    capacity: usize,
    /// 2Q: maximum entries on the protected list (3/4 of the capacity).
    protected_cap: usize,
    entries: Vec<Entry>,
    free: Vec<usize>,
    main: List,
    prot: List,
}

impl SubPool {
    fn new(policy: ReplacementPolicy, capacity: usize) -> Self {
        SubPool {
            policy,
            capacity,
            protected_cap: (capacity * 3 / 4).max(1),
            entries: Vec::new(),
            free: Vec::new(),
            main: List::new(),
            prot: List::new(),
        }
    }

    fn len(&self) -> usize {
        self.main.len + self.prot.len
    }

    fn list(&mut self, protected: bool) -> &mut List {
        if protected {
            &mut self.prot
        } else {
            &mut self.main
        }
    }

    fn detach(&mut self, idx: usize) {
        let (prev, next, protected) =
            (self.entries[idx].prev, self.entries[idx].next, self.entries[idx].protected);
        let list = self.list(protected);
        list.len -= 1;
        if prev != NIL {
            self.entries[prev].next = next;
        } else {
            self.list(protected).head = next;
        }
        if next != NIL {
            self.entries[next].prev = prev;
        } else {
            self.list(protected).tail = prev;
        }
        self.entries[idx].prev = NIL;
        self.entries[idx].next = NIL;
    }

    fn push_front(&mut self, idx: usize, protected: bool) {
        self.entries[idx].protected = protected;
        let head = self.list(protected).head;
        self.entries[idx].prev = NIL;
        self.entries[idx].next = head;
        if head != NIL {
            self.entries[head].prev = idx;
        }
        let list = self.list(protected);
        list.head = idx;
        if list.tail == NIL {
            list.tail = idx;
        }
        list.len += 1;
    }

    fn push_back(&mut self, idx: usize, protected: bool) {
        self.entries[idx].protected = protected;
        let tail = self.list(protected).tail;
        self.entries[idx].next = NIL;
        self.entries[idx].prev = tail;
        if tail != NIL {
            self.entries[tail].next = idx;
        }
        let list = self.list(protected);
        list.tail = idx;
        if list.head == NIL {
            list.head = idx;
        }
        list.len += 1;
    }

    /// Applies the policy's on-hit transition for `idx`.
    fn touch(&mut self, idx: usize, class: AccessClass) {
        match self.policy {
            ReplacementPolicy::Lru => {
                self.detach(idx);
                self.push_front(idx, false);
            }
            ReplacementPolicy::Clock => {
                if class == AccessClass::Point {
                    self.entries[idx].referenced = true;
                }
            }
            ReplacementPolicy::TwoQ => {
                if self.entries[idx].protected {
                    self.detach(idx);
                    self.push_front(idx, true);
                } else if class == AccessClass::Point {
                    // Promote out of probation. When protected is full, the
                    // protected LRU tail is demoted back to the front of
                    // probation (a swap, so no eviction happens on a hit).
                    self.detach(idx);
                    self.push_front(idx, true);
                    if self.prot.len > self.protected_cap {
                        let demoted = self.prot.tail;
                        self.detach(demoted);
                        self.push_front(demoted, false);
                    }
                }
                // A scan-class probation hit stays where it is: streams get
                // no second chance.
            }
        }
    }

    /// Selects the next victim (pool full), applying CLOCK's second-chance
    /// rotation as a side effect.
    fn victim(&mut self) -> usize {
        match self.policy {
            ReplacementPolicy::Lru => self.main.tail,
            ReplacementPolicy::Clock => loop {
                let hand = self.main.head;
                debug_assert_ne!(hand, NIL);
                if self.entries[hand].referenced {
                    self.entries[hand].referenced = false;
                    self.detach(hand);
                    self.push_back(hand, false);
                } else {
                    break hand;
                }
            },
            ReplacementPolicy::TwoQ => {
                if self.main.len > 0 {
                    self.main.tail
                } else {
                    self.prot.tail
                }
            }
        }
    }

    /// Admits a new frame, returning its slot and the evicted key, if any.
    fn insert(&mut self, key: (u32, u32), data: BlockRef, class: AccessClass) -> Admitted {
        debug_assert!(self.capacity > 0);
        let evicted = if self.len() >= self.capacity {
            let victim = self.victim();
            let key = self.entries[victim].key;
            self.detach(victim);
            // Drop the frame now: lazy free means outstanding caller pins
            // alone decide the snapshot's lifetime, not a dead pool slot.
            self.entries[victim].data = BlockRef::from_vec(Vec::new());
            self.free.push(victim);
            Some(key)
        } else {
            None
        };
        let entry = Entry { key, data, prev: NIL, next: NIL, referenced: false, protected: false };
        let idx = if let Some(idx) = self.free.pop() {
            self.entries[idx] = entry;
            idx
        } else {
            self.entries.push(entry);
            self.entries.len() - 1
        };
        match self.policy {
            ReplacementPolicy::Lru => self.push_front(idx, false),
            // CLOCK admits at the back of the ring with the bit clear: a
            // never-referenced (scan) frame is reclaimed on the hand's first
            // visit; `class` only matters on hits.
            ReplacementPolicy::Clock => self.push_back(idx, false),
            // 2Q admits everything into probation; only point *hits*
            // promote, so `class` matters on hits, not on admission.
            ReplacementPolicy::TwoQ => self.push_front(idx, false),
        }
        let _ = class;
        Admitted { slot: idx, evicted }
    }

    /// Removes `idx` from the pool (invalidation).
    fn remove(&mut self, idx: usize) {
        self.detach(idx);
        self.entries[idx].data = BlockRef::from_vec(Vec::new());
        self.free.push(idx);
    }

    fn clear(&mut self) {
        self.entries.clear();
        self.free.clear();
        self.main = List::new();
        self.prot = List::new();
    }
}

struct Admitted {
    slot: usize,
    evicted: Option<(u32, u32)>,
}

/// A block cache keyed by `(file, block)` with a configurable replacement
/// policy and optional per-kind partitions (see [`PoolConfig`]).
///
/// `capacity == 0` disables caching entirely (every lookup misses). The
/// default [`BufferPool::new`] constructor is the paper's strict-LRU,
/// unpartitioned Fig. 13 cache.
#[derive(Debug)]
pub struct BufferPool {
    config: PoolConfig,
    /// Map from (file, block) to (partition, slot).
    map: HashMap<(u32, u32), (u8, u32)>,
    parts: Vec<SubPool>,
    hits: u64,
    misses: u64,
}

impl BufferPool {
    /// Creates a strict-LRU, unpartitioned pool holding at most `capacity`
    /// blocks (the paper's Fig. 13 configuration).
    pub fn new(capacity: usize) -> Self {
        Self::with_config(PoolConfig::new(capacity))
    }

    /// Creates a pool from a full [`PoolConfig`].
    pub fn with_config(config: PoolConfig) -> Self {
        let parts = config
            .partition_capacities()
            .into_iter()
            .map(|cap| SubPool::new(config.policy, cap))
            .collect();
        BufferPool {
            config,
            map: HashMap::with_capacity(config.capacity.min(1 << 20)),
            parts,
            hits: 0,
            misses: 0,
        }
    }

    /// The configuration this pool was built from.
    pub fn config(&self) -> &PoolConfig {
        &self.config
    }

    /// The configured capacity in blocks.
    pub fn capacity(&self) -> usize {
        self.config.capacity
    }

    /// Number of blocks currently cached.
    pub fn len(&self) -> usize {
        self.map.len()
    }

    /// True if no blocks are cached.
    pub fn is_empty(&self) -> bool {
        self.map.is_empty()
    }

    /// Cache hits observed so far.
    pub fn hits(&self) -> u64 {
        self.hits
    }

    /// Cache misses observed so far.
    pub fn misses(&self) -> u64 {
        self.misses
    }

    /// Whether a block is resident, without touching the policy state or the
    /// hit/miss counters. Exposed for model-based tests and assertions.
    pub fn contains(&self, file: u32, block: u32) -> bool {
        self.map.contains_key(&(file, block))
    }

    /// The partition a block of `kind` is admitted to.
    fn partition_for(&self, kind: BlockKind) -> usize {
        if self.parts.len() == 1 {
            return 0;
        }
        match kind {
            BlockKind::Meta | BlockKind::Inner => 0,
            BlockKind::Leaf | BlockKind::Utility => 1,
        }
    }

    /// Looks up a block; on a hit, returns a clone of its pinned frame (no
    /// byte copy) and applies the policy's on-hit transition under the given
    /// access class.
    pub fn get_ref(&mut self, file: u32, block: u32, class: AccessClass) -> Option<BlockRef> {
        if self.config.capacity == 0 {
            self.misses += 1;
            return None;
        }
        if let Some(&(pid, idx)) = self.map.get(&(file, block)) {
            let part = &mut self.parts[pid as usize];
            let frame = part.entries[idx as usize].data.clone();
            part.touch(idx as usize, class);
            self.hits += 1;
            Some(frame)
        } else {
            self.misses += 1;
            None
        }
    }

    /// Looks up a block; on a hit, copies its contents into `out` as a
    /// point access. Returns `true` on a hit.
    pub fn get(&mut self, file: u32, block: u32, out: &mut [u8]) -> bool {
        match self.get_ref(file, block, AccessClass::Point) {
            Some(frame) => {
                out.copy_from_slice(&frame);
                true
            }
            None => false,
        }
    }

    /// Inserts or refreshes a block's pinned frame without copying the bytes,
    /// evicting within the block's partition according to the policy if that
    /// partition is full. Evicted frames are dropped, not overwritten:
    /// outstanding [`BlockRef`] clones keep their snapshot alive until
    /// released. A refresh of an already-resident block updates the frame in
    /// place and counts as an access of the given class (`kind` cannot move
    /// an existing block between partitions).
    pub fn put_ref(
        &mut self,
        file: u32,
        block: u32,
        kind: BlockKind,
        class: AccessClass,
        frame: BlockRef,
    ) {
        if self.config.capacity == 0 {
            return;
        }
        if let Some(&(pid, idx)) = self.map.get(&(file, block)) {
            let part = &mut self.parts[pid as usize];
            part.entries[idx as usize].data = frame;
            part.touch(idx as usize, class);
            return;
        }
        let pid = self.partition_for(kind);
        let admitted = self.parts[pid].insert((file, block), frame, class);
        if let Some(evicted) = admitted.evicted {
            self.map.remove(&evicted);
        }
        self.map.insert((file, block), (pid as u8, admitted.slot as u32));
    }

    /// Inserts or refreshes a block's contents from a borrowed buffer (one
    /// copy to build the frame), as a point access of leaf kind. Legacy
    /// paths and tests use this; the zero-copy read path inserts its
    /// already-owned frame via [`BufferPool::put_ref`].
    pub fn put(&mut self, file: u32, block: u32, data: &[u8]) {
        if self.config.capacity == 0 {
            // Don't build (allocate + copy) a frame just to discard it.
            return;
        }
        self.put_ref(
            file,
            block,
            BlockKind::Leaf,
            AccessClass::Point,
            BlockRef::from_vec(data.to_vec()),
        );
    }

    /// Removes a cached block if present (used when blocks are invalidated by
    /// structural modification operations).
    pub fn invalidate(&mut self, file: u32, block: u32) {
        if let Some((pid, idx)) = self.map.remove(&(file, block)) {
            self.parts[pid as usize].remove(idx as usize);
        }
    }

    /// Drops every cached block and resets hit/miss counters.
    pub fn clear(&mut self) {
        self.map.clear();
        for part in &mut self.parts {
            part.clear();
        }
        self.hits = 0;
        self.misses = 0;
    }
}

/// The maximum number of lock stripes a [`ShardedBufferPool`] uses.
pub const MAX_SHARDS: usize = 8;

/// The smallest per-stripe capacity worth striping for. Below this, shard
/// collisions would visibly distort the hit behaviour that the paper's
/// buffer-size study (Fig. 13) depends on, so smaller pools fall back to a
/// single stripe — i.e. one exact instance of the configured policy behind
/// one mutex.
pub const MIN_BLOCKS_PER_SHARD: usize = 4;

/// A lock-striped buffer pool: an array of [`BufferPool`] shards, each
/// behind its own mutex, all sharing one [`PoolConfig`] (policy and
/// partitioning apply per shard).
///
/// The shard for a block is `(file ^ block) % shards` with a power-of-two
/// shard count, so consecutive blocks of one file land on distinct shards
/// (good both for lock spreading and for keeping a sequentially-filled pool
/// balanced). Pools smaller than `2 * MIN_BLOCKS_PER_SHARD` blocks use a
/// single stripe and therefore behave *exactly* like the unsharded
/// [`BufferPool`]; larger pools trade a bounded amount of replacement-order
/// fidelity (eviction is per-stripe) for reader parallelism.
/// `capacity == 0` disables caching, exactly like [`BufferPool`].
#[derive(Debug)]
pub struct ShardedBufferPool {
    shards: Box<[Mutex<BufferPool>]>,
    mask: u32,
    config: PoolConfig,
}

impl ShardedBufferPool {
    /// Creates a strict-LRU, unpartitioned pool holding at most `capacity`
    /// blocks in total.
    pub fn new(capacity: usize) -> Self {
        Self::with_config(PoolConfig::new(capacity))
    }

    /// Creates a pool from a full [`PoolConfig`], striping `capacity` over
    /// up to [`MAX_SHARDS`] locks with at least [`MIN_BLOCKS_PER_SHARD`]
    /// blocks per stripe (so small pools keep whole-pool policy behaviour).
    pub fn with_config(config: PoolConfig) -> Self {
        let capacity = config.capacity;
        let shard_count = if capacity == 0 {
            1
        } else {
            // Largest power of two <= min(capacity / MIN_BLOCKS_PER_SHARD,
            // MAX_SHARDS), and at least 1.
            let limit = (capacity / MIN_BLOCKS_PER_SHARD).clamp(1, MAX_SHARDS);
            let mut n = 1usize;
            while n * 2 <= limit {
                n *= 2;
            }
            n
        };
        let per_shard = capacity.div_ceil(shard_count);
        let shards = (0..shard_count)
            .map(|_| {
                Mutex::new(BufferPool::with_config(PoolConfig {
                    capacity: if capacity == 0 { 0 } else { per_shard },
                    ..config
                }))
            })
            .collect::<Vec<_>>()
            .into_boxed_slice();
        ShardedBufferPool { shards, mask: shard_count as u32 - 1, config }
    }

    /// The configuration this pool was built from (total capacity; policy
    /// and partitions apply per shard).
    pub fn config(&self) -> &PoolConfig {
        &self.config
    }

    /// The configured total capacity in blocks.
    pub fn capacity(&self) -> usize {
        self.config.capacity
    }

    /// Number of lock stripes.
    pub fn shard_count(&self) -> usize {
        self.shards.len()
    }

    /// Capacity of each stripe in blocks (`ceil(capacity / shard_count)`;
    /// 0 when the pool is disabled). Exposed so model-based tests can mirror
    /// the per-stripe behaviour exactly.
    pub fn shard_capacity(&self) -> usize {
        self.shards[0].lock().capacity()
    }

    /// The stripe a given block maps to (exposed so model-based tests can
    /// mirror the placement exactly).
    pub fn shard_index(&self, file: u32, block: u32) -> usize {
        ((file ^ block) & self.mask) as usize
    }

    fn shard(&self, file: u32, block: u32) -> &Mutex<BufferPool> {
        &self.shards[self.shard_index(file, block)]
    }

    /// Number of blocks currently cached across all shards.
    pub fn len(&self) -> usize {
        self.shards.iter().map(|s| s.lock().len()).sum()
    }

    /// True if no blocks are cached.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Cache hits observed so far, across all shards.
    pub fn hits(&self) -> u64 {
        self.shards.iter().map(|s| s.lock().hits()).sum()
    }

    /// Cache misses observed so far, across all shards.
    pub fn misses(&self) -> u64 {
        self.shards.iter().map(|s| s.lock().misses()).sum()
    }

    /// Whether a block is resident, without touching policy state or
    /// counters.
    pub fn contains(&self, file: u32, block: u32) -> bool {
        self.shard(file, block).lock().contains(file, block)
    }

    /// Looks up a block; on a hit, returns a clone of its pinned frame (no
    /// byte copy) and applies the policy's on-hit transition within its
    /// shard.
    pub fn get_ref(&self, file: u32, block: u32, class: AccessClass) -> Option<BlockRef> {
        self.shard(file, block).lock().get_ref(file, block, class)
    }

    /// Looks up a block; on a hit, copies its contents into `out` as a point
    /// access. Returns `true` on a hit.
    pub fn get(&self, file: u32, block: u32, out: &mut [u8]) -> bool {
        self.shard(file, block).lock().get(file, block, out)
    }

    /// Inserts or refreshes a block's pinned frame without copying the
    /// bytes, evicting within the block's shard and partition if full.
    pub fn put_ref(
        &self,
        file: u32,
        block: u32,
        kind: BlockKind,
        class: AccessClass,
        frame: BlockRef,
    ) {
        self.shard(file, block).lock().put_ref(file, block, kind, class, frame);
    }

    /// Inserts or refreshes a block's contents from a borrowed buffer (one
    /// copy to build the frame), as a point access of leaf kind.
    pub fn put(&self, file: u32, block: u32, data: &[u8]) {
        self.shard(file, block).lock().put(file, block, data);
    }

    /// Removes a cached block if present.
    pub fn invalidate(&self, file: u32, block: u32) {
        self.shard(file, block).lock().invalidate(file, block);
    }

    /// Drops every cached block and resets hit/miss counters.
    pub fn clear(&self) {
        for s in self.shards.iter() {
            s.lock().clear();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn blk(v: u8, n: usize) -> Vec<u8> {
        vec![v; n]
    }

    #[test]
    fn zero_capacity_never_caches() {
        let mut p = BufferPool::new(0);
        p.put(0, 0, &blk(1, 8));
        let mut out = blk(0, 8);
        assert!(!p.get(0, 0, &mut out));
        assert_eq!(p.len(), 0);
        assert_eq!(p.misses(), 1);
    }

    #[test]
    fn hit_returns_latest_contents() {
        let mut p = BufferPool::new(2);
        p.put(0, 5, &blk(9, 8));
        let mut out = blk(0, 8);
        assert!(p.get(0, 5, &mut out));
        assert_eq!(out, blk(9, 8));
        p.put(0, 5, &blk(7, 8));
        assert!(p.get(0, 5, &mut out));
        assert_eq!(out, blk(7, 8));
        assert_eq!(p.len(), 1);
    }

    #[test]
    fn lru_evicts_least_recently_used() {
        let mut p = BufferPool::new(2);
        p.put(0, 1, &blk(1, 4));
        p.put(0, 2, &blk(2, 4));
        // touch block 1 so block 2 becomes LRU
        let mut out = blk(0, 4);
        assert!(p.get(0, 1, &mut out));
        p.put(0, 3, &blk(3, 4));
        assert!(p.get(0, 1, &mut out), "recently used block must survive");
        assert!(!p.get(0, 2, &mut out), "LRU block must have been evicted");
        assert!(p.get(0, 3, &mut out));
        assert_eq!(p.len(), 2);
    }

    #[test]
    fn invalidate_releases_the_pool_reference() {
        let mut p = BufferPool::new(4);
        p.put_ref(0, 1, BlockKind::Leaf, AccessClass::Point, BlockRef::from_vec(vec![9u8; 8]));
        let pinned = p.get_ref(0, 1, AccessClass::Point).unwrap();
        assert_eq!(pinned.ref_count(), 2, "pool + caller");
        p.invalidate(0, 1);
        assert_eq!(pinned.ref_count(), 1, "invalidate must drop the pool's reference");
        assert_eq!(&pinned[..], &[9u8; 8]);
    }

    #[test]
    fn invalidate_and_clear() {
        let mut p = BufferPool::new(4);
        p.put(1, 1, &blk(1, 4));
        p.put(1, 2, &blk(2, 4));
        p.invalidate(1, 1);
        let mut out = blk(0, 4);
        assert!(!p.get(1, 1, &mut out));
        assert!(p.get(1, 2, &mut out));
        p.clear();
        assert!(p.is_empty());
        assert_eq!(p.hits(), 0);
        // reuse of freed slots must not corrupt the list
        p.put(1, 3, &blk(3, 4));
        p.put(1, 4, &blk(4, 4));
        assert!(p.get(1, 3, &mut out));
        assert_eq!(out, blk(3, 4));
    }

    #[test]
    fn files_do_not_collide() {
        let mut p = BufferPool::new(4);
        p.put(0, 7, &blk(1, 4));
        p.put(1, 7, &blk(2, 4));
        let mut out = blk(0, 4);
        assert!(p.get(0, 7, &mut out));
        assert_eq!(out, blk(1, 4));
        assert!(p.get(1, 7, &mut out));
        assert_eq!(out, blk(2, 4));
    }

    #[test]
    fn heavy_churn_respects_capacity() {
        for policy in ReplacementPolicy::ALL {
            let mut p = BufferPool::with_config(PoolConfig::new(8).policy(policy));
            for i in 0..1000u32 {
                p.put(0, i, &blk((i % 251) as u8, 16));
                assert!(p.len() <= 8, "{policy}: over capacity");
            }
            // The last-inserted block is always resident, whatever the
            // policy (it was just admitted).
            assert!(p.contains(0, 999), "{policy}: newest block must be resident");
        }
        // Strict LRU keeps exactly the most recent 8.
        let mut p = BufferPool::new(8);
        for i in 0..1000u32 {
            p.put(0, i, &blk((i % 251) as u8, 16));
        }
        let mut out = blk(0, 16);
        for i in 992..1000u32 {
            assert!(p.get(0, i, &mut out), "block {i} should be resident");
        }
    }

    #[test]
    fn clock_gives_referenced_frames_a_second_chance() {
        let mut p = BufferPool::with_config(PoolConfig::new(3).policy(ReplacementPolicy::Clock));
        p.put(0, 0, &blk(0, 4));
        p.put(0, 1, &blk(1, 4));
        p.put(0, 2, &blk(2, 4));
        // Reference block 1 (sets its bit); 0 and 2 stay unreferenced.
        assert!(p.get_ref(0, 1, AccessClass::Point).is_some());
        // Admitting 3 sweeps the hand: 0 (unreferenced, oldest) is evicted.
        p.put(0, 3, &blk(3, 4));
        assert!(!p.contains(0, 0), "unreferenced oldest frame is the victim");
        assert!(p.contains(0, 1), "referenced frame survives the sweep");
        // Admitting 4 evicts 2: the hand passed 1, clearing its bit but
        // giving it a second chance (1 rotates behind the newer frames).
        p.put(0, 4, &blk(4, 4));
        assert!(!p.contains(0, 2));
        assert!(p.contains(0, 1));
        // The hand reclaims the never-referenced 3 first, then — its bit now
        // clear — frame 1's second chance is spent.
        p.put(0, 5, &blk(5, 4));
        assert!(!p.contains(0, 3));
        assert!(p.contains(0, 1));
        p.put(0, 6, &blk(6, 4));
        assert!(!p.contains(0, 1), "second chance is spent");
        assert_eq!(p.len(), 3);
    }

    #[test]
    fn clock_scan_hits_set_no_reference_bit() {
        let mut p = BufferPool::with_config(PoolConfig::new(2).policy(ReplacementPolicy::Clock));
        p.put(0, 0, &blk(0, 4));
        p.put(0, 1, &blk(1, 4));
        // A scan-class hit leaves the bit clear...
        assert!(p.get_ref(0, 0, AccessClass::Scan).is_some());
        p.put(0, 2, &blk(2, 4));
        assert!(!p.contains(0, 0), "scan hit must not protect a frame");
        // ...while a point hit protects the frame for one sweep.
        assert!(p.get_ref(0, 1, AccessClass::Point).is_some());
        p.put(0, 3, &blk(3, 4));
        assert!(p.contains(0, 1));
    }

    #[test]
    fn twoq_scan_stream_cannot_evict_the_protected_set() {
        let mut p = BufferPool::with_config(PoolConfig::new(8).policy(ReplacementPolicy::TwoQ));
        // Hot blocks 0..4: admitted (probation), then point-referenced
        // (promoted to protected).
        for b in 0..4u32 {
            p.put(0, b, &blk(b as u8, 4));
        }
        for b in 0..4u32 {
            assert!(p.get_ref(0, b, AccessClass::Point).is_some());
        }
        // A scan streams 100 blocks through the pool as scan class.
        for b in 100..200u32 {
            p.put_ref(0, b, BlockKind::Leaf, AccessClass::Scan, BlockRef::from_vec(blk(9, 4)));
        }
        for b in 0..4u32 {
            assert!(p.contains(0, b), "protected block {b} must survive the scan");
        }
        assert!(p.len() <= 8);
        // Hot hits after the scan are still served from the pool.
        let before = p.hits();
        for b in 0..4u32 {
            assert!(p.get_ref(0, b, AccessClass::Point).is_some());
        }
        assert_eq!(p.hits() - before, 4);
    }

    #[test]
    fn twoq_scan_class_hits_do_not_promote() {
        let mut p = BufferPool::with_config(PoolConfig::new(4).policy(ReplacementPolicy::TwoQ));
        // Block 0 is admitted and re-referenced by a *scan*: it must stay in
        // probation and be evicted by later admissions, FIFO order.
        p.put(0, 0, &blk(0, 4));
        assert!(p.get_ref(0, 0, AccessClass::Scan).is_some());
        for b in 1..5u32 {
            p.put(0, b, &blk(b as u8, 4));
        }
        assert!(!p.contains(0, 0), "scan re-reference must not promote");
    }

    #[test]
    fn twoq_probation_evicts_before_protected() {
        let mut p = BufferPool::with_config(PoolConfig::new(4).policy(ReplacementPolicy::TwoQ));
        p.put(0, 0, &blk(0, 4));
        assert!(p.get_ref(0, 0, AccessClass::Point).is_some(), "promote block 0");
        // Fill with probation blocks and keep churning: block 0 survives.
        for b in 1..20u32 {
            p.put(0, b, &blk(b as u8, 4));
            assert!(p.contains(0, 0), "protected block evicted while probation non-empty");
        }
    }

    #[test]
    fn inner_reservation_shields_inner_blocks_from_leaf_churn() {
        for policy in ReplacementPolicy::ALL {
            let mut p = BufferPool::with_config(
                PoolConfig::new(8)
                    .policy(policy)
                    .partitions(PoolPartitions::InnerReserved { percent: 25 }),
            );
            // Two inner blocks fill the reserved partition (25% of 8 = 2).
            for b in 0..2u32 {
                p.put_ref(
                    9,
                    b,
                    BlockKind::Inner,
                    AccessClass::Point,
                    BlockRef::from_vec(blk(b as u8, 4)),
                );
            }
            // A leaf scan streams 500 blocks; it may only use the general
            // partition.
            for b in 0..500u32 {
                p.put_ref(0, b, BlockKind::Leaf, AccessClass::Scan, BlockRef::from_vec(blk(1, 4)));
            }
            for b in 0..2u32 {
                assert!(p.contains(9, b), "{policy}: inner block {b} stolen by a leaf scan");
            }
            assert!(p.len() <= 8);
        }
    }

    #[test]
    fn partition_capacities_resolve_sanely() {
        let caps = |cfg: PoolConfig| cfg.partition_capacities();
        assert_eq!(caps(PoolConfig::new(64)), vec![64]);
        let part = |capacity, percent| {
            caps(PoolConfig::new(capacity).partitions(PoolPartitions::InnerReserved { percent }))
        };
        assert_eq!(part(64, 25), vec![16, 48]);
        // Clamped to leave both partitions at least one frame.
        assert_eq!(part(64, 0), vec![1, 63]);
        assert_eq!(part(64, 100), vec![63, 1]);
        assert_eq!(part(2, 50), vec![1, 1]);
        // Too small to split: unified.
        assert_eq!(part(1, 50), vec![1]);
        assert_eq!(part(0, 50), vec![0]);
    }

    #[test]
    fn contains_does_not_perturb_policy_state() {
        let mut p = BufferPool::new(2);
        p.put(0, 1, &blk(1, 4));
        p.put(0, 2, &blk(2, 4));
        // `contains` on block 1 must NOT refresh it...
        assert!(p.contains(0, 1));
        p.put(0, 3, &blk(3, 4));
        // ...so it is still the LRU victim.
        assert!(!p.contains(0, 1));
        assert_eq!(p.hits() + p.misses(), 0, "contains must not count as an access");
    }
}

#[cfg(test)]
mod sharded_tests {
    use super::*;

    #[test]
    fn shard_count_tracks_capacity() {
        // Small pools (every Fig. 13 size up to 4 blocks) stay on one
        // stripe and are therefore an exact global strict LRU.
        assert_eq!(ShardedBufferPool::new(0).shard_count(), 1);
        assert_eq!(ShardedBufferPool::new(1).shard_count(), 1);
        assert_eq!(ShardedBufferPool::new(4).shard_count(), 1);
        assert_eq!(ShardedBufferPool::new(7).shard_count(), 1);
        // Larger pools stripe, always keeping >= 4 blocks per stripe.
        assert_eq!(ShardedBufferPool::new(8).shard_count(), 2);
        assert_eq!(ShardedBufferPool::new(16).shard_count(), 4);
        assert_eq!(ShardedBufferPool::new(64).shard_count(), 8);
        assert_eq!(ShardedBufferPool::new(128).shard_count(), 8);
        assert_eq!(ShardedBufferPool::new(64).capacity(), 64);
        assert!(ShardedBufferPool::new(64).shard_capacity() >= 4);
    }

    #[test]
    fn small_pools_behave_as_exact_global_lru() {
        // Capacity 2 with accesses that would collide on a striped pool: a
        // strict global LRU of 2 keeps both blocks resident. This pins the
        // Fig. 13 small-pool fidelity.
        let p = ShardedBufferPool::new(2);
        assert_eq!(p.shard_count(), 1);
        p.put(0, 0, &[1u8; 8]);
        p.put(0, 2, &[2u8; 8]);
        let mut out = [0u8; 8];
        for _ in 0..4 {
            assert!(p.get(0, 0, &mut out), "block 0 must stay resident");
            assert!(p.get(0, 2, &mut out), "block 2 must stay resident");
        }
        assert_eq!(p.hits(), 8);
    }

    #[test]
    fn consecutive_blocks_stripe_across_shards() {
        let p = ShardedBufferPool::new(16);
        assert_eq!(p.shard_count(), 4);
        let seen: std::collections::HashSet<_> = (0..4u32).map(|b| p.shard_index(0, b)).collect();
        assert_eq!(seen.len(), 4, "blocks 0..4 must land on distinct shards");
        // A sequentially-filled pool therefore stays balanced and resident.
        for b in 0..16u32 {
            p.put(0, b, &[b as u8; 8]);
        }
        let mut out = vec![0u8; 8];
        for b in [2u32, 0, 3, 1, 15, 8] {
            assert!(p.get(0, b, &mut out), "block {b} must be resident");
            assert_eq!(out, vec![b as u8; 8]);
        }
        assert_eq!(p.hits(), 6);
        assert_eq!(p.len(), 16);
    }

    #[test]
    fn zero_capacity_disables_caching() {
        let p = ShardedBufferPool::new(0);
        p.put(0, 0, &[1u8; 8]);
        let mut out = [0u8; 8];
        assert!(!p.get(0, 0, &mut out));
        assert!(p.is_empty());
        assert_eq!(p.misses(), 1);
    }

    #[test]
    fn invalidate_and_clear_are_shard_aware() {
        let p = ShardedBufferPool::new(8);
        for b in 0..8u32 {
            p.put(1, b, &[b as u8; 8]);
        }
        p.invalidate(1, 5);
        let mut out = [0u8; 8];
        assert!(!p.get(1, 5, &mut out));
        assert!(p.get(1, 6, &mut out));
        p.clear();
        assert!(p.is_empty());
        assert_eq!(p.hits(), 0);
    }

    #[test]
    fn sharded_policy_and_partitions_apply_per_shard() {
        let p = ShardedBufferPool::with_config(
            PoolConfig::new(32)
                .policy(ReplacementPolicy::TwoQ)
                .partitions(PoolPartitions::InnerReserved { percent: 25 }),
        );
        assert_eq!(p.config().policy, ReplacementPolicy::TwoQ);
        // Inner blocks fill their reservation, then a huge leaf scan
        // streams through: every inner block must survive, in every shard.
        for b in 0..8u32 {
            p.put_ref(
                7,
                b,
                BlockKind::Inner,
                AccessClass::Point,
                BlockRef::from_vec(vec![b as u8; 8]),
            );
        }
        for b in 0..1000u32 {
            p.put_ref(0, b, BlockKind::Leaf, AccessClass::Scan, BlockRef::from_vec(vec![0; 8]));
        }
        for b in 0..8u32 {
            assert!(p.contains(7, b), "inner block {b} stolen by the scan");
        }
        assert!(p.len() <= 32 + p.shard_count());
    }

    #[test]
    fn concurrent_get_put_keeps_blocks_intact() {
        // 8 threads hammer the pool with whole-block values; any hit must
        // return an untorn block (all bytes identical). Exercised under
        // every policy, since each rewires the shard-internal queues.
        for policy in ReplacementPolicy::ALL {
            let p = ShardedBufferPool::with_config(PoolConfig::new(16).policy(policy));
            let p = &p;
            std::thread::scope(|s| {
                for t in 0..8u32 {
                    s.spawn(move || {
                        let mut out = vec![0u8; 64];
                        for round in 0..500u32 {
                            let block = (round.wrapping_mul(7) + t) % 32;
                            p.put(0, block, &[(block % 251) as u8; 64]);
                            if p.get(0, block, &mut out) {
                                assert!(
                                    out.iter().all(|&b| b == (block % 251) as u8),
                                    "torn block {block}: {out:?}"
                                );
                            }
                        }
                    });
                }
            });
            assert!(p.len() <= 16 + p.shard_count());
        }
    }
}
