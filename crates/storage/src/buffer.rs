//! An LRU buffer pool over `(file, block)` pairs.
//!
//! The paper's default configuration has *no* buffer manager — every request
//! hits the disk — but §6.6 studies the impact of caching 0–128 blocks with
//! an LRU policy (Fig. 13). This module provides that cache. It is a simple
//! strict-LRU map; the evaluation is single-threaded per query so no latching
//! or pinning protocol is required.

use std::collections::HashMap;

/// A strict-LRU cache of block contents keyed by `(file, block)`.
///
/// `capacity == 0` disables caching entirely (every lookup misses).
#[derive(Debug)]
pub struct BufferPool {
    capacity: usize,
    /// Map from (file, block) to the index of its entry in `entries`.
    map: HashMap<(u32, u32), usize>,
    /// Slab of entries; `lru_prev` / `lru_next` form a doubly linked list.
    entries: Vec<Entry>,
    head: usize,
    tail: usize,
    free: Vec<usize>,
    hits: u64,
    misses: u64,
}

#[derive(Debug)]
struct Entry {
    key: (u32, u32),
    data: Vec<u8>,
    prev: usize,
    next: usize,
}

const NIL: usize = usize::MAX;

impl BufferPool {
    /// Creates a pool holding at most `capacity` blocks.
    pub fn new(capacity: usize) -> Self {
        BufferPool {
            capacity,
            map: HashMap::with_capacity(capacity.min(1 << 20)),
            entries: Vec::with_capacity(capacity.min(1 << 20)),
            head: NIL,
            tail: NIL,
            free: Vec::new(),
            hits: 0,
            misses: 0,
        }
    }

    /// The configured capacity in blocks.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Number of blocks currently cached.
    pub fn len(&self) -> usize {
        self.map.len()
    }

    /// True if no blocks are cached.
    pub fn is_empty(&self) -> bool {
        self.map.is_empty()
    }

    /// Cache hits observed so far.
    pub fn hits(&self) -> u64 {
        self.hits
    }

    /// Cache misses observed so far.
    pub fn misses(&self) -> u64 {
        self.misses
    }

    fn detach(&mut self, idx: usize) {
        let (prev, next) = (self.entries[idx].prev, self.entries[idx].next);
        if prev != NIL {
            self.entries[prev].next = next;
        } else {
            self.head = next;
        }
        if next != NIL {
            self.entries[next].prev = prev;
        } else {
            self.tail = prev;
        }
        self.entries[idx].prev = NIL;
        self.entries[idx].next = NIL;
    }

    fn push_front(&mut self, idx: usize) {
        self.entries[idx].prev = NIL;
        self.entries[idx].next = self.head;
        if self.head != NIL {
            self.entries[self.head].prev = idx;
        }
        self.head = idx;
        if self.tail == NIL {
            self.tail = idx;
        }
    }

    /// Looks up a block; on a hit, copies its contents into `out` and marks it
    /// most-recently used. Returns `true` on a hit.
    pub fn get(&mut self, file: u32, block: u32, out: &mut [u8]) -> bool {
        if self.capacity == 0 {
            self.misses += 1;
            return false;
        }
        if let Some(&idx) = self.map.get(&(file, block)) {
            out.copy_from_slice(&self.entries[idx].data);
            self.detach(idx);
            self.push_front(idx);
            self.hits += 1;
            true
        } else {
            self.misses += 1;
            false
        }
    }

    /// Inserts or refreshes a block's contents, evicting the least-recently
    /// used block if the pool is full.
    pub fn put(&mut self, file: u32, block: u32, data: &[u8]) {
        if self.capacity == 0 {
            return;
        }
        if let Some(&idx) = self.map.get(&(file, block)) {
            self.entries[idx].data.clear();
            self.entries[idx].data.extend_from_slice(data);
            self.detach(idx);
            self.push_front(idx);
            return;
        }
        if self.map.len() >= self.capacity {
            // Evict the tail (least recently used).
            let victim = self.tail;
            debug_assert_ne!(victim, NIL);
            self.detach(victim);
            let key = self.entries[victim].key;
            self.map.remove(&key);
            self.free.push(victim);
        }
        let idx = if let Some(idx) = self.free.pop() {
            self.entries[idx].key = (file, block);
            self.entries[idx].data.clear();
            self.entries[idx].data.extend_from_slice(data);
            idx
        } else {
            self.entries.push(Entry {
                key: (file, block),
                data: data.to_vec(),
                prev: NIL,
                next: NIL,
            });
            self.entries.len() - 1
        };
        self.map.insert((file, block), idx);
        self.push_front(idx);
    }

    /// Removes a cached block if present (used when blocks are invalidated by
    /// structural modification operations).
    pub fn invalidate(&mut self, file: u32, block: u32) {
        if let Some(idx) = self.map.remove(&(file, block)) {
            self.detach(idx);
            self.free.push(idx);
        }
    }

    /// Drops every cached block and resets hit/miss counters.
    pub fn clear(&mut self) {
        self.map.clear();
        self.entries.clear();
        self.free.clear();
        self.head = NIL;
        self.tail = NIL;
        self.hits = 0;
        self.misses = 0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn blk(v: u8, n: usize) -> Vec<u8> {
        vec![v; n]
    }

    #[test]
    fn zero_capacity_never_caches() {
        let mut p = BufferPool::new(0);
        p.put(0, 0, &blk(1, 8));
        let mut out = blk(0, 8);
        assert!(!p.get(0, 0, &mut out));
        assert_eq!(p.len(), 0);
        assert_eq!(p.misses(), 1);
    }

    #[test]
    fn hit_returns_latest_contents() {
        let mut p = BufferPool::new(2);
        p.put(0, 5, &blk(9, 8));
        let mut out = blk(0, 8);
        assert!(p.get(0, 5, &mut out));
        assert_eq!(out, blk(9, 8));
        p.put(0, 5, &blk(7, 8));
        assert!(p.get(0, 5, &mut out));
        assert_eq!(out, blk(7, 8));
        assert_eq!(p.len(), 1);
    }

    #[test]
    fn lru_evicts_least_recently_used() {
        let mut p = BufferPool::new(2);
        p.put(0, 1, &blk(1, 4));
        p.put(0, 2, &blk(2, 4));
        // touch block 1 so block 2 becomes LRU
        let mut out = blk(0, 4);
        assert!(p.get(0, 1, &mut out));
        p.put(0, 3, &blk(3, 4));
        assert!(p.get(0, 1, &mut out), "recently used block must survive");
        assert!(!p.get(0, 2, &mut out), "LRU block must have been evicted");
        assert!(p.get(0, 3, &mut out));
        assert_eq!(p.len(), 2);
    }

    #[test]
    fn invalidate_and_clear() {
        let mut p = BufferPool::new(4);
        p.put(1, 1, &blk(1, 4));
        p.put(1, 2, &blk(2, 4));
        p.invalidate(1, 1);
        let mut out = blk(0, 4);
        assert!(!p.get(1, 1, &mut out));
        assert!(p.get(1, 2, &mut out));
        p.clear();
        assert!(p.is_empty());
        assert_eq!(p.hits(), 0);
        // reuse of freed slots must not corrupt the list
        p.put(1, 3, &blk(3, 4));
        p.put(1, 4, &blk(4, 4));
        assert!(p.get(1, 3, &mut out));
        assert_eq!(out, blk(3, 4));
    }

    #[test]
    fn files_do_not_collide() {
        let mut p = BufferPool::new(4);
        p.put(0, 7, &blk(1, 4));
        p.put(1, 7, &blk(2, 4));
        let mut out = blk(0, 4);
        assert!(p.get(0, 7, &mut out));
        assert_eq!(out, blk(1, 4));
        assert!(p.get(1, 7, &mut out));
        assert_eq!(out, blk(2, 4));
    }

    #[test]
    fn heavy_churn_respects_capacity() {
        let mut p = BufferPool::new(8);
        for i in 0..1000u32 {
            p.put(0, i, &blk((i % 251) as u8, 16));
            assert!(p.len() <= 8);
        }
        // The last 8 inserted blocks are resident.
        let mut out = blk(0, 16);
        for i in 992..1000u32 {
            assert!(p.get(0, i, &mut out), "block {i} should be resident");
        }
    }
}
