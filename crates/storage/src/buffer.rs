//! An LRU buffer pool over `(file, block)` pairs.
//!
//! The paper's default configuration has *no* buffer manager — every request
//! hits the disk — but §6.6 studies the impact of caching 0–128 blocks with
//! an LRU policy (Fig. 13). This module provides that cache at two levels:
//!
//! * [`BufferPool`] — a single strict-LRU map, unsynchronised. Used directly
//!   by single-threaded micro-benchmarks and as the building block below.
//! * [`ShardedBufferPool`] — a lock-striped array of [`BufferPool`] shards,
//!   each behind its own mutex, selected by `(file ^ block)`. This is what
//!   [`crate::Disk`] embeds so N reader threads hitting different blocks do
//!   not serialise on one pool lock. Within a shard the policy is still
//!   strict LRU; consecutive blocks of one file stripe round-robin across
//!   shards, so the common "small pool, hot working set" configurations of
//!   Fig. 13 keep their hit behaviour.
//!
//! Cached block contents are stored as [`BlockRef`] frames — cheaply
//! clonable, `Arc`-backed, read-only views. A pool hit hands the caller a
//! clone of the frame instead of copying the bytes out, and eviction merely
//! drops the pool's reference: any caller still holding the frame keeps a
//! consistent snapshot of the block (lazy free, see `DESIGN.md`).

use std::collections::HashMap;
use std::sync::Arc;

use parking_lot::Mutex;

/// A pinned, read-only view of one block's contents.
///
/// `BlockRef` is the unit of the zero-copy read path: the buffer pool, the
/// last-block-reuse slot and every index hot path share the same `Arc`-backed
/// frame, so a buffer-hit lookup performs no allocation and no byte copy —
/// cloning a `BlockRef` is one atomic increment. Frames are immutable once
/// published; a write to the same `(file, block)` installs a *new* frame,
/// leaving outstanding references with the snapshot they pinned.
#[derive(Clone, Debug)]
pub struct BlockRef(Arc<Vec<u8>>);

impl BlockRef {
    /// Wraps an owned buffer into a frame without copying it.
    pub fn from_vec(data: Vec<u8>) -> Self {
        BlockRef(Arc::new(data))
    }

    /// The block contents.
    pub fn as_slice(&self) -> &[u8] {
        &self.0
    }

    /// Number of live references to this frame (the pool's copy counts as
    /// one). Exposed for pin-accounting tests.
    pub fn ref_count(&self) -> usize {
        Arc::strong_count(&self.0)
    }
}

impl std::ops::Deref for BlockRef {
    type Target = [u8];

    fn deref(&self) -> &[u8] {
        &self.0
    }
}

impl AsRef<[u8]> for BlockRef {
    fn as_ref(&self) -> &[u8] {
        &self.0
    }
}

/// A strict-LRU cache of block contents keyed by `(file, block)`.
///
/// `capacity == 0` disables caching entirely (every lookup misses).
#[derive(Debug)]
pub struct BufferPool {
    capacity: usize,
    /// Map from (file, block) to the index of its entry in `entries`.
    map: HashMap<(u32, u32), usize>,
    /// Slab of entries; `lru_prev` / `lru_next` form a doubly linked list.
    entries: Vec<Entry>,
    head: usize,
    tail: usize,
    free: Vec<usize>,
    hits: u64,
    misses: u64,
}

#[derive(Debug)]
struct Entry {
    key: (u32, u32),
    data: BlockRef,
    prev: usize,
    next: usize,
}

const NIL: usize = usize::MAX;

impl BufferPool {
    /// Creates a pool holding at most `capacity` blocks.
    pub fn new(capacity: usize) -> Self {
        BufferPool {
            capacity,
            map: HashMap::with_capacity(capacity.min(1 << 20)),
            entries: Vec::with_capacity(capacity.min(1 << 20)),
            head: NIL,
            tail: NIL,
            free: Vec::new(),
            hits: 0,
            misses: 0,
        }
    }

    /// The configured capacity in blocks.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Number of blocks currently cached.
    pub fn len(&self) -> usize {
        self.map.len()
    }

    /// True if no blocks are cached.
    pub fn is_empty(&self) -> bool {
        self.map.is_empty()
    }

    /// Cache hits observed so far.
    pub fn hits(&self) -> u64 {
        self.hits
    }

    /// Cache misses observed so far.
    pub fn misses(&self) -> u64 {
        self.misses
    }

    fn detach(&mut self, idx: usize) {
        let (prev, next) = (self.entries[idx].prev, self.entries[idx].next);
        if prev != NIL {
            self.entries[prev].next = next;
        } else {
            self.head = next;
        }
        if next != NIL {
            self.entries[next].prev = prev;
        } else {
            self.tail = prev;
        }
        self.entries[idx].prev = NIL;
        self.entries[idx].next = NIL;
    }

    fn push_front(&mut self, idx: usize) {
        self.entries[idx].prev = NIL;
        self.entries[idx].next = self.head;
        if self.head != NIL {
            self.entries[self.head].prev = idx;
        }
        self.head = idx;
        if self.tail == NIL {
            self.tail = idx;
        }
    }

    /// Looks up a block; on a hit, returns a clone of its pinned frame (no
    /// byte copy) and marks it most-recently used.
    pub fn get_ref(&mut self, file: u32, block: u32) -> Option<BlockRef> {
        if self.capacity == 0 {
            self.misses += 1;
            return None;
        }
        if let Some(&idx) = self.map.get(&(file, block)) {
            let frame = self.entries[idx].data.clone();
            self.detach(idx);
            self.push_front(idx);
            self.hits += 1;
            Some(frame)
        } else {
            self.misses += 1;
            None
        }
    }

    /// Looks up a block; on a hit, copies its contents into `out` and marks it
    /// most-recently used. Returns `true` on a hit.
    pub fn get(&mut self, file: u32, block: u32, out: &mut [u8]) -> bool {
        match self.get_ref(file, block) {
            Some(frame) => {
                out.copy_from_slice(&frame);
                true
            }
            None => false,
        }
    }

    /// Inserts or refreshes a block's pinned frame without copying the bytes,
    /// evicting the least-recently used block if the pool is full. Evicted
    /// frames are dropped, not overwritten: outstanding [`BlockRef`] clones
    /// keep their snapshot alive until released.
    pub fn put_ref(&mut self, file: u32, block: u32, frame: BlockRef) {
        if self.capacity == 0 {
            return;
        }
        if let Some(&idx) = self.map.get(&(file, block)) {
            self.entries[idx].data = frame;
            self.detach(idx);
            self.push_front(idx);
            return;
        }
        if self.map.len() >= self.capacity {
            // Evict the tail (least recently used).
            let victim = self.tail;
            debug_assert_ne!(victim, NIL);
            self.detach(victim);
            let key = self.entries[victim].key;
            self.map.remove(&key);
            self.free.push(victim);
        }
        let idx = if let Some(idx) = self.free.pop() {
            self.entries[idx].key = (file, block);
            self.entries[idx].data = frame;
            idx
        } else {
            self.entries.push(Entry { key: (file, block), data: frame, prev: NIL, next: NIL });
            self.entries.len() - 1
        };
        self.map.insert((file, block), idx);
        self.push_front(idx);
    }

    /// Inserts or refreshes a block's contents from a borrowed buffer (one
    /// copy to build the frame). Write paths use this; the zero-copy read
    /// path inserts its already-owned frame via [`BufferPool::put_ref`].
    pub fn put(&mut self, file: u32, block: u32, data: &[u8]) {
        if self.capacity == 0 {
            return;
        }
        self.put_ref(file, block, BlockRef::from_vec(data.to_vec()));
    }

    /// Removes a cached block if present (used when blocks are invalidated by
    /// structural modification operations).
    pub fn invalidate(&mut self, file: u32, block: u32) {
        if let Some(idx) = self.map.remove(&(file, block)) {
            self.detach(idx);
            // Drop the frame now rather than when the free-listed slot is
            // reused: lazy free means outstanding caller pins alone decide
            // the snapshot's lifetime, not a dead pool slot.
            self.entries[idx].data = BlockRef::from_vec(Vec::new());
            self.free.push(idx);
        }
    }

    /// Drops every cached block and resets hit/miss counters.
    pub fn clear(&mut self) {
        self.map.clear();
        self.entries.clear();
        self.free.clear();
        self.head = NIL;
        self.tail = NIL;
        self.hits = 0;
        self.misses = 0;
    }
}

/// The maximum number of lock stripes a [`ShardedBufferPool`] uses.
const MAX_SHARDS: usize = 8;

/// The smallest per-stripe capacity worth striping for. Below this, shard
/// collisions would visibly distort the strict-LRU hit behaviour that the
/// paper's buffer-size study (Fig. 13) depends on, so smaller pools fall
/// back to a single stripe — i.e. an exact global LRU behind one mutex.
const MIN_BLOCKS_PER_SHARD: usize = 4;

/// A lock-striped LRU buffer pool: an array of [`BufferPool`] shards, each
/// behind its own mutex.
///
/// The shard for a block is `(file ^ block) % shards` with a power-of-two
/// shard count, so consecutive blocks of one file land on distinct shards
/// (good both for lock spreading and for keeping a sequentially-filled pool
/// balanced). Pools smaller than `2 * MIN_BLOCKS_PER_SHARD` blocks use a
/// single stripe and therefore behave *exactly* like the global strict-LRU
/// [`BufferPool`]; larger pools trade a bounded amount of LRU fidelity
/// (eviction is per-stripe) for reader parallelism. `capacity == 0`
/// disables caching, exactly like [`BufferPool`].
#[derive(Debug)]
pub struct ShardedBufferPool {
    shards: Box<[Mutex<BufferPool>]>,
    mask: u32,
    capacity: usize,
}

impl ShardedBufferPool {
    /// Creates a pool holding at most `capacity` blocks in total, striped
    /// over up to [`MAX_SHARDS`] locks with at least
    /// [`MIN_BLOCKS_PER_SHARD`] blocks per stripe (so small pools keep
    /// whole-pool strict-LRU behaviour).
    pub fn new(capacity: usize) -> Self {
        let shard_count = if capacity == 0 {
            1
        } else {
            // Largest power of two <= min(capacity / MIN_BLOCKS_PER_SHARD,
            // MAX_SHARDS), and at least 1.
            let limit = (capacity / MIN_BLOCKS_PER_SHARD).clamp(1, MAX_SHARDS);
            let mut n = 1usize;
            while n * 2 <= limit {
                n *= 2;
            }
            n
        };
        let per_shard = capacity.div_ceil(shard_count);
        let shards = (0..shard_count)
            .map(|_| Mutex::new(BufferPool::new(if capacity == 0 { 0 } else { per_shard })))
            .collect::<Vec<_>>()
            .into_boxed_slice();
        ShardedBufferPool { shards, mask: shard_count as u32 - 1, capacity }
    }

    /// The configured total capacity in blocks.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Number of lock stripes.
    pub fn shard_count(&self) -> usize {
        self.shards.len()
    }

    /// Capacity of each stripe in blocks (`ceil(capacity / shard_count)`;
    /// 0 when the pool is disabled). Exposed so model-based tests can mirror
    /// the per-stripe LRU behaviour exactly.
    pub fn shard_capacity(&self) -> usize {
        self.shards[0].lock().capacity()
    }

    /// The stripe a given block maps to (exposed so model-based tests can
    /// mirror the placement exactly).
    pub fn shard_index(&self, file: u32, block: u32) -> usize {
        ((file ^ block) & self.mask) as usize
    }

    fn shard(&self, file: u32, block: u32) -> &Mutex<BufferPool> {
        &self.shards[self.shard_index(file, block)]
    }

    /// Number of blocks currently cached across all shards.
    pub fn len(&self) -> usize {
        self.shards.iter().map(|s| s.lock().len()).sum()
    }

    /// True if no blocks are cached.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Cache hits observed so far, across all shards.
    pub fn hits(&self) -> u64 {
        self.shards.iter().map(|s| s.lock().hits()).sum()
    }

    /// Cache misses observed so far, across all shards.
    pub fn misses(&self) -> u64 {
        self.shards.iter().map(|s| s.lock().misses()).sum()
    }

    /// Looks up a block; on a hit, returns a clone of its pinned frame (no
    /// byte copy) and marks it most-recently used within its shard.
    pub fn get_ref(&self, file: u32, block: u32) -> Option<BlockRef> {
        self.shard(file, block).lock().get_ref(file, block)
    }

    /// Looks up a block; on a hit, copies its contents into `out` and marks
    /// it most-recently used within its shard. Returns `true` on a hit.
    pub fn get(&self, file: u32, block: u32, out: &mut [u8]) -> bool {
        self.shard(file, block).lock().get(file, block, out)
    }

    /// Inserts or refreshes a block's pinned frame without copying the bytes,
    /// evicting the least-recently used block of its shard if that shard is
    /// full.
    pub fn put_ref(&self, file: u32, block: u32, frame: BlockRef) {
        self.shard(file, block).lock().put_ref(file, block, frame);
    }

    /// Inserts or refreshes a block's contents from a borrowed buffer (one
    /// copy to build the frame).
    pub fn put(&self, file: u32, block: u32, data: &[u8]) {
        self.shard(file, block).lock().put(file, block, data);
    }

    /// Removes a cached block if present.
    pub fn invalidate(&self, file: u32, block: u32) {
        self.shard(file, block).lock().invalidate(file, block);
    }

    /// Drops every cached block and resets hit/miss counters.
    pub fn clear(&self) {
        for s in self.shards.iter() {
            s.lock().clear();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn blk(v: u8, n: usize) -> Vec<u8> {
        vec![v; n]
    }

    #[test]
    fn zero_capacity_never_caches() {
        let mut p = BufferPool::new(0);
        p.put(0, 0, &blk(1, 8));
        let mut out = blk(0, 8);
        assert!(!p.get(0, 0, &mut out));
        assert_eq!(p.len(), 0);
        assert_eq!(p.misses(), 1);
    }

    #[test]
    fn hit_returns_latest_contents() {
        let mut p = BufferPool::new(2);
        p.put(0, 5, &blk(9, 8));
        let mut out = blk(0, 8);
        assert!(p.get(0, 5, &mut out));
        assert_eq!(out, blk(9, 8));
        p.put(0, 5, &blk(7, 8));
        assert!(p.get(0, 5, &mut out));
        assert_eq!(out, blk(7, 8));
        assert_eq!(p.len(), 1);
    }

    #[test]
    fn lru_evicts_least_recently_used() {
        let mut p = BufferPool::new(2);
        p.put(0, 1, &blk(1, 4));
        p.put(0, 2, &blk(2, 4));
        // touch block 1 so block 2 becomes LRU
        let mut out = blk(0, 4);
        assert!(p.get(0, 1, &mut out));
        p.put(0, 3, &blk(3, 4));
        assert!(p.get(0, 1, &mut out), "recently used block must survive");
        assert!(!p.get(0, 2, &mut out), "LRU block must have been evicted");
        assert!(p.get(0, 3, &mut out));
        assert_eq!(p.len(), 2);
    }

    #[test]
    fn invalidate_releases_the_pool_reference() {
        let mut p = BufferPool::new(4);
        p.put_ref(0, 1, BlockRef::from_vec(vec![9u8; 8]));
        let pinned = p.get_ref(0, 1).unwrap();
        assert_eq!(pinned.ref_count(), 2, "pool + caller");
        p.invalidate(0, 1);
        assert_eq!(pinned.ref_count(), 1, "invalidate must drop the pool's reference");
        assert_eq!(&pinned[..], &[9u8; 8]);
    }

    #[test]
    fn invalidate_and_clear() {
        let mut p = BufferPool::new(4);
        p.put(1, 1, &blk(1, 4));
        p.put(1, 2, &blk(2, 4));
        p.invalidate(1, 1);
        let mut out = blk(0, 4);
        assert!(!p.get(1, 1, &mut out));
        assert!(p.get(1, 2, &mut out));
        p.clear();
        assert!(p.is_empty());
        assert_eq!(p.hits(), 0);
        // reuse of freed slots must not corrupt the list
        p.put(1, 3, &blk(3, 4));
        p.put(1, 4, &blk(4, 4));
        assert!(p.get(1, 3, &mut out));
        assert_eq!(out, blk(3, 4));
    }

    #[test]
    fn files_do_not_collide() {
        let mut p = BufferPool::new(4);
        p.put(0, 7, &blk(1, 4));
        p.put(1, 7, &blk(2, 4));
        let mut out = blk(0, 4);
        assert!(p.get(0, 7, &mut out));
        assert_eq!(out, blk(1, 4));
        assert!(p.get(1, 7, &mut out));
        assert_eq!(out, blk(2, 4));
    }

    #[test]
    fn heavy_churn_respects_capacity() {
        let mut p = BufferPool::new(8);
        for i in 0..1000u32 {
            p.put(0, i, &blk((i % 251) as u8, 16));
            assert!(p.len() <= 8);
        }
        // The last 8 inserted blocks are resident.
        let mut out = blk(0, 16);
        for i in 992..1000u32 {
            assert!(p.get(0, i, &mut out), "block {i} should be resident");
        }
    }
}

#[cfg(test)]
mod sharded_tests {
    use super::*;

    #[test]
    fn shard_count_tracks_capacity() {
        // Small pools (every Fig. 13 size up to 4 blocks) stay on one
        // stripe and are therefore an exact global strict LRU.
        assert_eq!(ShardedBufferPool::new(0).shard_count(), 1);
        assert_eq!(ShardedBufferPool::new(1).shard_count(), 1);
        assert_eq!(ShardedBufferPool::new(4).shard_count(), 1);
        assert_eq!(ShardedBufferPool::new(7).shard_count(), 1);
        // Larger pools stripe, always keeping >= 4 blocks per stripe.
        assert_eq!(ShardedBufferPool::new(8).shard_count(), 2);
        assert_eq!(ShardedBufferPool::new(16).shard_count(), 4);
        assert_eq!(ShardedBufferPool::new(64).shard_count(), 8);
        assert_eq!(ShardedBufferPool::new(128).shard_count(), 8);
        assert_eq!(ShardedBufferPool::new(64).capacity(), 64);
        assert!(ShardedBufferPool::new(64).shard_capacity() >= 4);
    }

    #[test]
    fn small_pools_behave_as_exact_global_lru() {
        // Capacity 2 with accesses that would collide on a striped pool: a
        // strict global LRU of 2 keeps both blocks resident. This pins the
        // Fig. 13 small-pool fidelity.
        let p = ShardedBufferPool::new(2);
        assert_eq!(p.shard_count(), 1);
        p.put(0, 0, &[1u8; 8]);
        p.put(0, 2, &[2u8; 8]);
        let mut out = [0u8; 8];
        for _ in 0..4 {
            assert!(p.get(0, 0, &mut out), "block 0 must stay resident");
            assert!(p.get(0, 2, &mut out), "block 2 must stay resident");
        }
        assert_eq!(p.hits(), 8);
    }

    #[test]
    fn consecutive_blocks_stripe_across_shards() {
        let p = ShardedBufferPool::new(16);
        assert_eq!(p.shard_count(), 4);
        let seen: std::collections::HashSet<_> = (0..4u32).map(|b| p.shard_index(0, b)).collect();
        assert_eq!(seen.len(), 4, "blocks 0..4 must land on distinct shards");
        // A sequentially-filled pool therefore stays balanced and resident.
        for b in 0..16u32 {
            p.put(0, b, &[b as u8; 8]);
        }
        let mut out = vec![0u8; 8];
        for b in [2u32, 0, 3, 1, 15, 8] {
            assert!(p.get(0, b, &mut out), "block {b} must be resident");
            assert_eq!(out, vec![b as u8; 8]);
        }
        assert_eq!(p.hits(), 6);
        assert_eq!(p.len(), 16);
    }

    #[test]
    fn zero_capacity_disables_caching() {
        let p = ShardedBufferPool::new(0);
        p.put(0, 0, &[1u8; 8]);
        let mut out = [0u8; 8];
        assert!(!p.get(0, 0, &mut out));
        assert!(p.is_empty());
        assert_eq!(p.misses(), 1);
    }

    #[test]
    fn invalidate_and_clear_are_shard_aware() {
        let p = ShardedBufferPool::new(8);
        for b in 0..8u32 {
            p.put(1, b, &[b as u8; 8]);
        }
        p.invalidate(1, 5);
        let mut out = [0u8; 8];
        assert!(!p.get(1, 5, &mut out));
        assert!(p.get(1, 6, &mut out));
        p.clear();
        assert!(p.is_empty());
        assert_eq!(p.hits(), 0);
    }

    #[test]
    fn concurrent_get_put_keeps_blocks_intact() {
        // 8 threads hammer the pool with whole-block values; any hit must
        // return an untorn block (all bytes identical).
        let p = ShardedBufferPool::new(16);
        let p = &p;
        std::thread::scope(|s| {
            for t in 0..8u32 {
                s.spawn(move || {
                    let mut out = vec![0u8; 64];
                    for round in 0..500u32 {
                        let block = (round.wrapping_mul(7) + t) % 32;
                        p.put(0, block, &[(block % 251) as u8; 64]);
                        if p.get(0, block, &mut out) {
                            assert!(
                                out.iter().all(|&b| b == (block % 251) as u8),
                                "torn block {block}: {out:?}"
                            );
                        }
                    }
                });
            }
        });
        assert!(p.len() <= 16 + p.shard_count());
    }
}
