//! I/O accounting.
//!
//! Every comparative result in the paper ultimately reduces to *how many
//! blocks were fetched or written* (observations O1, O4, O13). The
//! [`IoStats`] structure therefore records reads and writes both globally and
//! attributed to a [`BlockKind`], so the harness can reproduce the
//! inner-vs-leaf breakdowns of Table 4 and the write breakdown of Fig. 6.

use std::sync::atomic::{AtomicU64, Ordering};

/// The role a block plays inside an index, used to attribute I/O.
///
/// The paper breaks fetched blocks into inner-node blocks and leaf-node
/// blocks (Table 4) and separately calls out "utility" structures such as the
/// ALEX bitmap (S3). `Meta` covers the per-index meta block holding the root
/// address, which the paper assumes to be memory-resident during operation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum BlockKind {
    /// The index meta block (root pointer and other bookkeeping).
    Meta,
    /// Blocks belonging to inner (routing) nodes.
    Inner,
    /// Blocks belonging to leaf / data nodes.
    Leaf,
    /// Auxiliary structures: ALEX bitmaps, delta buffers, LSM insert runs.
    Utility,
}

impl BlockKind {
    /// All kinds, in a stable order used for reporting.
    pub const ALL: [BlockKind; 4] =
        [BlockKind::Meta, BlockKind::Inner, BlockKind::Leaf, BlockKind::Utility];

    fn idx(self) -> usize {
        match self {
            BlockKind::Meta => 0,
            BlockKind::Inner => 1,
            BlockKind::Leaf => 2,
            BlockKind::Utility => 3,
        }
    }

    /// Human-readable label used in experiment output.
    pub fn label(self) -> &'static str {
        match self {
            BlockKind::Meta => "meta",
            BlockKind::Inner => "inner",
            BlockKind::Leaf => "leaf",
            BlockKind::Utility => "utility",
        }
    }
}

/// Aggregate I/O counters for one [`crate::Disk`] instance.
///
/// The counters are atomics so a `Disk` can be shared behind an `Arc` without
/// forcing `&mut` plumbing through the index implementations.
#[derive(Debug, Default)]
pub struct IoStats {
    reads: [AtomicU64; 4],
    writes: [AtomicU64; 4],
    /// Reads that were served by the buffer pool (not charged to the device).
    buffer_hits: AtomicU64,
    /// Reads avoided because the same block was fetched by the immediately
    /// preceding read ("last block reuse", §6.5 of the paper).
    reuse_hits: AtomicU64,
    allocated_blocks: AtomicU64,
    freed_blocks: AtomicU64,
    /// Simulated device time in nanoseconds.
    device_ns: AtomicU64,
    /// Bytes memcpy'd into caller-provided buffers by the legacy copying
    /// read path ([`crate::Disk::read`] / `read_vec`). The zero-copy
    /// [`crate::Disk::read_ref`] path never increments this, which is how
    /// the "no per-hit copy" claim is observable rather than asserted.
    bytes_copied: AtomicU64,
    /// Pinned block frames ([`crate::buffer::BlockRef`]) handed out by
    /// [`crate::Disk::read_ref`] — every read served through it (including
    /// memory-resident reads) pins exactly one frame. The legacy copying
    /// `read` only pins when it delegates to `read_ref`; its
    /// memory-resident branch fills the caller buffer directly.
    frames_pinned: AtomicU64,
    /// Read requests tagged [`crate::buffer::AccessClass::Scan`] (whether
    /// they were served by the device, the pool or the reuse slot). Index
    /// scan paths tag their block streaming so the buffer pool can admit it
    /// into probation only; this counter makes the tagging observable, so
    /// "scans announce themselves" is a tested invariant.
    scan_reads: AtomicU64,
    /// Exclusive drain chunks applied through a concurrent write front (one
    /// per `insert_batch` call made under the index write lock).
    drain_chunks: AtomicU64,
    /// Entries carried by those drain chunks.
    drain_entries: AtomicU64,
    /// Reader-side stalls: overlay reads that found the index write lock
    /// held (a drain chunk in flight) and had to block for it.
    read_stalls: AtomicU64,
    /// Writer-side stalls: stage or drain steps that found their target lock
    /// (shard mutex or index write lock) contended and had to block for it.
    write_stalls: AtomicU64,
    /// Read requests entering the outstanding-read engine (one per request in
    /// a completion wave, whether it missed, hit a cache or was a skipped
    /// prefetch).
    ios_submitted: AtomicU64,
    /// Requests retired by the outstanding-read engine (delivered frames,
    /// cache hits and parked readahead frames alike).
    ios_completed: AtomicU64,
    /// High-water mark of device fetches in flight within one completion
    /// wave — the effective queue depth actually reached.
    max_inflight: AtomicU64,
    /// Device nanoseconds saved by overlapping a wave's fetches: the sum of
    /// the wave's per-block costs minus the max actually charged.
    overlap_saved_ns: AtomicU64,
    /// Reads served from the readahead cache (frames parked by an earlier
    /// prefetch wave instead of fetched on demand).
    readahead_hits: AtomicU64,
    /// Records appended to a write-ahead-log segment.
    wal_appends: AtomicU64,
    /// Payload + record-header bytes appended to WAL segments.
    wal_bytes: AtomicU64,
    /// Entries re-staged from WAL segments during recovery replay.
    replayed_entries: AtomicU64,
    /// Group-commit syncs that actually forced a dirty WAL tail to the
    /// device (clean-tail syncs are free and not counted). Each one also
    /// records a `wal_sync` pause span in the disk's telemetry registry.
    wal_syncs: AtomicU64,
    /// Durable checkpoints written (meta save + superblock persist + WAL
    /// truncate). Each one also records a `checkpoint` pause span in the
    /// disk's telemetry registry.
    checkpoints: AtomicU64,
    /// Verified reads whose block stamp failed (torn or bit-flipped block).
    checksum_failures: AtomicU64,
    /// Transient device read errors absorbed by the bounded-backoff retry
    /// loop (each retry attempt counts once, whether it succeeded or not).
    io_retries: AtomicU64,
}

impl IoStats {
    /// Creates a zeroed counter set.
    pub fn new() -> Self {
        Self::default()
    }

    /// Records one event; normally called by [`crate::Disk`], public so
    /// harnesses and tests can account synthetic I/O.
    pub fn record_read(&self, kind: BlockKind) {
        self.reads[kind.idx()].fetch_add(1, Ordering::Relaxed);
    }

    /// Records one event; normally called by [`crate::Disk`], public so
    /// harnesses and tests can account synthetic I/O.
    pub fn record_write(&self, kind: BlockKind) {
        self.writes[kind.idx()].fetch_add(1, Ordering::Relaxed);
    }

    /// Records one event; normally called by [`crate::Disk`], public so
    /// harnesses and tests can account synthetic I/O.
    pub fn record_buffer_hit(&self) {
        self.buffer_hits.fetch_add(1, Ordering::Relaxed);
    }

    /// Records one event; normally called by [`crate::Disk`], public so
    /// harnesses and tests can account synthetic I/O.
    pub fn record_reuse_hit(&self) {
        self.reuse_hits.fetch_add(1, Ordering::Relaxed);
    }

    /// Records one event; normally called by [`crate::Disk`], public so
    /// harnesses and tests can account synthetic I/O.
    pub fn record_alloc(&self, blocks: u64) {
        self.allocated_blocks.fetch_add(blocks, Ordering::Relaxed);
    }

    /// Records one event; normally called by [`crate::Disk`], public so
    /// harnesses and tests can account synthetic I/O.
    pub fn record_free(&self, blocks: u64) {
        self.freed_blocks.fetch_add(blocks, Ordering::Relaxed);
    }

    /// Records one event; normally called by [`crate::Disk`], public so
    /// harnesses and tests can account synthetic I/O.
    pub fn record_device_ns(&self, ns: u64) {
        self.device_ns.fetch_add(ns, Ordering::Relaxed);
    }

    /// Records one event; normally called by [`crate::Disk`], public so
    /// harnesses and tests can account synthetic I/O.
    pub fn record_bytes_copied(&self, bytes: u64) {
        self.bytes_copied.fetch_add(bytes, Ordering::Relaxed);
    }

    /// Records one event; normally called by [`crate::Disk`], public so
    /// harnesses and tests can account synthetic I/O.
    pub fn record_frame_pinned(&self) {
        self.frames_pinned.fetch_add(1, Ordering::Relaxed);
    }

    /// Records one event; normally called by [`crate::Disk`], public so
    /// harnesses and tests can account synthetic I/O.
    pub fn record_scan_read(&self) {
        self.scan_reads.fetch_add(1, Ordering::Relaxed);
    }

    /// Records one exclusive drain chunk of `entries` entries applied by a
    /// concurrent write front.
    pub fn record_drain_chunk(&self, entries: u64) {
        self.drain_chunks.fetch_add(1, Ordering::Relaxed);
        self.drain_entries.fetch_add(entries, Ordering::Relaxed);
    }

    /// Records one reader-side stall (an overlay read blocked on the index
    /// write lock).
    pub fn record_read_stall(&self) {
        self.read_stalls.fetch_add(1, Ordering::Relaxed);
    }

    /// Records one writer-side stall (a stage or drain step blocked on a
    /// contended lock).
    pub fn record_write_stall(&self) {
        self.write_stalls.fetch_add(1, Ordering::Relaxed);
    }

    /// Records `n` requests entering the outstanding-read engine.
    pub fn record_ios_submitted(&self, n: u64) {
        self.ios_submitted.fetch_add(n, Ordering::Relaxed);
    }

    /// Records `n` requests retired by the outstanding-read engine.
    pub fn record_ios_completed(&self, n: u64) {
        self.ios_completed.fetch_add(n, Ordering::Relaxed);
    }

    /// Raises the in-flight high-water mark to `n` if it is larger than the
    /// current value.
    pub fn note_inflight(&self, n: u64) {
        self.max_inflight.fetch_max(n, Ordering::Relaxed);
    }

    /// Records device nanoseconds saved by overlapping a wave's fetches.
    pub fn record_overlap_saved_ns(&self, ns: u64) {
        self.overlap_saved_ns.fetch_add(ns, Ordering::Relaxed);
    }

    /// Records one read served from the readahead cache.
    pub fn record_readahead_hit(&self) {
        self.readahead_hits.fetch_add(1, Ordering::Relaxed);
    }

    /// Records one WAL record append of `bytes` bytes (header + payload).
    pub fn record_wal_append(&self, bytes: u64) {
        self.wal_appends.fetch_add(1, Ordering::Relaxed);
        self.wal_bytes.fetch_add(bytes, Ordering::Relaxed);
    }

    /// Records `n` entries re-staged from a WAL during recovery replay.
    pub fn record_replayed_entries(&self, n: u64) {
        self.replayed_entries.fetch_add(n, Ordering::Relaxed);
    }

    /// Records one group-commit WAL sync that flushed a dirty tail.
    pub fn record_wal_sync(&self) {
        self.wal_syncs.fetch_add(1, Ordering::Relaxed);
    }

    /// Records one durable checkpoint.
    pub fn record_checkpoint(&self) {
        self.checkpoints.fetch_add(1, Ordering::Relaxed);
    }

    /// Records one verified read whose block stamp failed.
    pub fn record_checksum_failure(&self) {
        self.checksum_failures.fetch_add(1, Ordering::Relaxed);
    }

    /// Records one retry of a transiently failing device read.
    pub fn record_io_retry(&self) {
        self.io_retries.fetch_add(1, Ordering::Relaxed);
    }

    /// Total device reads (all kinds), excluding buffer / reuse hits.
    pub fn reads(&self) -> u64 {
        self.reads.iter().map(|c| c.load(Ordering::Relaxed)).sum()
    }

    /// Total device writes (all kinds).
    pub fn writes(&self) -> u64 {
        self.writes.iter().map(|c| c.load(Ordering::Relaxed)).sum()
    }

    /// Device reads attributed to one block kind.
    pub fn reads_of(&self, kind: BlockKind) -> u64 {
        self.reads[kind.idx()].load(Ordering::Relaxed)
    }

    /// Device writes attributed to one block kind.
    pub fn writes_of(&self, kind: BlockKind) -> u64 {
        self.writes[kind.idx()].load(Ordering::Relaxed)
    }

    /// Number of reads satisfied by the LRU buffer pool.
    pub fn buffer_hits(&self) -> u64 {
        self.buffer_hits.load(Ordering::Relaxed)
    }

    /// Number of reads satisfied by last-block reuse.
    pub fn reuse_hits(&self) -> u64 {
        self.reuse_hits.load(Ordering::Relaxed)
    }

    /// Blocks allocated so far (never decremented; the paper notes on-disk
    /// space is not reclaimed, §6.3).
    pub fn allocated_blocks(&self) -> u64 {
        self.allocated_blocks.load(Ordering::Relaxed)
    }

    /// Blocks marked invalid by structural modification operations.
    pub fn freed_blocks(&self) -> u64 {
        self.freed_blocks.load(Ordering::Relaxed)
    }

    /// Accumulated simulated device time, in nanoseconds.
    pub fn device_ns(&self) -> u64 {
        self.device_ns.load(Ordering::Relaxed)
    }

    /// Bytes copied into caller buffers by the legacy copying read path.
    pub fn bytes_copied(&self) -> u64 {
        self.bytes_copied.load(Ordering::Relaxed)
    }

    /// Pinned frames handed out by the read path.
    pub fn frames_pinned(&self) -> u64 {
        self.frames_pinned.load(Ordering::Relaxed)
    }

    /// Read requests tagged as part of a scan stream.
    pub fn scan_reads(&self) -> u64 {
        self.scan_reads.load(Ordering::Relaxed)
    }

    /// Exclusive drain chunks applied by a concurrent write front.
    pub fn drain_chunks(&self) -> u64 {
        self.drain_chunks.load(Ordering::Relaxed)
    }

    /// Entries carried by those drain chunks.
    pub fn drain_entries(&self) -> u64 {
        self.drain_entries.load(Ordering::Relaxed)
    }

    /// Reader-side stalls on the index write lock.
    pub fn read_stalls(&self) -> u64 {
        self.read_stalls.load(Ordering::Relaxed)
    }

    /// Writer-side stalls on contended shard or index locks.
    pub fn write_stalls(&self) -> u64 {
        self.write_stalls.load(Ordering::Relaxed)
    }

    /// Requests submitted to the outstanding-read engine.
    pub fn ios_submitted(&self) -> u64 {
        self.ios_submitted.load(Ordering::Relaxed)
    }

    /// Requests retired by the outstanding-read engine.
    pub fn ios_completed(&self) -> u64 {
        self.ios_completed.load(Ordering::Relaxed)
    }

    /// High-water mark of device fetches in flight within one wave.
    pub fn max_inflight(&self) -> u64 {
        self.max_inflight.load(Ordering::Relaxed)
    }

    /// Device nanoseconds saved by overlapping wave fetches.
    pub fn overlap_saved_ns(&self) -> u64 {
        self.overlap_saved_ns.load(Ordering::Relaxed)
    }

    /// Reads served from the readahead cache.
    pub fn readahead_hits(&self) -> u64 {
        self.readahead_hits.load(Ordering::Relaxed)
    }

    /// Records appended to WAL segments.
    pub fn wal_appends(&self) -> u64 {
        self.wal_appends.load(Ordering::Relaxed)
    }

    /// Bytes appended to WAL segments (record headers included).
    pub fn wal_bytes(&self) -> u64 {
        self.wal_bytes.load(Ordering::Relaxed)
    }

    /// Entries re-staged from WAL segments during recovery replay.
    pub fn replayed_entries(&self) -> u64 {
        self.replayed_entries.load(Ordering::Relaxed)
    }

    /// Group-commit syncs that flushed a dirty WAL tail.
    pub fn wal_syncs(&self) -> u64 {
        self.wal_syncs.load(Ordering::Relaxed)
    }

    /// Durable checkpoints written.
    pub fn checkpoints(&self) -> u64 {
        self.checkpoints.load(Ordering::Relaxed)
    }

    /// Verified reads whose block stamp failed.
    pub fn checksum_failures(&self) -> u64 {
        self.checksum_failures.load(Ordering::Relaxed)
    }

    /// Transient read errors absorbed by the retry loop.
    pub fn io_retries(&self) -> u64 {
        self.io_retries.load(Ordering::Relaxed)
    }

    /// A point-in-time copy of every counter, used to compute per-operation
    /// deltas.
    pub fn snapshot(&self) -> OpStats {
        OpStats {
            reads: std::array::from_fn(|i| self.reads[i].load(Ordering::Relaxed)),
            writes: std::array::from_fn(|i| self.writes[i].load(Ordering::Relaxed)),
            buffer_hits: self.buffer_hits.load(Ordering::Relaxed),
            reuse_hits: self.reuse_hits.load(Ordering::Relaxed),
            allocated_blocks: self.allocated_blocks.load(Ordering::Relaxed),
            freed_blocks: self.freed_blocks.load(Ordering::Relaxed),
            device_ns: self.device_ns.load(Ordering::Relaxed),
            bytes_copied: self.bytes_copied.load(Ordering::Relaxed),
            frames_pinned: self.frames_pinned.load(Ordering::Relaxed),
            scan_reads: self.scan_reads.load(Ordering::Relaxed),
            drain_chunks: self.drain_chunks.load(Ordering::Relaxed),
            drain_entries: self.drain_entries.load(Ordering::Relaxed),
            read_stalls: self.read_stalls.load(Ordering::Relaxed),
            write_stalls: self.write_stalls.load(Ordering::Relaxed),
            ios_submitted: self.ios_submitted.load(Ordering::Relaxed),
            ios_completed: self.ios_completed.load(Ordering::Relaxed),
            max_inflight: self.max_inflight.load(Ordering::Relaxed),
            overlap_saved_ns: self.overlap_saved_ns.load(Ordering::Relaxed),
            readahead_hits: self.readahead_hits.load(Ordering::Relaxed),
            wal_appends: self.wal_appends.load(Ordering::Relaxed),
            wal_bytes: self.wal_bytes.load(Ordering::Relaxed),
            replayed_entries: self.replayed_entries.load(Ordering::Relaxed),
            wal_syncs: self.wal_syncs.load(Ordering::Relaxed),
            checkpoints: self.checkpoints.load(Ordering::Relaxed),
            checksum_failures: self.checksum_failures.load(Ordering::Relaxed),
            io_retries: self.io_retries.load(Ordering::Relaxed),
        }
    }

    /// Resets every counter to zero.
    pub fn reset(&self) {
        for c in &self.reads {
            c.store(0, Ordering::Relaxed);
        }
        for c in &self.writes {
            c.store(0, Ordering::Relaxed);
        }
        self.buffer_hits.store(0, Ordering::Relaxed);
        self.reuse_hits.store(0, Ordering::Relaxed);
        self.allocated_blocks.store(0, Ordering::Relaxed);
        self.freed_blocks.store(0, Ordering::Relaxed);
        self.device_ns.store(0, Ordering::Relaxed);
        self.bytes_copied.store(0, Ordering::Relaxed);
        self.frames_pinned.store(0, Ordering::Relaxed);
        self.scan_reads.store(0, Ordering::Relaxed);
        self.drain_chunks.store(0, Ordering::Relaxed);
        self.drain_entries.store(0, Ordering::Relaxed);
        self.read_stalls.store(0, Ordering::Relaxed);
        self.write_stalls.store(0, Ordering::Relaxed);
        self.ios_submitted.store(0, Ordering::Relaxed);
        self.ios_completed.store(0, Ordering::Relaxed);
        self.max_inflight.store(0, Ordering::Relaxed);
        self.overlap_saved_ns.store(0, Ordering::Relaxed);
        self.readahead_hits.store(0, Ordering::Relaxed);
        self.wal_appends.store(0, Ordering::Relaxed);
        self.wal_bytes.store(0, Ordering::Relaxed);
        self.replayed_entries.store(0, Ordering::Relaxed);
        self.wal_syncs.store(0, Ordering::Relaxed);
        self.checkpoints.store(0, Ordering::Relaxed);
        self.checksum_failures.store(0, Ordering::Relaxed);
        self.io_retries.store(0, Ordering::Relaxed);
    }
}

/// An immutable snapshot of [`IoStats`], or the difference between two
/// snapshots (one operation's worth of I/O).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct OpStats {
    reads: [u64; 4],
    writes: [u64; 4],
    /// Buffer pool hits during the window.
    pub buffer_hits: u64,
    /// Last-block reuse hits during the window.
    pub reuse_hits: u64,
    /// Blocks allocated during the window.
    pub allocated_blocks: u64,
    /// Blocks freed during the window.
    pub freed_blocks: u64,
    /// Simulated device nanoseconds spent during the window.
    pub device_ns: u64,
    /// Bytes copied into caller buffers by the legacy read path during the
    /// window (zero on the `read_ref` fast path).
    pub bytes_copied: u64,
    /// Pinned frames handed out during the window.
    pub frames_pinned: u64,
    /// Read requests tagged as part of a scan stream during the window.
    pub scan_reads: u64,
    /// Exclusive drain chunks applied during the window.
    pub drain_chunks: u64,
    /// Entries carried by those drain chunks during the window.
    pub drain_entries: u64,
    /// Reader-side lock stalls during the window.
    pub read_stalls: u64,
    /// Writer-side lock stalls during the window.
    pub write_stalls: u64,
    /// Requests submitted to the outstanding-read engine during the window.
    pub ios_submitted: u64,
    /// Requests retired by the outstanding-read engine during the window.
    pub ios_completed: u64,
    /// In-flight high-water mark. This is a level, not a flow: `since`
    /// reports the later snapshot's mark, not a difference.
    pub max_inflight: u64,
    /// Device nanoseconds saved by wave overlap during the window.
    pub overlap_saved_ns: u64,
    /// Readahead-cache hits during the window.
    pub readahead_hits: u64,
    /// WAL records appended during the window.
    pub wal_appends: u64,
    /// WAL bytes appended during the window.
    pub wal_bytes: u64,
    /// Entries re-staged from WAL replay during the window.
    pub replayed_entries: u64,
    /// Group-commit WAL syncs (dirty tails flushed) during the window.
    pub wal_syncs: u64,
    /// Durable checkpoints written during the window.
    pub checkpoints: u64,
    /// Checksum verification failures during the window.
    pub checksum_failures: u64,
    /// Transient-read retries during the window.
    pub io_retries: u64,
}

impl OpStats {
    /// Element-wise difference `self - earlier`, saturating at zero.
    #[must_use]
    pub fn since(&self, earlier: &OpStats) -> OpStats {
        OpStats {
            reads: std::array::from_fn(|i| self.reads[i].saturating_sub(earlier.reads[i])),
            writes: std::array::from_fn(|i| self.writes[i].saturating_sub(earlier.writes[i])),
            buffer_hits: self.buffer_hits.saturating_sub(earlier.buffer_hits),
            reuse_hits: self.reuse_hits.saturating_sub(earlier.reuse_hits),
            allocated_blocks: self.allocated_blocks.saturating_sub(earlier.allocated_blocks),
            freed_blocks: self.freed_blocks.saturating_sub(earlier.freed_blocks),
            device_ns: self.device_ns.saturating_sub(earlier.device_ns),
            bytes_copied: self.bytes_copied.saturating_sub(earlier.bytes_copied),
            frames_pinned: self.frames_pinned.saturating_sub(earlier.frames_pinned),
            scan_reads: self.scan_reads.saturating_sub(earlier.scan_reads),
            drain_chunks: self.drain_chunks.saturating_sub(earlier.drain_chunks),
            drain_entries: self.drain_entries.saturating_sub(earlier.drain_entries),
            read_stalls: self.read_stalls.saturating_sub(earlier.read_stalls),
            write_stalls: self.write_stalls.saturating_sub(earlier.write_stalls),
            ios_submitted: self.ios_submitted.saturating_sub(earlier.ios_submitted),
            ios_completed: self.ios_completed.saturating_sub(earlier.ios_completed),
            max_inflight: self.max_inflight,
            overlap_saved_ns: self.overlap_saved_ns.saturating_sub(earlier.overlap_saved_ns),
            readahead_hits: self.readahead_hits.saturating_sub(earlier.readahead_hits),
            wal_appends: self.wal_appends.saturating_sub(earlier.wal_appends),
            wal_bytes: self.wal_bytes.saturating_sub(earlier.wal_bytes),
            replayed_entries: self.replayed_entries.saturating_sub(earlier.replayed_entries),
            wal_syncs: self.wal_syncs.saturating_sub(earlier.wal_syncs),
            checkpoints: self.checkpoints.saturating_sub(earlier.checkpoints),
            checksum_failures: self.checksum_failures.saturating_sub(earlier.checksum_failures),
            io_retries: self.io_retries.saturating_sub(earlier.io_retries),
        }
    }

    /// Element-wise sum for aggregating windows observed on *different*
    /// disks — e.g. the per-shard disks of a sharded index. Every counter
    /// is a flow and adds across disks; `max_inflight` is a level, and N
    /// side-by-side queues do not stack into one deeper queue, so the
    /// merged window reports the deepest single queue (max, not sum).
    #[must_use]
    pub fn merge(&self, other: &OpStats) -> OpStats {
        OpStats {
            reads: std::array::from_fn(|i| self.reads[i] + other.reads[i]),
            writes: std::array::from_fn(|i| self.writes[i] + other.writes[i]),
            buffer_hits: self.buffer_hits + other.buffer_hits,
            reuse_hits: self.reuse_hits + other.reuse_hits,
            allocated_blocks: self.allocated_blocks + other.allocated_blocks,
            freed_blocks: self.freed_blocks + other.freed_blocks,
            device_ns: self.device_ns + other.device_ns,
            bytes_copied: self.bytes_copied + other.bytes_copied,
            frames_pinned: self.frames_pinned + other.frames_pinned,
            scan_reads: self.scan_reads + other.scan_reads,
            drain_chunks: self.drain_chunks + other.drain_chunks,
            drain_entries: self.drain_entries + other.drain_entries,
            read_stalls: self.read_stalls + other.read_stalls,
            write_stalls: self.write_stalls + other.write_stalls,
            ios_submitted: self.ios_submitted + other.ios_submitted,
            ios_completed: self.ios_completed + other.ios_completed,
            max_inflight: self.max_inflight.max(other.max_inflight),
            overlap_saved_ns: self.overlap_saved_ns + other.overlap_saved_ns,
            readahead_hits: self.readahead_hits + other.readahead_hits,
            wal_appends: self.wal_appends + other.wal_appends,
            wal_bytes: self.wal_bytes + other.wal_bytes,
            replayed_entries: self.replayed_entries + other.replayed_entries,
            wal_syncs: self.wal_syncs + other.wal_syncs,
            checkpoints: self.checkpoints + other.checkpoints,
            checksum_failures: self.checksum_failures + other.checksum_failures,
            io_retries: self.io_retries + other.io_retries,
        }
    }

    /// Total device reads in the window.
    pub fn reads(&self) -> u64 {
        self.reads.iter().sum()
    }

    /// Total device writes in the window.
    pub fn writes(&self) -> u64 {
        self.writes.iter().sum()
    }

    /// Device reads attributed to one kind in the window.
    pub fn reads_of(&self, kind: BlockKind) -> u64 {
        self.reads[kind.idx()]
    }

    /// Device writes attributed to one kind in the window.
    pub fn writes_of(&self, kind: BlockKind) -> u64 {
        self.writes[kind.idx()]
    }

    /// Total blocks touched (reads + writes) in the window.
    pub fn total_io(&self) -> u64 {
        self.reads() + self.writes()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_attribute_by_kind() {
        let s = IoStats::new();
        s.record_read(BlockKind::Inner);
        s.record_read(BlockKind::Inner);
        s.record_read(BlockKind::Leaf);
        s.record_write(BlockKind::Leaf);
        assert_eq!(s.reads(), 3);
        assert_eq!(s.writes(), 1);
        assert_eq!(s.reads_of(BlockKind::Inner), 2);
        assert_eq!(s.reads_of(BlockKind::Leaf), 1);
        assert_eq!(s.writes_of(BlockKind::Leaf), 1);
        assert_eq!(s.reads_of(BlockKind::Meta), 0);
    }

    #[test]
    fn snapshot_delta_isolates_an_operation() {
        let s = IoStats::new();
        s.record_read(BlockKind::Inner);
        let before = s.snapshot();
        s.record_read(BlockKind::Leaf);
        s.record_write(BlockKind::Leaf);
        s.record_device_ns(500);
        let delta = s.snapshot().since(&before);
        assert_eq!(delta.reads(), 1);
        assert_eq!(delta.writes(), 1);
        assert_eq!(delta.reads_of(BlockKind::Inner), 0);
        assert_eq!(delta.device_ns, 500);
        assert_eq!(delta.total_io(), 2);
    }

    #[test]
    fn reset_zeroes_everything() {
        let s = IoStats::new();
        s.record_read(BlockKind::Leaf);
        s.record_write(BlockKind::Meta);
        s.record_alloc(10);
        s.record_free(2);
        s.record_buffer_hit();
        s.record_reuse_hit();
        s.reset();
        assert_eq!(s.reads(), 0);
        assert_eq!(s.writes(), 0);
        assert_eq!(s.allocated_blocks(), 0);
        assert_eq!(s.freed_blocks(), 0);
        assert_eq!(s.buffer_hits(), 0);
        assert_eq!(s.reuse_hits(), 0);
    }

    /// Pins the cross-disk merge rule for *every* counter field: each
    /// window gets a distinct prime-ish value in each field, so a field
    /// accidentally taking max (or being dropped) instead of summing — or
    /// `max_inflight` accidentally summing instead of taking max — fails
    /// with the exact field named.
    #[test]
    fn merge_sums_counters_but_maxes_inflight() {
        fn window(scale: u64, inflight: u64) -> OpStats {
            let s = IoStats::new();
            s.record_read(BlockKind::Meta);
            s.record_read(BlockKind::Inner);
            s.record_read(BlockKind::Inner);
            s.record_write(BlockKind::Leaf);
            for _ in 0..scale {
                s.record_buffer_hit();
                s.record_reuse_hit();
                s.record_frame_pinned();
                s.record_scan_read();
                s.record_read_stall();
                s.record_write_stall();
                s.record_readahead_hit();
                s.record_checksum_failure();
                s.record_io_retry();
            }
            s.record_alloc(2 * scale);
            s.record_free(3 * scale);
            s.record_device_ns(5 * scale);
            s.record_bytes_copied(7 * scale);
            s.record_drain_chunk(11 * scale);
            s.record_ios_submitted(13 * scale);
            s.record_ios_completed(17 * scale);
            s.note_inflight(inflight);
            s.record_overlap_saved_ns(19 * scale);
            s.record_wal_append(23 * scale);
            s.record_replayed_entries(29 * scale);
            for _ in 0..31 * scale {
                s.record_wal_sync();
            }
            for _ in 0..37 * scale {
                s.record_checkpoint();
            }
            s.snapshot()
        }

        let a = window(1, 9);
        let b = window(10, 4);
        let merged = a.merge(&b);

        // Per-kind device counters sum kind-by-kind.
        assert_eq!(merged.reads_of(BlockKind::Meta), 2);
        assert_eq!(merged.reads_of(BlockKind::Inner), 4);
        assert_eq!(merged.reads_of(BlockKind::Leaf), 0);
        assert_eq!(merged.writes_of(BlockKind::Leaf), 2);
        assert_eq!(merged.reads(), 6);
        assert_eq!(merged.writes(), 2);

        // Every scalar flow sums (1x + 10x of its per-window value).
        assert_eq!(merged.buffer_hits, 11);
        assert_eq!(merged.reuse_hits, 11);
        assert_eq!(merged.allocated_blocks, 22);
        assert_eq!(merged.freed_blocks, 33);
        assert_eq!(merged.device_ns, 55);
        assert_eq!(merged.bytes_copied, 77);
        assert_eq!(merged.frames_pinned, 11);
        assert_eq!(merged.scan_reads, 11);
        assert_eq!(merged.drain_chunks, 2);
        assert_eq!(merged.drain_entries, 121);
        assert_eq!(merged.read_stalls, 11);
        assert_eq!(merged.write_stalls, 11);
        assert_eq!(merged.ios_submitted, 143);
        assert_eq!(merged.ios_completed, 187);
        assert_eq!(merged.overlap_saved_ns, 209);
        assert_eq!(merged.readahead_hits, 11);
        assert_eq!(merged.wal_appends, 2);
        assert_eq!(merged.wal_bytes, 253);
        assert_eq!(merged.replayed_entries, 319);
        assert_eq!(merged.wal_syncs, 341);
        assert_eq!(merged.checkpoints, 407);
        assert_eq!(merged.checksum_failures, 11);
        assert_eq!(merged.io_retries, 11);

        // Exhaustiveness backstop: a window built from non-zero values in
        // *every* field must merge to non-zero everywhere. A new counter
        // added with a forgotten (dropping) merge rule fails here even
        // before it gets its own prime above.
        let w = window(1, 9);
        assert!(w.buffer_hits > 0 && w.wal_syncs > 0 && w.checkpoints > 0);
        let dbg = format!("{merged:?}");
        assert!(
            !dbg.contains(": 0,") && !dbg.contains(": 0 }"),
            "every OpStats field must survive a merge: {dbg}"
        );

        // The queue high-water mark is a level: N disks side by side do
        // not form one deeper queue, so the merged window reports the
        // deepest single queue.
        assert_eq!(merged.max_inflight, 9);
        assert_eq!(b.merge(&a).max_inflight, 9, "max is order-independent");
    }

    #[test]
    fn contention_counters_accumulate_and_reset() {
        let s = IoStats::new();
        s.record_drain_chunk(64);
        s.record_drain_chunk(32);
        s.record_read_stall();
        s.record_write_stall();
        s.record_write_stall();
        assert_eq!(s.drain_chunks(), 2);
        assert_eq!(s.drain_entries(), 96);
        assert_eq!(s.read_stalls(), 1);
        assert_eq!(s.write_stalls(), 2);

        let before = s.snapshot();
        s.record_drain_chunk(8);
        s.record_read_stall();
        let delta = s.snapshot().since(&before);
        assert_eq!(delta.drain_chunks, 1);
        assert_eq!(delta.drain_entries, 8);
        assert_eq!(delta.read_stalls, 1);
        assert_eq!(delta.write_stalls, 0);

        s.reset();
        assert_eq!(s.drain_chunks(), 0);
        assert_eq!(s.drain_entries(), 0);
        assert_eq!(s.read_stalls(), 0);
        assert_eq!(s.write_stalls(), 0);
    }

    #[test]
    fn outstanding_io_counters_accumulate_and_reset() {
        let s = IoStats::new();
        s.record_ios_submitted(8);
        s.record_ios_completed(8);
        s.note_inflight(5);
        s.note_inflight(3); // must not lower the high-water mark
        s.record_overlap_saved_ns(700);
        s.record_readahead_hit();
        assert_eq!(s.ios_submitted(), 8);
        assert_eq!(s.ios_completed(), 8);
        assert_eq!(s.max_inflight(), 5);
        assert_eq!(s.overlap_saved_ns(), 700);
        assert_eq!(s.readahead_hits(), 1);

        let before = s.snapshot();
        s.record_ios_submitted(4);
        s.record_ios_completed(4);
        s.note_inflight(7);
        let delta = s.snapshot().since(&before);
        assert_eq!(delta.ios_submitted, 4);
        assert_eq!(delta.ios_completed, 4);
        assert_eq!(delta.max_inflight, 7, "high-water mark is a level, not a flow");

        s.reset();
        assert_eq!(s.ios_submitted(), 0);
        assert_eq!(s.ios_completed(), 0);
        assert_eq!(s.max_inflight(), 0);
        assert_eq!(s.overlap_saved_ns(), 0);
        assert_eq!(s.readahead_hits(), 0);
    }

    #[test]
    fn durability_counters_accumulate_and_reset() {
        let s = IoStats::new();
        s.record_wal_append(48);
        s.record_wal_append(32);
        s.record_replayed_entries(100);
        s.record_checksum_failure();
        s.record_io_retry();
        s.record_io_retry();
        assert_eq!(s.wal_appends(), 2);
        assert_eq!(s.wal_bytes(), 80);
        assert_eq!(s.replayed_entries(), 100);
        assert_eq!(s.checksum_failures(), 1);
        assert_eq!(s.io_retries(), 2);

        let before = s.snapshot();
        s.record_wal_append(16);
        s.record_io_retry();
        let delta = s.snapshot().since(&before);
        assert_eq!(delta.wal_appends, 1);
        assert_eq!(delta.wal_bytes, 16);
        assert_eq!(delta.io_retries, 1);
        assert_eq!(delta.checksum_failures, 0);

        s.reset();
        assert_eq!(s.wal_appends(), 0);
        assert_eq!(s.wal_bytes(), 0);
        assert_eq!(s.replayed_entries(), 0);
        assert_eq!(s.checksum_failures(), 0);
        assert_eq!(s.io_retries(), 0);
    }

    #[test]
    fn block_kind_labels_are_unique() {
        let labels: std::collections::HashSet<_> =
            BlockKind::ALL.iter().map(|k| k.label()).collect();
        assert_eq!(labels.len(), BlockKind::ALL.len());
    }
}
