//! Fault injection: a [`FaultPlan`] of scheduled I/O failures and the
//! [`FaultingBackend`] wrapper that executes it.
//!
//! The plan is a cheap, clonable handle (an `Arc` around atomic state) so a
//! test can keep one copy, hand another to the backend, and arm faults while
//! the workload runs. Four block-level faults are supported — fail the Nth
//! write outright, tear the Nth write after `k` bytes, flip one bit of the
//! Nth read, and a burst of transient `EIO`s on reads — plus one
//! checkpoint-level fault (tear the next superblock slot write) that
//! [`Disk::persist`](crate::Disk::persist) consults directly, since the
//! superblock intentionally lives outside the block backend.
//!
//! Failed and torn writes simulate a crash at that write: the wrapper
//! returns a typed error and, for tears, leaves the block prefix actually
//! written (the stamp is *not* updated, so a verified read of the torn block
//! reports [`StorageError::ChecksumMismatch`]). Transient read errors are
//! meant to be retried; the [`Disk`](crate::Disk) read path does so with
//! bounded backoff, counting each retry in
//! [`IoStats::io_retries`](crate::IoStats::io_retries).

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use crate::backend::StorageBackend;
use crate::error::{StorageError, StorageResult};
use crate::BlockId;

const DISARMED: u64 = u64::MAX;

#[derive(Debug)]
struct FaultState {
    writes_seen: AtomicU64,
    reads_seen: AtomicU64,
    /// Write ordinal (1-based) that fails outright; `DISARMED` when unarmed.
    fail_write_at: AtomicU64,
    /// Write ordinal (1-based) that tears; `DISARMED` when unarmed.
    tear_write_at: AtomicU64,
    /// Bytes of the torn write that reach the device.
    tear_keep_bytes: AtomicU64,
    /// Read ordinal (1-based) whose returned buffer gets one bit flipped.
    flip_read_at: AtomicU64,
    /// Which bit of the returned buffer to flip.
    flip_bit: AtomicU64,
    /// Remaining reads that fail with a transient EIO before succeeding.
    transient_reads: AtomicU64,
    /// Bytes of the next superblock slot write that reach the disk;
    /// `DISARMED` when unarmed.
    tear_superblock_keep: AtomicU64,
    writes_failed: AtomicU64,
    writes_torn: AtomicU64,
    reads_flipped: AtomicU64,
    transients_served: AtomicU64,
}

/// A clonable schedule of injected faults (see module docs).
#[derive(Debug, Clone)]
pub struct FaultPlan {
    state: Arc<FaultState>,
}

impl Default for FaultPlan {
    fn default() -> Self {
        Self::new()
    }
}

impl FaultPlan {
    /// Creates a plan with no faults armed.
    pub fn new() -> FaultPlan {
        FaultPlan {
            state: Arc::new(FaultState {
                writes_seen: AtomicU64::new(0),
                reads_seen: AtomicU64::new(0),
                fail_write_at: AtomicU64::new(DISARMED),
                tear_write_at: AtomicU64::new(DISARMED),
                tear_keep_bytes: AtomicU64::new(0),
                flip_read_at: AtomicU64::new(DISARMED),
                flip_bit: AtomicU64::new(0),
                transient_reads: AtomicU64::new(0),
                tear_superblock_keep: AtomicU64::new(DISARMED),
                writes_failed: AtomicU64::new(0),
                writes_torn: AtomicU64::new(0),
                reads_flipped: AtomicU64::new(0),
                transients_served: AtomicU64::new(0),
            }),
        }
    }

    /// Arms a hard failure of the `n`th block write *from now* (1-based:
    /// `1` fails the very next write).
    pub fn fail_nth_write(&self, n: u64) {
        assert!(n >= 1, "write ordinals are 1-based");
        let base = self.state.writes_seen.load(Ordering::SeqCst);
        self.state.fail_write_at.store(base + n, Ordering::SeqCst);
    }

    /// Arms a torn write: the `n`th block write from now persists only its
    /// first `keep_bytes` bytes and then reports a crash.
    pub fn tear_nth_write(&self, n: u64, keep_bytes: usize) {
        assert!(n >= 1, "write ordinals are 1-based");
        let base = self.state.writes_seen.load(Ordering::SeqCst);
        self.state.tear_keep_bytes.store(keep_bytes as u64, Ordering::SeqCst);
        self.state.tear_write_at.store(base + n, Ordering::SeqCst);
    }

    /// Arms a single-bit flip of the `n`th block read from now.
    pub fn flip_read_bit(&self, n: u64, bit: u32) {
        assert!(n >= 1, "read ordinals are 1-based");
        let base = self.state.reads_seen.load(Ordering::SeqCst);
        self.state.flip_bit.store(bit as u64, Ordering::SeqCst);
        self.state.flip_read_at.store(base + n, Ordering::SeqCst);
    }

    /// Arms `count` consecutive transient `EIO`s on reads; each retried
    /// read consumes one.
    pub fn transient_read_errors(&self, count: u64) {
        self.state.transient_reads.store(count, Ordering::SeqCst);
    }

    /// Arms a tear of the next superblock slot write after `keep_bytes`.
    pub fn tear_next_superblock(&self, keep_bytes: usize) {
        self.state.tear_superblock_keep.store(keep_bytes as u64, Ordering::SeqCst);
    }

    /// Consumes the armed superblock tear, if any (called by
    /// [`Disk::persist`](crate::Disk::persist)).
    pub fn take_superblock_tear(&self) -> Option<usize> {
        let v = self.state.tear_superblock_keep.swap(DISARMED, Ordering::SeqCst);
        (v != DISARMED).then_some(v as usize)
    }

    /// Disarms every pending fault (triggered-fault counters are kept).
    pub fn clear(&self) {
        self.state.fail_write_at.store(DISARMED, Ordering::SeqCst);
        self.state.tear_write_at.store(DISARMED, Ordering::SeqCst);
        self.state.flip_read_at.store(DISARMED, Ordering::SeqCst);
        self.state.transient_reads.store(0, Ordering::SeqCst);
        self.state.tear_superblock_keep.store(DISARMED, Ordering::SeqCst);
    }

    /// Number of writes failed outright so far.
    pub fn writes_failed(&self) -> u64 {
        self.state.writes_failed.load(Ordering::SeqCst)
    }

    /// Number of writes torn so far.
    pub fn writes_torn(&self) -> u64 {
        self.state.writes_torn.load(Ordering::SeqCst)
    }

    /// Number of reads bit-flipped so far.
    pub fn reads_flipped(&self) -> u64 {
        self.state.reads_flipped.load(Ordering::SeqCst)
    }

    /// Number of transient read errors served so far.
    pub fn transients_served(&self) -> u64 {
        self.state.transients_served.load(Ordering::SeqCst)
    }

    fn before_write(&self, data: &[u8]) -> StorageResult<Option<usize>> {
        let ord = self.state.writes_seen.fetch_add(1, Ordering::SeqCst) + 1;
        if ord == self.state.fail_write_at.load(Ordering::SeqCst) {
            self.state.writes_failed.fetch_add(1, Ordering::SeqCst);
            return Err(StorageError::Io(std::io::Error::other(format!(
                "fault plan: write {ord} failed"
            ))));
        }
        if ord == self.state.tear_write_at.load(Ordering::SeqCst) {
            self.state.writes_torn.fetch_add(1, Ordering::SeqCst);
            let keep = self.state.tear_keep_bytes.load(Ordering::SeqCst) as usize;
            return Ok(Some(keep.min(data.len())));
        }
        Ok(None)
    }

    fn after_read(&self, buf: &mut [u8]) -> StorageResult<()> {
        // Transient errors are served before the read ordinal advances, so
        // the eventual successful retry is the flippable/observable read.
        loop {
            let remaining = self.state.transient_reads.load(Ordering::SeqCst);
            if remaining == 0 {
                break;
            }
            if self
                .state
                .transient_reads
                .compare_exchange(remaining, remaining - 1, Ordering::SeqCst, Ordering::SeqCst)
                .is_ok()
            {
                self.state.transients_served.fetch_add(1, Ordering::SeqCst);
                return Err(StorageError::Transient("fault plan: injected EIO".into()));
            }
        }
        let ord = self.state.reads_seen.fetch_add(1, Ordering::SeqCst) + 1;
        if ord == self.state.flip_read_at.load(Ordering::SeqCst) {
            let bit = self.state.flip_bit.load(Ordering::SeqCst) as usize;
            let byte = (bit / 8) % buf.len().max(1);
            if !buf.is_empty() {
                buf[byte] ^= 1 << (bit % 8);
                self.state.reads_flipped.fetch_add(1, Ordering::SeqCst);
            }
        }
        Ok(())
    }
}

/// A [`StorageBackend`] wrapper that executes a [`FaultPlan`].
pub struct FaultingBackend {
    inner: Box<dyn StorageBackend>,
    plan: FaultPlan,
}

impl FaultingBackend {
    /// Wraps `inner`, injecting the faults scheduled on `plan`.
    pub fn new(inner: Box<dyn StorageBackend>, plan: FaultPlan) -> FaultingBackend {
        FaultingBackend { inner, plan }
    }

    /// The shared fault plan handle.
    pub fn plan(&self) -> &FaultPlan {
        &self.plan
    }
}

impl StorageBackend for FaultingBackend {
    fn block_size(&self) -> usize {
        self.inner.block_size()
    }

    fn create_file(&self) -> StorageResult<u32> {
        self.inner.create_file()
    }

    fn num_blocks(&self, file: u32) -> StorageResult<u32> {
        self.inner.num_blocks(file)
    }

    fn adopt_physical_size(&self, file: u32) -> StorageResult<u32> {
        // Structural, not a block I/O: consumes no fault ordinals.
        self.inner.adopt_physical_size(file)
    }

    fn extend(&self, file: u32, blocks: u32) -> StorageResult<u32> {
        self.inner.extend(file, blocks)
    }

    fn read_block(&self, file: u32, block: BlockId, buf: &mut [u8]) -> StorageResult<()> {
        self.inner.read_block(file, block, buf)?;
        self.plan.after_read(buf)
    }

    fn write_block(&self, file: u32, block: BlockId, data: &[u8]) -> StorageResult<()> {
        match self.plan.before_write(data)? {
            None => self.inner.write_block(file, block, data),
            Some(keep) => {
                // Persist the torn prefix over the block's current contents,
                // then report the crash. The stamp is left stale on purpose.
                let mut current = vec![0u8; self.inner.block_size()];
                self.inner.read_block(file, block, &mut current)?;
                current[..keep].copy_from_slice(&data[..keep]);
                self.inner.write_block(file, block, &current)?;
                Err(StorageError::Io(std::io::Error::other(format!(
                    "fault plan: write torn after {keep} bytes"
                ))))
            }
        }
    }

    fn write_stamp(&self, file: u32, block: BlockId, stamp: &[u8]) -> StorageResult<()> {
        self.inner.write_stamp(file, block, stamp)
    }

    fn read_stamp(&self, file: u32, block: BlockId) -> StorageResult<Option<Vec<u8>>> {
        self.inner.read_stamp(file, block)
    }

    fn num_files(&self) -> u32 {
        self.inner.num_files()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::backend::MemoryBackend;

    fn backend() -> (FaultingBackend, FaultPlan) {
        let plan = FaultPlan::new();
        let b = FaultingBackend::new(Box::new(MemoryBackend::new(64)), plan.clone());
        (b, plan)
    }

    #[test]
    fn nth_write_fails_and_later_writes_succeed() {
        let (b, plan) = backend();
        let f = b.create_file().unwrap();
        b.extend(f, 4).unwrap();
        plan.fail_nth_write(2);
        b.write_block(f, 0, &[1u8; 64]).unwrap();
        assert!(b.write_block(f, 1, &[2u8; 64]).is_err());
        b.write_block(f, 2, &[3u8; 64]).unwrap();
        assert_eq!(plan.writes_failed(), 1);
    }

    #[test]
    fn torn_write_persists_only_the_prefix() {
        let (b, plan) = backend();
        let f = b.create_file().unwrap();
        b.extend(f, 1).unwrap();
        b.write_block(f, 0, &[0xAAu8; 64]).unwrap();
        plan.tear_nth_write(1, 10);
        assert!(b.write_block(f, 0, &[0xBBu8; 64]).is_err());
        let mut buf = [0u8; 64];
        b.read_block(f, 0, &mut buf).unwrap();
        assert_eq!(&buf[..10], &[0xBBu8; 10]);
        assert_eq!(&buf[10..], &[0xAAu8; 54]);
        assert_eq!(plan.writes_torn(), 1);
    }

    #[test]
    fn transient_reads_fail_then_recover() {
        let (b, plan) = backend();
        let f = b.create_file().unwrap();
        b.extend(f, 1).unwrap();
        b.write_block(f, 0, &[7u8; 64]).unwrap();
        plan.transient_read_errors(2);
        let mut buf = [0u8; 64];
        assert!(matches!(b.read_block(f, 0, &mut buf), Err(StorageError::Transient(_))));
        assert!(matches!(b.read_block(f, 0, &mut buf), Err(StorageError::Transient(_))));
        b.read_block(f, 0, &mut buf).unwrap();
        assert_eq!(buf, [7u8; 64]);
        assert_eq!(plan.transients_served(), 2);
    }

    #[test]
    fn read_bit_flip_corrupts_exactly_one_bit() {
        let (b, plan) = backend();
        let f = b.create_file().unwrap();
        b.extend(f, 1).unwrap();
        b.write_block(f, 0, &[0u8; 64]).unwrap();
        plan.flip_read_bit(1, 8 * 5 + 3);
        let mut buf = [0u8; 64];
        b.read_block(f, 0, &mut buf).unwrap();
        assert_eq!(buf[5], 1 << 3);
        assert_eq!(buf.iter().map(|&x| x.count_ones()).sum::<u32>(), 1);
        // The flip is one-shot; the device itself is not corrupted.
        b.read_block(f, 0, &mut buf).unwrap();
        assert_eq!(buf, [0u8; 64]);
        assert_eq!(plan.reads_flipped(), 1);
    }

    #[test]
    fn clear_disarms_everything() {
        let (b, plan) = backend();
        let f = b.create_file().unwrap();
        b.extend(f, 1).unwrap();
        plan.fail_nth_write(1);
        plan.transient_read_errors(5);
        plan.tear_next_superblock(3);
        plan.clear();
        b.write_block(f, 0, &[1u8; 64]).unwrap();
        let mut buf = [0u8; 64];
        b.read_block(f, 0, &mut buf).unwrap();
        assert_eq!(plan.take_superblock_tear(), None);
    }
}
