//! Raw block storage backends.
//!
//! A backend is a collection of *files*, each an append-only array of
//! fixed-size blocks addressed by [`BlockId`]. Two implementations are
//! provided:
//!
//! * [`MemoryBackend`] — blocks live in a `Vec<Vec<u8>>`. This is what the
//!   evaluation harness uses: combined with the [`crate::DeviceModel`] cost
//!   accounting it behaves like a deterministic, infinitely fast disk whose
//!   I/O we *count* rather than wait for.
//! * [`FileBackend`] — blocks live in real files under a directory, accessed
//!   with positional reads/writes. Used to verify that the index
//!   implementations genuinely round-trip through persistent storage.

use std::fs::{File, OpenOptions};
use std::io::{Read, Seek, SeekFrom, Write};
use std::path::PathBuf;

use crate::error::{StorageError, StorageResult};
use crate::BlockId;

/// A block-addressed storage device holding multiple files.
///
/// All offsets are in units of whole blocks; the block size is fixed at
/// construction time and identical for every file of the backend.
pub trait StorageBackend: Send {
    /// The block size in bytes.
    fn block_size(&self) -> usize;

    /// Creates a new, empty file and returns its id.
    fn create_file(&mut self) -> StorageResult<u32>;

    /// Number of blocks currently allocated in `file`.
    fn num_blocks(&self, file: u32) -> StorageResult<u32>;

    /// Appends `count` zeroed blocks to `file`, returning the id of the first
    /// new block. The new blocks are contiguous.
    fn extend(&mut self, file: u32, count: u32) -> StorageResult<BlockId>;

    /// Reads block `block` of `file` into `buf` (which must be exactly one
    /// block long).
    fn read_block(&mut self, file: u32, block: BlockId, buf: &mut [u8]) -> StorageResult<()>;

    /// Writes `data` (exactly one block long) into block `block` of `file`.
    fn write_block(&mut self, file: u32, block: BlockId, data: &[u8]) -> StorageResult<()>;

    /// Total number of files.
    fn num_files(&self) -> u32;
}

/// An in-memory backend: every file is a vector of blocks.
#[derive(Debug)]
pub struct MemoryBackend {
    block_size: usize,
    files: Vec<Vec<u8>>,
}

impl MemoryBackend {
    /// Creates an empty backend with the given block size.
    pub fn new(block_size: usize) -> Self {
        assert!(block_size >= 64, "block size must be at least 64 bytes");
        MemoryBackend { block_size, files: Vec::new() }
    }

    fn check(&self, file: u32, block: BlockId) -> StorageResult<usize> {
        let f = self.files.get(file as usize).ok_or(StorageError::UnknownFile(file))?;
        let len = (f.len() / self.block_size) as u32;
        if block >= len {
            return Err(StorageError::BlockOutOfRange { file, block, len });
        }
        Ok(block as usize * self.block_size)
    }
}

impl StorageBackend for MemoryBackend {
    fn block_size(&self) -> usize {
        self.block_size
    }

    fn create_file(&mut self) -> StorageResult<u32> {
        self.files.push(Vec::new());
        Ok((self.files.len() - 1) as u32)
    }

    fn num_blocks(&self, file: u32) -> StorageResult<u32> {
        let f = self.files.get(file as usize).ok_or(StorageError::UnknownFile(file))?;
        Ok((f.len() / self.block_size) as u32)
    }

    fn extend(&mut self, file: u32, count: u32) -> StorageResult<BlockId> {
        let bs = self.block_size;
        let f = self.files.get_mut(file as usize).ok_or(StorageError::UnknownFile(file))?;
        let first = (f.len() / bs) as u32;
        f.resize(f.len() + count as usize * bs, 0);
        Ok(first)
    }

    fn read_block(&mut self, file: u32, block: BlockId, buf: &mut [u8]) -> StorageResult<()> {
        if buf.len() != self.block_size {
            return Err(StorageError::BadBufferSize { got: buf.len(), expected: self.block_size });
        }
        let off = self.check(file, block)?;
        buf.copy_from_slice(&self.files[file as usize][off..off + self.block_size]);
        Ok(())
    }

    fn write_block(&mut self, file: u32, block: BlockId, data: &[u8]) -> StorageResult<()> {
        if data.len() != self.block_size {
            return Err(StorageError::BadBufferSize { got: data.len(), expected: self.block_size });
        }
        let off = self.check(file, block)?;
        self.files[file as usize][off..off + self.block_size].copy_from_slice(data);
        Ok(())
    }

    fn num_files(&self) -> u32 {
        self.files.len() as u32
    }
}

/// A backend storing each file as a real file on the local filesystem.
///
/// Files are named `file_<id>.blk` inside the directory supplied at
/// construction. The directory is created if needed and is *not* removed on
/// drop; callers own its lifecycle (the test-suite uses temporary
/// directories).
#[derive(Debug)]
pub struct FileBackend {
    block_size: usize,
    dir: PathBuf,
    files: Vec<File>,
    sizes: Vec<u32>,
}

impl FileBackend {
    /// Opens (creating if necessary) a file-backed store in `dir`.
    pub fn new(dir: impl Into<PathBuf>, block_size: usize) -> StorageResult<Self> {
        assert!(block_size >= 64, "block size must be at least 64 bytes");
        let dir = dir.into();
        std::fs::create_dir_all(&dir)?;
        Ok(FileBackend { block_size, dir, files: Vec::new(), sizes: Vec::new() })
    }

    /// The directory backing this store.
    pub fn dir(&self) -> &std::path::Path {
        &self.dir
    }

    fn file_mut(&mut self, file: u32) -> StorageResult<&mut File> {
        self.files.get_mut(file as usize).ok_or(StorageError::UnknownFile(file))
    }
}

impl StorageBackend for FileBackend {
    fn block_size(&self) -> usize {
        self.block_size
    }

    fn create_file(&mut self) -> StorageResult<u32> {
        let id = self.files.len() as u32;
        let path = self.dir.join(format!("file_{id}.blk"));
        let f = OpenOptions::new().read(true).write(true).create(true).truncate(true).open(path)?;
        self.files.push(f);
        self.sizes.push(0);
        Ok(id)
    }

    fn num_blocks(&self, file: u32) -> StorageResult<u32> {
        self.sizes.get(file as usize).copied().ok_or(StorageError::UnknownFile(file))
    }

    fn extend(&mut self, file: u32, count: u32) -> StorageResult<BlockId> {
        let bs = self.block_size;
        let first = self.num_blocks(file)?;
        let new_len = (first as u64 + count as u64) * bs as u64;
        self.file_mut(file)?.set_len(new_len)?;
        self.sizes[file as usize] = first + count;
        Ok(first)
    }

    fn read_block(&mut self, file: u32, block: BlockId, buf: &mut [u8]) -> StorageResult<()> {
        if buf.len() != self.block_size {
            return Err(StorageError::BadBufferSize { got: buf.len(), expected: self.block_size });
        }
        let len = self.num_blocks(file)?;
        if block >= len {
            return Err(StorageError::BlockOutOfRange { file, block, len });
        }
        let off = block as u64 * self.block_size as u64;
        let f = self.file_mut(file)?;
        f.seek(SeekFrom::Start(off))?;
        f.read_exact(buf)?;
        Ok(())
    }

    fn write_block(&mut self, file: u32, block: BlockId, data: &[u8]) -> StorageResult<()> {
        if data.len() != self.block_size {
            return Err(StorageError::BadBufferSize { got: data.len(), expected: self.block_size });
        }
        let len = self.num_blocks(file)?;
        if block >= len {
            return Err(StorageError::BlockOutOfRange { file, block, len });
        }
        let off = block as u64 * self.block_size as u64;
        let f = self.file_mut(file)?;
        f.seek(SeekFrom::Start(off))?;
        f.write_all(data)?;
        Ok(())
    }

    fn num_files(&self) -> u32 {
        self.files.len() as u32
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn roundtrip(backend: &mut dyn StorageBackend) {
        let bs = backend.block_size();
        let f = backend.create_file().unwrap();
        assert_eq!(backend.num_blocks(f).unwrap(), 0);
        let first = backend.extend(f, 4).unwrap();
        assert_eq!(first, 0);
        assert_eq!(backend.num_blocks(f).unwrap(), 4);

        let mut data = vec![0u8; bs];
        data[0] = 0xAB;
        data[bs - 1] = 0xCD;
        backend.write_block(f, 2, &data).unwrap();

        let mut out = vec![0u8; bs];
        backend.read_block(f, 2, &mut out).unwrap();
        assert_eq!(out, data);

        // untouched block stays zeroed
        backend.read_block(f, 3, &mut out).unwrap();
        assert!(out.iter().all(|&b| b == 0));

        // second extension is contiguous
        let next = backend.extend(f, 2).unwrap();
        assert_eq!(next, 4);
        assert_eq!(backend.num_blocks(f).unwrap(), 6);
    }

    #[test]
    fn memory_backend_roundtrip() {
        let mut b = MemoryBackend::new(256);
        roundtrip(&mut b);
    }

    #[test]
    fn file_backend_roundtrip() {
        let dir = std::env::temp_dir().join(format!("lidx-storage-test-{}", std::process::id()));
        let mut b = FileBackend::new(&dir, 256).unwrap();
        roundtrip(&mut b);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn out_of_range_and_bad_sizes_error() {
        let mut b = MemoryBackend::new(128);
        let f = b.create_file().unwrap();
        b.extend(f, 1).unwrap();
        let mut small = vec![0u8; 64];
        assert!(matches!(b.read_block(f, 0, &mut small), Err(StorageError::BadBufferSize { .. })));
        let mut ok = vec![0u8; 128];
        assert!(matches!(b.read_block(f, 5, &mut ok), Err(StorageError::BlockOutOfRange { .. })));
        assert!(matches!(b.read_block(9, 0, &mut ok), Err(StorageError::UnknownFile(9))));
    }

    #[test]
    fn multiple_files_are_independent() {
        let mut b = MemoryBackend::new(128);
        let f1 = b.create_file().unwrap();
        let f2 = b.create_file().unwrap();
        b.extend(f1, 2).unwrap();
        b.extend(f2, 5).unwrap();
        assert_eq!(b.num_blocks(f1).unwrap(), 2);
        assert_eq!(b.num_blocks(f2).unwrap(), 5);
        assert_eq!(b.num_files(), 2);

        let mut data = vec![7u8; 128];
        b.write_block(f1, 1, &data).unwrap();
        data.fill(9);
        b.write_block(f2, 1, &data).unwrap();
        let mut out = vec![0u8; 128];
        b.read_block(f1, 1, &mut out).unwrap();
        assert!(out.iter().all(|&x| x == 7));
    }
}
