//! Raw block storage backends.
//!
//! A backend is a collection of *files*, each an append-only array of
//! fixed-size blocks addressed by [`BlockId`]. Two implementations are
//! provided:
//!
//! * [`MemoryBackend`] — blocks live in a `Vec<Vec<u8>>`. This is what the
//!   evaluation harness uses: combined with the [`crate::DeviceModel`] cost
//!   accounting it behaves like a deterministic, infinitely fast disk whose
//!   I/O we *count* rather than wait for.
//! * [`FileBackend`] — blocks live in real files under a directory, accessed
//!   with positional reads/writes. Used to verify that the index
//!   implementations genuinely round-trip through persistent storage.
//!
//! Every method takes `&self`: backends synchronise internally (a reader /
//! writer lock over the file table) so N reader threads can fetch blocks in
//! parallel without serialising on the [`crate::Disk`] façade. Structural
//! operations (`create_file`, `extend`) take the write lock; block reads and
//! writes only need the read lock — concurrent writes to the *same* block
//! are the caller's responsibility, which the frozen-index read phase
//! guarantees never happens.

use std::fs::{File, OpenOptions};
use std::path::PathBuf;

use parking_lot::RwLock;

use crate::error::{StorageError, StorageResult};
use crate::BlockId;

/// A block-addressed storage device holding multiple files.
///
/// All offsets are in units of whole blocks; the block size is fixed at
/// construction time and identical for every file of the backend. The
/// `Send + Sync` bounds are what allow a [`crate::Disk`] to be shared across
/// reader threads.
pub trait StorageBackend: Send + Sync {
    /// The block size in bytes.
    fn block_size(&self) -> usize;

    /// Creates a new, empty file and returns its id.
    fn create_file(&self) -> StorageResult<u32>;

    /// Number of blocks currently allocated in `file`.
    fn num_blocks(&self, file: u32) -> StorageResult<u32>;

    /// Appends `count` zeroed blocks to `file`, returning the id of the first
    /// new block. The new blocks are contiguous.
    fn extend(&self, file: u32, count: u32) -> StorageResult<BlockId>;

    /// Reads block `block` of `file` into `buf` (which must be exactly one
    /// block long).
    fn read_block(&self, file: u32, block: BlockId, buf: &mut [u8]) -> StorageResult<()>;

    /// Writes `data` (exactly one block long) into block `block` of `file`.
    fn write_block(&self, file: u32, block: BlockId, data: &[u8]) -> StorageResult<()>;

    /// Stores the integrity stamp of block `block` in the backend's sidecar
    /// table (see [`crate::format::BlockStamp`]). Stamps live *next to*
    /// blocks, not inside them, so enabling verification never changes block
    /// capacity. The default is a no-op for backends without a sidecar.
    fn write_stamp(&self, _file: u32, _block: BlockId, _stamp: &[u8]) -> StorageResult<()> {
        Ok(())
    }

    /// Reads back the stamp of block `block`, or `None` when the block has
    /// never been stamped (never written, or the backend keeps no sidecar).
    fn read_stamp(&self, _file: u32, _block: BlockId) -> StorageResult<Option<Vec<u8>>> {
        Ok(None)
    }

    /// Grows the logical block count of `file` to cover every whole block
    /// physically present in the underlying store, returning the new count.
    ///
    /// The superblock's per-file counts are authoritative on reopen for
    /// index files (a torn trailing extend must not expose garbage), but a
    /// WAL file legitimately grows *between* checkpoints: its post-checkpoint
    /// extends carry synced records that replay must see. The WAL validates
    /// every adopted block by stamp, epoch and record CRC, so trailing
    /// garbage is trimmed, not trusted. The default (backends whose logical
    /// and physical sizes always agree) is a no-op.
    fn adopt_physical_size(&self, file: u32) -> StorageResult<u32> {
        self.num_blocks(file)
    }

    /// Total number of files.
    fn num_files(&self) -> u32;
}

/// An in-memory backend: every file is a vector of blocks.
#[derive(Debug)]
pub struct MemoryBackend {
    block_size: usize,
    files: RwLock<Vec<Vec<u8>>>,
    /// Per-file sidecar stamp tables, keyed by block id. Kept outside the
    /// block vectors so stamping never perturbs block capacity.
    stamps: RwLock<Vec<std::collections::HashMap<BlockId, Vec<u8>>>>,
}

impl MemoryBackend {
    /// Creates an empty backend with the given block size.
    pub fn new(block_size: usize) -> Self {
        assert!(block_size >= 64, "block size must be at least 64 bytes");
        MemoryBackend {
            block_size,
            files: RwLock::new(Vec::new()),
            stamps: RwLock::new(Vec::new()),
        }
    }

    fn check(&self, files: &[Vec<u8>], file: u32, block: BlockId) -> StorageResult<usize> {
        let f = files.get(file as usize).ok_or(StorageError::UnknownFile(file))?;
        let len = (f.len() / self.block_size) as u32;
        if block >= len {
            return Err(StorageError::BlockOutOfRange { file, block, len });
        }
        Ok(block as usize * self.block_size)
    }
}

impl StorageBackend for MemoryBackend {
    fn block_size(&self) -> usize {
        self.block_size
    }

    fn create_file(&self) -> StorageResult<u32> {
        let mut files = self.files.write();
        files.push(Vec::new());
        self.stamps.write().push(std::collections::HashMap::new());
        Ok((files.len() - 1) as u32)
    }

    fn num_blocks(&self, file: u32) -> StorageResult<u32> {
        let files = self.files.read();
        let f = files.get(file as usize).ok_or(StorageError::UnknownFile(file))?;
        Ok((f.len() / self.block_size) as u32)
    }

    fn extend(&self, file: u32, count: u32) -> StorageResult<BlockId> {
        let bs = self.block_size;
        let mut files = self.files.write();
        let f = files.get_mut(file as usize).ok_or(StorageError::UnknownFile(file))?;
        let first = (f.len() / bs) as u32;
        f.resize(f.len() + count as usize * bs, 0);
        Ok(first)
    }

    fn read_block(&self, file: u32, block: BlockId, buf: &mut [u8]) -> StorageResult<()> {
        if buf.len() != self.block_size {
            return Err(StorageError::BadBufferSize { got: buf.len(), expected: self.block_size });
        }
        let files = self.files.read();
        let off = self.check(&files, file, block)?;
        buf.copy_from_slice(&files[file as usize][off..off + self.block_size]);
        Ok(())
    }

    fn write_block(&self, file: u32, block: BlockId, data: &[u8]) -> StorageResult<()> {
        if data.len() != self.block_size {
            return Err(StorageError::BadBufferSize { got: data.len(), expected: self.block_size });
        }
        let mut files = self.files.write();
        let off = self.check(&files, file, block)?;
        files[file as usize][off..off + self.block_size].copy_from_slice(data);
        Ok(())
    }

    fn write_stamp(&self, file: u32, block: BlockId, stamp: &[u8]) -> StorageResult<()> {
        let mut stamps = self.stamps.write();
        let table = stamps.get_mut(file as usize).ok_or(StorageError::UnknownFile(file))?;
        table.insert(block, stamp.to_vec());
        Ok(())
    }

    fn read_stamp(&self, file: u32, block: BlockId) -> StorageResult<Option<Vec<u8>>> {
        let stamps = self.stamps.read();
        let table = stamps.get(file as usize).ok_or(StorageError::UnknownFile(file))?;
        Ok(table.get(&block).cloned())
    }

    fn num_files(&self) -> u32 {
        self.files.read().len() as u32
    }
}

/// A backend storing each file as a real file on the local filesystem.
///
/// Files are named `file_<id>.blk` inside the directory supplied at
/// construction. The directory is created if needed and is *not* removed on
/// drop; callers own its lifecycle (the test-suite uses temporary
/// directories). Block I/O uses positional reads/writes (`pread`/`pwrite`
/// on Unix, `seek_read`/`seek_write` on Windows), which work through a
/// shared `&File`, so readers never contend on a seek position.
#[derive(Debug)]
pub struct FileBackend {
    block_size: usize,
    dir: PathBuf,
    state: RwLock<FileBackendState>,
}

#[derive(Debug, Default)]
struct FileBackendState {
    files: Vec<File>,
    /// `file_<id>.sum` sidecars holding one 12-byte stamp per block.
    sums: Vec<File>,
    sizes: Vec<u32>,
}

impl FileBackend {
    /// Opens (creating if necessary) a file-backed store in `dir`.
    pub fn new(dir: impl Into<PathBuf>, block_size: usize) -> StorageResult<Self> {
        assert!(block_size >= 64, "block size must be at least 64 bytes");
        let dir = dir.into();
        std::fs::create_dir_all(&dir)?;
        Ok(FileBackend { block_size, dir, state: RwLock::new(FileBackendState::default()) })
    }

    /// Reopens an existing store without truncating anything. `file_blocks`
    /// (the superblock's per-file counts) is authoritative: every listed
    /// file is opened and sized to at least its recorded count, so a torn
    /// trailing `extend` from before the crash cannot shrink the visible
    /// address space below the last checkpoint.
    pub fn open_existing(
        dir: impl Into<PathBuf>,
        block_size: usize,
        file_blocks: &[u32],
    ) -> StorageResult<Self> {
        assert!(block_size >= 64, "block size must be at least 64 bytes");
        let dir = dir.into();
        let mut state = FileBackendState::default();
        for (id, &blocks) in file_blocks.iter().enumerate() {
            let path = dir.join(format!("file_{id}.blk"));
            // Reopen keeps whatever is already on disk: recovery decides
            // what to trust, not the open call.
            let f = OpenOptions::new()
                .read(true)
                .write(true)
                .create(true)
                .truncate(false)
                .open(&path)?;
            let want = blocks as u64 * block_size as u64;
            if f.metadata()?.len() < want {
                f.set_len(want)?;
            }
            let sum_path = dir.join(format!("file_{id}.sum"));
            let sum = OpenOptions::new()
                .read(true)
                .write(true)
                .create(true)
                .truncate(false)
                .open(&sum_path)?;
            state.files.push(f);
            state.sums.push(sum);
            state.sizes.push(blocks);
        }
        Ok(FileBackend { block_size, dir, state: RwLock::new(state) })
    }

    /// The directory backing this store.
    pub fn dir(&self) -> &std::path::Path {
        &self.dir
    }
}

impl FileBackendState {
    fn checked(&self, file: u32, block: BlockId) -> StorageResult<&File> {
        let len = *self.sizes.get(file as usize).ok_or(StorageError::UnknownFile(file))?;
        if block >= len {
            return Err(StorageError::BlockOutOfRange { file, block, len });
        }
        Ok(&self.files[file as usize])
    }
}

/// Positional read through a shared `&File` (no seek-pointer contention).
#[cfg(unix)]
fn read_at(f: &File, buf: &mut [u8], offset: u64) -> std::io::Result<()> {
    std::os::unix::fs::FileExt::read_exact_at(f, buf, offset)
}

/// Positional write through a shared `&File` (no seek-pointer contention).
#[cfg(unix)]
fn write_at(f: &File, data: &[u8], offset: u64) -> std::io::Result<()> {
    std::os::unix::fs::FileExt::write_all_at(f, data, offset)
}

#[cfg(windows)]
fn read_at(f: &File, mut buf: &mut [u8], mut offset: u64) -> std::io::Result<()> {
    // seek_read moves the OS file pointer, but every access in this backend
    // passes an absolute offset, so that is harmless.
    while !buf.is_empty() {
        let n = std::os::windows::fs::FileExt::seek_read(f, buf, offset)?;
        if n == 0 {
            return Err(std::io::Error::new(
                std::io::ErrorKind::UnexpectedEof,
                "unexpected end of block file",
            ));
        }
        buf = &mut buf[n..];
        offset += n as u64;
    }
    Ok(())
}

#[cfg(windows)]
fn write_at(f: &File, mut data: &[u8], mut offset: u64) -> std::io::Result<()> {
    while !data.is_empty() {
        let n = std::os::windows::fs::FileExt::seek_write(f, data, offset)?;
        data = &data[n..];
        offset += n as u64;
    }
    Ok(())
}

impl StorageBackend for FileBackend {
    fn block_size(&self) -> usize {
        self.block_size
    }

    fn create_file(&self) -> StorageResult<u32> {
        let mut state = self.state.write();
        let id = state.files.len() as u32;
        let path = self.dir.join(format!("file_{id}.blk"));
        let f = OpenOptions::new().read(true).write(true).create(true).truncate(true).open(path)?;
        let sum_path = self.dir.join(format!("file_{id}.sum"));
        let sum =
            OpenOptions::new().read(true).write(true).create(true).truncate(true).open(sum_path)?;
        state.files.push(f);
        state.sums.push(sum);
        state.sizes.push(0);
        Ok(id)
    }

    fn num_blocks(&self, file: u32) -> StorageResult<u32> {
        self.state.read().sizes.get(file as usize).copied().ok_or(StorageError::UnknownFile(file))
    }

    fn adopt_physical_size(&self, file: u32) -> StorageResult<u32> {
        let mut state = self.state.write();
        let current = *state.sizes.get(file as usize).ok_or(StorageError::UnknownFile(file))?;
        let physical =
            (state.files[file as usize].metadata()?.len() / self.block_size as u64) as u32;
        let adopted = current.max(physical);
        state.sizes[file as usize] = adopted;
        Ok(adopted)
    }

    fn extend(&self, file: u32, count: u32) -> StorageResult<BlockId> {
        let bs = self.block_size;
        let mut state = self.state.write();
        let first = *state.sizes.get(file as usize).ok_or(StorageError::UnknownFile(file))?;
        let new_len = (first as u64 + count as u64) * bs as u64;
        state.files[file as usize].set_len(new_len)?;
        state.sizes[file as usize] = first + count;
        Ok(first)
    }

    fn read_block(&self, file: u32, block: BlockId, buf: &mut [u8]) -> StorageResult<()> {
        if buf.len() != self.block_size {
            return Err(StorageError::BadBufferSize { got: buf.len(), expected: self.block_size });
        }
        let state = self.state.read();
        let f = state.checked(file, block)?;
        read_at(f, buf, block as u64 * self.block_size as u64)?;
        Ok(())
    }

    fn write_block(&self, file: u32, block: BlockId, data: &[u8]) -> StorageResult<()> {
        if data.len() != self.block_size {
            return Err(StorageError::BadBufferSize { got: data.len(), expected: self.block_size });
        }
        let state = self.state.read();
        let f = state.checked(file, block)?;
        write_at(f, data, block as u64 * self.block_size as u64)?;
        Ok(())
    }

    fn write_stamp(&self, file: u32, block: BlockId, stamp: &[u8]) -> StorageResult<()> {
        let state = self.state.read();
        state.checked(file, block)?;
        let sum = &state.sums[file as usize];
        write_at(sum, stamp, block as u64 * stamp.len() as u64)?;
        Ok(())
    }

    fn read_stamp(&self, file: u32, block: BlockId) -> StorageResult<Option<Vec<u8>>> {
        let state = self.state.read();
        state.checked(file, block)?;
        let sum = &state.sums[file as usize];
        let mut buf = vec![0u8; crate::format::BlockStamp::BYTES];
        let off = block as u64 * buf.len() as u64;
        if sum.metadata()?.len() < off + buf.len() as u64 {
            // Block never stamped (e.g. allocated but never written).
            return Ok(None);
        }
        read_at(sum, &mut buf, off)?;
        if buf.iter().all(|&b| b == 0) {
            return Ok(None);
        }
        Ok(Some(buf))
    }

    fn num_files(&self) -> u32 {
        self.state.read().files.len() as u32
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn roundtrip(backend: &dyn StorageBackend) {
        let bs = backend.block_size();
        let f = backend.create_file().unwrap();
        assert_eq!(backend.num_blocks(f).unwrap(), 0);
        let first = backend.extend(f, 4).unwrap();
        assert_eq!(first, 0);
        assert_eq!(backend.num_blocks(f).unwrap(), 4);

        let mut data = vec![0u8; bs];
        data[0] = 0xAB;
        data[bs - 1] = 0xCD;
        backend.write_block(f, 2, &data).unwrap();

        let mut out = vec![0u8; bs];
        backend.read_block(f, 2, &mut out).unwrap();
        assert_eq!(out, data);

        // untouched block stays zeroed
        backend.read_block(f, 3, &mut out).unwrap();
        assert!(out.iter().all(|&b| b == 0));

        // second extension is contiguous
        let next = backend.extend(f, 2).unwrap();
        assert_eq!(next, 4);
        assert_eq!(backend.num_blocks(f).unwrap(), 6);
    }

    #[test]
    fn memory_backend_roundtrip() {
        let b = MemoryBackend::new(256);
        roundtrip(&b);
    }

    #[test]
    fn file_backend_roundtrip() {
        let dir = std::env::temp_dir().join(format!("lidx-storage-test-{}", std::process::id()));
        let b = FileBackend::new(&dir, 256).unwrap();
        roundtrip(&b);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn out_of_range_and_bad_sizes_error() {
        let b = MemoryBackend::new(128);
        let f = b.create_file().unwrap();
        b.extend(f, 1).unwrap();
        let mut small = vec![0u8; 64];
        assert!(matches!(b.read_block(f, 0, &mut small), Err(StorageError::BadBufferSize { .. })));
        let mut ok = vec![0u8; 128];
        assert!(matches!(b.read_block(f, 5, &mut ok), Err(StorageError::BlockOutOfRange { .. })));
        assert!(matches!(b.read_block(9, 0, &mut ok), Err(StorageError::UnknownFile(9))));
    }

    #[test]
    fn multiple_files_are_independent() {
        let b = MemoryBackend::new(128);
        let f1 = b.create_file().unwrap();
        let f2 = b.create_file().unwrap();
        b.extend(f1, 2).unwrap();
        b.extend(f2, 5).unwrap();
        assert_eq!(b.num_blocks(f1).unwrap(), 2);
        assert_eq!(b.num_blocks(f2).unwrap(), 5);
        assert_eq!(b.num_files(), 2);

        let mut data = vec![7u8; 128];
        b.write_block(f1, 1, &data).unwrap();
        data.fill(9);
        b.write_block(f2, 1, &data).unwrap();
        let mut out = vec![0u8; 128];
        b.read_block(f1, 1, &mut out).unwrap();
        assert!(out.iter().all(|&x| x == 7));
    }

    #[test]
    fn memory_backend_supports_parallel_readers() {
        let b = MemoryBackend::new(128);
        let f = b.create_file().unwrap();
        b.extend(f, 16).unwrap();
        for blk in 0..16u32 {
            b.write_block(f, blk, &[blk as u8; 128]).unwrap();
        }
        let b = &b;
        std::thread::scope(|s| {
            for t in 0..4 {
                s.spawn(move || {
                    let mut buf = vec![0u8; 128];
                    for round in 0..200u32 {
                        let blk = (round + t) % 16;
                        b.read_block(f, blk, &mut buf).unwrap();
                        assert!(buf.iter().all(|&x| x == blk as u8), "torn read of block {blk}");
                    }
                });
            }
        });
    }
}
