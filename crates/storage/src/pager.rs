//! Extent allocation bookkeeping.
//!
//! Indexes in this workspace allocate storage in *extents*: runs of one or
//! more contiguous blocks (ALEX and LIPP nodes can span many blocks, and the
//! paper enforces that a node's data occupies adjacent space, §4.1). The
//! [`Pager`] tracks, per file, which extents have been handed out and which
//! have been freed by structural modification operations.
//!
//! By default freed space is *not* reused — the paper observes that on-disk
//! space used by learned indexes "cannot be reclaimed easily" (K3 / §6.3) and
//! its measurements include that fragmentation. Setting
//! [`Pager::set_reuse_freed`] to `true` enables best-fit reuse of freed
//! extents, which the experiments crate uses as an ablation for design
//! principle P4.

use std::collections::BTreeMap;

use crate::BlockId;

/// Per-file extent allocation state.
#[derive(Debug, Default, Clone)]
struct FileState {
    /// Freed extents: start block -> length in blocks.
    freed: BTreeMap<BlockId, u32>,
    /// Total blocks freed (for fragmentation reporting).
    freed_blocks: u64,
    /// Total blocks ever allocated through the pager.
    allocated_blocks: u64,
}

/// Tracks extent allocation and (optionally) reuse of freed extents.
#[derive(Debug, Default)]
pub struct Pager {
    files: Vec<FileState>,
    reuse_freed: bool,
}

impl Pager {
    /// Creates a pager with reuse of freed space disabled (the paper's
    /// default behaviour).
    pub fn new() -> Self {
        Pager::default()
    }

    /// Enables or disables best-fit reuse of freed extents.
    pub fn set_reuse_freed(&mut self, reuse: bool) {
        self.reuse_freed = reuse;
    }

    /// Whether freed extents are reused.
    pub fn reuse_freed(&self) -> bool {
        self.reuse_freed
    }

    fn file_mut(&mut self, file: u32) -> &mut FileState {
        let idx = file as usize;
        if idx >= self.files.len() {
            self.files.resize(idx + 1, FileState::default());
        }
        &mut self.files[idx]
    }

    /// Attempts to satisfy an allocation of `count` contiguous blocks from the
    /// freed list of `file`. Returns the start block on success; otherwise the
    /// caller must extend the file and then call [`Pager::note_extend`].
    pub fn try_reuse(&mut self, file: u32, count: u32) -> Option<BlockId> {
        if !self.reuse_freed || count == 0 {
            return None;
        }
        let state = self.file_mut(file);
        // Best fit: smallest freed extent that is large enough.
        let best = state
            .freed
            .iter()
            .filter(|(_, &len)| len >= count)
            .min_by_key(|(_, &len)| len)
            .map(|(&start, &len)| (start, len))?;
        let (start, len) = best;
        state.freed.remove(&start);
        if len > count {
            state.freed.insert(start + count, len - count);
        }
        state.freed_blocks -= u64::from(count);
        state.allocated_blocks += u64::from(count);
        Some(start)
    }

    /// Records that `count` blocks starting at `start` were newly appended to
    /// `file`.
    pub fn note_extend(&mut self, file: u32, _start: BlockId, count: u32) {
        self.file_mut(file).allocated_blocks += u64::from(count);
    }

    /// Raises `file`'s allocated-block counter to at least `total`. Used
    /// when a reopen adopts physically present blocks that the superblock's
    /// checkpoint predates (a WAL tail that grew between checkpoints), so
    /// the footprint reporting stays consistent with the backend.
    pub fn note_adopted(&mut self, file: u32, total: u32) {
        let state = self.file_mut(file);
        state.allocated_blocks = state.allocated_blocks.max(u64::from(total));
    }

    /// Marks an extent as freed (invalidated by an SMO).
    pub fn free(&mut self, file: u32, start: BlockId, count: u32) {
        if count == 0 {
            return;
        }
        let state = self.file_mut(file);
        state.freed_blocks += u64::from(count);
        // Coalesce with an adjacent preceding extent if present.
        let mut start = start;
        let mut count = count;
        if let Some((&prev_start, &prev_len)) = state.freed.range(..start).next_back() {
            if prev_start + prev_len == start {
                state.freed.remove(&prev_start);
                start = prev_start;
                count += prev_len;
            }
        }
        // Coalesce with an adjacent following extent if present.
        if let Some(&next_len) = state.freed.get(&(start + count)) {
            state.freed.remove(&(start + count));
            count += next_len;
        }
        state.freed.insert(start, count);
    }

    /// Total blocks currently sitting in freed extents of `file`.
    pub fn freed_blocks(&self, file: u32) -> u64 {
        self.files.get(file as usize).map_or(0, |f| f.freed_blocks)
    }

    /// Total blocks allocated through this pager for `file`.
    pub fn allocated_blocks(&self, file: u32) -> u64 {
        self.files.get(file as usize).map_or(0, |f| f.allocated_blocks)
    }

    /// Number of distinct freed extents in `file` (a fragmentation measure).
    pub fn freed_extents(&self, file: u32) -> usize {
        self.files.get(file as usize).map_or(0, |f| f.freed.len())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn no_reuse_by_default() {
        let mut p = Pager::new();
        p.note_extend(0, 0, 10);
        p.free(0, 2, 3);
        assert_eq!(p.try_reuse(0, 2), None);
        assert_eq!(p.freed_blocks(0), 3);
        assert_eq!(p.allocated_blocks(0), 10);
    }

    #[test]
    fn best_fit_reuse() {
        let mut p = Pager::new();
        p.set_reuse_freed(true);
        p.note_extend(0, 0, 100);
        p.free(0, 10, 8);
        p.free(0, 50, 3);
        // A 2-block request should carve from the *smaller* (3-block) extent.
        assert_eq!(p.try_reuse(0, 2), Some(50));
        assert_eq!(p.freed_blocks(0), 9);
        // The remainder of that extent is still available.
        assert_eq!(p.try_reuse(0, 1), Some(52));
        // Larger request falls through to the 8-block extent.
        assert_eq!(p.try_reuse(0, 8), Some(10));
        // Nothing large enough any more.
        assert_eq!(p.try_reuse(0, 4), None);
    }

    #[test]
    fn adjacent_frees_coalesce() {
        let mut p = Pager::new();
        p.set_reuse_freed(true);
        p.note_extend(0, 0, 64);
        p.free(0, 4, 4);
        p.free(0, 8, 4);
        p.free(0, 0, 4);
        assert_eq!(p.freed_extents(0), 1, "three adjacent extents must coalesce into one");
        assert_eq!(p.try_reuse(0, 12), Some(0));
    }

    #[test]
    fn files_tracked_independently() {
        let mut p = Pager::new();
        p.set_reuse_freed(true);
        p.note_extend(0, 0, 10);
        p.note_extend(3, 0, 20);
        p.free(3, 5, 5);
        assert_eq!(p.try_reuse(0, 1), None);
        assert_eq!(p.try_reuse(3, 5), Some(5));
        assert_eq!(p.allocated_blocks(3), 25);
    }

    #[test]
    fn zero_length_operations_are_noops() {
        let mut p = Pager::new();
        p.set_reuse_freed(true);
        p.free(0, 5, 0);
        assert_eq!(p.freed_blocks(0), 0);
        assert_eq!(p.try_reuse(0, 0), None);
    }
}
