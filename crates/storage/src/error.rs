//! Error types for the storage substrate.

use std::fmt;

/// Result alias used throughout the storage crate.
pub type StorageResult<T> = Result<T, StorageError>;

/// Errors surfaced by storage operations.
#[derive(Debug)]
pub enum StorageError {
    /// A block id referenced a block that has never been allocated.
    BlockOutOfRange {
        /// File the access targeted.
        file: u32,
        /// Offending block id.
        block: u32,
        /// Number of blocks currently allocated in that file.
        len: u32,
    },
    /// A file id referenced a file that does not exist.
    UnknownFile(u32),
    /// The caller-supplied buffer did not match the configured block size.
    BadBufferSize {
        /// Size the caller passed.
        got: usize,
        /// Configured block size.
        expected: usize,
    },
    /// Data written into a block exceeded the block size.
    BlockOverflow {
        /// Bytes the caller attempted to place in the block.
        got: usize,
        /// Configured block size.
        capacity: usize,
    },
    /// Corrupt or truncated on-disk data was encountered while decoding.
    Corrupt(String),
    /// A block's stored CRC32 did not match its contents — the block was
    /// torn, bit-flipped, or never fully written. Surfaced by the verified
    /// read path; callers must treat the block as unreadable, never as
    /// zeroed or partially valid data.
    ChecksumMismatch {
        /// File the corrupted block belongs to.
        file: u32,
        /// Block whose checksum failed.
        block: u32,
    },
    /// A transient device error (simulated `EIO`). The [`Disk`](crate::Disk)
    /// read path retries these with bounded backoff before surfacing the
    /// error; seeing one from a public API means the retry budget was
    /// exhausted.
    Transient(String),
    /// An underlying operating-system I/O error (file backend only).
    Io(std::io::Error),
}

impl fmt::Display for StorageError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            StorageError::BlockOutOfRange { file, block, len } => {
                write!(f, "block {block} out of range for file {file} ({len} blocks allocated)")
            }
            StorageError::UnknownFile(id) => write!(f, "unknown file id {id}"),
            StorageError::BadBufferSize { got, expected } => {
                write!(f, "buffer size {got} does not match block size {expected}")
            }
            StorageError::BlockOverflow { got, capacity } => {
                write!(f, "attempted to write {got} bytes into a {capacity}-byte block")
            }
            StorageError::Corrupt(msg) => write!(f, "corrupt on-disk data: {msg}"),
            StorageError::ChecksumMismatch { file, block } => {
                write!(f, "checksum mismatch reading block {block} of file {file}")
            }
            StorageError::Transient(msg) => write!(f, "transient I/O error: {msg}"),
            StorageError::Io(e) => write!(f, "I/O error: {e}"),
        }
    }
}

impl std::error::Error for StorageError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            StorageError::Io(e) => Some(e),
            _ => None,
        }
    }
}

impl From<std::io::Error> for StorageError {
    fn from(e: std::io::Error) -> Self {
        StorageError::Io(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages_are_informative() {
        let e = StorageError::BlockOutOfRange { file: 1, block: 9, len: 4 };
        assert!(e.to_string().contains("block 9"));
        assert!(e.to_string().contains("file 1"));
        let e = StorageError::BadBufferSize { got: 100, expected: 4096 };
        assert!(e.to_string().contains("100"));
        let e = StorageError::BlockOverflow { got: 5000, capacity: 4096 };
        assert!(e.to_string().contains("5000"));
        let e = StorageError::Corrupt("bad magic".into());
        assert!(e.to_string().contains("bad magic"));
        let e = StorageError::UnknownFile(7);
        assert!(e.to_string().contains('7'));
        let e = StorageError::ChecksumMismatch { file: 2, block: 11 };
        assert!(e.to_string().contains("block 11"));
        assert!(e.to_string().contains("file 2"));
        let e = StorageError::Transient("injected EIO".into());
        assert!(e.to_string().contains("transient"));
    }

    #[test]
    fn io_errors_are_wrapped_with_source() {
        let io = std::io::Error::new(std::io::ErrorKind::NotFound, "gone");
        let e: StorageError = io.into();
        assert!(matches!(e, StorageError::Io(_)));
        assert!(std::error::Error::source(&e).is_some());
    }
}
