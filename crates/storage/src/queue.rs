//! The outstanding-read engine: an io_uring-shaped submission/completion
//! queue over the simulated device.
//!
//! The paper's cost model realises every device charge synchronously — one
//! blocking latency per miss — so a batch of N independent fetches pays N
//! sequential latencies. Real storage stacks instead keep a *queue depth* of
//! requests in flight and complete them together. [`ReadQueue`] reproduces
//! that shape: callers [`submit`](ReadQueue::submit) `(file, block, kind,
//! class)` requests; once the configured depth is reached (or on an explicit
//! [`flush`](ReadQueue::flush)), the pending requests are processed as one
//! *completion wave*. The wave serves cache hits exactly like the synchronous
//! path, fetches every miss, and charges the device the **max** of the
//! misses' costs instead of their sum — the requests were outstanding
//! together, so the wave completes when its slowest member does. The
//! difference (`sum − max`) is recorded as
//! [`overlap_saved_ns`](crate::IoStats::overlap_saved_ns).
//!
//! At queue depth 1 every wave carries one request, `max == sum`, and the
//! engine degenerates to today's synchronous path — all existing numbers are
//! reproduced bit for bit. Block-fetch *counts* are never changed by the
//! depth: the engine only redistributes simulated time.

use crate::buffer::{AccessClass, BlockRef};
use crate::disk::{Disk, FileId, SeqHint, WaveReq};
use crate::error::StorageResult;
use crate::stats::BlockKind;
use crate::BlockId;

/// A completed read delivered by [`ReadQueue::complete`].
#[derive(Debug, Clone)]
pub struct Completion {
    /// File the request targeted.
    pub file: FileId,
    /// Block the request targeted.
    pub block: BlockId,
    /// The pinned, zero-copy frame (same guarantees as
    /// [`Disk::read_ref`]).
    pub frame: BlockRef,
}

/// An outstanding-read queue over one [`Disk`] (see the module docs).
///
/// Submissions auto-flush whenever the pending wave reaches the queue depth,
/// so a caller may submit any number of requests and collect everything with
/// one final [`complete`](ReadQueue::complete). Completions are delivered in
/// submission order.
pub struct ReadQueue<'d> {
    disk: &'d Disk,
    depth: usize,
    pending: Vec<WaveReq>,
    done: Vec<Completion>,
}

impl Disk {
    /// An outstanding-read queue at the disk's configured
    /// [`queue_depth`](Disk::queue_depth).
    pub fn read_queue(&self) -> ReadQueue<'_> {
        self.read_queue_with_depth(self.queue_depth())
    }

    /// An outstanding-read queue with an explicit depth (clamped to at
    /// least 1), independent of the disk's configured depth.
    pub fn read_queue_with_depth(&self, depth: usize) -> ReadQueue<'_> {
        ReadQueue { disk: self, depth: depth.max(1), pending: Vec::new(), done: Vec::new() }
    }
}

impl ReadQueue<'_> {
    /// The wave size this queue flushes at.
    pub fn depth(&self) -> usize {
        self.depth
    }

    /// Submits one read request ([`SeqHint::Auto`]); flushes a wave if the
    /// queue depth is reached.
    pub fn submit(
        &mut self,
        file: FileId,
        block: BlockId,
        kind: BlockKind,
        class: AccessClass,
    ) -> StorageResult<()> {
        self.submit_hinted(file, block, kind, class, SeqHint::Auto)
    }

    /// Submits one read request with an explicit sequential-cost hint;
    /// flushes a wave if the queue depth is reached.
    pub fn submit_hinted(
        &mut self,
        file: FileId,
        block: BlockId,
        kind: BlockKind,
        class: AccessClass,
        hint: SeqHint,
    ) -> StorageResult<()> {
        if class == AccessClass::Scan {
            self.disk.stats().record_scan_read();
        }
        self.pending.push(WaveReq { file, block, kind, class, hint, deliver: true });
        if self.pending.len() >= self.depth {
            self.flush()?;
        }
        Ok(())
    }

    /// Submits a readahead prefetch: the frame is parked in the disk's
    /// readahead cache for a later read instead of being delivered, and the
    /// request is skipped entirely if the block is already cached. Prefetches
    /// ride the same waves as submitted reads.
    pub fn prefetch(
        &mut self,
        file: FileId,
        block: BlockId,
        kind: BlockKind,
        class: AccessClass,
        hint: SeqHint,
    ) -> StorageResult<()> {
        self.pending.push(WaveReq { file, block, kind, class, hint, deliver: false });
        if self.pending.len() >= self.depth {
            self.flush()?;
        }
        Ok(())
    }

    /// Processes the pending requests as one completion wave (no-op when
    /// nothing is pending).
    pub fn flush(&mut self) -> StorageResult<()> {
        if self.pending.is_empty() {
            return Ok(());
        }
        let reqs = std::mem::take(&mut self.pending);
        let frames = self.disk.run_wave(&reqs)?;
        for (req, frame) in reqs.into_iter().zip(frames) {
            if let (true, Some(frame)) = (req.deliver, frame) {
                self.done.push(Completion { file: req.file, block: req.block, frame });
            }
        }
        Ok(())
    }

    /// Flushes any pending requests and returns every completion so far, in
    /// submission order.
    pub fn complete(&mut self) -> StorageResult<Vec<Completion>> {
        self.flush()?;
        Ok(std::mem::take(&mut self.done))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::device::DeviceModel;
    use crate::disk::DiskConfig;

    /// A disk with a custom flat device model: random reads cost `rand`,
    /// sequential reads `seq`, writes 1.
    fn disk(depth: usize, rand: u64, seq: u64) -> std::sync::Arc<Disk> {
        Disk::in_memory(
            DiskConfig::with_block_size(128)
                .device(DeviceModel::custom("t", rand, 1, seq))
                .queue_depth(depth),
        )
    }

    fn fill(d: &Disk, blocks: u32) -> FileId {
        let f = d.create_file().unwrap();
        d.allocate(f, blocks).unwrap();
        for b in 0..blocks {
            d.write(f, b, BlockKind::Leaf, &[(b % 251) as u8; 128]).unwrap();
        }
        d.stats().reset();
        d.reset_access_state();
        d.clear_buffer();
        f
    }

    #[test]
    fn depth_one_matches_the_synchronous_path_exactly() {
        let queued = disk(1, 100, 5);
        let fq = fill(&queued, 8);
        let mut q = queued.read_queue();
        for b in [3u32, 7, 0, 4] {
            q.submit(fq, b, BlockKind::Leaf, AccessClass::Point).unwrap();
        }
        let done = q.complete().unwrap();
        assert_eq!(done.len(), 4);

        let sync = disk(1, 100, 5);
        let fs = fill(&sync, 8);
        for b in [3u32, 7, 0, 4] {
            sync.read_ref(fs, b, BlockKind::Leaf).unwrap();
        }
        assert_eq!(queued.stats().device_ns(), sync.stats().device_ns());
        assert_eq!(queued.stats().reads(), sync.stats().reads());
        assert_eq!(queued.stats().overlap_saved_ns(), 0, "depth 1 has nothing to overlap");
    }

    #[test]
    fn a_wave_charges_max_not_sum() {
        let d = disk(4, 100, 5);
        let f = fill(&d, 8);
        let mut q = d.read_queue();
        for b in [0u32, 2, 4, 6] {
            q.submit(f, b, BlockKind::Leaf, AccessClass::Point).unwrap();
        }
        let done = q.complete().unwrap();
        assert_eq!(done.len(), 4);
        for c in &done {
            assert!(c.frame.iter().all(|&x| x == (c.block % 251) as u8), "wrong frame contents");
        }
        assert_eq!(d.stats().reads(), 4, "every miss is still a counted fetch");
        assert_eq!(d.stats().device_ns(), 100, "four random fetches in flight cost one latency");
        assert_eq!(d.stats().overlap_saved_ns(), 300);
        assert_eq!(d.stats().max_inflight(), 4);
        assert_eq!(d.stats().ios_submitted(), 4);
        assert_eq!(d.stats().ios_completed(), 4);
    }

    #[test]
    fn waves_flush_at_depth_and_deliver_in_submission_order() {
        let d = disk(2, 100, 5);
        let f = fill(&d, 8);
        let mut q = d.read_queue();
        for b in [5u32, 1, 6, 2, 0] {
            q.submit(f, b, BlockKind::Leaf, AccessClass::Point).unwrap();
        }
        let done = q.complete().unwrap();
        assert_eq!(done.iter().map(|c| c.block).collect::<Vec<_>>(), vec![5, 1, 6, 2, 0]);
        // Three waves: [5,1] [6,2] [0] — two full overlaps and one single.
        assert_eq!(d.stats().device_ns(), 3 * 100);
        assert_eq!(d.stats().max_inflight(), 2);
    }

    #[test]
    fn hits_and_duplicates_inside_a_wave_are_not_double_fetched() {
        let d = disk(8, 100, 5);
        let f = fill(&d, 8);
        // Warm block 0 into the pool? No pool configured — use the device
        // once, then the reuse slot holds block 0.
        d.read_ref(f, 0, BlockKind::Leaf).unwrap();
        let before = d.stats().reads();
        let mut q = d.read_queue();
        for b in [0u32, 4, 4, 5] {
            q.submit(f, b, BlockKind::Leaf, AccessClass::Point).unwrap();
        }
        let done = q.complete().unwrap();
        assert_eq!(done.len(), 4);
        // Block 0 is a reuse-slot hit; the second 4 shares the in-flight
        // fetch; only blocks 4 and 5 touch the device.
        assert_eq!(d.stats().reads() - before, 2);
        assert!(d.stats().reuse_hits() >= 2);
        for c in &done {
            assert!(c.frame.iter().all(|&x| x == (c.block % 251) as u8));
        }
    }

    #[test]
    fn prefetch_parks_frames_that_later_reads_consume_for_free() {
        let d = disk(4, 100, 5);
        let f = fill(&d, 16);
        let mut q = d.read_queue();
        for b in 4u32..8 {
            q.prefetch(f, b, BlockKind::Leaf, AccessClass::Scan, SeqHint::Sequential).unwrap();
        }
        q.flush().unwrap();
        assert_eq!(d.stats().reads(), 4, "prefetch fetches are counted reads");
        let after_prefetch = d.stats().device_ns();
        assert_eq!(after_prefetch, 5, "a wave of sequential prefetches costs one seq latency");
        // Consuming the parked frames is free and attributed to readahead.
        for b in 4u32..8 {
            let frame = d.read_ref(f, b, BlockKind::Leaf).unwrap();
            assert!(frame.iter().all(|&x| x == (b % 251) as u8));
        }
        assert_eq!(d.stats().device_ns(), after_prefetch);
        assert_eq!(d.stats().readahead_hits(), 4);
        assert_eq!(d.stats().reads(), 4, "no re-fetch of parked blocks");
    }

    #[test]
    fn explicit_depth_overrides_the_disk_configuration() {
        let d = disk(1, 100, 5);
        let f = fill(&d, 8);
        let mut q = d.read_queue_with_depth(4);
        assert_eq!(q.depth(), 4);
        for b in [0u32, 2, 4, 6] {
            q.submit(f, b, BlockKind::Leaf, AccessClass::Point).unwrap();
        }
        q.complete().unwrap();
        assert_eq!(d.stats().device_ns(), 100, "the explicit depth wins");
    }
}
